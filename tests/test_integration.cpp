// Cross-module integration tests: the full stack of the paper, end to end.
//   OpenQL-like API -> compiler -> cQASM -> eQASM -> micro-architecture ->
//   QX simulator -> results back through the accelerator interface.
#include <gtest/gtest.h>

#include "anneal/annealer.h"
#include "apps/genome/aligner.h"
#include "apps/genome/dna.h"
#include "apps/tsp/qubo_encode.h"
#include "apps/tsp/solvers.h"
#include "apps/tsp/tsp.h"
#include "compiler/compiler.h"
#include "microarch/assembler.h"
#include "microarch/executor.h"
#include "qasm/parser.h"
#include "qasm/printer.h"
#include "qec/repetition.h"
#include "runtime/accelerator.h"
#include "runtime/qaoa.h"

namespace qs {
namespace {

/// Full-stack Bell pair: written in the kernel API, compiled for the
/// transmon platform, serialised to cQASM text, re-parsed, assembled to
/// eQASM and executed on the micro-architecture with the QX back-end.
TEST(FullStack, BellThroughEveryLayer) {
  compiler::Program p("bell", 2);
  p.add_kernel("main").h(0).cnot(0, 1).measure_all();

  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  compiler::Compiler c(platform);
  const compiler::CompileResult compiled = c.compile(p);

  // cQASM text round-trip (the "common assembly" interchange point).
  const qasm::Program reparsed = qasm::Parser::parse(compiled.cqasm);
  EXPECT_EQ(reparsed.qubit_count(), compiled.program.qubit_count());

  microarch::Assembler assembler(platform);
  const microarch::EqProgram eq = assembler.assemble(reparsed);
  microarch::Executor executor(platform, 11);
  const Histogram hist = executor.run_shots(eq, 300);

  double correlated = 0.0;
  for (const auto& [bits, count] : hist.counts())
    if (bits.substr(0, 2) == "00" || bits.substr(0, 2) == "11")
      correlated += static_cast<double>(count);
  EXPECT_NEAR(correlated / 300.0, 1.0, 1e-9);
}

/// The paper's Figure 2 split: the same program under perfect vs realistic
/// qubits. Perfect gives the ideal distribution; realistic degrades it.
TEST(FullStack, PerfectVersusRealisticQubits) {
  compiler::Program p("ghz5", 5);
  p.add_kernel("main").ghz(5).measure_all();

  runtime::GateAccelerator perfect(compiler::Platform::perfect(5));
  const Histogram ideal = perfect.execute(p.to_qasm(), 400);
  EXPECT_NEAR(ideal.frequency("00000") + ideal.frequency("11111"), 1.0,
              1e-9);

  compiler::Platform noisy_platform = compiler::Platform::perfect(5);
  noisy_platform.qubit_model =
      sim::QubitModel::realistic(1e-2, 5e-2, 1e-2, 20, 10);
  runtime::GateAccelerator noisy(noisy_platform);
  const Histogram degraded = noisy.execute(p.to_qasm(), 400);
  EXPECT_LT(degraded.frequency("00000") + degraded.frequency("11111"), 0.98);
}

/// Figure 9 end-to-end: the 4-city TSP on all three solver families —
/// exact classical, gate-based QAOA (16 qubits), and quantum annealing.
TEST(FullStack, Tsp4CitiesAllThreeSolverFamilies) {
  const apps::tsp::TspInstance nl = apps::tsp::TspInstance::netherlands4();
  const apps::tsp::TspQubo encoding(nl);
  ASSERT_EQ(encoding.variable_count(), 16u);

  // Exact classical reference.
  const double optimal = apps::tsp::brute_force(nl).cost;
  EXPECT_NEAR(optimal, 1.42, 1e-9);

  // Annealing accelerator (fully connected, SQA backend).
  anneal::QuantumAnnealSchedule schedule;
  schedule.sweeps = 600;
  schedule.restarts = 4;
  runtime::AnnealAccelerator annealer(64, schedule);
  Rng rng(3);
  const runtime::AnnealOutcome outcome = annealer.solve(encoding.qubo(), rng);
  std::vector<std::size_t> tour;
  ASSERT_TRUE(encoding.decode(outcome.solution, tour));
  EXPECT_NEAR(nl.tour_cost(tour), optimal, 0.35);  // near-optimal tour

  // Gate-model accelerator via QAOA on 16 perfect qubits.
  runtime::QaoaOptions qopts;
  qopts.depth = 1;
  qopts.optimizer_iterations = 12;
  qopts.readout_shots = 96;
  runtime::Qaoa qaoa(encoding.qubo(), qopts);
  runtime::GateAccelerator gate(compiler::Platform::perfect(16));
  const runtime::QaoaResult qr = qaoa.solve(gate);
  std::vector<std::size_t> qaoa_tour;
  if (encoding.decode(qr.solution, qaoa_tour)) {
    // When QAOA sampling lands on a feasible tour it must be a real tour.
    EXPECT_TRUE(nl.is_valid_tour(qaoa_tour));
  }
  // The optimised expectation must improve on the uniform-state average.
  runtime::Qaoa probe(encoding.qubo(), qopts);
  const double uniform =
      probe.expectation({0.0, 0.0}, gate);
  EXPECT_LT(qr.expectation, uniform);
}

/// Genome pipeline: artificial DNA -> reads with errors -> quantum
/// alignment vs classical baseline, agreeing on positions.
TEST(FullStack, GenomeAlignmentQuantumMatchesClassical) {
  apps::genome::DnaGenerator gen(31);
  // Use a fixed reference with unique windows for deterministic checks.
  const std::string ref = "AACAGATCCG";
  apps::genome::QgsAligner aligner(ref, 3);

  for (std::size_t pos = 0; pos <= ref.size() - 3; ++pos) {
    const std::string read = ref.substr(pos, 3);
    if (aligner.quantum_memory().matching_windows(read).size() != 1)
      continue;  // skip ambiguous reads
    const auto q = aligner.align_quantum(read, 100 + pos);
    const auto c = aligner.align_classical(read);
    ASSERT_TRUE(q.found) << "position " << pos;
    EXPECT_EQ(q.position, c.position) << "position " << pos;
  }
}

/// Realistic-qubit QEC full stack: repetition-code ESM circuit under a
/// bit-flip channel, decoded classically — error suppression visible.
TEST(FullStack, RepetitionCodeUnderBitFlipChannel) {
  const qec::RepetitionCode code(3);
  Rng rng(37);
  const double physical = 0.08;
  const double logical =
      code.monte_carlo_logical_error_rate(physical, 1, 30000, rng);
  EXPECT_LT(logical, physical);  // below threshold: code helps
  EXPECT_NEAR(logical, code.analytic_logical_error_rate(physical), 0.01);
}

/// cQASM as the interchange format: compile -> print -> parse -> execute
/// equals compile -> execute.
TEST(FullStack, CqasmTextInterchangeStable) {
  compiler::Program p("qft4", 4);
  auto& k = p.add_kernel("main");
  k.x(0).x(2);
  k.qft({0, 1, 2, 3});
  compiler::Compiler c(compiler::Platform::perfect(4));
  const compiler::CompileResult compiled = c.compile(p);

  sim::Simulator direct(4, sim::QubitModel::perfect(), 1);
  direct.run_once(compiled.program);

  const qasm::Program reparsed = qasm::Parser::parse(compiled.cqasm);
  sim::Simulator via_text(4, sim::QubitModel::perfect(), 1);
  via_text.run_once(reparsed);

  EXPECT_NEAR(direct.state().fidelity(via_text.state()), 1.0, 1e-9);
}

/// Mapping pressure across platforms (Section 2.6): the same deep circuit
/// pays more swaps on a line than on a grid, and none with full
/// connectivity.
TEST(FullStack, TopologyDeterminesRoutingCost) {
  compiler::Program p("dense", 9);
  auto& k = p.add_kernel("main");
  for (QubitIndex a = 0; a < 9; ++a)
    for (QubitIndex b = a + 1; b < 9; ++b) k.cnot(a, b);

  auto swaps_on = [&](const compiler::Platform& platform) {
    compiler::MapStats stats;
    compiler::Mapper mapper;
    mapper.map(p.to_qasm(), platform, &stats);
    return stats.added_swaps;
  };

  const std::size_t on_full = swaps_on(compiler::Platform::perfect(9));
  const std::size_t on_grid = swaps_on(compiler::Platform::perfect_grid(3, 3));
  const std::size_t on_line = swaps_on(compiler::Platform::perfect_grid(1, 9));
  EXPECT_EQ(on_full, 0u);
  EXPECT_GT(on_grid, 0u);
  EXPECT_GT(on_line, on_grid);
}

}  // namespace
}  // namespace qs
