// Unit tests for the common substrate: RNG, matrices, stats, config, and
// the robustness primitives (Status, backoff, cancellation).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "common/backoff.h"
#include "common/cancellation.h"
#include "common/config.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"

namespace qs {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng(19);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 40000; ++i)
    ones += rng.discrete(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(ones / 40000.0, 0.75, 0.02);
}

TEST(Rng, DiscreteRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.discrete({}), std::invalid_argument);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.discrete({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------- Matrix ----

TEST(Matrix, IdentityTimesAnything) {
  const Matrix m{{1, 2}, {3, cplx(0, 1)}};
  EXPECT_TRUE((Matrix::identity(2) * m).approx_equal(m));
  EXPECT_TRUE((m * Matrix::identity(2)).approx_equal(m));
}

TEST(Matrix, MultiplyKnownProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix expect{{19, 22}, {43, 50}};
  EXPECT_TRUE((a * b).approx_equal(expect));
}

TEST(Matrix, DaggerOfProduct) {
  const Matrix a{{cplx(0, 1), 1}, {0, 2}};
  const Matrix b{{1, cplx(2, -1)}, {3, 0}};
  // (AB)^dag = B^dag A^dag
  EXPECT_TRUE((a * b).dagger().approx_equal(b.dagger() * a.dagger()));
}

TEST(Matrix, KronDimensions) {
  const Matrix a = Matrix::identity(2);
  const Matrix b = Matrix::identity(4);
  const Matrix k = a.kron(b);
  EXPECT_EQ(k.rows(), 8u);
  EXPECT_TRUE(k.approx_equal(Matrix::identity(8)));
}

TEST(Matrix, KronOfPaulis) {
  const Matrix x{{0, 1}, {1, 0}};
  const Matrix z{{1, 0}, {0, -1}};
  const Matrix xz = x.kron(z);
  // X(x)Z maps |00> (col 0) to |10> with +1: entry (2,0) = 1.
  EXPECT_NEAR(std::abs(xz(2, 0) - cplx(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(xz(3, 1) - cplx(-1, 0)), 0.0, 1e-12);
}

TEST(Matrix, UnitarityChecks) {
  const double s = 1.0 / std::sqrt(2.0);
  const Matrix h{{s, s}, {s, -s}};
  EXPECT_TRUE(h.is_unitary());
  const Matrix not_unitary{{1, 1}, {0, 1}};
  EXPECT_FALSE(not_unitary.is_unitary());
}

TEST(Matrix, EqualUpToPhase) {
  const Matrix x{{0, 1}, {1, 0}};
  const cplx phase = std::exp(cplx(0, 1.234));
  EXPECT_TRUE((x * phase).equal_up_to_phase(x));
  const Matrix z{{1, 0}, {0, -1}};
  EXPECT_FALSE((x * phase).equal_up_to_phase(z));
}

TEST(Matrix, TraceAndErrors) {
  const Matrix m{{1, 2}, {3, cplx(4, 5)}};
  EXPECT_NEAR(std::abs(m.trace() - cplx(5, 5)), 0.0, 1e-12);
  const Matrix rect(2, 3);
  EXPECT_THROW(rect.trace(), std::invalid_argument);
  EXPECT_THROW(rect + m, std::invalid_argument);
  EXPECT_THROW(m * rect.dagger(), std::invalid_argument);
  EXPECT_NO_THROW(m * rect);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

// -------------------------------------------------------------- Stats ----

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, CountsAndMode) {
  Histogram h;
  h.add("00");
  h.add("01", 3);
  h.add("00");
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count("00"), 2u);
  EXPECT_EQ(h.count("10"), 0u);
  EXPECT_NEAR(h.frequency("01"), 0.6, 1e-12);
  EXPECT_EQ(h.mode(), "01");
}

TEST(Histogram, EmptyMode) {
  Histogram h;
  EXPECT_EQ(h.mode(), "");
  EXPECT_EQ(h.frequency("x"), 0.0);
}

TEST(StatsHelpers, MeanStd) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(mean_of({1, 2, 3}), 2.0, 1e-12);
  EXPECT_NEAR(stddev_of({2, 4}), std::sqrt(2.0), 1e-12);
  EXPECT_EQ(stddev_of({5}), 0.0);
}

// -------------------------------------------------------------- Config ----

TEST(Config, ParseSectionsAndTypes) {
  const Config cfg = Config::parse(R"(
# comment line
top = 1
[platform]
name = test
qubits = 17
scale = 2.5
enabled = true
)");
  EXPECT_EQ(cfg.get_string("", "top"), "1");
  EXPECT_EQ(cfg.get_string("platform", "name"), "test");
  EXPECT_EQ(cfg.get_int("platform", "qubits", 0), 17);
  EXPECT_NEAR(cfg.get_double("platform", "scale", 0), 2.5, 1e-12);
  EXPECT_TRUE(cfg.get_bool("platform", "enabled", false));
}

TEST(Config, FallbacksForMissingKeys) {
  const Config cfg = Config::parse("[a]\nx = 1\n");
  EXPECT_EQ(cfg.get_int("a", "missing", -7), -7);
  EXPECT_EQ(cfg.get_string("nosection", "x", "def"), "def");
  EXPECT_FALSE(cfg.has("a", "missing"));
  EXPECT_TRUE(cfg.has("a", "x"));
}

TEST(Config, SyntaxErrors) {
  EXPECT_THROW(Config::parse("[unterminated\n"), std::runtime_error);
  EXPECT_THROW(Config::parse("keywithoutvalue\n"), std::runtime_error);
  EXPECT_THROW(Config::parse("= value\n"), std::runtime_error);
}

TEST(Config, RoundTrip) {
  Config cfg;
  cfg.set("s", "k", "v");
  cfg.set("s", "n", "42");
  const Config back = Config::parse(cfg.to_string());
  EXPECT_EQ(back.get_string("s", "k"), "v");
  EXPECT_EQ(back.get_int("s", "n", 0), 42);
}

TEST(Config, BadBooleanThrows) {
  const Config cfg = Config::parse("[a]\nflag = maybe\n");
  EXPECT_THROW(cfg.get_bool("a", "flag", false), std::runtime_error);
}

TEST(Config, KeysAndSectionsSorted) {
  const Config cfg = Config::parse("[b]\nz=1\na=2\n[a]\nq=3\n");
  const auto keys = cfg.keys("b");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "z");
  const auto sections = cfg.sections();
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0], "a");
}

// ------------------------------------------------------------- Status ----

TEST(Status, EveryCodeRendersADistinctName) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kCancelled, StatusCode::kInvalidArgument,
        StatusCode::kDeadlineExceeded, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    names.insert(to_string(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Cancelled("x"), Status::Cancelled("x"));
  EXPECT_NE(Status::Cancelled("x"), Status::Cancelled("y"));
  EXPECT_NE(Status::Cancelled("x"), Status::Internal("x"));
  EXPECT_TRUE(Status().ok());
}

TEST(StatusOr, MovesValueOutOnce) {
  StatusOr<std::string> s(std::string(100, 'a'));
  ASSERT_TRUE(s.ok());
  const std::string taken = std::move(s.value());
  EXPECT_EQ(taken.size(), 100u);
  EXPECT_THROW(StatusOr<int>(Status::Internal("boom")).value(),
               std::logic_error);
}

// ------------------------------------------------------------ Backoff ----

TEST(BackoffPolicy, DefaultPolicyIsMonotonicUpToCap) {
  const BackoffPolicy policy;
  for (std::size_t attempt = 0; attempt + 1 < 10; ++attempt)
    EXPECT_LE(policy.delay(attempt), policy.delay(attempt + 1));
  EXPECT_LE(policy.delay(64), policy.cap);  // no overflow at high attempts
}

TEST(BackoffPolicy, SaturatesAtCapForHugeAttemptsAndHugeCaps) {
  // Regression: delay() used to compute min(initial * mult^attempt, cap)
  // in double and cast back to the microseconds rep. With cap near
  // microseconds::max() the cap itself rounds *up* when converted to
  // double, so the cast was UB for large attempts (pow -> inf). The fix
  // saturates by comparison and returns cap exactly.
  BackoffPolicy policy;
  policy.initial = std::chrono::microseconds{200};
  policy.multiplier = 2.0;
  policy.cap = std::chrono::microseconds::max();
  EXPECT_EQ(policy.delay(0), std::chrono::microseconds{200});
  EXPECT_EQ(policy.delay(10), std::chrono::microseconds{200 << 10});
  // Well past the point where the double math reaches inf.
  EXPECT_EQ(policy.delay(1 << 20), std::chrono::microseconds::max());
  EXPECT_EQ(policy.delay(std::numeric_limits<std::size_t>::max()),
            std::chrono::microseconds::max());
}

TEST(BackoffPolicy, CapSmallerThanInitialClampsImmediately) {
  BackoffPolicy policy;
  policy.initial = std::chrono::microseconds{500};
  policy.cap = std::chrono::microseconds{100};
  EXPECT_EQ(policy.delay(0), policy.cap);
  EXPECT_EQ(policy.delay(7), policy.cap);
}

TEST(BackoffPolicy, NonPositiveInitialAndFlatMultiplierAreSafe) {
  BackoffPolicy zero;
  zero.initial = std::chrono::microseconds{0};
  EXPECT_EQ(zero.delay(0), std::chrono::microseconds{0});
  EXPECT_EQ(zero.delay(1000), std::chrono::microseconds{0});

  BackoffPolicy flat;
  flat.initial = std::chrono::microseconds{300};
  flat.multiplier = 0.5;  // clamped to 1.0: backoff never shrinks
  flat.cap = std::chrono::microseconds{5000};
  EXPECT_EQ(flat.delay(0), std::chrono::microseconds{300});
  EXPECT_EQ(flat.delay(50), std::chrono::microseconds{300});
}

// ------------------------------------------------------- Cancellation ----

TEST(CancelToken, FutureDeadlineIsNotExpired) {
  CancelSource source;
  const CancelToken token =
      source.token(std::chrono::steady_clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(token.stop_requested());
  EXPECT_NO_THROW(throw_if_stopped(token));
  source.request_cancel();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(token.deadline_expired());
}

TEST(CancelToken, CopiesObserveTheSameSource) {
  CancelSource source;
  const CancelToken original = source.token();
  const CancelToken copy = original;
  source.request_cancel();
  EXPECT_TRUE(copy.cancelled());
}

}  // namespace
}  // namespace qs
