// Kernel-layer tests: the fork-join thread pool, the fused fast-path
// gate kernels, and the bit-identity contract — scalar, fused and
// threaded execution must produce byte-identical amplitudes and identical
// measurement streams for a fixed seed.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "sim/gates.h"
#include "sim/simulator.h"
#include "sim/statevector.h"

namespace qs::sim {
namespace {

using qasm::GateKind;
using qasm::Instruction;

// ---------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, SliceCoversRangeDisjointly) {
  for (std::size_t count : {0u, 1u, 7u, 64u, 1000u}) {
    for (std::size_t slices : {1u, 2u, 3u, 4u, 7u}) {
      std::size_t covered = 0;
      std::size_t prev_hi = 0;
      for (std::size_t s = 0; s < slices; ++s) {
        std::size_t lo = 0, hi = 0;
        ThreadPool::slice(0, count, slices, s, &lo, &hi);
        EXPECT_EQ(lo, prev_hi);  // contiguous, in order, no overlap
        EXPECT_LE(hi, count);
        covered += hi - lo;
        prev_hi = hi;
      }
      EXPECT_EQ(covered, count);
      EXPECT_EQ(prev_hi, count);
    }
  }
}

TEST(ThreadPool, SliceIsIndependentOfPoolSize) {
  // The partition is a pure function of (range, slices, index) — this is
  // what makes elementwise kernels thread-count invariant.
  std::size_t lo1 = 0, hi1 = 0, lo2 = 0, hi2 = 0;
  ThreadPool::slice(0, 1 << 20, 4, 2, &lo1, &hi1);
  ThreadPool::slice(0, 1 << 20, 4, 2, &lo2, &hi2);
  EXPECT_EQ(lo1, lo2);
  EXPECT_EQ(hi1, hi2);
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads == 0 ? 1u : threads);
    for (std::size_t chunks : {1u, 2u, 5u, 32u, 257u}) {
      std::vector<std::atomic<int>> hits(chunks);
      for (auto& h : hits) h.store(0);
      pool.run_chunks(chunks, [&](std::size_t c) { hits[c].fetch_add(1); });
      for (std::size_t c = 0; c < chunks; ++c)
        EXPECT_EQ(hits[c].load(), 1) << "chunk " << c;
    }
  }
}

TEST(ThreadPool, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.run_chunks(8, [&](std::size_t c) { sum.fetch_add(c + 1); });
    EXPECT_EQ(sum.load(), 36u);
  }
}

TEST(ThreadPool, ConcurrentCallersAreSerialized) {
  // Two external threads sharing one pool: each call must still run every
  // chunk exactly once (job_mutex_ serializes the fork-join epochs).
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  auto hammer = [&] {
    for (int i = 0; i < 100; ++i)
      pool.run_chunks(5, [&](std::size_t) { total.fetch_add(1); });
  };
  std::thread a(hammer), b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2u * 100u * 5u);
}

TEST(SimOptions, ResolveThreads) {
  // Explicit request wins and clamps to [1, 64].
  EXPECT_EQ(resolve_sim_threads(3), 3u);
  EXPECT_EQ(resolve_sim_threads(1000), 64u);
#ifndef _WIN32
  ::setenv("QS_SIM_THREADS", "5", 1);
  EXPECT_EQ(resolve_sim_threads(0), 5u);
  EXPECT_EQ(resolve_sim_threads(2), 2u);  // explicit beats environment
  ::setenv("QS_SIM_THREADS", "garbage", 1);
  EXPECT_EQ(resolve_sim_threads(0), 1u);
  ::unsetenv("QS_SIM_THREADS");
#endif
  EXPECT_EQ(resolve_sim_threads(0), 1u);
}

// ------------------------------------------------- Fused kernel algebra ----

/// Fills a state with a deterministic pseudo-random unit vector.
StateVector random_state(std::size_t qubits, std::uint64_t seed) {
  StateVector s(qubits);
  Rng rng(seed);
  for (StateIndex i = 0; i < s.dimension(); ++i)
    s.set_amplitude(i, cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)));
  s.normalize();
  return s;
}

void expect_states_equal(const StateVector& a, const StateVector& b,
                         double tol = 0.0) {
  ASSERT_EQ(a.dimension(), b.dimension());
  for (StateIndex i = 0; i < a.dimension(); ++i) {
    const cplx da = a.amplitude(i), db = b.amplitude(i);
    if (tol == 0.0) {
      EXPECT_EQ(da.real(), db.real()) << "re idx " << i;
      EXPECT_EQ(da.imag(), db.imag()) << "im idx " << i;
    } else {
      EXPECT_NEAR(da.real(), db.real(), tol) << "re idx " << i;
      EXPECT_NEAR(da.imag(), db.imag(), tol) << "im idx " << i;
    }
  }
}

TEST(FusedKernels, MatchGenericSingleQubit) {
  const cplx kI(0.0, 1.0);
  for (std::size_t q = 0; q < 5; ++q) {
    StateVector fused = random_state(5, 11 + q);
    StateVector generic = fused;

    fused.apply_x(q);
    generic.apply_1q(pauli_x(), q);
    expect_states_equal(fused, generic);

    fused.apply_y(q);
    generic.apply_1q(pauli_y(), q);
    expect_states_equal(fused, generic);

    fused.apply_z(q);
    generic.apply_1q(pauli_z(), q);
    expect_states_equal(fused, generic);

    fused.apply_phase(q, kI);  // S
    generic.apply_1q(phase_s(), q);
    expect_states_equal(fused, generic);

    const double theta = 0.7 + static_cast<double>(q);
    fused.apply_diag(q, std::exp(-kI * (theta / 2.0)),
                     std::exp(kI * (theta / 2.0)));
    generic.apply_1q(rz(theta), q);
    expect_states_equal(fused, generic);
  }
}

TEST(FusedKernels, MatchGenericTwoQubit) {
  const cplx kI(0.0, 1.0);
  const std::size_t n = 5;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      StateVector fused = random_state(n, 101 + a * n + b);
      StateVector generic = fused;

      fused.apply_cnot(a, b);
      generic.apply_2q(gate_matrix_2q(GateKind::CNOT), a, b);
      expect_states_equal(fused, generic);

      fused.apply_cphase(a, b, cplx(-1.0, 0.0));
      generic.apply_2q(gate_matrix_2q(GateKind::CZ), a, b);
      expect_states_equal(fused, generic);

      fused.apply_swap(a, b);
      generic.apply_2q(gate_matrix_2q(GateKind::Swap), a, b);
      expect_states_equal(fused, generic);

      const double theta = 0.3 + static_cast<double>(a + b);
      fused.apply_zz_phase(a, b, std::exp(-kI * (theta / 2.0)),
                           std::exp(kI * (theta / 2.0)));
      generic.apply_2q(gate_matrix_2q(GateKind::RZZ, theta), a, b);
      expect_states_equal(fused, generic);
    }
  }
}

// -------------------------------------------- Randomized circuit streams ----

/// Deterministic random circuit over the full fused-eligible gate set plus
/// generic gates (H, Rx, Ry, Toffoli) so the state stays fully generic.
/// Interleaves measurements so RNG-consuming paths are exercised too.
std::vector<Instruction> random_circuit(std::size_t qubits, std::size_t ops,
                                        std::uint64_t seed,
                                        bool with_measure) {
  Rng rng(seed);
  std::vector<Instruction> out;
  out.reserve(ops);
  const std::vector<GateKind> one_q = {
      GateKind::X,  GateKind::Y,    GateKind::Z, GateKind::H,
      GateKind::S,  GateKind::Sdag, GateKind::T, GateKind::Tdag,
      GateKind::Rx, GateKind::Ry,   GateKind::Rz};
  const std::vector<GateKind> two_q = {GateKind::CNOT, GateKind::CZ,
                                       GateKind::Swap, GateKind::CR,
                                       GateKind::CRK,  GateKind::RZZ};
  for (std::size_t i = 0; i < ops; ++i) {
    const double pick = rng.uniform();
    if (with_measure && pick < 0.05) {
      out.emplace_back(GateKind::Measure,
                       std::vector<QubitIndex>{static_cast<QubitIndex>(
                           rng.uniform_int(qubits))});
      continue;
    }
    if (pick < 0.55) {
      const GateKind k = one_q[rng.uniform_int(one_q.size())];
      const double angle = qasm::gate_has_angle(k)
                               ? rng.uniform(-3.14159, 3.14159)
                               : 0.0;
      out.emplace_back(k,
                       std::vector<QubitIndex>{static_cast<QubitIndex>(
                           rng.uniform_int(qubits))},
                       angle);
    } else {
      const GateKind k = two_q[rng.uniform_int(two_q.size())];
      QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(qubits));
      QubitIndex b = static_cast<QubitIndex>(rng.uniform_int(qubits));
      while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(qubits));
      const double angle = qasm::gate_has_angle(k)
                               ? rng.uniform(-3.14159, 3.14159)
                               : 0.0;
      const std::int64_t param_k =
          qasm::gate_has_int_param(k)
              ? static_cast<std::int64_t>(1 + rng.uniform_int(4))
              : 0;
      out.emplace_back(k, std::vector<QubitIndex>{a, b}, angle, param_k);
    }
  }
  return out;
}

/// Runs a circuit under the given options; returns the simulator for
/// inspection (amplitudes, bits).
Simulator run_circuit(const std::vector<Instruction>& circuit,
                      std::size_t qubits, const SimOptions& options,
                      std::vector<int>* measured = nullptr) {
  Simulator sim(qubits, QubitModel::perfect(), /*seed=*/42, GateDurations{},
                options);
  for (const Instruction& instr : circuit) {
    sim.execute(instr);
    if (measured && instr.kind() == GateKind::Measure)
      measured->push_back(sim.bits()[instr.qubits()[0]]);
  }
  return sim;
}

TEST(KernelEquivalence, FusedMatchesScalarAmplitudesExactly) {
  const std::size_t qubits = 6;
  for (std::uint64_t seed : {7u, 19u, 333u}) {
    const auto circuit = random_circuit(qubits, 120, seed, false);
    SimOptions scalar;
    scalar.fused_kernels = false;
    SimOptions fused;
    fused.fused_kernels = true;

    const Simulator a = run_circuit(circuit, qubits, scalar);
    const Simulator b = run_circuit(circuit, qubits, fused);
    expect_states_equal(a.state(), b.state());
  }
}

TEST(KernelEquivalence, ThreadCountDoesNotChangeAmplitudes) {
  const std::size_t qubits = 8;
  const auto circuit = random_circuit(qubits, 150, 91, false);

  SimOptions base;
  base.threads = 1;
  base.min_parallel_qubits = 0;  // force the parallel code path
  const Simulator ref = run_circuit(circuit, qubits, base);

  for (std::size_t threads : {2u, 3u, 4u}) {
    SimOptions opt = base;
    opt.threads = threads;
    const Simulator got = run_circuit(circuit, qubits, opt);
    expect_states_equal(ref.state(), got.state());
  }
}

TEST(KernelEquivalence, MeasurementStreamsIdenticalAcrossConfigs) {
  const std::size_t qubits = 6;
  const auto circuit = random_circuit(qubits, 200, 55, true);

  SimOptions scalar;
  scalar.fused_kernels = false;
  std::vector<int> ref_bits;
  run_circuit(circuit, qubits, scalar, &ref_bits);
  ASSERT_FALSE(ref_bits.empty());  // circuit must actually measure

  for (std::size_t threads : {1u, 2u, 4u}) {
    SimOptions opt;
    opt.fused_kernels = true;
    opt.threads = threads;
    opt.min_parallel_qubits = 0;
    std::vector<int> bits;
    run_circuit(circuit, qubits, opt, &bits);
    EXPECT_EQ(ref_bits, bits) << "threads=" << threads;
  }
}

TEST(KernelEquivalence, ReductionsExactAcrossThreadCounts) {
  // prob_one and norm use fixed-size chunked reductions: the result must
  // be the same double for any pool size, including above the chunk size.
  const std::size_t qubits = 18;  // 2^18 amplitudes = 4 chunks of 2^16
  StateVector ref = random_state(qubits, 2024);

  std::vector<double> ref_probs(qubits);
  for (std::size_t q = 0; q < qubits; ++q) ref_probs[q] = ref.prob_one(q);
  const double ref_norm = ref.norm();

  for (std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    StateVector s = ref;
    s.set_kernel_policy({&pool, 0});
    for (std::size_t q = 0; q < qubits; ++q)
      EXPECT_EQ(s.prob_one(q), ref_probs[q]) << "q=" << q
                                             << " threads=" << threads;
    EXPECT_EQ(s.norm(), ref_norm) << "threads=" << threads;
  }
}

TEST(KernelEquivalence, NoisyHistogramIdenticalAcrossThreadCounts) {
  // Full pipeline determinism: stochastic error channels consume RNG via
  // probabilities computed by the (possibly threaded) reduction kernels.
  const std::size_t qubits = 5;
  qasm::Program program("noisy_determinism", qubits);
  qasm::Circuit circuit("bell_chain");
  circuit.add(Instruction(GateKind::H, {0}));
  for (std::size_t q = 0; q + 1 < qubits; ++q)
    circuit.add(Instruction(GateKind::CNOT,
                            {static_cast<QubitIndex>(q),
                             static_cast<QubitIndex>(q + 1)}));
  circuit.add(Instruction(GateKind::MeasureAll, {}));
  program.add_circuit(std::move(circuit));

  QubitModel noisy = QubitModel::realistic(0.02, 0.05, 0.01);
  Histogram ref;
  for (std::size_t threads : {1u, 2u, 4u}) {
    SimOptions opt;
    opt.threads = threads;
    opt.min_parallel_qubits = 0;
    Simulator sim(qubits, noisy, /*seed=*/7, GateDurations{}, opt);
    const RunResult r = sim.run(program, 300);
    if (threads == 1)
      ref = r.histogram;
    else
      EXPECT_EQ(ref.counts(), r.histogram.counts()) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace qs::sim
