// Kernel-layer tests: the fork-join thread pool, the fused fast-path
// gate kernels, and the bit-identity contract — scalar, fused and
// threaded execution must produce byte-identical amplitudes and identical
// measurement streams for a fixed seed.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "sim/gates.h"
#include "sim/simulator.h"
#include "sim/statevector.h"

namespace qs::sim {
namespace {

using qasm::GateKind;
using qasm::Instruction;

// ---------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, SliceCoversRangeDisjointly) {
  for (std::size_t count : {0u, 1u, 7u, 64u, 1000u}) {
    for (std::size_t slices : {1u, 2u, 3u, 4u, 7u}) {
      std::size_t covered = 0;
      std::size_t prev_hi = 0;
      for (std::size_t s = 0; s < slices; ++s) {
        std::size_t lo = 0, hi = 0;
        ThreadPool::slice(0, count, slices, s, &lo, &hi);
        EXPECT_EQ(lo, prev_hi);  // contiguous, in order, no overlap
        EXPECT_LE(hi, count);
        covered += hi - lo;
        prev_hi = hi;
      }
      EXPECT_EQ(covered, count);
      EXPECT_EQ(prev_hi, count);
    }
  }
}

TEST(ThreadPool, SliceIsIndependentOfPoolSize) {
  // The partition is a pure function of (range, slices, index) — this is
  // what makes elementwise kernels thread-count invariant.
  std::size_t lo1 = 0, hi1 = 0, lo2 = 0, hi2 = 0;
  ThreadPool::slice(0, 1 << 20, 4, 2, &lo1, &hi1);
  ThreadPool::slice(0, 1 << 20, 4, 2, &lo2, &hi2);
  EXPECT_EQ(lo1, lo2);
  EXPECT_EQ(hi1, hi2);
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads == 0 ? 1u : threads);
    for (std::size_t chunks : {1u, 2u, 5u, 32u, 257u}) {
      std::vector<std::atomic<int>> hits(chunks);
      for (auto& h : hits) h.store(0);
      pool.run_chunks(chunks, [&](std::size_t c) { hits[c].fetch_add(1); });
      for (std::size_t c = 0; c < chunks; ++c)
        EXPECT_EQ(hits[c].load(), 1) << "chunk " << c;
    }
  }
}

TEST(ThreadPool, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.run_chunks(8, [&](std::size_t c) { sum.fetch_add(c + 1); });
    EXPECT_EQ(sum.load(), 36u);
  }
}

TEST(ThreadPool, ConcurrentCallersAreSerialized) {
  // Two external threads sharing one pool: each call must still run every
  // chunk exactly once (job_mutex_ serializes the fork-join epochs).
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  auto hammer = [&] {
    for (int i = 0; i < 100; ++i)
      pool.run_chunks(5, [&](std::size_t) { total.fetch_add(1); });
  };
  std::thread a(hammer), b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2u * 100u * 5u);
}

TEST(SimOptions, ResolveThreads) {
  // Explicit request wins and clamps to [1, 64].
  EXPECT_EQ(resolve_sim_threads(3), 3u);
  EXPECT_EQ(resolve_sim_threads(1000), 64u);
#ifndef _WIN32
  ::setenv("QS_SIM_THREADS", "5", 1);
  EXPECT_EQ(resolve_sim_threads(0), 5u);
  EXPECT_EQ(resolve_sim_threads(2), 2u);  // explicit beats environment
  ::setenv("QS_SIM_THREADS", "garbage", 1);
  EXPECT_EQ(resolve_sim_threads(0), 1u);
  ::unsetenv("QS_SIM_THREADS");
#endif
  EXPECT_EQ(resolve_sim_threads(0), 1u);
}

// ------------------------------------------------- Fused kernel algebra ----

/// Fills a state with a deterministic pseudo-random unit vector.
StateVector random_state(std::size_t qubits, std::uint64_t seed) {
  StateVector s(qubits);
  Rng rng(seed);
  for (StateIndex i = 0; i < s.dimension(); ++i)
    s.set_amplitude(i, cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)));
  s.normalize();
  return s;
}

void expect_states_equal(const StateVector& a, const StateVector& b,
                         double tol = 0.0) {
  ASSERT_EQ(a.dimension(), b.dimension());
  for (StateIndex i = 0; i < a.dimension(); ++i) {
    const cplx da = a.amplitude(i), db = b.amplitude(i);
    if (tol == 0.0) {
      EXPECT_EQ(da.real(), db.real()) << "re idx " << i;
      EXPECT_EQ(da.imag(), db.imag()) << "im idx " << i;
    } else {
      EXPECT_NEAR(da.real(), db.real(), tol) << "re idx " << i;
      EXPECT_NEAR(da.imag(), db.imag(), tol) << "im idx " << i;
    }
  }
}

TEST(FusedKernels, MatchGenericSingleQubit) {
  const cplx kI(0.0, 1.0);
  for (std::size_t q = 0; q < 5; ++q) {
    StateVector fused = random_state(5, 11 + q);
    StateVector generic = fused;

    fused.apply_x(q);
    generic.apply_1q(pauli_x(), q);
    expect_states_equal(fused, generic);

    fused.apply_y(q);
    generic.apply_1q(pauli_y(), q);
    expect_states_equal(fused, generic);

    fused.apply_z(q);
    generic.apply_1q(pauli_z(), q);
    expect_states_equal(fused, generic);

    fused.apply_phase(q, kI);  // S
    generic.apply_1q(phase_s(), q);
    expect_states_equal(fused, generic);

    const double theta = 0.7 + static_cast<double>(q);
    fused.apply_diag(q, std::exp(-kI * (theta / 2.0)),
                     std::exp(kI * (theta / 2.0)));
    generic.apply_1q(rz(theta), q);
    expect_states_equal(fused, generic);
  }
}

TEST(FusedKernels, MatchGenericTwoQubit) {
  const cplx kI(0.0, 1.0);
  const std::size_t n = 5;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      StateVector fused = random_state(n, 101 + a * n + b);
      StateVector generic = fused;

      fused.apply_cnot(a, b);
      generic.apply_2q(gate_matrix_2q(GateKind::CNOT), a, b);
      expect_states_equal(fused, generic);

      fused.apply_cphase(a, b, cplx(-1.0, 0.0));
      generic.apply_2q(gate_matrix_2q(GateKind::CZ), a, b);
      expect_states_equal(fused, generic);

      fused.apply_swap(a, b);
      generic.apply_2q(gate_matrix_2q(GateKind::Swap), a, b);
      expect_states_equal(fused, generic);

      const double theta = 0.3 + static_cast<double>(a + b);
      fused.apply_zz_phase(a, b, std::exp(-kI * (theta / 2.0)),
                           std::exp(kI * (theta / 2.0)));
      generic.apply_2q(gate_matrix_2q(GateKind::RZZ, theta), a, b);
      expect_states_equal(fused, generic);
    }
  }
}

TEST(FusedKernels, DiagWindowMatchesGenericDiagonals) {
  // amp[i] *= table[(i >> shift) & mask] must equal applying the window's
  // diagonal gates one by one through the generic matrix path.
  const cplx kI(0.0, 1.0);
  const std::size_t n = 6;
  for (QubitIndex shift = 0; shift + 2 <= n; ++shift) {
    StateVector windowed = random_state(n, 301 + shift);
    StateVector generic = windowed;

    // Window = RZ(theta) on qubit `shift` then CZ(shift+1, shift).
    const double theta = 0.9 + static_cast<double>(shift);
    const cplx d0 = std::exp(-kI * (theta / 2.0));
    const cplx d1 = std::exp(kI * (theta / 2.0));
    // Table index bit 0 = qubit `shift`, bit 1 = qubit `shift + 1`.
    const cplx table[4] = {d0, d1, d0, -d1};
    windowed.apply_diag_window(shift, 2, table);

    generic.apply_1q(rz(theta), shift);
    generic.apply_2q(gate_matrix_2q(GateKind::CZ), shift + 1, shift);
    expect_states_equal(windowed, generic);
  }

  EXPECT_THROW(StateVector(3).apply_diag_window(2, 2, nullptr),
               std::invalid_argument);
}

// -------------------------------------------- Randomized circuit streams ----

/// Deterministic random circuit over the full fused-eligible gate set plus
/// generic gates (H, Rx, Ry, Toffoli) so the state stays fully generic.
/// Interleaves measurements so RNG-consuming paths are exercised too.
std::vector<Instruction> random_circuit(std::size_t qubits, std::size_t ops,
                                        std::uint64_t seed,
                                        bool with_measure) {
  Rng rng(seed);
  std::vector<Instruction> out;
  out.reserve(ops);
  const std::vector<GateKind> one_q = {
      GateKind::X,  GateKind::Y,    GateKind::Z, GateKind::H,
      GateKind::S,  GateKind::Sdag, GateKind::T, GateKind::Tdag,
      GateKind::Rx, GateKind::Ry,   GateKind::Rz};
  const std::vector<GateKind> two_q = {GateKind::CNOT, GateKind::CZ,
                                       GateKind::Swap, GateKind::CR,
                                       GateKind::CRK,  GateKind::RZZ};
  for (std::size_t i = 0; i < ops; ++i) {
    const double pick = rng.uniform();
    if (with_measure && pick < 0.05) {
      out.emplace_back(GateKind::Measure,
                       std::vector<QubitIndex>{static_cast<QubitIndex>(
                           rng.uniform_int(qubits))});
      continue;
    }
    if (pick < 0.55) {
      const GateKind k = one_q[rng.uniform_int(one_q.size())];
      const double angle = qasm::gate_has_angle(k)
                               ? rng.uniform(-3.14159, 3.14159)
                               : 0.0;
      out.emplace_back(k,
                       std::vector<QubitIndex>{static_cast<QubitIndex>(
                           rng.uniform_int(qubits))},
                       angle);
    } else {
      const GateKind k = two_q[rng.uniform_int(two_q.size())];
      QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(qubits));
      QubitIndex b = static_cast<QubitIndex>(rng.uniform_int(qubits));
      while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(qubits));
      const double angle = qasm::gate_has_angle(k)
                               ? rng.uniform(-3.14159, 3.14159)
                               : 0.0;
      const std::int64_t param_k =
          qasm::gate_has_int_param(k)
              ? static_cast<std::int64_t>(1 + rng.uniform_int(4))
              : 0;
      out.emplace_back(k, std::vector<QubitIndex>{a, b}, angle, param_k);
    }
  }
  return out;
}

/// Runs a circuit under the given options; returns the simulator for
/// inspection (amplitudes, bits).
Simulator run_circuit(const std::vector<Instruction>& circuit,
                      std::size_t qubits, const SimOptions& options,
                      std::vector<int>* measured = nullptr) {
  Simulator sim(qubits, QubitModel::perfect(), /*seed=*/42, GateDurations{},
                options);
  for (const Instruction& instr : circuit) {
    sim.execute(instr);
    if (measured && instr.kind() == GateKind::Measure)
      measured->push_back(sim.bits()[instr.qubits()[0]]);
  }
  return sim;
}

TEST(KernelEquivalence, FusedMatchesScalarAmplitudesExactly) {
  const std::size_t qubits = 6;
  for (std::uint64_t seed : {7u, 19u, 333u}) {
    const auto circuit = random_circuit(qubits, 120, seed, false);
    SimOptions scalar;
    scalar.fused_kernels = false;
    SimOptions fused;
    fused.fused_kernels = true;

    const Simulator a = run_circuit(circuit, qubits, scalar);
    const Simulator b = run_circuit(circuit, qubits, fused);
    expect_states_equal(a.state(), b.state());
  }
}

TEST(KernelEquivalence, ThreadCountDoesNotChangeAmplitudes) {
  const std::size_t qubits = 8;
  const auto circuit = random_circuit(qubits, 150, 91, false);

  SimOptions base;
  base.threads = 1;
  base.min_parallel_qubits = 0;  // force the parallel code path
  const Simulator ref = run_circuit(circuit, qubits, base);

  for (std::size_t threads : {2u, 3u, 4u}) {
    SimOptions opt = base;
    opt.threads = threads;
    const Simulator got = run_circuit(circuit, qubits, opt);
    expect_states_equal(ref.state(), got.state());
  }
}

TEST(KernelEquivalence, MeasurementStreamsIdenticalAcrossConfigs) {
  const std::size_t qubits = 6;
  const auto circuit = random_circuit(qubits, 200, 55, true);

  SimOptions scalar;
  scalar.fused_kernels = false;
  std::vector<int> ref_bits;
  run_circuit(circuit, qubits, scalar, &ref_bits);
  ASSERT_FALSE(ref_bits.empty());  // circuit must actually measure

  for (std::size_t threads : {1u, 2u, 4u}) {
    SimOptions opt;
    opt.fused_kernels = true;
    opt.threads = threads;
    opt.min_parallel_qubits = 0;
    std::vector<int> bits;
    run_circuit(circuit, qubits, opt, &bits);
    EXPECT_EQ(ref_bits, bits) << "threads=" << threads;
  }
}

TEST(KernelEquivalence, ReductionsExactAcrossThreadCounts) {
  // prob_one and norm use fixed-size chunked reductions: the result must
  // be the same double for any pool size, including above the chunk size.
  const std::size_t qubits = 18;  // 2^18 amplitudes = 4 chunks of 2^16
  StateVector ref = random_state(qubits, 2024);

  std::vector<double> ref_probs(qubits);
  for (std::size_t q = 0; q < qubits; ++q) ref_probs[q] = ref.prob_one(q);
  const double ref_norm = ref.norm();

  for (std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    StateVector s = ref;
    s.set_kernel_policy({&pool, 0});
    for (std::size_t q = 0; q < qubits; ++q)
      EXPECT_EQ(s.prob_one(q), ref_probs[q]) << "q=" << q
                                             << " threads=" << threads;
    EXPECT_EQ(s.norm(), ref_norm) << "threads=" << threads;
  }
}

TEST(KernelEquivalence, NoisyHistogramIdenticalAcrossThreadCounts) {
  // Full pipeline determinism: stochastic error channels consume RNG via
  // probabilities computed by the (possibly threaded) reduction kernels.
  const std::size_t qubits = 5;
  qasm::Program program("noisy_determinism", qubits);
  qasm::Circuit circuit("bell_chain");
  circuit.add(Instruction(GateKind::H, {0}));
  for (std::size_t q = 0; q + 1 < qubits; ++q)
    circuit.add(Instruction(GateKind::CNOT,
                            {static_cast<QubitIndex>(q),
                             static_cast<QubitIndex>(q + 1)}));
  circuit.add(Instruction(GateKind::MeasureAll, {}));
  program.add_circuit(std::move(circuit));

  QubitModel noisy = QubitModel::realistic(0.02, 0.05, 0.01);
  Histogram ref;
  for (std::size_t threads : {1u, 2u, 4u}) {
    SimOptions opt;
    opt.threads = threads;
    opt.min_parallel_qubits = 0;
    Simulator sim(qubits, noisy, /*seed=*/7, GateDurations{}, opt);
    const RunResult r = sim.run(program, 300);
    if (threads == 1)
      ref = r.histogram;
    else
      EXPECT_EQ(ref.counts(), r.histogram.counts()) << "threads=" << threads;
  }
}

// ------------------------------------------- SIMD backend & precision ----

/// Deterministic pseudo-random unit state at an explicit tier. The same
/// seed fills the same values whatever the precision/backend, so two
/// states built with equal (qubits, seed, precision) start byte-equal.
StateVector random_tier_state(std::size_t qubits, std::uint64_t seed,
                              Precision precision, SimdMode simd) {
  StateVector s(qubits, precision, /*max_state_bytes=*/0, simd);
  Rng rng(seed);
  for (StateIndex i = 0; i < s.dimension(); ++i)
    s.set_amplitude(i, cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)));
  s.normalize();
  return s;
}

bool simd_available() { return simd_compiled() && simd_cpu_supported(); }

/// Drives every kernel entry point — fused fast paths, generic matrix
/// paths, reductions, measurement collapse — through a scalar-backend and
/// a SIMD-backend state in lockstep, asserting byte equality after each
/// step. This is the per-tier bit-identity contract at its sharpest:
/// whatever the element type, the AVX2 build must produce the very bits
/// the scalar build produces.
void expect_backend_parity(Precision precision) {
  const std::size_t n = 6;
  StateVector a = random_tier_state(n, 99, precision, SimdMode::kOff);
  StateVector b = random_tier_state(n, 99, precision, SimdMode::kAuto);
  ASSERT_FALSE(a.simd_active());
  ASSERT_TRUE(b.simd_active());
  auto sync = [&] { expect_states_equal(a, b); };
  sync();

  const cplx kI(0.0, 1.0);
  a.apply_x(1), b.apply_x(1), sync();
  a.apply_y(3), b.apply_y(3), sync();
  a.apply_z(0), b.apply_z(0), sync();
  a.apply_phase(2, kI), b.apply_phase(2, kI), sync();
  a.apply_diag(4, std::exp(-kI * 0.35), std::exp(kI * 0.35)),
      b.apply_diag(4, std::exp(-kI * 0.35), std::exp(kI * 0.35)), sync();
  a.apply_cnot(0, 5), b.apply_cnot(0, 5), sync();
  a.apply_cphase(2, 4, cplx(-1.0, 0.0)),
      b.apply_cphase(2, 4, cplx(-1.0, 0.0)), sync();
  a.apply_zz_phase(1, 3, std::exp(-kI * 0.2), std::exp(kI * 0.2)),
      b.apply_zz_phase(1, 3, std::exp(-kI * 0.2), std::exp(kI * 0.2)), sync();
  a.apply_swap(0, 4), b.apply_swap(0, 4), sync();
  a.apply_1q(hadamard(), 2), b.apply_1q(hadamard(), 2), sync();
  a.apply_2q(gate_matrix_2q(GateKind::CNOT), 4, 1),
      b.apply_2q(gate_matrix_2q(GateKind::CNOT), 4, 1), sync();
  a.apply_controlled_1q(gate_t(), {1, 3}, 0),
      b.apply_controlled_1q(gate_t(), {1, 3}, 0), sync();

  // Reductions: the ordered-accumulation contract makes these exact.
  for (std::size_t q = 0; q < n; ++q)
    EXPECT_EQ(a.prob_one(q), b.prob_one(q)) << "q=" << q;
  EXPECT_EQ(a.norm(), b.norm());
  EXPECT_EQ(a.cumulative_distribution(), b.cumulative_distribution());

  // Measurement consumes RNG through those reductions, then collapses.
  Rng ra(5), rb(5);
  EXPECT_EQ(a.measure(1, ra), b.measure(1, rb));
  sync();
  a.normalize(), b.normalize(), sync();
}

TEST(SimdBackendParity, F64ByteIdentical) {
  if (!simd_available())
    GTEST_SKIP() << "AVX2 backend not compiled in or CPU lacks AVX2";
  expect_backend_parity(Precision::kF64);
}

TEST(SimdBackendParity, F32ByteIdentical) {
  if (!simd_available())
    GTEST_SKIP() << "AVX2 backend not compiled in or CPU lacks AVX2";
  expect_backend_parity(Precision::kF32);
}

TEST(SimdBackendParity, BackendNameReportsSelection) {
  StateVector forced(4, Precision::kF64, 0, SimdMode::kOff);
  EXPECT_FALSE(forced.simd_active());
  EXPECT_STREQ(forced.backend_name(), "scalar");
  StateVector chosen(4);
  EXPECT_EQ(chosen.simd_active(), simd_selected(SimdMode::kAuto));
  EXPECT_STREQ(chosen.backend_name(),
               simd_selected(SimdMode::kAuto) ? "avx2" : "scalar");
}

TEST(SimdEquivalence, FullCircuitIdenticalAcrossBackendsAndThreads) {
  if (!simd_available())
    GTEST_SKIP() << "AVX2 backend not compiled in or CPU lacks AVX2";
  const std::size_t qubits = 6;
  const auto circuit = random_circuit(qubits, 200, 77, true);

  SimOptions ref_opt;
  ref_opt.simd = SimdMode::kOff;
  std::vector<int> ref_bits;
  const Simulator ref = run_circuit(circuit, qubits, ref_opt, &ref_bits);
  ASSERT_FALSE(ref_bits.empty());

  for (std::size_t threads : {1u, 2u, 4u}) {
    SimOptions opt;
    opt.simd = SimdMode::kAuto;
    opt.threads = threads;
    opt.min_parallel_qubits = 0;
    std::vector<int> bits;
    const Simulator got = run_circuit(circuit, qubits, opt, &bits);
    expect_states_equal(ref.state(), got.state());
    EXPECT_EQ(ref_bits, bits) << "threads=" << threads;
  }
}

TEST(PrecisionTier, F32InternallyIdenticalAcrossBackendsAndThreads) {
  // The f32 tier's own byte-identity class: scalar vs SIMD backend and
  // any thread count must agree bit-for-bit (no AVX2 guard needed — with
  // no SIMD backend the configs coincide and the test is trivially true).
  const std::size_t qubits = 6;
  const auto circuit = random_circuit(qubits, 200, 123, true);

  SimOptions ref_opt;
  ref_opt.precision = Precision::kF32;
  ref_opt.simd = SimdMode::kOff;
  std::vector<int> ref_bits;
  const Simulator ref = run_circuit(circuit, qubits, ref_opt, &ref_bits);
  ASSERT_FALSE(ref_bits.empty());

  for (std::size_t threads : {1u, 2u, 4u}) {
    SimOptions opt;
    opt.precision = Precision::kF32;
    opt.simd = SimdMode::kAuto;
    opt.threads = threads;
    opt.min_parallel_qubits = 0;
    std::vector<int> bits;
    const Simulator got = run_circuit(circuit, qubits, opt, &bits);
    expect_states_equal(ref.state(), got.state());
    EXPECT_EQ(ref_bits, bits) << "threads=" << threads;
  }
}

TEST(PrecisionTier, F32TracksF64WithinRounding) {
  // ~1e-7 per-gate rounding accumulates linearly; 120 gates stay orders
  // of magnitude inside 1e-4.
  const std::size_t qubits = 6;
  const auto circuit = random_circuit(qubits, 120, 31, false);
  SimOptions f64;
  SimOptions f32;
  f32.precision = Precision::kF32;
  const Simulator a = run_circuit(circuit, qubits, f64);
  const Simulator b = run_circuit(circuit, qubits, f32);
  expect_states_equal(a.state(), b.state(), 1e-4);
}

TEST(StateBudget, ByteBudgetReplacesQubitCap) {
  const std::size_t kBudget = std::size_t{16} << 20;  // 16 MiB
  // f64: 2^20 amplitudes x 16 bytes fills the budget exactly.
  EXPECT_NO_THROW(StateVector(20, Precision::kF64, kBudget));
  EXPECT_THROW(StateVector(21, Precision::kF64, kBudget),
               std::invalid_argument);
  // f32 buys exactly one more qubit under the same budget.
  EXPECT_NO_THROW(StateVector(21, Precision::kF32, kBudget));
  EXPECT_THROW(StateVector(22, Precision::kF32, kBudget),
               std::invalid_argument);
}

TEST(StateBudget, OverBudgetErrorReportsRequestedVsAllowedBytes) {
  const std::size_t kBudget = std::size_t{16} << 20;
  try {
    StateVector s(21, Precision::kF64, kBudget);
    FAIL() << "21 qubits at f64 must exceed a 16 MiB budget";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("21 qubits"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string((std::size_t{1} << 21) * 16)),
              std::string::npos)
        << msg;  // requested bytes
    EXPECT_NE(msg.find(std::to_string(kBudget)), std::string::npos)
        << msg;  // allowed bytes
  }
}

TEST(StateBudget, DefaultBudgetAdmits28QubitsF64And29QubitsF32) {
  // Shape-only check against the documented default (no allocation):
  // 2^28 x 16 == 2^29 x 8 == 4 GiB == kDefaultMaxStateBytes.
  EXPECT_EQ((std::size_t{1} << 28) * 16, StateVector::kDefaultMaxStateBytes);
  EXPECT_EQ((std::size_t{1} << 29) * 8, StateVector::kDefaultMaxStateBytes);
  EXPECT_THROW(StateVector(29, Precision::kF64, 0), std::invalid_argument);
  EXPECT_THROW(StateVector(30, Precision::kF32, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qs::sim
