// Tests for the canonical algorithm builders: Deutsch-Jozsa,
// Bernstein-Vazirani, Grover search and quantum phase estimation — each
// verified end to end on the simulator, plus parameterised sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/algorithms.h"
#include "compiler/compiler.h"
#include "sim/simulator.h"

namespace qs::compiler::algorithms {
namespace {

/// Runs the program once and returns the integer read LSB-first from the
/// first `bits` measured classical bits.
std::uint64_t run_and_read(const Program& p, std::size_t bits,
                           std::uint64_t seed = 1) {
  sim::Simulator s(p.qubit_count(), sim::QubitModel::perfect(), seed);
  const auto measured = s.run_once(p.to_qasm());
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits; ++i)
    v |= static_cast<std::uint64_t>(measured[i]) << i;
  return v;
}

// ------------------------------------------------------ Deutsch-Jozsa ----

TEST(DeutschJozsa, ConstantOracleReadsZero) {
  for (std::size_t n : {1u, 3u, 5u}) {
    const Program p = deutsch_jozsa(n, /*oracle_constant=*/true);
    EXPECT_EQ(run_and_read(p, n), 0u) << "n=" << n;
  }
}

TEST(DeutschJozsa, BalancedOracleReadsNonZero) {
  for (std::uint64_t mask : {0b1ull, 0b101ull, 0b111ull}) {
    const Program p = deutsch_jozsa(3, /*oracle_constant=*/false, mask);
    EXPECT_NE(run_and_read(p, 3), 0u) << "mask=" << mask;
  }
}

TEST(DeutschJozsa, SingleQueryOnly) {
  // The whole point: one oracle invocation. Count oracle-kernel gates.
  const Program p = deutsch_jozsa(4, false, 0b1010);
  ASSERT_EQ(p.kernels().size(), 3u);  // prep, oracle, readout
  EXPECT_EQ(p.kernels()[1].circuit().two_qubit_gate_count(), 2u);  // |mask|
}

TEST(DeutschJozsa, RejectsBadArguments) {
  EXPECT_THROW(deutsch_jozsa(0, true), std::invalid_argument);
  EXPECT_THROW(deutsch_jozsa(3, false, 0), std::invalid_argument);
  EXPECT_THROW(deutsch_jozsa(3, false, 0b10000), std::invalid_argument);
}

// -------------------------------------------------- Bernstein-Vazirani ----

class BernsteinVaziraniP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BernsteinVaziraniP, RecoversSecretInOneQuery) {
  const std::uint64_t secret = GetParam();
  const Program p = bernstein_vazirani(5, secret);
  EXPECT_EQ(run_and_read(p, 5), secret);
}

INSTANTIATE_TEST_SUITE_P(Secrets, BernsteinVaziraniP,
                         ::testing::Values(0b00000, 0b00001, 0b10000,
                                           0b10101, 0b11111, 0b01110));

TEST(BernsteinVazirani, WorksThroughTransmonCompilation) {
  // Full-stack: decompose to the native set, then run — answer unchanged.
  const Program p = bernstein_vazirani(4, 0b1011);
  Platform platform = Platform::perfect(5);
  platform.primitive_gates = Platform::superconducting17().primitive_gates;
  Compiler compiler(platform);
  const CompileResult compiled = compiler.compile(p);
  sim::Simulator s(5, sim::QubitModel::perfect(), 3);
  const auto bits = s.run_once(compiled.program);
  std::uint64_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint64_t>(bits[i]) << i;
  EXPECT_EQ(v, 0b1011u);
}

// --------------------------------------------------------------- Grover ----

class GroverSearchP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroverSearchP, FindsMarkedStateWithHighProbability) {
  const std::uint64_t marked = GetParam();
  const Program p = grover_search(4, marked);
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed)
    hits += run_and_read(p, 4, seed) == marked ? 1 : 0;
  // Theoretical success at k_opt for N=16 is ~0.961.
  EXPECT_GE(hits, 16) << "marked=" << marked;
}

INSTANTIATE_TEST_SUITE_P(MarkedStates, GroverSearchP,
                         ::testing::Values(0, 1, 7, 9, 15));

TEST(GroverSearch, IterationCountScaling) {
  EXPECT_EQ(grover_iterations(2), 1u);
  EXPECT_EQ(grover_iterations(4), 3u);
  // pi/4 sqrt(2^10) ~ 25.
  EXPECT_NEAR(static_cast<double>(grover_iterations(10)), 25.0, 1.0);
}

TEST(GroverSearch, TwoQubitCaseIsExact) {
  // N=4 single iteration: certainty.
  const Program p = grover_search(2, 0b10);
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    EXPECT_EQ(run_and_read(p, 2, seed), 0b10u);
}

TEST(GroverSearch, RejectsBadArguments) {
  EXPECT_THROW(grover_search(1, 0), std::invalid_argument);
  EXPECT_THROW(grover_search(13, 0), std::invalid_argument);
  EXPECT_THROW(grover_search(3, 8), std::invalid_argument);
}

// ------------------------------------------------------------------ QPE ----

class PhaseEstimationP : public ::testing::TestWithParam<int> {};

TEST_P(PhaseEstimationP, ExactPhasesMeasureExactly) {
  const int k = GetParam();
  const std::size_t m = 4;
  const double phi = static_cast<double>(k) / 16.0;
  const Program p = phase_estimation(m, phi);
  EXPECT_EQ(run_and_read(p, m), static_cast<std::uint64_t>(k))
      << "phi=" << phi;
}

INSTANTIATE_TEST_SUITE_P(SixteenthTurns, PhaseEstimationP,
                         ::testing::Range(0, 16));

TEST(PhaseEstimation, InexactPhaseLandsOnNeighbour) {
  // phi = 0.2 with 4 bits: 0.2 * 16 = 3.2; mass concentrates on the
  // neighbourhood of 3 (the sinc-shaped QPE distribution).
  const Program p = phase_estimation(4, 0.2);
  int near = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto v = run_and_read(p, 4, seed);
    if (v >= 2 && v <= 5) ++near;
  }
  EXPECT_GE(near, 19);
}

TEST(PhaseEstimation, MorePrecisionBitsSharpenEstimate) {
  // phi = 11/64 is exact at 6 bits but inexact at 3.
  const double phi = 11.0 / 64.0;
  const Program exact = phase_estimation(6, phi);
  EXPECT_EQ(run_and_read(exact, 6), 11u);
}

TEST(PhaseEstimation, RejectsBadArguments) {
  EXPECT_THROW(phase_estimation(0, 0.5), std::invalid_argument);
  EXPECT_THROW(phase_estimation(13, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace qs::compiler::algorithms
