// Tests for the quantum arithmetic module: Cuccaro ripple-carry and
// Draper Fourier-basis adders, verified exhaustively at small widths and
// on superpositions.
#include <gtest/gtest.h>

#include "compiler/arithmetic.h"
#include "compiler/compiler.h"
#include "sim/simulator.h"

namespace qs::compiler::arithmetic {
namespace {

std::uint64_t read_bits(const std::vector<int>& bits, std::size_t offset,
                        std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i)
    v |= static_cast<std::uint64_t>(bits[offset + i]) << i;
  return v;
}

// ---------------------------------------------------- exhaustive sweeps ----

class CuccaroWidthP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CuccaroWidthP, AllInputPairsAddCorrectly) {
  const std::size_t n = GetParam();
  const std::uint64_t mask = (1ULL << n) - 1;
  for (std::uint64_t a = 0; a <= mask; ++a) {
    for (std::uint64_t b = 0; b <= mask; ++b) {
      const Program p = cuccaro_demo(n, a, b);
      sim::Simulator s(2 * n + 1, sim::QubitModel::perfect(), 1);
      const auto bits = s.run_once(p.to_qasm());
      ASSERT_EQ(read_bits(bits, n, n), (a + b) & mask)
          << a << "+" << b << " (n=" << n << ")";
      // The `a` register and the ancilla must be restored.
      // (a register is not measured; check the state directly.)
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CuccaroWidthP, ::testing::Values(1, 2, 3));

class DraperWidthP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DraperWidthP, AllConstantsAddCorrectly) {
  const std::size_t n = GetParam();
  const std::uint64_t mask = (1ULL << n) - 1;
  for (std::uint64_t b = 0; b <= mask; ++b) {
    for (std::uint64_t c = 0; c <= mask; ++c) {
      const Program p = draper_demo(n, b, c);
      sim::Simulator s(n, sim::QubitModel::perfect(), 1);
      const auto bits = s.run_once(p.to_qasm());
      ASSERT_EQ(read_bits(bits, 0, n), (b + c) & mask)
          << b << "+" << c << " (n=" << n << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DraperWidthP, ::testing::Values(1, 2, 3, 4));

// ----------------------------------------------------------- properties ----

TEST(Cuccaro, PreservesInputRegisterAndAncilla) {
  // |a>|b> -> |a>|a+b>: verify the a register and ancilla by state probe.
  const std::size_t n = 3;
  Program p("probe", 2 * n + 1);
  auto& prep = p.add_kernel("prep");
  prep.x(0).x(2);  // a = 0b101
  prep.x(4);       // b = 0b010
  auto& add = p.add_kernel("add");
  cuccaro_add(add, n);
  sim::Simulator s(2 * n + 1);
  s.run_once(p.to_qasm());
  // a register must still read 0b101, ancilla 0.
  EXPECT_NEAR(s.state().prob_one(0), 1.0, 1e-9);
  EXPECT_NEAR(s.state().prob_one(1), 0.0, 1e-9);
  EXPECT_NEAR(s.state().prob_one(2), 1.0, 1e-9);
  EXPECT_NEAR(s.state().prob_one(6), 0.0, 1e-9);
}

TEST(Cuccaro, AddsInSuperposition) {
  // a in (|0> + |1>)/sqrt2, b = 1: result entangles b with a as 1 or 2.
  const std::size_t n = 2;
  Program p("super", 2 * n + 1);
  auto& prep = p.add_kernel("prep");
  prep.h(0);  // a = |0> + |1>
  prep.x(2);  // b = 1
  auto& add = p.add_kernel("add");
  cuccaro_add(add, n);
  sim::Simulator s(2 * n + 1);
  s.run_once(p.to_qasm());
  // Expect equal weight on (a=0,b=01) and (a=1,b=10):
  // basis: q0=a0, q1=a1, q2=b0, q3=b1, q4=anc.
  const double p0 = std::norm(s.state().amplitude(0b00100));  // a=0,b=1
  const double p1 = std::norm(s.state().amplitude(0b01001));  // a=1,b=2
  EXPECT_NEAR(p0, 0.5, 1e-9);
  EXPECT_NEAR(p1, 0.5, 1e-9);
}

TEST(Draper, AdditionIsModular) {
  const Program p = draper_demo(3, 7, 3);  // 10 mod 8 = 2
  sim::Simulator s(3);
  const auto bits = s.run_once(p.to_qasm());
  EXPECT_EQ(read_bits(bits, 0, 3), 2u);
}

TEST(Draper, ZeroConstantIsIdentity) {
  for (std::uint64_t b = 0; b < 8; ++b) {
    const Program p = draper_demo(3, b, 0);
    sim::Simulator s(3);
    const auto bits = s.run_once(p.to_qasm());
    EXPECT_EQ(read_bits(bits, 0, 3), b);
  }
}

TEST(Draper, ComposesWithTransmonCompilation) {
  // The adder survives decomposition to the native gate set.
  const Program p = draper_demo(3, 5, 4);  // 9 mod 8 = 1
  Platform platform = Platform::perfect(3);
  platform.primitive_gates = Platform::superconducting17().primitive_gates;
  Compiler compiler(platform);
  const CompileResult compiled = compiler.compile(p);
  sim::Simulator s(3, sim::QubitModel::perfect(), 2);
  const auto bits = s.run_once(compiled.program);
  EXPECT_EQ(read_bits(bits, 0, 3), 1u);
}

TEST(Arithmetic, ArgumentValidation) {
  EXPECT_THROW(cuccaro_demo(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(cuccaro_demo(9, 0, 0), std::invalid_argument);
  EXPECT_THROW(cuccaro_demo(3, 8, 0), std::invalid_argument);
  EXPECT_THROW(draper_demo(3, 9, 0), std::invalid_argument);
  Kernel small("k", 4);
  EXPECT_THROW(cuccaro_add(small, 3), std::invalid_argument);
}

}  // namespace
}  // namespace qs::compiler::arithmetic
