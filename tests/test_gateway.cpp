// Gateway tests: weighted-fair queue shares, tenant governor (token
// bucket + in-flight quota), ServiceOptions/GatewayOptions validation,
// wire-codec round trips (including randomized fuzz over RunRequests) and
// negative framing cases (truncated frames, oversized length prefixes,
// bad magic, unsupported versions, mid-frame disconnects), and end-to-end
// socket tests against a live GatewayServer: byte-identical histograms vs
// in-process submission, progress streaming, cancellation, admission
// rejections carrying queue depth, metrics exposition and graceful
// shutdown.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "compiler/kernel.h"
#include "qasm/printer.h"
#include "gateway/client.h"
#include "gateway/server.h"
#include "gateway/socket.h"
#include "gateway/tenant.h"
#include "gateway/wire.h"
#include "service/queue.h"
#include "service/service.h"

namespace qs::gateway {
namespace {

using namespace std::chrono_literals;

qasm::Program ghz_program(std::size_t n) {
  compiler::Program p("ghz", n);
  p.add_kernel("main").ghz(n).measure_all();
  return p.to_qasm();
}

std::string ghz_source(std::size_t n) {
  return qasm::to_cqasm(ghz_program(n));
}

runtime::GateAccelerator perfect_gate(std::size_t qubits) {
  return runtime::GateAccelerator(compiler::Platform::perfect(qubits));
}

// ---------------------------------------------------- WeightedFairQueue ----

TEST(WeightedFairQueue, SharesFollowWeightsWithinTenPercent) {
  service::WeightedFairQueue<std::string> q(1024);
  q.set_weight("a", 3.0);
  q.set_weight("b", 1.0);
  q.set_weight("c", 1.0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.try_push("a", 0, "a"));
    ASSERT_TRUE(q.try_push("b", 0, "b"));
    ASSERT_TRUE(q.try_push("c", 0, "c"));
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 100; ++i) ++served[*q.pop()];
  // Weights 3:1:1 over 100 pops -> expected 60/20/20; the acceptance bar
  // is shares within 10% of the weight proportions.
  EXPECT_NEAR(served["a"], 60, 6);
  EXPECT_NEAR(served["b"], 20, 2);
  EXPECT_NEAR(served["c"], 20, 2);
}

TEST(WeightedFairQueue, SingleTenantDegeneratesToPriorityFifo) {
  service::WeightedFairQueue<int> q(64);
  ASSERT_TRUE(q.try_push(1, 0, "t"));
  ASSERT_TRUE(q.try_push(2, 5, "t"));
  ASSERT_TRUE(q.try_push(3, -1, "t"));
  ASSERT_TRUE(q.try_push(4, 5, "t"));
  EXPECT_EQ(*q.pop(), 2);  // priority 5, first in
  EXPECT_EQ(*q.pop(), 4);  // priority 5, second in
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 3);
}

TEST(WeightedFairQueue, PriorityIsScopedWithinTenant) {
  // A high-priority job from tenant b does not jump tenant a's turn: the
  // inter-tenant schedule is weight-driven, priority only orders b's own
  // sub-queue.
  service::WeightedFairQueue<std::string> q(64);
  ASSERT_TRUE(q.try_push("a1", 0, "a"));
  ASSERT_TRUE(q.try_push("b-low", 0, "b"));
  ASSERT_TRUE(q.try_push("b-high", 9, "b"));
  std::map<std::string, int> pos;
  for (int i = 0; i < 3; ++i) pos[*q.pop()] = i;
  EXPECT_LT(pos["b-high"], pos["b-low"]);  // priority within tenant b
  EXPECT_LT(pos["a1"], pos["b-low"]);      // a got its fair turn
}

TEST(WeightedFairQueue, IdleTenantEarnsNoBankedCredit) {
  service::WeightedFairQueue<std::string> q(64);
  q.set_weight("busy", 1.0);
  q.set_weight("idle", 1.0);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.try_push("busy", 0, "busy"));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*q.pop(), "busy");
  // "idle" arrives late; equal weight means alternation from here on, not
  // a catch-up burst of 5.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push("idle", 0, "idle"));
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) order.push_back(*q.pop());
  EXPECT_EQ(std::count(order.begin(), order.end(), "idle"), 2);
}

TEST(WeightedFairQueue, TryPushRejectsWhenFullAndDrainsOnClose) {
  service::WeightedFairQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1, 0, "a"));
  EXPECT_TRUE(q.try_push(2, 0, "b"));
  EXPECT_FALSE(q.try_push(3, 0, "c"));
  q.close();
  EXPECT_FALSE(q.try_push(4, 0, "a"));
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

// ------------------------------------------------------- TenantGovernor ----

TEST(TenantGovernor, BurstThenRateLimit) {
  TenantQuota quota;
  quota.submit_rate = 0.001;  // effectively no refill during the test
  quota.burst = 3.0;
  quota.max_inflight = 100;
  TenantGovernor gov(quota, {});
  EXPECT_TRUE(gov.admit("t").ok());
  EXPECT_TRUE(gov.admit("t").ok());
  EXPECT_TRUE(gov.admit("t").ok());
  const Status s = gov.admit("t");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("rate limit"), std::string::npos);
}

TEST(TenantGovernor, InflightQuotaReleasedOnRetire) {
  TenantQuota quota;
  quota.submit_rate = 1e6;
  quota.burst = 1e6;
  quota.max_inflight = 2;
  TenantGovernor gov(quota, {});
  EXPECT_TRUE(gov.admit("t").ok());
  EXPECT_TRUE(gov.admit("t").ok());
  const Status s = gov.admit("t");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("in-flight"), std::string::npos);
  gov.release("t");
  EXPECT_TRUE(gov.admit("t").ok());
  EXPECT_EQ(gov.inflight("t"), 2u);
}

TEST(TenantGovernor, QuotasAreIndependentPerTenant) {
  TenantQuota quota;
  quota.submit_rate = 1e6;
  quota.burst = 1e6;
  quota.max_inflight = 1;
  TenantGovernor gov(quota, {{"vip", TenantQuota{1e6, 1e6, 8}}});
  EXPECT_TRUE(gov.admit("a").ok());
  EXPECT_FALSE(gov.admit("a").ok());
  EXPECT_TRUE(gov.admit("b").ok());  // b unaffected by a's quota
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(gov.admit("vip").ok());
  EXPECT_FALSE(gov.admit("vip").ok());
}

// ----------------------------------------------------- RuntimeEstimator ----

TEST(RuntimeEstimator, UnprimedEstimateIsZero) {
  RuntimeEstimator est;
  EXPECT_EQ(est.estimate_us(), 0.0);
  // Negative observations are garbage (clock skew) and must not prime.
  est.observe(-50.0);
  EXPECT_EQ(est.estimate_us(), 0.0);
}

TEST(RuntimeEstimator, FirstObservationPrimesExactly) {
  RuntimeEstimator est;
  est.observe(1000.0);
  EXPECT_DOUBLE_EQ(est.estimate_us(), 1000.0);
}

TEST(RuntimeEstimator, EwmaFoldsWithAlphaOneFifth) {
  RuntimeEstimator est;
  est.observe(100.0);
  est.observe(200.0);  // 0.8 * 100 + 0.2 * 200
  EXPECT_DOUBLE_EQ(est.estimate_us(), 120.0);
  est.observe(-1.0);  // ignored after priming too
  EXPECT_DOUBLE_EQ(est.estimate_us(), 120.0);
}

TEST(RuntimeEstimator, ConvergesToStableRuntime) {
  RuntimeEstimator est;
  est.observe(10.0);  // stale outlier
  for (int i = 0; i < 60; ++i) est.observe(5000.0);
  EXPECT_NEAR(est.estimate_us(), 5000.0, 1.0);
  EXPECT_LE(est.estimate_us(), 5000.0);  // approaches from below
}

// ----------------------------------------------------- Option validation ----

TEST(ServiceOptionsValidation, RejectsZeroWorkersAndZeroQueue) {
  service::ServiceOptions opts;
  opts.workers = 0;
  EXPECT_EQ(opts.validate().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(service::QuantumService(perfect_gate(2), opts),
               std::invalid_argument);

  service::ServiceOptions opts2;
  opts2.queue_capacity = 0;
  EXPECT_EQ(opts2.validate().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(service::QuantumService(perfect_gate(2), opts2),
               std::invalid_argument);
}

TEST(ServiceOptionsValidation, RejectsNonPositiveTenantWeights) {
  service::ServiceOptions opts;
  opts.default_tenant_weight = 0.0;
  EXPECT_EQ(opts.validate().code(), StatusCode::kInvalidArgument);

  service::ServiceOptions opts2;
  opts2.tenant_weights["t"] = -1.0;
  EXPECT_EQ(opts2.validate().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(service::QuantumService(perfect_gate(2), opts2),
               std::invalid_argument);
}

TEST(GatewayOptionsValidation, RejectsNonPositiveTokenBucketRates) {
  GatewayOptions opts;
  opts.default_quota.submit_rate = 0.0;
  EXPECT_EQ(opts.validate().code(), StatusCode::kInvalidArgument);

  GatewayOptions opts2;
  opts2.tenant_quotas["t"].submit_rate = -5.0;
  EXPECT_EQ(opts2.validate().code(), StatusCode::kInvalidArgument);

  GatewayOptions opts3;
  opts3.default_quota.burst = 0.0;
  EXPECT_EQ(opts3.validate().code(), StatusCode::kInvalidArgument);

  GatewayOptions opts4;
  opts4.default_quota.max_inflight = 0;
  EXPECT_EQ(opts4.validate().code(), StatusCode::kInvalidArgument);
}

TEST(GatewayOptionsValidation, ConstructorThrowsOnBadConfig) {
  service::QuantumService svc(perfect_gate(2));
  GatewayOptions opts;
  opts.max_connections = 0;
  EXPECT_THROW(GatewayServer(svc, opts), std::invalid_argument);
}

TEST(RunRequestValidation, RejectsBadTenantNames) {
  runtime::RunRequest r =
      runtime::RunRequest::gate_source(ghz_source(2), 16);
  r.tenant = std::string(65, 'x');
  EXPECT_EQ(r.validate().code(), StatusCode::kInvalidArgument);
  r.tenant = "has space";
  EXPECT_EQ(r.validate().code(), StatusCode::kInvalidArgument);
  r.tenant = "quote\"y";
  EXPECT_EQ(r.validate().code(), StatusCode::kInvalidArgument);
  r.tenant = "team-a_01.prod";
  EXPECT_TRUE(r.validate().ok());
}

// ------------------------------------------------------------ Wire codec ----

TEST(WireCodec, StatusCodeWireNumberingRoundTrips) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kCancelled, StatusCode::kInvalidArgument,
        StatusCode::kDeadlineExceeded, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_EQ(status_code_from_wire(status_code_to_wire(code)), code);
  }
  // Unknown wire values must decode to kInternal, never crash.
  EXPECT_EQ(status_code_from_wire(12345), StatusCode::kInternal);
}

runtime::RunRequest random_request(std::mt19937_64& rng) {
  runtime::RunRequest r;
  const auto rand_string = [&](std::size_t max_len) {
    std::uniform_int_distribution<std::size_t> len(0, max_len);
    std::uniform_int_distribution<int> ch(0x21, 0x7e);
    std::string s(len(rng), ' ');
    for (auto& c : s)
      do {
        c = static_cast<char>(ch(rng));
      } while (c == '"');
    return s;
  };
  r.tenant = rand_string(16);
  r.session = rng();
  if (rng() % 2 == 0) {
    r.program_text = rand_string(200);
  } else {
    const std::size_t n = 1 + rng() % 8;
    anneal::Qubo qubo(n);
    const std::size_t terms = rng() % 12;
    std::uniform_real_distribution<double> w(-4.0, 4.0);
    for (std::size_t t = 0; t < terms; ++t)
      qubo.add(rng() % n, rng() % n, w(rng));
    r.qubo = std::move(qubo);
  }
  r.shots = 1 + rng() % 5000;
  r.seed = rng();
  r.priority = static_cast<int>(rng() % 21) - 10;
  if (rng() % 2 == 0)
    r.deadline = std::chrono::microseconds(rng() % 10'000'000);
  r.sim_threads = rng() % 8;
  r.tag = rand_string(24);
  return r;
}

TEST(WireCodec, RunRequestRoundTripFuzz) {
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    const runtime::RunRequest in = random_request(rng);
    Encoder e;
    encode_run_request(in, &e);
    Decoder d(e.bytes());
    runtime::RunRequest out;
    ASSERT_TRUE(decode_run_request(&d, &out)) << d.status().to_string();
    EXPECT_EQ(out.tenant, in.tenant);
    EXPECT_EQ(out.session, in.session);
    EXPECT_EQ(out.shots, in.shots);
    EXPECT_EQ(out.seed, in.seed);
    EXPECT_EQ(out.priority, in.priority);
    EXPECT_EQ(out.sim_threads, in.sim_threads);
    EXPECT_EQ(out.tag, in.tag);
    ASSERT_EQ(out.deadline.has_value(), in.deadline.has_value());
    if (in.deadline) {
      EXPECT_EQ(std::chrono::duration_cast<std::chrono::microseconds>(
                    *out.deadline),
                std::chrono::duration_cast<std::chrono::microseconds>(
                    *in.deadline));
    }
    ASSERT_EQ(out.program_text.has_value(), in.program_text.has_value());
    if (in.program_text) {
      EXPECT_EQ(*out.program_text, *in.program_text);
    }
    ASSERT_EQ(out.qubo.has_value(), in.qubo.has_value());
    if (in.qubo) {
      EXPECT_EQ(out.qubo->size(), in.qubo->size());
      EXPECT_EQ(out.qubo->terms(), in.qubo->terms());
    }
  }
}

TEST(WireCodec, TruncatedRunRequestNeverDecodesAndNeverCrashes) {
  std::mt19937_64 rng(7);
  const runtime::RunRequest in = random_request(rng);
  Encoder e;
  encode_run_request(in, &e);
  const auto& bytes = e.bytes();
  // Every strict prefix must fail with a typed status, not crash or
  // half-populate.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Decoder d(bytes.data(), cut);
    runtime::RunRequest out;
    EXPECT_FALSE(decode_run_request(&d, &out)) << "prefix length " << cut;
    EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireCodec, RunResultRoundTripsIncludingErrorStatus) {
  runtime::RunResult in;
  in.job_id = 42;
  in.kind = runtime::JobKind::Anneal;
  in.tag = "route";
  in.status = Status::DeadlineExceeded("expired mid-run");
  in.histogram.add("0101", 7);
  in.histogram.add("1111", 3);
  in.best_solution = {0, 1, 0, 1};
  in.best_energy = -3.5;
  in.stats.queue_wait_us = 12.5;
  in.stats.run_us = 480.0;
  in.stats.retries = 2;
  in.stats.shards = 4;
  in.stats.sampled = true;

  Encoder e;
  encode_run_result(in, &e);
  Decoder d(e.bytes());
  runtime::RunResult out;
  ASSERT_TRUE(decode_run_result(&d, &out));
  EXPECT_EQ(out.job_id, in.job_id);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.tag, in.tag);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.histogram.counts(), in.histogram.counts());
  EXPECT_EQ(out.best_solution, in.best_solution);
  EXPECT_DOUBLE_EQ(out.best_energy, in.best_energy);
  EXPECT_EQ(out.stats.retries, in.stats.retries);
  EXPECT_EQ(out.stats.shards, in.stats.shards);
  EXPECT_TRUE(out.stats.sampled);
}

TEST(WireCodec, TrailingGarbageIsAFramingError) {
  Encoder e;
  encode_cancel(CancelRequest{9}, &e);
  auto bytes = e.take();
  bytes.push_back(0xff);
  Decoder d(bytes);
  CancelRequest out;
  EXPECT_FALSE(decode_cancel(&d, &out));
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireCodec, StringLengthPrefixBeyondPayloadIsRejected) {
  Encoder e;
  e.u32(1000);  // claims 1000 bytes follow
  e.u8('x');    // only one does
  Decoder d(e.bytes());
  std::string s;
  EXPECT_FALSE(d.str(&s));
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

// Frame-level negatives run over a loopback socketpair so the read path is
// the real one the server uses.
struct SocketPair {
  Socket a, b;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

TEST(WireFraming, RoundTripsOverSocket) {
  SocketPair sp;
  Encoder e;
  encode_submit_reply(SubmitReply{77}, &e);
  ASSERT_TRUE(write_frame(sp.a, Op::kSubmitOk, e.bytes()).ok());
  Frame f;
  ASSERT_TRUE(read_frame(sp.b, &f).ok());
  EXPECT_EQ(f.op, Op::kSubmitOk);
  EXPECT_EQ(f.version, kProtocolVersion);
  Decoder d(f.payload);
  SubmitReply reply;
  ASSERT_TRUE(decode_submit_reply(&d, &reply));
  EXPECT_EQ(reply.job_id, 77u);
}

TEST(WireFraming, BadMagicIsInvalidArgument) {
  SocketPair sp;
  Encoder e;
  e.u32(0xdeadbeef);  // wrong magic
  e.u16(kProtocolVersion);
  e.u16(static_cast<std::uint16_t>(Op::kSubmit));
  e.u32(0);
  ASSERT_TRUE(write_all(sp.a, e.bytes().data(), e.bytes().size()).ok());
  Frame f;
  const Status s = read_frame(sp.b, &f);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("magic"), std::string::npos);
}

TEST(WireFraming, UnsupportedVersionIsInvalidArgument) {
  SocketPair sp;
  Encoder e;
  e.u32(kMagic);
  e.u16(99);  // future protocol version
  e.u16(static_cast<std::uint16_t>(Op::kSubmit));
  e.u32(0);
  ASSERT_TRUE(write_all(sp.a, e.bytes().data(), e.bytes().size()).ok());
  Frame f;
  const Status s = read_frame(sp.b, &f);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(WireFraming, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  SocketPair sp;
  Encoder e;
  e.u32(kMagic);
  e.u16(kProtocolVersion);
  e.u16(static_cast<std::uint16_t>(Op::kSubmit));
  e.u32(kMaxPayloadBytes + 1);
  ASSERT_TRUE(write_all(sp.a, e.bytes().data(), e.bytes().size()).ok());
  Frame f;
  const Status s = read_frame(sp.b, &f);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("cap"), std::string::npos);
}

TEST(WireFraming, MidFrameDisconnectIsTypedUnavailable) {
  SocketPair sp;
  Encoder e;
  e.u32(kMagic);
  e.u16(kProtocolVersion);
  e.u16(static_cast<std::uint16_t>(Op::kSubmit));
  e.u32(100);  // promises 100 payload bytes
  e.u64(0);    // delivers 8
  ASSERT_TRUE(write_all(sp.a, e.bytes().data(), e.bytes().size()).ok());
  sp.a.close();  // peer dies mid-frame
  Frame f;
  const Status s = read_frame(sp.b, &f);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("mid-frame"), std::string::npos);
}

TEST(WireFraming, CleanEofBetweenFramesIsDistinguishable) {
  SocketPair sp;
  sp.a.close();
  Frame f;
  const Status s = read_frame(sp.b, &f);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "connection closed");
}

// ------------------------------------------------------------ End-to-end ----

struct LiveGateway {
  service::QuantumService svc;
  GatewayServer server;

  explicit LiveGateway(service::ServiceOptions sopts = {},
                       GatewayOptions gopts = {})
      : svc(perfect_gate(8), runtime::AnnealAccelerator(/*capacity=*/8),
            std::move(sopts)),
        server(svc, std::move(gopts)) {
    const Status s = server.start();
    EXPECT_TRUE(s.ok()) << s.to_string();
  }
};

TEST(GatewayEndToEnd, HistogramByteIdenticalToInProcessSubmission) {
  LiveGateway gw;
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());
  EXPECT_EQ(client.version(), kProtocolVersion);

  runtime::RunRequest request =
      runtime::RunRequest::gate_source(ghz_source(4), 512, /*seed=*/99);
  request.tenant = "tenant-a";

  const auto id = client.submit(request);
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  const auto remote = client.wait(*id);
  ASSERT_TRUE(remote.ok()) << remote.status().to_string();
  ASSERT_TRUE(remote->status.ok()) << remote->status.to_string();

  // The determinism contract: same source, shots, seed and shard size
  // produce the same histogram — through the wire or in process.
  service::QuantumService local(perfect_gate(8));
  const runtime::RunResult direct =
      local
          .submit(runtime::RunRequest::gate_source(ghz_source(4), 512,
                                                   /*seed=*/99))
          .get();
  ASSERT_TRUE(direct.status.ok());
  EXPECT_EQ(remote->histogram.counts(), direct.histogram.counts());
  EXPECT_EQ(remote->histogram.total(), 512u);
}

TEST(GatewayEndToEnd, AnnealJobsRoundTrip) {
  LiveGateway gw;
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  anneal::Qubo qubo(3);
  qubo.add(0, 0, 1.0);
  qubo.add(1, 1, 1.0);
  qubo.add(2, 2, -2.0);
  const auto id =
      client.submit(runtime::RunRequest::anneal(qubo, 64, /*seed=*/5));
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  const auto result = client.wait(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.to_string();
  EXPECT_EQ(result->kind, runtime::JobKind::Anneal);
  EXPECT_EQ(result->best_solution, (std::vector<int>{0, 0, 1}));
  EXPECT_DOUBLE_EQ(result->best_energy, -2.0);
}

TEST(GatewayEndToEnd, MalformedRequestIsTypedInvalidArgument) {
  LiveGateway gw;
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  runtime::RunRequest bad;  // no payload at all
  bad.shots = 16;
  const auto id = client.submit(bad);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);

  // The connection survives a rejected submit.
  const auto good = client.submit(
      runtime::RunRequest::gate_source(ghz_source(2), 32));
  ASSERT_TRUE(good.ok()) << good.status().to_string();
  EXPECT_TRUE(client.wait(*good).ok());
}

TEST(GatewayEndToEnd, QueueFullShedsWithDepthNotSilently) {
  service::ServiceOptions sopts;
  sopts.workers = 1;
  sopts.queue_capacity = 1;
  sopts.start_paused = true;
  LiveGateway gw(sopts);
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  const auto first = client.submit(
      runtime::RunRequest::gate_source(ghz_source(2), 32));
  ASSERT_TRUE(first.ok()) << first.status().to_string();

  // Queue holds one paused job; the next submit must shed at admission
  // with the depth attached, not block and not vanish.
  const auto second = client.submit(
      runtime::RunRequest::gate_source(ghz_source(2), 32));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client.last_queue_depth(), 1u);

  gw.svc.resume();
  const auto result = client.wait(*first);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->status.ok());
}

TEST(GatewayEndToEnd, TenantInflightQuotaRejectsExcess) {
  GatewayOptions gopts;
  gopts.default_quota.max_inflight = 1;
  service::ServiceOptions sopts;
  sopts.start_paused = true;
  LiveGateway gw(sopts, gopts);
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  runtime::RunRequest request =
      runtime::RunRequest::gate_source(ghz_source(2), 32);
  request.tenant = "small";
  const auto first = client.submit(request);
  ASSERT_TRUE(first.ok());
  const auto second = client.submit(request);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("in-flight"), std::string::npos);

  // Retrieving the first job returns the slot.
  gw.svc.resume();
  ASSERT_TRUE(client.wait(*first).ok());
  const auto third = client.submit(request);
  EXPECT_TRUE(third.ok()) << third.status().to_string();
  ASSERT_TRUE(client.wait(*third).ok());
}

TEST(GatewayEndToEnd, TokenBucketRateLimitsPerTenant) {
  GatewayOptions gopts;
  gopts.tenant_quotas["chatty"] = TenantQuota{/*submit_rate=*/0.001,
                                              /*burst=*/2.0,
                                              /*max_inflight=*/100};
  LiveGateway gw({}, gopts);
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  runtime::RunRequest request =
      runtime::RunRequest::gate_source(ghz_source(2), 16);
  request.tenant = "chatty";
  const auto a = client.submit(request);
  const auto b = client.submit(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto c = client.submit(request);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(c.status().message().find("rate limit"), std::string::npos);

  // Other tenants are untouched by chatty's empty bucket.
  request.tenant = "quiet";
  const auto d = client.submit(request);
  EXPECT_TRUE(d.ok()) << d.status().to_string();
  ASSERT_TRUE(client.wait(*a).ok());
  ASSERT_TRUE(client.wait(*b).ok());
  ASSERT_TRUE(client.wait(*d).ok());
}

TEST(GatewayEndToEnd, CancelResolvesToCancelled) {
  service::ServiceOptions sopts;
  sopts.start_paused = true;  // job cannot dispatch before the cancel lands
  LiveGateway gw(sopts);
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  const auto id = client.submit(
      runtime::RunRequest::gate_source(ghz_source(2), 64));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.cancel(*id).ok());
  gw.svc.resume();
  const auto result = client.wait(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status.code(), StatusCode::kCancelled);
}

TEST(GatewayEndToEnd, StreamProgressDeliversShardSnapshots) {
  service::ServiceOptions sopts;
  sopts.sampling_enabled = false;  // force per-shot work so shards take time
  sopts.shard_shots = 64;
  LiveGateway gw(sopts);
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  runtime::RunRequest request =
      runtime::RunRequest::gate_source(ghz_source(8), 2048, /*seed=*/3);
  const auto id = client.submit(request);
  ASSERT_TRUE(id.ok());

  std::vector<ProgressUpdate> updates;
  const Status s = client.stream_progress(
      *id, [&](const ProgressUpdate& u) { updates.push_back(u); });
  ASSERT_TRUE(s.ok()) << s.to_string();

  const auto result = client.wait(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  EXPECT_EQ(result->histogram.total(), 2048u);

  // 2048 shots / 64-shot shards = 32 shard boundaries; the stream must
  // have caught at least one intermediate snapshot, monotone in seq, with
  // a partial histogram that never exceeds the final total.
  ASSERT_FALSE(updates.empty());
  std::uint64_t prev_seq = 0;
  for (const auto& u : updates) {
    EXPECT_GT(u.seq, prev_seq);
    prev_seq = u.seq;
    EXPECT_EQ(u.shards_total, 32u);
    EXPECT_LE(u.shards_done, 32u);
    EXPECT_LE(u.partial.total(), 2048u);
    EXPECT_EQ(u.partial.total(), u.shards_done * 64u);
  }
}

TEST(GatewayEndToEnd, MetricsOpExposesHistogramsAndTenantFamilies) {
  LiveGateway gw;
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  runtime::RunRequest request =
      runtime::RunRequest::gate_source(ghz_source(2), 32);
  request.tenant = "acme";
  const auto id = client.submit(request);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.wait(*id).ok());

  const auto text = client.metrics();
  ASSERT_TRUE(text.ok()) << text.status().to_string();
  EXPECT_NE(text->find("qs_queue_wait_seconds"), std::string::npos);
  EXPECT_NE(text->find("qs_tenant_admitted_total{tenant=\"acme\"}"),
            std::string::npos);
  EXPECT_NE(text->find("qs_tenant_inflight{tenant=\"acme\"}"),
            std::string::npos);
  EXPECT_NE(text->find("qs_gateway_submits_total"), std::string::npos);
}

TEST(GatewayEndToEnd, VersionNegotiationRefusesDisjointRanges) {
  LiveGateway gw;
  Socket sock;
  ASSERT_TRUE(connect_tcp("127.0.0.1", gw.server.port(), &sock).ok());

  HelloRequest hello;
  hello.min_version = 99;  // future client, no overlap with the server
  hello.max_version = 99;
  hello.client_name = "from-the-future";
  Encoder e;
  encode_hello(hello, &e);
  ASSERT_TRUE(write_frame(sock, Op::kHello, e.bytes()).ok());

  Frame f;
  ASSERT_TRUE(read_frame(sock, &f).ok());
  ASSERT_EQ(f.op, Op::kError);
  WireError err;
  Decoder d(f.payload);
  ASSERT_TRUE(decode_error(&d, &err));
  EXPECT_EQ(err.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(err.status.message().find("version"), std::string::npos);
}

TEST(GatewayEndToEnd, FirstFrameMustBeHello) {
  LiveGateway gw;
  Socket sock;
  ASSERT_TRUE(connect_tcp("127.0.0.1", gw.server.port(), &sock).ok());

  Encoder e;
  encode_poll(PollRequest{1, 0}, &e);
  ASSERT_TRUE(write_frame(sock, Op::kPoll, e.bytes()).ok());

  Frame f;
  ASSERT_TRUE(read_frame(sock, &f).ok());
  ASSERT_EQ(f.op, Op::kError);
  WireError err;
  Decoder d(f.payload);
  ASSERT_TRUE(decode_error(&d, &err));
  EXPECT_EQ(err.status.code(), StatusCode::kFailedPrecondition);
}

TEST(GatewayEndToEnd, GarbageBytesCloseTheConnectionWithoutCrashing) {
  LiveGateway gw;
  Socket sock;
  ASSERT_TRUE(connect_tcp("127.0.0.1", gw.server.port(), &sock).ok());
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(write_all(sock, garbage.data(), garbage.size()).ok());
  // The server cannot resynchronize a corrupt stream: it hangs up.
  Frame f;
  EXPECT_FALSE(read_frame(sock, &f).ok());

  // And the gateway still serves fresh connections.
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());
  const auto id = client.submit(
      runtime::RunRequest::gate_source(ghz_source(2), 16));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(client.wait(*id).ok());
}

TEST(GatewayEndToEnd, DisconnectedClientsJobsAreCancelledAndReleased) {
  GatewayOptions gopts;
  gopts.default_quota.max_inflight = 1;
  service::ServiceOptions sopts;
  sopts.start_paused = true;
  LiveGateway gw(sopts, gopts);

  {
    GatewayClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());
    runtime::RunRequest request =
        runtime::RunRequest::gate_source(ghz_source(2), 32);
    request.tenant = "droppy";
    ASSERT_TRUE(client.submit(request).ok());
  }  // connection drops with the job unretrieved

  // The dead connection's in-flight slot must come back; bounded wait for
  // the server to reap the connection.
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  GatewayClient client2;
  ASSERT_TRUE(client2.connect("127.0.0.1", gw.server.port()).ok());
  runtime::RunRequest request =
      runtime::RunRequest::gate_source(ghz_source(2), 32);
  request.tenant = "droppy";
  for (;;) {
    const auto id = client2.submit(request);
    if (id.ok()) {
      gw.svc.resume();
      ASSERT_TRUE(client2.wait(*id).ok());
      break;
    }
    ASSERT_EQ(id.status().code(), StatusCode::kResourceExhausted);
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "slot never released";
    std::this_thread::sleep_for(5ms);
  }
}

TEST(GatewayEndToEnd, GracefulShutdownRejectsNewWorkAndDrains) {
  GatewayOptions gopts;
  gopts.drain_timeout = std::chrono::milliseconds(5000);
  service::ServiceOptions sopts;
  sopts.sampling_enabled = false;
  sopts.shard_shots = 64;
  LiveGateway gw(sopts, gopts);
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  const auto slow = client.submit(
      runtime::RunRequest::gate_source(ghz_source(8), 1024));
  ASSERT_TRUE(slow.ok());

  std::thread shutter([&] { gw.server.shutdown(); });
  // Wait until the drain gate is actually closed, then verify the reject.
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  for (;;) {
    const auto extra = client.submit(
        runtime::RunRequest::gate_source(ghz_source(2), 16));
    if (!extra.ok()) {
      EXPECT_EQ(extra.status().code(), StatusCode::kUnavailable);
      EXPECT_NE(extra.status().message().find("draining"), std::string::npos);
      break;
    }
    // Raced ahead of the drain flag: retrieve and try again.
    ASSERT_TRUE(client.wait(*extra).ok());
    ASSERT_LT(std::chrono::steady_clock::now(), give_up);
  }

  // The already-admitted job survives the drain and is retrievable.
  const auto result = client.wait(*slow);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->status.ok());
  EXPECT_EQ(result->histogram.total(), 1024u);
  shutter.join();
  EXPECT_EQ(gw.server.outstanding_jobs(), 0u);
}

TEST(GatewayEndToEnd, WeightedTenantsShareDispatchByWeight) {
  service::ServiceOptions sopts;
  sopts.workers = 1;
  sopts.queue_capacity = 64;
  sopts.start_paused = true;  // let the backlog build, then release
  sopts.tenant_weights = {{"gold", 3.0}, {"silver", 1.0}, {"bronze", 1.0}};
  LiveGateway gw(sopts);
  GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", gw.server.port()).ok());

  std::map<std::string, std::vector<std::uint64_t>> ids;
  for (int i = 0; i < 10; ++i) {
    for (const char* tenant : {"gold", "silver", "bronze"}) {
      runtime::RunRequest request =
          runtime::RunRequest::gate_source(ghz_source(2), 16);
      request.tenant = tenant;
      const auto id = client.submit(request);
      ASSERT_TRUE(id.ok()) << id.status().to_string();
      ids[tenant].push_back(*id);
    }
  }
  gw.svc.resume();

  std::map<std::string, std::vector<std::uint64_t>> dispatch_seq;
  for (auto& [tenant, jobs] : ids)
    for (const auto id : jobs) {
      const auto result = client.wait(id);
      ASSERT_TRUE(result.ok());
      ASSERT_TRUE(result->status.ok());
      dispatch_seq[tenant].push_back(result->stats.dispatch_seq);
    }

  // Among the first 15 dispatches, weights 3:1:1 predict 9/3/3. Allow one
  // slot of slack (the resume point is not atomic with the backlog).
  std::map<std::string, int> early;
  for (const auto& [tenant, seqs] : dispatch_seq)
    for (const auto seq : seqs)
      if (seq <= 15) ++early[tenant];
  EXPECT_NEAR(early["gold"], 9, 1);
  EXPECT_NEAR(early["silver"], 3, 1);
  EXPECT_NEAR(early["bronze"], 3, 1);
}

}  // namespace
}  // namespace qs::gateway
