// Targeted tests for paths the per-module suites leave thin: the SPSA
// branch of QAOA, the micro-architecture accelerator path, QWAITR,
// printer options, accelerator trajectory averaging and host accounting.
#include <gtest/gtest.h>

#include "microarch/executor.h"
#include "qasm/printer.h"
#include "runtime/accelerator.h"
#include "runtime/hybrid.h"
#include "runtime/qaoa.h"

namespace qs {
namespace {

TEST(QaoaSpsa, SolvesMaxCutWithStochasticOptimizer) {
  anneal::Qubo q(2);
  q.add(0, 0, -1.0);
  q.add(1, 1, -1.0);
  q.add(0, 1, 2.0);
  runtime::QaoaOptions opts;
  opts.optimizer = runtime::QaoaOptions::Optimizer::SpsaOpt;
  opts.optimizer_iterations = 120;
  runtime::Qaoa qaoa(q, opts);
  runtime::GateAccelerator acc(compiler::Platform::perfect(2));
  const runtime::QaoaResult r = qaoa.solve(acc);
  EXPECT_EQ(r.energy, -1.0);
  EXPECT_LT(r.expectation, -0.5);  // better than the uniform average
}

TEST(GateAccelerator, MicroArchAndDirectPathsAgree) {
  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  runtime::GateAccelerator direct(platform, {}, runtime::GatePath::Direct, 3);
  runtime::GateAccelerator micro(platform, {}, runtime::GatePath::MicroArch,
                                 3);
  compiler::Program p("ghz3", 3);
  p.add_kernel("main").ghz(3).measure_all();
  const Histogram a = direct.execute(p.to_qasm(), 400);
  const Histogram b = micro.execute(p.to_qasm(), 400);
  auto correlated = [](const Histogram& h) {
    double total = 0;
    for (const auto& [bits, count] : h.counts())
      if (bits.substr(0, 3) == "000" || bits.substr(0, 3) == "111")
        total += static_cast<double>(count);
    return total / static_cast<double>(h.total());
  };
  EXPECT_NEAR(correlated(a), 1.0, 1e-9);
  EXPECT_NEAR(correlated(b), 1.0, 1e-9);
  EXPECT_NE(direct.name(), micro.name());
}

TEST(GateAccelerator, LastCompileExposesStats) {
  runtime::GateAccelerator acc(compiler::Platform::superconducting17());
  compiler::Program p2("t", 3);
  p2.add_kernel("main").toffoli(0, 1, 2).measure_all();
  acc.execute(p2.to_qasm(), 5);
  EXPECT_GT(acc.last_compile().decompose_stats.rewritten, 0u);
  EXPECT_GT(acc.last_compile().gates_after, 0u);
}

TEST(GateAccelerator, NoisyExpectationAveragesTrajectories) {
  // With noise, repeated expectation calls differ (fresh trajectories),
  // but averaging many trajectories stabilises the estimate.
  compiler::Platform platform = compiler::Platform::perfect(1);
  platform.qubit_model =
      sim::QubitModel::realistic(0.2, 0.2, 0.0, 0.0, 0.0);
  platform.qubit_model.t1_ns = 0.0;
  platform.qubit_model.t2_ns = 0.0;
  runtime::GateAccelerator acc(platform);
  acc.set_noise_trajectories(1);
  compiler::Program p("x", 1);
  p.add_kernel("main").x(0);
  auto z_of = [&]() {
    return acc.expectation(p.to_qasm(), [](StateIndex basis) {
      return basis & 1 ? -1.0 : 1.0;
    });
  };
  // Single trajectories: values in {-1, +1}-ish, varying across calls.
  bool varied = false;
  const double first = z_of();
  for (int i = 0; i < 20 && !varied; ++i) varied = z_of() != first;
  EXPECT_TRUE(varied);
}

TEST(Executor, QwaitrUsesRegisterValue) {
  using namespace microarch;
  EqProgram p("qwaitr");
  EqInstruction ldi;
  ldi.op = EqOpcode::LDI;
  ldi.rd = 4;
  ldi.imm = 25;
  p.add(ldi);
  EqInstruction qw;
  qw.op = EqOpcode::QWAITR;
  qw.rs = 4;
  p.add(qw);
  EqInstruction smis;
  smis.op = EqOpcode::SMIS;
  smis.rd = 0;
  smis.mask_qubits = {0};
  p.add(smis);
  EqInstruction bundle;
  bundle.op = EqOpcode::BUNDLE;
  bundle.pre_interval = 1;
  QOp op;
  op.name = "x90";
  op.kind = qasm::GateKind::X90;
  op.mask_reg = 0;
  bundle.qops.push_back(op);
  p.add(bundle);
  EqInstruction stop;
  stop.op = EqOpcode::STOP;
  p.add(stop);

  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  Executor executor(platform);
  executor.run(p);
  // (25 + 1) cycles * 20 ns.
  ASSERT_EQ(executor.adi().events().size(), 1u);
  EXPECT_EQ(executor.adi().events()[0].start_ns, 520u);
}

TEST(Printer, CycleCommentsOption) {
  qasm::Program p("t", 1);
  auto& c = p.add_circuit("main");
  qasm::Instruction i(qasm::GateKind::H, {0});
  i.set_cycle(3);
  c.add(i);
  qasm::PrinterOptions opts;
  opts.cycle_comments = true;
  const std::string text = qasm::to_cqasm(p, opts);
  EXPECT_NE(text.find("# cycle 3"), std::string::npos);
  qasm::PrinterOptions no_bundles;
  no_bundles.bundles = false;
  EXPECT_EQ(qasm::to_cqasm(p, no_bundles).find("{"), std::string::npos);
}

TEST(HostCpu, MixedOffloadAccounting) {
  runtime::HostCpu host;
  runtime::GateAccelerator gate(compiler::Platform::perfect(2));
  compiler::Program p("bell", 2);
  p.add_kernel("main").ghz(2).measure_all();
  host.offload(gate, p.to_qasm(), 50);

  anneal::Qubo q(2);
  q.add(0, 0, -1.0);
  anneal::QuantumAnnealSchedule schedule;
  schedule.sweeps = 30;
  runtime::AnnealAccelerator annealer(8, schedule);
  Rng rng(3);
  host.offload(annealer, q, rng);

  const int sum = host.classical("post", [] { return 1 + 1; });
  EXPECT_EQ(sum, 2);
  ASSERT_EQ(host.offloads().size(), 2u);
  EXPECT_NE(host.offloads()[0].accelerator, host.offloads()[1].accelerator);
  EXPECT_GE(host.quantum_ms(), 0.0);
  EXPECT_GE(host.classical_ms(), 0.0);
}

}  // namespace
}  // namespace qs
