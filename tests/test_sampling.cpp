// Terminal-measurement sampling fast path: trajectory analysis verdicts,
// the bit-identical cumulative-distribution build, counter-derived shot
// draws, equivalence with the per-shot trajectory path (exact for
// ineligible circuits, statistical for eligible ones), and the service's
// FinalStateCache. The byte-identity tests here are the reproducibility
// contract of docs/simulator.md extended to the sampled path: fixed seed
// => identical histogram across sim_threads, worker counts, cache hits
// and checkpoint-resumed reruns.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "compiler/kernel.h"
#include "compiler/platform.h"
#include "runtime/accelerator.h"
#include "service/checkpoint.h"
#include "service/final_state_cache.h"
#include "service/service.h"
#include "sim/gates.h"
#include "sim/simulator.h"
#include "sim/statevector.h"
#include "sim/trajectory_analysis.h"

namespace qs {
namespace {

using sim::FinalDistribution;
using sim::QubitModel;
using sim::SamplingFallback;
using sim::SimOptions;
using sim::Simulator;
using sim::TrajectoryAnalysis;

qasm::Program ghz_program(std::size_t n) {
  compiler::Program p("ghz", n);
  p.add_kernel("main").ghz(n).measure_all();
  return p.to_qasm();
}

qasm::Program uniform_program(std::size_t n) {
  compiler::Program p("uniform", n);
  auto& k = p.add_kernel("main");
  for (std::size_t q = 0; q < n; ++q) k.h(q);
  k.measure_all();
  return p.to_qasm();
}

TrajectoryAnalysis analyze(const qasm::Program& program, std::size_t qubits,
                           const QubitModel& model = QubitModel::perfect()) {
  return sim::analyze_trajectory(program.flatten(), qubits, model);
}

// ------------------------------------------------ trajectory analysis ----

TEST(TrajectoryAnalysis, GhzMeasureAllIsSamplable) {
  const qasm::Program prog = ghz_program(3);
  const TrajectoryAnalysis a = analyze(prog, 3);
  EXPECT_TRUE(a.samplable);
  EXPECT_EQ(a.fallback, SamplingFallback::kNone);
  EXPECT_EQ(a.measured_mask, StateIndex{0b111});
  // The terminal region is exactly the trailing measure_all.
  EXPECT_EQ(a.terminal_start, prog.flatten().size() - 1);
}

TEST(TrajectoryAnalysis, TerminalPerQubitMeasuresRecordMask) {
  compiler::Program p("partial", 3);
  p.add_kernel("main").x(0).h(1).measure(0).measure(2);
  const TrajectoryAnalysis a = analyze(p.to_qasm(), 3);
  EXPECT_TRUE(a.samplable);
  EXPECT_EQ(a.measured_mask, StateIndex{0b101});
}

TEST(TrajectoryAnalysis, MeasurementFreeProgramIsSamplable) {
  compiler::Program p("nomeas", 2);
  p.add_kernel("main").h(0).cnot(0, 1);
  const TrajectoryAnalysis a = analyze(p.to_qasm(), 2);
  EXPECT_TRUE(a.samplable);
  EXPECT_EQ(a.measured_mask, StateIndex{0});
  EXPECT_EQ(a.terminal_start, p.to_qasm().flatten().size());
}

TEST(TrajectoryAnalysis, LeadingPrepAndInterleavedBarriersAllowed) {
  compiler::Program p("prep", 2);
  p.add_kernel("main")
      .prep_z(0)
      .prep_z(1)
      .h(0)
      .barrier({0, 1})
      .cnot(0, 1)
      .measure(0)
      .barrier({0, 1})
      .measure(1);
  EXPECT_TRUE(analyze(p.to_qasm(), 2).samplable);
}

TEST(TrajectoryAnalysis, WaitIsANoOpUnderPerfectModel) {
  compiler::Program p("wait", 2);
  p.add_kernel("main").h(0).wait({0, 1}, 10).cnot(0, 1).measure_all();
  EXPECT_TRUE(analyze(p.to_qasm(), 2).samplable);
}

TEST(TrajectoryAnalysis, ConditionalGateFallsBack) {
  compiler::Program p("cond", 2);
  auto& k = p.add_kernel("main");
  k.h(0).measure(0);
  k.x(1).controlled_by({0});
  const TrajectoryAnalysis a = analyze(p.to_qasm(), 2);
  EXPECT_FALSE(a.samplable);
  EXPECT_EQ(a.fallback, SamplingFallback::kConditional);
}

TEST(TrajectoryAnalysis, MidCircuitMeasureFallsBack) {
  compiler::Program p("mid", 2);
  p.add_kernel("main").h(0).measure(0).h(1).measure(1);
  const TrajectoryAnalysis a = analyze(p.to_qasm(), 2);
  EXPECT_FALSE(a.samplable);
  EXPECT_EQ(a.fallback, SamplingFallback::kMidCircuitMeasure);
}

TEST(TrajectoryAnalysis, MidCircuitPrepFallsBack) {
  compiler::Program p("midprep", 2);
  p.add_kernel("main").h(0).prep_z(0).measure_all();
  const TrajectoryAnalysis a = analyze(p.to_qasm(), 2);
  EXPECT_FALSE(a.samplable);
  EXPECT_EQ(a.fallback, SamplingFallback::kMidCircuitPrep);
}

TEST(TrajectoryAnalysis, DisplayFallsBack) {
  compiler::Program p("disp", 2);
  p.add_kernel("main").h(0).display().measure_all();
  const TrajectoryAnalysis a = analyze(p.to_qasm(), 2);
  EXPECT_FALSE(a.samplable);
  EXPECT_EQ(a.fallback, SamplingFallback::kDisplay);
}

TEST(TrajectoryAnalysis, RealisticModelFallsBack) {
  const TrajectoryAnalysis a =
      analyze(ghz_program(3), 3, QubitModel::realistic());
  EXPECT_FALSE(a.samplable);
  EXPECT_EQ(a.fallback, SamplingFallback::kStochasticModel);
}

TEST(TrajectoryAnalysis, AmplitudeDampingAloneFallsBack) {
  QubitModel model;  // perfect except T1 decay
  model.kind = sim::QubitKind::Realistic;
  model.t1_ns = 30000.0;
  const TrajectoryAnalysis a = analyze(ghz_program(3), 3, model);
  EXPECT_FALSE(a.samplable);
  EXPECT_EQ(a.fallback, SamplingFallback::kStochasticModel);
}

TEST(TrajectoryAnalysis, AllZeroRealisticModelIsEffectivelyPerfect) {
  // Mirrors make_error_model: a Realistic model with every rate at zero
  // builds a NoErrorModel, so the fast path stays available.
  QubitModel model;
  model.kind = sim::QubitKind::Realistic;
  EXPECT_TRUE(analyze(ghz_program(3), 3, model).samplable);
}

TEST(TrajectoryAnalysis, FallbackReasonLabels) {
  EXPECT_STREQ(sim::to_string(SamplingFallback::kNone), "none");
  EXPECT_STREQ(sim::to_string(SamplingFallback::kStochasticModel),
               "stochastic_model");
  EXPECT_STREQ(sim::to_string(SamplingFallback::kConditional),
               "conditional_gate");
  EXPECT_STREQ(sim::to_string(SamplingFallback::kMidCircuitMeasure),
               "mid_circuit_measure");
  EXPECT_STREQ(sim::to_string(SamplingFallback::kMidCircuitPrep),
               "mid_circuit_prep");
  EXPECT_STREQ(sim::to_string(SamplingFallback::kDisplay), "display");
  EXPECT_STREQ(sim::to_string(SamplingFallback::kDisabled), "disabled");
}

// -------------------------------------- cumulative distribution build ----

TEST(CumulativeDistribution, MatchesSequentialSumBitExactly) {
  // 17 qubits = two reduction chunks, so the parallel 3-pass prefix sum
  // actually exercises the chunk-base pass. Must equal the sequential
  // build bit-for-bit (determinism contract).
  const std::size_t n = 17;
  const Matrix h = sim::hadamard();
  sim::StateVector seq(n);
  for (std::size_t q = 0; q < n; ++q) seq.apply_1q(h, q);
  seq.apply_cnot(0, 1);

  ThreadPool pool(4);
  sim::StateVector par(n);
  par.set_kernel_policy({&pool, /*min_parallel_qubits=*/0});
  for (std::size_t q = 0; q < n; ++q) par.apply_1q(h, q);
  par.apply_cnot(0, 1);

  const std::vector<double> a = seq.cumulative_distribution();
  const std::vector<double> b = par.cumulative_distribution();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);  // exact double equality, not approximate
  EXPECT_NEAR(a.back(), 1.0, 1e-12);
}

TEST(CumulativeDistribution, SmallStatePlainRunningSum) {
  sim::StateVector sv(2);
  sv.apply_1q(sim::hadamard(), 0);
  const std::vector<double> cum = sv.cumulative_distribution();
  ASSERT_EQ(cum.size(), 4u);
  EXPECT_DOUBLE_EQ(cum[0], 0.5);
  EXPECT_DOUBLE_EQ(cum[1], 1.0);
  EXPECT_DOUBLE_EQ(cum[2], 1.0);
  EXPECT_DOUBLE_EQ(cum[3], 1.0);
}

TEST(SampleFromCumulative, BinarySearchSkipsZeroWeightStates) {
  const std::vector<double> cum = {0.0, 0.5, 0.5, 1.0};  // mass on 1 and 3
  EXPECT_EQ(sim::sample_from_cumulative(cum, 0.0), StateIndex{1});
  EXPECT_EQ(sim::sample_from_cumulative(cum, 0.25), StateIndex{1});
  EXPECT_EQ(sim::sample_from_cumulative(cum, 0.5), StateIndex{3});
  EXPECT_EQ(sim::sample_from_cumulative(cum, 0.75), StateIndex{3});
}

TEST(SampleFromCumulative, BoundaryDrawLandsOnLastOccupiedState) {
  // A draw at (or rounded onto) the total mass must map to the last state
  // with non-zero weight, never a trailing zero-weight state.
  const std::vector<double> cum = {0.5, 1.0, 1.0, 1.0};
  EXPECT_EQ(sim::sample_from_cumulative(cum, 1.0), StateIndex{1});
  const std::vector<double> all = {0.25, 0.5, 0.75, 1.0};
  EXPECT_EQ(sim::sample_from_cumulative(all, 1.0), StateIndex{3});
}

TEST(StateVectorSample, GhzStateOnlyReturnsPoles) {
  sim::StateVector sv(3);
  sv.apply_1q(sim::hadamard(), 0);
  sv.apply_cnot(0, 1);
  sv.apply_cnot(1, 2);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const StateIndex s = sv.sample(rng);
    EXPECT_TRUE(s == 0 || s == 7) << s;
  }
}

// ---------------------------------------------- simulator fast path ------

TEST(SamplingFastPath, RunReportsSampledOnlyWhenEligible) {
  Simulator eligible(3);
  EXPECT_TRUE(eligible.run(ghz_program(3), 32).sampled);

  Simulator noisy(3, QubitModel::realistic(), /*seed=*/1);
  EXPECT_FALSE(noisy.run(ghz_program(3), 32).sampled);

  SimOptions off;
  off.sampling = false;
  Simulator disabled(3, QubitModel::perfect(), /*seed=*/1, sim::GateDurations{},
                     off);
  EXPECT_FALSE(disabled.run(ghz_program(3), 32).sampled);
}

TEST(SamplingFastPath, GhzHistogramHasOnlyPoleKeysAndFullShotCount) {
  Simulator sim(4, QubitModel::perfect(), /*seed=*/11);
  const sim::RunResult r = sim.run(ghz_program(4), 1000);
  ASSERT_TRUE(r.sampled);
  std::size_t total = 0;
  for (const auto& [key, count] : r.histogram.counts()) {
    EXPECT_TRUE(key == "0000" || key == "1111") << key;
    total += count;
  }
  EXPECT_EQ(total, 1000u);
}

TEST(SamplingFastPath, UnmeasuredQubitsReportZero) {
  compiler::Program p("partial", 3);
  p.add_kernel("main").x(0).x(2).measure(0);
  Simulator sim(3);
  const sim::RunResult r = sim.run(p.to_qasm(), 64);
  ASSERT_TRUE(r.sampled);
  // q0 measured as 1; q2 is |1> but unmeasured, so its classical bit
  // stays 0 — exactly what the per-shot path reports.
  ASSERT_EQ(r.histogram.counts().size(), 1u);
  EXPECT_EQ(r.histogram.counts().begin()->first, "100");
  EXPECT_EQ(r.histogram.counts().begin()->second, 64u);
}

TEST(SamplingFastPath, MeasurementFreeProgramBinsAllZeros) {
  compiler::Program p("nomeas", 2);
  p.add_kernel("main").h(0).cnot(0, 1);
  Simulator sim(2);
  const sim::RunResult r = sim.run(p.to_qasm(), 50);
  ASSERT_TRUE(r.sampled);
  ASSERT_EQ(r.histogram.counts().size(), 1u);
  EXPECT_EQ(r.histogram.counts().begin()->first, "00");
  EXPECT_EQ(r.histogram.counts().begin()->second, 50u);
}

TEST(SamplingFastPath, FixedSeedByteIdenticalAcrossSimThreads) {
  const qasm::Program prog = uniform_program(6);
  std::map<std::string, std::size_t> reference;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    SimOptions opts;
    opts.threads = threads;
    opts.min_parallel_qubits = 0;  // force parallel kernels even at n=6
    Simulator sim(6, QubitModel::perfect(), /*seed=*/42, sim::GateDurations{},
                  opts);
    const sim::RunResult r = sim.run(prog, 2048);
    ASSERT_TRUE(r.sampled);
    if (reference.empty()) {
      reference = r.histogram.counts();
    } else {
      EXPECT_EQ(r.histogram.counts(), reference) << threads << " threads";
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(SamplingFastPath, IneligibleCircuitBitIdenticalToPerShotReference) {
  // The fallback path must be byte-for-byte today's per-shot loop. Rebuild
  // that loop by hand (reset / execute / key) and compare exactly.
  compiler::Program p("mid", 2);
  p.add_kernel("main").h(0).measure(0).h(1).measure(1);
  const qasm::Program prog = p.to_qasm();
  const std::size_t shots = 256;

  Simulator via_run(2, QubitModel::perfect(), /*seed=*/9);
  const sim::RunResult r = via_run.run(prog, shots);
  ASSERT_FALSE(r.sampled);

  Simulator reference(2, QubitModel::perfect(), /*seed=*/9);
  const std::vector<qasm::Instruction> flat = prog.flatten();
  Histogram expected;
  for (std::size_t s = 0; s < shots; ++s) {
    reference.reset();
    for (const auto& instr : flat) reference.execute(instr);
    std::string key(2, '0');
    for (std::size_t q = 0; q < 2; ++q)
      key[q] = reference.bits()[q] ? '1' : '0';
    expected.add(key);
  }
  EXPECT_EQ(r.histogram.counts(), expected.counts());
}

TEST(SamplingFastPath, SampledStatisticsMatchTrajectoryChiSquare) {
  // Uniform superposition over 3 qubits: every key expects shots/8. Both
  // paths must pass a chi-square test against the exact distribution.
  const qasm::Program prog = uniform_program(3);
  const std::size_t shots = 8192;
  const double expected = static_cast<double>(shots) / 8.0;
  // 7 degrees of freedom, alpha ~ 1e-4 => critical value ~ 27.9. Seeds are
  // fixed, so this never flakes.
  const double critical = 27.9;

  for (const bool sampling : {true, false}) {
    SimOptions opts;
    opts.sampling = sampling;
    Simulator sim(3, QubitModel::perfect(), /*seed=*/123, sim::GateDurations{},
                  opts);
    const sim::RunResult r = sim.run(prog, shots);
    EXPECT_EQ(r.sampled, sampling);
    double chi2 = 0.0;
    std::size_t total = 0;
    for (const auto& [key, count] : r.histogram.counts()) {
      const double d = static_cast<double>(count) - expected;
      chi2 += d * d / expected;
      total += count;
    }
    // Keys absent from the histogram contribute their full expectation.
    chi2 += expected * static_cast<double>(8 - r.histogram.counts().size());
    EXPECT_EQ(total, shots);
    EXPECT_LT(chi2, critical) << (sampling ? "sampled" : "trajectory");
  }
}

TEST(SamplingFastPath, GateCountReflectsSingleEvolution) {
  Simulator sim(3);
  const sim::RunResult r = sim.run(ghz_program(3), 100);
  ASSERT_TRUE(r.sampled);
  // GHZ(3) = H + 2 CNOT: one evolution, not 100.
  EXPECT_EQ(r.total_gates, 3u);
}

// -------------------------------------------------- FinalStateCache ------

std::shared_ptr<const FinalDistribution> make_dist(std::size_t doubles) {
  auto d = std::make_shared<FinalDistribution>();
  d->qubit_count = 1;
  d->measured_mask = 1;
  d->cum.assign(doubles, 1.0);
  return d;
}

TEST(FinalStateCache, LookupInsertAndStats) {
  service::FinalStateCache cache(/*capacity_bytes=*/1 << 20);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(1, make_dist(8));
  const auto hit = cache.lookup(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cum.size(), 8u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FinalStateCache, EvictsLeastRecentlyUsedWithinByteBudget) {
  const std::size_t unit = make_dist(64)->bytes();
  service::FinalStateCache cache(2 * unit);
  cache.insert(1, make_dist(64));
  cache.insert(2, make_dist(64));
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.lookup(1), nullptr);  // refresh 1 => 2 is now LRU
  EXPECT_EQ(cache.insert(3, make_dist(64)), 1u);
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), cache.capacity_bytes());
}

TEST(FinalStateCache, OversizedEntryIsNotCached) {
  service::FinalStateCache cache(64);  // smaller than any real entry
  cache.insert(1, make_dist(1024));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  // The rejection is observable, not silent: a fleet whose circuits never
  // fit the budget shows up as a climbing oversized counter instead of a
  // mysterious 0% hit rate.
  EXPECT_EQ(cache.oversized(), 1u);
  cache.insert(2, make_dist(4096));
  EXPECT_EQ(cache.oversized(), 2u);
  cache.insert(3, make_dist(1));  // fits: not an oversized rejection
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.oversized(), 2u);
}


TEST(FinalStateCache, KeySeparatesModelsAndKernelFlavour) {
  const std::uint64_t perfect_fused =
      service::final_state_key(7, QubitModel::perfect(), true);
  EXPECT_EQ(perfect_fused,
            service::final_state_key(7, QubitModel::perfect(), true));
  EXPECT_NE(perfect_fused,
            service::final_state_key(7, QubitModel::perfect(), false));
  EXPECT_NE(perfect_fused,
            service::final_state_key(7, QubitModel::realistic(), true));
  EXPECT_NE(perfect_fused,
            service::final_state_key(8, QubitModel::perfect(), true));
}

// ---------------------------------------------------- service layer ------

runtime::GateAccelerator perfect_gate(std::size_t qubits) {
  return runtime::GateAccelerator(compiler::Platform::perfect(qubits));
}

TEST(ServiceSampling, ByteIdenticalAcrossWorkerCountsAndTrajectoryToggle) {
  const qasm::Program prog = uniform_program(4);
  std::map<std::string, std::size_t> sampled_counts;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    service::ServiceOptions opts;
    opts.workers = workers;
    opts.shard_shots = 64;
    service::QuantumService svc(perfect_gate(4), opts);
    const runtime::RunResult r =
        svc.submit(runtime::RunRequest::gate(prog, 512, /*seed=*/5)).get();
    ASSERT_TRUE(r.ok()) << r.status.to_string();
    EXPECT_TRUE(r.stats.sampled);
    if (sampled_counts.empty()) {
      sampled_counts = r.histogram.counts();
    } else {
      EXPECT_EQ(r.histogram.counts(), sampled_counts) << workers << " workers";
    }
  }

  // The same job with sampling disabled runs true per-shot trajectories:
  // statistically equivalent but a different (per-shot RNG) stream.
  service::ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 64;
  opts.sampling_enabled = false;
  service::QuantumService svc(perfect_gate(4), opts);
  const runtime::RunResult r =
      svc.submit(runtime::RunRequest::gate(prog, 512, /*seed=*/5)).get();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.stats.sampled);
  std::size_t total = 0;
  for (const auto& [key, count] : r.histogram.counts()) total += count;
  EXPECT_EQ(total, 512u);
}

TEST(ServiceSampling, CacheHitSkipsEvolutionAndStaysByteIdentical) {
  service::ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 128;
  service::QuantumService svc(perfect_gate(4), opts);

  const runtime::RunResult first =
      svc.submit(runtime::RunRequest::gate(ghz_program(4), 512, /*seed=*/3))
          .get();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.stats.sampled);
  EXPECT_FALSE(first.stats.final_state_cache_hit);
  EXPECT_EQ(svc.final_state_cache().misses(), 1u);
  EXPECT_EQ(svc.final_state_cache().size(), 1u);

  const runtime::RunResult second =
      svc.submit(runtime::RunRequest::gate(ghz_program(4), 512, /*seed=*/3))
          .get();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.stats.final_state_cache_hit);
  EXPECT_GE(svc.final_state_cache().hits(), 1u);
  EXPECT_EQ(second.histogram.counts(), first.histogram.counts());

  // A different seed over the same cached distribution is a different —
  // but still full — sample.
  const runtime::RunResult reseeded =
      svc.submit(runtime::RunRequest::gate(ghz_program(4), 512, /*seed=*/4))
          .get();
  ASSERT_TRUE(reseeded.ok());
  EXPECT_TRUE(reseeded.stats.final_state_cache_hit);
  std::size_t total = 0;
  for (const auto& [key, count] : reseeded.histogram.counts()) total += count;
  EXPECT_EQ(total, 512u);
}

TEST(ServiceSampling, OversizedDistributionBumpsObservabilityCounter) {
  service::ServiceOptions opts;
  opts.workers = 1;
  // A store budget no 3-qubit distribution fits: every sampled job
  // evolves, samples correctly, and records the rejection.
  opts.store_memory_bytes = 8;
  service::QuantumService svc(perfect_gate(3), opts);
  for (int i = 0; i < 2; ++i) {
    const runtime::RunResult r =
        svc.submit(runtime::RunRequest::gate(ghz_program(3), 64, /*seed=*/1))
            .get();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.stats.sampled);
    EXPECT_FALSE(r.stats.final_state_cache_hit);
  }
  EXPECT_EQ(svc.final_state_cache().oversized(), 2u);
  EXPECT_EQ(
      svc.metrics().counter("qs_final_state_cache_oversized_total").value(),
      2u);
  EXPECT_EQ(svc.metrics().counter("qs_final_state_cache_hits_total").value(),
            0u);
}

TEST(ServiceSampling, DisabledFinalStateCacheStillSamples) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.final_state_cache_enabled = false;
  service::QuantumService svc(perfect_gate(3), opts);
  for (int i = 0; i < 2; ++i) {
    const runtime::RunResult r =
        svc.submit(runtime::RunRequest::gate(ghz_program(3), 64, /*seed=*/1))
            .get();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.stats.sampled);
    EXPECT_FALSE(r.stats.final_state_cache_hit);
  }
  EXPECT_EQ(svc.final_state_cache().size(), 0u);
  EXPECT_EQ(svc.final_state_cache().hits(), 0u);
  EXPECT_EQ(svc.final_state_cache().misses(), 0u);
}

TEST(ServiceSampling, RetriedShardsProduceByteIdenticalHistogram) {
  // Sampled shards keep the full retry machinery: a shard that fails
  // transiently re-derives the same counter-derived draws on retry.
  service::ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 64;
  opts.max_shard_retries = 3;
  opts.retry_backoff.initial = std::chrono::microseconds(1);

  service::QuantumService clean_svc(perfect_gate(3), opts);
  const runtime::RunResult clean =
      clean_svc.submit(runtime::RunRequest::gate(ghz_program(3), 512, 7)).get();
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean.stats.sampled);

  service::QuantumService faulty_svc(perfect_gate(3), opts);
  auto plan = std::make_shared<runtime::FaultPlan>();
  plan->shard_faults = {{/*shard_index=*/1, /*failures=*/2}};
  runtime::RunRequest req = runtime::RunRequest::gate(ghz_program(3), 512, 7);
  req.faults = plan;
  const runtime::RunResult faulty = faulty_svc.submit(std::move(req)).get();
  ASSERT_TRUE(faulty.ok());
  EXPECT_TRUE(faulty.stats.sampled);
  EXPECT_GE(faulty.stats.retries, 2u);
  EXPECT_EQ(faulty.histogram.counts(), clean.histogram.counts());
}

TEST(ServiceSampling, CheckpointResumeStaysByteIdentical) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.shard_shots = 64;
  opts.max_shard_retries = 0;
  opts.max_shard_failovers = 0;
  opts.retry_backoff.initial = std::chrono::microseconds(1);
  auto store = std::make_shared<service::InMemoryCheckpointStore>();
  opts.checkpoint_store = store;

  service::QuantumService clean_svc(perfect_gate(3), opts);
  const runtime::RunResult clean =
      clean_svc.submit(runtime::RunRequest::gate(ghz_program(3), 512, 7)).get();
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean.stats.sampled);

  {
    service::QuantumService svc(perfect_gate(3), opts);
    auto plan = std::make_shared<runtime::FaultPlan>();
    plan->shard_faults = {{/*shard_index=*/7, /*failures=*/10}};
    runtime::RunRequest req = runtime::RunRequest::gate(ghz_program(3), 512, 7);
    req.checkpoint_key = "sampled-resume";
    req.faults = plan;
    EXPECT_FALSE(svc.submit(std::move(req)).get().ok());
  }
  ASSERT_EQ(store->size(), 1u);

  service::QuantumService svc(perfect_gate(3), opts);
  runtime::RunRequest req = runtime::RunRequest::gate(ghz_program(3), 512, 7);
  req.checkpoint_key = "sampled-resume";
  const runtime::RunResult resumed = svc.submit(std::move(req)).get();
  ASSERT_TRUE(resumed.ok()) << resumed.status.to_string();
  EXPECT_TRUE(resumed.stats.sampled);
  EXPECT_GT(resumed.stats.shards_resumed, 0u);
  EXPECT_EQ(resumed.histogram.counts(), clean.histogram.counts());
}

TEST(ServiceSampling, IneligibleJobFallsBackAndCountsReason) {
  compiler::Program p("cond", 2);
  auto& k = p.add_kernel("main");
  k.h(0).measure(0);
  k.x(1).controlled_by({0});
  k.measure(1);

  service::ServiceOptions opts;
  opts.workers = 1;
  service::QuantumService svc(perfect_gate(2), opts);
  const runtime::RunResult r =
      svc.submit(runtime::RunRequest::gate(p.to_qasm(), 128, 1)).get();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.stats.sampled);
  EXPECT_FALSE(r.stats.final_state_cache_hit);
  EXPECT_EQ(svc.metrics()
                .counter("qs_sampling_fallback_total{reason=\"conditional_gate\"}")
                .value(),
            1u);
  EXPECT_EQ(svc.metrics().counter("qs_jobs_sampled_total").value(), 0u);
}

}  // namespace
}  // namespace qs
