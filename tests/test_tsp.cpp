// Unit tests for the TSP application: instances (incl. the paper's
// Figure 9 Netherlands example), classical solvers and the QUBO encoding.
#include <gtest/gtest.h>

#include "apps/tsp/qubo_encode.h"
#include "apps/tsp/solvers.h"
#include "apps/tsp/tsp.h"

namespace qs::apps::tsp {
namespace {

// ------------------------------------------------------------ Instance ----

TEST(TspInstance, Netherlands4MatchesPaperFigure9) {
  const TspInstance nl = TspInstance::netherlands4();
  EXPECT_EQ(nl.size(), 4u);
  // The paper's quoted optimal tour cost.
  const TourResult opt = brute_force(nl);
  EXPECT_NEAR(opt.cost, 1.42, 1e-9);
  // The optimal route visits Utrecht from Amsterdam then Rotterdam, The
  // Hague (or the reverse cycle).
  EXPECT_EQ(opt.tour.size(), 4u);
}

TEST(TspInstance, WeightsSymmetricAndZeroDiagonal) {
  Rng rng(3);
  const TspInstance inst = TspInstance::random(6, rng);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(inst.weight(i, i), 0.0);
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(inst.weight(i, j), inst.weight(j, i));
  }
}

TEST(TspInstance, TriangleInequalityForEuclidean) {
  Rng rng(5);
  const TspInstance inst = TspInstance::random(5, rng);
  for (std::size_t a = 0; a < 5; ++a)
    for (std::size_t b = 0; b < 5; ++b)
      for (std::size_t c = 0; c < 5; ++c)
        EXPECT_LE(inst.weight(a, c),
                  inst.weight(a, b) + inst.weight(b, c) + 1e-12);
}

TEST(TspInstance, TourValidation) {
  const TspInstance nl = TspInstance::netherlands4();
  EXPECT_TRUE(nl.is_valid_tour({0, 1, 2, 3}));
  EXPECT_FALSE(nl.is_valid_tour({0, 1, 2}));
  EXPECT_FALSE(nl.is_valid_tour({0, 1, 2, 2}));
  EXPECT_FALSE(nl.is_valid_tour({0, 1, 2, 7}));
  EXPECT_THROW(nl.tour_cost({0, 0, 1, 2}), std::invalid_argument);
}

TEST(TspInstance, TooFewCitiesRejected) {
  EXPECT_THROW(TspInstance({{"only", 0, 0}}), std::invalid_argument);
}

// -------------------------------------------------------------- Exact ----

TEST(ExactSolvers, AgreeOnRandomInstances) {
  for (int trial = 0; trial < 4; ++trial) {
    Rng rng(100 + trial);
    const TspInstance inst = TspInstance::random(7, rng);
    const double bf = brute_force(inst).cost;
    const double hk = held_karp(inst).cost;
    const double bb = branch_and_bound(inst).cost;
    EXPECT_NEAR(hk, bf, 1e-9) << trial;
    EXPECT_NEAR(bb, bf, 1e-9) << trial;
  }
}

TEST(ExactSolvers, ReturnedTourCostConsistent) {
  Rng rng(7);
  const TspInstance inst = TspInstance::random(6, rng);
  for (const TourResult& r :
       {brute_force(inst), held_karp(inst), branch_and_bound(inst)}) {
    EXPECT_TRUE(inst.is_valid_tour(r.tour));
    EXPECT_NEAR(inst.tour_cost(r.tour), r.cost, 1e-9);
  }
}

TEST(ExactSolvers, BranchAndBoundPrunes) {
  Rng rng(9);
  const TspInstance inst = TspInstance::random(8, rng);
  const TourResult bf = brute_force(inst);
  const TourResult bb = branch_and_bound(inst);
  EXPECT_NEAR(bb.cost, bf.cost, 1e-9);
  EXPECT_LT(bb.nodes_explored, bf.nodes_explored * 7);  // visits < full tree
}

TEST(ExactSolvers, SizeGuards) {
  Rng rng(11);
  const TspInstance inst = TspInstance::random(21, rng);
  EXPECT_THROW(brute_force(inst), std::invalid_argument);
  EXPECT_THROW(held_karp(inst), std::invalid_argument);
}

// ---------------------------------------------------------- Heuristics ----

TEST(Heuristics, NearestNeighbourValidTour) {
  Rng rng(13);
  const TspInstance inst = TspInstance::random(10, rng);
  const TourResult r = nearest_neighbour(inst);
  EXPECT_TRUE(inst.is_valid_tour(r.tour));
  EXPECT_THROW(nearest_neighbour(inst, 99), std::out_of_range);
}

TEST(Heuristics, TwoOptImprovesNearestNeighbour) {
  Rng rng(17);
  double nn_total = 0, opt_total = 0;
  for (int t = 0; t < 5; ++t) {
    const TspInstance inst = TspInstance::random(12, rng);
    nn_total += nearest_neighbour(inst).cost;
    opt_total += two_opt(inst).cost;
  }
  EXPECT_LE(opt_total, nn_total);
}

TEST(Heuristics, TwoOptFindsOptimumOnSmall) {
  const TspInstance nl = TspInstance::netherlands4();
  EXPECT_NEAR(two_opt(nl).cost, 1.42, 1e-9);
}

TEST(Heuristics, MonteCarloConvergesWithSamples) {
  Rng rng(19);
  const TspInstance inst = TspInstance::random(8, rng);
  const double opt = held_karp(inst).cost;
  Rng mc_rng(23);
  const double few = monte_carlo(inst, 10, mc_rng).cost;
  const double many = monte_carlo(inst, 20000, mc_rng).cost;
  EXPECT_LE(many, few);
  EXPECT_LT(many, opt * 1.3);  // lots of samples get close on n=8
}

// ---------------------------------------------------------------- QUBO ----

TEST(TspQubo, VariableCountIsNSquared) {
  // The paper: "the total possible combinations of (c,t) is square of the
  // number of cities. We need 16 qubits to encode the example TSP".
  const TspQubo q4(TspInstance::netherlands4());
  EXPECT_EQ(q4.variable_count(), 16u);
  Rng rng(29);
  const TspQubo q5(TspInstance::random(5, rng));
  EXPECT_EQ(q5.variable_count(), 25u);
}

TEST(TspQubo, ValidTourEnergyEqualsCost) {
  const TspInstance nl = TspInstance::netherlands4();
  const TspQubo qubo(nl);
  const std::vector<std::size_t> tour{0, 1, 2, 3};
  const std::vector<int> x = qubo.encode_tour(tour);
  EXPECT_NEAR(qubo.qubo().energy(x) + qubo.constant_offset(),
              nl.tour_cost(tour), 1e-9);
}

TEST(TspQubo, DecodeInvertsEncode) {
  const TspQubo qubo(TspInstance::netherlands4());
  const std::vector<std::size_t> tour{2, 0, 3, 1};
  std::vector<std::size_t> decoded;
  ASSERT_TRUE(qubo.decode(qubo.encode_tour(tour), decoded));
  EXPECT_EQ(decoded, tour);
}

TEST(TspQubo, DecodeRejectsConstraintViolations) {
  const TspQubo qubo(TspInstance::netherlands4());
  std::vector<std::size_t> out;
  std::vector<int> empty(16, 0);
  EXPECT_FALSE(qubo.decode(empty, out));  // empty slots
  std::vector<int> doubled(16, 0);
  doubled[qubo.var(0, 0)] = 1;
  doubled[qubo.var(1, 0)] = 1;  // two cities at t=0
  EXPECT_FALSE(qubo.decode(doubled, out));
}

TEST(TspQubo, InvalidAssignmentsPayPenalty) {
  const TspInstance nl = TspInstance::netherlands4();
  const TspQubo qubo(nl);
  const std::vector<int> valid = qubo.encode_tour({0, 1, 2, 3});
  std::vector<int> broken = valid;
  broken[qubo.var(1, 1)] = 0;  // drop one assignment
  EXPECT_GT(qubo.qubo().energy(broken), qubo.qubo().energy(valid));
}

TEST(TspQubo, BruteForceMinimumIsOptimalTour) {
  // Globally minimising the 16-variable QUBO recovers the cost-1.42 tour.
  const TspInstance nl = TspInstance::netherlands4();
  const TspQubo qubo(nl);
  const auto [x, e] = qubo.qubo().brute_force_minimum();
  std::vector<std::size_t> tour;
  ASSERT_TRUE(qubo.decode(x, tour));
  EXPECT_NEAR(nl.tour_cost(tour), 1.42, 1e-9);
  EXPECT_NEAR(e + qubo.constant_offset(), 1.42, 1e-9);
}

}  // namespace
}  // namespace qs::apps::tsp
