// Gate-sequence fusion tests: the pass must be a pure, deterministic
// function of the instruction stream that (a) shrinks the executed op
// count, (b) preserves the circuit unitary to rounding, (c) respects
// barriers (non-unitaries, conditionals, arity > 2, the sampling
// boundary) and (d) feeds the Simulator/service plumbing correctly —
// logical gate accounting, FusionStats, the stochastic-model opt-out and
// CompiledEntry revival.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "qasm/program.h"
#include "service/cache.h"
#include "sim/fusion.h"
#include "sim/gates.h"
#include "sim/simulator.h"
#include "sim/statevector.h"
#include "sim/trajectory_analysis.h"

namespace qs::sim {
namespace {

using qasm::GateKind;
using qasm::Instruction;

// ------------------------------------------------------------- helpers ----

/// Applies one instruction through the generic matrix paths (the fused
/// program's reference semantics).
void apply_generic(StateVector& s, const Instruction& instr) {
  const auto& q = instr.qubits();
  if (q.size() == 1) {
    s.apply_1q(gate_matrix(instr), q[0]);
  } else {
    ASSERT_EQ(q.size(), 2u);
    s.apply_2q(gate_matrix(instr), q[0], q[1]);
  }
}

/// Executes a fused program against a state: blocks via their product
/// matrices, diagonal windows via the window kernel, re-emitted
/// instructions via the generic paths.
void apply_fused(StateVector& s, const FusedProgram& fused) {
  for (const FusedOp& op : fused.ops) {
    if (op.is_diag_window) {
      s.apply_diag_window(op.dw_shift, op.dw_width, op.dw_table.data());
    } else if (op.is_block) {
      if (op.arity == 2)
        s.apply_2q(op.u, op.q1, op.q0);
      else
        s.apply_1q(op.u, op.q0);
    } else {
      apply_generic(s, op.instr);
    }
  }
}

/// Random unitary-only instruction stream (no measurements, no
/// conditionals) over the fusable 1q/2q vocabulary plus Toffoli barriers.
std::vector<Instruction> random_unitaries(std::size_t qubits,
                                          std::size_t ops,
                                          std::uint64_t seed,
                                          bool with_toffoli) {
  Rng rng(seed);
  std::vector<Instruction> out;
  const std::vector<GateKind> one_q = {
      GateKind::X,  GateKind::Y,    GateKind::Z, GateKind::H,
      GateKind::S,  GateKind::Sdag, GateKind::T, GateKind::Tdag,
      GateKind::Rx, GateKind::Ry,   GateKind::Rz};
  const std::vector<GateKind> two_q = {GateKind::CNOT, GateKind::CZ,
                                       GateKind::Swap, GateKind::CR,
                                       GateKind::CRK,  GateKind::RZZ};
  for (std::size_t i = 0; i < ops; ++i) {
    const double pick = rng.uniform();
    if (with_toffoli && pick < 0.04 && qubits >= 3) {
      QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(qubits));
      QubitIndex b = a, c = a;
      while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(qubits));
      while (c == a || c == b)
        c = static_cast<QubitIndex>(rng.uniform_int(qubits));
      out.emplace_back(GateKind::Toffoli, std::vector<QubitIndex>{a, b, c});
      continue;
    }
    if (pick < 0.55) {
      const GateKind k = one_q[rng.uniform_int(one_q.size())];
      const double angle =
          qasm::gate_has_angle(k) ? rng.uniform(-3.14159, 3.14159) : 0.0;
      out.emplace_back(k,
                       std::vector<QubitIndex>{static_cast<QubitIndex>(
                           rng.uniform_int(qubits))},
                       angle);
    } else {
      const GateKind k = two_q[rng.uniform_int(two_q.size())];
      QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(qubits));
      QubitIndex b = a;
      while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(qubits));
      const double angle =
          qasm::gate_has_angle(k) ? rng.uniform(-3.14159, 3.14159) : 0.0;
      const std::int64_t param_k =
          qasm::gate_has_int_param(k)
              ? static_cast<std::int64_t>(1 + rng.uniform_int(4))
              : 0;
      out.emplace_back(k, std::vector<QubitIndex>{a, b}, angle, param_k);
    }
  }
  return out;
}

void expect_states_close(const StateVector& a, const StateVector& b,
                         double tol) {
  ASSERT_EQ(a.dimension(), b.dimension());
  for (StateIndex i = 0; i < a.dimension(); ++i) {
    EXPECT_NEAR(a.amplitude(i).real(), b.amplitude(i).real(), tol)
        << "re idx " << i;
    EXPECT_NEAR(a.amplitude(i).imag(), b.amplitude(i).imag(), tol)
        << "im idx " << i;
  }
}

// ------------------------------------------------------- pass structure ----

TEST(Fusion, SingleQubitRunCollapsesToOneBlock) {
  const std::vector<Instruction> flat = {
      Instruction(GateKind::H, {0}),
      Instruction(GateKind::T, {0}),
      Instruction(GateKind::H, {0}),
  };
  const FusedProgram fused = fuse_sequences(flat, flat.size());
  ASSERT_EQ(fused.ops.size(), 1u);
  EXPECT_TRUE(fused.ops[0].is_block);
  EXPECT_EQ(fused.ops[0].arity, 1u);
  EXPECT_EQ(fused.ops[0].gate_count, 3u);
  EXPECT_EQ(fused.stats.input_gates, 3u);
  EXPECT_EQ(fused.stats.output_ops, 1u);
  EXPECT_EQ(fused.stats.fused_blocks, 1u);
  EXPECT_EQ(fused.stats.max_run, 3u);
  EXPECT_EQ(fused.prefix_ops, 1u);

  // H T H == product matrix.
  const Matrix expected =
      hadamard() * gate_t() * hadamard();
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(fused.ops[0].u(r, c).real(), expected(r, c).real(), 1e-12);
      EXPECT_NEAR(fused.ops[0].u(r, c).imag(), expected(r, c).imag(), 1e-12);
    }
}

TEST(Fusion, SwapDecompositionStaysOnPermutationKernels) {
  // The canonical routing pattern: CNOT(a,b) CNOT(b,a) CNOT(a,b) == SWAP.
  // The cost model keeps it on the specialized CNOT kernels: three
  // half-state permutation passes are cheaper than one dense 4x4 sweep
  // over the whole state, so the accumulated block dissolves back into
  // the original instructions.
  const std::vector<Instruction> flat = {
      Instruction(GateKind::CNOT, {0, 1}),
      Instruction(GateKind::CNOT, {1, 0}),
      Instruction(GateKind::CNOT, {0, 1}),
  };
  const FusedProgram fused = fuse_sequences(flat, flat.size());
  ASSERT_EQ(fused.ops.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(fused.ops[i].is_block);
    EXPECT_EQ(fused.ops[i].instr.kind(), GateKind::CNOT);
    EXPECT_EQ(fused.ops[i].instr.qubits(), flat[i].qubits());
  }
  EXPECT_EQ(fused.stats.fused_blocks, 0u);
  EXPECT_EQ(fused.stats.output_ops, 3u);

  // Dissolution preserves semantics, of course: still a SWAP.
  StateVector reference(2), evolved(2);
  reference.apply_1q(hadamard(), 0);
  evolved.apply_1q(hadamard(), 0);
  reference.apply_swap(0, 1);
  apply_fused(evolved, fused);
  expect_states_close(reference, evolved, 1e-12);
}

TEST(Fusion, SingleGateRunsReEmitTheOriginalInstruction) {
  // A lone gate must come back as the original instruction (is_block
  // false) so the Simulator keeps its specialized fast-path kernel and
  // its exact arithmetic.
  const std::vector<Instruction> flat = {
      Instruction(GateKind::X, {0}),
      Instruction(GateKind::CNOT, {1, 2}),
  };
  const FusedProgram fused = fuse_sequences(flat, flat.size());
  ASSERT_EQ(fused.ops.size(), 2u);
  EXPECT_FALSE(fused.ops[0].is_block);
  EXPECT_EQ(fused.ops[0].instr.kind(), GateKind::X);
  EXPECT_FALSE(fused.ops[1].is_block);
  EXPECT_EQ(fused.ops[1].instr.kind(), GateKind::CNOT);
  EXPECT_EQ(fused.stats.fused_blocks, 0u);
  EXPECT_EQ(fused.stats.input_gates, 2u);
  EXPECT_EQ(fused.stats.output_ops, 2u);
}

TEST(Fusion, NonUnitariesAreBarriers) {
  const std::vector<Instruction> flat = {
      Instruction(GateKind::H, {0}),
      Instruction(GateKind::T, {0}),
      Instruction(GateKind::Measure, {0}),
      Instruction(GateKind::H, {0}),
      Instruction(GateKind::T, {0}),
  };
  const FusedProgram fused = fuse_sequences(flat, flat.size());
  ASSERT_EQ(fused.ops.size(), 3u);
  EXPECT_TRUE(fused.ops[0].is_block);
  EXPECT_EQ(fused.ops[0].gate_count, 2u);
  EXPECT_FALSE(fused.ops[1].is_block);
  EXPECT_EQ(fused.ops[1].instr.kind(), GateKind::Measure);
  EXPECT_TRUE(fused.ops[2].is_block);
  EXPECT_EQ(fused.ops[2].gate_count, 2u);
}

TEST(Fusion, ConditionalGatesAreBarriers) {
  Instruction conditional(GateKind::X, {1});
  conditional.set_conditions({0});
  const std::vector<Instruction> flat = {
      Instruction(GateKind::H, {1}),
      conditional,
      Instruction(GateKind::H, {1}),
  };
  const FusedProgram fused = fuse_sequences(flat, flat.size());
  ASSERT_EQ(fused.ops.size(), 3u);
  EXPECT_FALSE(fused.ops[1].is_block);
  EXPECT_TRUE(fused.ops[1].instr.is_conditional());
  // The conditional still counts 1:1 in the gate accounting.
  EXPECT_EQ(fused.stats.input_gates, 3u);
  EXPECT_EQ(fused.stats.output_ops, 3u);
}

TEST(Fusion, InterleavedDisjointRunsFuseIndependently) {
  // Two per-qubit runs interleaved in the stream: the multi-open-block
  // pass must fuse each run whole instead of flushing on every switch.
  const std::vector<Instruction> flat = {
      Instruction(GateKind::H, {0}), Instruction(GateKind::H, {1}),
      Instruction(GateKind::T, {0}), Instruction(GateKind::T, {1}),
      Instruction(GateKind::H, {0}), Instruction(GateKind::H, {1}),
  };
  const FusedProgram fused = fuse_sequences(flat, flat.size());
  ASSERT_EQ(fused.ops.size(), 2u);
  EXPECT_TRUE(fused.ops[0].is_block);
  EXPECT_TRUE(fused.ops[1].is_block);
  EXPECT_EQ(fused.ops[0].gate_count, 3u);
  EXPECT_EQ(fused.ops[1].gate_count, 3u);
  EXPECT_EQ(fused.stats.fused_blocks, 2u);
}

TEST(Fusion, BoundaryForcesAFlush) {
  const std::vector<Instruction> flat = {
      Instruction(GateKind::H, {0}),
      Instruction(GateKind::T, {0}),
  };
  const FusedProgram fused = fuse_sequences(flat, /*boundary=*/1);
  ASSERT_EQ(fused.ops.size(), 2u);
  EXPECT_EQ(fused.prefix_ops, 1u);  // exactly the ops covering flat[0, 1)
  EXPECT_FALSE(fused.ops[0].is_block);
  EXPECT_FALSE(fused.ops[1].is_block);
}

TEST(Fusion, DeterministicAcrossCalls) {
  const auto flat = random_unitaries(5, 200, 4242, true);
  const FusedProgram a = fuse_sequences(flat, flat.size());
  const FusedProgram b = fuse_sequences(flat, flat.size());
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].is_block, b.ops[i].is_block);
    EXPECT_EQ(a.ops[i].is_diag_window, b.ops[i].is_diag_window);
    EXPECT_EQ(a.ops[i].gate_count, b.ops[i].gate_count);
    if (a.ops[i].is_diag_window) {
      EXPECT_EQ(a.ops[i].dw_shift, b.ops[i].dw_shift);
      EXPECT_EQ(a.ops[i].dw_width, b.ops[i].dw_width);
      ASSERT_EQ(a.ops[i].dw_table.size(), b.ops[i].dw_table.size());
      for (std::size_t t = 0; t < a.ops[i].dw_table.size(); ++t)
        EXPECT_EQ(a.ops[i].dw_table[t], b.ops[i].dw_table[t]);
    }
    if (!a.ops[i].is_block) continue;
    for (std::size_t r = 0; r < a.ops[i].u.rows(); ++r)
      for (std::size_t c = 0; c < a.ops[i].u.cols(); ++c)
        EXPECT_EQ(a.ops[i].u(r, c), b.ops[i].u(r, c));
  }
}

// --------------------------------------------------- diagonal windows ----

TEST(Fusion, DiagonalRunCollapsesToOneWindow) {
  // A QFT-flavoured all-diagonal run: every matrix is exactly diagonal,
  // so the whole run composes into one phase-table sweep regardless of
  // which qubits the gates touch (diagonals commute pairwise).
  const std::vector<Instruction> flat = {
      Instruction(GateKind::T, {0}),
      Instruction(GateKind::CRK, {2, 0}, 0.0, 2),
      Instruction(GateKind::CZ, {1, 0}),
      Instruction(GateKind::Rz, {1}, 0.7),
  };
  const FusedProgram fused = fuse_sequences(flat, flat.size());
  ASSERT_EQ(fused.ops.size(), 1u);
  EXPECT_TRUE(fused.ops[0].is_diag_window);
  EXPECT_EQ(fused.ops[0].dw_shift, 0u);
  EXPECT_EQ(fused.ops[0].dw_width, 3u);
  EXPECT_EQ(fused.ops[0].dw_table.size(), 8u);
  EXPECT_EQ(fused.ops[0].gate_count, 4u);
  EXPECT_EQ(fused.stats.output_ops, 1u);
  EXPECT_EQ(fused.stats.fused_blocks, 1u);

  // The window sweep must equal the gate-by-gate evolution on a state
  // with every basis amplitude populated.
  StateVector reference(3), evolved(3);
  for (QubitIndex q = 0; q < 3; ++q) {
    reference.apply_1q(hadamard(), q);
    evolved.apply_1q(hadamard(), q);
  }
  for (const Instruction& instr : flat) apply_generic(reference, instr);
  apply_fused(evolved, fused);
  expect_states_close(reference, evolved, 1e-12);
}

TEST(Fusion, DiagonalWindowSplitsOnWidthLimit) {
  // Diagonal gates 12 qubits apart cannot share a 10-bit window: the
  // run splits into two windows, one per end.
  const std::vector<Instruction> flat = {
      Instruction(GateKind::Rz, {0}, 0.3),
      Instruction(GateKind::Rz, {1}, 0.4),
      Instruction(GateKind::Rz, {11}, 0.5),
      Instruction(GateKind::Rz, {12}, 0.6),
  };
  const FusedProgram fused = fuse_sequences(flat, flat.size());
  ASSERT_EQ(fused.ops.size(), 2u);
  EXPECT_TRUE(fused.ops[0].is_diag_window);
  EXPECT_EQ(fused.ops[0].dw_shift, 0u);
  EXPECT_EQ(fused.ops[0].dw_width, 2u);
  EXPECT_TRUE(fused.ops[1].is_diag_window);
  EXPECT_EQ(fused.ops[1].dw_shift, 11u);
  EXPECT_EQ(fused.ops[1].dw_width, 2u);
  EXPECT_EQ(fused.ops[0].gate_count + fused.ops[1].gate_count, 4u);
}

TEST(Fusion, DiagonalWindowStopsAtTheSamplingBoundary) {
  // Windows must not span the shot-deterministic prefix boundary: the
  // sampling fast path executes exactly ops[0, prefix_ops).
  const std::vector<Instruction> flat = {
      Instruction(GateKind::Rz, {0}, 0.1),
      Instruction(GateKind::Rz, {1}, 0.2),
      Instruction(GateKind::Rz, {0}, 0.3),
      Instruction(GateKind::Rz, {1}, 0.4),
  };
  const FusedProgram fused = fuse_sequences(flat, /*boundary=*/2);
  ASSERT_EQ(fused.ops.size(), 2u);
  EXPECT_EQ(fused.prefix_ops, 1u);
  EXPECT_TRUE(fused.ops[0].is_diag_window);
  EXPECT_TRUE(fused.ops[1].is_diag_window);
  EXPECT_EQ(fused.ops[0].gate_count, 2u);
  EXPECT_EQ(fused.ops[1].gate_count, 2u);
}

// ---------------------------------------------------- unitary semantics ----

TEST(Fusion, RandomCircuitsMatchUnfusedEvolution) {
  const std::size_t qubits = 5;
  for (std::uint64_t seed : {3u, 17u, 88u, 501u}) {
    const auto flat = random_unitaries(qubits, 160, seed, false);

    StateVector reference(qubits);
    for (const Instruction& instr : flat) apply_generic(reference, instr);

    const FusedProgram fused = fuse_sequences(flat, flat.size());
    EXPECT_EQ(fused.prefix_ops, fused.ops.size());
    EXPECT_EQ(fused.stats.input_gates, flat.size());
    // A dense random stream must actually fuse (the >= 25% acceptance
    // floor is asserted on the benchmark circuits; random streams with
    // 2q gates across 5 qubits fuse less but never zero).
    EXPECT_LT(fused.stats.output_ops, fused.stats.input_gates)
        << "seed " << seed;

    StateVector evolved(qubits);
    apply_fused(evolved, fused);
    expect_states_close(reference, evolved, 1e-10);
  }
}

TEST(Fusion, ToffoliBarriersPreserveSemantics) {
  const std::size_t qubits = 5;
  const auto flat = random_unitaries(qubits, 120, 909, true);
  StateVector reference(qubits);
  for (const Instruction& instr : flat) {
    if (instr.qubits().size() == 3) {
      // Toffoli via the controlled path (gate_matrix is 1q/2q only).
      reference.apply_controlled_1q(pauli_x(),
                                    {instr.qubits()[0], instr.qubits()[1]},
                                    instr.qubits()[2]);
    } else {
      apply_generic(reference, instr);
    }
  }
  const FusedProgram fused = fuse_sequences(flat, flat.size());
  StateVector evolved(qubits);
  for (const FusedOp& op : fused.ops) {
    if (op.is_diag_window) {
      evolved.apply_diag_window(op.dw_shift, op.dw_width, op.dw_table.data());
    } else if (op.is_block) {
      if (op.arity == 2)
        evolved.apply_2q(op.u, op.q1, op.q0);
      else
        evolved.apply_1q(op.u, op.q0);
    } else if (op.instr.qubits().size() == 3) {
      evolved.apply_controlled_1q(pauli_x(),
                                  {op.instr.qubits()[0], op.instr.qubits()[1]},
                                  op.instr.qubits()[2]);
    } else {
      apply_generic(evolved, op.instr);
    }
  }
  expect_states_close(reference, evolved, 1e-10);
}

// ----------------------------------------------------- simulator plumbing ----

qasm::Program ghz_program(std::size_t qubits) {
  qasm::Program program("ghz", qubits);
  qasm::Circuit circuit("c0");
  circuit.add(Instruction(GateKind::H, {0}));
  for (std::size_t q = 0; q + 1 < qubits; ++q)
    circuit.add(Instruction(GateKind::CNOT,
                            {static_cast<QubitIndex>(q),
                             static_cast<QubitIndex>(q + 1)}));
  circuit.add(Instruction(GateKind::MeasureAll, {}));
  program.add_circuit(std::move(circuit));
  program.validate();
  return program;
}

TEST(FusionIntegration, RunReportsStatsAndLogicalGateCount) {
  // A rotation chain the pass collapses hard: gates_executed must stay
  // the LOGICAL count (fusion is an engine detail, not an accounting
  // change), while FusionStats reports the collapse.
  const std::size_t qubits = 3;
  qasm::Program program("chain", qubits);
  qasm::Circuit circuit("c0");
  for (int i = 0; i < 6; ++i) {
    circuit.add(Instruction(GateKind::Rz, {0}, 0.1 * (i + 1)));
    circuit.add(Instruction(GateKind::Rx, {0}, 0.2 * (i + 1)));
  }
  circuit.add(Instruction(GateKind::MeasureAll, {}));
  program.add_circuit(std::move(circuit));
  program.validate();

  SimOptions fused_opt;  // fuse_sequences defaults on
  Simulator sim(qubits, QubitModel::perfect(), 7, GateDurations{}, fused_opt);
  const RunResult r = sim.run(program, 20);
  EXPECT_EQ(r.shots, 20u);
  EXPECT_GT(r.fusion.input_gates, 0u);
  EXPECT_LT(r.fusion.output_ops, r.fusion.input_gates);
  EXPECT_GE(r.fusion.max_run, 12u);  // the whole chain is one block
  // 12 logical gates per shot, whatever the fused execution did.
  EXPECT_EQ(r.total_gates, r.fusion.input_gates);
}

TEST(FusionIntegration, FusedAndUnfusedAgreeOnCliffordHistogram) {
  // GHZ probabilities are exactly {1/2, 1/2}; fusion's ~1e-15 rounding
  // cannot flip any RNG threshold, so the histograms match exactly.
  const qasm::Program program = ghz_program(4);
  SimOptions on;   // default: fusion enabled
  SimOptions off;
  off.fuse_sequences = false;

  Simulator a(4, QubitModel::perfect(), 11, GateDurations{}, on);
  Simulator b(4, QubitModel::perfect(), 11, GateDurations{}, off);
  const RunResult ra = a.run(program, 400);
  const RunResult rb = b.run(program, 400);
  EXPECT_EQ(ra.histogram.counts(), rb.histogram.counts());
  EXPECT_GT(ra.fusion.input_gates, 0u);
  EXPECT_EQ(rb.fusion.input_gates, 0u);  // stats zero when disabled
}

TEST(FusionIntegration, StochasticModelDisablesFusion) {
  const qasm::Program program = ghz_program(3);
  Simulator sim(3, QubitModel::realistic(0.02, 0.05, 0.01), 5,
                GateDurations{}, SimOptions{});
  const RunResult r = sim.run(program, 50);
  // Noisy models run the raw stream: per-gate error hooks must fire once
  // per gate, so the fused program is not built at all.
  EXPECT_EQ(r.fusion.input_gates, 0u);
  EXPECT_EQ(r.fusion.output_ops, 0u);
}

// ------------------------------------------------------- cache plumbing ----

TEST(FusionCache, CompiledEntryCarriesFusedProgram) {
  const qasm::Program program = ghz_program(4);
  service::CompiledEntry entry;
  entry.flat = program.flatten();
  entry.analysis = analyze_trajectory(entry.flat, 4, QubitModel::perfect());

  service::fuse_compiled_entry(entry, QubitModel::perfect());
  ASSERT_NE(entry.fused, nullptr);
  EXPECT_GT(entry.fused->stats.input_gates, 0u);
  EXPECT_LE(entry.fused->stats.output_ops, entry.fused->stats.input_gates);
  EXPECT_GT(entry.fused->bytes(), 0u);

  // Stochastic models must clear it: the Simulator would ignore it, and
  // carrying one would only waste cache bytes.
  service::fuse_compiled_entry(entry, QubitModel::realistic(0.02, 0.05, 0.01));
  EXPECT_EQ(entry.fused, nullptr);
}

}  // namespace
}  // namespace qs::sim
