// Unit tests for the QX-like simulator: gate matrices, state-vector
// engine semantics, measurement statistics and error models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "qasm/parser.h"
#include "sim/error_model.h"
#include "sim/gates.h"
#include "sim/simulator.h"
#include "sim/statevector.h"

namespace qs::sim {
namespace {

using qasm::GateKind;
using qasm::Instruction;

// --------------------------------------------------------------- Gates ----

TEST(Gates, AllFixedGatesUnitary) {
  for (GateKind k : {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z,
                     GateKind::H, GateKind::S, GateKind::Sdag, GateKind::T,
                     GateKind::Tdag, GateKind::X90, GateKind::MX90,
                     GateKind::Y90, GateKind::MY90}) {
    EXPECT_TRUE(gate_matrix_1q(k).is_unitary()) << qasm::gate_name(k);
  }
}

TEST(Gates, RotationsUnitaryForRandomAngles) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const double t = rng.uniform(-6.3, 6.3);
    EXPECT_TRUE(rx(t).is_unitary());
    EXPECT_TRUE(ry(t).is_unitary());
    EXPECT_TRUE(rz(t).is_unitary());
  }
}

TEST(Gates, HSquaredIsIdentity) {
  EXPECT_TRUE((hadamard() * hadamard()).approx_equal(Matrix::identity(2)));
}

TEST(Gates, SSquaredIsZ) {
  EXPECT_TRUE((phase_s() * phase_s()).approx_equal(pauli_z()));
}

TEST(Gates, TSquaredIsS) {
  EXPECT_TRUE((gate_t() * gate_t()).approx_equal(phase_s()));
}

TEST(Gates, XYZAnticommute) {
  const Matrix xy = pauli_x() * pauli_y();
  const Matrix yx = pauli_y() * pauli_x();
  EXPECT_TRUE((xy + yx).approx_equal(Matrix(2, 2)));
}

TEST(Gates, X90SquaredIsXUpToPhase) {
  const Matrix x90 = gate_matrix_1q(GateKind::X90);
  EXPECT_TRUE((x90 * x90).equal_up_to_phase(pauli_x()));
}

TEST(Gates, RzIsPhaseUpToGlobal) {
  // Rz(pi/2) ~ S up to global phase.
  EXPECT_TRUE(rz(kPi / 2).equal_up_to_phase(phase_s()));
}

TEST(Gates, TwoQubitMatrices) {
  EXPECT_TRUE(gate_matrix_2q(GateKind::CNOT).is_unitary());
  EXPECT_TRUE(gate_matrix_2q(GateKind::CZ).is_unitary());
  EXPECT_TRUE(gate_matrix_2q(GateKind::Swap).is_unitary());
  EXPECT_TRUE(gate_matrix_2q(GateKind::CR, 0.7).is_unitary());
  EXPECT_TRUE(gate_matrix_2q(GateKind::CRK, 0, 3).is_unitary());
  EXPECT_TRUE(gate_matrix_2q(GateKind::RZZ, 1.1).is_unitary());
}

TEST(Gates, CrkMatchesCrAngle) {
  // CRK(k=2) == CR(2*pi/4).
  EXPECT_TRUE(gate_matrix_2q(GateKind::CRK, 0.0, 2)
                  .approx_equal(gate_matrix_2q(GateKind::CR, kPi / 2)));
}

TEST(Gates, WrongArityThrows) {
  EXPECT_THROW(gate_matrix_1q(GateKind::CNOT), std::invalid_argument);
  EXPECT_THROW(gate_matrix_2q(GateKind::H), std::invalid_argument);
}

// --------------------------------------------------------- StateVector ----

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dimension(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - cplx(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVector, GuardsAndErrors) {
  EXPECT_THROW(StateVector(0), std::invalid_argument);
  EXPECT_THROW(StateVector(29), std::invalid_argument);
  StateVector sv(2);
  EXPECT_THROW(sv.apply_1q(Matrix::identity(2), 5), std::out_of_range);
  EXPECT_THROW(sv.apply_swap(1, 1), std::invalid_argument);
  EXPECT_THROW(sv.apply_2q(Matrix::identity(4), 0, 0),
               std::invalid_argument);
}

TEST(StateVector, XFlipsBit) {
  StateVector sv(2);
  sv.apply_1q(pauli_x(), 1);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 1.0, 1e-12);
  EXPECT_NEAR(sv.prob_one(1), 1.0, 1e-12);
  EXPECT_NEAR(sv.prob_one(0), 0.0, 1e-12);
}

TEST(StateVector, HadamardSuperposition) {
  StateVector sv(1);
  sv.apply_1q(hadamard(), 0);
  EXPECT_NEAR(sv.prob_one(0), 0.5, 1e-12);
  EXPECT_NEAR(sv.expectation_z(0), 0.0, 1e-12);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  sv.apply_1q(hadamard(), 0);
  sv.apply_controlled_1q(pauli_x(), {0}, 1);
  EXPECT_NEAR(std::norm(sv.amplitude(0b00)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sv.amplitude(0b01)), 0.0, 1e-12);
}

TEST(StateVector, BellMeasurementsCorrelate) {
  Rng rng(99);
  int mismatches = 0;
  for (int trial = 0; trial < 200; ++trial) {
    StateVector sv(2);
    sv.apply_1q(hadamard(), 0);
    sv.apply_controlled_1q(pauli_x(), {0}, 1);
    const int a = sv.measure(0, rng);
    const int b = sv.measure(1, rng);
    if (a != b) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(StateVector, MeasurementCollapses) {
  Rng rng(1);
  StateVector sv(1);
  sv.apply_1q(hadamard(), 0);
  const int first = sv.measure(0, rng);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sv.measure(0, rng), first);
}

TEST(StateVector, MeasurementFrequency) {
  Rng rng(7);
  int ones = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    StateVector sv(1);
    sv.apply_1q(ry(2.0 * std::asin(std::sqrt(0.3))), 0);  // P(1) = 0.3
    ones += sv.measure(0, rng);
  }
  EXPECT_NEAR(ones / 2000.0, 0.3, 0.04);
}

TEST(StateVector, SwapPermutesAmplitudes) {
  StateVector sv(2);
  sv.apply_1q(pauli_x(), 0);  // |01> (q0 = 1)
  sv.apply_swap(0, 1);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 1.0, 1e-12);
}

TEST(StateVector, SwapMatchesMatrixForm) {
  Rng rng(5);
  StateVector a(3), b(3);
  // Random product state via rotations.
  for (QubitIndex q = 0; q < 3; ++q) {
    const double t1 = rng.uniform(0, 6.28);
    const double t2 = rng.uniform(0, 6.28);
    a.apply_1q(ry(t1), q);
    a.apply_1q(rz(t2), q);
    b.apply_1q(ry(t1), q);
    b.apply_1q(rz(t2), q);
  }
  a.apply_swap(0, 2);
  b.apply_2q(gate_matrix_2q(GateKind::Swap), 0, 2);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
}

TEST(StateVector, Apply2qOperandOrder) {
  // CNOT via apply_2q with first operand (q1 param) as control.
  StateVector sv(2);
  sv.apply_1q(pauli_x(), 0);  // control q0 = 1
  sv.apply_2q(gate_matrix_2q(GateKind::CNOT), 0, 1);
  // Target q1 must now be 1: state |11>.
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1.0, 1e-12);
}

TEST(StateVector, ToffoliViaControlledX) {
  StateVector sv(3);
  sv.apply_1q(pauli_x(), 0);
  sv.apply_1q(pauli_x(), 1);
  sv.apply_controlled_1q(pauli_x(), {0, 1}, 2);
  EXPECT_NEAR(std::abs(sv.amplitude(0b111)), 1.0, 1e-12);
  // Remove one control: target must not flip back.
  sv.apply_1q(pauli_x(), 0);
  sv.apply_controlled_1q(pauli_x(), {0, 1}, 2);
  EXPECT_NEAR(std::abs(sv.amplitude(0b110)), 1.0, 1e-12);
}

TEST(StateVector, PrepZResets) {
  Rng rng(4);
  StateVector sv(2);
  sv.apply_1q(pauli_x(), 0);
  sv.apply_1q(hadamard(), 1);
  sv.prep_z(0, rng);
  sv.prep_z(1, rng);
  EXPECT_NEAR(sv.prob_one(0), 0.0, 1e-12);
  EXPECT_NEAR(sv.prob_one(1), 0.0, 1e-12);
}

TEST(StateVector, ExpectationDiagonal) {
  StateVector sv(2);
  sv.apply_1q(hadamard(), 0);
  // f(basis) = basis index value.
  const double e = sv.expectation_diagonal(
      [](StateIndex i) { return static_cast<double>(i); });
  EXPECT_NEAR(e, 0.5, 1e-12);  // half |00> (0) + half |01> (1)
}

TEST(StateVector, SampleMatchesDistribution) {
  Rng rng(21);
  StateVector sv(1);
  sv.apply_1q(ry(2.0 * std::asin(std::sqrt(0.25))), 0);
  int ones = 0;
  for (int i = 0; i < 4000; ++i) ones += (sv.sample(rng) & 1) ? 1 : 0;
  EXPECT_NEAR(ones / 4000.0, 0.25, 0.03);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);  // sampling does not collapse
}

TEST(StateVector, BasisString) {
  StateVector sv(4);
  EXPECT_EQ(sv.basis_string(0b0101), "1010");  // q0 leftmost
}

TEST(StateVector, SampleFromCumulativeClampsBoundaryDraws) {
  // Regression: a cumulative that sums below 1.0 (float error, or a
  // renormalised sub-distribution) used to fall off the end of the
  // upper_bound search when the draw u landed at or above cum.back().
  // The clamp must return the last *occupied* state, skipping trailing
  // zero-probability entries whose cumulative value merely repeats.
  const std::vector<double> cum = {0.25, 0.25, 0.999, 0.999, 0.999};
  EXPECT_EQ(sample_from_cumulative(cum, 0.0), 0u);
  EXPECT_EQ(sample_from_cumulative(cum, 0.25), 2u);  // p[1] == 0 is skipped
  EXPECT_EQ(sample_from_cumulative(cum, 0.999), 2u);  // boundary draw
  EXPECT_EQ(sample_from_cumulative(cum, 1.0), 2u);    // above the total
  // Degenerate shapes stay in range.
  EXPECT_EQ(sample_from_cumulative({}, 0.5), 0u);
  EXPECT_EQ(sample_from_cumulative({0.0, 0.0, 1.0}, 1.0), 2u);
  EXPECT_EQ(sample_from_cumulative({1.0}, 2.0), 0u);
}

TEST(StateVector, GhzFidelity) {
  StateVector sv(4);
  sv.apply_1q(hadamard(), 0);
  for (QubitIndex q = 0; q + 1 < 4; ++q)
    sv.apply_controlled_1q(pauli_x(), {q}, q + 1);
  EXPECT_NEAR(std::norm(sv.amplitude(0b0000)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sv.amplitude(0b1111)), 0.5, 1e-12);
}

// --------------------------------------------------------- ErrorModels ----

TEST(ErrorModel, PerfectModelIsNoOp) {
  auto model = make_error_model(QubitModel::perfect());
  Rng rng(1);
  StateVector sv(1);
  sv.apply_1q(hadamard(), 0);
  StateVector before = sv;
  model->after_gate(sv, {0}, 20, rng);
  EXPECT_NEAR(sv.fidelity(before), 1.0, 1e-12);
  EXPECT_EQ(model->corrupt_readout(1, rng), 1);
}

TEST(ErrorModel, DepolarizingInjectsAtExpectedRate) {
  DepolarizingModel model(/*p1=*/0.5, /*p2=*/0.5);
  Rng rng(2);
  int corrupted = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    StateVector sv(1);  // |0>
    model.after_gate(sv, {0}, 20, rng);
    // X or Y error flips the bit; Z leaves |0> unchanged.
    if (sv.prob_one(0) > 0.5) ++corrupted;
  }
  // P(flip) = p * 2/3.
  EXPECT_NEAR(corrupted / static_cast<double>(trials), 0.5 * 2.0 / 3.0, 0.04);
}

TEST(ErrorModel, ReadoutCorruption) {
  DepolarizingModel model(0, 0, /*readout=*/0.25);
  Rng rng(3);
  int flips = 0;
  for (int t = 0; t < 4000; ++t)
    flips += model.corrupt_readout(0, rng) == 1 ? 1 : 0;
  EXPECT_NEAR(flips / 4000.0, 0.25, 0.03);
}

TEST(ErrorModel, BitFlipOnlyFlipsX) {
  BitFlipModel model(1.0);  // always flip
  Rng rng(4);
  StateVector sv(1);
  model.after_gate(sv, {0}, 20, rng);
  EXPECT_NEAR(sv.prob_one(0), 1.0, 1e-12);
}

TEST(ErrorModel, DecoherenceDecaysExcitedState) {
  // A qubit in |1> idling for t = T1 should decay with prob 1 - 1/e.
  DecoherenceModel model(/*t1=*/1000.0, /*t2=*/0.0);
  Rng rng(5);
  int decayed = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    StateVector sv(1);
    sv.apply_1q(pauli_x(), 0);
    model.idle(sv, {0}, 1000, rng);
    if (sv.prob_one(0) < 0.5) ++decayed;
  }
  EXPECT_NEAR(decayed / static_cast<double>(trials), 1.0 - std::exp(-1.0),
              0.04);
}

TEST(ErrorModel, FactoryComposition) {
  QubitModel m = QubitModel::realistic();
  auto model = make_error_model(m);
  EXPECT_NE(dynamic_cast<CompositeErrorModel*>(model.get()), nullptr);
  auto perfect = make_error_model(QubitModel::perfect());
  EXPECT_NE(dynamic_cast<NoErrorModel*>(perfect.get()), nullptr);
}

// ----------------------------------------------------------- Simulator ----

TEST(Simulator, BellHistogram) {
  const qasm::Program p = qasm::Parser::parse(R"(
qubits 2
h q[0]
cnot q[0], q[1]
measure q[0]
measure q[1]
)");
  Simulator sim(2);
  const RunResult r = sim.run(p, 2000);
  EXPECT_EQ(r.shots, 2000u);
  const double p00 = r.histogram.frequency("00");
  const double p11 = r.histogram.frequency("11");
  EXPECT_NEAR(p00, 0.5, 0.05);
  EXPECT_NEAR(p11, 0.5, 0.05);
  EXPECT_EQ(r.histogram.count("01"), 0u);
  EXPECT_EQ(r.histogram.count("10"), 0u);
}

TEST(Simulator, ConditionalGateFires) {
  // Measure |1>, then c-x flips q1.
  const qasm::Program p = qasm::Parser::parse(R"(
qubits 2
x q[0]
measure q[0]
c-x b[0], q[1]
measure q[1]
)");
  Simulator sim(2);
  const auto bits = sim.run_once(p);
  EXPECT_EQ(bits[0], 1);
  EXPECT_EQ(bits[1], 1);
}

TEST(Simulator, ConditionalGateSkipped) {
  const qasm::Program p = qasm::Parser::parse(R"(
qubits 2
measure q[0]
c-x b[0], q[1]
measure q[1]
)");
  Simulator sim(2);
  const auto bits = sim.run_once(p);
  EXPECT_EQ(bits[0], 0);
  EXPECT_EQ(bits[1], 0);
}

TEST(Simulator, MeasureAllAndPrep) {
  const qasm::Program p = qasm::Parser::parse(R"(
qubits 3
x q[0]
x q[2]
measure_all
)");
  Simulator sim(3);
  const auto bits = sim.run_once(p);
  EXPECT_EQ(bits, (std::vector<int>{1, 0, 1}));
}

TEST(Simulator, GateCounting) {
  const qasm::Program p = qasm::Parser::parse(R"(
qubits 1
h q[0]
x q[0]
measure q[0]
)");
  Simulator sim(1);
  sim.run_once(p);
  EXPECT_EQ(sim.gates_executed(), 2u);  // measure is not a gate
}

TEST(Simulator, RealisticQubitsDegradeGhz) {
  const qasm::Program p = qasm::Parser::parse(R"(
qubits 4
h q[0]
cnot q[0], q[1]
cnot q[1], q[2]
cnot q[2], q[3]
measure_all
)");
  Simulator perfect(4, QubitModel::perfect(), 1);
  Simulator noisy(4, QubitModel::realistic(5e-2, 1e-1, 2e-2, 10, 5), 1);
  const auto rp = perfect.run(p, 500);
  const auto rn = noisy.run(p, 500);
  const double good_p =
      rp.histogram.frequency("0000") + rp.histogram.frequency("1111");
  const double good_n =
      rn.histogram.frequency("0000") + rn.histogram.frequency("1111");
  EXPECT_NEAR(good_p, 1.0, 1e-9);
  EXPECT_LT(good_n, 0.95);  // noise must visibly degrade the GHZ state
}

TEST(Simulator, ProgramTooLargeThrows) {
  qasm::Program p("big", 5);
  Simulator sim(3);
  EXPECT_THROW(sim.run_once(p), std::invalid_argument);
}

TEST(Simulator, WaitAppliesIdleDecoherence) {
  QubitModel m;
  m.kind = QubitKind::Realistic;
  m.t1_ns = 100.0;
  Simulator sim(1, m, 11);
  const qasm::Program p = qasm::Parser::parse(R"(
qubits 1
x q[0]
wait q[0], 500
measure q[0]
)");
  // 500 cycles * 20ns = 10000ns >> T1=100ns: decay almost certain.
  int ones = 0;
  for (int t = 0; t < 50; ++t) {
    sim.reset();
    ones += sim.run_once(p)[0];
  }
  EXPECT_LT(ones, 10);
}

TEST(Simulator, BareWaitIdlesAllQubits) {
  // Regression: a bare `wait n` (no qubit operands) is legal cQASM and
  // must idle the WHOLE register. Before the fix the instruction was
  // rejected outright, so no decay was ever applied.
  QubitModel m;
  m.kind = QubitKind::Realistic;
  m.t1_ns = 10000.0;
  const qasm::Program p = qasm::Parser::parse(R"(
qubits 3
x q[0]
x q[1]
x q[2]
wait 250
measure_all
)");
  // 250 cycles * 20ns = 5000ns = T1/2: analytic survival exp(-0.5).
  const double survival = std::exp(-0.5);
  Simulator sim(3, m, 17);
  const RunResult r = sim.run(p, 4000);
  double ones[3] = {0.0, 0.0, 0.0};
  for (const auto& [bits, count] : r.histogram.counts())
    for (int q = 0; q < 3; ++q)
      if (bits[static_cast<std::size_t>(q)] == '1')
        ones[q] += static_cast<double>(count);
  for (int q = 0; q < 3; ++q)
    EXPECT_NEAR(ones[q] / 4000.0, survival, 0.04) << "q=" << q;
}

TEST(Simulator, BareWaitMatchesExplicitAllQubitWait) {
  // Same seed, same model: `wait n` must behave exactly like listing
  // every qubit explicitly.
  QubitModel m;
  m.kind = QubitKind::Realistic;
  m.t1_ns = 2000.0;
  m.t2_ns = 1500.0;
  const qasm::Program bare = qasm::Parser::parse(R"(
qubits 2
h q[0]
cnot q[0], q[1]
wait 100
measure_all
)");
  const qasm::Program expl = qasm::Parser::parse(R"(
qubits 2
h q[0]
cnot q[0], q[1]
wait q[0], q[1], 100
measure_all
)");
  Simulator a(2, m, 23);
  Simulator b(2, m, 23);
  EXPECT_EQ(a.run(bare, 500).histogram.counts(),
            b.run(expl, 500).histogram.counts());
}

TEST(StateVector, SampleNormalizesSubUnitState) {
  // Regression: sample() must weight by |amp|^2 / norm. On a sub-unit
  // state (as left behind by trajectory error channels) the old code
  // compared the running sum against a [0,1) uniform, so most draws fell
  // off the end and landed on the fallback (last occupied) basis state.
  StateVector sv(1);
  sv.set_amplitude(0, cplx(0.3, 0.0));
  sv.set_amplitude(1, cplx(0.4, 0.0));  // norm^2 = 0.25, p1|norm = 0.64
  Rng rng(29);
  int ones = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) ones += (sv.sample(rng) & 1) ? 1 : 0;
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.64, 0.03);
}

TEST(Simulator, RunMatchesManuallyFlattenedProgram) {
  // run() flattens the program once before the shot loop; semantics must
  // match executing the expanded iteration stream.
  qasm::Program iterated("iterated", 2);
  qasm::Circuit loop("loop", /*iterations=*/3);
  loop.add(Instruction(GateKind::H, {0}));
  loop.add(Instruction(GateKind::CNOT, {0, 1}));
  iterated.add_circuit(loop);
  qasm::Circuit tail("tail");
  tail.add(Instruction(GateKind::MeasureAll, {}));
  iterated.add_circuit(tail);

  qasm::Program expanded("expanded", 2);
  qasm::Circuit body("body");
  for (int i = 0; i < 3; ++i) {
    body.add(Instruction(GateKind::H, {0}));
    body.add(Instruction(GateKind::CNOT, {0, 1}));
  }
  body.add(Instruction(GateKind::MeasureAll, {}));
  expanded.add_circuit(body);

  Simulator a(2, QubitModel::perfect(), 31);
  Simulator b(2, QubitModel::perfect(), 31);
  EXPECT_EQ(a.run(iterated, 400).histogram.counts(),
            b.run(expanded, 400).histogram.counts());
}

TEST(GateDurations, PerClassLookup) {
  GateDurations d;
  EXPECT_EQ(d.of(Instruction(GateKind::H, {0})), d.single_qubit);
  EXPECT_EQ(d.of(Instruction(GateKind::CZ, {0, 1})), d.two_qubit);
  EXPECT_EQ(d.of(Instruction(GateKind::Measure, {0})), d.measure);
  EXPECT_EQ(d.of(Instruction(GateKind::Wait, {0}, 0.0, 5)), 5 * d.cycle);
  EXPECT_EQ(d.of(Instruction(GateKind::Barrier, {0})), 0u);
}

}  // namespace
}  // namespace qs::sim
