// Property-based tests (parameterised gtest sweeps): invariants that must
// hold across randomised inputs and whole parameter families, exercising
// the algebraic core of the stack harder than the per-module unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "anneal/annealer.h"
#include "anneal/qubo.h"
#include "apps/genome/qam.h"
#include "apps/tsp/solvers.h"
#include "apps/tsp/tsp.h"
#include "compiler/compiler.h"
#include "compiler/decompose.h"
#include "compiler/mapper.h"
#include "compiler/schedule.h"
#include "qasm/parser.h"
#include "qasm/printer.h"
#include "qec/repetition.h"
#include "qec/surface.h"
#include "sim/gates.h"
#include "sim/simulator.h"

namespace qs {
namespace {

// ------------------------------------------------ gate unitarity sweep ----

class GateUnitarityP : public ::testing::TestWithParam<qasm::GateKind> {};

TEST_P(GateUnitarityP, MatrixIsUnitaryForRandomParameters) {
  const qasm::GateKind kind = GetParam();
  Rng rng(static_cast<std::uint64_t>(kind) + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const double angle = rng.uniform(-2 * kPi, 2 * kPi);
    const std::int64_t k = static_cast<std::int64_t>(rng.uniform_int(6));
    Matrix u;
    if (qasm::gate_arity(kind) == 1) {
      u = sim::gate_matrix_1q(kind, angle);
    } else if (qasm::gate_arity(kind) == 2) {
      u = sim::gate_matrix_2q(kind, angle, k);
    } else {
      u = sim::gate_matrix(qasm::Instruction(kind, {0, 1, 2}));
    }
    EXPECT_TRUE(u.is_unitary(1e-9))
        << qasm::gate_name(kind) << " angle " << angle;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllUnitaryGates, GateUnitarityP,
    ::testing::Values(qasm::GateKind::I, qasm::GateKind::X, qasm::GateKind::Y,
                      qasm::GateKind::Z, qasm::GateKind::H, qasm::GateKind::S,
                      qasm::GateKind::Sdag, qasm::GateKind::T,
                      qasm::GateKind::Tdag, qasm::GateKind::X90,
                      qasm::GateKind::MX90, qasm::GateKind::Y90,
                      qasm::GateKind::MY90, qasm::GateKind::Rx,
                      qasm::GateKind::Ry, qasm::GateKind::Rz,
                      qasm::GateKind::CNOT, qasm::GateKind::CZ,
                      qasm::GateKind::Swap, qasm::GateKind::CR,
                      qasm::GateKind::CRK, qasm::GateKind::RZZ,
                      qasm::GateKind::Toffoli),
    [](const ::testing::TestParamInfo<qasm::GateKind>& info) {
      std::string name = qasm::gate_name(info.param);
      for (auto& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// -------------------------------------------- norm preservation sweep ----

class NormPreservationP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormPreservationP, RandomCircuitKeepsUnitNorm) {
  Rng rng(GetParam());
  const std::size_t n = 5;
  sim::StateVector sv(n);
  for (int g = 0; g < 80; ++g) {
    switch (rng.uniform_int(5)) {
      case 0:
        sv.apply_1q(sim::rx(rng.uniform(-3, 3)),
                    static_cast<QubitIndex>(rng.uniform_int(n)));
        break;
      case 1:
        sv.apply_1q(sim::hadamard(),
                    static_cast<QubitIndex>(rng.uniform_int(n)));
        break;
      case 2: {
        const QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(n));
        QubitIndex b = a;
        while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(n));
        sv.apply_controlled_1q(sim::pauli_x(), {a}, b);
        break;
      }
      case 3: {
        const QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(n));
        QubitIndex b = a;
        while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(n));
        sv.apply_2q(sim::gate_matrix_2q(qasm::GateKind::RZZ,
                                        rng.uniform(-3, 3)),
                    a, b);
        break;
      }
      default: {
        const QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(n));
        QubitIndex b = a;
        while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(n));
        sv.apply_swap(a, b);
      }
    }
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
  // Probabilities of all measurement outcomes sum to 1 per qubit.
  for (QubitIndex q = 0; q < n; ++q) {
    const double p1 = sv.prob_one(q);
    EXPECT_GE(p1, -1e-12);
    EXPECT_LE(p1, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormPreservationP,
                         ::testing::Range<std::uint64_t>(1, 13));

// ----------------------------------------- decompose equivalence sweep ----

struct DecomposeCase {
  const char* name;
  std::size_t qubits;
  void (*build)(compiler::Kernel&, Rng&);
};

void build_random_1q(compiler::Kernel& k, Rng& rng) {
  static const qasm::GateKind kinds[] = {
      qasm::GateKind::H, qasm::GateKind::X,  qasm::GateKind::Y,
      qasm::GateKind::Z, qasm::GateKind::S,  qasm::GateKind::Sdag,
      qasm::GateKind::T, qasm::GateKind::Tdag};
  for (int g = 0; g < 10; ++g)
    k.add(qasm::Instruction(kinds[rng.uniform_int(8)], {0}));
}
void build_random_rot(compiler::Kernel& k, Rng& rng) {
  for (int g = 0; g < 8; ++g) {
    k.rx(0, rng.uniform(-3, 3));
    k.ry(0, rng.uniform(-3, 3));
    k.rz(0, rng.uniform(-3, 3));
  }
}
void build_two_qubit_mix(compiler::Kernel& k, Rng& rng) {
  for (int g = 0; g < 6; ++g) {
    k.cnot(0, 1);
    k.cr(1, 0, rng.uniform(-3, 3));
    k.rzz(0, 1, rng.uniform(-3, 3));
    k.swap(0, 1);
  }
}
void build_toffoli_mix(compiler::Kernel& k, Rng& rng) {
  for (int g = 0; g < 3; ++g) {
    k.toffoli(0, 1, 2);
    k.h(static_cast<QubitIndex>(rng.uniform_int(3)));
    k.toffoli(2, 0, 1);
  }
}
void build_qft(compiler::Kernel& k, Rng&) { k.qft({0, 1, 2, 3}); }

class DecomposeEquivalenceP
    : public ::testing::TestWithParam<std::tuple<DecomposeCase, int>> {};

TEST_P(DecomposeEquivalenceP, LoweredCircuitMatchesOriginal) {
  const auto& [c, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);
  compiler::Program orig("p", c.qubits);
  auto& k = orig.add_kernel("main");
  for (QubitIndex q = 0; q < c.qubits; ++q) {
    k.ry(q, rng.uniform(0, 2 * kPi));
    k.rz(q, rng.uniform(0, 2 * kPi));
  }
  c.build(k, rng);

  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_count = c.qubits;
  platform.topology = compiler::Topology::full(c.qubits);
  platform.qubit_model = sim::QubitModel::perfect();

  const qasm::Program lowered = compiler::decompose(orig.to_qasm(), platform);
  for (const auto& circuit : lowered.circuits())
    for (const auto& instr : circuit.instructions())
      ASSERT_TRUE(platform.is_primitive(instr.kind()));

  sim::Simulator a(c.qubits, sim::QubitModel::perfect(), 1);
  a.run_once(orig.to_qasm());
  sim::Simulator b(c.qubits, sim::QubitModel::perfect(), 1);
  b.run_once(lowered);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DecomposeEquivalenceP,
    ::testing::Combine(
        ::testing::Values(DecomposeCase{"clifford1q", 1, build_random_1q},
                          DecomposeCase{"rotations", 1, build_random_rot},
                          DecomposeCase{"twoqubit", 2, build_two_qubit_mix},
                          DecomposeCase{"toffoli", 3, build_toffoli_mix},
                          DecomposeCase{"qft4", 4, build_qft}),
        ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<DecomposeCase, int>>& info) {
      return std::string(std::get<0>(info.param).name) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------ parser round-trips ----

class ParserRoundTripP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRoundTripP, PrintedProgramParsesBack) {
  Rng rng(GetParam() * 31 + 5);
  const std::size_t n = 2 + rng.uniform_int(5);
  qasm::Program p("fuzz", n);
  auto& c = p.add_circuit("main", 1 + rng.uniform_int(3));
  const std::size_t instr_count = 5 + rng.uniform_int(30);
  for (std::size_t g = 0; g < instr_count; ++g) {
    const QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(n));
    QubitIndex b = a;
    if (n > 1)
      while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(n));
    switch (rng.uniform_int(8)) {
      case 0: c.add(qasm::Instruction(qasm::GateKind::H, {a})); break;
      case 1:
        c.add(qasm::Instruction(qasm::GateKind::Rx, {a},
                                rng.uniform(-6, 6)));
        break;
      case 2:
        if (n > 1) c.add(qasm::Instruction(qasm::GateKind::CNOT, {a, b}));
        break;
      case 3:
        if (n > 1)
          c.add(qasm::Instruction(
              qasm::GateKind::CRK, {a, b}, 0.0,
              static_cast<std::int64_t>(1 + rng.uniform_int(5))));
        break;
      case 4: c.add(qasm::Instruction(qasm::GateKind::Measure, {a})); break;
      case 5: {
        qasm::Instruction cond(qasm::GateKind::Z, {a});
        cond.set_conditions({static_cast<BitIndex>(rng.uniform_int(n))});
        c.add(std::move(cond));
        break;
      }
      case 6:
        c.add(qasm::Instruction(qasm::GateKind::PrepZ, {a}));
        break;
      default:
        c.add(qasm::Instruction(qasm::GateKind::Wait, {a}, 0.0,
                                static_cast<std::int64_t>(
                                    1 + rng.uniform_int(9))));
    }
  }

  const std::string text = qasm::to_cqasm(p);
  const qasm::Program back = qasm::Parser::parse(text);
  ASSERT_EQ(back.qubit_count(), p.qubit_count());
  ASSERT_EQ(back.circuits().size(), p.circuits().size());
  const auto& orig = p.circuits()[0].instructions();
  const auto& parsed = back.circuits()[0].instructions();
  ASSERT_EQ(parsed.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i)
    EXPECT_TRUE(parsed[i] == orig[i]) << text << "\nat instruction " << i;
  // Printing the parsed program again is a fixed point.
  EXPECT_EQ(qasm::to_cqasm(back), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripP,
                         ::testing::Range<std::uint64_t>(1, 17));

// --------------------------------------------- scheduler invariants ----

class ScheduleInvariantsP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleInvariantsP, DependenciesRespectedAndDepthsEqual) {
  Rng rng(GetParam() * 7919 + 3);
  const std::size_t n = 5;
  compiler::Program p("sched", n);
  auto& k = p.add_kernel("main");
  for (int g = 0; g < 40; ++g) {
    const QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(n));
    QubitIndex b = a;
    while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(n));
    if (rng.bernoulli(0.5))
      k.h(a);
    else
      k.cnot(a, b);
  }
  const compiler::Platform platform = compiler::Platform::perfect(n);

  for (auto kind :
       {compiler::SchedulerKind::ASAP, compiler::SchedulerKind::ALAP}) {
    const qasm::Program out = compiler::schedule(p.to_qasm(), platform, kind);
    const auto& ins = out.circuits()[0].instructions();
    // No two instructions sharing a qubit may overlap in time.
    for (std::size_t i = 0; i < ins.size(); ++i) {
      for (std::size_t j = i + 1; j < ins.size(); ++j) {
        bool shares = false;
        for (QubitIndex q : ins[i].qubits())
          if (ins[j].uses_qubit(q)) shares = true;
        if (!shares) continue;
        const auto di = static_cast<std::int64_t>(platform.cycles_of(ins[i]));
        const auto dj = static_cast<std::int64_t>(platform.cycles_of(ins[j]));
        const bool disjoint_time =
            ins[i].cycle() + di <= ins[j].cycle() ||
            ins[j].cycle() + dj <= ins[i].cycle();
        EXPECT_TRUE(disjoint_time)
            << ins[i].to_string() << " overlaps " << ins[j].to_string();
      }
    }
  }

  // ASAP and ALAP give the same makespan (both are critical-path tight).
  compiler::ScheduleStats asap_stats, alap_stats;
  compiler::schedule(p.to_qasm(), platform, compiler::SchedulerKind::ASAP,
                     &asap_stats);
  compiler::schedule(p.to_qasm(), platform, compiler::SchedulerKind::ALAP,
                     &alap_stats);
  EXPECT_EQ(asap_stats.depth_cycles, alap_stats.depth_cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleInvariantsP,
                         ::testing::Range<std::uint64_t>(1, 11));

// ------------------------------------------------- mapper invariants ----

class MapperInvariantsP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperInvariantsP, RoutedProgramIsNearestNeighbourAndEquivalent) {
  Rng rng(GetParam() * 104729 + 7);
  const std::size_t n = 6;
  compiler::Program p("map", n);
  auto& k = p.add_kernel("main");
  for (QubitIndex q = 0; q < n; ++q) k.ry(q, rng.uniform(0, 2 * kPi));
  for (int g = 0; g < 15; ++g) {
    const QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(n));
    QubitIndex b = a;
    while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(n));
    k.cnot(a, b);
  }
  const compiler::Platform grid = compiler::Platform::perfect_grid(2, 3);
  compiler::MapStats stats;
  const compiler::Mapper mapper(GetParam() % 2 == 0
                                    ? compiler::PlacementKind::Identity
                                    : compiler::PlacementKind::Greedy);
  const qasm::Program routed = mapper.map(p.to_qasm(), grid, &stats);

  // Every 2q gate acts on adjacent physical qubits.
  for (const auto& c : routed.circuits())
    for (const auto& i : c.instructions())
      if (qasm::gate_is_two_qubit(i.kind()))
        EXPECT_LE(grid.topology.distance(i.qubits()[0], i.qubits()[1]), 1u);

  // Semantics preserved modulo the final qubit permutation.
  sim::Simulator orig(n, sim::QubitModel::perfect(), 1);
  orig.run_once(p.to_qasm());
  sim::Simulator mapped(n, sim::QubitModel::perfect(), 1);
  mapped.run_once(routed);
  sim::StateVector expect(n);
  expect.set_amplitude(0, cplx(0, 0));
  for (StateIndex basis = 0; basis < (StateIndex{1} << n); ++basis) {
    StateIndex phys = 0;
    for (QubitIndex l = 0; l < n; ++l)
      if (basis & (StateIndex{1} << l))
        phys |= StateIndex{1} << stats.final_map[l];
    expect.set_amplitude(phys, orig.state().amplitude(basis));
  }
  EXPECT_NEAR(mapped.state().fidelity(expect), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperInvariantsP,
                         ::testing::Range<std::uint64_t>(1, 11));

// -------------------------------------------------- QUBO/Ising sweep ----

class QuboIsingP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuboIsingP, EnergiesAgreeOnEveryAssignment) {
  Rng rng(GetParam() * 53 + 11);
  const std::size_t n = 6;
  anneal::Qubo q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q.add(i, i, rng.uniform(-2, 2));
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.6)) q.add(i, j, rng.uniform(-2, 2));
  }
  const anneal::IsingModel ising = q.to_ising();
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<int> x(n), s(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = (mask >> i) & 1;
      s[i] = x[i] ? 1 : -1;
    }
    ASSERT_NEAR(q.energy(x), ising.energy(s), 1e-9) << mask;
  }
  // And argmin is preserved through the inverse transform.
  const anneal::Qubo back = anneal::Qubo::from_ising(ising);
  EXPECT_EQ(back.brute_force_minimum().first, q.brute_force_minimum().first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuboIsingP,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------- annealer optimum ----

class AnnealerOptimumP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnnealerOptimumP, FindsBruteForceMinimumOnRandomQubo) {
  Rng rng(GetParam() * 37 + 19);
  const std::size_t n = 9;
  anneal::Qubo q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q.add(i, i, rng.uniform(-1, 1));
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.4)) q.add(i, j, rng.uniform(-1, 1));
  }
  const double optimal = q.brute_force_minimum().second;
  anneal::AnnealSchedule schedule;
  schedule.sweeps = 800;
  schedule.restarts = 4;
  EXPECT_NEAR(anneal::SimulatedAnnealer(schedule).solve_qubo(q, rng).second,
              optimal, 1e-9);
  anneal::QuantumAnnealSchedule qschedule;
  qschedule.sweeps = 600;
  qschedule.restarts = 4;
  EXPECT_NEAR(
      anneal::SimulatedQuantumAnnealer(qschedule).solve_qubo(q, rng).second,
      optimal, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealerOptimumP,
                         ::testing::Range<std::uint64_t>(1, 9));

// -------------------------------------------- repetition code sweep ----

class RepetitionDecodeP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RepetitionDecodeP, CorrectsAllErrorsUpToHalfDistance) {
  const std::size_t d = GetParam();
  const qec::RepetitionCode code(d);
  const std::size_t t = (d - 1) / 2;  // correctable weight
  // Enumerate every error pattern of weight <= t.
  for (unsigned err = 0; err < (1u << d); ++err) {
    unsigned weight = 0;
    for (std::size_t i = 0; i < d; ++i)
      if (err & (1u << i)) ++weight;
    if (weight > t) continue;
    std::vector<int> data(d);
    for (std::size_t i = 0; i < d; ++i) data[i] = (err >> i) & 1;
    std::vector<int> syndrome(d - 1);
    for (std::size_t i = 0; i + 1 < d; ++i)
      syndrome[i] = data[i] ^ data[i + 1];
    for (std::size_t flip : code.decode_syndrome(syndrome)) data[flip] ^= 1;
    EXPECT_EQ(code.majority_decode(data), 0)
        << "d=" << d << " error=" << err;
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, RepetitionDecodeP,
                         ::testing::Values(3, 5, 7, 9));

// ------------------------------------------------ surface code sweep ----

class SurfaceWeightP : public ::testing::TestWithParam<unsigned> {};

TEST_P(SurfaceWeightP, UndetectedErrorsAreStabilizersOrLogicals) {
  // Property: any X-error pattern with trivial syndrome is either a
  // product of Z-stabilizer... (for X errors: product of X stabilizers)
  // or a logical operator times one — i.e. corrects to no-logical or
  // flips logical Z; it must never fire a syndrome.
  const qec::SurfaceCode17 code;
  const unsigned err = GetParam();
  const unsigned syn = code.syndrome_of_x_errors(err);
  if (syn == 0) {
    // Decoder must return a correction with the same (trivial) syndrome.
    EXPECT_EQ(code.decode_z_syndrome(syn), 0u);
  } else {
    const unsigned corr = code.decode_z_syndrome(syn);
    EXPECT_EQ(code.syndrome_of_x_errors(corr), syn);
    // The residual is undetectable by construction.
    EXPECT_EQ(code.syndrome_of_x_errors(err ^ corr), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorPatterns, SurfaceWeightP,
                         ::testing::Range(0u, 128u));

// ------------------------------------------------ Grover closed form ----

class GroverFormP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroverFormP, OptimalIterationsNearMaximiseSuccess) {
  const std::size_t n = std::size_t{1} << GetParam();
  const std::size_t k = apps::genome::grover_optimal_iterations(n, 1);
  const double at_k = apps::genome::grover_success_probability(n, 1, k);
  // k_opt must beat its neighbours or be within rounding of them.
  const double at_km1 =
      k > 0 ? apps::genome::grover_success_probability(n, 1, k - 1) : 0.0;
  const double at_kp1 =
      apps::genome::grover_success_probability(n, 1, k + 1);
  EXPECT_GE(at_k + 1e-9, at_km1);
  EXPECT_GE(at_k + 1e-9, at_kp1);
  EXPECT_GT(at_k, 0.8);  // near-certain at the optimum for N >= 4
}

INSTANTIATE_TEST_SUITE_P(DatabaseSizes, GroverFormP,
                         ::testing::Range<std::size_t>(2, 16));

// -------------------------------------------------- TSP exactness ----

class TspSolversP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TspSolversP, ExactSolversAgreeAndHeuristicsAreUpperBounds) {
  Rng rng(GetParam() * 2003 + 1);
  const std::size_t n = 5 + rng.uniform_int(4);
  const apps::tsp::TspInstance inst = apps::tsp::TspInstance::random(n, rng);
  const double bf = apps::tsp::brute_force(inst).cost;
  EXPECT_NEAR(apps::tsp::held_karp(inst).cost, bf, 1e-9);
  EXPECT_NEAR(apps::tsp::branch_and_bound(inst).cost, bf, 1e-9);
  EXPECT_GE(apps::tsp::nearest_neighbour(inst).cost + 1e-12, bf);
  EXPECT_GE(apps::tsp::two_opt(inst).cost + 1e-12, bf);
  Rng mc(GetParam());
  EXPECT_GE(apps::tsp::monte_carlo(inst, 50, mc).cost + 1e-12, bf);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TspSolversP,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace qs
