// Backend supervision tests: circuit-breaker state machine, backend
// registration invariants, Bell-probe quarantine and recovery, shard
// failover (crash, corrupt histogram, stuck shard + watchdog) with
// byte-identical merged histograms, and checkpoint/resume across service
// restarts. Everything is deterministic; the fault scenarios run through
// runtime::FaultPlan, never real infrastructure failures.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "anneal/annealer.h"
#include "anneal/qubo.h"
#include "common/cancellation.h"
#include "common/rng.h"
#include "compiler/algorithms.h"
#include "compiler/kernel.h"
#include "microarch/eqasm_parser.h"
#include "qasm/parser.h"
#include "runtime/accelerator.h"
#include "service/backend_pool.h"
#include "service/checkpoint.h"
#include "service/service.h"

namespace qs {
namespace {

using namespace std::chrono_literals;
using runtime::BackendFaultKind;
using runtime::FaultPlan;
using runtime::GateAccelerator;
using runtime::GatePath;
using runtime::JobKind;
using runtime::RunRequest;
using runtime::RunResult;
using service::BackendPool;
using service::BackendPoolOptions;
using service::BreakerOptions;
using service::BreakerState;
using service::CircuitBreaker;

qasm::Program ghz_program(std::size_t n) {
  compiler::Program p("ghz", n);
  p.add_kernel("main").ghz(n).measure_all();
  return p.to_qasm();
}

std::shared_ptr<GateAccelerator> make_gate(std::size_t qubits,
                                           GatePath path = GatePath::Direct) {
  return std::make_shared<GateAccelerator>(compiler::Platform::perfect(qubits),
                                           compiler::CompileOptions{}, path);
}

/// Pool of `n` equivalent gate backends ("b0", "b1", ...) with a long
/// breaker cooldown so an opened breaker stays observably open.
std::shared_ptr<BackendPool> make_gate_pool(std::size_t n,
                                            std::size_t qubits) {
  BackendPoolOptions opts;
  opts.breaker.open_cooldown = 10s;
  auto pool = std::make_shared<BackendPool>(opts);
  for (std::size_t i = 0; i < n; ++i) {
    Status st = pool->register_gate("b" + std::to_string(i), make_gate(qubits));
    EXPECT_TRUE(st.ok()) << st.to_string();
  }
  return pool;
}

// ------------------------------------------------------ circuit breaker ----

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndBlocksTraffic) {
  CircuitBreaker breaker({/*failure_threshold=*/3, /*open_cooldown=*/10s,
                          /*half_open_successes=*/2});
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();  // third consecutive: trip
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_FALSE(breaker.allow());
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker({3, 10s, 2});
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_success();  // streak broken
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, CooldownMovesOpenToHalfOpenThenSuccessesClose) {
  // Zero cooldown: the next observation of an open breaker is a trial.
  CircuitBreaker breaker({1, /*open_cooldown=*/0us, /*half_open_successes=*/2});
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);  // one of two
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  CircuitBreaker breaker({1, 0us, 2});
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  breaker.record_failure();  // trial failed
  // Zero cooldown means the reopened breaker immediately reads half-open
  // again, but the trial-success count restarted from zero.
  breaker.record_success();
  EXPECT_NE(breaker.state(), BreakerState::Closed);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, TripQuarantinesRegardlessOfCounters) {
  CircuitBreaker breaker({100, 10s, 2});
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  breaker.trip();
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_FALSE(breaker.allow());
}

// --------------------------------------------------------- registration ----

TEST(BackendPool, RefusesDuplicateNamesAndMismatchedPlatforms) {
  BackendPool pool;
  ASSERT_TRUE(pool.register_gate("a", make_gate(4)).ok());
  EXPECT_EQ(pool.register_gate("a", make_gate(4)).code(),
            StatusCode::kInvalidArgument);
  // Different platform fingerprint: failover could not preserve the
  // merged histogram, so registration is refused.
  EXPECT_EQ(pool.register_gate("b", make_gate(5)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.register_gate("", nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(BackendPool, AcquireRoundRobinsAndSkipsOpenBreakers) {
  auto pool = make_gate_pool(3, 2);
  EXPECT_EQ(pool->healthy_count(JobKind::Gate), 3u);

  auto bad = pool->find("b1");
  ASSERT_NE(bad, nullptr);
  pool->quarantine(*bad);
  EXPECT_EQ(pool->breaker_state("b1"), BreakerState::Open);
  EXPECT_EQ(pool->healthy_count(JobKind::Gate), 2u);

  for (int i = 0; i < 12; ++i) {
    auto acquired = pool->acquire(JobKind::Gate);
    ASSERT_NE(acquired, nullptr);
    EXPECT_NE(acquired->name, "b1");
  }
}

TEST(BackendPool, AcquireFallsBackToExcludedWhenItIsTheOnlyOneLeft) {
  auto pool = make_gate_pool(1, 2);
  auto only = pool->acquire(JobKind::Gate, /*exclude=*/"b0");
  ASSERT_NE(only, nullptr);  // retrying the same backend beats failing
  EXPECT_EQ(only->name, "b0");

  pool->quarantine(*only);
  EXPECT_EQ(pool->acquire(JobKind::Gate), nullptr);
}

// --------------------------------------------------------------- probes ----

TEST(BackendPool, BellProbePassesHealthyBackendsOfBothKinds) {
  BackendPoolOptions opts;
  opts.breaker.open_cooldown = 10s;
  BackendPool pool(opts);
  ASSERT_TRUE(pool.register_gate("gate", make_gate(2)).ok());
  ASSERT_TRUE(pool
                  .register_anneal("anneal",
                                   std::make_shared<runtime::AnnealAccelerator>(
                                       /*capacity=*/4))
                  .ok());
  EXPECT_EQ(pool.run_probes(), 0u);
  EXPECT_EQ(pool.breaker_state("gate"), BreakerState::Closed);
  EXPECT_EQ(pool.breaker_state("anneal"), BreakerState::Closed);
}

TEST(BackendPool, ProbeFailureQuarantinesAndCountsMetrics) {
  service::MetricsRegistry metrics;
  auto pool = make_gate_pool(2, 2);
  pool->attach_metrics(&metrics);

  pool->find("b0")->inject_probe_failure = true;
  EXPECT_EQ(pool->run_probes(), 1u);
  EXPECT_EQ(pool->breaker_state("b0"), BreakerState::Open);
  EXPECT_EQ(pool->breaker_state("b1"), BreakerState::Closed);
  EXPECT_EQ(metrics.counter("qs_backend_probe_failures_total").value(), 1u);
  EXPECT_EQ(metrics.counter("qs_backend_quarantines_total").value(), 1u);
  EXPECT_EQ(metrics.gauge("qs_backend_breaker_state_b0").value(), 2);
  EXPECT_EQ(metrics.gauge("qs_backend_breaker_state_b1").value(), 0);

  const auto status = pool->status();
  ASSERT_EQ(status.size(), 2u);
  EXPECT_EQ(status[0].probes_failed, 1u);
  EXPECT_EQ(status[1].probes_failed, 0u);
}

TEST(BackendPool, RecoveredBackendWalksBackToClosedThroughProbes) {
  BackendPoolOptions opts;
  opts.breaker.open_cooldown = 0us;  // quarantine lifts at the next probe
  opts.breaker.half_open_successes = 2;
  BackendPool pool(opts);
  ASSERT_TRUE(pool.register_gate("g", make_gate(2)).ok());

  pool.find("g")->inject_probe_failure = true;
  EXPECT_EQ(pool.run_probes(), 1u);
  pool.find("g")->inject_probe_failure = false;  // backend recovers

  EXPECT_EQ(pool.run_probes(), 0u);  // first half-open trial success
  EXPECT_EQ(pool.run_probes(), 0u);  // second: breaker closes
  EXPECT_EQ(pool.breaker_state("g"), BreakerState::Closed);
}

TEST(BackendPool, ProbeFailsGateBackendTooSmallForBellCircuit) {
  BackendPool pool;
  ASSERT_TRUE(pool.register_gate("tiny", make_gate(1)).ok());
  EXPECT_EQ(pool.run_probes(), 1u);
  EXPECT_EQ(pool.breaker_state("tiny"), BreakerState::Open);
}

// ----------------------------------------------------- shard failover ----

service::ServiceOptions small_shard_options() {
  service::ServiceOptions opts;
  opts.workers = 4;
  opts.shard_shots = 256;
  opts.retry_backoff.initial = std::chrono::microseconds(1);
  return opts;
}

/// Fault-free single-backend reference run for byte-identity comparisons.
Histogram reference_histogram(std::size_t qubits, std::size_t shots,
                              std::uint64_t seed,
                              const service::ServiceOptions& opts) {
  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(qubits)), opts);
  const RunResult r =
      svc.submit(RunRequest::gate(ghz_program(qubits), shots, seed)).get();
  EXPECT_TRUE(r.ok()) << r.status.to_string();
  return r.histogram;
}

TEST(BackendFailover, CrashLoopingBackendFailsOverByteIdentically) {
  // Acceptance scenario: a 3-backend pool with one backend crash-looping
  // completes a 10k-shot job with a histogram byte-identical to a
  // fault-free single-backend run; the faulty breaker reports open and
  // failovers were counted.
  const std::size_t kShots = 10'000;
  const std::uint64_t kSeed = 77;
  const service::ServiceOptions opts = small_shard_options();
  const Histogram clean = reference_histogram(4, kShots, kSeed, opts);

  service::QuantumService svc(make_gate_pool(3, 4), opts);
  auto plan = std::make_shared<FaultPlan>();
  plan->backend_faults = {{"b1", BackendFaultKind::kCrash}};
  RunRequest req = RunRequest::gate(ghz_program(4), kShots, kSeed);
  req.faults = plan;
  const RunResult r = svc.submit(std::move(req)).get();

  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.histogram.total(), kShots);
  EXPECT_EQ(r.histogram.counts(), clean.counts());
  EXPECT_GT(r.stats.failovers, 0u);
  EXPECT_GT(svc.metrics().counter("qs_backend_failovers_total").value(), 0u);
  EXPECT_EQ(svc.backends().breaker_state("b1"), BreakerState::Open);
  EXPECT_EQ(svc.backends().breaker_state("b0"), BreakerState::Closed);
  EXPECT_EQ(svc.backends().breaker_state("b2"), BreakerState::Closed);
}

TEST(BackendFailover, CorruptHistogramQuarantinesAndReroutes) {
  const std::size_t kShots = 2'048;
  const std::uint64_t kSeed = 5;
  const service::ServiceOptions opts = small_shard_options();
  const Histogram clean = reference_histogram(3, kShots, kSeed, opts);

  service::QuantumService svc(make_gate_pool(3, 3), opts);
  auto plan = std::make_shared<FaultPlan>();
  plan->backend_faults = {{"b2", BackendFaultKind::kCorruptHistogram}};
  RunRequest req = RunRequest::gate(ghz_program(3), kShots, kSeed);
  req.faults = plan;
  const RunResult r = svc.submit(std::move(req)).get();

  ASSERT_TRUE(r.ok()) << r.status.to_string();
  // The corrupted shard result never reached the merge: the merged
  // histogram is byte-identical to the fault-free run.
  EXPECT_EQ(r.histogram.counts(), clean.counts());
  EXPECT_GT(r.stats.failovers, 0u);
  // Silent corruption quarantines immediately (trip, not threshold).
  EXPECT_EQ(svc.backends().breaker_state("b2"), BreakerState::Open);
  EXPECT_GT(svc.metrics().counter("qs_backend_quarantines_total").value(),
            0u);
}

TEST(BackendFailover, WatchdogRescuesStuckShards) {
  const std::size_t kShots = 512;
  const std::uint64_t kSeed = 11;
  service::ServiceOptions opts = small_shard_options();
  opts.shard_time_budget = 20ms;  // watchdog: cancel and re-route
  const Histogram clean = reference_histogram(3, kShots, kSeed, opts);

  service::QuantumService svc(make_gate_pool(3, 3), opts);
  auto plan = std::make_shared<FaultPlan>();
  plan->backend_faults = {{"b0", BackendFaultKind::kStuckShard}};
  RunRequest req = RunRequest::gate(ghz_program(3), kShots, kSeed);
  req.faults = plan;
  const RunResult r = svc.submit(std::move(req)).get();

  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.histogram.counts(), clean.counts());
  EXPECT_GT(r.stats.failovers, 0u);
  // The job itself had no deadline: the watchdog, not kDeadlineExceeded,
  // recovered the stuck shards.
  EXPECT_EQ(r.status.code(), StatusCode::kOk);
}

TEST(BackendFailover, AllBackendsCrashLoopingFailsWithUnavailable) {
  service::ServiceOptions opts = small_shard_options();
  opts.max_shard_failovers = 2;
  service::QuantumService svc(make_gate_pool(2, 3), opts);
  auto plan = std::make_shared<FaultPlan>();
  plan->backend_faults = {{"b0", BackendFaultKind::kCrash},
                          {"b1", BackendFaultKind::kCrash}};
  RunRequest req = RunRequest::gate(ghz_program(3), 256, /*seed=*/3);
  req.faults = plan;
  const RunResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
}

TEST(BackendFailover, MixedDirectAndMicroArchPoolStaysByteIdentical) {
  // Kernel bit-identity makes the execution route output-invisible, so a
  // pool mixing Direct and MicroArch backends is a valid failover set.
  const std::size_t kShots = 1'024;
  const std::uint64_t kSeed = 9;
  const service::ServiceOptions opts = small_shard_options();
  const Histogram clean = reference_histogram(3, kShots, kSeed, opts);

  BackendPoolOptions pool_opts;
  pool_opts.breaker.open_cooldown = 10s;
  auto pool = std::make_shared<BackendPool>(pool_opts);
  ASSERT_TRUE(pool->register_gate("direct", make_gate(3)).ok());
  ASSERT_TRUE(
      pool->register_gate("uarch", make_gate(3, GatePath::MicroArch)).ok());
  service::QuantumService svc(pool, opts);
  const RunResult r =
      svc.submit(RunRequest::gate(ghz_program(3), kShots, kSeed)).get();
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.histogram.counts(), clean.counts());
}

// --------------------------------------------------- checkpoint/resume ----

TEST(Checkpoint, SerializeDeserializeRoundTrips) {
  service::JobCheckpoint cp;
  cp.fingerprint = 0xDEADBEEFULL;
  cp.shards = 4;
  cp.shard_done = {1, 0, 1, 0};
  cp.merged.add("010", 7);
  cp.merged.add("111", 3);
  cp.has_best = true;
  cp.best_energy = -2.625;
  cp.best_read = 12;
  cp.best_solution = {0, 1, 1};

  const StatusOr<service::JobCheckpoint> back =
      service::JobCheckpoint::deserialize(cp.serialize());
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->fingerprint, cp.fingerprint);
  EXPECT_EQ(back->shards, cp.shards);
  EXPECT_EQ(back->shard_done, cp.shard_done);
  EXPECT_EQ(back->merged.counts(), cp.merged.counts());
  EXPECT_TRUE(back->has_best);
  EXPECT_DOUBLE_EQ(back->best_energy, cp.best_energy);
  EXPECT_EQ(back->best_read, cp.best_read);
  EXPECT_EQ(back->best_solution, cp.best_solution);
  EXPECT_EQ(back->completed(), 2u);
}

TEST(Checkpoint, DeserializeRefusesTornOrMalformedSnapshots) {
  service::JobCheckpoint cp;
  cp.fingerprint = 1;
  cp.shards = 2;
  cp.shard_done = {1, 0};
  const std::string text = cp.serialize();

  // Torn write: drop the trailing "end" marker.
  const std::string torn = text.substr(0, text.rfind("end"));
  EXPECT_EQ(service::JobCheckpoint::deserialize(torn).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service::JobCheckpoint::deserialize("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service::JobCheckpoint::deserialize("qs-checkpoint v1\nbogus 1\n")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // done index out of range.
  EXPECT_EQ(service::JobCheckpoint::deserialize(
                "qs-checkpoint v1\nfingerprint 1\nshards 2\ndone 5\nend\n")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Checkpoint, FileStoreRoundTripsAndRefusesTornFiles) {
  const std::string dir = "qs_ckpt_test_dir";
  service::FileCheckpointStore store(dir);

  service::JobCheckpoint cp;
  cp.fingerprint = 42;
  cp.shards = 1;
  cp.shard_done = {1};
  cp.merged.add("00", 8);
  ASSERT_TRUE(store.save("job/alpha", cp).ok());

  const auto loaded = store.load("job/alpha");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->fingerprint, 42u);
  EXPECT_EQ(loaded->merged.counts(), cp.merged.counts());
  EXPECT_FALSE(store.load("job/other").has_value());

  // A torn file on disk is refused, not half-applied.
  {
    std::ofstream torn(store.path_for("job/alpha"),
                       std::ios::binary | std::ios::trunc);
    torn << "qs-checkpoint v1\nfingerprint 42\nshards 1\n";
  }
  EXPECT_FALSE(store.load("job/alpha").has_value());

  store.remove("job/alpha");
  EXPECT_FALSE(std::filesystem::exists(store.path_for("job/alpha")));
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, RestartResumesOnlyUnfinishedShardsByteIdentically) {
  // Acceptance scenario: kill a job mid-run (terminal shard failure after
  // four shards completed), restart the service on the same store, and
  // the resubmission re-runs only the unfinished shard — asserted through
  // the shard-execution counters — with the histogram of an uninterrupted
  // run.
  const std::size_t kShots = 320;
  const std::uint64_t kSeed = 21;
  service::ServiceOptions opts;
  opts.workers = 1;  // sequential shards: shards 0..3 finish, 4 fails
  opts.shard_shots = 64;
  opts.max_shard_retries = 1;
  opts.retry_backoff.initial = std::chrono::microseconds(1);
  const Histogram clean = reference_histogram(3, kShots, kSeed, opts);

  auto store = std::make_shared<service::InMemoryCheckpointStore>();
  opts.checkpoint_store = store;

  {
    service::QuantumService svc(
        GateAccelerator(compiler::Platform::perfect(3)), opts);
    auto plan = std::make_shared<FaultPlan>();
    plan->shard_faults = {{/*shard_index=*/4, /*failures=*/10}};
    RunRequest req = RunRequest::gate(ghz_program(3), kShots, kSeed);
    req.checkpoint_key = "resume-test";
    req.faults = plan;
    const RunResult r = svc.submit(std::move(req)).get();
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(r.stats.shards_executed, 4u);  // shard 4 never succeeded
  }  // service dies with the job checkpointed

  EXPECT_EQ(store->size(), 1u);  // failed job kept its snapshot

  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(3)), opts);
  RunRequest req = RunRequest::gate(ghz_program(3), kShots, kSeed);
  req.checkpoint_key = "resume-test";
  const RunResult r = svc.submit(std::move(req)).get();
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.stats.shards, 5u);
  EXPECT_EQ(r.stats.shards_resumed, 4u);
  EXPECT_EQ(r.stats.shards_executed, 1u);  // only the unfinished shard ran
  EXPECT_EQ(r.histogram.counts(), clean.counts());
  EXPECT_EQ(svc.metrics().counter("qs_shards_resumed_total").value(), 4u);
  EXPECT_EQ(store->size(), 0u);  // completed job removed its snapshot
}

TEST(Checkpoint, FingerprintMismatchStartsFresh) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.shard_shots = 64;
  opts.max_shard_retries = 0;
  opts.retry_backoff.initial = std::chrono::microseconds(1);
  auto store = std::make_shared<service::InMemoryCheckpointStore>();
  opts.checkpoint_store = store;

  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(3)), opts);

  auto plan = std::make_shared<FaultPlan>();
  plan->shard_faults = {{2, 10}};
  RunRequest failing = RunRequest::gate(ghz_program(3), 192, /*seed=*/1);
  failing.checkpoint_key = "fp-test";
  failing.faults = plan;
  EXPECT_FALSE(svc.submit(std::move(failing)).get().ok());
  EXPECT_EQ(store->size(), 1u);

  // Same key, different seed: the snapshot's fingerprint no longer
  // matches, so nothing may be resumed from it.
  RunRequest changed = RunRequest::gate(ghz_program(3), 192, /*seed=*/2);
  changed.checkpoint_key = "fp-test";
  const RunResult r = svc.submit(std::move(changed)).get();
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.stats.shards_resumed, 0u);
  EXPECT_EQ(r.stats.shards_executed, 3u);
}

TEST(Checkpoint, AnnealJobsResumeBestSolutionState) {
  anneal::Qubo qubo(3);
  qubo.add(0, 0, -2.0);
  qubo.add(1, 1, 1.0);
  qubo.add(2, 2, -2.0);
  qubo.add(0, 1, 1.5);
  qubo.add(1, 2, 1.5);

  service::ServiceOptions opts;
  opts.workers = 1;
  opts.shard_shots = 8;
  opts.max_shard_retries = 0;
  opts.retry_backoff.initial = std::chrono::microseconds(1);

  // Uninterrupted reference.
  RunResult clean;
  {
    service::QuantumService svc(
        GateAccelerator(compiler::Platform::perfect(2)),
        runtime::AnnealAccelerator(/*capacity=*/8), opts);
    clean = svc.submit(RunRequest::anneal(qubo, /*reads=*/32, /*seed=*/4))
                .get();
    ASSERT_TRUE(clean.ok());
  }

  auto store = std::make_shared<service::InMemoryCheckpointStore>();
  opts.checkpoint_store = store;
  {
    service::QuantumService svc(
        GateAccelerator(compiler::Platform::perfect(2)),
        runtime::AnnealAccelerator(/*capacity=*/8), opts);
    auto plan = std::make_shared<FaultPlan>();
    plan->shard_faults = {{3, 10}};
    RunRequest req = RunRequest::anneal(qubo, 32, /*seed=*/4);
    req.checkpoint_key = "anneal-resume";
    req.faults = plan;
    EXPECT_FALSE(svc.submit(std::move(req)).get().ok());
  }

  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(2)),
      runtime::AnnealAccelerator(/*capacity=*/8), opts);
  RunRequest req = RunRequest::anneal(qubo, 32, /*seed=*/4);
  req.checkpoint_key = "anneal-resume";
  const RunResult r = svc.submit(std::move(req)).get();
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.stats.shards_resumed, 3u);
  EXPECT_EQ(r.histogram.counts(), clean.histogram.counts());
  EXPECT_EQ(r.best_solution, clean.best_solution);
  EXPECT_DOUBLE_EQ(r.best_energy, clean.best_energy);
}

// ----------------------------------------- annealer cancel / deadline ----

TEST(AnnealCancel, SweepLoopObservesCancelledToken) {
  anneal::Qubo qubo(6);
  for (std::size_t i = 0; i < 6; ++i) qubo.add(i, i, i % 2 ? 1.0 : -1.0);
  const anneal::IsingModel ising = qubo.to_ising();
  Rng rng(7);

  CancelSource source;
  source.request_cancel();
  EXPECT_THROW(anneal::SimulatedAnnealer().solve(ising, rng, {},
                                                 source.token()),
               CancelledError);
  EXPECT_THROW(anneal::SimulatedQuantumAnnealer().solve(ising, rng, {},
                                                        source.token()),
               CancelledError);
  EXPECT_THROW(
      anneal::SimulatedAnnealer().solve_qubo(qubo, rng, source.token()),
      CancelledError);
}

TEST(AnnealCancel, SweepLoopObservesExpiredDeadline) {
  anneal::Qubo qubo(4);
  qubo.add(0, 1, -1.0);
  qubo.add(2, 3, -1.0);
  Rng rng(3);
  CancelSource source;
  const CancelToken expired =
      source.token(std::chrono::steady_clock::now() - 1ms);
  try {
    anneal::SimulatedQuantumAnnealer().solve_qubo(qubo, rng, expired);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_TRUE(e.deadline_expired());
  }
}

TEST(AnnealCancel, AcceleratorThreadsTokenThroughEmbeddingPath) {
  runtime::AnnealAccelerator acc(/*capacity=*/8);
  anneal::Qubo qubo(4);
  qubo.add(0, 1, -2.0);
  Rng rng(5);
  CancelSource source;
  source.request_cancel();
  EXPECT_THROW(acc.solve(qubo, rng, source.token()), CancelledError);
}

TEST(AnnealCancel, QuboJobHonoursDeadlineMidRun) {
  service::ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 8;
  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(2)),
      runtime::AnnealAccelerator(/*capacity=*/16), opts);

  anneal::Qubo qubo(8);
  for (std::size_t i = 0; i + 1 < 8; ++i) qubo.add(i, i + 1, -1.0);
  auto plan = std::make_shared<FaultPlan>();
  plan->shard_latency = std::chrono::microseconds(30'000);
  RunRequest req = RunRequest::anneal(qubo, /*reads=*/64, /*seed=*/2);
  req.deadline = 10ms;  // expires while shards stall
  req.faults = plan;
  const RunResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
}

// ------------------------------------------------- parser hardening ----

TEST(ParserHardening, MalformedCqasmReturnsInvalidArgument) {
  const StatusOr<qasm::Program> bad =
      qasm::Parser::parse_or_status("this is not cqasm at all");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("cQASM"), std::string::npos);

  const StatusOr<qasm::Program> good = qasm::Parser::parse_or_status(
      "version 1.0\nqubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure q[0]\n");
  ASSERT_TRUE(good.ok()) << good.status().to_string();
  EXPECT_EQ(good->qubit_count(), 2u);
}

TEST(ParserHardening, MalformedEqasmReturnsInvalidArgument) {
  const StatusOr<microarch::EqProgram> bad =
      microarch::parse_eqasm_or_status("definitely_not_an_opcode r0, r1");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("eQASM"), std::string::npos);
}

TEST(ParserHardening, RawSourceJobMapsParseFailureIntoResult) {
  service::ServiceOptions opts;
  opts.workers = 1;
  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(2)), opts);

  const RunResult bad =
      svc.submit(RunRequest::gate_source("qubits banana", 16)).get();
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);

  const RunResult good =
      svc.submit(RunRequest::gate_source(
                     "version 1.0\nqubits 2\nh q[0]\ncnot q[0], q[1]\n"
                     "measure q[0]\nmeasure q[1]\n",
                     64, /*seed=*/13))
          .get();
  ASSERT_TRUE(good.ok()) << good.status.to_string();
  EXPECT_EQ(good.histogram.total(), 64u);
}

TEST(ParserHardening, AcceleratorRunParsesRawSource) {
  const GateAccelerator acc(compiler::Platform::perfect(2));
  const RunResult bad = acc.run(RunRequest::gate_source("h q[0", 8));
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);

  const RunResult good = acc.run(RunRequest::gate_source(
      "version 1.0\nqubits 2\nh q[0]\ncnot q[0], q[1]\n"
      "measure q[0]\nmeasure q[1]\n",
      32, /*seed=*/6));
  ASSERT_TRUE(good.ok()) << good.status.to_string();
  EXPECT_EQ(good.histogram.total(), 32u);
}

}  // namespace
}  // namespace qs
