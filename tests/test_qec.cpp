// Unit tests for the QEC substrate: repetition code and the d=3 surface
// code — structure, decoding, Monte-Carlo rates and full-stack ESM
// circuits on the simulator.
#include <gtest/gtest.h>

#include "qec/repetition.h"
#include "qec/surface.h"
#include "sim/simulator.h"

namespace qs::qec {
namespace {

// ---------------------------------------------------------- Repetition ----

TEST(Repetition, ConstructionRules) {
  EXPECT_NO_THROW(RepetitionCode(3));
  EXPECT_NO_THROW(RepetitionCode(7));
  EXPECT_THROW(RepetitionCode(2), std::invalid_argument);
  EXPECT_THROW(RepetitionCode(4), std::invalid_argument);
  EXPECT_THROW(RepetitionCode(1), std::invalid_argument);
  const RepetitionCode code(5);
  EXPECT_EQ(code.data_qubits(), 5u);
  EXPECT_EQ(code.ancilla_qubits(), 4u);
  EXPECT_EQ(code.total_qubits(), 9u);
}

TEST(Repetition, MajorityDecode) {
  const RepetitionCode code(3);
  EXPECT_EQ(code.majority_decode({0, 0, 0}), 0);
  EXPECT_EQ(code.majority_decode({1, 0, 0}), 0);
  EXPECT_EQ(code.majority_decode({1, 1, 0}), 1);
  EXPECT_EQ(code.majority_decode({1, 1, 1}), 1);
  EXPECT_THROW(code.majority_decode({1}), std::invalid_argument);
}

TEST(Repetition, SyndromeDecoderSingleErrors) {
  const RepetitionCode code(5);
  // Error on qubit 0: syndrome fires only between 0 and 1.
  EXPECT_EQ(code.decode_syndrome({1, 0, 0, 0}),
            (std::vector<std::size_t>{0}));
  // Error on qubit 2: syndromes 1 and 2 fire.
  EXPECT_EQ(code.decode_syndrome({0, 1, 1, 0}),
            (std::vector<std::size_t>{2}));
  // Error on last qubit.
  EXPECT_EQ(code.decode_syndrome({0, 0, 0, 1}),
            (std::vector<std::size_t>{4}));
  // No error.
  EXPECT_TRUE(code.decode_syndrome({0, 0, 0, 0}).empty());
}

TEST(Repetition, SyndromeDecoderPicksMinimumWeight) {
  const RepetitionCode code(5);
  // Two adjacent flips {1,2}: syndrome 0 and 2 fire.
  const auto correction = code.decode_syndrome({1, 0, 1, 0});
  EXPECT_EQ(correction, (std::vector<std::size_t>{1, 2}));
}

TEST(Repetition, AnalyticRateMatchesFormulaD3) {
  const RepetitionCode code(3);
  const double p = 0.1;
  // 3 p^2 (1-p) + p^3.
  EXPECT_NEAR(code.analytic_logical_error_rate(p),
              3 * p * p * (1 - p) + p * p * p, 1e-12);
}

TEST(Repetition, MonteCarloMatchesAnalyticOneRound) {
  const RepetitionCode code(3);
  Rng rng(7);
  const double p = 0.08;
  const double mc = code.monte_carlo_logical_error_rate(p, 1, 40000, rng);
  EXPECT_NEAR(mc, code.analytic_logical_error_rate(p), 0.01);
}

TEST(Repetition, LargerDistanceSuppressesBelowThreshold) {
  Rng rng(9);
  const double p = 0.05;
  const double d3 =
      RepetitionCode(3).monte_carlo_logical_error_rate(p, 3, 20000, rng);
  const double d7 =
      RepetitionCode(7).monte_carlo_logical_error_rate(p, 3, 20000, rng);
  EXPECT_LT(d7, d3);
}

TEST(Repetition, AboveThresholdLargerDistanceHurts) {
  // Code-capacity threshold for per-round corrected repetition is 0.5;
  // far above any sensible operating point p=0.45 the code stops helping.
  Rng rng(11);
  const double p = 0.45;
  const double d3 =
      RepetitionCode(3).monte_carlo_logical_error_rate(p, 1, 20000, rng);
  const double d7 =
      RepetitionCode(7).monte_carlo_logical_error_rate(p, 1, 20000, rng);
  EXPECT_GT(d7, 0.8 * d3);  // no suppression anymore
}

TEST(Repetition, MeasurementErrorsDegradeDecoding) {
  Rng rng(13);
  const double p = 0.05;
  const RepetitionCode code(5);
  const double clean =
      code.monte_carlo_logical_error_rate(p, 5, 20000, rng);
  const double noisy =
      code.monte_carlo_with_measurement_errors(p, 0.2, 5, 20000, rng);
  EXPECT_GT(noisy, clean);
}

TEST(Repetition, MemoryProgramOnSimulatorDetectsInjectedError) {
  // Full-stack: run the ESM circuit on the QX simulator with a manually
  // injected X error; the syndrome (ancilla measurements) must fire.
  const RepetitionCode code(3);
  qasm::Program program = code.memory_program(1);
  // Inject X on data qubit 1 before the ESM round (circuit index 2).
  qasm::Circuit inject("inject");
  inject.add(qasm::Instruction(qasm::GateKind::X, {1}));
  auto& circuits = program.circuits();
  circuits.insert(circuits.begin() + 2, inject);

  sim::Simulator sim(code.total_qubits());
  const auto bits = sim.run_once(program);
  // Ancilla 3 measures q0 q1 parity -> 1; ancilla 4 measures q1 q2 -> 1.
  EXPECT_EQ(bits[3], 1);
  EXPECT_EQ(bits[4], 1);
  // Data reads back the injected error.
  EXPECT_EQ(bits[0], 0);
  EXPECT_EQ(bits[1], 1);
  EXPECT_EQ(bits[2], 0);
}

TEST(Repetition, MemoryProgramCleanRunSilentSyndrome) {
  const RepetitionCode code(5);
  sim::Simulator sim(code.total_qubits());
  const auto bits = sim.run_once(code.memory_program(2));
  for (std::size_t a = code.data_qubits(); a < code.total_qubits(); ++a)
    EXPECT_EQ(bits[a], 0);
}

// -------------------------------------------------------- Surface code ----

TEST(Surface17, StructureIsValid) {
  const SurfaceCode17 code;
  EXPECT_NO_THROW(code.verify_structure());
  EXPECT_EQ(code.z_stabilizers().size(), 4u);
  EXPECT_EQ(code.x_stabilizers().size(), 4u);
}

TEST(Surface17, SingleErrorsHaveDistinctCorrectableSyndromes) {
  const SurfaceCode17 code;
  for (unsigned q = 0; q < SurfaceCode17::kDataQubits; ++q) {
    const unsigned err = 1u << q;
    const unsigned syn = code.syndrome_of_x_errors(err);
    const unsigned correction = code.decode_z_syndrome(syn);
    // Residual after correction must not be a logical error.
    EXPECT_FALSE(code.is_logical_x_error(err ^ correction)) << "qubit " << q;
  }
}

TEST(Surface17, TrivialSyndromeNoCorrection) {
  const SurfaceCode17 code;
  EXPECT_EQ(code.decode_z_syndrome(0), 0u);
  EXPECT_EQ(code.syndrome_of_x_errors(0), 0u);
}

TEST(Surface17, LogicalOperatorCommutesWithStabilizers) {
  const SurfaceCode17 code;
  // The logical X operator itself has trivial syndrome (undetectable).
  unsigned logical_mask = 0;
  for (std::size_t q : code.logical_x()) logical_mask |= 1u << q;
  EXPECT_EQ(code.syndrome_of_x_errors(logical_mask), 0u);
  EXPECT_TRUE(code.is_logical_x_error(logical_mask));
}

TEST(Surface17, MonteCarloSuppressionBelowPseudoThreshold) {
  const SurfaceCode17 code;
  Rng rng(17);
  const double low = code.monte_carlo_logical_error_rate(0.02, 40000, rng);
  const double high = code.monte_carlo_logical_error_rate(0.30, 40000, rng);
  EXPECT_LT(low, 0.02);   // suppressed below physical
  EXPECT_GT(high, 0.25);  // above threshold: no protection
}

TEST(Surface17, MonteCarloScalesQuadratically) {
  // d=3 corrects all single errors: p_L ~ c p^2 at small p, so
  // p_L(2p)/p_L(p) ~ 4.
  const SurfaceCode17 code;
  Rng rng(19);
  const double p1 = code.monte_carlo_logical_error_rate(0.01, 400000, rng);
  const double p2 = code.monte_carlo_logical_error_rate(0.02, 400000, rng);
  EXPECT_GT(p1, 0.0);
  EXPECT_NEAR(p2 / p1, 4.0, 1.5);
}

TEST(Surface17, EsmCircuitDetectsInjectedXError) {
  const SurfaceCode17 code;
  // Inject X on data qubit 4 (centre): both bulk Z stabilizers touch it.
  const qasm::Program program = code.detection_program(4);
  sim::Simulator sim(SurfaceCode17::kTotalQubits);
  const auto bits = sim.run_once(program);
  // Z-ancillas are qubits 9..12 in stabilizer order:
  // {0,1,3,4} and {4,5,7,8} include qubit 4 -> fire; {2,5}, {3,6} silent.
  EXPECT_EQ(bits[9], 1);
  EXPECT_EQ(bits[10], 1);
  EXPECT_EQ(bits[11], 0);
  EXPECT_EQ(bits[12], 0);
}

TEST(Surface17, EsmCircuitSilentOnCleanState) {
  const SurfaceCode17 code;
  const qasm::Program program = code.detection_program();
  sim::Simulator sim(SurfaceCode17::kTotalQubits, sim::QubitModel::perfect(),
                     23);
  const auto bits = sim.run_once(program);
  for (int a = 9; a <= 12; ++a) EXPECT_EQ(bits[a], 0) << "ancilla " << a;
  // X-stabilizer ancillas on |0..0>: |0..0> is a +1 eigenstate of all
  // Z stabilizers but not of X stabilizers individually; however the ESM
  // projection is random per run — only Z ancillas are deterministic here.
}

TEST(Surface17, DecodeTableIsMinimumWeight) {
  const SurfaceCode17 code;
  // Every syndrome's correction must actually produce that syndrome.
  for (unsigned syn = 0; syn < 16; ++syn) {
    const unsigned corr = code.decode_z_syndrome(syn);
    EXPECT_EQ(code.syndrome_of_x_errors(corr), syn) << "syndrome " << syn;
  }
}

}  // namespace
}  // namespace qs::qec
