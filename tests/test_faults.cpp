// Fault-injection and robustness tests: the deterministic FaultPlan,
// retry/backoff policy, cooperative cancellation primitives, the typed
// Status surface, and the end-to-end behaviour of GateAccelerator::run and
// QuantumService under injected compile failures, transient shard faults,
// slow shards racing deadlines, and concurrent cancellation. Everything
// here is deterministic — no real infrastructure faults required — and the
// concurrency tests are meant to run under TSan/ASan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "anneal/qubo.h"
#include "common/backoff.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "compiler/algorithms.h"
#include "compiler/kernel.h"
#include "runtime/accelerator.h"
#include "service/service.h"
#include "sim/simulator.h"
#include "sim/statevector.h"
#include "sim/trajectory_analysis.h"

namespace qs {
namespace {

using namespace std::chrono_literals;
using runtime::FaultPlan;
using runtime::GateAccelerator;
using runtime::RunRequest;
using runtime::RunResult;

qasm::Program ghz_program(std::size_t n) {
  compiler::Program p("ghz", n);
  p.add_kernel("main").ghz(n).measure_all();
  return p.to_qasm();
}

// ----------------------------------------------------------- FaultPlan ----

TEST(FaultPlan, FailuresForDefaultsToZero) {
  FaultPlan plan;
  EXPECT_EQ(plan.failures_for(0), 0u);
  EXPECT_EQ(plan.failures_for(17), 0u);
}

TEST(FaultPlan, FailuresForMatchesConfiguredShards) {
  FaultPlan plan;
  plan.shard_faults = {{/*shard_index=*/0, /*failures=*/2},
                       {/*shard_index=*/3, /*failures=*/1}};
  EXPECT_EQ(plan.failures_for(0), 2u);
  EXPECT_EQ(plan.failures_for(1), 0u);
  EXPECT_EQ(plan.failures_for(3), 1u);
}

TEST(FaultPlan, BackendFaultMatchesNameAndKind) {
  FaultPlan plan;
  plan.backend_faults = {{"b1", runtime::BackendFaultKind::kCrash},
                         {"b2", runtime::BackendFaultKind::kCorruptHistogram}};
  EXPECT_TRUE(plan.backend_fault("b1", runtime::BackendFaultKind::kCrash));
  EXPECT_FALSE(
      plan.backend_fault("b1", runtime::BackendFaultKind::kCorruptHistogram));
  EXPECT_TRUE(
      plan.backend_fault("b2", runtime::BackendFaultKind::kCorruptHistogram));
  EXPECT_FALSE(plan.backend_fault("b3", runtime::BackendFaultKind::kCrash));
  EXPECT_FALSE(
      FaultPlan{}.backend_fault("b1", runtime::BackendFaultKind::kCrash));
}

TEST(FaultPlan, BackendFaultKindNames) {
  EXPECT_STREQ(runtime::to_string(runtime::BackendFaultKind::kCrash),
               "backend_crash");
  EXPECT_STREQ(
      runtime::to_string(runtime::BackendFaultKind::kCorruptHistogram),
      "corrupt_histogram");
  EXPECT_STREQ(runtime::to_string(runtime::BackendFaultKind::kStuckShard),
               "stuck_shard");
}

// ------------------------------------------------------- BackoffPolicy ----

TEST(BackoffPolicy, GrowsExponentiallyAndCaps) {
  BackoffPolicy policy{std::chrono::microseconds(100), 2.0,
                       std::chrono::microseconds(450)};
  EXPECT_EQ(policy.delay(0), std::chrono::microseconds(100));
  EXPECT_EQ(policy.delay(1), std::chrono::microseconds(200));
  EXPECT_EQ(policy.delay(2), std::chrono::microseconds(400));
  EXPECT_EQ(policy.delay(3), std::chrono::microseconds(450));  // capped
  EXPECT_EQ(policy.delay(50), std::chrono::microseconds(450));
}

TEST(BackoffPolicy, DeterministicAcrossCalls) {
  BackoffPolicy policy;
  for (std::size_t attempt = 0; attempt < 8; ++attempt)
    EXPECT_EQ(policy.delay(attempt), policy.delay(attempt));
}

TEST(BackoffPolicy, NonPositiveInitialMeansNoDelay) {
  BackoffPolicy policy{std::chrono::microseconds(0), 2.0,
                       std::chrono::microseconds(1000)};
  EXPECT_EQ(policy.delay(0), std::chrono::microseconds(0));
  EXPECT_EQ(policy.delay(5), std::chrono::microseconds(0));
}

// -------------------------------------------------------- Cancellation ----

TEST(Cancellation, DefaultTokenNeverStops) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_NO_THROW(throw_if_stopped(token));
}

TEST(Cancellation, RequestCancelReachesEveryToken) {
  CancelSource source;
  const CancelToken a = source.token();
  const CancelToken b = source.token();
  EXPECT_FALSE(a.stop_requested());
  source.request_cancel();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  try {
    throw_if_stopped(a);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_FALSE(e.deadline_expired());
  }
}

TEST(Cancellation, DeadlineTokenExpires) {
  CancelSource source;
  const CancelToken token =
      source.token(std::chrono::steady_clock::now() - 1ms);  // already past
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.deadline_expired());
  try {
    throw_if_stopped(token);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_TRUE(e.deadline_expired());
  }
}

TEST(Cancellation, CancellationWinsOverExpiredDeadline) {
  // A job that is both cancelled and past its deadline reports kCancelled:
  // the explicit client action dominates.
  CancelSource source;
  const CancelToken token =
      source.token(std::chrono::steady_clock::now() - 1ms);
  source.request_cancel();
  try {
    throw_if_stopped(token);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_FALSE(e.deadline_expired());
  }
}

// ----------------------------------------- sampling-path cancellation ----
// The sampling fast path replaces the per-shot trajectory loop, which was
// where cancellation and deadlines were observed. These regressions pin
// the replacement check points: before the single evolution, between
// reduction chunks of the distribution build, and every ~4096 draws of
// the sampling loop.

TEST(SamplingCancellation, SamplableRunObservesPreCancelledToken) {
  CancelSource source;
  source.request_cancel();
  sim::SimOptions opts;
  opts.cancel = source.token();
  sim::Simulator simulator(3, sim::QubitModel::perfect(), /*seed=*/1,
                           sim::GateDurations{}, opts);
  compiler::Program p("ghz", 3);
  p.add_kernel("main").ghz(3).measure_all();
  EXPECT_THROW(simulator.run(p.to_qasm(), 1024), CancelledError);
}

TEST(SamplingCancellation, SampleHistogramChecksTokenWhileDrawing) {
  sim::FinalDistribution dist;
  dist.qubit_count = 1;
  dist.measured_mask = 1;
  dist.cum = {0.5, 1.0};
  CancelSource source;
  source.request_cancel();
  EXPECT_THROW(
      sim::sample_histogram(dist, /*shots=*/10000, /*seed=*/1, source.token()),
      CancelledError);
  // The first check fires at draw 0, so even tiny jobs stop promptly.
  EXPECT_THROW(
      sim::sample_histogram(dist, /*shots=*/1, /*seed=*/1, source.token()),
      CancelledError);
}

TEST(SamplingCancellation, DistributionBuildChecksBetweenChunks) {
  // 17 qubits = two reduction chunks: the sequential build checks the
  // token before each chunk, the parallel build between passes.
  sim::StateVector sv(17);
  CancelSource source;
  source.request_cancel();
  EXPECT_THROW(sv.cumulative_distribution(source.token()), CancelledError);

  ThreadPool pool(2);
  sim::StateVector par(17);
  par.set_kernel_policy({&pool, /*min_parallel_qubits=*/0});
  EXPECT_THROW(par.cumulative_distribution(source.token()), CancelledError);
}

TEST(SamplingCancellation, ServiceDeadlineStillFiresOnSampledJobs) {
  // An already-expired deadline must stop a sampled job exactly like it
  // stopped a trajectory job (rejected on dequeue, kDeadlineExceeded).
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(3)), opts);
  RunRequest req = RunRequest::gate(ghz_program(3), 4096, /*seed=*/1);
  req.deadline = std::chrono::microseconds(1);
  auto handle = svc.submit(std::move(req));
  std::this_thread::sleep_for(5ms);
  svc.resume();
  const RunResult r = handle.get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
}

// -------------------------------------------------------------- Status ----

TEST(Status, DefaultIsOkAndFactoriesCarryCodes) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);

  const Status cancelled = Status::Cancelled("stop");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.message(), "stop");
  EXPECT_EQ(cancelled.to_string(), "CANCELLED: stop");

  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("full").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("down").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_NE(Status::Internal("a"), Status::Unavailable("a"));
}

TEST(StatusOr, HoldsValueOrError) {
  StatusOr<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);

  StatusOr<int> error(Status::NotFound("missing"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(error.value(), std::logic_error);
}

// ------------------------------------------- GateAccelerator::run -------

TEST(GateAcceleratorRun, MatchesDirectExecutionBitForBit) {
  const GateAccelerator acc(compiler::Platform::perfect(4));
  RunRequest req = RunRequest::gate(ghz_program(4), 128, /*seed=*/5);
  const RunResult r = acc.run(req);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.histogram.total(), 128u);
  EXPECT_EQ(r.stats.shards, 1u);
  EXPECT_EQ(r.stats.retries, 0u);
  EXPECT_GT(r.stats.run_us, 0.0);

  // Same seed through the low-level path: bit-identical.
  const auto compiled = acc.compile_const(ghz_program(4));
  EXPECT_EQ(r.histogram.counts(),
            acc.run_compiled(compiled, 128, 5).counts());
}

TEST(GateAcceleratorRun, InvalidRequestsResolveNotThrow) {
  const GateAccelerator acc(compiler::Platform::perfect(3));
  EXPECT_EQ(acc.run(RunRequest{}).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(acc.run(RunRequest::gate(ghz_program(3), 0)).status.code(),
            StatusCode::kInvalidArgument);
  const RunResult anneal = acc.run(RunRequest::anneal(anneal::Qubo(2), 8));
  EXPECT_EQ(anneal.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(anneal.status.message().find("annealing"), std::string::npos);
}

TEST(GateAcceleratorRun, CompileFailureIsInvalidArgument) {
  // 5-qubit program on a 3-qubit platform: fails inside the compiler.
  const GateAccelerator acc(compiler::Platform::perfect(3));
  const RunResult r = acc.run(RunRequest::gate(ghz_program(5), 16));
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.histogram.total(), 0u);
}

TEST(GateAcceleratorRun, InjectedCompileFailure) {
  const GateAccelerator acc(compiler::Platform::perfect(3));
  auto plan = std::make_shared<FaultPlan>();
  plan->fail_compile = true;
  RunRequest req = RunRequest::gate(ghz_program(3), 16);
  req.faults = plan;
  const RunResult r = acc.run(req);
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  EXPECT_NE(r.status.message().find("injected compile failure"),
            std::string::npos);
}

TEST(GateAcceleratorRun, DeadlineExpiresMidRun) {
  const GateAccelerator acc(compiler::Platform::perfect(3));
  auto plan = std::make_shared<FaultPlan>();
  plan->shard_latency = std::chrono::microseconds(30'000);
  RunRequest req = RunRequest::gate(ghz_program(3), 64);
  req.deadline = 10ms;  // expires during the injected 30ms stall
  req.faults = plan;
  const RunResult r = acc.run(req);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.histogram.total(), 0u);
}

TEST(GateAcceleratorRun, GenerousDeadlineDoesNotTrigger) {
  const GateAccelerator acc(compiler::Platform::perfect(3));
  RunRequest req = RunRequest::gate(ghz_program(3), 32, /*seed=*/9);
  req.deadline = 10s;
  const RunResult r = acc.run(req);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.histogram.total(), 32u);
}

TEST(GateAcceleratorRun, SimThreadBudgetDoesNotChangeOutput) {
  const GateAccelerator acc(compiler::Platform::perfect(6));
  RunRequest scalar = RunRequest::gate(ghz_program(6), 64, /*seed=*/21);
  RunRequest threaded = scalar;
  threaded.sim_threads = 4;
  EXPECT_EQ(acc.run(scalar).histogram.counts(),
            acc.run(threaded).histogram.counts());
}

// ----------------------------------- Service robustness under faults ----

TEST(ServiceFaults, MultiShardFaultsRetryAndStayDeterministic) {
  service::ServiceOptions opts;
  opts.workers = 4;
  opts.shard_shots = 32;
  opts.max_shard_retries = 2;
  opts.retry_backoff.initial = std::chrono::microseconds(1);

  auto run_with = [&](std::shared_ptr<const FaultPlan> plan) {
    service::QuantumService svc(
        GateAccelerator(compiler::Platform::perfect(5)), opts);
    RunRequest req = RunRequest::gate(ghz_program(5), 160, /*seed=*/31);
    req.faults = std::move(plan);
    return svc.submit(std::move(req)).get();
  };

  const RunResult clean = run_with(nullptr);
  ASSERT_TRUE(clean.ok());

  auto plan = std::make_shared<FaultPlan>();
  plan->shard_faults = {{0, 1}, {2, 2}, {4, 1}};  // 4 retries across 3 shards
  const RunResult faulty = run_with(plan);
  ASSERT_TRUE(faulty.ok()) << faulty.status.to_string();
  EXPECT_EQ(faulty.stats.retries, 4u);
  EXPECT_EQ(faulty.histogram.counts(), clean.histogram.counts());
}

TEST(ServiceFaults, AnnealShardRetriesNeverDoubleCountReads) {
  anneal::Qubo qubo(3);
  qubo.add(0, 0, -2.0);
  qubo.add(1, 1, 1.0);
  qubo.add(2, 2, -2.0);
  qubo.add(0, 1, 1.5);
  qubo.add(1, 2, 1.5);

  service::ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 8;
  opts.retry_backoff.initial = std::chrono::microseconds(1);

  auto run_with = [&](std::shared_ptr<const FaultPlan> plan) {
    service::QuantumService svc(
        GateAccelerator(compiler::Platform::perfect(2)),
        runtime::AnnealAccelerator(/*capacity=*/8), opts);
    RunRequest req = RunRequest::anneal(qubo, /*reads=*/40, /*seed=*/3);
    req.faults = std::move(plan);
    return svc.submit(std::move(req)).get();
  };

  const RunResult clean = run_with(nullptr);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.histogram.total(), 40u);

  auto plan = std::make_shared<FaultPlan>();
  plan->shard_faults = {{1, 2}};
  const RunResult faulty = run_with(plan);
  ASSERT_TRUE(faulty.ok()) << faulty.status.to_string();
  EXPECT_EQ(faulty.stats.retries, 2u);
  EXPECT_EQ(faulty.histogram.total(), 40u);  // no reads double-counted
  EXPECT_EQ(faulty.histogram.counts(), clean.histogram.counts());
  EXPECT_EQ(faulty.best_solution, clean.best_solution);
  EXPECT_DOUBLE_EQ(faulty.best_energy, clean.best_energy);
}

TEST(ServiceFaults, RetriesCompleteWithinGenerousDeadline) {
  service::ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 32;
  opts.retry_backoff.initial = std::chrono::microseconds(1);
  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(4)), opts);

  auto plan = std::make_shared<FaultPlan>();
  plan->shard_faults = {{1, 2}};
  RunRequest req = RunRequest::gate(ghz_program(4), 128, /*seed=*/8);
  req.deadline = 30s;  // generous: retries must not be mistaken for expiry
  req.faults = plan;
  const RunResult r = svc.submit(std::move(req)).get();
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.stats.retries, 2u);
  EXPECT_EQ(r.histogram.total(), 128u);
}

TEST(ServiceFaults, FaultyShardDoesNotPoisonOtherJobs) {
  // A job that exhausts its retries fails alone; jobs sharing the worker
  // pool before and after it complete normally.
  service::ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 32;
  opts.max_shard_retries = 1;
  opts.retry_backoff.initial = std::chrono::microseconds(1);
  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(4)), opts);
  const qasm::Program prog = ghz_program(4);

  auto plan = std::make_shared<FaultPlan>();
  plan->shard_faults = {{0, 10}};
  RunRequest doomed = RunRequest::gate(prog, 64);
  doomed.faults = plan;

  service::JobHandle ok_before = svc.submit(RunRequest::gate(prog, 64, 2));
  service::JobHandle failed = svc.submit(std::move(doomed));
  service::JobHandle ok_after = svc.submit(RunRequest::gate(prog, 64, 3));

  EXPECT_EQ(failed.get().status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(ok_before.get().ok());
  EXPECT_TRUE(ok_after.get().ok());
  EXPECT_EQ(svc.metrics().counter("qs_jobs_completed_total").value(), 2u);
  EXPECT_EQ(svc.metrics().counter("qs_jobs_failed_total").value(), 1u);
}

TEST(ServiceFaults, ConcurrentCancellationIsRaceFreeAndNeverHangs) {
  // Stress the cancel path under TSan: 16 slow jobs, half cancelled from a
  // second thread while they run. Every handle must resolve (no hang), to
  // either kOk or kCancelled, and the terminal metrics must account for
  // every job exactly once.
  service::ServiceOptions opts;
  opts.workers = 4;
  opts.shard_shots = 8;
  service::QuantumService svc(
      GateAccelerator(compiler::Platform::perfect(3)), opts);
  const qasm::Program prog = ghz_program(3);

  auto plan = std::make_shared<FaultPlan>();
  plan->shard_latency = std::chrono::microseconds(2'000);

  constexpr std::size_t kJobs = 16;
  std::vector<service::JobHandle> handles;
  for (std::size_t i = 0; i < kJobs; ++i) {
    RunRequest req = RunRequest::gate(prog, 32, /*seed=*/i + 1);
    req.faults = plan;
    handles.push_back(svc.submit(std::move(req)));
  }

  std::thread canceller([&handles] {
    for (std::size_t i = 0; i < handles.size(); i += 2) {
      handles[i].cancel();
      std::this_thread::sleep_for(1ms);
    }
  });
  canceller.join();

  std::size_t ok = 0, cancelled = 0;
  for (auto& h : handles) {
    const RunResult r = h.get();  // must not hang
    if (r.ok())
      ++ok;
    else {
      ASSERT_EQ(r.status.code(), StatusCode::kCancelled)
          << r.status.to_string();
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, kJobs);
  EXPECT_GE(cancelled, 1u);  // the first cancel lands before its job ends
  EXPECT_EQ(svc.metrics().counter("qs_jobs_completed_total").value(), ok);
  EXPECT_EQ(svc.metrics().counter("qs_jobs_cancelled_total").value(),
            cancelled);
}

TEST(ServiceFaults, ShutdownWithInflightSlowJobsCompletesThem) {
  // Destruction while slow faulted jobs are in flight must drain, not
  // hang and not drop promises (a dropped promise would surface as
  // broken_promise in get()).
  auto plan = std::make_shared<FaultPlan>();
  plan->shard_latency = std::chrono::microseconds(5'000);
  std::vector<service::JobHandle> handles;
  {
    service::ServiceOptions opts;
    opts.workers = 2;
    opts.shard_shots = 16;
    service::QuantumService svc(
        GateAccelerator(compiler::Platform::perfect(3)), opts);
    for (int i = 0; i < 4; ++i) {
      RunRequest req = RunRequest::gate(ghz_program(3), 32, i + 1);
      req.faults = plan;
      handles.push_back(svc.submit(std::move(req)));
    }
  }  // ~QuantumService: shutdown + drain
  for (auto& h : handles) {
    const RunResult r = h.get();
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    EXPECT_EQ(r.histogram.total(), 32u);
  }
}

}  // namespace
}  // namespace qs
