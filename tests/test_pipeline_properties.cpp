// End-to-end pipeline properties: whole-stack equivalences that compose
// multiple passes (decompose + optimise + map + schedule + assemble) and
// spectral checks of the algorithm builders.
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.h"
#include "microarch/assembler.h"
#include "microarch/eqasm_parser.h"
#include "microarch/executor.h"
#include "sim/gates.h"
#include "sim/simulator.h"

namespace qs {
namespace {

// ------------------------------------------- full pipeline equivalence ----

class FullPipelineP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FullPipelineP, CompiledMappedCircuitMatchesOriginal) {
  Rng rng(GetParam() * 6151 + 11);
  const std::size_t n = 6;
  compiler::Program p("pipe", n);
  auto& k = p.add_kernel("main");
  for (QubitIndex q = 0; q < n; ++q) k.ry(q, rng.uniform(0, 2 * kPi));
  for (int g = 0; g < 12; ++g) {
    const QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(n));
    QubitIndex b = a;
    while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(n));
    switch (rng.uniform_int(3)) {
      case 0: k.cnot(a, b); break;
      case 1: k.cr(a, b, rng.uniform(-2, 2)); break;
      default: k.t(a); break;
    }
  }

  // Compile with the full pipeline (decompose to transmon natives,
  // optimise, route on a 2x3 grid, schedule).
  compiler::Platform platform = compiler::Platform::perfect_grid(2, 3);
  platform.primitive_gates =
      compiler::Platform::superconducting17().primitive_gates;
  compiler::Compiler compiler(platform);
  compiler::CompileOptions opts;
  opts.map = true;
  const compiler::CompileResult r = compiler.compile(p, opts);

  sim::Simulator direct(n, sim::QubitModel::perfect(), 1);
  direct.run_once(p.to_qasm());
  sim::Simulator compiled(n, sim::QubitModel::perfect(), 1);
  compiled.run_once(r.program);

  // Undo the final logical->physical permutation.
  sim::StateVector expect(n);
  expect.set_amplitude(0, cplx(0, 0));
  for (StateIndex basis = 0; basis < (StateIndex{1} << n); ++basis) {
    StateIndex phys = 0;
    for (QubitIndex l = 0; l < n; ++l)
      if (basis & (StateIndex{1} << l))
        phys |= StateIndex{1} << r.map_stats.final_map[l];
    expect.set_amplitude(phys, direct.state().amplitude(basis));
  }
  EXPECT_NEAR(compiled.state().fidelity(expect), 1.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullPipelineP,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------- QFT spectral check ----

class QftSpectralP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QftSpectralP, MatchesDiscreteFourierTransform) {
  const std::size_t n = GetParam();
  const std::size_t dim = std::size_t{1} << n;
  // QFT of basis state |j> must be (1/sqrt(D)) sum_k w^{jk} |k> where the
  // bit order follows Kernel::qft's first-listed-qubit-is-MSB convention.
  Rng rng(n);
  const std::size_t j = rng.uniform_int(dim);

  compiler::Program p("qft", n);
  auto& k = p.add_kernel("main");
  std::vector<QubitIndex> line(n);
  // First-listed qubit = MSB of j: use qubit 0 as MSB.
  for (std::size_t q = 0; q < n; ++q) line[q] = static_cast<QubitIndex>(q);
  for (std::size_t bit = 0; bit < n; ++bit)
    if ((j >> (n - 1 - bit)) & 1) k.x(static_cast<QubitIndex>(bit));
  k.qft(line);

  sim::Simulator s(n);
  s.run_once(p.to_qasm());

  for (std::size_t out = 0; out < dim; ++out) {
    // basis index: qubit 0 (MSB of the integer) is the LSB of the
    // state-vector index, so translate bit order.
    StateIndex basis = 0;
    for (std::size_t bit = 0; bit < n; ++bit)
      if ((out >> (n - 1 - bit)) & 1) basis |= StateIndex{1} << bit;
    const double phase =
        2.0 * kPi * static_cast<double>(j) * static_cast<double>(out) /
        static_cast<double>(dim);
    const cplx expected =
        cplx(std::cos(phase), std::sin(phase)) / std::sqrt(double(dim));
    EXPECT_NEAR(std::abs(s.state().amplitude(basis) - expected), 0.0, 1e-9)
        << "n=" << n << " j=" << j << " k=" << out;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QftSpectralP, ::testing::Values(2, 3, 4, 5));

// ------------------------------------------ eQASM round-trip properties ----

class EqasmRoundTripP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EqasmRoundTripP, TextFormExecutesIdentically) {
  Rng rng(GetParam() * 911 + 3);
  const std::size_t n = 4;
  compiler::Program p("rt", n);
  auto& k = p.add_kernel("main");
  for (int g = 0; g < 25; ++g) {
    const QubitIndex a = static_cast<QubitIndex>(rng.uniform_int(n));
    QubitIndex b = a;
    while (b == a) b = static_cast<QubitIndex>(rng.uniform_int(n));
    switch (rng.uniform_int(4)) {
      case 0: k.x90(a); break;
      case 1: k.rz(a, rng.uniform(-3, 3)); break;
      case 2: k.cz(a, b); break;
      default: k.y90(a); break;
    }
  }
  k.measure_all();

  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  compiler::Compiler compiler(platform);
  const auto compiled = compiler.compile(p);
  microarch::Assembler assembler(platform);
  const microarch::EqProgram eq = assembler.assemble(compiled.program);
  const microarch::EqProgram reparsed =
      microarch::parse_eqasm(eq.to_string());

  microarch::Executor a_exec(platform, 42);
  microarch::Executor b_exec(platform, 42);
  const Histogram ha = a_exec.run_shots(eq, 60);
  const Histogram hb = b_exec.run_shots(reparsed, 60);
  EXPECT_EQ(ha.counts(), hb.counts()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqasmRoundTripP,
                         ::testing::Range<std::uint64_t>(1, 9));

// -------------------------------------- measurement statistics property ----

class BornRuleP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BornRuleP, SampledFrequenciesTrackAmplitudes) {
  Rng rng(GetParam() * 1327 + 7);
  const std::size_t n = 3;
  // Random product-plus-entangler state.
  compiler::Program p("born", n);
  auto& k = p.add_kernel("main");
  for (QubitIndex q = 0; q < n; ++q) k.ry(q, rng.uniform(0, kPi));
  k.cnot(0, 1).cnot(1, 2);
  // Exact probabilities from a measurement-free run.
  sim::Simulator exact(n, sim::QubitModel::perfect(), 1);
  exact.run_once(p.to_qasm());
  std::vector<double> probs(1 << n);
  for (StateIndex i = 0; i < (StateIndex{1} << n); ++i)
    probs[i] = std::norm(exact.state().amplitude(i));

  // Sampled frequencies from measured shots.
  compiler::Program measured = p;
  measured.kernels().back().measure_all();
  sim::Simulator sampler(n, sim::QubitModel::perfect(), GetParam());
  const auto result = sampler.run(measured.to_qasm(), 4000);
  for (StateIndex i = 0; i < (StateIndex{1} << n); ++i) {
    std::string key(n, '0');
    for (std::size_t q = 0; q < n; ++q)
      if (i & (StateIndex{1} << q)) key[q] = '1';
    EXPECT_NEAR(result.histogram.frequency(key), probs[i], 0.035)
        << "basis " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BornRuleP,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace qs
