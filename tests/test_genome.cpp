// Unit tests for the quantum genome sequencing app: DNA generation,
// classical baselines, Grover mathematics and the gate-level quantum
// associative memory aligner.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/genome/aligner.h"
#include "apps/genome/classical_align.h"
#include "apps/genome/dna.h"
#include "apps/genome/qam.h"
#include "sim/simulator.h"

namespace qs::apps::genome {
namespace {

// ----------------------------------------------------------------- DNA ----

TEST(Dna, Validation) {
  EXPECT_TRUE(is_valid_dna("ACGT"));
  EXPECT_TRUE(is_valid_dna(""));
  EXPECT_FALSE(is_valid_dna("ACGU"));
  EXPECT_FALSE(is_valid_dna("acgt"));
}

TEST(Dna, BaseBitsRoundTrip) {
  for (char c : {'A', 'C', 'G', 'T'})
    EXPECT_EQ(bits_to_base(base_to_bits(c)), c);
  EXPECT_THROW(base_to_bits('X'), std::invalid_argument);
  EXPECT_THROW(bits_to_base(4), std::invalid_argument);
}

TEST(Dna, EntropyBounds) {
  EXPECT_NEAR(base_entropy("ACGT"), 2.0, 1e-12);  // uniform: max entropy
  EXPECT_NEAR(base_entropy("AAAA"), 0.0, 1e-12);
  EXPECT_EQ(base_entropy(""), 0.0);
}

TEST(Dna, GcContent) {
  EXPECT_NEAR(gc_content("GCGC"), 1.0, 1e-12);
  EXPECT_NEAR(gc_content("ATAT"), 0.0, 1e-12);
  EXPECT_NEAR(gc_content("ACGT"), 0.5, 1e-12);
}

TEST(Dna, GeneratorDeterministicPerSeed) {
  DnaGenerator g1(5), g2(5);
  EXPECT_EQ(g1.markov(100), g2.markov(100));
}

TEST(Dna, MarkovPreservesStatisticalComplexity) {
  DnaGenerator gen(7);
  const std::string seq = gen.markov(20000);
  EXPECT_TRUE(is_valid_dna(seq));
  // High entropy (statistically rich) ...
  EXPECT_GT(base_entropy(seq), 1.9);
  // ... with genome-like AT bias (GC < 50%) ...
  EXPECT_LT(gc_content(seq), 0.5);
  EXPECT_GT(gc_content(seq), 0.3);
  // ... and CpG suppression: count CG dinucleotides vs GC.
  std::size_t cg = 0, gc = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    if (seq[i] == 'C' && seq[i + 1] == 'G') ++cg;
    if (seq[i] == 'G' && seq[i + 1] == 'C') ++gc;
  }
  EXPECT_LT(cg, gc / 2);
}

TEST(Dna, ReadsMatchReferenceWithoutErrors) {
  DnaGenerator gen(9);
  const std::string ref = gen.markov(200);
  const auto reads = gen.sample_reads(ref, 20, 50, 0.0);
  for (const auto& [read, pos] : reads)
    EXPECT_EQ(read, ref.substr(pos, 20));
}

TEST(Dna, ReadErrorsAtConfiguredRate) {
  DnaGenerator gen(11);
  const std::string ref = gen.markov(100);
  std::size_t mismatches = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string read = gen.read_at(ref, 10, 50, 0.1);
    mismatches += hamming_distance(read, ref.substr(10, 50));
    total += 50;
  }
  EXPECT_NEAR(static_cast<double>(mismatches) / static_cast<double>(total),
              0.1, 0.02);
}

TEST(Dna, ReadWindowOutOfRangeThrows) {
  DnaGenerator gen(1);
  EXPECT_THROW(gen.read_at("ACGT", 2, 4, 0.0), std::out_of_range);
}

// ---------------------------------------------------- Classical aligner ----

TEST(ClassicalAlign, HammingDistance) {
  EXPECT_EQ(hamming_distance("ACGT", "ACGT"), 0u);
  EXPECT_EQ(hamming_distance("ACGT", "ACGA"), 1u);
  EXPECT_THROW(hamming_distance("AC", "ACG"), std::invalid_argument);
}

TEST(ClassicalAlign, ExactSearchFindsPattern) {
  const AlignmentResult r = exact_search("AAACGTAAA", "ACGT");
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.position, 2u);
  EXPECT_EQ(r.comparisons, 3u);  // scans up to the hit
}

TEST(ClassicalAlign, ExactSearchMiss) {
  const AlignmentResult r = exact_search("AAAAAA", "ACGT");
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.comparisons, 3u);  // full scan
}

TEST(ClassicalAlign, BestMatchToleratesErrors) {
  const AlignmentResult r = best_match("TTTTACGATTTT", "ACGT");
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.position, 4u);
  EXPECT_EQ(r.distance, 1u);
}

TEST(ClassicalAlign, LinearScanCost) {
  // Classical best-match is O(N): comparisons = N - M + 1.
  const std::string ref(100, 'A');
  const AlignmentResult r = best_match(ref, "AAAA");
  EXPECT_EQ(r.comparisons, 97u);
}

// -------------------------------------------------- Grover mathematics ----

TEST(GroverMath, SuccessProbabilityClosedForm) {
  // N=4, 1 solution, 1 iteration: exact certainty.
  EXPECT_NEAR(grover_success_probability(4, 1, 1), 1.0, 1e-12);
  // 0 iterations: p = s/N.
  EXPECT_NEAR(grover_success_probability(8, 1, 0), 1.0 / 8.0, 1e-12);
  EXPECT_EQ(grover_success_probability(8, 0, 3), 0.0);
}

TEST(GroverMath, OptimalIterationsScaling) {
  EXPECT_EQ(grover_optimal_iterations(4, 1), 1u);
  // pi/4 sqrt(N) growth.
  const std::size_t k1024 = grover_optimal_iterations(1024, 1);
  EXPECT_NEAR(static_cast<double>(k1024),
              kPi / 4.0 * std::sqrt(1024.0) - 0.5, 1.0);
  // Quadrupling N doubles iterations.
  const std::size_t k4096 = grover_optimal_iterations(4096, 1);
  EXPECT_NEAR(static_cast<double>(k4096) / static_cast<double>(k1024), 2.0,
              0.1);
}

TEST(GroverMath, ExpectedQueriesNearOptimalSuccess) {
  // At the optimal iteration count success is near 1, so expected queries
  // stay near the per-attempt count.
  const double q = grover_expected_queries(1024, 1);
  const std::size_t k = grover_optimal_iterations(1024, 1);
  EXPECT_GE(q, static_cast<double>(k));
  EXPECT_LE(q, static_cast<double>(k) * 1.2);
}

// --------------------------------------------------- QuantumAlignment ----

TEST(QuantumAlignment, WindowSlicing) {
  // Reference of 11 bases, read length 4: 8 natural windows, no padding.
  const QuantumAlignment qam("ACGTACGTACG", 4);
  EXPECT_EQ(qam.window_count(), 8u);
  EXPECT_EQ(qam.window(0), "ACGT");
  EXPECT_EQ(qam.window(7), "TACG");  // last natural window, no padding
  EXPECT_EQ(qam.layout().index_bits, 3u);
  EXPECT_EQ(qam.layout().pattern_bits, 8u);
}

TEST(QuantumAlignment, LayoutGuard) {
  // Too many qubits must be rejected, not attempted.
  EXPECT_THROW(QuantumAlignment(std::string(200, 'A') + "CGT", 8),
               std::invalid_argument);
  EXPECT_THROW(QuantumAlignment("ACGT", 0), std::invalid_argument);
  EXPECT_THROW(QuantumAlignment("AC", 4), std::invalid_argument);
}

TEST(QuantumAlignment, DatabasePrepBuildsSuperposedMemory) {
  // 4 windows of length 2: verify the prepared state is
  // (1/2) sum_i |i>|slice_i> by checking amplitudes.
  const QuantumAlignment qam("ACGTA", 2);  // windows AC,CG,GT,TA
  ASSERT_EQ(qam.window_count(), 4u);
  compiler::Program prog("prep", qam.layout().total);
  prog.add_kernel(qam.database_prep_kernel());
  sim::Simulator sim(qam.layout().total);
  sim.run_once(prog.to_qasm());
  const auto& layout = qam.layout();
  for (std::size_t w = 0; w < 4; ++w) {
    // Expected basis: index bits | pattern bits of the slice.
    StateIndex basis = w;
    for (std::size_t pos = 0; pos < 2; ++pos) {
      const int bits = base_to_bits(qam.window(w)[pos]);
      for (int b = 0; b < 2; ++b)
        if ((bits >> b) & 1)
          basis |= StateIndex{1}
                   << (layout.index_bits + 2 * pos + static_cast<std::size_t>(b));
    }
    EXPECT_NEAR(std::norm(sim.state().amplitude(basis)), 0.25, 1e-9)
        << "window " << w;
  }
}

TEST(QuantumAlignment, UnprepInvertsPrep) {
  const QuantumAlignment qam("ACGTA", 2);
  compiler::Program prog("roundtrip", qam.layout().total);
  prog.add_kernel(qam.database_prep_kernel());
  prog.add_kernel(qam.database_unprep_kernel());
  sim::Simulator sim(qam.layout().total);
  sim.run_once(prog.to_qasm());
  EXPECT_NEAR(std::norm(sim.state().amplitude(0)), 1.0, 1e-9);
}

TEST(QuantumAlignment, MatchingWindows) {
  const QuantumAlignment qam("ACGACG", 3);  // windows ACG,CGA,GAC,ACG
  const auto hits = qam.matching_windows("ACG");
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 3}));
  EXPECT_TRUE(qam.matching_windows("TTT").empty());
}

TEST(QuantumAlignment, GroverAmplifiesUniqueMatch) {
  // Reference with a unique 'GT' window among 4.
  const QuantumAlignment qam("ACGTA", 2);  // AC,CG,GT,TA: all unique
  const QuantumAlignment::QueryResult r = qam.align("GT", 3);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.position, 2u);
  // N=4, s=1, k=1: success probability exactly 1.
  EXPECT_NEAR(r.success_probability, 1.0, 1e-9);
  EXPECT_EQ(r.oracle_queries, 1u);
}

TEST(QuantumAlignment, GroverProbabilityMatchesTheory8) {
  // 8 distinct windows of length 3 via a de-Bruijn-ish reference.
  const std::string ref = "AACAGATCCG";  // windows: AAC,ACA,CAG,AGA,GAT,ATC,TCC,CCG
  const QuantumAlignment qam(ref, 3);
  ASSERT_EQ(qam.window_count(), 8u);
  ASSERT_EQ(qam.matching_windows("GAT").size(), 1u);
  const auto r = qam.align("GAT", 5);
  const double expected = grover_success_probability(8, 1, r.oracle_queries);
  EXPECT_NEAR(r.success_probability, expected, 1e-6);
  EXPECT_GT(r.success_probability, 0.9);
}

TEST(QuantumAlignment, OracleOnlyMarksMatches) {
  const QuantumAlignment qam("ACGTA", 2);
  compiler::Program prog("oracle", qam.layout().total);
  prog.add_kernel(qam.database_prep_kernel());
  prog.add_kernel(qam.oracle_kernel("CG"));
  prog.add_kernel(qam.database_unprep_kernel());
  // prep^-1 . oracle . prep |0> has overlap <0|...|0> = 1 - 2/W for a
  // single marked window among W: probability (1-2/4)^2 = 0.25.
  sim::Simulator sim(qam.layout().total);
  sim.run_once(prog.to_qasm());
  EXPECT_NEAR(std::norm(sim.state().amplitude(0)), 0.25, 1e-9);
}

// --------------------------------------------------------- QgsAligner ----

TEST(QgsAligner, ExactReadAligns) {
  DnaGenerator gen(13);
  const std::string ref = gen.markov(10);  // 8 windows of length 3
  QgsAligner aligner(ref, 3);
  const std::string read = ref.substr(3, 3);
  const auto r = aligner.align_quantum(read, 2);
  EXPECT_TRUE(r.found);
  // Position must correspond to a window equal to the read.
  EXPECT_EQ(aligner.quantum_memory().window(r.position), read);
  EXPECT_EQ(r.variants_tried, 1u);
}

TEST(QgsAligner, ErroneousReadAlignsViaVariants) {
  DnaGenerator gen(17);
  std::string ref;
  // Build a reference with distinct windows to keep matches unique.
  ref = "AACAGATCCG";
  QgsAligner aligner(ref, 3);
  std::string read = "GAT";
  read[1] = read[1] == 'A' ? 'C' : 'A';  // inject one substitution
  const auto r = aligner.align_quantum(read, 3);
  EXPECT_TRUE(r.found);
  EXPECT_GT(r.variants_tried, 1u);
  EXPECT_EQ(aligner.quantum_memory().window(r.position), std::string("GAT"));
}

TEST(QgsAligner, ClassicalBaselineAgrees) {
  const std::string ref = "AACAGATCCG";
  QgsAligner aligner(ref, 3);
  const auto classical = aligner.align_classical("GAT");
  EXPECT_TRUE(classical.found);
  EXPECT_EQ(classical.position, 4u);
  const auto quantum = aligner.align_quantum("GAT", 7);
  EXPECT_TRUE(quantum.found);
  EXPECT_EQ(quantum.position, classical.position);
}

TEST(QgsAligner, WrongReadLengthThrows) {
  QgsAligner aligner("AACAGATCCG", 3);
  EXPECT_THROW(aligner.align_quantum("ACGT"), std::invalid_argument);
}

}  // namespace
}  // namespace qs::apps::genome
