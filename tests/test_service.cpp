// Tests for the execution service: queue ordering (FIFO within priority),
// shot-sharded determinism across worker counts, compiled-program cache
// accounting, metrics exposition, the thread-safety of qs::Log, and the
// robustness layer — deadlines, cooperative cancellation, shard retry with
// deterministic seeds, and fault injection — behind the RunRequest/
// RunResult/JobHandle front door.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "anneal/qubo.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "compiler/algorithms.h"
#include "compiler/kernel.h"
#include "service/cache.h"
#include "service/job.h"
#include "service/metrics.h"
#include "service/queue.h"
#include "service/service.h"
#include "service/worker_pool.h"

namespace qs::service {
namespace {

using namespace std::chrono_literals;

qasm::Program ghz_program(std::size_t n) {
  compiler::Program p("ghz", n);
  p.add_kernel("main").ghz(n).measure_all();
  return p.to_qasm();
}

runtime::GateAccelerator perfect_gate(std::size_t qubits) {
  return runtime::GateAccelerator(compiler::Platform::perfect(qubits));
}

/// Spin until the dispatcher has actually sharded a job (bounded wait).
void wait_for_dispatch(QuantumService& svc, std::uint64_t count = 1) {
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  while (svc.metrics().counter("qs_jobs_dispatched_total").value() < count) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "job never dispatched";
    std::this_thread::sleep_for(1ms);
  }
}

// ------------------------------------------------------------- Queue ----

TEST(BoundedPriorityQueue, PopsHigherPriorityFirst) {
  BoundedPriorityQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1, /*priority=*/0));
  ASSERT_TRUE(q.try_push(2, /*priority=*/5));
  ASSERT_TRUE(q.try_push(3, /*priority=*/-1));
  ASSERT_TRUE(q.try_push(4, /*priority=*/5));
  EXPECT_EQ(q.pop(), 2);  // priority 5, first in
  EXPECT_EQ(q.pop(), 4);  // priority 5, second in
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedPriorityQueue, FifoWithinEqualPriority) {
  BoundedPriorityQueue<int> q(32);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(q.try_push(i, 7));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedPriorityQueue, TryPushRejectsWhenFull) {
  BoundedPriorityQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1, 0));
  EXPECT_TRUE(q.try_push(2, 0));
  EXPECT_FALSE(q.try_push(3, 0));
  q.pop();
  EXPECT_TRUE(q.try_push(3, 0));
}

TEST(BoundedPriorityQueue, CloseDrainsThenReturnsNullopt) {
  BoundedPriorityQueue<int> q(4);
  q.try_push(1, 0);
  q.close();
  EXPECT_FALSE(q.try_push(2, 0));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), std::nullopt);
}

// ------------------------------------------------------- RNG streams ----

TEST(DeriveStreamSeed, DistinctConsecutiveStreams) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i)
    seeds.push_back(derive_stream_seed(42, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(DeriveStreamSeed, PureFunctionOfInputs) {
  EXPECT_EQ(derive_stream_seed(7, 3), derive_stream_seed(7, 3));
  EXPECT_NE(derive_stream_seed(7, 3), derive_stream_seed(8, 3));
  EXPECT_NE(derive_stream_seed(7, 3), derive_stream_seed(7, 4));
}

// --------------------------------------------------------------- Log ----

TEST(Log, ConcurrentWritersProduceWholeLines) {
  Log::set_capture(true);
  Log::set_level(LogLevel::Info);
  constexpr int kThreads = 4;
  constexpr int kLines = 100;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i)
        QS_LOG(LogLevel::Info, "t" + std::to_string(t), "line " << i);
    });
  for (auto& w : writers) w.join();
  const std::string captured = Log::drain_capture();
  Log::set_capture(false);
  Log::set_level(LogLevel::Warn);

  const auto newlines =
      std::count(captured.begin(), captured.end(), '\n');
  EXPECT_EQ(newlines, kThreads * kLines);
  // Every line is intact: starts with the level tag, no interleaving.
  std::size_t pos = 0;
  while (pos < captured.size()) {
    EXPECT_EQ(captured.compare(pos, 6, "[INFO]"), 0)
        << "corrupt line at offset " << pos;
    pos = captured.find('\n', pos) + 1;
  }
}

// ------------------------------------------------------------- Cache ----

TEST(CompiledProgramCache, HitMissAndEvictionAccounting) {
  // Byte-budgeted view over a memory-only ArtifactStore: two empty
  // entries fit the budget exactly, a third evicts the least recent.
  const std::size_t unit = compiled_entry_bytes(CompiledEntry{});
  CompiledProgramCache cache(2 * unit);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(1, std::make_shared<CompiledEntry>());
  cache.insert(2, std::make_shared<CompiledEntry>());
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.hits(), 1u);

  // 1 is now most recent, so inserting 3 evicts 2.
  cache.insert(3, std::make_shared<CompiledEntry>());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_NEAR(cache.hit_rate(), 3.0 / 5.0, 1e-12);
}

TEST(CompiledProgramCache, KeyDependsOnProgramPlatformAndOptions) {
  const auto p1 = compiler::Platform::perfect(4);
  const auto p2 = compiler::Platform::perfect(5);
  compiler::CompileOptions o1;
  compiler::CompileOptions o2;
  o2.optimize = false;
  const std::uint64_t base = compiled_program_key(
      "qubits 4", compiler::fingerprint(p1), compiler::fingerprint(o1));
  EXPECT_NE(base,
            compiled_program_key("qubits 5", compiler::fingerprint(p1),
                                 compiler::fingerprint(o1)));
  EXPECT_NE(base,
            compiled_program_key("qubits 4", compiler::fingerprint(p2),
                                 compiler::fingerprint(o1)));
  EXPECT_NE(base,
            compiled_program_key("qubits 4", compiler::fingerprint(p1),
                                 compiler::fingerprint(o2)));
  EXPECT_EQ(base,
            compiled_program_key("qubits 4", compiler::fingerprint(p1),
                                 compiler::fingerprint(o1)));
}

// ----------------------------------------------------------- Metrics ----

TEST(MetricsRegistry, CountersGaugesAndHistogramsRender) {
  MetricsRegistry reg;
  reg.counter("jobs_total").inc(3);
  reg.gauge("depth").set(-2);
  auto& h = reg.histogram("wait_us");
  h.observe(5.0);
  h.observe(50.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_NEAR(h.mean(), 27.5, 1e-9);

  const std::string text = reg.render();
  EXPECT_NE(text.find("jobs_total 3"), std::string::npos);
  EXPECT_NE(text.find("depth -2"), std::string::npos);
  EXPECT_NE(text.find("wait_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("wait_us_p50"), std::string::npos);
}

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  reg.counter("c").inc();
  EXPECT_EQ(reg.counter("c").value(), 2u);
}

// -------------------------------------------------------- WorkerPool ----

TEST(WorkerPool, ExecutesAllTasksAndWaitsIdle) {
  WorkerPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i)
    pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

// --------------------------------------------- Service: RunRequest API ----

TEST(QuantumService, InvalidRequestsResolveWithStatusNotExceptions) {
  ServiceOptions opts;
  opts.workers = 1;
  QuantumService svc(perfect_gate(3), opts);

  // Neither payload set.
  RunResult empty = svc.submit(RunRequest{}).get();
  EXPECT_EQ(empty.status.code(), StatusCode::kInvalidArgument);

  // Both payloads set.
  RunRequest both = RunRequest::gate(ghz_program(3), 16);
  both.qubo = anneal::Qubo(2);
  EXPECT_EQ(svc.submit(both).get().status.code(),
            StatusCode::kInvalidArgument);

  // Zero shots.
  EXPECT_EQ(svc.submit(RunRequest::gate(ghz_program(3), 0)).get()
                .status.code(),
            StatusCode::kInvalidArgument);

  // Anneal job without an annealer attached.
  EXPECT_EQ(svc.submit(RunRequest::anneal(anneal::Qubo(2), 8)).get()
                .status.code(),
            StatusCode::kFailedPrecondition);

  EXPECT_EQ(svc.metrics().counter("qs_jobs_rejected_total").value(), 4u);
  EXPECT_EQ(svc.metrics().counter("qs_jobs_submitted_total").value(), 0u);
}

TEST(QuantumService, GateJobMergesAllShots) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 64;
  QuantumService svc(perfect_gate(4), opts);
  JobHandle h = svc.submit(RunRequest::gate(ghz_program(4), 1000, /*seed=*/9));
  EXPECT_GT(h.id(), 0u);
  const RunResult r = h.get();
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.histogram.total(), 1000u);
  EXPECT_EQ(r.stats.shards, shard_count(1000, 64));
  EXPECT_EQ(r.stats.retries, 0u);
  EXPECT_EQ(r.kind, JobKind::Gate);
  // GHZ: only the all-zeros and all-ones bitstrings occur.
  for (const auto& [bits, n] : r.histogram.counts()) {
    EXPECT_TRUE(bits == "0000" || bits == "1111") << bits << " x" << n;
  }
}

// The headline determinism contract: same seed => byte-identical merged
// histogram for 1, 2, and 8 workers, because shard boundaries and shard
// seeds are worker-count independent.
TEST(QuantumService, MergedHistogramIdenticalAcrossWorkerCounts) {
  std::vector<std::map<std::string, std::size_t>> results;
  for (std::size_t workers : {1u, 2u, 8u}) {
    ServiceOptions opts;
    opts.workers = workers;
    opts.shard_shots = 32;
    QuantumService svc(perfect_gate(6), opts);
    JobHandle h =
        svc.submit(RunRequest::gate(ghz_program(6), 777, /*seed=*/12345));
    results.push_back(h.get().histogram.counts());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(QuantumService, RepeatSubmissionsHitTheCompiledProgramCache) {
  ServiceOptions opts;
  opts.workers = 2;
  QuantumService svc(perfect_gate(4), opts);
  const qasm::Program prog = ghz_program(4);

  bool first_hit = true;
  std::size_t hits = 0;
  for (int i = 0; i < 10; ++i) {
    const RunResult r =
        svc.submit(RunRequest::gate(prog, 64, /*seed=*/i + 1)).get();
    if (i == 0) first_hit = r.stats.compile_cache_hit;
    hits += r.stats.compile_cache_hit ? 1 : 0;
  }
  EXPECT_FALSE(first_hit);
  EXPECT_EQ(hits, 9u);
  EXPECT_EQ(svc.cache().misses(), 1u);
  EXPECT_EQ(svc.cache().hits(), 9u);
  EXPECT_GT(svc.cache().hit_rate(), 0.89);
  EXPECT_EQ(svc.metrics().counter("qs_cache_hits_total").value(), 9u);
}

TEST(QuantumService, CacheDisabledNeverReportsHits) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.cache_enabled = false;
  QuantumService svc(perfect_gate(3), opts);
  const qasm::Program prog = ghz_program(3);
  for (int i = 0; i < 3; ++i) {
    const RunResult r = svc.submit(RunRequest::gate(prog, 32)).get();
    EXPECT_FALSE(r.stats.compile_cache_hit);
  }
  EXPECT_EQ(svc.cache().hits(), 0u);
  EXPECT_EQ(svc.cache().misses(), 0u);
}

TEST(QuantumService, CachedAndUncachedResultsAgree) {
  // The cache must be semantically invisible: same seed, same histogram,
  // whether the compiled program was fresh or cached.
  ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 50;
  QuantumService svc(perfect_gate(5), opts);
  const qasm::Program prog = ghz_program(5);
  const RunResult fresh =
      svc.submit(RunRequest::gate(prog, 300, /*seed=*/555)).get();
  const RunResult cached =
      svc.submit(RunRequest::gate(prog, 300, /*seed=*/555)).get();
  EXPECT_FALSE(fresh.stats.compile_cache_hit);
  EXPECT_TRUE(cached.stats.compile_cache_hit);
  EXPECT_EQ(fresh.histogram.counts(), cached.histogram.counts());
}

TEST(QuantumService, DispatchOrderIsPriorityThenFifo) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  QuantumService svc(perfect_gate(3), opts);
  const qasm::Program prog = ghz_program(3);

  JobHandle a = svc.submit(RunRequest::gate(prog, 16, 1, /*priority=*/0));
  JobHandle b = svc.submit(RunRequest::gate(prog, 16, 1, /*priority=*/5));
  JobHandle c = svc.submit(RunRequest::gate(prog, 16, 1, /*priority=*/0));
  JobHandle d = svc.submit(RunRequest::gate(prog, 16, 1, /*priority=*/5));
  EXPECT_EQ(svc.queue_depth(), 4u);
  svc.resume();

  EXPECT_EQ(b.get().stats.dispatch_seq, 1u);
  EXPECT_EQ(d.get().stats.dispatch_seq, 2u);
  EXPECT_EQ(a.get().stats.dispatch_seq, 3u);
  EXPECT_EQ(c.get().stats.dispatch_seq, 4u);
}

TEST(QuantumService, TrySubmitRejectsWithResourceExhaustedWhenFull) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.start_paused = true;
  QuantumService svc(perfect_gate(3), opts);
  const qasm::Program prog = ghz_program(3);

  JobHandle a = svc.try_submit(RunRequest::gate(prog, 16));
  JobHandle b = svc.try_submit(RunRequest::gate(prog, 16));
  JobHandle rejected = svc.try_submit(RunRequest::gate(prog, 16));

  // The rejection is immediate, typed, and names the queue depth.
  ASSERT_EQ(rejected.wait_for(0s), std::future_status::ready);
  const RunResult rr = rejected.get();
  EXPECT_EQ(rr.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rr.status.message().find("depth 2/2"), std::string::npos)
      << rr.status.message();
  EXPECT_EQ(svc.metrics().counter("qs_jobs_rejected_total").value(), 1u);

  svc.resume();
  EXPECT_EQ(a.get().histogram.total(), 16u);
  EXPECT_EQ(b.get().histogram.total(), 16u);
}

TEST(QuantumService, MicroArchPathServesFromAssembledCache) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 16;
  runtime::GateAccelerator gate(compiler::Platform::perfect(3), {},
                                runtime::GatePath::MicroArch);
  QuantumService svc(std::move(gate), opts);
  const qasm::Program prog = ghz_program(3);
  const RunResult r1 = svc.submit(RunRequest::gate(prog, 48, 7)).get();
  const RunResult r2 = svc.submit(RunRequest::gate(prog, 48, 7)).get();
  EXPECT_EQ(r1.histogram.total(), 48u);
  EXPECT_TRUE(r2.stats.compile_cache_hit);
  EXPECT_EQ(r1.histogram.counts(), r2.histogram.counts());
}

TEST(QuantumService, AnnealJobFindsMinimumAndIsWorkerCountInvariant) {
  // x0 XOR-like QUBO with known minimum at (1, 0, 1): brute-force checked.
  anneal::Qubo qubo(3);
  qubo.add(0, 0, -2.0);
  qubo.add(1, 1, 1.0);
  qubo.add(2, 2, -2.0);
  qubo.add(0, 1, 1.5);
  qubo.add(1, 2, 1.5);

  std::vector<RunResult> results;
  for (std::size_t workers : {1u, 2u, 8u}) {
    ServiceOptions opts;
    opts.workers = workers;
    opts.shard_shots = 8;
    QuantumService svc(perfect_gate(2),
                       runtime::AnnealAccelerator(/*capacity=*/8), opts);
    JobHandle h =
        svc.submit(RunRequest::anneal(qubo, /*reads=*/40, /*seed=*/3));
    results.push_back(h.get());
  }
  EXPECT_EQ(results[0].best_solution, (std::vector<int>{1, 0, 1}));
  EXPECT_DOUBLE_EQ(results[0].best_energy, -4.0);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].histogram.counts(), results[i].histogram.counts());
    EXPECT_EQ(results[0].best_solution, results[i].best_solution);
    EXPECT_DOUBLE_EQ(results[0].best_energy, results[i].best_energy);
  }
}

TEST(QuantumService, DrainWaitsForAllSubmittedJobs) {
  ServiceOptions opts;
  opts.workers = 2;
  QuantumService svc(perfect_gate(4), opts);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 6; ++i)
    handles.push_back(
        svc.submit(RunRequest::gate(ghz_program(4), 128, i + 1)));
  svc.drain();
  for (JobHandle& h : handles) {
    ASSERT_EQ(h.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(h.get().histogram.total(), 128u);
  }
  EXPECT_EQ(svc.metrics().counter("qs_jobs_completed_total").value(), 6u);
  EXPECT_EQ(svc.metrics().counter("qs_gate_shots_total").value(), 6u * 128u);
}

TEST(QuantumService, SubmitAfterShutdownResolvesUnavailable) {
  ServiceOptions opts;
  opts.workers = 1;
  QuantumService svc(perfect_gate(3), opts);
  svc.shutdown();
  const RunResult r = svc.submit(RunRequest::gate(ghz_program(3), 16)).get();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(svc.try_submit(RunRequest::gate(ghz_program(3), 16))
                .get()
                .status.code(),
            StatusCode::kUnavailable);
}

TEST(QuantumService, FailedJobCarriesInternalStatus) {
  ServiceOptions opts;
  opts.workers = 1;
  // Annealer capacity 2 < QUBO size 4: solve throws inside the shard; the
  // exception is mapped to a Status at the service boundary.
  QuantumService svc(perfect_gate(2), runtime::AnnealAccelerator(2), opts);
  const RunResult r = svc.submit(RunRequest::anneal(anneal::Qubo(4), 8)).get();
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  EXPECT_NE(r.status.message().find("capacity"), std::string::npos)
      << r.status.message();
  EXPECT_EQ(svc.metrics().counter("qs_jobs_failed_total").value(), 1u);
}

// ------------------------------------------- Cancellation & deadlines ----

TEST(QuantumService, CancelBeforeDispatchNeverRuns) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  QuantumService svc(perfect_gate(3), opts);
  JobHandle h = svc.submit(RunRequest::gate(ghz_program(3), 64));
  h.cancel();
  EXPECT_TRUE(h.cancel_requested());
  svc.resume();
  const RunResult r = h.get();
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(r.stats.shards, 0u);  // never compiled, never sharded
  EXPECT_EQ(r.histogram.total(), 0u);
  EXPECT_EQ(svc.metrics().counter("qs_jobs_cancelled_total").value(), 1u);
  EXPECT_EQ(svc.metrics().counter("qs_jobs_completed_total").value(), 0u);
}

TEST(QuantumService, CancelMidRunStopsBetweenShards) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.shard_shots = 16;
  QuantumService svc(perfect_gate(3), opts);

  // 8 shards, each held up ~25ms by injected latency: the job takes
  // >= 200ms on one worker, so a cancel sent right after dispatch lands
  // mid-run deterministically.
  auto plan = std::make_shared<FaultPlan>();
  plan->shard_latency = std::chrono::microseconds(25'000);
  RunRequest req = RunRequest::gate(ghz_program(3), 128, /*seed=*/4);
  req.faults = plan;

  JobHandle h = svc.submit(std::move(req));
  wait_for_dispatch(svc);
  h.cancel();

  const RunResult r = h.get();  // must not hang
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(r.stats.shards, 8u);
  EXPECT_LT(r.histogram.total(), 128u);  // partial at best
  EXPECT_EQ(svc.metrics().counter("qs_jobs_cancelled_total").value(), 1u);
}

TEST(QuantumService, CancelAfterCompletionIsANoOp) {
  ServiceOptions opts;
  opts.workers = 1;
  QuantumService svc(perfect_gate(3), opts);
  JobHandle h = svc.submit(RunRequest::gate(ghz_program(3), 16));
  const RunResult r = h.get();
  ASSERT_TRUE(r.ok());
  h.cancel();  // too late, harmless
  EXPECT_TRUE(h.get().ok());
  EXPECT_EQ(svc.metrics().counter("qs_jobs_cancelled_total").value(), 0u);
}

TEST(QuantumService, DeadlineExpiredInQueueIsRejectedOnDequeue) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  QuantumService svc(perfect_gate(3), opts);

  RunRequest req = RunRequest::gate(ghz_program(3), 64);
  req.deadline = 20ms;
  JobHandle h = svc.submit(std::move(req));
  std::this_thread::sleep_for(60ms);  // expire while paused in queue
  svc.resume();

  const RunResult r = h.get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status.message().find("in queue"), std::string::npos)
      << r.status.message();
  EXPECT_EQ(r.stats.shards, 0u);  // never dispatched to workers
  EXPECT_EQ(svc.metrics().counter("qs_jobs_timed_out_total").value(), 1u);
  // Queue wait consumed more than the whole deadline budget.
  auto& frac = svc.metrics().histogram("qs_deadline_wait_fraction",
                                       MetricsRegistry::fraction_bounds());
  EXPECT_EQ(frac.count(), 1u);
  EXPECT_GT(frac.sum(), 1.0);
}

TEST(QuantumService, DeadlineExpiredMidRunStopsBetweenShards) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.shard_shots = 16;
  QuantumService svc(perfect_gate(3), opts);

  // 4 shards x ~100ms injected latency on one worker vs a 150ms deadline:
  // shard 0 completes, the deadline expires during shard 1.
  auto plan = std::make_shared<FaultPlan>();
  plan->shard_latency = std::chrono::microseconds(100'000);
  RunRequest req = RunRequest::gate(ghz_program(3), 64, /*seed=*/2);
  req.deadline = 150ms;
  req.faults = plan;

  const RunResult r = svc.submit(std::move(req)).get();  // must not hang
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.stats.shards, 4u);
  EXPECT_LT(r.histogram.total(), 64u);
  EXPECT_EQ(svc.metrics().counter("qs_jobs_timed_out_total").value(), 1u);
}

// ------------------------------------------------ Retries and faults ----

TEST(QuantumService, RetriedShardsProduceByteIdenticalHistogram) {
  // The reproducibility contract under faults: a job whose shard fails
  // twice and then succeeds yields exactly the histogram of a job that
  // never failed, because the retried shard re-derives the same
  // counter-based RNG stream.
  ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 64;
  opts.max_shard_retries = 2;
  opts.retry_backoff.initial = std::chrono::microseconds(1);

  std::map<std::string, std::size_t> clean;
  {
    QuantumService svc(perfect_gate(5), opts);
    const RunResult r =
        svc.submit(RunRequest::gate(ghz_program(5), 256, /*seed=*/77)).get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.stats.retries, 0u);
    clean = r.histogram.counts();
  }

  QuantumService svc(perfect_gate(5), opts);
  auto plan = std::make_shared<FaultPlan>();
  plan->shard_faults = {{/*shard_index=*/1, /*failures=*/2}};
  RunRequest req = RunRequest::gate(ghz_program(5), 256, /*seed=*/77);
  req.faults = plan;
  const RunResult faulty = svc.submit(std::move(req)).get();

  ASSERT_TRUE(faulty.ok()) << faulty.status.to_string();
  EXPECT_EQ(faulty.stats.retries, 2u);
  EXPECT_EQ(svc.metrics().counter("qs_shard_retries_total").value(), 2u);
  EXPECT_EQ(faulty.histogram.counts(), clean);  // byte-identical
  EXPECT_EQ(svc.metrics().counter("qs_jobs_completed_total").value(), 1u);
}

TEST(QuantumService, ShardExhaustingRetriesFailsUnavailable) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.shard_shots = 32;
  opts.max_shard_retries = 2;
  opts.retry_backoff.initial = std::chrono::microseconds(1);
  QuantumService svc(perfect_gate(4), opts);

  auto plan = std::make_shared<FaultPlan>();
  plan->shard_faults = {{/*shard_index=*/0, /*failures=*/100}};
  RunRequest req = RunRequest::gate(ghz_program(4), 128);
  req.faults = plan;

  const RunResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status.message().find("failed after 3 attempts"),
            std::string::npos)
      << r.status.message();
  EXPECT_EQ(svc.metrics().counter("qs_shard_retries_total").value(), 2u);
  EXPECT_EQ(svc.metrics().counter("qs_jobs_failed_total").value(), 1u);
}

TEST(QuantumService, InjectedCompileFailureFailsJob) {
  ServiceOptions opts;
  opts.workers = 1;
  QuantumService svc(perfect_gate(3), opts);

  auto plan = std::make_shared<FaultPlan>();
  plan->fail_compile = true;
  RunRequest req = RunRequest::gate(ghz_program(3), 32);
  req.faults = plan;

  const RunResult r = svc.submit(std::move(req)).get();
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  EXPECT_NE(r.status.message().find("injected compile failure"),
            std::string::npos);
  EXPECT_EQ(r.stats.shards, 0u);  // failed before sharding
  EXPECT_EQ(svc.metrics().counter("qs_jobs_failed_total").value(), 1u);
}

TEST(QuantumService, MetricsSnapshotCoversServingSignals) {
  ServiceOptions opts;
  opts.workers = 2;
  QuantumService svc(perfect_gate(4), opts);
  const qasm::Program prog = ghz_program(4);
  for (int i = 0; i < 4; ++i)
    svc.submit(RunRequest::gate(prog, 100, i + 1)).get();

  const std::string snapshot = svc.metrics().render();
  for (const char* key :
       {"qs_jobs_submitted_total 4", "qs_jobs_completed_total 4",
        "qs_jobs_dispatched_total 4", "qs_gate_shots_total 400",
        "qs_cache_hits_total 3", "qs_cache_misses_total 1", "qs_workers 2",
        "qs_job_wait_us_count", "qs_job_run_us_p99",
        // Sampling fast path: all 4 GHZ jobs sampled; the first missed the
        // final-state cache and primed it for the other three.
        "qs_jobs_sampled_total 4", "qs_final_state_cache_misses_total 1",
        "qs_final_state_cache_hits_total 3"}) {
    EXPECT_NE(snapshot.find(key), std::string::npos)
        << "missing '" << key << "' in:\n"
        << snapshot;
  }
}

TEST(QuantumService, SamplingFallbackMetricCarriesReasonLabel) {
  ServiceOptions opts;
  opts.workers = 1;
  compiler::Platform noisy = compiler::Platform::perfect(4);
  noisy.qubit_model = sim::QubitModel::realistic();
  QuantumService svc(runtime::GateAccelerator(noisy), opts);
  ASSERT_TRUE(svc.submit(RunRequest::gate(ghz_program(4), 64, 1)).get().ok());
  EXPECT_EQ(svc.metrics().counter("qs_jobs_sampled_total").value(), 0u);
  EXPECT_EQ(
      svc.metrics()
          .counter("qs_sampling_fallback_total{reason=\"stochastic_model\"}")
          .value(),
      1u);
  EXPECT_NE(svc.metrics().render().find(
                "qs_sampling_fallback_total{reason=\"stochastic_model\"} 1"),
            std::string::npos);
}

TEST(QuantumService, SamplingDisabledCountsDisabledFallback) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.sampling_enabled = false;
  QuantumService svc(perfect_gate(3), opts);
  const runtime::RunResult r =
      svc.submit(RunRequest::gate(ghz_program(3), 64, 1)).get();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.stats.sampled);
  EXPECT_EQ(svc.metrics()
                .counter("qs_sampling_fallback_total{reason=\"disabled\"}")
                .value(),
            1u);
  EXPECT_EQ(svc.final_state_cache().size(), 0u);
}

// -------------------------------- Artifact-store-backed serving stats ----

TEST(QuantumServiceStore, JobStatsReportStoreTiers) {
  ServiceOptions opts;
  opts.workers = 1;
  QuantumService svc(perfect_gate(3), opts);

  const RunResult cold =
      svc.submit(RunRequest::gate(ghz_program(3), 64, /*seed=*/7)).get();
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.stats.compile_cache_hit);
  EXPECT_EQ(cold.stats.compile_cache_tier, runtime::CacheTier::kNone);
  EXPECT_EQ(cold.stats.final_state_cache_tier, runtime::CacheTier::kNone);

  const RunResult warm =
      svc.submit(RunRequest::gate(ghz_program(3), 64, /*seed=*/7)).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.stats.compile_cache_hit);
  EXPECT_EQ(warm.stats.compile_cache_tier, runtime::CacheTier::kMemory);
  EXPECT_TRUE(warm.stats.final_state_cache_hit);
  EXPECT_EQ(warm.stats.final_state_cache_tier, runtime::CacheTier::kMemory);
  EXPECT_EQ(warm.histogram.counts(), cold.histogram.counts());

  // Unified store metrics carry the same story, labelled by tier; the
  // legacy per-cache counters keep emitting for one release.
  auto& m = svc.metrics();
  EXPECT_GE(m.counter("qs_store_hits_total{tier=\"memory\"}").value(), 2u);
  EXPECT_GE(m.counter("qs_store_misses_total{tier=\"memory\"}").value(), 2u);
  EXPECT_EQ(m.counter("qs_store_hits_total{tier=\"disk\"}").value(), 0u);
  EXPECT_GE(m.counter("qs_cache_hits_total").value(), 1u);
  EXPECT_GE(m.counter("qs_final_state_cache_hits_total").value(), 1u);
}

TEST(QuantumServiceStore, ZeroStoreBudgetIsRejectedAtConstruction) {
  ServiceOptions opts;
  opts.store_memory_bytes = 0;
  EXPECT_FALSE(opts.validate().ok());
  EXPECT_THROW(QuantumService(perfect_gate(2), opts), std::invalid_argument);
}

}  // namespace
}  // namespace qs::service
