// Differential determinism fuzzer (docs/testing.md): seed-deterministic
// random programs swept across the execution-config lattice — scalar vs
// fused kernels, kernel thread counts, sampling vs trajectory, service
// worker counts, retry / failover fault injection, checkpoint-resume,
// cache-hit resubmission and the gateway TCP wire — asserting
// byte-identical histograms within every equivalence class of the
// determinism contract. On a divergence the harness auto-shrinks the
// program and the test fails with a printed minimal repro (generator
// seed + reduced cQASM + the failing config pair).
//
// The sweep size defaults to 1000 programs and scales with the
// QS_FUZZ_PROGRAMS environment variable (CI sanitizer jobs run a bounded
// subset; overnight hunts crank it up).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/shrink.h"
#include "qasm/parser.h"
#include "qasm/printer.h"
#include "sim/trajectory_analysis.h"

namespace qs::fuzz {
namespace {

// ------------------------------------------------------------ generator ----

TEST(FuzzGenerator, SameSeedSameProgram) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
    const qasm::Program a = generate_program(seed);
    const qasm::Program b = generate_program(seed);
    EXPECT_EQ(qasm::to_cqasm(a), qasm::to_cqasm(b)) << "seed " << seed;
    EXPECT_EQ(shots_for_seed(seed), shots_for_seed(seed));
  }
}

TEST(FuzzGenerator, ProgramsAreWellFormedAndRoundTripThroughText) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const qasm::Program program = generate_program(seed);
    ASSERT_GE(program.qubit_count(), 1u) << "seed " << seed;
    ASSERT_LE(program.qubit_count(), 6u) << "seed " << seed;
    ASSERT_NO_THROW(program.validate()) << "seed " << seed;
    // The gateway ships programs as cQASM text: print -> parse -> print
    // must be a fixpoint or the wire path cannot be byte-identical.
    const std::string text = qasm::to_cqasm(program);
    qasm::Program reparsed;
    ASSERT_NO_THROW(reparsed = qasm::Parser::parse(text))
        << "seed " << seed << "\n" << text;
    EXPECT_EQ(qasm::to_cqasm(reparsed), text) << "seed " << seed;
  }
}

TEST(FuzzGenerator, CoversBothSamplingEligibilityShapes) {
  DifferentialHarness harness({/*platform_qubits=*/6, /*shard_shots=*/64,
                               /*with_service=*/false,
                               /*with_gateway=*/false});
  std::size_t eligible = 0, fallback = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    if (harness.samplable(generate_program(seed)))
      ++eligible;
    else
      ++fallback;
  }
  // The generator biases ~half of the programs toward each shape; require
  // a healthy minimum of both so the lattice's two path families are
  // genuinely exercised.
  EXPECT_GE(eligible, 20u);
  EXPECT_GE(fallback, 20u);
}

TEST(FuzzGenerator, SpansTheGateVocabulary) {
  std::set<qasm::GateKind> seen;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    for (const auto& instr : generate_program(seed).flatten())
      seen.insert(instr.kind());
  }
  for (qasm::GateKind kind :
       {qasm::GateKind::Measure, qasm::GateKind::MeasureAll,
        qasm::GateKind::PrepZ, qasm::GateKind::Wait, qasm::GateKind::Barrier,
        qasm::GateKind::H, qasm::GateKind::Rx, qasm::GateKind::CNOT,
        qasm::GateKind::CRK, qasm::GateKind::RZZ, qasm::GateKind::Toffoli}) {
    EXPECT_TRUE(seen.count(kind)) << "generator never emitted "
                                  << qasm::gate_name(kind);
  }
}

// -------------------------------------------------------------- shrinker ----

TEST(FuzzShrink, ReducesToMinimalFailingProgram) {
  // A 20+ instruction haystack whose "failure" is simply containing an X
  // gate: the shrinker must strip everything else.
  const qasm::Program noisy = generate_program(/*seed=*/4242);
  qasm::Program haystack = noisy;
  haystack.circuits()[0].add(
      qasm::Instruction(qasm::GateKind::X, {0}));

  const auto contains_x = [](const qasm::Program& p) {
    for (const auto& i : p.flatten())
      if (i.kind() == qasm::GateKind::X) return true;
    return false;
  };
  ASSERT_TRUE(contains_x(haystack));

  ShrinkStats stats;
  const qasm::Program minimal = shrink_program(haystack, contains_x, &stats);
  EXPECT_TRUE(contains_x(minimal));
  EXPECT_EQ(minimal.flatten().size(), 1u)
      << qasm::to_cqasm(minimal);  // exactly the X survives
  EXPECT_EQ(minimal.qubit_count(), 1u);  // qubit trim kicked in
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.attempts, stats.accepted);
}

TEST(FuzzShrink, NeverReturnsAPassingProgram) {
  const qasm::Program p = generate_program(/*seed=*/77);
  const std::size_t before = p.flatten().size();
  // Predicate that only fails for programs at least half the original
  // size: the shrinker must stop at the boundary, not overshoot.
  const auto fails = [before](const qasm::Program& c) {
    return c.flatten().size() * 2 >= before;
  };
  ASSERT_TRUE(fails(p));
  const qasm::Program minimal = shrink_program(p, fails);
  EXPECT_TRUE(fails(minimal));
}

TEST(FuzzShrink, InjectedDivergenceShrinksToMinimalRepro) {
  // Manufacture a guaranteed "divergence" by comparing two configs from
  // different equivalence classes: the sampled and trajectory paths are
  // each deterministic but draw different RNG streams, so a samplable
  // superposition circuit diverges byte-wise between them by design. The
  // harness must shrink the random haystack around it down to the
  // essential superposition + measurement.
  DifferentialHarness harness({/*platform_qubits=*/6, /*shard_shots=*/64,
                               /*with_service=*/false,
                               /*with_gateway=*/false});

  // A samplable haystack: random unitaries, H + measure_all semantics.
  qasm::Program program;
  std::uint64_t seed = 0;
  for (seed = 1; seed < 500; ++seed) {
    program = generate_program(seed);
    if (harness.samplable(program)) break;
  }
  ASSERT_TRUE(harness.samplable(program));

  Divergence injected;
  injected.generator_seed = seed;
  injected.shots = 64;
  injected.run_seed = seed;
  injected.program = program;
  {
    auto cfg = [&](std::string name, bool sampling) {
      ExecConfig c;
      c.name = std::move(name);
      c.level = ExecConfig::Level::kSim;
      c.fused = true;
      c.threads = 1;
      c.sampling = sampling;
      return c;
    };
    injected.reference = cfg("sim/fused/t1/sampled", true);
    injected.variant = cfg("sim/fused/t1/trajectory", false);
  }
  std::string error;
  injected.reference_histogram = harness.run_config(
      injected.reference, program, injected.shots, injected.run_seed, &error);
  ASSERT_TRUE(error.empty()) << error;
  injected.variant_histogram = harness.run_config(
      injected.variant, program, injected.shots, injected.run_seed, &error);
  ASSERT_TRUE(error.empty()) << error;
  // If this particular seed happens not to diverge (both paths landed on
  // the same draws), scan forward for one that does — still deterministic.
  while (injected.reference_histogram.counts() ==
         injected.variant_histogram.counts()) {
    ++seed;
    ASSERT_LT(seed, 1000u) << "no diverging samplable program found";
    program = generate_program(seed);
    if (!harness.samplable(program)) continue;
    injected.program = program;
    injected.generator_seed = injected.run_seed = seed;
    injected.reference_histogram =
        harness.run_config(injected.reference, program, injected.shots,
                           injected.run_seed, &error);
    injected.variant_histogram =
        harness.run_config(injected.variant, program, injected.shots,
                           injected.run_seed, &error);
  }
  injected.detail = first_histogram_diff(injected.reference_histogram,
                                         injected.variant_histogram);

  const Divergence minimal = harness.minimize(injected);

  // The shrunk program still reproduces and is drastically smaller.
  EXPECT_NE(minimal.detail, "");
  EXPECT_NE(minimal.reference_histogram.counts(),
            minimal.variant_histogram.counts());
  EXPECT_LE(minimal.program.flatten().size(), 4u)
      << minimal.to_string();
  EXPECT_LT(minimal.program.flatten().size(), program.flatten().size());

  // The printed repro carries everything needed to reproduce by hand.
  const std::string repro = minimal.to_string();
  EXPECT_NE(repro.find("generator seed"), std::string::npos);
  EXPECT_NE(repro.find("sim/fused/t1/sampled"), std::string::npos);
  EXPECT_NE(repro.find("version 1.0"), std::string::npos);
}

/// The lattice harness is expensive (service threads, a live gateway);
/// build it once and share it across the regression and sweep tests.
/// Determinism is unaffected: results never depend on harness history.
DifferentialHarness& shared_harness() {
  static DifferentialHarness harness;
  return harness;
}

// ----------------------------------------------- fuzzer-found regressions ----
// Bugs the differential sweep caught during development, pinned with the
// shrunk repros. Both were harness-side: eligibility for the sampling
// fast path was judged on the *source* flatten while every executor
// judges the *compiled* flatten, and the compiler can legally flip
// eligibility between the two.

TEST(FuzzRegression, SchedulerReorderMakesCompiledProgramSamplable) {
  // Shrunk from generator seed 4157: a measure followed by unitaries on
  // *other* qubits is a mid-circuit measure in source order, but the
  // scheduler hoists the commuting gates ahead of it, so the compiled
  // program is terminal-measure-only and the executors sample it. The
  // harness must agree, or it asserts "sampling is a no-op" against a
  // config that legitimately samples.
  qasm::Program program("reorder", 2);
  qasm::Circuit circuit("c0");
  circuit.add(qasm::Instruction(qasm::GateKind::Y90, {0}));
  circuit.add(qasm::Instruction(qasm::GateKind::Measure, {0}));
  circuit.add(qasm::Instruction(qasm::GateKind::X90, {1}));  // commutes past
  program.add_circuit(std::move(circuit));
  program.validate();

  // Source order says mid-circuit; the harness (like the executors) must
  // judge the compiled form.
  const auto source_analysis = sim::analyze_trajectory(
      program.flatten(), 6, sim::QubitModel::perfect());
  ASSERT_FALSE(source_analysis.samplable);
  ASSERT_EQ(source_analysis.fallback,
            sim::SamplingFallback::kMidCircuitMeasure);

  DifferentialHarness& harness = shared_harness();
  EXPECT_TRUE(harness.samplable(program));
  const auto divergences = harness.check(program, /*shots=*/142, /*seed=*/1);
  EXPECT_TRUE(divergences.empty())
      << harness.minimize(divergences.front()).to_string();
}

TEST(FuzzRegression, GateCancellationInIteratedCircuitFlipsEligibility) {
  // Shrunk from generator seed 3620: sdag·s cancels to identity, so an
  // iterated circuit that *sources* as (sdag, s, measure) x3 — mid-circuit
  // measures from iteration two on — compiles to bare measures, which are
  // all terminal. Same class of bug as above via the optimiser instead of
  // the scheduler.
  qasm::Program program("cancel", 1);
  qasm::Circuit circuit("c0", /*iterations=*/3);
  circuit.add(qasm::Instruction(qasm::GateKind::Sdag, {0}));
  circuit.add(qasm::Instruction(qasm::GateKind::S, {0}));
  circuit.add(qasm::Instruction(qasm::GateKind::Measure, {0}));
  program.add_circuit(std::move(circuit));
  program.validate();

  const auto source_analysis = sim::analyze_trajectory(
      program.flatten(), 6, sim::QubitModel::perfect());
  ASSERT_FALSE(source_analysis.samplable);

  DifferentialHarness& harness = shared_harness();
  EXPECT_TRUE(harness.samplable(program));
  const auto divergences = harness.check(program, /*shots=*/107, /*seed=*/2);
  EXPECT_TRUE(divergences.empty())
      << harness.minimize(divergences.front()).to_string();
}

TEST(FuzzRegression, FormerlyDivergingGeneratorSeedsStayClean) {
  // The four seeds the first 25000-program hunt flagged (one per sweep
  // shard). Programs are regenerated, so this also guards the generator's
  // determinism: these exact circuits stay in tier-1.
  DifferentialHarness& harness = shared_harness();
  for (std::uint64_t seed : {4157ull, 14378ull, 4367ull, 3620ull}) {
    const qasm::Program program = generate_program(seed);
    const auto divergences =
        harness.check(program, shots_for_seed(seed), seed, seed);
    EXPECT_TRUE(divergences.empty())
        << "seed " << seed << ":\n"
        << harness.minimize(divergences.front()).to_string();
  }
}

// ------------------------------------------------------------ the sweep ----

/// Total programs across the four sweep shards; QS_FUZZ_PROGRAMS scales it
/// (sanitizer CI jobs run fewer, overnight hunts more).
std::size_t sweep_total() {
  if (const char* env = std::getenv("QS_FUZZ_PROGRAMS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1000;
}

void run_sweep(std::size_t shard, std::size_t shard_count) {
  DifferentialHarness& harness = shared_harness();
  const std::size_t total = sweep_total();
  // Seeds are 1-based and deterministic: shard s sweeps s, s+K, s+2K, ...
  std::size_t executed = 0;
  for (std::uint64_t seed = 1 + shard; seed <= total; seed += shard_count) {
    const qasm::Program program = generate_program(seed);
    const std::size_t shots = shots_for_seed(seed);
    std::vector<Divergence> divergences =
        harness.check(program, shots, seed, seed);
    if (!divergences.empty()) {
      const Divergence minimal = harness.minimize(divergences.front());
      FAIL() << "determinism violation at generator seed " << seed << " ("
             << divergences.size() << " divergence(s); first one shrunk):\n"
             << minimal.to_string();
    }
    ++executed;
  }
  SUCCEED() << executed << " programs clean";
}

TEST(FuzzSweep, Shard0) { run_sweep(0, 4); }
TEST(FuzzSweep, Shard1) { run_sweep(1, 4); }
TEST(FuzzSweep, Shard2) { run_sweep(2, 4); }
TEST(FuzzSweep, Shard3) { run_sweep(3, 4); }

}  // namespace
}  // namespace qs::fuzz
