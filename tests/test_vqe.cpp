// Tests for Pauli-string observables and the VQE hybrid loop, including
// the H2 molecular ground-state benchmark.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/observable.h"
#include "runtime/vqe.h"
#include "sim/gates.h"

namespace qs::runtime {
namespace {

/// Smallest eigenvalue of a Hermitian matrix via power iteration on
/// (shift*I - H) — sufficient for the 4x4 test Hamiltonians here.
double ground_energy(const Matrix& h, double shift = 5.0) {
  const std::size_t dim = h.rows();
  Matrix shifted = Matrix::identity(dim) * cplx(shift, 0.0) - h;
  std::vector<cplx> v(dim, cplx(1.0, 0.3));
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<cplx> next(dim, cplx(0, 0));
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c) next[r] += shifted(r, c) * v[c];
    double norm = 0.0;
    for (const cplx& x : next) norm += std::norm(x);
    norm = std::sqrt(norm);
    for (auto& x : next) x /= norm;
    v = next;
  }
  // Rayleigh quotient with H.
  cplx num(0, 0);
  for (std::size_t r = 0; r < dim; ++r) {
    cplx hv(0, 0);
    for (std::size_t c = 0; c < dim; ++c) hv += h(r, c) * v[c];
    num += std::conj(v[r]) * hv;
  }
  return num.real();
}

// ------------------------------------------------------ PauliObservable ----

TEST(PauliObservable, Validation) {
  PauliObservable h(3);
  EXPECT_NO_THROW(h.add_term(1.0, "XYZ"));
  EXPECT_THROW(h.add_term(1.0, "XY"), std::invalid_argument);
  EXPECT_THROW(h.add_term(1.0, "XQZ"), std::invalid_argument);
  EXPECT_THROW(PauliObservable(0), std::invalid_argument);
}

TEST(PauliObservable, SingleZOnBasisStates) {
  PauliObservable h(1);
  h.add_term(1.0, "Z");
  sim::StateVector zero(1);
  EXPECT_NEAR(h.expectation(zero), 1.0, 1e-12);
  sim::StateVector one(1);
  one.apply_1q(sim::pauli_x(), 0);
  EXPECT_NEAR(h.expectation(one), -1.0, 1e-12);
}

TEST(PauliObservable, XExpectationOnPlusMinus) {
  PauliObservable h(1);
  h.add_term(2.0, "X");
  sim::StateVector plus(1);
  plus.apply_1q(sim::hadamard(), 0);
  EXPECT_NEAR(h.expectation(plus), 2.0, 1e-12);
  plus.apply_1q(sim::pauli_z(), 0);  // |->
  EXPECT_NEAR(h.expectation(plus), -2.0, 1e-12);
}

TEST(PauliObservable, YExpectation) {
  PauliObservable h(1);
  h.add_term(1.0, "Y");
  // |+i> = S H |0>.
  sim::StateVector state(1);
  state.apply_1q(sim::hadamard(), 0);
  state.apply_1q(sim::phase_s(), 0);
  EXPECT_NEAR(h.expectation(state), 1.0, 1e-12);
}

TEST(PauliObservable, ZZOnBellState) {
  PauliObservable h(2);
  h.add_term(1.0, "ZZ");
  sim::StateVector bell(2);
  bell.apply_1q(sim::hadamard(), 0);
  bell.apply_controlled_1q(sim::pauli_x(), {0}, 1);
  EXPECT_NEAR(h.expectation(bell), 1.0, 1e-12);  // correlated
  PauliObservable xx(2);
  xx.add_term(1.0, "XX");
  EXPECT_NEAR(xx.expectation(bell), 1.0, 1e-12);  // Bell is XX eigenstate
}

TEST(PauliObservable, MatrixMatchesExpectation) {
  // Random-ish 2-qubit observable: dense matrix expectation must equal
  // the operator-application expectation on a random state.
  PauliObservable h(2);
  h.add_term(0.7, "XY");
  h.add_term(-1.2, "ZI");
  h.add_term(0.4, "YY");
  const Matrix m = h.to_matrix();
  EXPECT_TRUE(m.approx_equal(m.dagger()));  // Hermitian

  sim::StateVector state(2);
  state.apply_1q(sim::ry(0.8), 0);
  state.apply_1q(sim::rz(1.3), 0);
  state.apply_1q(sim::ry(-0.5), 1);
  state.apply_controlled_1q(sim::pauli_x(), {0}, 1);
  // <psi|M|psi> by direct matrix application.
  cplx num(0, 0);
  for (std::size_t r = 0; r < 4; ++r) {
    cplx hv(0, 0);
    for (std::size_t c = 0; c < 4; ++c) hv += m(r, c) * state.amplitude(c);
    num += std::conj(state.amplitude(r)) * hv;
  }
  EXPECT_NEAR(h.expectation(state), num.real(), 1e-9);
}

TEST(PauliObservable, TermEigenvalueParity) {
  PauliObservable h(3);
  h.add_term(1.0, "ZIZ");
  EXPECT_EQ(h.term_eigenvalue(0, 0b000), 1.0);
  EXPECT_EQ(h.term_eigenvalue(0, 0b001), -1.0);
  EXPECT_EQ(h.term_eigenvalue(0, 0b010), 1.0);  // middle qubit is I
  EXPECT_EQ(h.term_eigenvalue(0, 0b101), 1.0);
}

TEST(PauliObservable, H2GroundEnergyFromMatrix) {
  const double e0 = ground_energy(h2_hamiltonian().to_matrix());
  // Literature value at equilibrium bond length: about -1.851 Hartree.
  EXPECT_NEAR(e0, -1.851, 0.01);
}

// ------------------------------------------------------------------ VQE ----

TEST(Vqe, AnsatzShapeAndValidation) {
  VqeOptions opts;
  opts.layers = 3;
  Vqe vqe(h2_hamiltonian(), opts);
  EXPECT_EQ(vqe.parameter_count(), 8u);  // (3+1) * 2
  const qasm::Program p =
      vqe.ansatz(std::vector<double>(vqe.parameter_count(), 0.1));
  EXPECT_EQ(p.qubit_count(), 2u);
  EXPECT_THROW(vqe.ansatz({0.1}), std::invalid_argument);
}

TEST(Vqe, EnergyAtZeroParametersIsZZExpectation) {
  // theta = 0: ansatz state is |00>; <H2> on |00> is the sum of diagonal
  // term contributions: -0.4804 + 0.3435 - 0.4347 + 0.5716.
  Vqe vqe(h2_hamiltonian(), VqeOptions{});
  GateAccelerator acc(compiler::Platform::perfect(2));
  const double e =
      vqe.energy(std::vector<double>(vqe.parameter_count(), 0.0), acc);
  EXPECT_NEAR(e, -0.4804 + 0.3435 - 0.4347 + 0.5716, 1e-9);
}

TEST(Vqe, FindsH2GroundState) {
  VqeOptions opts;
  opts.layers = 1;
  opts.optimizer_iterations = 250;
  Vqe vqe(h2_hamiltonian(), opts);
  GateAccelerator acc(compiler::Platform::perfect(2));
  const VqeResult r = vqe.solve(acc);
  const double exact = ground_energy(h2_hamiltonian().to_matrix());
  EXPECT_NEAR(r.energy, exact, 5e-3);
  EXPECT_GT(r.circuit_evaluations, 50u);
}

TEST(Vqe, EnergyMatchesExactExpectation) {
  // The measurement-circuit path must agree with direct operator algebra.
  VqeOptions opts;
  opts.layers = 2;
  Vqe vqe(h2_hamiltonian(), opts);
  GateAccelerator acc(compiler::Platform::perfect(2));
  Rng rng(9);
  std::vector<double> params(vqe.parameter_count());
  for (auto& v : params) v = rng.uniform(-1.5, 1.5);
  const double via_circuits = vqe.energy(params, acc);

  sim::Simulator s(2);
  s.run_once(vqe.ansatz(params));
  const double via_operator =
      h2_hamiltonian().expectation(s.state());
  EXPECT_NEAR(via_circuits, via_operator, 1e-9);
}

TEST(Vqe, IsingChainGroundState) {
  // Transverse-field Ising chain H = -sum Z Z - 0.5 sum X on 3 qubits.
  PauliObservable h(3);
  h.add_term(-1.0, "ZZI");
  h.add_term(-1.0, "IZZ");
  h.add_term(-0.5, "XII");
  h.add_term(-0.5, "IXI");
  h.add_term(-0.5, "IIX");
  VqeOptions opts;
  opts.layers = 2;
  opts.optimizer_iterations = 300;
  Vqe vqe(h, opts);
  GateAccelerator acc(compiler::Platform::perfect(3));
  const VqeResult r = vqe.solve(acc);
  const double exact = ground_energy(h.to_matrix());
  EXPECT_NEAR(r.energy, exact, 0.05);
}

}  // namespace
}  // namespace qs::runtime
