// Unit tests for the cQASM layer: gate metadata, instructions, programs,
// parser and printer (including round-trip properties).
#include <gtest/gtest.h>

#include "qasm/gate_kind.h"
#include "qasm/instruction.h"
#include "qasm/parser.h"
#include "qasm/printer.h"
#include "qasm/program.h"

namespace qs::qasm {
namespace {

// ----------------------------------------------------------- GateKind ----

TEST(GateKind, ArityTable) {
  EXPECT_EQ(gate_arity(GateKind::H), 1u);
  EXPECT_EQ(gate_arity(GateKind::CNOT), 2u);
  EXPECT_EQ(gate_arity(GateKind::Toffoli), 3u);
  EXPECT_EQ(gate_arity(GateKind::MeasureAll), 0u);
}

TEST(GateKind, NameRoundTrip) {
  for (GateKind k : {GateKind::PrepZ, GateKind::X, GateKind::H, GateKind::Rz,
                     GateKind::CNOT, GateKind::CRK, GateKind::Toffoli,
                     GateKind::MeasureAll, GateKind::Swap, GateKind::RZZ}) {
    const auto back = gate_from_name(gate_name(k));
    ASSERT_TRUE(back.has_value()) << gate_name(k);
    EXPECT_EQ(*back, k);
  }
}

TEST(GateKind, UnknownNameIsEmpty) {
  EXPECT_FALSE(gate_from_name("nonsense").has_value());
}

TEST(GateKind, InversePairs) {
  EXPECT_EQ(gate_inverse(GateKind::S), GateKind::Sdag);
  EXPECT_EQ(gate_inverse(GateKind::Sdag), GateKind::S);
  EXPECT_EQ(gate_inverse(GateKind::T), GateKind::Tdag);
  EXPECT_EQ(gate_inverse(GateKind::X90), GateKind::MX90);
  EXPECT_EQ(gate_inverse(GateKind::X), GateKind::X);  // self-inverse
  EXPECT_EQ(gate_inverse(GateKind::CNOT), GateKind::CNOT);
}

TEST(GateKind, Classification) {
  EXPECT_TRUE(gate_is_unitary(GateKind::H));
  EXPECT_FALSE(gate_is_unitary(GateKind::Measure));
  EXPECT_FALSE(gate_is_unitary(GateKind::Barrier));
  EXPECT_TRUE(gate_has_angle(GateKind::Rx));
  EXPECT_FALSE(gate_has_angle(GateKind::X));
  EXPECT_TRUE(gate_has_int_param(GateKind::CRK));
  EXPECT_TRUE(gate_is_two_qubit(GateKind::CZ));
}

// -------------------------------------------------------- Instruction ----

TEST(Instruction, ArityValidation) {
  EXPECT_NO_THROW(Instruction(GateKind::H, {0}));
  EXPECT_THROW(Instruction(GateKind::H, {0, 1}), std::invalid_argument);
  EXPECT_THROW(Instruction(GateKind::CNOT, {0}), std::invalid_argument);
  EXPECT_THROW(Instruction(GateKind::MeasureAll, {0}), std::invalid_argument);
}

TEST(Instruction, DuplicateOperandsRejected) {
  EXPECT_THROW(Instruction(GateKind::CNOT, {3, 3}), std::invalid_argument);
  EXPECT_THROW(Instruction(GateKind::Toffoli, {0, 1, 0}),
               std::invalid_argument);
}

TEST(Instruction, WaitIsVariadic) {
  EXPECT_NO_THROW(Instruction(GateKind::Wait, {0, 1, 2}, 0.0, 5));
  // Bare `wait n` is legal cQASM: it idles the whole register.
  EXPECT_NO_THROW(Instruction(GateKind::Wait, {}, 0.0, 5));
  EXPECT_THROW(Instruction(GateKind::Barrier, {}), std::invalid_argument);
}

TEST(Instruction, ToStringForms) {
  EXPECT_EQ(Instruction(GateKind::H, {0}).to_string(), "h q[0]");
  EXPECT_EQ(Instruction(GateKind::CNOT, {0, 1}).to_string(),
            "cnot q[0], q[1]");
  EXPECT_EQ(Instruction(GateKind::Rx, {2}, 1.5).to_string(), "rx q[2], 1.5");
  EXPECT_EQ(Instruction(GateKind::CRK, {0, 1}, 0.0, 3).to_string(),
            "crk q[0], q[1], 3");
  Instruction cond(GateKind::X, {1});
  cond.set_conditions({0});
  EXPECT_EQ(cond.to_string(), "c-x b[0], q[1]");
}

TEST(Instruction, RemapQubits) {
  Instruction i(GateKind::CNOT, {0, 1});
  i.remap_qubits({5, 3});
  EXPECT_EQ(i.qubits()[0], 5u);
  EXPECT_EQ(i.qubits()[1], 3u);
  EXPECT_THROW(i.remap_qubits({0}), std::out_of_range);
}

TEST(Instruction, SchedulingState) {
  Instruction i(GateKind::X, {0});
  EXPECT_FALSE(i.is_scheduled());
  i.set_cycle(12);
  EXPECT_TRUE(i.is_scheduled());
  EXPECT_EQ(i.cycle(), 12);
}

// ------------------------------------------------------------- Program ----

TEST(Program, CircuitCountsAndDepth) {
  Circuit c("body");
  c.add(Instruction(GateKind::H, {0}));
  c.add(Instruction(GateKind::CNOT, {0, 1}));
  c.add(Instruction(GateKind::Measure, {0}));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gate_count(), 2u);  // measure excluded
  EXPECT_EQ(c.two_qubit_gate_count(), 1u);
  EXPECT_EQ(c.max_qubit_plus_one(), 2u);
  EXPECT_EQ(c.depth(), 3u);  // unscheduled: sequential depth
}

TEST(Program, ScheduledDepthUsesCycles) {
  Circuit c("body");
  Instruction a(GateKind::H, {0});
  a.set_cycle(0);
  Instruction b(GateKind::H, {1});
  b.set_cycle(0);
  c.add(a);
  c.add(b);
  EXPECT_EQ(c.depth(), 1u);
}

TEST(Program, FlattenHonoursIterations) {
  Program p("test", 2);
  Circuit c("loop", 3);
  c.add(Instruction(GateKind::X, {0}));
  p.add_circuit(c);
  EXPECT_EQ(p.flatten().size(), 3u);
  EXPECT_EQ(p.total_instructions(), 3u);
}

TEST(Program, ValidateRejectsOutOfRange) {
  Program p("test", 2);
  Circuit c("bad");
  c.add(Instruction(GateKind::X, {5}));
  p.add_circuit(c);
  EXPECT_THROW(p.validate(), std::out_of_range);
}

// -------------------------------------------------------------- Parser ----

TEST(Parser, MinimalProgram) {
  const Program p = Parser::parse(R"(
version 1.0
qubits 3
h q[0]
cnot q[0], q[1]
measure q[1]
)");
  EXPECT_EQ(p.qubit_count(), 3u);
  ASSERT_EQ(p.circuits().size(), 1u);  // implicit "main"
  EXPECT_EQ(p.circuits()[0].size(), 3u);
  EXPECT_EQ(p.circuits()[0].instructions()[1].kind(), GateKind::CNOT);
}

TEST(Parser, SubcircuitsWithIterations) {
  const Program p = Parser::parse(R"(
version 1.0
qubits 2
.init
prep_z q[0]
.loop(5)
x q[0]
)");
  ASSERT_EQ(p.circuits().size(), 2u);
  EXPECT_EQ(p.circuits()[0].name(), "init");
  EXPECT_EQ(p.circuits()[1].name(), "loop");
  EXPECT_EQ(p.circuits()[1].iterations(), 5u);
  EXPECT_EQ(p.total_instructions(), 6u);
}

TEST(Parser, Bundles) {
  const Program p = Parser::parse(R"(
qubits 2
{ h q[0] | h q[1] }
cnot q[0], q[1]
)");
  const auto& ins = p.circuits()[0].instructions();
  ASSERT_EQ(ins.size(), 3u);
  EXPECT_EQ(ins[0].cycle(), ins[1].cycle());
  EXPECT_GT(ins[2].cycle(), ins[0].cycle());
}

TEST(Parser, AnglesAndParams) {
  const Program p = Parser::parse(R"(
qubits 2
rx q[0], 3.14159
crk q[0], q[1], 2
wait q[0], 10
)");
  const auto& ins = p.circuits()[0].instructions();
  EXPECT_NEAR(ins[0].angle(), 3.14159, 1e-9);
  EXPECT_EQ(ins[1].param_k(), 2);
  EXPECT_EQ(ins[2].param_k(), 10);
}

TEST(Parser, BinaryControlledGate) {
  const Program p = Parser::parse(R"(
qubits 2
measure q[0]
c-x b[0], q[1]
)");
  const auto& instr = p.circuits()[0].instructions()[1];
  EXPECT_TRUE(instr.is_conditional());
  ASSERT_EQ(instr.conditions().size(), 1u);
  EXPECT_EQ(instr.conditions()[0], 0u);
  EXPECT_EQ(instr.kind(), GateKind::X);
}

TEST(Parser, CommentsAndBlankLines) {
  const Program p = Parser::parse(R"(
# full-line comment
qubits 1

x q[0]  # trailing comment
)");
  EXPECT_EQ(p.circuits()[0].size(), 1u);
}

TEST(Parser, Errors) {
  EXPECT_THROW(Parser::parse("x q[0]\n"), ParseError);  // missing qubits
  EXPECT_THROW(Parser::parse("qubits 2\nfrobnicate q[0]\n"), ParseError);
  EXPECT_THROW(Parser::parse("qubits 2\nrx q[0]\n"), ParseError);  // no angle
  EXPECT_THROW(Parser::parse("qubits 2\nh q[5]\n"), std::out_of_range);
  EXPECT_THROW(Parser::parse("qubits 2\nqubits 3\n"), ParseError);
  EXPECT_THROW(Parser::parse("qubits 2\n{ h q[0] |  }\n"), ParseError);
  EXPECT_THROW(Parser::parse("qubits 2\nh q[x]\n"), ParseError);
}

TEST(Parser, ErrorCarriesLineNumber) {
  try {
    Parser::parse("qubits 2\nh q[0]\nbogus q[1]\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

// ------------------------------------------------------------- Printer ----

TEST(Printer, HeaderAndBody) {
  Program p("demo", 2);
  auto& c = p.add_circuit("main");
  c.add(Instruction(GateKind::H, {0}));
  c.add(Instruction(GateKind::CNOT, {0, 1}));
  const std::string text = to_cqasm(p);
  EXPECT_NE(text.find("version 1.0"), std::string::npos);
  EXPECT_NE(text.find("qubits 2"), std::string::npos);
  EXPECT_NE(text.find("h q[0]"), std::string::npos);
  EXPECT_NE(text.find(".main"), std::string::npos);
}

TEST(Printer, BundleNotationForSharedCycles) {
  Program p("demo", 2);
  auto& c = p.add_circuit("main");
  Instruction a(GateKind::H, {0});
  a.set_cycle(0);
  Instruction b(GateKind::H, {1});
  b.set_cycle(0);
  c.add(a);
  c.add(b);
  const std::string text = to_cqasm(p);
  EXPECT_NE(text.find("{ h q[0] | h q[1] }"), std::string::npos);
}

TEST(Printer, RoundTripThroughParser) {
  Program p("roundtrip", 3);
  auto& c = p.add_circuit("k1", 2);
  c.add(Instruction(GateKind::H, {0}));
  c.add(Instruction(GateKind::Rx, {1}, 0.25));
  c.add(Instruction(GateKind::CRK, {0, 2}, 0.0, 4));
  c.add(Instruction(GateKind::Measure, {0}));
  Instruction cond(GateKind::Z, {2});
  cond.set_conditions({0});
  c.add(cond);

  const Program back = Parser::parse(to_cqasm(p));
  EXPECT_EQ(back.qubit_count(), p.qubit_count());
  ASSERT_EQ(back.circuits().size(), 1u);
  EXPECT_EQ(back.circuits()[0].iterations(), 2u);
  const auto& orig = p.circuits()[0].instructions();
  const auto& parsed = back.circuits()[0].instructions();
  ASSERT_EQ(parsed.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i)
    EXPECT_TRUE(parsed[i] == orig[i]) << "instruction " << i;
}

}  // namespace
}  // namespace qs::qasm
