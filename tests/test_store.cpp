// The content-addressed ArtifactStore: key identity, the byte-budgeted
// memory LRU, verified disk loads (truncated / bit-flipped / torn entries
// rejected, recomputed and counted), bit-exact round-trips of final-state
// distributions, and the service-level warm-restart contract — a fresh
// process on the same store directory revives compiled programs and final
// distributions off disk and reproduces byte-identical results.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "compiler/kernel.h"
#include "compiler/platform.h"
#include "runtime/accelerator.h"
#include "service/final_state_cache.h"
#include "service/service.h"
#include "sim/trajectory_analysis.h"
#include "store/artifact_store.h"

namespace qs {
namespace {

using store::ArtifactKey;
using store::ArtifactKind;
using store::ArtifactStore;
using store::Codec;
using store::Outcome;
using store::StoreOptions;
using store::Tier;

/// Scoped temp directory: fresh on entry, removed on exit.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
};

/// Identity codec for std::string payloads, with a controllable resident
/// cost so LRU tests can reason in whole units.
Codec<std::string> string_codec(std::size_t cost = 0) {
  Codec<std::string> codec;
  codec.encode = [](const std::string& v) { return v; };
  codec.decode = [](const std::string& payload) {
    return std::make_shared<const std::string>(payload);
  };
  codec.resident_bytes = [cost](const std::string& v) {
    return cost != 0 ? cost : v.size();
  };
  return codec;
}

std::shared_ptr<const std::string> str_value(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

// ------------------------------------------------------- key identity ----

TEST(ArtifactKey, KindFingerprintAndNameAllSeparateIdentities) {
  const ArtifactKey a = ArtifactKey::compiled(7);
  EXPECT_EQ(a.id(), ArtifactKey::compiled(7).id());
  EXPECT_NE(a.id(), ArtifactKey::compiled(8).id());
  // Same fingerprint, different derivation stage: never aliases.
  EXPECT_NE(a.id(), ArtifactKey::final_state(7).id());
  EXPECT_NE(ArtifactKey::checkpoint("job/a").id(),
            ArtifactKey::checkpoint("job/b").id());
  EXPECT_EQ(ArtifactKey::checkpoint("job/a").id(),
            ArtifactKey::checkpoint("job/a").id());
}

TEST(ArtifactKey, FilenamesAreDeterministicAndFilesystemSafe) {
  const std::string f = ArtifactKey::checkpoint("job/alpha:1").filename();
  EXPECT_EQ(f, ArtifactKey::checkpoint("job/alpha:1").filename());
  for (char c : f)
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                c == '_' || c == '.')
        << "unsafe character '" << c << "' in " << f;
  EXPECT_NE(ArtifactKey::compiled(1).filename(),
            ArtifactKey::final_state(1).filename());
}

// ----------------------------------------------------- memory tier -------

TEST(ArtifactStore, MemoryLruEvictsLeastRecentlyUsed) {
  ArtifactStore store(StoreOptions{/*memory_budget_bytes=*/2, ""});
  const auto codec = string_codec(/*cost=*/1);
  store.put(ArtifactKey::compiled(1), str_value("a"), codec);
  store.put(ArtifactKey::compiled(2), str_value("b"), codec);
  EXPECT_EQ(store.memory_entries(), 2u);

  // Touch 1: 2 becomes LRU and the third insert evicts it.
  EXPECT_NE(store.get(ArtifactKey::compiled(1), codec), nullptr);
  Outcome outcome;
  store.put(ArtifactKey::compiled(3), str_value("c"), codec, &outcome);
  EXPECT_EQ(outcome.evicted, 1u);
  EXPECT_EQ(store.get(ArtifactKey::compiled(2), codec), nullptr);
  EXPECT_NE(store.get(ArtifactKey::compiled(1), codec), nullptr);
  EXPECT_NE(store.get(ArtifactKey::compiled(3), codec), nullptr);
  EXPECT_EQ(store.stats().memory.evictions, 1u);
  EXPECT_LE(store.memory_bytes(), 2u);
}

TEST(ArtifactStore, OversizedValueSkipsMemoryTierObservably) {
  ArtifactStore store(StoreOptions{/*memory_budget_bytes=*/4, ""});
  const auto codec = string_codec(/*cost=*/100);
  Outcome outcome;
  store.put(ArtifactKey::compiled(1), str_value("huge"), codec, &outcome);
  EXPECT_TRUE(outcome.oversized);
  EXPECT_EQ(store.memory_entries(), 0u);
  EXPECT_EQ(store.stats().memory.oversized, 1u);
}

TEST(ArtifactStore, GetOrComputeDerivesOncePerKey) {
  ArtifactStore store;
  const auto codec = string_codec();
  int derived = 0;
  const auto derive = [&derived]() {
    ++derived;
    return std::make_shared<const std::string>("value");
  };
  Outcome first, second;
  EXPECT_EQ(*store.get_or_compute<std::string>(ArtifactKey::compiled(9),
                                               codec, derive, &first),
            "value");
  EXPECT_TRUE(first.derived);
  EXPECT_EQ(*store.get_or_compute<std::string>(ArtifactKey::compiled(9),
                                               codec, derive, &second),
            "value");
  EXPECT_FALSE(second.derived);
  EXPECT_EQ(second.tier, Tier::kMemory);
  EXPECT_EQ(derived, 1);
}

// ------------------------------------------------------- disk tier -------

TEST(ArtifactStore, DiskRoundTripSurvivesMemoryLoss) {
  TempDir dir("qs_store_test_roundtrip");
  ArtifactStore store(StoreOptions{1 << 20, dir.str()});
  const auto codec = string_codec();
  store.put(ArtifactKey::compiled(5), str_value("persisted"), codec);
  ASSERT_TRUE(
      std::filesystem::exists(store.path_for(ArtifactKey::compiled(5))));

  store.clear_memory();  // simulated restart
  Outcome outcome;
  const auto value = store.get(ArtifactKey::compiled(5), codec, &outcome);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "persisted");
  EXPECT_EQ(outcome.tier, Tier::kDisk);
  EXPECT_TRUE(outcome.memory_missed);
  // The verified disk load repopulated the memory tier.
  Outcome again;
  store.get(ArtifactKey::compiled(5), codec, &again);
  EXPECT_EQ(again.tier, Tier::kMemory);
}

TEST(ArtifactStore, SecondStoreInstanceRevivesFirstInstancesWrites) {
  TempDir dir("qs_store_test_second_instance");
  const auto codec = string_codec();
  {
    ArtifactStore first(StoreOptions{1 << 20, dir.str()});
    first.put(ArtifactKey::final_state(77), str_value("cross-process"),
              codec);
  }
  ArtifactStore second(StoreOptions{1 << 20, dir.str()});
  Outcome outcome;
  const auto value =
      second.get(ArtifactKey::final_state(77), codec, &outcome);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "cross-process");
  EXPECT_EQ(outcome.tier, Tier::kDisk);
}

// ----------------------------------------------- corruption rejection ----

/// Corrupts the on-disk entry for `key` with `mutate(bytes)`, then proves
/// the verified load rejects it, deletes the file, counts it corrupt and
/// recomputes through get_or_compute.
void expect_corruption_rejected(
    const std::string& dirname,
    const std::function<void(std::string*)>& mutate) {
  TempDir dir(dirname);
  ArtifactStore store(StoreOptions{1 << 20, dir.str()});
  const auto codec = string_codec();
  const ArtifactKey key = ArtifactKey::compiled(13);
  store.put(key, str_value("good bytes"), codec);
  const std::string path = store.path_for(key);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  mutate(&bytes);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  store.clear_memory();
  Outcome outcome;
  EXPECT_EQ(store.get(key, codec, &outcome), nullptr);
  EXPECT_TRUE(outcome.corrupt);
  EXPECT_TRUE(outcome.disk_missed);
  EXPECT_EQ(store.stats().corrupt, 1u);
  // The poisoned entry is deleted, not left to fail every future load ...
  EXPECT_FALSE(std::filesystem::exists(path));

  // ... and the deriver transparently recomputes and rewrites it.
  store.clear_memory();
  int derived = 0;
  const auto value = store.get_or_compute<std::string>(
      key, codec, [&derived]() {
        ++derived;
        return std::make_shared<const std::string>("recomputed");
      });
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "recomputed");
  EXPECT_EQ(derived, 1);
  store.clear_memory();
  const auto revived = store.get(key, codec);
  ASSERT_NE(revived, nullptr);
  EXPECT_EQ(*revived, "recomputed");
}

TEST(ArtifactStoreCorruption, TruncatedEntryRejected) {
  expect_corruption_rejected("qs_store_test_truncated", [](std::string* b) {
    b->resize(b->size() - 5);
  });
}

TEST(ArtifactStoreCorruption, BitFlippedPayloadRejected) {
  expect_corruption_rejected("qs_store_test_bitflip", [](std::string* b) {
    b->back() = static_cast<char>(b->back() ^ 0x40);
  });
}

TEST(ArtifactStoreCorruption, TornWriteRejected) {
  // A torn write: the header of a new entry without its payload (as if
  // the process died mid-write without the tmp+rename discipline).
  expect_corruption_rejected("qs_store_test_torn", [](std::string* b) {
    *b = b->substr(0, 20);
  });
}

TEST(ArtifactStoreCorruption, WrongKindHeaderRejected) {
  TempDir dir("qs_store_test_wrong_kind");
  ArtifactStore store(StoreOptions{1 << 20, dir.str()});
  const auto codec = string_codec();
  store.put(ArtifactKey::compiled(21), str_value("payload"), codec);
  // Copy the compiled entry's bytes into the final-state slot of the same
  // fingerprint: the header binds kind + id, so the load must reject it.
  const std::string src = store.path_for(ArtifactKey::compiled(21));
  const std::string dst = store.path_for(ArtifactKey::final_state(21));
  std::filesystem::copy_file(src, dst);
  store.clear_memory();
  Outcome outcome;
  EXPECT_EQ(store.get(ArtifactKey::final_state(21), codec, &outcome),
            nullptr);
  EXPECT_TRUE(outcome.corrupt);
}

// ------------------------------------------------ bit-exact doubles ------

TEST(FinalStateCacheStore, DistributionRoundTripsBitExactly) {
  TempDir dir("qs_store_test_bit_exact");
  auto shared =
      std::make_shared<ArtifactStore>(StoreOptions{1 << 20, dir.str()});
  service::FinalStateCache cache(shared);

  // Doubles chosen to break decimal round-tripping: non-terminating
  // binary fractions, a subnormal, and values differing in the last ulp.
  auto dist = std::make_shared<sim::FinalDistribution>();
  dist->qubit_count = 2;
  dist->measured_mask = 3;
  dist->gates = 5;
  dist->cum = {0.1, 1.0 / 3.0, 0.5 + 5e-324, 1.0};
  cache.insert(42, dist);

  shared->clear_memory();  // force the disk path
  const auto loaded = cache.lookup(42);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->cum.size(), dist->cum.size());
  EXPECT_EQ(std::memcmp(loaded->cum.data(), dist->cum.data(),
                        dist->cum.size() * sizeof(double)),
            0);
  EXPECT_EQ(loaded->qubit_count, dist->qubit_count);
  EXPECT_EQ(loaded->measured_mask, dist->measured_mask);
  EXPECT_EQ(loaded->gates, dist->gates);
}

// ------------------------------------------- service warm restart --------

qasm::Program ghz_program(std::size_t n) {
  compiler::Program p("ghz", n);
  p.add_kernel("main").ghz(n).measure_all();
  return p.to_qasm();
}

runtime::GateAccelerator perfect_gate(std::size_t qubits) {
  return runtime::GateAccelerator(compiler::Platform::perfect(qubits));
}

TEST(ServiceWarmRestart, FreshServiceOnSameStoreDirSkipsCompileAndEvolve) {
  TempDir dir("qs_store_test_warm_restart");
  const auto request = [] {
    return runtime::RunRequest::gate(ghz_program(4), 256, /*seed=*/9);
  };

  Histogram cold_counts;
  {
    service::ServiceOptions opts;
    opts.workers = 1;
    opts.store_dir = dir.str();
    service::QuantumService svc(perfect_gate(4), opts);
    const runtime::RunResult cold = svc.submit(request()).get();
    ASSERT_TRUE(cold.ok()) << cold.status.to_string();
    EXPECT_FALSE(cold.stats.compile_cache_hit);
    cold_counts = cold.histogram;
  }  // service (and its memory tier) dies; the disk tier survives

  service::ServiceOptions opts;
  opts.workers = 1;
  opts.store_dir = dir.str();
  service::QuantumService svc(perfect_gate(4), opts);
  const runtime::RunResult warm = svc.submit(request()).get();
  ASSERT_TRUE(warm.ok()) << warm.status.to_string();

  // The repeat submission in a "fresh process" skipped both the compile
  // and the evolution: both artifacts came off the disk tier ...
  EXPECT_TRUE(warm.stats.compile_cache_hit);
  EXPECT_EQ(warm.stats.compile_cache_tier, runtime::CacheTier::kDisk);
  EXPECT_TRUE(warm.stats.final_state_cache_hit);
  EXPECT_EQ(warm.stats.final_state_cache_tier, runtime::CacheTier::kDisk);
  EXPECT_GE(
      svc.metrics().counter("qs_store_hits_total{tier=\"disk\"}").value(),
      2u);

  // ... and the revived artifacts reproduce the cold run byte-for-byte.
  EXPECT_EQ(warm.histogram.counts(), cold_counts.counts());
}

TEST(ServiceWarmRestart, SharedStoreInstanceWarmsSiblingService) {
  service::ServiceOptions opts;
  opts.workers = 1;
  service::QuantumService first(perfect_gate(3), opts);
  const runtime::RunResult cold =
      first.submit(runtime::RunRequest::gate(ghz_program(3), 64, 3)).get();
  ASSERT_TRUE(cold.ok());

  // A sibling service handed the same store instance starts warm.
  service::ServiceOptions shared_opts;
  shared_opts.workers = 1;
  shared_opts.artifact_store = first.store_ptr();
  service::QuantumService second(perfect_gate(3), shared_opts);
  const runtime::RunResult warm =
      second.submit(runtime::RunRequest::gate(ghz_program(3), 64, 3)).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.stats.compile_cache_hit);
  EXPECT_EQ(warm.stats.compile_cache_tier, runtime::CacheTier::kMemory);
  EXPECT_EQ(warm.histogram.counts(), cold.histogram.counts());
}

TEST(ServiceWarmRestart, DiskStoreAutoWiresCheckpointResume) {
  // A store_dir service gets checkpoint/resume for free: the checkpoint
  // lands in the same directory through the same verified-write path.
  TempDir dir("qs_store_test_auto_ckpt");
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.shard_shots = 64;
  opts.max_shard_retries = 0;
  opts.store_dir = dir.str();
  service::QuantumService svc(perfect_gate(3), opts);
  ASSERT_NE(svc.options().checkpoint_store, nullptr);

  auto plan = std::make_shared<runtime::FaultPlan>();
  plan->shard_faults.push_back({/*shard_index=*/3, /*failures=*/1000});
  runtime::RunRequest failing =
      runtime::RunRequest::gate(ghz_program(3), 256, /*seed=*/5);
  failing.checkpoint_key = "warm-ckpt";
  failing.faults = plan;
  const runtime::RunResult killed = svc.submit(std::move(failing)).get();
  ASSERT_FALSE(killed.status.ok());

  runtime::RunRequest resume =
      runtime::RunRequest::gate(ghz_program(3), 256, /*seed=*/5);
  resume.checkpoint_key = "warm-ckpt";
  const runtime::RunResult resumed = svc.submit(std::move(resume)).get();
  ASSERT_TRUE(resumed.ok()) << resumed.status.to_string();
  EXPECT_EQ(resumed.stats.shards_resumed, 3u);
  EXPECT_EQ(resumed.stats.shards_executed, 1u);
}

}  // namespace
}  // namespace qs
