// Unit tests for the eQASM micro-architecture: ISA, assembler, microcode,
// ADI timing queues and the cycle-level executor.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "microarch/adi.h"
#include "microarch/assembler.h"
#include "microarch/eqasm.h"
#include "microarch/executor.h"
#include "microarch/microcode.h"

namespace qs::microarch {
namespace {

using compiler::CompileOptions;
using compiler::Compiler;
using compiler::Platform;
using qasm::GateKind;

/// Compiles an OpenQL-style program and assembles to eQASM for `platform`.
EqProgram build_eqasm(const compiler::Program& program,
                      const Platform& platform,
                      AssembleStats* stats = nullptr) {
  Compiler c(platform);
  const auto compiled = c.compile(program);
  Assembler assembler(platform);
  return assembler.assemble(compiled.program, stats);
}

// --------------------------------------------------------------- eQASM ----

TEST(Eqasm, InstructionTextForms) {
  EqInstruction ldi;
  ldi.op = EqOpcode::LDI;
  ldi.rd = 3;
  ldi.imm = 42;
  EXPECT_EQ(ldi.to_string(), "LDI r3, 42");

  EqInstruction smis;
  smis.op = EqOpcode::SMIS;
  smis.rd = 1;
  smis.mask_qubits = {0, 2, 5};
  EXPECT_EQ(smis.to_string(), "SMIS s1, {0, 2, 5}");

  EqInstruction bundle;
  bundle.op = EqOpcode::BUNDLE;
  bundle.pre_interval = 2;
  QOp op;
  op.name = "x90";
  op.mask_reg = 1;
  bundle.qops.push_back(op);
  EXPECT_EQ(bundle.to_string(), "2, x90 s1");
}

TEST(Eqasm, LabelsResolve) {
  EqProgram p("test");
  EqInstruction i;
  i.op = EqOpcode::LDI;
  p.add(i);
  p.define_label("loop");
  p.add(i);
  EXPECT_EQ(p.label_target("loop"), 1u);
  EXPECT_TRUE(p.has_label("loop"));
  EXPECT_FALSE(p.has_label("nope"));
  EXPECT_THROW(p.label_target("nope"), std::out_of_range);
  EXPECT_THROW(p.define_label("loop"), std::invalid_argument);
}

TEST(Eqasm, ListingContainsLabels) {
  EqProgram p("test");
  p.define_label("start");
  EqInstruction stop;
  stop.op = EqOpcode::STOP;
  p.add(stop);
  const std::string text = p.to_string();
  EXPECT_NE(text.find("start:"), std::string::npos);
  EXPECT_NE(text.find("STOP"), std::string::npos);
}

// ----------------------------------------------------------- Microcode ----

TEST(Microcode, TableFromPlatform) {
  const Platform platform = Platform::superconducting17();
  const MicrocodeTable table = MicrocodeTable::for_platform(platform);
  EXPECT_TRUE(table.supports("x90"));
  EXPECT_TRUE(table.supports("cz"));
  EXPECT_TRUE(table.supports("measure"));
  EXPECT_FALSE(table.supports("toffoli"));  // not primitive on transmon

  EXPECT_EQ(table.entry("x90").ops[0].channel, ChannelKind::Microwave);
  EXPECT_EQ(table.entry("x90").ops[0].duration_ns,
            platform.durations.single_qubit);
  EXPECT_EQ(table.entry("cz").ops[0].channel, ChannelKind::Flux);
  EXPECT_EQ(table.entry("measure").ops[0].channel, ChannelKind::Readout);
  EXPECT_TRUE(table.entry("wait").ops.empty());  // pseudo-op: no pulses
}

TEST(Microcode, RetargetingChangesDurationsOnly) {
  const MicrocodeTable sc =
      MicrocodeTable::for_platform(Platform::superconducting17());
  const MicrocodeTable spin =
      MicrocodeTable::for_platform(Platform::semiconducting_spin(4));
  // Same operation vocabulary, different pulse durations: the paper's
  // config-only retargeting.
  EXPECT_EQ(sc.size(), spin.size());
  EXPECT_LT(sc.entry("x90").ops[0].duration_ns,
            spin.entry("x90").ops[0].duration_ns);
}

TEST(Microcode, UnknownOpThrows) {
  MicrocodeTable t;
  EXPECT_THROW(t.entry("zap"), std::out_of_range);
}

// ----------------------------------------------------------------- ADI ----

TEST(Adi, ChannelLayout) {
  AnalogDigitalInterface adi(4);
  EXPECT_EQ(adi.channel_count(), 12u);
  EXPECT_EQ(adi.channel_of(0, ChannelKind::Microwave), 0u);
  EXPECT_EQ(adi.channel_of(0, ChannelKind::Flux), 4u);
  EXPECT_EQ(adi.channel_of(3, ChannelKind::Readout), 11u);
  EXPECT_THROW(adi.channel_of(9, ChannelKind::Flux), std::out_of_range);
}

TEST(Adi, SerialisesBusyChannel) {
  AnalogDigitalInterface adi(2);
  const NanoSec s1 = adi.emit(0, ChannelKind::Microwave, 1, 100, 20, "x90");
  EXPECT_EQ(s1, 100u);
  // Second pulse requested during the first: delayed to 120.
  const NanoSec s2 = adi.emit(0, ChannelKind::Microwave, 2, 110, 20, "y90");
  EXPECT_EQ(s2, 120u);
  EXPECT_EQ(adi.delayed_pulses(), 1u);
  // Different qubit: no conflict.
  const NanoSec s3 = adi.emit(1, ChannelKind::Microwave, 3, 110, 20, "x90");
  EXPECT_EQ(s3, 110u);
  EXPECT_EQ(adi.horizon(), 140u);
  EXPECT_EQ(adi.pulse_count(), 3u);
}

TEST(Adi, ClearResets) {
  AnalogDigitalInterface adi(1);
  adi.emit(0, ChannelKind::Readout, 1, 0, 300, "measure");
  adi.clear();
  EXPECT_EQ(adi.pulse_count(), 0u);
  EXPECT_EQ(adi.horizon(), 0u);
}

// ----------------------------------------------------------- Assembler ----

TEST(Assembler, BellProgramStructure) {
  compiler::Program p("bell", 2);
  p.add_kernel("main").h(0).cnot(0, 1).measure_all();
  AssembleStats stats;
  const Platform platform = Platform::superconducting17();
  const EqProgram eq = build_eqasm(p, platform, &stats);
  EXPECT_GT(stats.bundles, 0u);
  EXPECT_GT(stats.qops, 0u);
  EXPECT_GT(stats.mask_registers_used, 0u);
  // Last instruction is STOP.
  EXPECT_EQ(eq.instructions().back().op, EqOpcode::STOP);
  // At least one SMIS before the first bundle.
  bool saw_smis_first = false;
  for (const auto& i : eq.instructions()) {
    if (i.op == EqOpcode::SMIS) {
      saw_smis_first = true;
      break;
    }
    if (i.op == EqOpcode::BUNDLE) break;
  }
  EXPECT_TRUE(saw_smis_first);
}

TEST(Assembler, ParallelGatesShareBundle) {
  compiler::Program p("par", 3);
  p.add_kernel("main").x90(0).x90(1).x90(2);
  const Platform platform = Platform::superconducting17();
  const EqProgram eq = build_eqasm(p, platform);
  // One bundle with a single x90 qop addressing three qubits.
  for (const auto& i : eq.instructions()) {
    if (i.op == EqOpcode::BUNDLE) {
      ASSERT_EQ(i.qops.size(), 1u);
      EXPECT_EQ(i.qops[0].qubits.size(), 3u);
      return;
    }
  }
  FAIL() << "no bundle found";
}

TEST(Assembler, NonPrimitiveGateRejected) {
  qasm::Program raw("bad", 3);
  auto& c = raw.add_circuit("main");
  c.add(qasm::Instruction(GateKind::Toffoli, {0, 1, 2}));
  const Platform platform = Platform::superconducting17();
  Assembler assembler(platform);
  EXPECT_THROW(assembler.assemble(raw), std::runtime_error);
}

TEST(Assembler, MaskRegisterReuse) {
  compiler::Program p("reuse", 1);
  auto& k = p.add_kernel("main");
  // Same single-qubit mask {0} used repeatedly: one SMIS suffices.
  k.x90(0).x90(0).x90(0).x90(0);
  AssembleStats stats;
  const Platform platform = Platform::superconducting17();
  const EqProgram eq = build_eqasm(p, platform, &stats);
  std::size_t smis_count = 0;
  for (const auto& i : eq.instructions())
    if (i.op == EqOpcode::SMIS) ++smis_count;
  EXPECT_EQ(smis_count, 1u);
}

TEST(Assembler, ConditionalGateEmitsBranch) {
  compiler::Program p("cond", 2);
  auto& k = p.add_kernel("main");
  k.measure(0);
  k.x90(1).controlled_by({0});
  const Platform platform = Platform::superconducting17();
  const EqProgram eq = build_eqasm(p, platform);
  bool saw_fmr = false, saw_cmp = false, saw_br = false;
  for (const auto& i : eq.instructions()) {
    saw_fmr |= i.op == EqOpcode::FMR;
    saw_cmp |= i.op == EqOpcode::CMP;
    saw_br |= i.op == EqOpcode::BR;
  }
  EXPECT_TRUE(saw_fmr);
  EXPECT_TRUE(saw_cmp);
  EXPECT_TRUE(saw_br);
}

// ------------------------------------------------------------ Executor ----

TEST(Executor, BellStateEndToEnd) {
  compiler::Program p("bell", 2);
  p.add_kernel("main").h(0).cnot(0, 1).measure_all();
  Platform platform = Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();  // exact statistics
  const EqProgram eq = build_eqasm(p, platform);
  Executor executor(platform, 5);
  const Histogram hist = executor.run_shots(eq, 400);
  double correlated = 0.0;
  for (const auto& [bits, count] : hist.counts()) {
    if (bits.substr(0, 2) == "00" || bits.substr(0, 2) == "11")
      correlated += static_cast<double>(count);
  }
  EXPECT_NEAR(correlated / 400.0, 1.0, 1e-9);
}

TEST(Executor, PulsesReachAdi) {
  compiler::Program p("pulse", 2);
  p.add_kernel("main").x90(0).cz(0, 2 - 1).measure(0);
  Platform platform = Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  const EqProgram eq = build_eqasm(p, platform);
  Executor executor(platform);
  const ExecutionResult r = executor.run(eq);
  // x90 -> 1 microwave pulse; cz -> 2 flux pulses; measure -> 1 readout.
  EXPECT_EQ(r.stats.pulses_emitted, 4u);
  EXPECT_EQ(r.stats.measurements, 1u);
  EXPECT_GT(r.stats.quantum_time_ns, 0u);
  // Readout pulse present on qubit 0's readout channel.
  bool saw_readout = false;
  for (const auto& e : executor.adi().events())
    if (e.kind == ChannelKind::Readout && e.qubit == 0) saw_readout = true;
  EXPECT_TRUE(saw_readout);
}

TEST(Executor, TimingFollowsSchedule) {
  // Two sequential x90 on the same qubit: second pulse starts exactly one
  // cycle (20ns) after the first (1-cycle gate duration).
  compiler::Program p("timing", 1);
  p.add_kernel("main").x90(0).y90(0);
  Platform platform = Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  const EqProgram eq = build_eqasm(p, platform);
  Executor executor(platform);
  executor.run(eq);
  const auto& events = executor.adi().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].start_ns - events[0].start_ns, 20u);
}

TEST(Executor, ConditionalFeedbackLoop) {
  // x q0; measure q0; c-x90 b[0], q1 twice (X90 X90 = X up to phase):
  // q1 must measure 1.
  compiler::Program p("feedback", 2);
  auto& k = p.add_kernel("main");
  // x as two x90 (native).
  k.x90(0).x90(0);
  k.measure(0);
  k.x90(1).controlled_by({0});
  k.x90(1).controlled_by({0});
  k.measure(1);
  Platform platform = Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  const EqProgram eq = build_eqasm(p, platform);
  Executor executor(platform);
  const ExecutionResult r = executor.run(eq);
  EXPECT_EQ(r.bits[0], 1);
  EXPECT_EQ(r.bits[1], 1);
}

TEST(Executor, ConditionalSkippedWhenBitZero) {
  compiler::Program p("skip", 2);
  auto& k = p.add_kernel("main");
  k.measure(0);  // reads 0
  k.x90(1).controlled_by({0});
  k.x90(1).controlled_by({0});
  k.measure(1);
  Platform platform = Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  const EqProgram eq = build_eqasm(p, platform);
  Executor executor(platform);
  const ExecutionResult r = executor.run(eq);
  EXPECT_EQ(r.bits[0], 0);
  EXPECT_EQ(r.bits[1], 0);
}

TEST(Executor, ClassicalInstructions) {
  // Hand-written classical program: r1 = 5; r2 = 7; r3 = r1 + r2;
  // branch over an LDI that would clobber r3.
  EqProgram p("classic");
  auto ldi = [](int rd, std::int64_t imm) {
    EqInstruction i;
    i.op = EqOpcode::LDI;
    i.rd = rd;
    i.imm = imm;
    return i;
  };
  p.add(ldi(1, 5));
  p.add(ldi(2, 7));
  EqInstruction add;
  add.op = EqOpcode::ADD;
  add.rd = 3;
  add.rs = 1;
  add.rt = 2;
  p.add(add);
  EqInstruction cmp;
  cmp.op = EqOpcode::CMP;
  cmp.rs = 1;
  cmp.rt = 2;
  p.add(cmp);
  EqInstruction br;
  br.op = EqOpcode::BR;
  br.cond = BranchCond::LT;  // 5 < 7: taken
  br.label = "end";
  p.add(br);
  p.add(ldi(3, 0));  // skipped
  p.define_label("end");
  EqInstruction stop;
  stop.op = EqOpcode::STOP;
  p.add(stop);

  const Platform platform = Platform::superconducting17();
  Executor executor(platform);
  const ExecutionResult r = executor.run(p);
  EXPECT_EQ(r.stats.classical_instructions, 6u);  // LDI at 5 skipped
}

TEST(Executor, InfiniteLoopGuard) {
  EqProgram p("loop");
  p.define_label("top");
  EqInstruction br;
  br.op = EqOpcode::BR;
  br.cond = BranchCond::Always;
  br.label = "top";
  p.add(br);
  const Platform platform = Platform::superconducting17();
  Executor executor(platform);
  executor.set_instruction_budget(1000);
  EXPECT_THROW(executor.run(p), std::runtime_error);
}

TEST(Executor, MissingStopThrows) {
  EqProgram p("nostop");
  EqInstruction ldi;
  ldi.op = EqOpcode::LDI;
  p.add(ldi);
  const Platform platform = Platform::superconducting17();
  Executor executor(platform);
  EXPECT_THROW(executor.run(p), std::runtime_error);
}

TEST(Executor, QwaitAdvancesTime) {
  EqProgram p("qwait");
  EqInstruction qw;
  qw.op = EqOpcode::QWAIT;
  qw.imm = 10;
  p.add(qw);
  EqInstruction smis;
  smis.op = EqOpcode::SMIS;
  smis.rd = 0;
  smis.mask_qubits = {0};
  p.add(smis);
  EqInstruction bundle;
  bundle.op = EqOpcode::BUNDLE;
  bundle.pre_interval = 1;
  QOp op;
  op.name = "x90";
  op.kind = GateKind::X90;
  op.mask_reg = 0;
  op.qubits = {0};
  bundle.qops.push_back(op);
  p.add(bundle);
  EqInstruction stop;
  stop.op = EqOpcode::STOP;
  p.add(stop);

  Platform platform = Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  Executor executor(platform);
  executor.run(p);
  // Pulse starts at (10 + 1 pre-interval) * 20ns.
  ASSERT_EQ(executor.adi().events().size(), 1u);
  EXPECT_EQ(executor.adi().events()[0].start_ns, 220u);
}

TEST(Executor, RetargetToSemiconductingPlatform) {
  // The same OpenQL program runs on the spin-qubit platform with slower
  // pulses — config-only retargeting end to end.
  compiler::Program p("retarget", 2);
  p.add_kernel("main").h(0).cnot(0, 1).measure_all();
  Platform platform = Platform::semiconducting_spin(4);
  platform.qubit_model = sim::QubitModel::perfect();
  const EqProgram eq = build_eqasm(p, platform);
  Executor executor(platform, 3);
  const Histogram hist = executor.run_shots(eq, 200);
  double correlated = 0.0;
  for (const auto& [bits, count] : hist.counts())
    if (bits.substr(0, 2) == "00" || bits.substr(0, 2) == "11")
      correlated += static_cast<double>(count);
  EXPECT_NEAR(correlated / 200.0, 1.0, 1e-9);
  // Spin pulses are 100ns, not 20ns.
  bool saw_long_pulse = false;
  for (const auto& e : executor.adi().events())
    if (e.kind == ChannelKind::Microwave && e.duration_ns == 100u)
      saw_long_pulse = true;
  EXPECT_TRUE(saw_long_pulse);
}

}  // namespace
}  // namespace qs::microarch

// ------------------------------------------------- eQASM text parser ----

#include "microarch/eqasm_parser.h"

namespace qs::microarch {
namespace {

TEST(EqasmParser, RoundTripBellProgram) {
  compiler::Program p("bell", 2);
  p.add_kernel("main").h(0).cnot(0, 1).measure_all();
  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  const EqProgram eq = build_eqasm(p, platform);
  const EqProgram parsed = parse_eqasm(eq.to_string());
  // Text fixed point.
  EXPECT_EQ(parsed.to_string(), eq.to_string());
  // Behavioural equivalence through the executor.
  Executor direct(platform, 9);
  Executor via_text(platform, 9);
  const Histogram a = direct.run_shots(eq, 200);
  const Histogram b = via_text.run_shots(parsed, 200);
  EXPECT_EQ(a.counts(), b.counts());
}

TEST(EqasmParser, RoundTripConditionalProgram) {
  compiler::Program p("cond", 2);
  auto& k = p.add_kernel("main");
  k.x90(0).x90(0);
  k.measure(0);
  k.x90(1).controlled_by({0});
  k.x90(1).controlled_by({0});
  k.measure(1);
  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  const EqProgram eq = build_eqasm(p, platform);
  const EqProgram parsed = parse_eqasm(eq.to_string());
  Executor executor(platform);
  const ExecutionResult r = executor.run(parsed);
  EXPECT_EQ(r.bits[0], 1);
  EXPECT_EQ(r.bits[1], 1);
}

TEST(EqasmParser, RoundTripParameterisedGates) {
  compiler::Program p("params", 2);
  p.add_kernel("main").rz(0, 1.234567890123).rz(1, -0.5).cz(0, 1);
  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  const EqProgram eq = build_eqasm(p, platform);
  const EqProgram parsed = parse_eqasm(eq.to_string());
  bool found_angle = false;
  for (const auto& i : parsed.instructions())
    if (i.op == EqOpcode::BUNDLE)
      for (const auto& qop : i.qops)
        if (qop.kind == qasm::GateKind::Rz && qop.mask_reg >= 0) {
          found_angle = true;
        }
  EXPECT_TRUE(found_angle);
  EXPECT_EQ(parsed.to_string(), eq.to_string());
}

TEST(EqasmParser, HandwrittenProgram) {
  const EqProgram p = parse_eqasm(R"(# eQASM program: hand
    LDI r1, 3
    LDI r2, 3
    CMP r1, r2
    BR ne, end
    SMIS s0, {0}
    1, x90 s0
    1, x90 s0
end:
    STOP
)");
  EXPECT_TRUE(p.has_label("end"));
  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  Executor executor(platform);
  executor.run(p);
  // Two x90 = X: qubit 0 ends in |1>.
  EXPECT_NEAR(executor.backend().state().prob_one(0), 1.0, 1e-9);
}

TEST(EqasmParser, Errors) {
  EXPECT_THROW(parse_eqasm("FROB r1, 2\n"), EqasmParseError);
  EXPECT_THROW(parse_eqasm("LDI r1\n"), EqasmParseError);
  EXPECT_THROW(parse_eqasm("BR sometimes, x\n"), EqasmParseError);
  EXPECT_THROW(parse_eqasm("1, zap s0\n"), EqasmParseError);
  EXPECT_THROW(parse_eqasm("1, rz s0\n"), EqasmParseError);   // missing angle
  EXPECT_THROW(parse_eqasm("SMIS s0, {0\n"), EqasmParseError);
}

}  // namespace
}  // namespace qs::microarch
