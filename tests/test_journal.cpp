// Tests for the crash-durable job journal and the exactly-once layer on
// top of it: record codec round-trips, replay across journal reopens,
// torn-tail truncation, compaction retention, the service-level crash
// matrix (a simulated kill at every injection point followed by a restart
// over the same store_dir must finish every admitted job exactly once with
// a byte-identical histogram), duplicate idempotency_key semantics
// (attach / served stored result / fingerprint mismatch), disk-tier
// degradation after repeated write failures, and the gateway's protocol-v3
// idempotency key with client-side reconnect + safe resubmission.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "compiler/kernel.h"
#include "compiler/platform.h"
#include "gateway/client.h"
#include "gateway/server.h"
#include "qasm/printer.h"
#include "runtime/accelerator.h"
#include "runtime/run_api.h"
#include "service/journal.h"
#include "service/service.h"
#include "store/artifact_store.h"

namespace qs::service {
namespace {

using namespace std::chrono_literals;

using runtime::CrashPoint;
using runtime::FaultPlan;
using runtime::RunRequest;
using runtime::RunResult;

qasm::Program ghz_program(std::size_t n) {
  compiler::Program p("ghz", n);
  p.add_kernel("main").ghz(n).measure_all();
  return p.to_qasm();
}

runtime::GateAccelerator perfect_gate(std::size_t qubits) {
  return runtime::GateAccelerator(compiler::Platform::perfect(qubits));
}

/// Scoped temp directory: fresh on entry, removed on exit.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
};

/// Small shards so a 64-shot job spans 4 of them (the mid-shard and
/// pre-complete crash points need multi-shard jobs to mean anything).
ServiceOptions base_options(const std::string& store_dir) {
  ServiceOptions so;
  so.workers = 2;
  so.shard_shots = 16;
  so.store_dir = store_dir;
  so.retry_backoff.initial = std::chrono::microseconds(1);
  so.retry_backoff.cap = std::chrono::microseconds(10);
  return so;
}

// ---------------------------------------------------------- codecs ----

TEST(JournalCodec, GateRequestRoundTripPreservesIdentity) {
  RunRequest req = RunRequest::gate(ghz_program(3), 96, /*seed=*/7);
  req.idempotency_key = "key-1";
  req.checkpoint_key = "qsj-42";
  req.tenant = "tenant-a";
  req.priority = 2;
  req.tag = "exp";

  RunRequest back;
  ASSERT_TRUE(JobJournal::decode_request(JobJournal::encode_request(req),
                                         &back));
  EXPECT_EQ(back.shots, 96u);
  EXPECT_EQ(back.seed, 7u);
  EXPECT_EQ(back.priority, 2);
  EXPECT_EQ(back.tag, "exp");
  EXPECT_EQ(back.tenant, "tenant-a");
  EXPECT_EQ(back.checkpoint_key, "qsj-42");
  EXPECT_EQ(back.idempotency_key, "key-1");
  // Programs are journalled as canonical cQASM text, exactly what the
  // gateway would send — replayed jobs parse at dispatch like live ones.
  ASSERT_TRUE(back.program_text.has_value());
  EXPECT_EQ(*back.program_text, qasm::to_cqasm(ghz_program(3)));

  RunRequest junk;
  EXPECT_FALSE(JobJournal::decode_request("definitely not a record", &junk));
}

TEST(JournalCodec, ResultRoundTripPreservesHistogramAndStatus) {
  RunResult result;
  result.status = Status::Ok();
  result.histogram.add("010", 30);
  result.histogram.add("101", 70);
  result.stats.shards = 4;

  RunResult back;
  ASSERT_TRUE(
      JobJournal::decode_result(JobJournal::encode_result(result), &back));
  EXPECT_TRUE(back.status.ok());
  EXPECT_EQ(back.histogram.counts(), result.histogram.counts());

  RunResult failed;
  failed.status = Status::DeadlineExceeded("too slow");
  ASSERT_TRUE(
      JobJournal::decode_result(JobJournal::encode_result(failed), &back));
  EXPECT_EQ(back.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(back.status.message(), "too slow");
}

// ------------------------------------------------------ journal file ----

TEST(JournalFile, ReplaySeesLifecycleAcrossReopens) {
  TempDir dir("qs_journal_test_replay");
  std::filesystem::create_directories(dir.path);
  RunRequest req = RunRequest::gate(ghz_program(2), 32, 1);
  req.idempotency_key = "r1";

  {
    JobJournal j({dir.str(), /*sync_writes=*/true, /*retention=*/256});
    const JournalReplay empty = j.replay();
    EXPECT_EQ(empty.records, 0u);
    EXPECT_EQ(empty.truncated_bytes, 0u);
    ASSERT_TRUE(j.append_admitted(1, req));
    ASSERT_TRUE(j.append_dispatched(1));
  }
  {
    JobJournal j({dir.str(), true, 256});
    const JournalReplay r = j.replay();
    EXPECT_EQ(r.records, 2u);
    ASSERT_EQ(r.inflight.size(), 1u);
    EXPECT_EQ(r.inflight[0].job_id, 1u);
    EXPECT_TRUE(r.inflight[0].dispatched);
    EXPECT_EQ(r.inflight[0].request.idempotency_key, "r1");
    EXPECT_TRUE(r.finished.empty());
    EXPECT_EQ(r.max_job_id, 1u);

    RunResult done;
    done.status = Status::Ok();
    done.histogram.add("00", 32);
    ASSERT_TRUE(j.append_terminal(1, done));
  }
  {
    JobJournal j({dir.str(), true, 256});
    const JournalReplay r = j.replay();
    EXPECT_TRUE(r.inflight.empty());
    ASSERT_EQ(r.finished.size(), 1u);
    EXPECT_EQ(r.finished[0].job_id, 1u);
    EXPECT_EQ(r.finished[0].result.histogram.count("00"), 32u);
  }
}

TEST(JournalFile, TornTailIsTruncatedAndPrefixSurvives) {
  TempDir dir("qs_journal_test_torn");
  std::filesystem::create_directories(dir.path);
  std::string journal_path;
  {
    JobJournal j({dir.str(), true, 256});
    (void)j.replay();
    ASSERT_TRUE(j.append_admitted(1, RunRequest::gate(ghz_program(2), 16, 1)));
    ASSERT_TRUE(j.append_admitted(2, RunRequest::gate(ghz_program(2), 16, 2)));
    journal_path = j.path();
  }
  // A crash mid-append leaves a torn frame at the tail: simulate with
  // garbage that can never verify (absurd length prefix).
  {
    std::ofstream f(journal_path, std::ios::binary | std::ios::app);
    for (int i = 0; i < 24; ++i) f.put('\xff');
  }
  {
    JobJournal j({dir.str(), true, 256});
    const JournalReplay r = j.replay();
    EXPECT_EQ(r.records, 2u);
    EXPECT_EQ(r.inflight.size(), 2u);
    EXPECT_EQ(r.truncated_bytes, 24u);
  }
  // The truncation happened in place: a second replay is clean.
  {
    JobJournal j({dir.str(), true, 256});
    const JournalReplay r = j.replay();
    EXPECT_EQ(r.records, 2u);
    EXPECT_EQ(r.truncated_bytes, 0u);
  }
}

TEST(JournalFile, CompactionKeepsInflightAndNewestFinished) {
  TempDir dir("qs_journal_test_compact");
  std::filesystem::create_directories(dir.path);
  RunResult done;
  done.status = Status::Ok();
  done.histogram.add("0", 8);
  {
    JobJournal j({dir.str(), true, /*retention=*/1});
    (void)j.replay();
    for (std::uint64_t id = 1; id <= 3; ++id)
      ASSERT_TRUE(
          j.append_admitted(id, RunRequest::gate(ghz_program(2), 8, id)));
    ASSERT_TRUE(j.append_terminal(1, done));
    ASSERT_TRUE(j.append_terminal(2, done));
  }
  {
    JobJournal j({dir.str(), true, 1});
    const JournalReplay r = j.replay();
    ASSERT_EQ(r.inflight.size(), 1u);
    EXPECT_EQ(r.inflight[0].job_id, 3u);
    ASSERT_EQ(r.finished.size(), 2u);
    ASSERT_TRUE(j.compact(r));
  }
  {
    JobJournal j({dir.str(), true, 1});
    const JournalReplay r = j.replay();
    ASSERT_EQ(r.inflight.size(), 1u);
    EXPECT_EQ(r.inflight[0].job_id, 3u);
    // Retention 1: only the newest terminal pair survived compaction.
    ASSERT_EQ(r.finished.size(), 1u);
    EXPECT_EQ(r.finished[0].job_id, 2u);
  }
}

// ------------------------------------------------- service recovery ----

TEST(ServiceRecovery, CrashAtEveryInjectionPointThenRestartIsExactlyOnce) {
  const qasm::Program program = ghz_program(4);
  const std::size_t shots = 64;  // 4 shards
  const std::uint64_t seed = 5;

  Histogram reference;
  {
    QuantumService ref(perfect_gate(4), base_options(""));
    const RunResult r = ref.submit(RunRequest::gate(program, shots, seed)).get();
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
    reference = r.histogram;
  }

  for (const CrashPoint point :
       {CrashPoint::kAdmit, CrashPoint::kDispatch, CrashPoint::kMidShard,
        CrashPoint::kPreComplete}) {
    SCOPED_TRACE(runtime::to_string(point));
    TempDir dir(std::string("qs_journal_test_crash_") +
                runtime::to_string(point));
    {
      QuantumService victim(perfect_gate(4), base_options(dir.str()));
      ASSERT_NE(victim.journal(), nullptr);
      RunRequest doomed = RunRequest::gate(program, shots, seed);
      doomed.idempotency_key = "crash-key";
      auto plan = std::make_shared<FaultPlan>();
      plan->crash_point = point;
      doomed.faults = plan;
      const RunResult killed = victim.submit(std::move(doomed)).get();
      EXPECT_EQ(killed.status.code(), StatusCode::kUnavailable)
          << killed.status.to_string();
      EXPECT_GE(
          victim.metrics().counter("qs_injected_crashes_total").value(), 1u);
    }  // destructor = the kill; only on-disk state survives

    QuantumService successor(perfect_gate(4), base_options(dir.str()));
    EXPECT_GE(successor.metrics()
                  .counter("qs_journal_recovered_jobs_total")
                  .value(),
              1u);
    RunRequest dup = RunRequest::gate(program, shots, seed);
    dup.idempotency_key = "crash-key";
    const RunResult result = successor.submit(std::move(dup)).get();
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    // The duplicate attached to (or was served from) the recovered job —
    // it did not run a second execution.
    EXPECT_TRUE(result.stats.journal_recovered ||
                result.stats.idempotent_hit);
    EXPECT_EQ(result.histogram.counts(), reference.counts());
    EXPECT_EQ(result.histogram.total(), shots);
  }
}

TEST(ServiceRecovery, RecoveredJobCompletesWithoutResubmission) {
  const qasm::Program program = ghz_program(3);
  TempDir dir("qs_journal_test_background");
  {
    QuantumService victim(perfect_gate(3), base_options(dir.str()));
    RunRequest doomed = RunRequest::gate(program, 48, 9);
    doomed.idempotency_key = "bg-key";
    auto plan = std::make_shared<FaultPlan>();
    plan->crash_point = CrashPoint::kDispatch;
    doomed.faults = plan;
    ASSERT_FALSE(victim.submit(std::move(doomed)).get().status.ok());
  }

  QuantumService successor(perfect_gate(3), base_options(dir.str()));
  // The recovered job runs with no client involvement at all.
  successor.drain();
  // A late duplicate is served the stored result of that background run.
  RunRequest dup = RunRequest::gate(program, 48, 9);
  dup.idempotency_key = "bg-key";
  const RunResult served = successor.submit(std::move(dup)).get();
  ASSERT_TRUE(served.status.ok()) << served.status.to_string();
  EXPECT_TRUE(served.stats.idempotent_hit);
  EXPECT_TRUE(served.stats.journal_recovered);
  EXPECT_EQ(served.histogram.total(), 48u);
  EXPECT_GE(
      successor.metrics().counter("qs_idempotent_served_total").value(), 1u);
}

TEST(ServiceRecovery, RestartedServiceContinuesJobIdSequence) {
  TempDir dir("qs_journal_test_ids");
  std::uint64_t first_id = 0;
  {
    QuantumService svc(perfect_gate(2), base_options(dir.str()));
    RunRequest req = RunRequest::gate(ghz_program(2), 16, 1);
    req.idempotency_key = "seq";
    JobHandle h = svc.submit(std::move(req));
    first_id = h.id();
    ASSERT_TRUE(h.get().status.ok());
  }
  QuantumService svc(perfect_gate(2), base_options(dir.str()));
  const JobHandle h = svc.submit(RunRequest::gate(ghz_program(2), 16, 2));
  // Ids never regress across a restart — duplicate detection and the
  // journal's job keying both depend on it.
  EXPECT_GT(h.id(), first_id);
  ASSERT_TRUE(h.get().status.ok());
}

// --------------------------------------------------- idempotency key ----

TEST(Idempotency, DuplicateKeyAttachesServesAndRejectsMismatch) {
  QuantumService svc(perfect_gate(4), base_options(""));
  const qasm::Program program = ghz_program(4);

  svc.pause();  // freeze dispatch so the duplicate races a live job
  RunRequest a = RunRequest::gate(program, 48, 3);
  a.idempotency_key = "dup";
  JobHandle h1 = svc.submit(std::move(a));
  RunRequest b = RunRequest::gate(program, 48, 3);
  b.idempotency_key = "dup";
  JobHandle h2 = svc.submit(std::move(b));
  // Attach: the duplicate and the original are one job.
  EXPECT_EQ(h2.id(), h1.id());
  EXPECT_GE(svc.metrics().counter("qs_idempotent_attached_total").value(),
            1u);
  svc.resume();

  const RunResult r1 = h1.get();
  const RunResult r2 = h2.get();
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.histogram.counts(), r2.histogram.counts());

  // After completion the stored result is served — no third execution.
  RunRequest c = RunRequest::gate(program, 48, 3);
  c.idempotency_key = "dup";
  const RunResult r3 = svc.submit(std::move(c)).get();
  ASSERT_TRUE(r3.status.ok());
  EXPECT_TRUE(r3.stats.idempotent_hit);
  EXPECT_EQ(r3.histogram.counts(), r1.histogram.counts());

  // Same key, different payload: a client bug, rejected loudly.
  RunRequest d = RunRequest::gate(program, 48, /*seed=*/999);
  d.idempotency_key = "dup";
  const RunResult r4 = svc.submit(std::move(d)).get();
  EXPECT_EQ(r4.status.code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- disk degradation ----

TEST(StoreDegradation, RepeatedWriteFailuresDegradeDiskToMemoryOnly) {
  // Parent is a regular file, so the store can neither create nor write
  // its directory: every disk write fails deterministically.
  TempDir dir("qs_journal_test_degrade");
  { std::ofstream f(dir.path); f << "not a directory"; }

  store::StoreOptions opts;
  opts.directory = (dir.path / "sub").string();
  opts.degrade_after_failures = 3;
  opts.degrade_cooldown = std::chrono::milliseconds(60'000);  // no re-probe
  store::ArtifactStore store(opts);

  store::Outcome outcome;
  for (int i = 0; i < 3; ++i) {
    outcome = {};
    EXPECT_FALSE(store.put_bytes(
        store::ArtifactKey::checkpoint("k" + std::to_string(i)), "payload",
        /*use_memory=*/true, &outcome));
    EXPECT_TRUE(outcome.disk_write_failed);
  }
  EXPECT_TRUE(store.disk_degraded());

  // Degraded: writes are skipped (no syscall churn), reported as such.
  outcome = {};
  EXPECT_FALSE(store.put_bytes(store::ArtifactKey::checkpoint("k9"),
                               "payload", true, &outcome));
  EXPECT_TRUE(outcome.disk_degraded);

  // The memory tier still serves — degradation, not outage.
  store::Outcome get_outcome;
  const auto bytes =
      store.get_bytes(store::ArtifactKey::checkpoint("k0"),
                      /*use_memory=*/true, &get_outcome);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, "payload");
}

// ------------------------------------------------- gateway wire (v3) ----

TEST(GatewayIdempotency, KeyCrossesWireAndReconnectResubmitsSafely) {
  QuantumService svc(perfect_gate(4), base_options(""));
  gateway::GatewayServer server(svc, gateway::GatewayOptions{});
  ASSERT_TRUE(server.start().ok());

  gateway::GatewayClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(client.version(), gateway::kProtocolVersion);

  RunRequest req = RunRequest::gate_source(
      qasm::to_cqasm(ghz_program(4)), 96, /*seed=*/11);
  req.idempotency_key = "wire-key";

  const auto first = client.run(req);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(first->status.ok()) << first->status.to_string();

  // The duplicate proves the key survived the v3 encode/decode round
  // trip: the server recognised it and served the stored result.
  const auto dup = client.run(req);
  ASSERT_TRUE(dup.ok()) << dup.status().to_string();
  ASSERT_TRUE(dup->status.ok());
  EXPECT_TRUE(dup->stats.idempotent_hit);
  EXPECT_EQ(dup->histogram.counts(), first->histogram.counts());

  // Broken connection: run() redials the remembered endpoint and, because
  // the request is keyed, resubmits without double-running.
  client.close();
  ASSERT_FALSE(client.connected());
  const auto after = client.run(req);
  ASSERT_TRUE(after.ok()) << after.status().to_string();
  ASSERT_TRUE(after->status.ok());
  EXPECT_TRUE(after->stats.idempotent_hit);
  EXPECT_EQ(after->histogram.counts(), first->histogram.counts());

  server.shutdown();
}

TEST(GatewayIdempotency, KeyedJobSurvivesClientDisconnect) {
  QuantumService svc(perfect_gate(4), base_options(""));
  gateway::GatewayServer server(svc, gateway::GatewayOptions{});
  ASSERT_TRUE(server.start().ok());

  svc.pause();  // keep the job live across the disconnect
  std::uint64_t job_id = 0;
  {
    gateway::GatewayClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
    RunRequest req = RunRequest::gate_source(
        qasm::to_cqasm(ghz_program(4)), 64, /*seed=*/13);
    req.idempotency_key = "survivor";
    const auto id = client.submit(req);
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    job_id = *id;
  }  // disconnect: a keyed job must NOT be cancelled with the connection
  svc.resume();

  gateway::GatewayClient second;
  ASSERT_TRUE(second.connect("127.0.0.1", server.port()).ok());
  RunRequest dup = RunRequest::gate_source(
      qasm::to_cqasm(ghz_program(4)), 64, /*seed=*/13);
  dup.idempotency_key = "survivor";
  const auto result = second.run(dup);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_TRUE(result->status.ok()) << result->status.to_string();
  EXPECT_EQ(result->histogram.total(), 64u);
  (void)job_id;

  server.shutdown();
}

}  // namespace
}  // namespace qs::service
