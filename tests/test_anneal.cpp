// Unit tests for the annealing substrate: QUBO/Ising algebra, simulated
// (quantum) annealers, Chimera graphs, minor embedding and the digital
// annealer.
#include <gtest/gtest.h>

#include "anneal/annealer.h"
#include "anneal/chimera.h"
#include "anneal/digital_annealer.h"
#include "anneal/embedding.h"
#include "anneal/qubo.h"

namespace qs::anneal {
namespace {

/// Small frustrated QUBO with known minimum: a triangle of antiferro
/// couplings plus a field. min at x = (1,0,1) or symmetric variants.
Qubo triangle_qubo() {
  Qubo q(3);
  q.add(0, 1, 2.0);
  q.add(1, 2, 2.0);
  q.add(0, 2, 2.0);
  q.add(0, 0, -1.0);
  q.add(1, 1, -1.0);
  q.add(2, 2, -1.0);
  return q;
}

/// MaxCut-style Ising ring of n spins with antiferromagnetic couplings.
IsingModel af_ring(std::size_t n) {
  IsingModel m(n);
  for (std::size_t i = 0; i < n; ++i)
    m.add_coupling(i, (i + 1) % n, 1.0);
  return m;
}

// ---------------------------------------------------------------- QUBO ----

TEST(Qubo, EnergyEvaluation) {
  Qubo q(2);
  q.add(0, 0, -1.0);
  q.add(0, 1, 2.0);
  EXPECT_EQ(q.energy({0, 0}), 0.0);
  EXPECT_EQ(q.energy({1, 0}), -1.0);
  EXPECT_EQ(q.energy({1, 1}), 1.0);
  EXPECT_THROW(q.energy({1}), std::invalid_argument);
}

TEST(Qubo, SymmetricAccumulation) {
  Qubo q(3);
  q.add(2, 0, 1.5);
  q.add(0, 2, 0.5);
  EXPECT_EQ(q.coeff(0, 2), 2.0);
  EXPECT_EQ(q.coeff(2, 0), 2.0);
}

TEST(Qubo, BruteForceFindsTriangleMinimum) {
  // Setting one variable gives -1; any second adds +2 -1 = +1.
  const auto [x, e] = triangle_qubo().brute_force_minimum();
  EXPECT_EQ(e, -1.0);
  EXPECT_EQ(x[0] + x[1] + x[2], 1);
}

TEST(Qubo, BruteForceEnumeratesExactly) {
  // For the triangle QUBO, setting exactly one variable gives -1; two
  // variables gives -2 + 2 = 0 ... enumerate explicitly to pin semantics.
  const Qubo q = triangle_qubo();
  EXPECT_EQ(q.energy({1, 0, 0}), -1.0);
  EXPECT_EQ(q.energy({1, 1, 0}), 0.0);
  EXPECT_EQ(q.energy({1, 1, 1}), 3.0);
  const auto [x, e] = q.brute_force_minimum();
  EXPECT_EQ(e, -1.0);
}

TEST(Qubo, IsingRoundTripPreservesArgmin) {
  const Qubo q = triangle_qubo();
  const IsingModel ising = q.to_ising();
  // Energies must agree up to the constant offset for every assignment.
  for (unsigned mask = 0; mask < 8; ++mask) {
    std::vector<int> x(3), s(3);
    for (int i = 0; i < 3; ++i) {
      x[i] = (mask >> i) & 1;
      s[i] = x[i] ? 1 : -1;
    }
    EXPECT_NEAR(q.energy(x), ising.energy(s), 1e-12) << mask;
  }
}

TEST(Qubo, FromIsingInverts) {
  IsingModel m(3);
  m.add_field(0, 0.5);
  m.add_coupling(0, 1, -1.0);
  m.add_coupling(1, 2, 0.7);
  const Qubo q = Qubo::from_ising(m);
  // Argmin must match brute-force over the Ising model.
  const auto [x, e] = q.brute_force_minimum();
  double best_ising = 1e18;
  std::vector<int> best_s;
  for (unsigned mask = 0; mask < 8; ++mask) {
    std::vector<int> s(3);
    for (int i = 0; i < 3; ++i) s[i] = (mask >> i) & 1 ? 1 : -1;
    if (m.energy(s) < best_ising) {
      best_ising = m.energy(s);
      best_s = s;
    }
  }
  EXPECT_EQ(x, spins_to_binary(best_s));
}

TEST(Qubo, SpinBinaryConversions) {
  EXPECT_EQ(spins_to_binary({1, -1, 1}), (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(binary_to_spins({1, 0, 1}), (std::vector<int>{1, -1, 1}));
}

TEST(Qubo, EdgesAndCouplingCount) {
  const Qubo q = triangle_qubo();
  EXPECT_EQ(q.coupling_count(), 3u);
  EXPECT_EQ(q.edges().size(), 3u);
}

TEST(Ising, AdjacencyFromCouplings) {
  const IsingModel m = af_ring(4);
  const auto adj = m.adjacency();
  for (const auto& neighbours : adj) EXPECT_EQ(neighbours.size(), 2u);
}

// ----------------------------------------------------------- Annealers ----

TEST(SimulatedAnnealer, SolvesAfRing) {
  const IsingModel m = af_ring(8);
  Rng rng(5);
  AnnealSchedule schedule;
  schedule.sweeps = 500;
  const AnnealResult r = SimulatedAnnealer(schedule).solve(m, rng);
  // Ground state of even AF ring: alternating spins, energy -n.
  EXPECT_EQ(r.best_energy, -8.0);
}

TEST(SimulatedAnnealer, SolveQuboMatchesBruteForce) {
  Rng rng(7);
  const Qubo q = triangle_qubo();
  AnnealSchedule schedule;
  schedule.sweeps = 400;
  schedule.restarts = 3;
  const auto [x, e] = SimulatedAnnealer(schedule).solve_qubo(q, rng);
  EXPECT_EQ(e, q.brute_force_minimum().second);
}

TEST(SimulatedAnnealer, RandomQuboMatchesBruteForce) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    Qubo q(8);
    for (std::size_t i = 0; i < 8; ++i) {
      q.add(i, i, rng.uniform(-1, 1));
      for (std::size_t j = i + 1; j < 8; ++j)
        if (rng.bernoulli(0.5)) q.add(i, j, rng.uniform(-1, 1));
    }
    AnnealSchedule schedule;
    schedule.sweeps = 800;
    schedule.restarts = 4;
    const auto [x, e] = SimulatedAnnealer(schedule).solve_qubo(q, rng);
    EXPECT_NEAR(e, q.brute_force_minimum().second, 1e-9) << trial;
  }
}

TEST(SimulatedAnnealer, EmptyModelThrows) {
  Rng rng(1);
  EXPECT_THROW(SimulatedAnnealer().solve(IsingModel(0), rng),
               std::invalid_argument);
}

TEST(QuantumAnnealer, SolvesAfRing) {
  const IsingModel m = af_ring(8);
  Rng rng(13);
  QuantumAnnealSchedule schedule;
  schedule.sweeps = 400;
  schedule.restarts = 2;
  const AnnealResult r = SimulatedQuantumAnnealer(schedule).solve(m, rng);
  EXPECT_EQ(r.best_energy, -8.0);
}

TEST(QuantumAnnealer, SolveQuboFindsOptimum) {
  Rng rng(17);
  const Qubo q = triangle_qubo();
  QuantumAnnealSchedule schedule;
  schedule.sweeps = 400;
  schedule.restarts = 3;
  const auto [x, e] = SimulatedQuantumAnnealer(schedule).solve_qubo(q, rng);
  EXPECT_NEAR(e, -1.0, 1e-12);
}

TEST(QuantumAnnealer, MoreSweepsNotWorse) {
  // Statistical sanity: long schedules find the AF-ring ground state more
  // reliably than 1-sweep schedules.
  const IsingModel m = af_ring(12);
  int hits_short = 0, hits_long = 0;
  for (int t = 0; t < 10; ++t) {
    Rng rng(100 + t);
    QuantumAnnealSchedule s1;
    s1.sweeps = 2;
    QuantumAnnealSchedule s2;
    s2.sweeps = 300;
    if (SimulatedQuantumAnnealer(s1).solve(m, rng).best_energy == -12.0)
      ++hits_short;
    if (SimulatedQuantumAnnealer(s2).solve(m, rng).best_energy == -12.0)
      ++hits_long;
  }
  EXPECT_GE(hits_long, hits_short);
  EXPECT_GE(hits_long, 8);
}

// ------------------------------------------------------------- Chimera ----

TEST(Chimera, Dwave2000qDimensions) {
  const ChimeraGraph g = ChimeraGraph::dwave2000q();
  EXPECT_EQ(g.size(), 2048u);
  // Edges: cells 16*16*16 (K44) + vertical 15*16*4 + horizontal 16*15*4.
  EXPECT_EQ(g.edge_count(), 16u * 16 * 16 + 2u * 15 * 16 * 4);
}

TEST(Chimera, IntraCellBipartite) {
  const ChimeraGraph g(2, 2, 4);
  // side-0 shore connects to all side-1 in same cell, none within shore.
  EXPECT_TRUE(g.connected(g.node_id(0, 0, 0, 0), g.node_id(0, 0, 1, 3)));
  EXPECT_FALSE(g.connected(g.node_id(0, 0, 0, 0), g.node_id(0, 0, 0, 1)));
}

TEST(Chimera, InterCellCouplers) {
  const ChimeraGraph g(2, 2, 4);
  // Vertical: side-0 same k, row neighbour.
  EXPECT_TRUE(g.connected(g.node_id(0, 0, 0, 2), g.node_id(1, 0, 0, 2)));
  EXPECT_FALSE(g.connected(g.node_id(0, 0, 0, 2), g.node_id(1, 0, 0, 3)));
  // Horizontal: side-1 same k, column neighbour.
  EXPECT_TRUE(g.connected(g.node_id(0, 0, 1, 1), g.node_id(0, 1, 1, 1)));
  EXPECT_FALSE(g.connected(g.node_id(0, 0, 1, 1), g.node_id(1, 0, 1, 1)));
}

TEST(Chimera, DegreeBounds) {
  const ChimeraGraph g = ChimeraGraph::dwave2000q();
  // Interior node: 4 intra + 2 inter = 6.
  EXPECT_NEAR(g.average_degree(), 5.875, 0.01);
  EXPECT_THROW(g.node_id(16, 0, 0, 0), std::out_of_range);
}

// ----------------------------------------------------------- Embedding ----

HardwareGraph chimera_hw(const ChimeraGraph& g) {
  HardwareGraph hw;
  hw.adjacency.resize(g.size());
  for (std::size_t n = 0; n < g.size(); ++n) hw.adjacency[n] = g.neighbours(n);
  return hw;
}

std::vector<std::pair<std::size_t, std::size_t>> complete_graph_edges(
    std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return edges;
}

/// Validates an embedding: chains disjoint and connected, every logical
/// edge has a physical coupler between its chains.
void expect_valid_embedding(
    const Embedding& emb, std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    const HardwareGraph& hw) {
  ASSERT_TRUE(emb.success);
  std::vector<int> owner(hw.size(), -1);
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_FALSE(emb.chains[v].empty());
    for (std::size_t node : emb.chains[v]) {
      ASSERT_EQ(owner[node], -1) << "chains overlap at node " << node;
      owner[node] = static_cast<int>(v);
    }
  }
  // Chain connectivity by BFS within chain.
  for (std::size_t v = 0; v < n; ++v) {
    const auto& chain = emb.chains[v];
    std::vector<std::size_t> stack{chain[0]};
    std::vector<bool> seen(hw.size(), false);
    seen[chain[0]] = true;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (std::size_t w : hw.adjacency[u]) {
        if (!seen[w] && owner[w] == static_cast<int>(v)) {
          seen[w] = true;
          ++reached;
          stack.push_back(w);
        }
      }
    }
    EXPECT_EQ(reached, chain.size()) << "chain " << v << " disconnected";
  }
  // Coupler per logical edge.
  for (const auto& [a, b] : edges) {
    bool coupled = false;
    for (std::size_t u : emb.chains[a]) {
      for (std::size_t w : hw.adjacency[u])
        if (owner[w] == static_cast<int>(b)) coupled = true;
    }
    EXPECT_TRUE(coupled) << "edge " << a << "-" << b << " uncoupled";
  }
}

TEST(Embedding, TriangleOnChimera) {
  const ChimeraGraph g(2, 2, 4);
  const HardwareGraph hw = chimera_hw(g);
  Rng rng(3);
  const auto edges = complete_graph_edges(3);
  const Embedding emb = Embedder(4).embed(3, edges, hw, rng);
  expect_valid_embedding(emb, 3, edges, hw);
}

TEST(Embedding, HeuristicK6OnSmallChimera) {
  const ChimeraGraph g(4, 4, 4);
  const HardwareGraph hw = chimera_hw(g);
  Rng rng(5);
  const auto edges = complete_graph_edges(6);
  const Embedding emb = Embedder(4).embed(6, edges, hw, rng);
  expect_valid_embedding(emb, 6, edges, hw);
  EXPECT_GT(emb.max_chain_length, 1u);  // K6 needs chains on Chimera
}

TEST(Embedding, CliqueTemplateK64OnDwave2000q) {
  const ChimeraGraph g = ChimeraGraph::dwave2000q();
  EXPECT_EQ(chimera_clique_capacity(g), 64u);
  const HardwareGraph hw = chimera_hw(g);
  const auto edges = complete_graph_edges(64);
  const Embedding emb = chimera_clique_embedding(64, g);
  expect_valid_embedding(emb, 64, edges, hw);
  EXPECT_EQ(emb.max_chain_length, 17u);  // m + 1
}

TEST(Embedding, CliqueTemplateRejectsOversize) {
  const ChimeraGraph g = ChimeraGraph::dwave2000q();
  EXPECT_FALSE(chimera_clique_embedding(65, g).success);
  EXPECT_THROW(chimera_clique_embedding(4, ChimeraGraph(2, 3, 4)),
               std::invalid_argument);
}

TEST(Embedding, ImpossibleOnTinyHardware) {
  // K5 cannot embed in a 4-node path.
  HardwareGraph hw;
  hw.adjacency = {{1}, {0, 2}, {1, 3}, {2}};
  Rng rng(7);
  const Embedding emb = Embedder(3).embed(5, complete_graph_edges(5), hw, rng);
  EXPECT_FALSE(emb.success);
}

TEST(Embedding, EdgelessGraphTrivial) {
  const ChimeraGraph g(1, 1, 4);
  const HardwareGraph hw = chimera_hw(g);
  Rng rng(9);
  const Embedding emb = Embedder(1).embed(4, {}, hw, rng);
  ASSERT_TRUE(emb.success);
  EXPECT_EQ(emb.physical_qubits_used, 4u);
  EXPECT_EQ(emb.max_chain_length, 1u);
}

// ------------------------------------------------------ DigitalAnnealer ----

TEST(DigitalAnnealer, SolvesTriangle) {
  Rng rng(11);
  DigitalAnnealerParams params;
  params.iterations = 3000;
  params.restarts = 2;
  const auto [x, e] = DigitalAnnealer(params).solve(triangle_qubo(), rng);
  EXPECT_NEAR(e, -1.0, 1e-12);
}

TEST(DigitalAnnealer, MatchesBruteForceOnRandom) {
  Rng rng(13);
  Qubo q(10);
  for (std::size_t i = 0; i < 10; ++i) {
    q.add(i, i, rng.uniform(-1, 1));
    for (std::size_t j = i + 1; j < 10; ++j)
      q.add(i, j, rng.uniform(-0.5, 0.5));
  }
  DigitalAnnealerParams params;
  params.iterations = 8000;
  params.restarts = 3;
  const auto [x, e] = DigitalAnnealer(params).solve(q, rng);
  EXPECT_NEAR(e, q.brute_force_minimum().second, 1e-9);
}

TEST(DigitalAnnealer, CapacityGuard) {
  EXPECT_TRUE(DigitalAnnealer::fits(8192));
  EXPECT_FALSE(DigitalAnnealer::fits(8193));
}

}  // namespace
}  // namespace qs::anneal
