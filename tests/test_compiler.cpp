// Unit tests for the OpenQL-like compiler: topology, platform, kernels,
// decomposition (verified by simulation equivalence), optimisation,
// scheduling and mapping.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "compiler/compiler.h"
#include "compiler/decompose.h"
#include "compiler/kernel.h"
#include "compiler/mapper.h"
#include "compiler/optimize.h"
#include "compiler/platform.h"
#include "compiler/schedule.h"
#include "compiler/topology.h"
#include "sim/gates.h"
#include "sim/simulator.h"

namespace qs::compiler {
namespace {

using qasm::GateKind;
using qasm::Instruction;

/// Runs a (measurement-free) program on a fresh perfect simulator and
/// returns the final state.
sim::StateVector run_to_state(const qasm::Program& p, std::size_t qubits) {
  sim::Simulator s(qubits, sim::QubitModel::perfect(), 1);
  s.run_once(p);
  return s.state();
}

/// Applies a random product-state prefix so equivalence checks do not pass
/// trivially on |0...0>.
void add_random_prefix(Kernel& k, std::size_t qubits, Rng& rng) {
  for (QubitIndex q = 0; q < qubits; ++q) {
    k.ry(q, rng.uniform(0, 2 * kPi));
    k.rz(q, rng.uniform(0, 2 * kPi));
  }
}

// ------------------------------------------------------------ Topology ----

TEST(Topology, FullGraphDistances) {
  const Topology t = Topology::full(5);
  EXPECT_EQ(t.edge_count(), 10u);
  EXPECT_EQ(t.distance(0, 4), 1u);
  EXPECT_EQ(t.distance(2, 2), 0u);
  EXPECT_TRUE(t.is_connected_graph());
}

TEST(Topology, LineDistances) {
  const Topology t = Topology::line(6);
  EXPECT_EQ(t.edge_count(), 5u);
  EXPECT_EQ(t.distance(0, 5), 5u);
  const auto path = t.shortest_path(0, 3);
  EXPECT_EQ(path, (std::vector<QubitIndex>{0, 1, 2, 3}));
}

TEST(Topology, GridStructure) {
  const Topology t = Topology::grid(3, 4);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.neighbours(5).size(), 4u);  // interior
  EXPECT_EQ(t.neighbours(0).size(), 2u);  // corner
  EXPECT_EQ(t.distance(0, 11), 5u);       // manhattan 2+3
  EXPECT_TRUE(t.is_connected_graph());
}

TEST(Topology, Surface17Properties) {
  const Topology t = Topology::surface17();
  EXPECT_EQ(t.size(), 17u);
  EXPECT_TRUE(t.is_connected_graph());
  for (QubitIndex q = 0; q < 17; ++q)
    EXPECT_GE(t.neighbours(q).size(), 1u);
}

TEST(Topology, AverageDistanceOrdering) {
  const double full = Topology::full(9).average_distance();
  const double grid = Topology::grid(3, 3).average_distance();
  const double line = Topology::line(9).average_distance();
  EXPECT_LT(full, grid);
  EXPECT_LT(grid, line);
}

TEST(Topology, ErrorsAndEdgeIdempotence) {
  Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 1);  // duplicate ignored
  EXPECT_EQ(t.edge_count(), 1u);
  EXPECT_THROW(t.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(t.add_edge(0, 9), std::out_of_range);
  EXPECT_FALSE(t.is_connected_graph());  // node 2 isolated
}

// ------------------------------------------------------------ Platform ----

TEST(Platform, BuiltinsAreConsistent) {
  const Platform p = Platform::superconducting17();
  EXPECT_EQ(p.qubit_count, 17u);
  EXPECT_EQ(p.topology.size(), 17u);
  EXPECT_TRUE(p.is_primitive(GateKind::CZ));
  EXPECT_FALSE(p.is_primitive(GateKind::CNOT));
  EXPECT_FALSE(p.is_primitive(GateKind::Toffoli));
  EXPECT_EQ(p.qubit_model.kind, sim::QubitKind::Realistic);

  const Platform perfect = Platform::perfect(10);
  EXPECT_TRUE(perfect.is_primitive(GateKind::Toffoli));
  EXPECT_EQ(perfect.qubit_model.kind, sim::QubitKind::Perfect);
}

TEST(Platform, CyclesOfRoundsUp) {
  const Platform p = Platform::superconducting17();  // 20ns cycle
  EXPECT_EQ(p.cycles_of(Instruction(GateKind::X90, {0})), 1u);
  EXPECT_EQ(p.cycles_of(Instruction(GateKind::CZ, {0, 2})), 2u);
  EXPECT_EQ(p.cycles_of(Instruction(GateKind::Measure, {0})), 15u);
}

TEST(Platform, ConfigRoundTrip) {
  const Platform p = Platform::superconducting17();
  const Platform back = Platform::from_config(p.to_config());
  EXPECT_EQ(back.name, p.name);
  EXPECT_EQ(back.qubit_count, p.qubit_count);
  EXPECT_EQ(back.topology.edge_count(), p.topology.edge_count());
  EXPECT_EQ(back.primitive_gates, p.primitive_gates);
  EXPECT_EQ(back.durations.two_qubit, p.durations.two_qubit);
  EXPECT_NEAR(back.qubit_model.gate_error_2q, p.qubit_model.gate_error_2q,
              1e-12);
}

TEST(Platform, SemiconductingRetargetsByConfigOnly) {
  // Same primitive set as the transmon platform; only timing/topology
  // differ — the paper's configuration-only retargeting property.
  const Platform sc = Platform::superconducting17();
  const Platform spin = Platform::semiconducting_spin(4);
  EXPECT_EQ(sc.primitive_gates, spin.primitive_gates);
  EXPECT_GT(spin.durations.single_qubit, sc.durations.single_qubit);
}

TEST(Platform, ConfigErrors) {
  EXPECT_THROW(Platform::from_config(Config::parse("[platform]\nname=x\n")),
               std::runtime_error);
  EXPECT_THROW(Platform::from_config(Config::parse(
                   "[platform]\nqubits=4\ntopology=grid:3x3\n")),
               std::runtime_error);
  EXPECT_THROW(Platform::from_config(Config::parse(
                   "[platform]\nqubits=4\nprimitives=bogus\n")),
               std::runtime_error);
}

// -------------------------------------------------------------- Kernel ----

TEST(Kernel, BuilderProducesInstructions) {
  Kernel k("t", 3);
  k.h(0).cnot(0, 1).rx(2, 0.5).toffoli(0, 1, 2).measure_all();
  EXPECT_EQ(k.size(), 5u);
  EXPECT_EQ(k.circuit().instructions()[1].kind(), GateKind::CNOT);
  EXPECT_THROW(k.h(7), std::out_of_range);
}

TEST(Kernel, GhzStateThroughSim) {
  Program p("ghz", 4);
  p.add_kernel("main").ghz(4);
  const auto state = run_to_state(p.to_qasm(), 4);
  EXPECT_NEAR(std::norm(state.amplitude(0b0000)), 0.5, 1e-9);
  EXPECT_NEAR(std::norm(state.amplitude(0b1111)), 0.5, 1e-9);
}

TEST(Kernel, QftOnBasisStateGivesUniformMagnitudes) {
  Program p("qft", 3);
  auto& k = p.add_kernel("main");
  k.x(0);
  k.qft({0, 1, 2});
  const auto state = run_to_state(p.to_qasm(), 3);
  for (StateIndex i = 0; i < 8; ++i)
    EXPECT_NEAR(std::norm(state.amplitude(i)), 1.0 / 8.0, 1e-9);
}

TEST(Kernel, QftInverseIsIdentity) {
  Rng rng(3);
  Program p("qft_id", 4);
  auto& k = p.add_kernel("main");
  add_random_prefix(k, 4, rng);
  Program ref("ref", 4);
  auto& kr = ref.add_kernel("main");
  kr.append(k);  // same prefix
  k.qft({0, 1, 2, 3});
  k.iqft({0, 1, 2, 3});
  const auto a = run_to_state(p.to_qasm(), 4);
  const auto b = run_to_state(ref.to_qasm(), 4);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
}

TEST(Kernel, McxComputesAndOfControls) {
  for (unsigned pattern : {0b11111u, 0b11011u, 0b00000u}) {
    Program p("mcx", 9);
    auto& k = p.add_kernel("main");
    for (int c = 0; c < 5; ++c)
      if ((pattern >> c) & 1) k.x(static_cast<QubitIndex>(c));
    k.mcx({0, 1, 2, 3, 4}, 5, {6, 7, 8});
    const auto state = run_to_state(p.to_qasm(), 9);
    const bool expect_flip = pattern == 0b11111u;
    StateIndex expected = pattern;
    if (expect_flip) expected |= 1u << 5;
    EXPECT_NEAR(std::norm(state.amplitude(expected)), 1.0, 1e-9)
        << "pattern " << pattern;
  }
}

TEST(Kernel, McxRestoresAncillas) {
  Program p("mcx_anc", 9);
  auto& k = p.add_kernel("main");
  for (int c = 0; c < 5; ++c) k.x(static_cast<QubitIndex>(c));
  k.mcx({0, 1, 2, 3, 4}, 5, {6, 7, 8});
  const auto state = run_to_state(p.to_qasm(), 9);
  for (QubitIndex a = 6; a < 9; ++a)
    EXPECT_NEAR(state.prob_one(a), 0.0, 1e-9);
}

TEST(Kernel, McxInsufficientAncillasThrows) {
  Kernel k("t", 8);
  EXPECT_THROW(k.mcx({0, 1, 2, 3, 4}, 5, {6}), std::invalid_argument);
}

TEST(Kernel, MczPhaseFlipOnAllOnes) {
  Program p("mcz", 5);
  auto& k = p.add_kernel("main");
  for (QubitIndex q = 0; q < 4; ++q) k.h(q);
  k.mcz({0, 1, 2, 3}, {4});
  const auto state = run_to_state(p.to_qasm(), 5);
  for (StateIndex i = 0; i < 16; ++i) {
    const double expected_sign = (i == 15) ? -1.0 : 1.0;
    EXPECT_NEAR(state.amplitude(i).real(), expected_sign * 0.25, 1e-9)
        << "basis " << i;
  }
}

TEST(Kernel, GroverDiffusionFixesUniformState) {
  Program p("diff", 3);
  auto& k = p.add_kernel("main");
  for (QubitIndex q = 0; q < 3; ++q) k.h(q);
  k.grover_diffusion({0, 1, 2});
  const auto state = run_to_state(p.to_qasm(), 3);
  for (StateIndex i = 0; i < 8; ++i)
    EXPECT_NEAR(std::norm(state.amplitude(i)), 1.0 / 8.0, 1e-9);
}

TEST(Kernel, ControlledByAttachesConditions) {
  Kernel k("t", 2);
  k.x(1).controlled_by({0});
  EXPECT_TRUE(k.circuit().instructions()[0].is_conditional());
}

// ---------------------------------------------------------- Decompose ----

TEST(Decompose, ZyzRecoversRandomUnitaries) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix u = sim::rz(rng.uniform(-3, 3)) *
                     sim::ry(rng.uniform(-3, 3)) *
                     sim::rz(rng.uniform(-3, 3)) *
                     (trial % 2 ? sim::hadamard() : Matrix::identity(2));
    const ZyzAngles a = zyz_decompose(u);
    const Matrix rebuilt =
        sim::rz(a.phi) * sim::ry(a.theta) * sim::rz(a.lambda);
    EXPECT_TRUE(rebuilt.equal_up_to_phase(u, 1e-8)) << "trial " << trial;
  }
}

TEST(Decompose, ZyzEdgeCases) {
  for (const Matrix& u : {Matrix::identity(2), sim::pauli_x(),
                          sim::pauli_z(), sim::rz(0.7), sim::rx(kPi)}) {
    const ZyzAngles a = zyz_decompose(u);
    const Matrix rebuilt =
        sim::rz(a.phi) * sim::ry(a.theta) * sim::rz(a.lambda);
    EXPECT_TRUE(rebuilt.equal_up_to_phase(u, 1e-8));
  }
}

/// Equivalence harness: program with `gate` on a random state must match
/// its decomposed form on the transmon primitive set.
void expect_decompose_equivalent(const std::function<void(Kernel&)>& build,
                                 std::size_t qubits, std::uint64_t seed) {
  Rng rng(seed);
  Program orig("orig", qubits);
  auto& k = orig.add_kernel("main");
  add_random_prefix(k, qubits, rng);
  build(k);

  Platform platform = Platform::superconducting17();
  platform.qubit_count = qubits;
  platform.topology = Topology::full(qubits);
  platform.qubit_model = sim::QubitModel::perfect();

  const qasm::Program lowered = decompose(orig.to_qasm(), platform);
  for (const auto& c : lowered.circuits())
    for (const auto& i : c.instructions())
      EXPECT_TRUE(platform.is_primitive(i.kind()))
          << qasm::gate_name(i.kind());

  const auto a = run_to_state(orig.to_qasm(), qubits);
  const auto b = run_to_state(lowered, qubits);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-8);
}

TEST(Decompose, SingleQubitGatesEquivalent) {
  expect_decompose_equivalent([](Kernel& k) { k.h(0); }, 1, 1);
  expect_decompose_equivalent([](Kernel& k) { k.x(0); }, 1, 2);
  expect_decompose_equivalent([](Kernel& k) { k.y(0); }, 1, 3);
  expect_decompose_equivalent([](Kernel& k) { k.z(0); }, 1, 4);
  expect_decompose_equivalent([](Kernel& k) { k.s(0); }, 1, 5);
  expect_decompose_equivalent([](Kernel& k) { k.t(0); }, 1, 6);
  expect_decompose_equivalent([](Kernel& k) { k.tdag(0); }, 1, 7);
  expect_decompose_equivalent([](Kernel& k) { k.rx(0, 1.3); }, 1, 8);
  expect_decompose_equivalent([](Kernel& k) { k.ry(0, -0.6); }, 1, 9);
}

TEST(Decompose, TwoQubitGatesEquivalent) {
  expect_decompose_equivalent([](Kernel& k) { k.cnot(0, 1); }, 2, 10);
  expect_decompose_equivalent([](Kernel& k) { k.swap(0, 1); }, 2, 11);
  expect_decompose_equivalent([](Kernel& k) { k.cr(0, 1, 0.9); }, 2, 12);
  expect_decompose_equivalent([](Kernel& k) { k.crk(0, 1, 3); }, 2, 13);
  expect_decompose_equivalent([](Kernel& k) { k.rzz(0, 1, 1.7); }, 2, 14);
}

TEST(Decompose, ToffoliEquivalent) {
  expect_decompose_equivalent([](Kernel& k) { k.toffoli(0, 1, 2); }, 3, 15);
}

TEST(Decompose, WholeQftEquivalent) {
  expect_decompose_equivalent([](Kernel& k) { k.qft({0, 1, 2}); }, 3, 16);
}

TEST(Decompose, StatsCountRewrites) {
  Program p("stats", 3);
  p.add_kernel("main").toffoli(0, 1, 2).h(0);
  Platform platform = Platform::superconducting17();
  platform.qubit_count = 3;
  platform.topology = Topology::full(3);
  DecomposeStats stats;
  decompose(p.to_qasm(), platform, &stats);
  EXPECT_EQ(stats.rewritten, 2u);  // toffoli and h
  EXPECT_GT(stats.emitted, 10u);
}

TEST(Decompose, ConditionalGatePropagatesConditions) {
  Program p("cond", 2);
  auto& k = p.add_kernel("main");
  k.measure(0);
  k.x(1).controlled_by({0});
  Platform platform = Platform::superconducting17();
  platform.qubit_count = 2;
  platform.topology = Topology::full(2);
  const qasm::Program lowered = decompose(p.to_qasm(), platform);
  bool saw_conditional_unitary = false;
  for (const auto& i : lowered.circuits()[0].instructions())
    if (qasm::gate_is_unitary(i.kind()) && i.is_conditional())
      saw_conditional_unitary = true;
  EXPECT_TRUE(saw_conditional_unitary);
}

// ------------------------------------------------------------ Optimize ----

TEST(Optimize, CancelsInversePairs) {
  Program p("cancel", 2);
  auto& k = p.add_kernel("main");
  k.h(0).h(0).x(1).x(1).cnot(0, 1).cnot(0, 1);
  OptimizeStats stats;
  const qasm::Program out = optimize(p.to_qasm(), &stats);
  EXPECT_EQ(out.circuits()[0].size(), 0u);
  EXPECT_EQ(stats.cancelled_pairs, 3u);
}

TEST(Optimize, MergesRotations) {
  Program p("merge", 1);
  p.add_kernel("main").rz(0, 0.3).rz(0, 0.4);
  OptimizeStats stats;
  const qasm::Program out = optimize(p.to_qasm(), &stats);
  ASSERT_EQ(out.circuits()[0].size(), 1u);
  EXPECT_NEAR(out.circuits()[0].instructions()[0].angle(), 0.7, 1e-9);
  EXPECT_EQ(stats.merged_rotations, 1u);
}

TEST(Optimize, RotationsSummingToZeroVanish) {
  Program p("zero", 1);
  p.add_kernel("main").rz(0, 1.1).rz(0, -1.1);
  const qasm::Program out = optimize(p.to_qasm());
  EXPECT_EQ(out.circuits()[0].size(), 0u);
}

TEST(Optimize, LooksPastDisjointGates) {
  Program p("past", 2);
  p.add_kernel("main").h(0).x(1).h(0);
  const qasm::Program out = optimize(p.to_qasm());
  ASSERT_EQ(out.circuits()[0].size(), 1u);
  EXPECT_EQ(out.circuits()[0].instructions()[0].kind(), GateKind::X);
}

TEST(Optimize, BlockedBySharedQubit) {
  Program p("blocked", 2);
  p.add_kernel("main").h(0).cnot(0, 1).h(0);
  const qasm::Program out = optimize(p.to_qasm());
  EXPECT_EQ(out.circuits()[0].size(), 3u);
}

TEST(Optimize, PreservesSemantics) {
  Rng rng(23);
  Program p("sem", 3);
  auto& k = p.add_kernel("main");
  add_random_prefix(k, 3, rng);
  k.h(0).h(0).rz(1, 0.4).rz(1, 0.6).cnot(0, 2).x(1).cnot(0, 2).s(2).sdag(2);
  const qasm::Program out = optimize(p.to_qasm());
  EXPECT_LT(out.total_instructions(), p.to_qasm().total_instructions());
  const auto a = run_to_state(p.to_qasm(), 3);
  const auto b = run_to_state(out, 3);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
}

TEST(Optimize, ConditionalGatesUntouched) {
  Program p("cond", 2);
  auto& k = p.add_kernel("main");
  k.measure(0);
  k.x(1).controlled_by({0});
  k.x(1).controlled_by({0});
  const qasm::Program out = optimize(p.to_qasm());
  EXPECT_EQ(out.circuits()[0].size(), 3u);
}

// ------------------------------------------------------------ Schedule ----

TEST(Schedule, IndependentGatesShareCycle) {
  Program p("par", 3);
  p.add_kernel("main").h(0).h(1).h(2);
  const Platform platform = Platform::perfect(3);
  const qasm::Program out = schedule(p.to_qasm(), platform);
  const auto& ins = out.circuits()[0].instructions();
  EXPECT_EQ(ins[0].cycle(), 0);
  EXPECT_EQ(ins[1].cycle(), 0);
  EXPECT_EQ(ins[2].cycle(), 0);
}

TEST(Schedule, DependentGatesSerialise) {
  Program p("dep", 2);
  p.add_kernel("main").h(0).cnot(0, 1).h(1);
  Platform platform = Platform::perfect(2);
  ScheduleStats stats;
  const qasm::Program out =
      schedule(p.to_qasm(), platform, SchedulerKind::ASAP, &stats);
  const auto& ins = out.circuits()[0].instructions();
  EXPECT_EQ(ins[0].cycle(), 0);
  EXPECT_GT(ins[1].cycle(), ins[0].cycle());
  EXPECT_GT(ins[2].cycle(), ins[1].cycle());
  EXPECT_GT(stats.parallelism, 0.0);
}

TEST(Schedule, DurationsRespected) {
  Program p("dur", 1);
  p.add_kernel("main").measure(0).x90(0);
  Platform platform = Platform::superconducting17();
  const qasm::Program out = schedule(p.to_qasm(), platform);
  const auto& ins = out.circuits()[0].instructions();
  EXPECT_GE(ins[1].cycle() - ins[0].cycle(), 15);
}

TEST(Schedule, AlapPushesGatesLate) {
  Program p("alap", 2);
  p.add_kernel("main").h(1).h(0).h(0).h(0).cnot(0, 1);
  const Platform platform = Platform::perfect(2);
  const qasm::Program asap =
      schedule(p.to_qasm(), platform, SchedulerKind::ASAP);
  const qasm::Program alap =
      schedule(p.to_qasm(), platform, SchedulerKind::ALAP);
  auto find_h1 = [](const qasm::Program& prog) {
    for (const auto& i : prog.circuits()[0].instructions())
      if (i.kind() == GateKind::H && i.qubits()[0] == 1) return i.cycle();
    return std::int64_t{-1};
  };
  EXPECT_EQ(find_h1(asap), 0);
  EXPECT_GT(find_h1(alap), 0);
  EXPECT_EQ(asap.circuits()[0].depth(), alap.circuits()[0].depth());
}

TEST(Schedule, BarrierOrdersAcrossQubits) {
  Program p("bar", 2);
  auto& k = p.add_kernel("main");
  k.h(0);
  k.barrier({0, 1});
  k.h(1);
  const Platform platform = Platform::perfect(2);
  const qasm::Program out = schedule(p.to_qasm(), platform);
  const auto& ins = out.circuits()[0].instructions();
  EXPECT_GT(ins[2].cycle(), ins[0].cycle());
}

TEST(Schedule, ConditionalAfterMeasurement) {
  Program p("cond", 2);
  auto& k = p.add_kernel("main");
  k.measure(0);
  k.x(1).controlled_by({0});
  const Platform platform = Platform::superconducting17();
  const qasm::Program out = schedule(p.to_qasm(), platform);
  const auto& ins = out.circuits()[0].instructions();
  EXPECT_GE(ins[1].cycle(),
            ins[0].cycle() +
                static_cast<std::int64_t>(platform.cycles_of(ins[0])));
}

TEST(Schedule, SemanticsPreserved) {
  Rng rng(31);
  Program p("sem", 4);
  auto& k = p.add_kernel("main");
  add_random_prefix(k, 4, rng);
  k.qft({0, 1, 2, 3});
  const Platform platform = Platform::perfect(4);
  const qasm::Program out = schedule(p.to_qasm(), platform);
  const auto a = run_to_state(p.to_qasm(), 4);
  const auto b = run_to_state(out, 4);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
}

// -------------------------------------------------------------- Mapper ----

TEST(Mapper, AdjacentGatesUntouched) {
  Program p("adj", 2);
  p.add_kernel("main").cnot(0, 1);
  const Platform platform = Platform::perfect_grid(1, 2);
  MapStats stats;
  Mapper mapper;
  mapper.map(p.to_qasm(), platform, &stats);
  EXPECT_EQ(stats.added_swaps, 0u);
}

TEST(Mapper, DistantGateGetsSwaps) {
  Program p("far", 4);
  p.add_kernel("main").cnot(0, 3);
  const Platform platform = Platform::perfect_grid(1, 4);
  MapStats stats;
  Mapper mapper;
  const qasm::Program out = mapper.map(p.to_qasm(), platform, &stats);
  EXPECT_EQ(stats.added_swaps, 2u);  // distance 3 -> 2 swaps
  EXPECT_EQ(stats.routed_gates, 1u);
  for (const auto& i : out.circuits()[0].instructions())
    if (qasm::gate_is_two_qubit(i.kind()))
      EXPECT_LE(platform.topology.distance(i.qubits()[0], i.qubits()[1]), 1u);
}

TEST(Mapper, SemanticsPreservedUnderRouting) {
  Rng rng(41);
  Program p("sem", 4);
  auto& k = p.add_kernel("main");
  add_random_prefix(k, 4, rng);
  k.cnot(0, 3).cnot(1, 2).cnot(0, 2).cnot(3, 1);
  const Platform line = Platform::perfect_grid(1, 4);
  MapStats stats;
  Mapper mapper;
  const qasm::Program routed = mapper.map(p.to_qasm(), line, &stats);
  EXPECT_GT(stats.added_swaps, 0u);

  const auto orig = run_to_state(p.to_qasm(), 4);
  const auto mapped = run_to_state(routed, 4);
  sim::StateVector expect(4);
  expect.set_amplitude(0, cplx(0, 0));
  for (StateIndex basis = 0; basis < 16; ++basis) {
    StateIndex phys = 0;
    for (QubitIndex l = 0; l < 4; ++l)
      if (basis & (StateIndex{1} << l))
        phys |= StateIndex{1} << stats.final_map[l];
    expect.set_amplitude(phys, orig.amplitude(basis));
  }
  EXPECT_NEAR(mapped.fidelity(expect), 1.0, 1e-9);
}

TEST(Mapper, GreedyPlacementReducesSwaps) {
  Program p("greedy", 6);
  auto& k = p.add_kernel("main");
  for (int r = 0; r < 4; ++r) k.cnot(0, 5);
  const Platform line = Platform::perfect_grid(1, 6);
  MapStats id_stats, greedy_stats;
  Mapper(PlacementKind::Identity).map(p.to_qasm(), line, &id_stats);
  Mapper(PlacementKind::Greedy).map(p.to_qasm(), line, &greedy_stats);
  EXPECT_LT(greedy_stats.added_swaps, id_stats.added_swaps);
  EXPECT_EQ(greedy_stats.added_swaps, 0u);
}

TEST(Mapper, RejectsConditionalPrograms) {
  Program p("cond", 2);
  auto& k = p.add_kernel("main");
  k.measure(0);
  k.x(1).controlled_by({0});
  const Platform platform = Platform::perfect_grid(1, 2);
  Mapper mapper;
  EXPECT_THROW(mapper.map(p.to_qasm(), platform), std::invalid_argument);
}

TEST(Mapper, TooManyLogicalQubitsThrows) {
  Program p("big", 5);
  p.add_kernel("main").h(4);
  const Platform platform = Platform::perfect_grid(1, 3);
  Mapper mapper;
  EXPECT_THROW(mapper.map(p.to_qasm(), platform), std::invalid_argument);
}

// ------------------------------------------------------------ Compiler ----

TEST(Compiler, FullPipelineOnTransmon) {
  Program p("pipe", 3);
  auto& k = p.add_kernel("main");
  k.h(0).toffoli(0, 1, 2).measure_all();
  Compiler c(Platform::superconducting17());
  CompileOptions opts;
  opts.map = true;
  const CompileResult r = c.compile(p, opts);
  for (const auto& circuit : r.program.circuits())
    for (const auto& i : circuit.instructions()) {
      EXPECT_TRUE(c.platform().is_primitive(i.kind()));
      EXPECT_TRUE(i.is_scheduled());
    }
  EXPECT_GT(r.gates_after, 0u);
  EXPECT_FALSE(r.cqasm.empty());
  EXPECT_GT(r.schedule_stats.depth_cycles, 0u);
}

TEST(Compiler, OptimizationReducesGateCount) {
  Program p("opt", 2);
  auto& k = p.add_kernel("main");
  k.h(0).h(0).rz(0, 0.5).rz(0, -0.5).x(1).x(1).cnot(0, 1);
  Compiler c(Platform::perfect(2));
  CompileOptions with, without;
  with.optimize = true;
  without.optimize = false;
  const auto a = c.compile(p, with);
  const auto b = c.compile(p, without);
  EXPECT_LT(a.gates_after, b.gates_after);
}

TEST(Compiler, CompiledProgramRunsOnSim) {
  Program p("run", 2);
  auto& k = p.add_kernel("main");
  k.h(0).cnot(0, 1).measure_all();
  Compiler c(Platform::perfect(2));
  const CompileResult r = c.compile(p);
  sim::Simulator s(2);
  const auto result = s.run(r.program, 500);
  EXPECT_NEAR(result.histogram.frequency("00") +
                  result.histogram.frequency("11"),
              1.0, 1e-9);
}

}  // namespace
}  // namespace qs::compiler
