// Tests for the de novo assembly path (overlap graph + QUBO ordering +
// annealer), the TTS metric, and Display-state logging.
#include <gtest/gtest.h>

#include "anneal/tts.h"
#include "apps/genome/assembly.h"
#include "apps/genome/dna.h"
#include "common/logging.h"
#include "qasm/parser.h"
#include "sim/simulator.h"

namespace qs {
namespace {

using namespace qs::apps::genome;

// -------------------------------------------------------- OverlapGraph ----

TEST(OverlapGraph, SuffixPrefixOverlaps) {
  const OverlapGraph g({"ACGT", "GTAC", "TACG"});
  EXPECT_EQ(g.overlap(0, 1), 2u);  // ACGT -> GTAC share "GT"
  EXPECT_EQ(g.overlap(1, 2), 3u);  // GTAC -> TACG share "TAC"
  EXPECT_EQ(g.overlap(2, 0), 3u);  // TACG -> ACGT share "ACG"
  EXPECT_EQ(g.overlap(1, 0), 2u);  // GTAC -> ACGT share "AC"
}

TEST(OverlapGraph, OverlapDefinitionPinned) {
  const OverlapGraph g({"AAGG", "GGAA"});
  EXPECT_EQ(g.overlap(0, 1), 2u);  // "GG"
  EXPECT_EQ(g.overlap(1, 0), 2u);  // "AA"
  EXPECT_THROW(g.overlap(0, 5), std::out_of_range);
  EXPECT_THROW(OverlapGraph({"ONE"}), std::invalid_argument);
}

TEST(OverlapGraph, AssembleMergesAlongOverlaps) {
  const OverlapGraph g({"ACGT", "GTAC"});
  EXPECT_EQ(g.assemble({0, 1}), "ACGTAC");
  EXPECT_EQ(g.total_overlap({0, 1}), 2u);
}

TEST(OverlapGraph, GreedyRecoversShreddedGenome) {
  DnaGenerator gen(3);
  const std::string genome = gen.markov(30);
  const auto reads = shred(genome, 10, 5);
  const OverlapGraph g(reads);
  const auto order = greedy_assembly_order(g);
  EXPECT_EQ(g.assemble(order), genome);
}

TEST(Shred, CoversGenome) {
  const auto reads = shred("ACGTACGTAC", 4, 2);
  // Every read is a window; first starts at 0; last ends at genome end.
  EXPECT_EQ(reads.front(), "ACGT");
  EXPECT_EQ(reads.back(), "GTAC");
  EXPECT_THROW(shred("ACG", 4, 2), std::invalid_argument);
  EXPECT_THROW(shred("ACGT", 2, 3), std::invalid_argument);
}

// -------------------------------------------------------- AssemblyQubo ----

TEST(AssemblyQubo, EncodingAndDecode) {
  const OverlapGraph g({"ACGT", "GTAC", "TACG"});
  const AssemblyQubo q(g);
  EXPECT_EQ(q.variable_count(), 9u);
  std::vector<int> x(9, 0);
  x[q.var(2, 0)] = 1;
  x[q.var(0, 1)] = 1;
  x[q.var(1, 2)] = 1;
  std::vector<std::size_t> order;
  ASSERT_TRUE(q.decode(x, order));
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 0, 1}));
  // Violations rejected.
  x[q.var(0, 0)] = 1;
  EXPECT_FALSE(q.decode(x, order));
}

TEST(AssemblyQubo, BruteForceMinimumIsBestOrdering) {
  const OverlapGraph g({"ACGT", "GTAC", "TACG"});
  const AssemblyQubo q(g);
  const auto [x, e] = q.qubo().brute_force_minimum();
  std::vector<std::size_t> order;
  ASSERT_TRUE(q.decode(x, order));
  // Exhaustive check over the 6 permutations.
  std::size_t best = 0;
  std::vector<std::size_t> perm{0, 1, 2};
  std::sort(perm.begin(), perm.end());
  do {
    best = std::max(best, g.total_overlap(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(g.total_overlap(order), best);
}

// ------------------------------------------------------ denovo_assemble ----

TEST(DenovoAssembly, ReconstructsGenomeEndToEnd) {
  DnaGenerator gen(11);
  const std::string genome = gen.markov(25);
  const auto reads = shred(genome, 10, 5);
  ASSERT_LE(reads.size() * reads.size(), 64u);  // QUBO stays small
  Rng rng(5);
  const AssemblyResult result = denovo_assemble(reads, rng);
  EXPECT_EQ(result.sequence, genome);
  EXPECT_GT(result.total_overlap, 0u);
}

TEST(DenovoAssembly, ShuffledReadsStillAssemble) {
  DnaGenerator gen(13);
  const std::string genome = gen.markov(22);
  auto reads = shred(genome, 8, 4);
  Rng shuffle_rng(17);
  shuffle_rng.shuffle(reads);
  Rng rng(7);
  const AssemblyResult result = denovo_assemble(reads, rng);
  EXPECT_EQ(result.sequence.size(), genome.size());
  EXPECT_EQ(result.sequence, genome);
}

// ----------------------------------------------------------------- TTS ----

TEST(TimeToSolution, AlwaysSucceedingSolver) {
  Rng rng(1);
  const anneal::TtsResult r = anneal::time_to_solution(
      [](Rng&) { return -5.0; }, -5.0, 100.0, 20, rng);
  EXPECT_EQ(r.success_probability, 1.0);
  EXPECT_EQ(r.tts_sweeps, 100.0);
}

TEST(TimeToSolution, NeverSucceedingSolverIsInfinite) {
  Rng rng(2);
  const anneal::TtsResult r = anneal::time_to_solution(
      [](Rng&) { return 0.0; }, -5.0, 100.0, 20, rng);
  EXPECT_EQ(r.success_probability, 0.0);
  EXPECT_TRUE(std::isinf(r.tts_sweeps));
}

TEST(TimeToSolution, HalfSuccessfulMatchesFormula) {
  Rng rng(3);
  int call = 0;
  const anneal::TtsResult r = anneal::time_to_solution(
      [&call](Rng&) { return (call++ % 2) ? 0.0 : -5.0; }, -5.0, 100.0, 40,
      rng, 0.99);
  EXPECT_NEAR(r.success_probability, 0.5, 1e-9);
  // log(0.01)/log(0.5) ~ 6.64 runs.
  EXPECT_NEAR(r.tts_sweeps, 100.0 * std::log(0.01) / std::log(0.5), 1e-6);
}

TEST(TimeToSolution, ArgumentValidation) {
  Rng rng(4);
  EXPECT_THROW(anneal::time_to_solution([](Rng&) { return 0.0; }, 0, 1, 0,
                                        rng),
               std::invalid_argument);
  EXPECT_THROW(anneal::time_to_solution([](Rng&) { return 0.0; }, 0, 1, 5,
                                        rng, 1.5),
               std::invalid_argument);
}

// -------------------------------------------------------------- Display ----

TEST(Display, DumpsAmplitudesThroughLog) {
  Log::set_capture(true);
  Log::set_level(LogLevel::Info);
  const qasm::Program p = qasm::Parser::parse(R"(
qubits 2
h q[0]
display
)");
  sim::Simulator s(2);
  s.run_once(p);
  const std::string captured = Log::drain_capture();
  Log::set_capture(false);
  Log::set_level(LogLevel::Warn);
  EXPECT_NE(captured.find("state dump"), std::string::npos);
  EXPECT_NE(captured.find("|00>"), std::string::npos);
  EXPECT_NE(captured.find("|10>"), std::string::npos);  // q0=1 leftmost
}

}  // namespace
}  // namespace qs
