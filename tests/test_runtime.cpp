// Unit tests for the runtime: classical optimisers, accelerator
// co-processor models, QAOA and the host offload bookkeeping.
#include <gtest/gtest.h>

#include <cmath>

#include "anneal/chimera.h"
#include "runtime/accelerator.h"
#include "runtime/hybrid.h"
#include "runtime/optimizer.h"
#include "runtime/qaoa.h"

namespace qs::runtime {
namespace {

// ---------------------------------------------------------- Optimizers ----

double sphere(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

double rosenbrock(const std::vector<double>& x) {
  return 100.0 * std::pow(x[1] - x[0] * x[0], 2) + std::pow(1.0 - x[0], 2);
}

TEST(NelderMead, MinimisesSphere) {
  NelderMead::Options opts;
  opts.max_iterations = 300;
  const OptimizeResult r =
      NelderMead(opts).minimize(sphere, {2.0, -1.5, 0.7});
  EXPECT_LT(r.value, 1e-6);
  for (double v : r.x) EXPECT_NEAR(v, 0.0, 1e-2);
  EXPECT_GT(r.evaluations, 10u);
}

TEST(NelderMead, MinimisesRosenbrock) {
  NelderMead::Options opts;
  opts.max_iterations = 2000;
  opts.tolerance = 1e-12;
  const OptimizeResult r = NelderMead(opts).minimize(rosenbrock, {-1.2, 1.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, HistoryMonotoneNonIncreasing) {
  NelderMead::Options opts;
  opts.max_iterations = 100;
  const OptimizeResult r = NelderMead(opts).minimize(sphere, {3.0, 3.0});
  for (std::size_t i = 1; i < r.history.size(); ++i)
    EXPECT_LE(r.history[i], r.history[i - 1] + 1e-12);
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW(NelderMead().minimize(sphere, {}), std::invalid_argument);
}

TEST(Spsa, MinimisesSphereUnderNoise) {
  Rng noise(3);
  const Objective noisy = [&](const std::vector<double>& x) {
    return sphere(x) + noise.normal(0.0, 0.01);
  };
  Spsa::Options opts;
  opts.iterations = 300;
  opts.a = 0.1;
  const OptimizeResult r = Spsa(opts).minimize(noisy, {1.5, -1.0});
  EXPECT_LT(r.value, 0.1);
}

TEST(Spsa, EvaluationBudgetIndependentOfDimension) {
  Spsa::Options opts;
  opts.iterations = 50;
  const OptimizeResult r2 =
      Spsa(opts).minimize(sphere, std::vector<double>(2, 1.0));
  const OptimizeResult r10 =
      Spsa(opts).minimize(sphere, std::vector<double>(10, 1.0));
  EXPECT_EQ(r2.evaluations, r10.evaluations);  // SPSA's selling point
}

TEST(GridSearch, FindsBoxMinimum) {
  GridSearch::Options opts;
  opts.points_per_dim = 21;
  opts.lower = {-1.0, -1.0};
  opts.upper = {1.0, 1.0};
  const OptimizeResult r = GridSearch(opts).minimize(
      [](const std::vector<double>& x) { return sphere(x); });
  EXPECT_NEAR(r.value, 0.0, 1e-9);
  EXPECT_EQ(r.evaluations, 21u * 21u);
}

TEST(GridSearch, BadBoundsThrow) {
  GridSearch::Options opts;
  opts.lower = {0.0};
  opts.upper = {};
  EXPECT_THROW(GridSearch(opts).minimize(sphere), std::invalid_argument);
}

// ------------------------------------------------------- Accelerators ----

TEST(GateAccelerator, ExecuteBellDirect) {
  GateAccelerator acc(compiler::Platform::perfect(2));
  compiler::Program p("bell", 2);
  p.add_kernel("main").ghz(2).measure_all();
  const Histogram hist = acc.execute(p.to_qasm(), 300);
  EXPECT_NEAR(hist.frequency("00") + hist.frequency("11"), 1.0, 1e-9);
  EXPECT_EQ(acc.qubit_count(), 2u);
}

TEST(GateAccelerator, ExecuteBellThroughMicroArch) {
  compiler::Platform platform = compiler::Platform::superconducting17();
  platform.qubit_model = sim::QubitModel::perfect();
  GateAccelerator acc(platform, {}, GatePath::MicroArch, 7);
  compiler::Program p("bell", 2);
  p.add_kernel("main").ghz(2).measure_all();
  const Histogram hist = acc.execute(p.to_qasm(), 200);
  double correlated = 0.0;
  for (const auto& [bits, count] : hist.counts())
    if (bits.substr(0, 2) == "00" || bits.substr(0, 2) == "11")
      correlated += static_cast<double>(count);
  EXPECT_NEAR(correlated / 200.0, 1.0, 1e-9);
}

TEST(GateAccelerator, ExpectationOfDiagonal) {
  GateAccelerator acc(compiler::Platform::perfect(1));
  compiler::Program p("plus", 1);
  p.add_kernel("main").h(0);
  // <Z> via f(basis) = 1 - 2*bit.
  const double z = acc.expectation(p.to_qasm(), [](StateIndex basis) {
    return basis & 1 ? -1.0 : 1.0;
  });
  EXPECT_NEAR(z, 0.0, 1e-9);
}

TEST(AnnealAccelerator, FullyConnectedSolvesTriangle) {
  anneal::Qubo q(3);
  q.add(0, 1, 2.0);
  q.add(1, 2, 2.0);
  q.add(0, 2, 2.0);
  for (std::size_t i = 0; i < 3; ++i) q.add(i, i, -1.0);
  anneal::QuantumAnnealSchedule schedule;
  schedule.sweeps = 300;
  schedule.restarts = 3;
  AnnealAccelerator acc(/*capacity=*/64, schedule);
  EXPECT_FALSE(acc.requires_embedding());
  Rng rng(5);
  const AnnealOutcome outcome = acc.solve(q, rng);
  EXPECT_NEAR(outcome.energy, -1.0, 1e-12);
  EXPECT_FALSE(outcome.embedded);
}

TEST(AnnealAccelerator, TopologyDeviceEmbedsAndSolves) {
  anneal::Qubo q(4);
  // Square of couplings, solvable on a small Chimera.
  q.add(0, 1, 1.0);
  q.add(1, 2, 1.0);
  q.add(2, 3, 1.0);
  q.add(0, 3, 1.0);
  for (std::size_t i = 0; i < 4; ++i) q.add(i, i, -1.5);
  anneal::QuantumAnnealSchedule schedule;
  schedule.sweeps = 400;
  schedule.restarts = 2;
  AnnealAccelerator acc(
      AnnealAccelerator::chimera_hardware(anneal::ChimeraGraph(2, 2, 4)),
      schedule);
  EXPECT_TRUE(acc.requires_embedding());
  Rng rng(7);
  const AnnealOutcome outcome = acc.solve(q, rng);
  EXPECT_TRUE(outcome.embedded);
  EXPECT_GE(outcome.physical_qubits_used, 4u);
  EXPECT_NEAR(outcome.energy, q.brute_force_minimum().second, 1e-9);
}

TEST(AnnealAccelerator, CapacityExceededThrows) {
  anneal::Qubo q(10);
  q.add(0, 1, 1.0);
  AnnealAccelerator acc(/*capacity=*/4);
  Rng rng(1);
  EXPECT_THROW(acc.solve(q, rng), std::runtime_error);
}

// ---------------------------------------------------------------- QAOA ----

/// MaxCut QUBO for a 2-node graph: minimum -1 at x = (1,0) or (0,1).
anneal::Qubo maxcut2() {
  anneal::Qubo q(2);
  q.add(0, 0, -1.0);
  q.add(1, 1, -1.0);
  q.add(0, 1, 2.0);
  return q;
}

/// MaxCut QUBO of a 4-cycle: optimal cut value 4 -> energy -4.
anneal::Qubo maxcut_ring4() {
  anneal::Qubo q(4);
  const std::pair<int, int> edges[] = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  for (auto [a, b] : edges) {
    q.add(a, a, -1.0);
    q.add(b, b, -1.0);
    q.add(a, b, 2.0);
  }
  return q;
}

TEST(Qaoa, CircuitShape) {
  Qaoa qaoa(maxcut2(), QaoaOptions{});
  const qasm::Program circuit = qaoa.build_circuit({0.3, 0.5});
  EXPECT_EQ(circuit.qubit_count(), 2u);
  // init + cost + mixer kernels.
  EXPECT_EQ(circuit.circuits().size(), 3u);
  EXPECT_THROW(qaoa.build_circuit({0.3}), std::invalid_argument);
}

TEST(Qaoa, ExpectationAtZeroParamsIsUniformAverage) {
  // gamma=beta=0: state stays |+...+>, <H> = average QUBO energy.
  Qaoa qaoa(maxcut2(), QaoaOptions{});
  GateAccelerator acc(compiler::Platform::perfect(2));
  const double e = qaoa.expectation({0.0, 0.0}, acc);
  // Energies: 0, -1, -1, 0 -> average -0.5.
  EXPECT_NEAR(e, -0.5, 1e-9);
}

TEST(Qaoa, OptimisedExpectationBeatsUniform) {
  QaoaOptions opts;
  opts.depth = 1;
  opts.optimizer_iterations = 80;
  Qaoa qaoa(maxcut_ring4(), opts);
  GateAccelerator acc(compiler::Platform::perfect(4));
  const QaoaResult r = qaoa.solve(acc);
  EXPECT_LT(r.expectation, -2.0);  // uniform average is -2
  EXPECT_EQ(r.energy, -4.0);       // sampling finds the optimal cut
  EXPECT_GT(r.circuit_evaluations, 10u);
}

TEST(Qaoa, DeeperAnsatzNotWorse) {
  GateAccelerator acc(compiler::Platform::perfect(4));
  QaoaOptions p1;
  p1.depth = 1;
  p1.optimizer_iterations = 60;
  QaoaOptions p2;
  p2.depth = 2;
  p2.optimizer_iterations = 120;
  const double e1 = Qaoa(maxcut_ring4(), p1).solve(acc).expectation;
  const double e2 = Qaoa(maxcut_ring4(), p2).solve(acc).expectation;
  EXPECT_LE(e2, e1 + 0.1);
}

TEST(Qaoa, DecodeBasisConvention) {
  Qaoa qaoa(maxcut2(), QaoaOptions{});
  // basis 0b00 -> both spins +1 -> x = (1,1).
  EXPECT_EQ(qaoa.decode_basis(0), (std::vector<int>{1, 1}));
  // basis 0b01 (q0 = 1) -> x0 = 0.
  EXPECT_EQ(qaoa.decode_basis(1), (std::vector<int>{0, 1}));
}

TEST(Qaoa, ZeroDepthRejected) {
  QaoaOptions opts;
  opts.depth = 0;
  EXPECT_THROW(Qaoa(maxcut2(), opts), std::invalid_argument);
}

// ------------------------------------------------------------- HostCpu ----

TEST(HostCpu, RecordsOffloads) {
  HostCpu host;
  GateAccelerator acc(compiler::Platform::perfect(2));
  compiler::Program p("bell", 2);
  p.add_kernel("main").ghz(2).measure_all();
  const Histogram hist = host.offload(acc, p.to_qasm(), 100);
  EXPECT_EQ(hist.total(), 100u);
  ASSERT_EQ(host.offloads().size(), 1u);
  EXPECT_EQ(host.offloads()[0].shots, 100u);
  EXPECT_EQ(host.offloads()[0].kernel, "bell");
  EXPECT_GE(host.quantum_ms(), 0.0);
}

TEST(HostCpu, ClassicalSectionsTimed) {
  HostCpu host;
  const int result = host.classical("prep", [] { return 41 + 1; });
  EXPECT_EQ(result, 42);
  EXPECT_GE(host.classical_ms(), 0.0);
}

TEST(HostCpu, AnnealOffload) {
  HostCpu host;
  anneal::Qubo q(2);
  q.add(0, 0, -1.0);
  anneal::QuantumAnnealSchedule schedule;
  schedule.sweeps = 50;
  AnnealAccelerator acc(16, schedule);
  Rng rng(3);
  const AnnealOutcome outcome = host.offload(acc, q, rng);
  EXPECT_EQ(outcome.energy, -1.0);
  ASSERT_EQ(host.offloads().size(), 1u);
  EXPECT_EQ(host.offloads()[0].kernel, "qubo[2]");
}

}  // namespace
}  // namespace qs::runtime
