#include "qasm/parser.h"

#include <cctype>
#include <sstream>
#include <vector>

namespace qs::qasm {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string strip_comment(const std::string& s) {
  const std::size_t pos = s.find('#');
  return pos == std::string::npos ? s : s.substr(0, pos);
}

std::string lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

struct Operand {
  enum class Kind { Qubit, Bit, Number } kind;
  QubitIndex index = 0;  // for Qubit / Bit
  double value = 0.0;    // for Number
};

Operand parse_operand(const std::string& raw, std::size_t lineno) {
  const std::string t = trim(raw);
  if (t.empty()) throw ParseError(lineno, "empty operand");
  if ((t[0] == 'q' || t[0] == 'b') && t.size() > 3 && t[1] == '[') {
    if (t.back() != ']')
      throw ParseError(lineno, "malformed register operand: " + t);
    const std::string num = t.substr(2, t.size() - 3);
    try {
      const unsigned long idx = std::stoul(trim(num));
      Operand op;
      op.kind = (t[0] == 'q') ? Operand::Kind::Qubit : Operand::Kind::Bit;
      op.index = static_cast<QubitIndex>(idx);
      return op;
    } catch (const std::exception&) {
      throw ParseError(lineno, "invalid register index: " + t);
    }
  }
  try {
    std::size_t consumed = 0;
    const double v = std::stod(t, &consumed);
    if (consumed != t.size())
      throw ParseError(lineno, "trailing characters in number: " + t);
    Operand op;
    op.kind = Operand::Kind::Number;
    op.value = v;
    return op;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    throw ParseError(lineno, "unrecognised operand: " + t);
  }
}

/// Parses one gate statement (no braces) into an Instruction.
Instruction parse_gate(const std::string& stmt, std::size_t lineno) {
  std::string s = trim(stmt);
  // Count and strip `c-` prefixes for binary-controlled gates.
  std::size_t n_controls = 0;
  while (s.size() > 2 && lower(s.substr(0, 2)) == "c-") {
    ++n_controls;
    s = s.substr(2);
  }
  // Mnemonic is up to the first whitespace.
  std::size_t sp = 0;
  while (sp < s.size() && !std::isspace(static_cast<unsigned char>(s[sp]))) ++sp;
  const std::string mnemonic = lower(s.substr(0, sp));
  const std::string rest = trim(s.substr(sp));

  const auto kind = gate_from_name(mnemonic);
  if (!kind) throw ParseError(lineno, "unknown gate: " + mnemonic);

  std::vector<QubitIndex> qubits;
  std::vector<BitIndex> conditions;
  double angle = 0.0;
  std::int64_t param_k = 0;
  bool have_angle = false;
  bool have_param = false;

  if (!rest.empty()) {
    for (const std::string& tok : split(rest, ',')) {
      const Operand op = parse_operand(tok, lineno);
      switch (op.kind) {
        case Operand::Kind::Qubit:
          qubits.push_back(op.index);
          break;
        case Operand::Kind::Bit:
          conditions.push_back(op.index);
          break;
        case Operand::Kind::Number:
          if (gate_has_angle(*kind) && !have_angle) {
            angle = op.value;
            have_angle = true;
          } else if (gate_has_int_param(*kind) && !have_param) {
            param_k = static_cast<std::int64_t>(op.value);
            have_param = true;
          } else {
            throw ParseError(lineno, "unexpected numeric operand for " +
                                         mnemonic);
          }
          break;
      }
    }
  }

  if (gate_has_angle(*kind) && !have_angle)
    throw ParseError(lineno, mnemonic + " requires an angle operand");
  if (gate_has_int_param(*kind) && !have_param)
    throw ParseError(lineno, mnemonic + " requires an integer operand");
  if (conditions.size() != n_controls)
    throw ParseError(lineno,
                     "binary-control prefix count does not match bit operands");

  try {
    Instruction instr(*kind, std::move(qubits), angle, param_k);
    if (!conditions.empty()) instr.set_conditions(std::move(conditions));
    return instr;
  } catch (const std::invalid_argument& e) {
    throw ParseError(lineno, e.what());
  }
}

}  // namespace

Program Parser::parse(const std::string& text) {
  Program program;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  bool seen_version = false;
  bool seen_qubits = false;
  Circuit* current = nullptr;
  std::int64_t bundle_cycle = 0;

  auto ensure_circuit = [&]() -> Circuit& {
    if (!current) {
      program.add_circuit("main");
      current = &program.circuits().back();
    }
    return *current;
  };

  while (std::getline(in, line)) {
    ++lineno;
    // The printer records the program name as a structured comment;
    // recover it so print -> parse round-trips the full Program.
    const std::string raw = trim(line);
    if (raw.rfind("# program:", 0) == 0) {
      program.set_name(trim(raw.substr(10)));
      continue;
    }
    const std::string t = trim(strip_comment(line));
    if (t.empty()) continue;

    const std::string lt = lower(t);
    if (lt.rfind("version", 0) == 0) {
      if (seen_version) throw ParseError(lineno, "duplicate version line");
      program.set_version(trim(t.substr(7)));
      seen_version = true;
      continue;
    }
    if (lt.rfind("qubits", 0) == 0) {
      if (seen_qubits) throw ParseError(lineno, "duplicate qubits line");
      try {
        program.set_qubit_count(std::stoul(trim(t.substr(6))));
      } catch (const std::exception&) {
        throw ParseError(lineno, "invalid qubit count");
      }
      seen_qubits = true;
      continue;
    }
    if (t[0] == '.') {
      // Subcircuit header: .name or .name(iterations)
      std::string name = t.substr(1);
      std::size_t iters = 1;
      const std::size_t paren = name.find('(');
      if (paren != std::string::npos) {
        if (name.back() != ')')
          throw ParseError(lineno, "malformed subcircuit header");
        try {
          iters = std::stoul(name.substr(paren + 1,
                                         name.size() - paren - 2));
        } catch (const std::exception&) {
          throw ParseError(lineno, "invalid iteration count");
        }
        name = name.substr(0, paren);
      }
      name = trim(name);
      if (name.empty()) throw ParseError(lineno, "empty subcircuit name");
      program.add_circuit(name, iters);
      current = &program.circuits().back();
      continue;
    }
    if (t[0] == '{') {
      // Parallel bundle: { g1 | g2 | ... } — all gates share a cycle.
      if (t.back() != '}')
        throw ParseError(lineno, "bundle must open and close on one line");
      const std::string body = t.substr(1, t.size() - 2);
      Circuit& c = ensure_circuit();
      for (const std::string& stmt : split(body, '|')) {
        if (trim(stmt).empty())
          throw ParseError(lineno, "empty statement in bundle");
        Instruction instr = parse_gate(stmt, lineno);
        instr.set_cycle(bundle_cycle);
        c.add(std::move(instr));
      }
      ++bundle_cycle;
      continue;
    }
    // Plain gate statement.
    Circuit& c = ensure_circuit();
    Instruction instr = parse_gate(t, lineno);
    instr.set_cycle(bundle_cycle);
    ++bundle_cycle;
    c.add(std::move(instr));
  }

  if (!seen_qubits)
    throw ParseError(lineno, "missing 'qubits N' declaration");
  program.validate();
  return program;
}

StatusOr<Program> Parser::parse_or_status(const std::string& text) {
  // parse() reports malformed input through several exception types
  // (ParseError for grammar errors, std::out_of_range for bad qubit
  // indices, std::invalid_argument from numeric conversions); all of them
  // mean "caller sent bad cQASM", i.e. kInvalidArgument.
  try {
    return parse(text);
  } catch (const std::exception& e) {
    return Status::InvalidArgument(std::string("cQASM: ") + e.what());
  } catch (...) {
    return Status::InvalidArgument("cQASM: unknown parse failure");
  }
}

}  // namespace qs::qasm
