#include "qasm/gate_kind.h"

#include <map>
#include <stdexcept>

namespace qs::qasm {

std::size_t gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::MeasureAll:
    case GateKind::Display:
    case GateKind::Wait:
    case GateKind::Barrier:
      return 0;
    case GateKind::PrepZ:
    case GateKind::Measure:
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdag:
    case GateKind::T:
    case GateKind::Tdag:
    case GateKind::X90:
    case GateKind::MX90:
    case GateKind::Y90:
    case GateKind::MY90:
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
      return 1;
    case GateKind::CNOT:
    case GateKind::CZ:
    case GateKind::Swap:
    case GateKind::CR:
    case GateKind::CRK:
    case GateKind::RZZ:
      return 2;
    case GateKind::Toffoli:
      return 3;
  }
  throw std::logic_error("gate_arity: unknown gate kind");
}

bool gate_has_angle(GateKind kind) {
  switch (kind) {
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
    case GateKind::CR:
    case GateKind::RZZ:
      return true;
    default:
      return false;
  }
}

bool gate_has_int_param(GateKind kind) {
  return kind == GateKind::CRK || kind == GateKind::Wait;
}

bool gate_is_unitary(GateKind kind) {
  switch (kind) {
    case GateKind::PrepZ:
    case GateKind::Measure:
    case GateKind::MeasureAll:
    case GateKind::Display:
    case GateKind::Wait:
    case GateKind::Barrier:
      return false;
    default:
      return true;
  }
}

bool gate_is_two_qubit(GateKind kind) { return gate_arity(kind) == 2; }

namespace {

const std::map<GateKind, std::string>& name_table() {
  static const std::map<GateKind, std::string> table = {
      {GateKind::PrepZ, "prep_z"},   {GateKind::Measure, "measure"},
      {GateKind::MeasureAll, "measure_all"},
      {GateKind::I, "i"},            {GateKind::X, "x"},
      {GateKind::Y, "y"},            {GateKind::Z, "z"},
      {GateKind::H, "h"},            {GateKind::S, "s"},
      {GateKind::Sdag, "sdag"},      {GateKind::T, "t"},
      {GateKind::Tdag, "tdag"},      {GateKind::X90, "x90"},
      {GateKind::MX90, "mx90"},      {GateKind::Y90, "y90"},
      {GateKind::MY90, "my90"},      {GateKind::Rx, "rx"},
      {GateKind::Ry, "ry"},          {GateKind::Rz, "rz"},
      {GateKind::CNOT, "cnot"},      {GateKind::CZ, "cz"},
      {GateKind::Swap, "swap"},      {GateKind::CR, "cr"},
      {GateKind::CRK, "crk"},        {GateKind::RZZ, "rzz"},
      {GateKind::Toffoli, "toffoli"},
      {GateKind::Display, "display"},{GateKind::Wait, "wait"},
      {GateKind::Barrier, "barrier"},
  };
  return table;
}

const std::map<std::string, GateKind>& reverse_table() {
  static const std::map<std::string, GateKind> table = [] {
    std::map<std::string, GateKind> t;
    for (const auto& [kind, name] : name_table()) t[name] = kind;
    return t;
  }();
  return table;
}

}  // namespace

const std::string& gate_name(GateKind kind) {
  return name_table().at(kind);
}

std::optional<GateKind> gate_from_name(const std::string& name) {
  auto it = reverse_table().find(name);
  if (it == reverse_table().end()) return std::nullopt;
  return it->second;
}

GateKind gate_inverse(GateKind kind) {
  switch (kind) {
    case GateKind::S: return GateKind::Sdag;
    case GateKind::Sdag: return GateKind::S;
    case GateKind::T: return GateKind::Tdag;
    case GateKind::Tdag: return GateKind::T;
    case GateKind::X90: return GateKind::MX90;
    case GateKind::MX90: return GateKind::X90;
    case GateKind::Y90: return GateKind::MY90;
    case GateKind::MY90: return GateKind::Y90;
    default:
      // Self-inverse Cliffords and parameterised gates (which invert via
      // angle negation) map to themselves.
      return kind;
  }
}

}  // namespace qs::qasm
