#include "qasm/printer.h"

#include <map>
#include <sstream>
#include <vector>

namespace qs::qasm {

namespace {

void print_circuit_body(std::ostringstream& os, const Circuit& c,
                        const PrinterOptions& opts) {
  const auto& instrs = c.instructions();
  if (!opts.bundles) {
    for (const auto& i : instrs) os << "    " << i.to_string() << '\n';
    return;
  }
  // Group consecutive scheduled instructions by cycle. Unscheduled
  // instructions each form their own line.
  std::size_t idx = 0;
  while (idx < instrs.size()) {
    const auto& i = instrs[idx];
    if (!i.is_scheduled()) {
      os << "    " << i.to_string() << '\n';
      ++idx;
      continue;
    }
    const std::int64_t cyc = i.cycle();
    std::vector<const Instruction*> bundle;
    while (idx < instrs.size() && instrs[idx].is_scheduled() &&
           instrs[idx].cycle() == cyc) {
      bundle.push_back(&instrs[idx]);
      ++idx;
    }
    if (opts.cycle_comments) os << "    # cycle " << cyc << '\n';
    if (bundle.size() == 1) {
      os << "    " << bundle[0]->to_string() << '\n';
    } else {
      os << "    { ";
      for (std::size_t b = 0; b < bundle.size(); ++b) {
        if (b) os << " | ";
        os << bundle[b]->to_string();
      }
      os << " }\n";
    }
  }
}

}  // namespace

std::string to_cqasm(const Program& program, const PrinterOptions& opts) {
  std::ostringstream os;
  os << "version " << program.version() << '\n';
  os << "# program: " << program.name() << '\n';
  os << "qubits " << program.qubit_count() << "\n\n";
  for (const auto& c : program.circuits()) {
    os << '.' << c.name();
    if (c.iterations() != 1) os << '(' << c.iterations() << ')';
    os << '\n';
    print_circuit_body(os, c, opts);
    os << '\n';
  }
  return os.str();
}

std::string to_cqasm(const Circuit& circuit, const PrinterOptions& opts) {
  std::ostringstream os;
  print_circuit_body(os, circuit, opts);
  return os.str();
}

}  // namespace qs::qasm
