// Parser for cQASM 1.0-style text into a qasm::Program. Supports the
// header (`version`, `qubits`), named subcircuits with iteration counts,
// comments, parallel bundles `{ a | b }` and binary-controlled gates
// (`c-x b[0], q[1]`).
#pragma once

#include <stdexcept>
#include <string>

#include "common/status.h"
#include "qasm/program.h"

namespace qs::qasm {

/// Error with 1-based source line information.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("cQASM parse error at line " +
                           std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

class Parser {
 public:
  /// Parses a complete cQASM program. Throws ParseError on malformed input.
  static Program parse(const std::string& text);

  /// Exception-free parse for the serving boundary: malformed input
  /// (unknown gate, out-of-range qubit index, truncated line, ...) returns
  /// kInvalidArgument with the parse diagnostic instead of throwing.
  static StatusOr<Program> parse_or_status(const std::string& text);
};

}  // namespace qs::qasm
