// Serialises a qasm::Program to cQASM text. Scheduled circuits are printed
// with parallel bundles `{ g1 | g2 }` grouping instructions that share a
// schedule cycle, matching the cQASM 1.0 bundle notation.
#pragma once

#include <string>

#include "qasm/program.h"

namespace qs::qasm {

struct PrinterOptions {
  /// Emit `{ a | b }` bundles for instructions sharing a cycle.
  bool bundles = true;
  /// Emit a `# cycle N` comment before each bundle (debug aid).
  bool cycle_comments = false;
};

/// Renders the program as cQASM text. The output round-trips through
/// Parser::parse back to an equivalent Program.
std::string to_cqasm(const Program& program, const PrinterOptions& opts = {});

/// Renders a single circuit body (without version/qubits header).
std::string to_cqasm(const Circuit& circuit, const PrinterOptions& opts = {});

}  // namespace qs::qasm
