// A single cQASM instruction: gate kind, qubit operands, optional continuous
// and integer parameters, optional classical control bits, and the schedule
// slot assigned by the compiler's scheduling pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "qasm/gate_kind.h"

namespace qs::qasm {

/// Sentinel for "not scheduled yet".
inline constexpr std::int64_t kUnscheduled = -1;

class Instruction {
 public:
  Instruction() = default;

  /// Constructs and validates operand count against the gate's arity.
  /// Throws std::invalid_argument on arity mismatch.
  Instruction(GateKind kind, std::vector<QubitIndex> qubits,
              double angle = 0.0, std::int64_t param_k = 0);

  GateKind kind() const { return kind_; }
  const std::vector<QubitIndex>& qubits() const { return qubits_; }
  double angle() const { return angle_; }
  std::int64_t param_k() const { return param_k_; }

  /// Classical condition bits: the gate executes only when all listed
  /// measurement bits read 1 (cQASM binary-controlled gates, `c-x`).
  const std::vector<BitIndex>& conditions() const { return conditions_; }
  void set_conditions(std::vector<BitIndex> bits) {
    conditions_ = std::move(bits);
  }
  bool is_conditional() const { return !conditions_.empty(); }

  /// Schedule cycle assigned by the scheduler; kUnscheduled before that.
  std::int64_t cycle() const { return cycle_; }
  void set_cycle(std::int64_t c) { cycle_ = c; }
  bool is_scheduled() const { return cycle_ != kUnscheduled; }

  /// True if this instruction touches the given qubit.
  bool uses_qubit(QubitIndex q) const;

  /// Replaces qubit operands through a logical->physical mapping
  /// (used by the mapper). `map[i]` is the new index of old index i.
  void remap_qubits(const std::vector<QubitIndex>& map);

  /// Canonical single-line cQASM text (no bundle braces, no indent).
  std::string to_string() const;

  bool operator==(const Instruction& other) const;

 private:
  GateKind kind_ = GateKind::I;
  std::vector<QubitIndex> qubits_;
  double angle_ = 0.0;
  std::int64_t param_k_ = 0;
  std::vector<BitIndex> conditions_;
  std::int64_t cycle_ = kUnscheduled;
};

}  // namespace qs::qasm
