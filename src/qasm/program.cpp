#include "qasm/program.h"

#include <algorithm>
#include <stdexcept>

namespace qs::qasm {

std::size_t Circuit::gate_count() const {
  std::size_t n = 0;
  for (const auto& i : instructions_)
    if (gate_is_unitary(i.kind())) ++n;
  return n;
}

std::size_t Circuit::two_qubit_gate_count() const {
  std::size_t n = 0;
  for (const auto& i : instructions_)
    if (gate_is_two_qubit(i.kind())) ++n;
  return n;
}

std::size_t Circuit::depth() const {
  if (instructions_.empty()) return 0;
  bool all_scheduled = std::all_of(
      instructions_.begin(), instructions_.end(),
      [](const Instruction& i) { return i.is_scheduled(); });
  if (!all_scheduled) return instructions_.size();
  std::int64_t max_cycle = 0;
  for (const auto& i : instructions_)
    max_cycle = std::max(max_cycle, i.cycle());
  return static_cast<std::size_t>(max_cycle) + 1;
}

std::size_t Circuit::max_qubit_plus_one() const {
  std::size_t m = 0;
  for (const auto& i : instructions_)
    for (QubitIndex q : i.qubits()) m = std::max<std::size_t>(m, q + 1);
  return m;
}

Circuit& Program::add_circuit(std::string name, std::size_t iterations) {
  circuits_.emplace_back(std::move(name), iterations);
  return circuits_.back();
}

std::vector<Instruction> Program::flatten() const {
  std::vector<Instruction> out;
  out.reserve(total_instructions());
  for (const auto& c : circuits_)
    for (std::size_t it = 0; it < c.iterations(); ++it)
      for (const auto& i : c.instructions()) out.push_back(i);
  return out;
}

std::size_t Program::total_instructions() const {
  std::size_t n = 0;
  for (const auto& c : circuits_) n += c.iterations() * c.size();
  return n;
}

void Program::validate() const {
  for (const auto& c : circuits_) {
    for (const auto& i : c.instructions()) {
      for (QubitIndex q : i.qubits()) {
        if (q >= qubit_count_)
          throw std::out_of_range(
              "Program::validate: qubit q[" + std::to_string(q) +
              "] out of range in circuit '" + c.name() + "' (register size " +
              std::to_string(qubit_count_) + ")");
      }
      for (BitIndex b : i.conditions()) {
        if (b >= qubit_count_)
          throw std::out_of_range(
              "Program::validate: bit b[" + std::to_string(b) +
              "] out of range in circuit '" + c.name() + "'");
      }
    }
  }
}

}  // namespace qs::qasm
