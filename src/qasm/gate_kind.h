// The common quantum assembly (cQASM) gate set. This is the instruction
// vocabulary shared between the OpenQL-like compiler, the QX-like simulator
// and the eQASM micro-architecture back-end (paper Sections 2.4 and 2.7).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace qs::qasm {

/// Every operation expressible in a cQASM circuit.
enum class GateKind {
  // State preparation / readout.
  PrepZ,      ///< Initialise qubit to |0>.
  Measure,    ///< Z-basis measurement of one qubit into its paired bit.
  MeasureAll, ///< Measure every qubit in the register.

  // Single-qubit Clifford + T set.
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdag,
  T,
  Tdag,
  X90,   ///< Rx(+pi/2)  — the native superconducting pulse gate.
  MX90,  ///< Rx(-pi/2)
  Y90,   ///< Ry(+pi/2)
  MY90,  ///< Ry(-pi/2)

  // Parameterised single-qubit rotations.
  Rx,
  Ry,
  Rz,

  // Two-qubit gates.
  CNOT,
  CZ,
  Swap,
  CR,   ///< Controlled phase with explicit angle.
  CRK,  ///< Controlled phase of 2*pi / 2^k (QFT native; k in `param_k`).
  RZZ,  ///< exp(-i * angle/2 * Z(x)Z) — QAOA cost-propagator two-qubit gate.

  // Three-qubit gate.
  Toffoli,

  // Pseudo-instructions.
  Display,  ///< Ask the simulator to dump amplitudes (debug aid).
  Wait,     ///< Explicit idle for `param_k` cycles on the listed qubits.
  Barrier,  ///< Scheduling barrier across the listed qubits.
};

/// Number of qubit operands a gate takes (MeasureAll/Display take zero;
/// Wait/Barrier are variadic and report 0 here).
std::size_t gate_arity(GateKind kind);

/// True for Rx/Ry/Rz/CR/RZZ which carry a continuous angle parameter.
bool gate_has_angle(GateKind kind);

/// True for CRK/Wait which carry an integer parameter.
bool gate_has_int_param(GateKind kind);

/// True if the gate is unitary (excludes prep, measure and pseudo-ops).
bool gate_is_unitary(GateKind kind);

/// True for gates acting on two qubits.
bool gate_is_two_qubit(GateKind kind);

/// Canonical lower-case cQASM mnemonic (e.g. "cnot", "rx", "prep_z").
const std::string& gate_name(GateKind kind);

/// Reverse lookup of a mnemonic; empty optional if unknown.
std::optional<GateKind> gate_from_name(const std::string& name);

/// The inverse gate for self-contained inverses (X->X, S->Sdag, ...).
/// Parameterised gates invert via angle negation and return themselves.
GateKind gate_inverse(GateKind kind);

}  // namespace qs::qasm
