// cQASM program structure: a program is a qubit register declaration plus a
// sequence of named subcircuits, each optionally repeated (cQASM's
// `.name(iterations)` construct).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qasm/instruction.h"

namespace qs::qasm {

/// A named subcircuit with an iteration count.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::string name, std::size_t iterations = 1)
      : name_(std::move(name)), iterations_(iterations) {}

  const std::string& name() const { return name_; }
  std::size_t iterations() const { return iterations_; }
  void set_iterations(std::size_t n) { iterations_ = n; }

  void add(Instruction instr) { instructions_.push_back(std::move(instr)); }
  const std::vector<Instruction>& instructions() const { return instructions_; }
  std::vector<Instruction>& instructions() { return instructions_; }
  std::size_t size() const { return instructions_.size(); }
  bool empty() const { return instructions_.empty(); }

  /// Number of unitary gate instructions (excludes prep/measure/pseudo-ops).
  std::size_t gate_count() const;

  /// Number of two-qubit gate instructions.
  std::size_t two_qubit_gate_count() const;

  /// Circuit depth in schedule cycles; requires all instructions scheduled,
  /// otherwise counts sequential depth (one instruction per cycle).
  std::size_t depth() const;

  /// Highest qubit index used, plus one (0 for an empty circuit).
  std::size_t max_qubit_plus_one() const;

 private:
  std::string name_;
  std::size_t iterations_ = 1;
  std::vector<Instruction> instructions_;
};

/// A complete cQASM program.
class Program {
 public:
  Program() = default;
  Program(std::string name, std::size_t qubit_count)
      : name_(std::move(name)), qubit_count_(qubit_count) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  std::size_t qubit_count() const { return qubit_count_; }
  void set_qubit_count(std::size_t n) { qubit_count_ = n; }

  const std::string& version() const { return version_; }
  void set_version(std::string v) { version_ = std::move(v); }

  Circuit& add_circuit(std::string name, std::size_t iterations = 1);
  void add_circuit(Circuit c) { circuits_.push_back(std::move(c)); }
  const std::vector<Circuit>& circuits() const { return circuits_; }
  std::vector<Circuit>& circuits() { return circuits_; }

  /// Flattens iteration counts into a single linear instruction stream,
  /// the form consumed by the simulator and the eQASM assembler.
  std::vector<Instruction> flatten() const;

  /// Total instruction count across subcircuits (iterations included).
  std::size_t total_instructions() const;

  /// Validates all qubit operands are < qubit_count(). Throws on violation.
  void validate() const;

 private:
  std::string name_;
  std::string version_ = "1.0";
  std::size_t qubit_count_ = 0;
  std::vector<Circuit> circuits_;
};

}  // namespace qs::qasm
