#include "qasm/instruction.h"

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace qs::qasm {

Instruction::Instruction(GateKind kind, std::vector<QubitIndex> qubits,
                         double angle, std::int64_t param_k)
    : kind_(kind), qubits_(std::move(qubits)), angle_(angle),
      param_k_(param_k) {
  const std::size_t arity = gate_arity(kind);
  // Wait/Barrier are variadic (arity reported as 0); MeasureAll/Display take
  // no operands and must get none. A bare `wait n` with no qubit operands
  // is legal cQASM and means "idle the whole register".
  if (kind == GateKind::Wait || kind == GateKind::Barrier) {
    if (qubits_.empty() && kind == GateKind::Barrier)
      throw std::invalid_argument("Instruction: " + gate_name(kind) +
                                  " needs at least one qubit operand");
  } else if (qubits_.size() != arity) {
    throw std::invalid_argument(
        "Instruction: " + gate_name(kind) + " expects " +
        std::to_string(arity) + " qubit operand(s), got " +
        std::to_string(qubits_.size()));
  }
  // Two- and three-qubit gates require distinct operands.
  for (std::size_t i = 0; i < qubits_.size(); ++i)
    for (std::size_t j = i + 1; j < qubits_.size(); ++j)
      if (qubits_[i] == qubits_[j])
        throw std::invalid_argument("Instruction: duplicate qubit operand in " +
                                    gate_name(kind));
}

bool Instruction::uses_qubit(QubitIndex q) const {
  return std::find(qubits_.begin(), qubits_.end(), q) != qubits_.end();
}

void Instruction::remap_qubits(const std::vector<QubitIndex>& map) {
  for (auto& q : qubits_) {
    if (q >= map.size())
      throw std::out_of_range("Instruction::remap_qubits: index out of range");
    q = map[q];
  }
}

std::string Instruction::to_string() const {
  std::ostringstream os;
  for (BitIndex b : conditions_) {
    (void)b;
    os << "c-";
  }
  os << gate_name(kind_);
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    os << (first ? " " : ", ");
    first = false;
    return os;
  };
  for (BitIndex b : conditions_) sep() << "b[" << b << "]";
  for (QubitIndex q : qubits_) sep() << "q[" << q << "]";
  if (gate_has_angle(kind_)) {
    // Shortest representation that round-trips through the parser exactly.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", angle_);
    double readback = 0.0;
    std::sscanf(buf, "%lf", &readback);
    for (int precision = 6; precision < 17; ++precision) {
      char shorter[32];
      std::snprintf(shorter, sizeof shorter, "%.*g", precision, angle_);
      std::sscanf(shorter, "%lf", &readback);
      if (readback == angle_) {
        std::copy(shorter, shorter + sizeof shorter, buf);
        break;
      }
    }
    sep() << buf;
  }
  if (gate_has_int_param(kind_)) sep() << param_k_;
  return os.str();
}

bool Instruction::operator==(const Instruction& other) const {
  return kind_ == other.kind_ && qubits_ == other.qubits_ &&
         std::abs(angle_ - other.angle_) < 1e-12 &&
         param_k_ == other.param_k_ && conditions_ == other.conditions_;
}

}  // namespace qs::qasm
