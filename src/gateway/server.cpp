#include "gateway/server.h"

#include <algorithm>
#include <stdexcept>

namespace qs::gateway {

namespace {

std::string tenant_of(const runtime::RunRequest& request) {
  return request.tenant.empty() ? "default" : request.tenant;
}

std::string tenant_metric(const char* stem, const std::string& tenant) {
  return std::string(stem) + "{tenant=\"" + tenant + "\"}";
}

Status check_quota(const char* who, const TenantQuota& q) {
  const std::string name(who);
  if (q.submit_rate <= 0.0)
    return Status::InvalidArgument(name +
                                   ": token-bucket submit_rate must be > 0");
  if (q.burst < 1.0)
    return Status::InvalidArgument(name +
                                   ": token-bucket burst must be >= 1");
  if (q.max_inflight == 0)
    return Status::InvalidArgument(name + ": max_inflight must be >= 1");
  return Status::Ok();
}

GatewayOptions validated(GatewayOptions options) {
  if (Status v = options.validate(); !v.ok())
    throw std::invalid_argument("GatewayOptions: " + v.message());
  return options;
}

}  // namespace

Status GatewayOptions::validate() const {
  if (host.empty())
    return Status::InvalidArgument("host must not be empty");
  if (backlog < 1)
    return Status::InvalidArgument("backlog must be >= 1");
  if (max_connections == 0)
    return Status::InvalidArgument("max_connections must be >= 1");
  if (progress_poll.count() <= 0)
    return Status::InvalidArgument("progress_poll must be > 0");
  if (max_poll_wait.count() <= 0)
    return Status::InvalidArgument("max_poll_wait must be > 0");
  if (drain_timeout.count() < 0)
    return Status::InvalidArgument("drain_timeout must be >= 0");
  if (Status s = check_quota("default_quota", default_quota); !s.ok())
    return s;
  for (const auto& [tenant, quota] : tenant_quotas) {
    if (Status s = check_quota(("quota for tenant '" + tenant + "'").c_str(),
                               quota);
        !s.ok())
      return s;
  }
  return Status::Ok();
}

GatewayServer::GatewayServer(service::QuantumService& service,
                             GatewayOptions options)
    : service_(service),
      options_(validated(std::move(options))),
      governor_(options_.default_quota, options_.tenant_quotas) {}

GatewayServer::~GatewayServer() { shutdown(); }

Status GatewayServer::start() {
  if (started_.exchange(true))
    return Status::FailedPrecondition("gateway already started");
  Status s = listen_tcp(options_.host, options_.port, options_.backlog,
                        &listener_, &port_);
  if (!s.ok()) {
    started_.store(false);
    return s;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return Status::Ok();
}

std::size_t GatewayServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  std::size_t live = 0;
  for (const auto& conn : conns_)
    if (!conn->done.load()) ++live;
  return live;
}

void GatewayServer::accept_loop() {
  while (!stopping_.load()) {
    Socket sock;
    if (!accept_tcp(listener_, &sock).ok()) break;  // listener shut down
    if (stopping_.load()) break;

    std::lock_guard<std::mutex> lock(conns_mutex_);
    // Reap connections whose threads already finished, so a long-lived
    // gateway does not accumulate joinable threads.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load()) {
        (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    if (conns_.size() >= options_.max_connections) {
      send_error(sock,
                 Status::ResourceExhausted(
                     "gateway connection limit (" +
                     std::to_string(options_.max_connections) + ") reached"));
      continue;  // ~Socket closes
    }
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(sock);
    Conn* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve(raw); });
    conns_.push_back(std::move(conn));
    service_.metrics().counter("qs_gateway_connections_total").inc();
  }
}

Status GatewayServer::negotiate(const Socket& sock, std::uint64_t session,
                                std::uint16_t* version) {
  Frame frame;
  // Accept any frame version in the Hello itself — the whole point of the
  // handshake is agreeing on one.
  if (Status s = read_frame(sock, &frame); !s.ok()) return s;
  if (frame.op != Op::kHello) {
    send_error(sock, Status::FailedPrecondition(
                         "first frame must be Hello, got " +
                         std::string(to_string(frame.op))));
    return Status::FailedPrecondition("no Hello");
  }
  HelloRequest hello;
  Decoder d(frame.payload);
  if (!decode_hello(&d, &hello)) {
    send_error(sock, d.status());
    return d.status();
  }
  const std::uint16_t lo = std::max(hello.min_version, kProtocolVersionMin);
  const std::uint16_t hi = std::min(hello.max_version, kProtocolVersion);
  if (lo > hi) {
    const Status s = Status::FailedPrecondition(
        "no common protocol version: client speaks [" +
        std::to_string(hello.min_version) + ", " +
        std::to_string(hello.max_version) + "], server speaks [" +
        std::to_string(kProtocolVersionMin) + ", " +
        std::to_string(kProtocolVersion) + "]");
    send_error(sock, s);
    return s;
  }
  *version = hi;  // highest version both sides support
  HelloReply reply;
  reply.version = hi;
  reply.server_name = options_.server_name;
  reply.session = session;
  Encoder e;
  encode_hello_reply(reply, &e);
  return write_frame(sock, Op::kHelloOk, e.bytes(), hi);
}

void GatewayServer::serve(Conn* conn) {
  const std::uint64_t session = next_session_.fetch_add(1);
  std::map<std::uint64_t, JobEntry> jobs;

  std::uint16_t version = kProtocolVersion;
  if (negotiate(conn->sock, session, &version).ok()) {
    for (;;) {
      Frame frame;
      if (!read_frame(conn->sock, &frame).ok()) break;
      switch (frame.op) {
        case Op::kSubmit:
          handle_submit(conn->sock, frame, session, &jobs);
          break;
        case Op::kPoll:
          handle_poll(conn->sock, frame, &jobs);
          break;
        case Op::kCancel:
          handle_cancel(conn->sock, frame, &jobs);
          break;
        case Op::kStreamProgress:
          handle_stream(conn->sock, frame, &jobs);
          break;
        case Op::kMetrics:
          handle_metrics(conn->sock);
          break;
        default:
          // Framing is intact (magic/length checked), the op is just not a
          // request we serve — reply and keep the connection.
          if (!send_error(conn->sock,
                          Status::InvalidArgument(
                              "unexpected op " +
                              std::string(to_string(frame.op))))
                   .ok())
            goto done;
          break;
      }
      if (stopping_.load()) break;
    }
  }
done:
  // Jobs never retrieved die with the connection: cancel them so workers
  // stop burning time, and return their tenant slots. Keyed jobs are the
  // exception — the whole point of an idempotency_key is surviving the
  // connection, so only the tenant slot is returned and the job runs on
  // (a resubmission of the key attaches to it or gets its stored result).
  for (auto& [id, entry] : jobs) {
    if (entry.idempotency_key.empty()) entry.handle.cancel();
    retire(entry, nullptr);
  }
  // Signal EOF to the peer now; the fd itself stays open (and is closed
  // after join) so a concurrent shutdown() never touches a reused fd.
  conn->sock.shutdown_rdwr();
  conn->done.store(true);
}

void GatewayServer::handle_submit(const Socket& sock, const Frame& frame,
                                  std::uint64_t session,
                                  std::map<std::uint64_t, JobEntry>* jobs) {
  runtime::RunRequest request;
  Decoder d(frame.payload);
  if (!decode_run_request(&d, &request)) {
    send_error(sock, d.status());
    return;
  }
  request.session = session;

  auto& rejected = service_.metrics().counter("qs_gateway_rejected_total");

  if (draining_.load()) {
    rejected.inc();
    send_error(sock,
               Status::Unavailable("gateway draining: not accepting new jobs"),
               service_.queue_depth());
    return;
  }
  if (Status v = request.validate(); !v.ok()) {
    rejected.inc();
    send_error(sock, v);
    return;
  }

  const std::string tenant = tenant_of(request);
  const std::string idemp_key = request.idempotency_key;
  if (Status a = governor_.admit(tenant); !a.ok()) {
    rejected.inc();
    service_.metrics()
        .counter(tenant_metric("qs_tenant_rejected_total", tenant))
        .inc();
    send_error(sock, std::move(a), service_.queue_depth());
    return;
  }

  // Deadline feasibility: with D jobs queued and an EWMA estimate of E us
  // per job over W workers, a deadline under D*E/W cannot be met — shed it
  // now instead of letting it expire in the queue.
  if (request.deadline && estimator_.estimate_us() > 0.0) {
    const double deadline_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            *request.deadline)
            .count();
    const double est_wait_us =
        static_cast<double>(service_.queue_depth()) *
        estimator_.estimate_us() /
        static_cast<double>(std::max<std::size_t>(1, service_.worker_count()));
    if (deadline_us < est_wait_us) {
      governor_.release(tenant);
      rejected.inc();
      service_.metrics()
          .counter(tenant_metric("qs_tenant_rejected_total", tenant))
          .inc();
      send_error(sock,
                 Status::DeadlineExceeded(
                     "infeasible deadline: estimated queue wait " +
                     std::to_string(static_cast<std::uint64_t>(est_wait_us)) +
                     "us exceeds deadline " +
                     std::to_string(static_cast<std::uint64_t>(deadline_us)) +
                     "us"),
                 service_.queue_depth());
      return;
    }
  }

  service::JobHandle handle = service_.try_submit(std::move(request));

  // try_submit resolves admission rejections synchronously; an
  // immediately-ready handle with a pre-dispatch code is a shed, not a
  // completed job.
  if (handle.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    const runtime::RunResult result = handle.get();
    const StatusCode code = result.status.code();
    if (code == StatusCode::kResourceExhausted ||
        code == StatusCode::kUnavailable ||
        code == StatusCode::kFailedPrecondition ||
        code == StatusCode::kInvalidArgument) {
      governor_.release(tenant);
      rejected.inc();
      send_error(sock, result.status, service_.queue_depth());
      return;
    }
  }

  const auto [jit, inserted] = jobs->emplace(
      handle.id(), JobEntry{handle, tenant, idemp_key});
  if (inserted) {
    outstanding_.fetch_add(1);
  } else {
    // Duplicate keyed submit of a job this connection already owns: the
    // service attached both handles to one job, which holds one tenant
    // slot and counts as one outstanding retrieval.
    governor_.release(tenant);
  }
  service_.metrics().counter("qs_gateway_submits_total").inc();

  SubmitReply reply{handle.id()};
  Encoder e;
  encode_submit_reply(reply, &e);
  write_frame(sock, Op::kSubmitOk, e.bytes());
}

void GatewayServer::handle_poll(const Socket& sock, const Frame& frame,
                                std::map<std::uint64_t, JobEntry>* jobs) {
  PollRequest poll;
  Decoder d(frame.payload);
  if (!decode_poll(&d, &poll)) {
    send_error(sock, d.status());
    return;
  }
  const auto it = jobs->find(poll.job_id);
  if (it == jobs->end()) {
    send_error(sock, Status::NotFound("no such job on this connection: " +
                                      std::to_string(poll.job_id)));
    return;
  }

  // Wait in slices so a long server-side poll never holds this reader
  // thread hostage across a shutdown.
  const auto wait = std::min<std::chrono::microseconds>(
      std::chrono::microseconds(poll.timeout_us), options_.max_poll_wait);
  const auto deadline = std::chrono::steady_clock::now() + wait;
  bool ready =
      it->second.handle.wait_for(std::chrono::seconds(0)) ==
      std::future_status::ready;
  while (!ready && !stopping_.load()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto slice = std::min<std::chrono::steady_clock::duration>(
        deadline - now, std::chrono::milliseconds(50));
    ready = it->second.handle.wait_for(slice) == std::future_status::ready;
  }

  PollReply reply;
  reply.done = ready;
  if (ready) {
    reply.result = it->second.handle.get();
    retire(it->second, &reply.result);
    jobs->erase(it);
  }
  Encoder e;
  encode_poll_reply(reply, &e);
  write_frame(sock, Op::kPollOk, e.bytes());
}

void GatewayServer::handle_cancel(const Socket& sock, const Frame& frame,
                                  std::map<std::uint64_t, JobEntry>* jobs) {
  CancelRequest cancel;
  Decoder d(frame.payload);
  if (!decode_cancel(&d, &cancel)) {
    send_error(sock, d.status());
    return;
  }
  const auto it = jobs->find(cancel.job_id);
  if (it == jobs->end()) {
    send_error(sock, Status::NotFound("no such job on this connection: " +
                                      std::to_string(cancel.job_id)));
    return;
  }
  // Cooperative: the job resolves to kCancelled (or kOk if it won the
  // race), retrieved through a later Poll as usual.
  it->second.handle.cancel();
  write_frame(sock, Op::kCancelOk, {});
}

void GatewayServer::handle_stream(const Socket& sock, const Frame& frame,
                                  std::map<std::uint64_t, JobEntry>* jobs) {
  StreamProgressRequest req;
  Decoder d(frame.payload);
  if (!decode_stream_progress(&d, &req)) {
    send_error(sock, d.status());
    return;
  }
  const auto it = jobs->find(req.job_id);
  if (it == jobs->end()) {
    send_error(sock, Status::NotFound("no such job on this connection: " +
                                      std::to_string(req.job_id)));
    return;
  }

  std::uint64_t last_seq = 0;
  for (;;) {
    if (stopping_.load()) {
      send_error(sock, Status::Unavailable("gateway shutting down"));
      return;
    }
    if (const auto p = service_.progress(req.job_id);
        p && p->seq > last_seq) {
      last_seq = p->seq;
      ProgressUpdate update;
      update.job_id = p->job_id;
      update.seq = p->seq;
      update.shards_total = p->shards_total;
      update.shards_done = p->shards_done;
      update.partial = p->partial;
      Encoder e;
      encode_progress(update, &e);
      if (!write_frame(sock, Op::kProgress, e.bytes()).ok()) return;
      continue;  // drain advances without sleeping
    }
    // Sleep on the handle rather than the clock: completion wakes the
    // stream immediately.
    if (it->second.handle.wait_for(options_.progress_poll) ==
        std::future_status::ready) {
      write_frame(sock, Op::kProgressDone, {});
      return;  // the result itself is fetched through Poll
    }
  }
}

void GatewayServer::handle_metrics(const Socket& sock) {
  Encoder e;
  e.str(service_.metrics().render());
  write_frame(sock, Op::kMetricsOk, e.bytes());
}

void GatewayServer::retire(const JobEntry& entry,
                           const runtime::RunResult* result) {
  if (result && result->status.ok())
    estimator_.observe(result->stats.run_us);
  governor_.release(entry.tenant);
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    outstanding_.fetch_sub(1);
  }
  drain_cv_.notify_all();
}

Status GatewayServer::send_error(const Socket& sock, Status status,
                                 std::uint64_t queue_depth) {
  WireError err;
  err.status = std::move(status);
  err.queue_depth = queue_depth;
  Encoder e;
  encode_error(err, &e);
  return write_frame(sock, Op::kError, e.bytes());
}

void GatewayServer::shutdown() {
  if (!started_.load()) return;
  if (!draining_.exchange(true)) {
    // Bounded drain: give clients a window to retrieve what they already
    // submitted (new Submits are being rejected from this point on).
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait_for(lock, options_.drain_timeout,
                       [this] { return outstanding_.load() == 0; });
  }
  if (stopping_.exchange(true)) return;

  // Wake the acceptor, then every connection reader.
  listener_.shutdown_rdwr();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) conn->sock.shutdown_rdwr();
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::list<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& conn : conns)
    if (conn->thread.joinable()) conn->thread.join();
  listener_.close();
}

}  // namespace qs::gateway
