#include "gateway/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qs::gateway {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

Status parse_addr(const std::string& host, std::uint16_t port,
                  sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1)
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  return Status::Ok();
}

}  // namespace

void Socket::shutdown_rdwr() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status listen_tcp(const std::string& host, std::uint16_t port, int backlog,
                  Socket* out, std::uint16_t* bound_port) {
  sockaddr_in addr;
  if (Status s = parse_addr(host, port, &addr); !s.ok()) return s;

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::Unavailable(errno_text("socket"));
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    return Status::Unavailable(errno_text("bind"));
  if (::listen(sock.fd(), backlog) < 0)
    return Status::Unavailable(errno_text("listen"));
  if (bound_port) {
    socklen_t len = sizeof addr;
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) < 0)
      return Status::Unavailable(errno_text("getsockname"));
    *bound_port = ntohs(addr.sin_port);
  }
  *out = std::move(sock);
  return Status::Ok();
}

Status accept_tcp(const Socket& listener, Socket* out) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      *out = Socket(fd);
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(errno_text("accept"));
  }
}

Status connect_tcp(const std::string& host, std::uint16_t port, Socket* out) {
  sockaddr_in addr;
  if (Status s = parse_addr(host, port, &addr); !s.ok()) return s;

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::Unavailable(errno_text("socket"));
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0)
      break;
    if (errno == EINTR) continue;
    return Status::Unavailable(errno_text("connect"));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  *out = std::move(sock);
  return Status::Ok();
}

Status read_exact(const Socket& sock, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(sock.fd(), p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0)
      return Status::Unavailable(got == 0 ? "connection closed"
                                          : "connection closed mid-frame");
    if (errno == EINTR) continue;
    return Status::Unavailable(errno_text("recv"));
  }
  return Status::Ok();
}

Status write_all(const Socket& sock, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(sock.fd(), p + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(errno_text("send"));
  }
  return Status::Ok();
}

}  // namespace qs::gateway
