// Multi-tenant admission control for the gateway: per-tenant token-bucket
// rate limiting, in-flight quotas and deadline-feasibility shedding. The
// governor decides *before* a Submit touches the service queue — overload
// is shed at the edge with a typed rejection carrying the queue depth,
// never queued-then-dropped and never silently discarded.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace qs::gateway {

/// Admission budget for one tenant. A quota is always fully specified:
/// "unlimited" is expressed by a large rate / inflight cap, not by zero —
/// zero and negative values are configuration bugs GatewayOptions::validate
/// rejects (a silent zero-rate bucket would blackhole a tenant).
struct TenantQuota {
  /// Token-bucket refill: Submits per second this tenant may sustain.
  double submit_rate = 1e6;
  /// Bucket capacity: how many Submits may burst above the sustained rate.
  double burst = 256.0;
  /// Jobs admitted but not yet retrieved (result fetched / cancelled /
  /// connection closed). Caps a tenant's share of queue + worker capacity.
  std::size_t max_inflight = 256;
};

/// Decides admission for Submit requests. One instance per gateway, shared
/// by all connection threads; every method is thread-safe.
///
/// Two independent gates, checked in order:
///   1. token bucket  — sustained-rate + burst control (kResourceExhausted);
///   2. in-flight cap — bounds a tenant's outstanding jobs
///      (kResourceExhausted).
/// Both are charged only on success: a rejected Submit consumes neither a
/// token nor an in-flight slot.
class TenantGovernor {
 public:
  TenantGovernor(TenantQuota default_quota,
                 std::map<std::string, TenantQuota> overrides);

  /// Admission check for one Submit from `tenant`. On Ok an in-flight slot
  /// is held until release(). Rejections name the exhausted budget.
  Status admit(const std::string& tenant);

  /// Returns `tenant`'s in-flight slot (result retrieved, job cancelled,
  /// or owning connection closed).
  void release(const std::string& tenant);

  std::size_t inflight(const std::string& tenant) const;
  const TenantQuota& quota_for(const std::string& tenant) const;

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last{};
    std::size_t inflight = 0;
    bool initialized = false;
  };

  TenantQuota default_quota_;
  std::map<std::string, TenantQuota> overrides_;

  mutable std::mutex mutex_;
  std::map<std::string, Bucket> buckets_;
};

/// EWMA of completed-job wall time, feeding the gateway's deadline
/// feasibility check: a Submit whose deadline cannot survive the current
/// backlog (queue_depth x estimated job time / workers) is rejected with
/// kDeadlineExceeded at admission instead of wasting queue capacity on a
/// job that will time out anyway. Thread-safe.
class RuntimeEstimator {
 public:
  /// Folds one completed job's wall time into the estimate (alpha = 0.2).
  void observe(double run_us);

  /// Current estimate; 0 until the first observation (feasibility checks
  /// pass trivially while the gateway has no data).
  double estimate_us() const;

 private:
  mutable std::mutex mutex_;
  double ewma_us_ = 0.0;
  bool primed_ = false;
};

}  // namespace qs::gateway
