// Minimal POSIX TCP helpers for the gateway: an RAII fd wrapper plus
// typed-Status listen / connect / exact-read / full-write primitives. No
// external dependencies — just <sys/socket.h> — and no exceptions: every
// I/O failure maps to a qs::Status the wire layer can forward. All
// sockets are blocking; shutdown-for-wakeup (Socket::shutdown_rdwr) is how
// the server unblocks reader threads during drain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace qs::gateway {

/// Move-only owner of a socket file descriptor. Closing is idempotent;
/// shutdown_rdwr() wakes any thread blocked in read()/accept() on this fd
/// without racing the close (the fd number stays reserved until close()).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Releases ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Disallows further sends/receives, waking blocked readers with EOF.
  /// Safe to call from another thread while a read is in flight.
  void shutdown_rdwr();

  void close();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = kernel-assigned ephemeral
/// port; *bound_port reports the actual one). kUnavailable on any socket /
/// bind / listen failure, with errno text.
Status listen_tcp(const std::string& host, std::uint16_t port, int backlog,
                  Socket* out, std::uint16_t* bound_port);

/// Blocking accept. kUnavailable once the listener is shut down or closed.
Status accept_tcp(const Socket& listener, Socket* out);

/// Blocking connect with TCP_NODELAY set (the protocol is request /
/// response; Nagle would add 40ms stalls). kUnavailable on failure.
Status connect_tcp(const std::string& host, std::uint16_t port, Socket* out);

/// Reads exactly `n` bytes, retrying on EINTR / short reads.
/// - clean EOF before the first byte: kUnavailable with message
///   "connection closed" (the peer hung up between frames — normal);
/// - EOF mid-buffer: kUnavailable "connection closed mid-frame" (a
///   truncated frame — the caller must treat the stream as corrupt);
/// - any other error: kUnavailable with errno text.
Status read_exact(const Socket& sock, void* buf, std::size_t n);

/// Writes all `n` bytes, retrying on EINTR / short writes. Uses
/// MSG_NOSIGNAL so a dead peer surfaces as kUnavailable, never SIGPIPE.
Status write_all(const Socket& sock, const void* buf, std::size_t n);

}  // namespace qs::gateway
