// The gateway's length-prefixed binary RPC protocol.
//
// Every message is one frame:
//
//   offset  size  field
//   0       4     magic      0x51474154 ("QGAT", big-endian constant)
//   4       2     version    protocol version of the sender (LE)
//   6       2     op         Op code (LE)
//   8       4     length     payload byte count (LE), <= kMaxPayloadBytes
//   12      len   payload    op-specific body, little-endian primitives
//
// Integers are little-endian; f64 is the IEEE-754 bit pattern as u64;
// strings are u32 length + raw bytes; histograms are u32 entry count +
// (string key, u64 count) pairs in key order. Decoders are total: any
// truncation, overflow, oversized length or bad tag decodes to a typed
// kInvalidArgument — never a crash, never an uncaught exception.
//
// Connection lifecycle: the client's first frame must be Hello carrying
// [min_version, max_version]; the server answers HelloOk with the
// negotiated version (the highest both sides support) or an Error frame
// with kFailedPrecondition and closes. After negotiation each request op
// gets exactly one response frame, except StreamProgress which yields any
// number of Progress frames terminated by one ProgressDone (or Error).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "gateway/socket.h"
#include "runtime/run_api.h"

namespace qs::gateway {

inline constexpr std::uint32_t kMagic = 0x51474154;  // "QGAT"
/// Highest protocol version this build speaks / lowest it still accepts.
/// v4 appended `precision` (u8) to the RunRequest body and four fields
/// (precision u8 + fused_gates/fused_ops/fused_max_run u64) to the
/// RunResult body — the precision-tier and gate-fusion contract; v3
/// appended `idempotency_key` to the RunRequest body and two u8 fields
/// (journal_recovered / idempotent_hit) to the RunResult body — the
/// exactly-once resubmission contract; v2 appended two u8 store-tier
/// fields to RunResult. Older peers are no longer accepted.
inline constexpr std::uint16_t kProtocolVersion = 4;
inline constexpr std::uint16_t kProtocolVersionMin = 4;
/// Hard cap on a frame payload; a length prefix above this is rejected
/// before any allocation (a corrupt or hostile peer cannot OOM the
/// server).
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

/// Frame op codes. Requests are 1..99, responses 101..199. Never reuse or
/// renumber — version negotiation only works if old codes keep meaning.
enum class Op : std::uint16_t {
  kHello = 1,
  kSubmit = 2,
  kPoll = 3,
  kCancel = 4,
  kStreamProgress = 5,
  kMetrics = 6,

  kHelloOk = 101,
  kSubmitOk = 102,
  kPollOk = 103,
  kCancelOk = 104,
  kProgress = 105,
  kProgressDone = 106,
  kMetricsOk = 107,
  kError = 199,
};

const char* to_string(Op op);

struct Frame {
  Op op = Op::kError;
  std::uint16_t version = kProtocolVersion;
  std::vector<std::uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Encoder / decoder primitives
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void str(const std::string& s);
  void histogram(const Histogram& h);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a payload. Every accessor
/// returns false (and latches a kInvalidArgument status) on truncation;
/// decode functions bail out on the first failure. A decoder never reads
/// past its buffer and never throws.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size)
      : p_(data), n_(size) {}
  explicit Decoder(const std::vector<std::uint8_t>& payload)
      : Decoder(payload.data(), payload.size()) {}

  bool u8(std::uint8_t* v);
  bool u16(std::uint16_t* v);
  bool u32(std::uint32_t* v);
  bool u64(std::uint64_t* v);
  bool i32(std::int32_t* v);
  bool f64(double* v);
  bool str(std::string* s);
  bool histogram(Histogram* h);

  /// True when the payload was consumed exactly; trailing garbage is a
  /// framing error (fail()s the decoder).
  bool finish();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  std::size_t remaining() const { return n_ - off_; }

  /// Latches a decode failure (used by message-level decoders for value
  /// errors, e.g. an unknown enum tag).
  void fail(std::string message);

 private:
  bool need(std::size_t k);

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
  Status status_;
};

// ---------------------------------------------------------------------------
// Message bodies
// ---------------------------------------------------------------------------

struct HelloRequest {
  std::uint16_t min_version = kProtocolVersionMin;
  std::uint16_t max_version = kProtocolVersion;
  std::string client_name;
};

struct HelloReply {
  std::uint16_t version = kProtocolVersion;  ///< negotiated
  std::string server_name;
  std::uint64_t session = 0;  ///< server-assigned session id
};

struct SubmitReply {
  std::uint64_t job_id = 0;
};

struct PollRequest {
  std::uint64_t job_id = 0;
  /// How long the server may block waiting for completion before replying
  /// "still running". 0 = return immediately.
  std::uint64_t timeout_us = 0;
};

struct PollReply {
  bool done = false;
  runtime::RunResult result;  ///< meaningful only when done
};

struct CancelRequest {
  std::uint64_t job_id = 0;
};

struct StreamProgressRequest {
  std::uint64_t job_id = 0;
};

struct ProgressUpdate {
  std::uint64_t job_id = 0;
  std::uint64_t seq = 0;
  std::uint64_t shards_total = 0;
  std::uint64_t shards_done = 0;
  Histogram partial;
};

/// Error frame body. `queue_depth` rides along on admission rejections
/// (kResourceExhausted / kDeadlineExceeded) so clients can implement
/// informed backoff; 0 otherwise.
struct WireError {
  Status status;
  std::uint64_t queue_depth = 0;
};

void encode_hello(const HelloRequest& m, Encoder* e);
bool decode_hello(Decoder* d, HelloRequest* m);
void encode_hello_reply(const HelloReply& m, Encoder* e);
bool decode_hello_reply(Decoder* d, HelloReply* m);

/// RunRequest on the wire. Carried fields: tenant, session, payload (cQASM
/// text or QUBO terms), shots, seed, priority, deadline_us, sim_threads,
/// tag, idempotency_key (v3), precision (v4). Not carried (host-side
/// concerns): faults, checkpoint_key; a structured `program` is printed to
/// cQASM text by the client library.
void encode_run_request(const runtime::RunRequest& m, Encoder* e);
bool decode_run_request(Decoder* d, runtime::RunRequest* m);

void encode_run_result(const runtime::RunResult& m, Encoder* e);
bool decode_run_result(Decoder* d, runtime::RunResult* m);

void encode_submit_reply(const SubmitReply& m, Encoder* e);
bool decode_submit_reply(Decoder* d, SubmitReply* m);
void encode_poll(const PollRequest& m, Encoder* e);
bool decode_poll(Decoder* d, PollRequest* m);
void encode_poll_reply(const PollReply& m, Encoder* e);
bool decode_poll_reply(Decoder* d, PollReply* m);
void encode_cancel(const CancelRequest& m, Encoder* e);
bool decode_cancel(Decoder* d, CancelRequest* m);
void encode_stream_progress(const StreamProgressRequest& m, Encoder* e);
bool decode_stream_progress(Decoder* d, StreamProgressRequest* m);
void encode_progress(const ProgressUpdate& m, Encoder* e);
bool decode_progress(Decoder* d, ProgressUpdate* m);
void encode_error(const WireError& m, Encoder* e);
bool decode_error(Decoder* d, WireError* m);

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Reads one frame. Typed failures:
/// - kUnavailable "connection closed": clean EOF between frames;
/// - kUnavailable "connection closed mid-frame": peer died mid-frame;
/// - kInvalidArgument: bad magic / length above kMaxPayloadBytes /
///   version outside [min_version, kProtocolVersion] — the stream is
///   unsynchronized and the caller must close the connection.
Status read_frame(const Socket& sock, Frame* frame,
                  std::uint16_t min_version = kProtocolVersionMin);

/// Writes header + payload as one buffer (one syscall on the fast path).
Status write_frame(const Socket& sock, Op op,
                   const std::vector<std::uint8_t>& payload,
                   std::uint16_t version = kProtocolVersion);

}  // namespace qs::gateway
