#include "gateway/tenant.h"

#include <algorithm>

namespace qs::gateway {

TenantGovernor::TenantGovernor(TenantQuota default_quota,
                               std::map<std::string, TenantQuota> overrides)
    : default_quota_(default_quota), overrides_(std::move(overrides)) {}

const TenantQuota& TenantGovernor::quota_for(const std::string& tenant) const {
  const auto it = overrides_.find(tenant);
  return it == overrides_.end() ? default_quota_ : it->second;
}

Status TenantGovernor::admit(const std::string& tenant) {
  const TenantQuota& quota = quota_for(tenant);
  const auto now = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = buckets_[tenant];
  if (!bucket.initialized) {
    bucket.tokens = quota.burst;  // a fresh tenant starts with a full burst
    bucket.last = now;
    bucket.initialized = true;
  } else {
    const double dt =
        std::chrono::duration<double>(now - bucket.last).count();
    bucket.tokens =
        std::min(quota.burst, bucket.tokens + dt * quota.submit_rate);
    bucket.last = now;
  }

  if (bucket.tokens < 1.0)
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' rate limit: bucket empty (rate " +
        std::to_string(quota.submit_rate) + "/s, burst " +
        std::to_string(quota.burst) + ")");
  if (bucket.inflight >= quota.max_inflight)
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' in-flight quota: " +
        std::to_string(bucket.inflight) + "/" +
        std::to_string(quota.max_inflight) + " jobs outstanding");

  bucket.tokens -= 1.0;
  ++bucket.inflight;
  return Status::Ok();
}

void TenantGovernor::release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = buckets_.find(tenant);
  if (it != buckets_.end() && it->second.inflight > 0) --it->second.inflight;
}

std::size_t TenantGovernor::inflight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = buckets_.find(tenant);
  return it == buckets_.end() ? 0 : it->second.inflight;
}

void RuntimeEstimator::observe(double run_us) {
  if (run_us < 0.0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!primed_) {
    ewma_us_ = run_us;
    primed_ = true;
  } else {
    ewma_us_ = 0.8 * ewma_us_ + 0.2 * run_us;
  }
}

double RuntimeEstimator::estimate_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return primed_ ? ewma_us_ : 0.0;
}

}  // namespace qs::gateway
