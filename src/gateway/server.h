// GatewayServer: the network front door of the serving stack. Listens on
// TCP, speaks the versioned binary frame protocol (wire.h), and drives one
// QuantumService on behalf of remote, mutually-untrusted tenants.
//
// Connection model: one blocking reader thread per connection (bounded by
// GatewayOptions::max_connections; excess connections are turned away with
// kResourceExhausted before Hello). A connection is strictly
// request/response — one op at a time — so a client that wants to stream
// progress while submitting more work opens a second connection.
//
// Admission pipeline for Submit, in order, all *before* the service queue
// (shed-before-queue — an overloaded gateway rejects with a typed status
// carrying the current queue depth; it never queues work it will drop):
//   1. drain gate            — kUnavailable once shutdown() began;
//   2. request validation    — kInvalidArgument;
//   3. tenant token bucket   — kResourceExhausted (rate);
//   4. tenant in-flight cap  — kResourceExhausted (quota);
//   5. deadline feasibility  — kDeadlineExceeded when the EWMA-estimated
//      queue wait already exceeds the request deadline;
//   6. service queue         — try_submit; a full queue is
//      kResourceExhausted with the depth, never blocking backpressure.
// Admitted jobs land in the service's weighted-fair queue, which shares
// dispatch across tenants by configured weight.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "gateway/socket.h"
#include "gateway/tenant.h"
#include "gateway/wire.h"
#include "service/service.h"

namespace qs::gateway {

struct GatewayOptions {
  std::string host = "127.0.0.1";
  /// 0 binds a kernel-assigned ephemeral port; read it back via port().
  std::uint16_t port = 0;
  int backlog = 64;
  std::size_t max_connections = 64;

  /// Admission budget for tenants without an explicit entry below.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;

  /// How long shutdown() waits for outstanding jobs to be retrieved before
  /// forcing connections closed.
  std::chrono::milliseconds drain_timeout{2000};
  /// StreamProgress poll cadence (how often the streamer re-checks the
  /// job's progress sequence number).
  std::chrono::microseconds progress_poll{500};
  /// Cap on the server-side block of a single Poll, whatever the client
  /// asked for (bounds reader-thread occupancy).
  std::chrono::microseconds max_poll_wait{30'000'000};

  std::string server_name = "qs-gateway";

  /// kInvalidArgument on configurations that would misbehave silently:
  /// empty host, non-positive backlog / connection cap / poll cadence, and
  /// any quota with a non-positive token-bucket rate, burst below one
  /// token, or a zero in-flight cap (each would blackhole a tenant).
  Status validate() const;
};

/// The TCP server. Construction validates options (throwing
/// std::invalid_argument on a bad config — a wiring bug); start() binds
/// and begins accepting; shutdown() drains and joins. One instance serves
/// one QuantumService, which must outlive it.
class GatewayServer {
 public:
  GatewayServer(service::QuantumService& service, GatewayOptions options = {});

  /// Calls shutdown().
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  /// Binds host:port and starts the accept thread. kUnavailable when the
  /// bind fails (port taken); safe to call once.
  Status start();

  /// Graceful stop: (1) new Submits are rejected with kUnavailable while
  /// Poll / StreamProgress / Metrics keep working, (2) waits up to
  /// drain_timeout for outstanding jobs to be retrieved, (3) closes the
  /// listener and all connections, cancelling whatever jobs were never
  /// retrieved, and joins every thread. Idempotent.
  void shutdown();

  /// The bound port (resolves port 0 to the actual ephemeral port).
  std::uint16_t port() const { return port_; }
  const GatewayOptions& options() const { return options_; }

  std::size_t active_connections() const;
  /// Jobs admitted through this gateway and not yet retrieved.
  std::size_t outstanding_jobs() const { return outstanding_.load(); }

 private:
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// A job owned by one connection: the service handle plus the tenant
  /// whose in-flight slot it holds. Keyed jobs (non-empty idempotency_key)
  /// outlive their connection: a disconnect releases the tenant slot but
  /// does not cancel the job, so a reconnecting client can resubmit the
  /// same key and attach to the still-running (or journaled) job.
  struct JobEntry {
    service::JobHandle handle;
    std::string tenant;
    std::string idempotency_key;
  };

  void accept_loop();
  void serve(Conn* conn);

  /// Hello exchange. On success *version holds the negotiated protocol
  /// version and the HelloOk frame has been sent.
  Status negotiate(const Socket& sock, std::uint64_t session,
                   std::uint16_t* version);

  void handle_submit(const Socket& sock, const Frame& frame,
                     std::uint64_t session,
                     std::map<std::uint64_t, JobEntry>* jobs);
  void handle_poll(const Socket& sock, const Frame& frame,
                   std::map<std::uint64_t, JobEntry>* jobs);
  void handle_cancel(const Socket& sock, const Frame& frame,
                     std::map<std::uint64_t, JobEntry>* jobs);
  void handle_stream(const Socket& sock, const Frame& frame,
                     std::map<std::uint64_t, JobEntry>* jobs);
  void handle_metrics(const Socket& sock);

  /// Marks one outstanding job retrieved: releases the tenant slot, feeds
  /// the runtime estimator, wakes the drain waiter.
  void retire(const JobEntry& entry, const runtime::RunResult* result);

  Status send_error(const Socket& sock, Status status,
                    std::uint64_t queue_depth = 0);

  service::QuantumService& service_;
  GatewayOptions options_;
  TenantGovernor governor_;
  RuntimeEstimator estimator_;

  Socket listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;

  mutable std::mutex conns_mutex_;
  std::list<std::unique_ptr<Conn>> conns_;

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::atomic<std::size_t> outstanding_{0};

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};  ///< reject new Submits
  std::atomic<bool> stopping_{false};  ///< tear down connections
  std::atomic<std::uint64_t> next_session_{1};
};

}  // namespace qs::gateway
