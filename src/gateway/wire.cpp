#include "gateway/wire.h"

#include <cstring>

#include "qasm/printer.h"

namespace qs::gateway {

namespace {

// RunRequest payload discriminator.
constexpr std::uint8_t kPayloadGateText = 0;
constexpr std::uint8_t kPayloadQubo = 1;

constexpr std::uint8_t kKindGate = 0;
constexpr std::uint8_t kKindAnneal = 1;

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kHello: return "Hello";
    case Op::kSubmit: return "Submit";
    case Op::kPoll: return "Poll";
    case Op::kCancel: return "Cancel";
    case Op::kStreamProgress: return "StreamProgress";
    case Op::kMetrics: return "Metrics";
    case Op::kHelloOk: return "HelloOk";
    case Op::kSubmitOk: return "SubmitOk";
    case Op::kPollOk: return "PollOk";
    case Op::kCancelOk: return "CancelOk";
    case Op::kProgress: return "Progress";
    case Op::kProgressDone: return "ProgressDone";
    case Op::kMetricsOk: return "MetricsOk";
    case Op::kError: return "Error";
  }
  return "Op(?)";
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

void Encoder::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Encoder::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::histogram(const Histogram& h) {
  u32(static_cast<std::uint32_t>(h.counts().size()));
  for (const auto& [key, count] : h.counts()) {
    str(key);
    u64(count);
  }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

bool Decoder::need(std::size_t k) {
  if (!status_.ok()) return false;
  if (n_ - off_ < k) {
    fail("truncated payload");
    return false;
  }
  return true;
}

void Decoder::fail(std::string message) {
  if (status_.ok()) status_ = Status::InvalidArgument(std::move(message));
}

bool Decoder::u8(std::uint8_t* v) {
  if (!need(1)) return false;
  *v = p_[off_++];
  return true;
}

bool Decoder::u16(std::uint16_t* v) {
  if (!need(2)) return false;
  *v = static_cast<std::uint16_t>(p_[off_] | (p_[off_ + 1] << 8));
  off_ += 2;
  return true;
}

bool Decoder::u32(std::uint32_t* v) {
  if (!need(4)) return false;
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= std::uint32_t{p_[off_ + i]} << (8 * i);
  off_ += 4;
  *v = x;
  return true;
}

bool Decoder::u64(std::uint64_t* v) {
  if (!need(8)) return false;
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= std::uint64_t{p_[off_ + i]} << (8 * i);
  off_ += 8;
  *v = x;
  return true;
}

bool Decoder::i32(std::int32_t* v) {
  std::uint32_t x;
  if (!u32(&x)) return false;
  *v = static_cast<std::int32_t>(x);
  return true;
}

bool Decoder::f64(double* v) {
  std::uint64_t bits;
  if (!u64(&bits)) return false;
  std::memcpy(v, &bits, sizeof bits);
  return true;
}

bool Decoder::str(std::string* s) {
  std::uint32_t len;
  if (!u32(&len)) return false;
  // A length prefix larger than the bytes actually present is the classic
  // amplification bug; check before allocating.
  if (!need(len)) return false;
  s->assign(reinterpret_cast<const char*>(p_ + off_), len);
  off_ += len;
  return true;
}

bool Decoder::histogram(Histogram* h) {
  std::uint32_t entries;
  if (!u32(&entries)) return false;
  *h = Histogram();
  for (std::uint32_t i = 0; i < entries; ++i) {
    std::string key;
    std::uint64_t count;
    if (!str(&key) || !u64(&count)) return false;
    h->add(key, static_cast<std::size_t>(count));
  }
  return true;
}

bool Decoder::finish() {
  if (!status_.ok()) return false;
  if (off_ != n_) {
    fail("trailing bytes after message body");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Message bodies
// ---------------------------------------------------------------------------

namespace {

void encode_status(const Status& s, Encoder* e) {
  e->u16(status_code_to_wire(s.code()));
  e->str(s.message());
}

bool decode_status(Decoder* d, Status* s) {
  std::uint16_t wire;
  std::string message;
  if (!d->u16(&wire) || !d->str(&message)) return false;
  *s = Status(status_code_from_wire(wire), std::move(message));
  return true;
}

}  // namespace

void encode_hello(const HelloRequest& m, Encoder* e) {
  e->u16(m.min_version);
  e->u16(m.max_version);
  e->str(m.client_name);
}

bool decode_hello(Decoder* d, HelloRequest* m) {
  return d->u16(&m->min_version) && d->u16(&m->max_version) &&
         d->str(&m->client_name) && d->finish();
}

void encode_hello_reply(const HelloReply& m, Encoder* e) {
  e->u16(m.version);
  e->str(m.server_name);
  e->u64(m.session);
}

bool decode_hello_reply(Decoder* d, HelloReply* m) {
  return d->u16(&m->version) && d->str(&m->server_name) &&
         d->u64(&m->session) && d->finish();
}

void encode_run_request(const runtime::RunRequest& m, Encoder* e) {
  e->str(m.tenant);
  e->u64(m.session);
  if (m.qubo) {
    e->u8(kPayloadQubo);
    e->u32(static_cast<std::uint32_t>(m.qubo->size()));
    e->u32(static_cast<std::uint32_t>(m.qubo->terms().size()));
    for (const auto& [ij, w] : m.qubo->terms()) {
      e->u32(static_cast<std::uint32_t>(ij.first));
      e->u32(static_cast<std::uint32_t>(ij.second));
      e->f64(w);
    }
  } else {
    e->u8(kPayloadGateText);
    // A structured program is flattened to cQASM source; the server parses
    // at dispatch, so both submission styles meet on the same bytes.
    e->str(m.program_text ? *m.program_text
                          : (m.program ? qasm::to_cqasm(*m.program)
                                       : std::string()));
  }
  e->u64(m.shots);
  e->u64(m.seed);
  e->i32(m.priority);
  if (m.deadline) {
    e->u8(1);
    e->u64(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(*m.deadline)
            .count()));
  } else {
    e->u8(0);
  }
  e->u64(m.sim_threads);
  e->str(m.tag);
  e->str(m.idempotency_key);  // v3
  e->u8(static_cast<std::uint8_t>(m.precision));  // v4
}

bool decode_run_request(Decoder* d, runtime::RunRequest* m) {
  *m = runtime::RunRequest{};
  std::uint8_t payload_tag;
  if (!d->str(&m->tenant) || !d->u64(&m->session) || !d->u8(&payload_tag))
    return false;
  if (payload_tag == kPayloadGateText) {
    std::string text;
    if (!d->str(&text)) return false;
    m->program_text = std::move(text);
  } else if (payload_tag == kPayloadQubo) {
    std::uint32_t n, terms;
    if (!d->u32(&n) || !d->u32(&terms)) return false;
    anneal::Qubo qubo(n);
    for (std::uint32_t t = 0; t < terms; ++t) {
      std::uint32_t i, j;
      double w;
      if (!d->u32(&i) || !d->u32(&j) || !d->f64(&w)) return false;
      if (i >= n || j >= n) {
        d->fail("qubo term index out of range");
        return false;
      }
      qubo.add(i, j, w);
    }
    m->qubo = std::move(qubo);
  } else {
    d->fail("unknown run-request payload tag");
    return false;
  }
  std::uint64_t shots, seed, deadline_us, sim_threads;
  std::uint8_t has_deadline, precision;
  if (!d->u64(&shots) || !d->u64(&seed) || !d->i32(&m->priority) ||
      !d->u8(&has_deadline) ||
      (has_deadline != 0 && !d->u64(&deadline_us)) || !d->u64(&sim_threads) ||
      !d->str(&m->tag) || !d->str(&m->idempotency_key) ||
      !d->u8(&precision) ||  // v4
      !d->finish())
    return false;
  if (has_deadline > 1) {
    d->fail("bad deadline flag");
    return false;
  }
  if (precision > 1) {
    d->fail("bad precision tier");
    return false;
  }
  m->precision = static_cast<Precision>(precision);
  m->shots = static_cast<std::size_t>(shots);
  m->seed = seed;
  if (has_deadline)
    m->deadline = std::chrono::microseconds(deadline_us);
  m->sim_threads = static_cast<std::size_t>(sim_threads);
  return true;
}

void encode_run_result(const runtime::RunResult& m, Encoder* e) {
  e->u64(m.job_id);
  e->u8(m.kind == runtime::JobKind::Gate ? kKindGate : kKindAnneal);
  e->str(m.tag);
  encode_status(m.status, e);
  e->histogram(m.histogram);
  e->u32(static_cast<std::uint32_t>(m.best_solution.size()));
  for (int bit : m.best_solution) e->i32(bit);
  e->f64(m.best_energy);
  e->f64(m.stats.queue_wait_us);
  e->f64(m.stats.run_us);
  e->u8(m.stats.compile_cache_hit ? 1 : 0);
  e->u64(m.stats.retries);
  e->u64(m.stats.shards);
  e->u64(m.stats.failovers);
  e->u64(m.stats.shards_resumed);
  e->u64(m.stats.shards_executed);
  e->u64(m.stats.dispatch_seq);
  e->u8(m.stats.sampled ? 1 : 0);
  e->u8(m.stats.final_state_cache_hit ? 1 : 0);
  e->u8(static_cast<std::uint8_t>(m.stats.compile_cache_tier));
  e->u8(static_cast<std::uint8_t>(m.stats.final_state_cache_tier));
  e->u8(m.stats.journal_recovered ? 1 : 0);  // v3
  e->u8(m.stats.idempotent_hit ? 1 : 0);     // v3
  e->u8(static_cast<std::uint8_t>(m.stats.precision));  // v4
  e->u64(m.stats.fused_gates);                          // v4
  e->u64(m.stats.fused_ops);                            // v4
  e->u64(m.stats.fused_max_run);                        // v4
}

bool decode_run_result(Decoder* d, runtime::RunResult* m) {
  *m = runtime::RunResult{};
  std::uint8_t kind;
  if (!d->u64(&m->job_id) || !d->u8(&kind) || !d->str(&m->tag) ||
      !decode_status(d, &m->status) || !d->histogram(&m->histogram))
    return false;
  if (kind != kKindGate && kind != kKindAnneal) {
    d->fail("unknown job kind");
    return false;
  }
  m->kind = kind == kKindGate ? runtime::JobKind::Gate
                              : runtime::JobKind::Anneal;
  std::uint32_t bits;
  if (!d->u32(&bits)) return false;
  m->best_solution.clear();
  for (std::uint32_t i = 0; i < bits; ++i) {
    std::int32_t bit;
    if (!d->i32(&bit)) return false;
    m->best_solution.push_back(bit);
  }
  std::uint64_t retries, shards, failovers, resumed, executed, dispatch_seq;
  std::uint64_t fused_gates, fused_ops, fused_max_run;
  std::uint8_t cache_hit, sampled, fsc_hit, compile_tier, final_tier;
  std::uint8_t recovered, idem_hit, precision;
  if (!d->f64(&m->best_energy) || !d->f64(&m->stats.queue_wait_us) ||
      !d->f64(&m->stats.run_us) || !d->u8(&cache_hit) || !d->u64(&retries) ||
      !d->u64(&shards) || !d->u64(&failovers) || !d->u64(&resumed) ||
      !d->u64(&executed) || !d->u64(&dispatch_seq) || !d->u8(&sampled) ||
      !d->u8(&fsc_hit) || !d->u8(&compile_tier) || !d->u8(&final_tier) ||
      !d->u8(&recovered) || !d->u8(&idem_hit) ||
      !d->u8(&precision) || !d->u64(&fused_gates) ||  // v4
      !d->u64(&fused_ops) || !d->u64(&fused_max_run) || !d->finish())
    return false;
  if (compile_tier > 2 || final_tier > 2) {
    d->fail("bad store tier");
    return false;
  }
  if (precision > 1) {
    d->fail("bad precision tier");
    return false;
  }
  m->stats.precision = static_cast<Precision>(precision);
  m->stats.fused_gates = static_cast<std::size_t>(fused_gates);
  m->stats.fused_ops = static_cast<std::size_t>(fused_ops);
  m->stats.fused_max_run = static_cast<std::size_t>(fused_max_run);
  m->stats.compile_cache_tier = static_cast<runtime::CacheTier>(compile_tier);
  m->stats.final_state_cache_tier = static_cast<runtime::CacheTier>(final_tier);
  m->stats.compile_cache_hit = cache_hit != 0;
  m->stats.retries = static_cast<std::size_t>(retries);
  m->stats.shards = static_cast<std::size_t>(shards);
  m->stats.failovers = static_cast<std::size_t>(failovers);
  m->stats.shards_resumed = static_cast<std::size_t>(resumed);
  m->stats.shards_executed = static_cast<std::size_t>(executed);
  m->stats.dispatch_seq = dispatch_seq;
  m->stats.sampled = sampled != 0;
  m->stats.final_state_cache_hit = fsc_hit != 0;
  m->stats.journal_recovered = recovered != 0;
  m->stats.idempotent_hit = idem_hit != 0;
  return true;
}

void encode_submit_reply(const SubmitReply& m, Encoder* e) { e->u64(m.job_id); }

bool decode_submit_reply(Decoder* d, SubmitReply* m) {
  return d->u64(&m->job_id) && d->finish();
}

void encode_poll(const PollRequest& m, Encoder* e) {
  e->u64(m.job_id);
  e->u64(m.timeout_us);
}

bool decode_poll(Decoder* d, PollRequest* m) {
  return d->u64(&m->job_id) && d->u64(&m->timeout_us) && d->finish();
}

void encode_poll_reply(const PollReply& m, Encoder* e) {
  e->u8(m.done ? 1 : 0);
  if (m.done) encode_run_result(m.result, e);
}

bool decode_poll_reply(Decoder* d, PollReply* m) {
  std::uint8_t done;
  if (!d->u8(&done)) return false;
  if (done > 1) {
    d->fail("bad poll done flag");
    return false;
  }
  m->done = done != 0;
  if (m->done) return decode_run_result(d, &m->result);
  m->result = runtime::RunResult{};
  return d->finish();
}

void encode_cancel(const CancelRequest& m, Encoder* e) { e->u64(m.job_id); }

bool decode_cancel(Decoder* d, CancelRequest* m) {
  return d->u64(&m->job_id) && d->finish();
}

void encode_stream_progress(const StreamProgressRequest& m, Encoder* e) {
  e->u64(m.job_id);
}

bool decode_stream_progress(Decoder* d, StreamProgressRequest* m) {
  return d->u64(&m->job_id) && d->finish();
}

void encode_progress(const ProgressUpdate& m, Encoder* e) {
  e->u64(m.job_id);
  e->u64(m.seq);
  e->u64(m.shards_total);
  e->u64(m.shards_done);
  e->histogram(m.partial);
}

bool decode_progress(Decoder* d, ProgressUpdate* m) {
  return d->u64(&m->job_id) && d->u64(&m->seq) && d->u64(&m->shards_total) &&
         d->u64(&m->shards_done) && d->histogram(&m->partial) && d->finish();
}

void encode_error(const WireError& m, Encoder* e) {
  encode_status(m.status, e);
  e->u64(m.queue_depth);
}

bool decode_error(Decoder* d, WireError* m) {
  return decode_status(d, &m->status) && d->u64(&m->queue_depth) &&
         d->finish();
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kHeaderBytes = 12;
}  // namespace

Status read_frame(const Socket& sock, Frame* frame,
                  std::uint16_t min_version) {
  std::uint8_t hdr[kHeaderBytes];
  if (Status s = read_exact(sock, hdr, sizeof hdr); !s.ok()) return s;

  Decoder d(hdr, sizeof hdr);
  std::uint32_t magic = 0, length = 0;
  std::uint16_t version = 0, op = 0;
  d.u32(&magic);
  d.u16(&version);
  d.u16(&op);
  d.u32(&length);
  if (magic != kMagic)
    return Status::InvalidArgument("bad frame magic");
  if (version < min_version || version > kProtocolVersion)
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  if (length > kMaxPayloadBytes)
    return Status::InvalidArgument("frame payload length " +
                                   std::to_string(length) +
                                   " exceeds 16MiB cap");

  frame->version = version;
  frame->op = static_cast<Op>(op);
  frame->payload.resize(length);
  if (length > 0) {
    if (Status s = read_exact(sock, frame->payload.data(), length); !s.ok())
      return s.code() == StatusCode::kUnavailable
                 ? Status::Unavailable("connection closed mid-frame")
                 : s;
  }
  return Status::Ok();
}

Status write_frame(const Socket& sock, Op op,
                   const std::vector<std::uint8_t>& payload,
                   std::uint16_t version) {
  if (payload.size() > kMaxPayloadBytes)
    return Status::InvalidArgument("frame payload exceeds 16MiB cap");
  Encoder e;
  e.u32(kMagic);
  e.u16(version);
  e.u16(static_cast<std::uint16_t>(op));
  e.u32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> buf = e.take();
  buf.insert(buf.end(), payload.begin(), payload.end());
  return write_all(sock, buf.data(), buf.size());
}

}  // namespace qs::gateway
