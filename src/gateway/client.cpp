#include "gateway/client.h"

#include <algorithm>
#include <thread>

namespace qs::gateway {

Status GatewayClient::connect(const std::string& host, std::uint16_t port,
                              const std::string& client_name) {
  close();
  host_ = host;
  port_ = port;
  client_name_ = client_name;
  if (Status s = connect_tcp(host, port, &sock_); !s.ok()) return s;

  HelloRequest hello;
  hello.min_version = kProtocolVersionMin;
  hello.max_version = kProtocolVersion;
  hello.client_name = client_name;
  Encoder e;
  encode_hello(hello, &e);
  if (Status s = write_frame(sock_, Op::kHello, e.bytes()); !s.ok()) {
    close();
    return s;
  }

  Frame frame;
  if (Status s = read_reply(Op::kHelloOk, &frame); !s.ok()) {
    close();
    return s;
  }
  HelloReply reply;
  Decoder d(frame.payload);
  if (!decode_hello_reply(&d, &reply)) {
    close();
    return d.status();
  }
  version_ = reply.version;
  session_ = reply.session;
  return Status::Ok();
}

Status GatewayClient::read_reply(Op want, Frame* frame) {
  if (!sock_.valid()) return Status::FailedPrecondition("not connected");
  if (Status s = read_frame(sock_, frame); !s.ok()) return s;
  if (frame->op == Op::kError) {
    WireError err;
    Decoder d(frame->payload);
    if (!decode_error(&d, &err)) return d.status();
    last_queue_depth_ = err.queue_depth;
    return err.status.ok()
               ? Status::Internal("server sent an OK error frame")
               : err.status;
  }
  if (frame->op != want)
    return Status::Internal("expected " + std::string(to_string(want)) +
                            " reply, got " + to_string(frame->op));
  return Status::Ok();
}

Status GatewayClient::submit_nowait(const runtime::RunRequest& request) {
  if (!sock_.valid()) return Status::FailedPrecondition("not connected");
  Encoder e;
  encode_run_request(request, &e);
  return write_frame(sock_, Op::kSubmit, e.bytes(), version_);
}

StatusOr<std::uint64_t> GatewayClient::read_submit_reply() {
  Frame frame;
  if (Status s = read_reply(Op::kSubmitOk, &frame); !s.ok()) return s;
  SubmitReply reply;
  Decoder d(frame.payload);
  if (!decode_submit_reply(&d, &reply)) return d.status();
  return reply.job_id;
}

StatusOr<std::uint64_t> GatewayClient::submit(
    const runtime::RunRequest& request) {
  if (Status s = submit_nowait(request); !s.ok()) return s;
  return read_submit_reply();
}

Status GatewayClient::poll(std::uint64_t job_id,
                           std::chrono::microseconds timeout, bool* done,
                           runtime::RunResult* result) {
  PollRequest poll;
  poll.job_id = job_id;
  poll.timeout_us = static_cast<std::uint64_t>(
      timeout.count() < 0 ? 0 : timeout.count());
  Encoder e;
  encode_poll(poll, &e);
  if (Status s = write_frame(sock_, Op::kPoll, e.bytes(), version_); !s.ok())
    return s;
  Frame frame;
  if (Status s = read_reply(Op::kPollOk, &frame); !s.ok()) return s;
  PollReply reply;
  Decoder d(frame.payload);
  if (!decode_poll_reply(&d, &reply)) return d.status();
  *done = reply.done;
  if (reply.done) *result = std::move(reply.result);
  return Status::Ok();
}

StatusOr<runtime::RunResult> GatewayClient::wait(std::uint64_t job_id) {
  for (;;) {
    bool done = false;
    runtime::RunResult result;
    if (Status s = poll(job_id, std::chrono::seconds(5), &done, &result);
        !s.ok())
      return s;
    if (done) return result;
  }
}

Status GatewayClient::cancel(std::uint64_t job_id) {
  CancelRequest cancel;
  cancel.job_id = job_id;
  Encoder e;
  encode_cancel(cancel, &e);
  if (Status s = write_frame(sock_, Op::kCancel, e.bytes(), version_); !s.ok())
    return s;
  Frame frame;
  return read_reply(Op::kCancelOk, &frame);
}

Status GatewayClient::stream_progress(
    std::uint64_t job_id,
    const std::function<void(const ProgressUpdate&)>& on_update) {
  StreamProgressRequest req;
  req.job_id = job_id;
  Encoder e;
  encode_stream_progress(req, &e);
  if (Status s = write_frame(sock_, Op::kStreamProgress, e.bytes(), version_);
      !s.ok())
    return s;
  for (;;) {
    Frame frame;
    if (Status s = read_frame(sock_, &frame); !s.ok()) return s;
    if (frame.op == Op::kProgressDone) return Status::Ok();
    if (frame.op == Op::kError) {
      WireError err;
      Decoder d(frame.payload);
      if (!decode_error(&d, &err)) return d.status();
      last_queue_depth_ = err.queue_depth;
      return err.status;
    }
    if (frame.op != Op::kProgress)
      return Status::Internal("expected Progress frame, got " +
                              std::string(to_string(frame.op)));
    ProgressUpdate update;
    Decoder d(frame.payload);
    if (!decode_progress(&d, &update)) return d.status();
    if (on_update) on_update(update);
  }
}

Status GatewayClient::ensure_connected() {
  if (sock_.valid()) return Status::Ok();
  if (host_.empty())
    return Status::FailedPrecondition(
        "ensure_connected before any connect()");
  const std::size_t attempts =
      std::max<std::size_t>(reconnect_.max_attempts, 1);
  Status last = Status::Unavailable("not connected");
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(reconnect_.backoff.delay(attempt - 1));
    last = connect(host_, port_, client_name_);
    if (last.ok()) return last;
  }
  return last;
}

StatusOr<runtime::RunResult> GatewayClient::run(
    const runtime::RunRequest& request) {
  // Resubmission after a transport failure is only safe when the server
  // can deduplicate it.
  const bool resubmit_safe =
      reconnect_.enabled && !request.idempotency_key.empty();
  const std::size_t attempts =
      std::max<std::size_t>(reconnect_.max_attempts, 1);
  for (std::size_t attempt = 0;; ++attempt) {
    if (Status s = ensure_connected(); !s.ok()) return s;
    Status failure = Status::Ok();
    if (StatusOr<std::uint64_t> id = submit(request); id.ok()) {
      StatusOr<runtime::RunResult> result = wait(*id);
      if (result.ok()) return result;
      failure = result.status();
    } else {
      failure = id.status();
    }
    // kUnavailable is the transport failure class (peer died, connection
    // closed mid-frame); anything else is a server-side answer about this
    // request and must not be retried.
    if (failure.code() != StatusCode::kUnavailable || !resubmit_safe ||
        attempt + 1 >= attempts)
      return failure;
    close();  // drop the broken socket; ensure_connected() redials
  }
}

StatusOr<std::string> GatewayClient::metrics() {
  if (Status s = write_frame(sock_, Op::kMetrics, {}, version_); !s.ok())
    return s;
  Frame frame;
  if (Status s = read_reply(Op::kMetricsOk, &frame); !s.ok()) return s;
  std::string text;
  Decoder d(frame.payload);
  if (!d.str(&text) || !d.finish()) return d.status();
  return text;
}

}  // namespace qs::gateway
