// Client library for the gateway protocol: connect + version handshake,
// submit / poll / wait / cancel / stream / metrics, all returning typed
// qs::Status. The library owns the framing so callers never touch raw
// sockets; it is also the reference implementation of the protocol — the
// round-trip tests and the E12 bench drive the server exclusively through
// it.
//
// A client is one connection and is NOT thread-safe (the protocol is
// strictly request/response per connection); use one client per thread.
// For load generation, submit_nowait()/read_submit_reply() split the
// Submit round trip so a driver can pipeline many requests per RTT.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "common/backoff.h"
#include "common/status.h"
#include "gateway/socket.h"
#include "gateway/wire.h"
#include "runtime/run_api.h"

namespace qs::gateway {

class GatewayClient {
 public:
  GatewayClient() = default;
  ~GatewayClient() = default;

  GatewayClient(GatewayClient&&) = default;
  GatewayClient& operator=(GatewayClient&&) = default;
  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  /// Connects and performs the Hello handshake. kFailedPrecondition when
  /// the server speaks no common protocol version. The endpoint is
  /// remembered for ensure_connected()/run() redials.
  Status connect(const std::string& host, std::uint16_t port,
                 const std::string& client_name = "qs-client");

  bool connected() const { return sock_.valid(); }
  void close() { sock_.close(); }

  /// Redial behaviour for ensure_connected() and run(): deterministic
  /// exponential backoff between attempts, per-call attempt cap.
  struct ReconnectPolicy {
    bool enabled = true;
    std::size_t max_attempts = 5;
    BackoffPolicy backoff{std::chrono::microseconds(10'000), 2.0,
                          std::chrono::microseconds(500'000)};
  };
  void set_reconnect(ReconnectPolicy policy) { reconnect_ = policy; }
  const ReconnectPolicy& reconnect() const { return reconnect_; }

  /// Re-establishes the connection to the last connect() endpoint if it is
  /// down (no-op while connected). kFailedPrecondition before any
  /// connect(); otherwise the last dial error after max_attempts tries.
  Status ensure_connected();

  /// Submit + wait with crash-safe resubmission. On a broken connection
  /// the client redials and — only when the request carries an
  /// idempotency_key — resubmits: the server attaches to the live job or
  /// serves the journaled result, so the job never executes twice. A
  /// keyless request is never resubmitted (that could double-run it); the
  /// transport error surfaces instead.
  StatusOr<runtime::RunResult> run(const runtime::RunRequest& request);

  /// Negotiated protocol version / server-assigned session id (valid after
  /// connect()).
  std::uint16_t version() const { return version_; }
  std::uint64_t session() const { return session_; }

  /// Submits one job; returns its server-assigned id. Admission rejections
  /// come back as the server's typed status (kResourceExhausted /
  /// kDeadlineExceeded / kUnavailable / kInvalidArgument) with the queue
  /// depth readable via last_queue_depth().
  StatusOr<std::uint64_t> submit(const runtime::RunRequest& request);

  /// One Poll round trip. `timeout` is how long the *server* may block
  /// before answering "still running" (0 = answer immediately); on a
  /// not-done answer *done is false and *result is untouched.
  Status poll(std::uint64_t job_id, std::chrono::microseconds timeout,
              bool* done, runtime::RunResult* result);

  /// Blocks until the job is terminal (repeated server-side-waiting Polls).
  StatusOr<runtime::RunResult> wait(std::uint64_t job_id);

  /// Requests cooperative cancellation; the terminal result (kCancelled,
  /// or kOk if the job won the race) still arrives through poll()/wait().
  Status cancel(std::uint64_t job_id);

  /// Streams shard-boundary progress snapshots, invoking `on_update` per
  /// snapshot, until the job reaches a terminal state. The connection is
  /// busy for the duration — submit from another client if overlapping.
  Status stream_progress(
      std::uint64_t job_id,
      const std::function<void(const ProgressUpdate&)>& on_update);

  /// The service's metrics text exposition (counters, gauges, histograms
  /// including qs_queue_wait_seconds and the per-tenant families).
  StatusOr<std::string> metrics();

  // --- Pipelining (load generators) --------------------------------------

  /// Writes a Submit frame without reading the reply. Pair every call with
  /// one read_submit_reply(), in order.
  Status submit_nowait(const runtime::RunRequest& request);

  /// Reads one Submit reply (SubmitOk or a typed rejection).
  StatusOr<std::uint64_t> read_submit_reply();

  /// Queue depth carried by the most recent Error frame (0 if none) — the
  /// backpressure signal for informed client backoff.
  std::uint64_t last_queue_depth() const { return last_queue_depth_; }

 private:
  /// Reads one frame, expecting `want`; an Error frame decodes into the
  /// returned status (and last_queue_depth_).
  Status read_reply(Op want, Frame* frame);

  Socket sock_;
  std::uint16_t version_ = kProtocolVersion;
  std::uint64_t session_ = 0;
  std::uint64_t last_queue_depth_ = 0;

  ReconnectPolicy reconnect_;
  std::string host_;  ///< empty until the first connect()
  std::uint16_t port_ = 0;
  std::string client_name_;
};

}  // namespace qs::gateway
