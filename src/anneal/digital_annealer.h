// Fujitsu-style Digital Annealer model (paper Section 4.2): a
// quantum-inspired, *fully connected* QUBO solver with 8192 nodes — no
// minor embedding needed. Modelled as massively parallel-trial annealing
// with a dynamic energy offset to escape plateaus (the published DA
// algorithm structure).
#pragma once

#include <cstddef>
#include <vector>

#include "anneal/qubo.h"
#include "common/rng.h"

namespace qs::anneal {

struct DigitalAnnealerParams {
  std::size_t iterations = 2000;
  double beta_start = 0.05;
  double beta_end = 10.0;
  double offset_increase = 0.1;  ///< dynamic offset step on rejection
  std::size_t restarts = 1;
};

class DigitalAnnealer {
 public:
  /// The marketed capacity: 8192 fully-connected nodes.
  static constexpr std::size_t kCapacity = 8192;

  explicit DigitalAnnealer(DigitalAnnealerParams params = {})
      : params_(params) {}

  /// True if a problem of `n` variables fits (full connectivity: no
  /// embedding, the answer only depends on n).
  static bool fits(std::size_t n) { return n <= kCapacity; }

  /// Solves a QUBO directly (throws std::invalid_argument if too large).
  std::pair<std::vector<int>, double> solve(const Qubo& qubo, Rng& rng) const;

 private:
  DigitalAnnealerParams params_;
};

}  // namespace qs::anneal
