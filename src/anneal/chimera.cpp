#include "anneal/chimera.h"

#include <algorithm>
#include <stdexcept>

namespace qs::anneal {

ChimeraGraph::ChimeraGraph(std::size_t m, std::size_t n, std::size_t t)
    : m_(m), n_(n), t_(t), adjacency_(m * n * 2 * t) {
  if (m == 0 || n == 0 || t == 0)
    throw std::invalid_argument("ChimeraGraph: dimensions must be positive");
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      // Intra-cell K_{t,t}: every side-0 node couples to every side-1 node.
      for (std::size_t a = 0; a < t; ++a)
        for (std::size_t b = 0; b < t; ++b)
          add_edge(node_id(r, c, 0, a), node_id(r, c, 1, b));
      // Inter-cell: side-0 ("vertical") nodes couple to the same shore
      // index in the cell below; side-1 ("horizontal") to the cell right.
      if (r + 1 < m)
        for (std::size_t k = 0; k < t; ++k)
          add_edge(node_id(r, c, 0, k), node_id(r + 1, c, 0, k));
      if (c + 1 < n)
        for (std::size_t k = 0; k < t; ++k)
          add_edge(node_id(r, c, 1, k), node_id(r, c + 1, 1, k));
    }
  }
}

std::size_t ChimeraGraph::node_id(std::size_t row, std::size_t col,
                                  std::size_t side, std::size_t k) const {
  if (row >= m_ || col >= n_ || side >= 2 || k >= t_)
    throw std::out_of_range("ChimeraGraph::node_id");
  return ((row * n_ + col) * 2 + side) * t_ + k;
}

void ChimeraGraph::add_edge(std::size_t a, std::size_t b) {
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

const std::vector<std::size_t>& ChimeraGraph::neighbours(
    std::size_t node) const {
  return adjacency_.at(node);
}

bool ChimeraGraph::connected(std::size_t a, std::size_t b) const {
  const auto& n = adjacency_.at(a);
  return std::find(n.begin(), n.end(), b) != n.end();
}

std::size_t ChimeraGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& n : adjacency_) total += n.size();
  return total / 2;
}

double ChimeraGraph::average_degree() const {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) /
         static_cast<double>(adjacency_.size());
}

}  // namespace qs::anneal
