#include "anneal/qubo.h"

#include <cstdint>
#include <stdexcept>

namespace qs::anneal {

void IsingModel::add_field(std::size_t i, double value) {
  if (i >= n) throw std::out_of_range("IsingModel::add_field");
  h[i] += value;
}

void IsingModel::add_coupling(std::size_t i, std::size_t k, double value) {
  if (i >= n || k >= n || i == k)
    throw std::out_of_range("IsingModel::add_coupling");
  if (i > k) std::swap(i, k);
  j[{i, k}] += value;
}

double IsingModel::energy(const std::vector<int>& spins) const {
  if (spins.size() != n)
    throw std::invalid_argument("IsingModel::energy: size mismatch");
  double e = offset;
  for (std::size_t i = 0; i < n; ++i) e += h[i] * spins[i];
  for (const auto& [pair, value] : j)
    e += value * spins[pair.first] * spins[pair.second];
  return e;
}

std::vector<std::vector<std::pair<std::size_t, double>>>
IsingModel::adjacency() const {
  std::vector<std::vector<std::pair<std::size_t, double>>> adj(n);
  for (const auto& [pair, value] : j) {
    adj[pair.first].emplace_back(pair.second, value);
    adj[pair.second].emplace_back(pair.first, value);
  }
  return adj;
}

Qubo::Qubo(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("Qubo: need at least one variable");
}

void Qubo::add(std::size_t i, std::size_t j, double weight) {
  if (i >= n_ || j >= n_) throw std::out_of_range("Qubo::add");
  if (i > j) std::swap(i, j);
  terms_[{i, j}] += weight;
}

double Qubo::coeff(std::size_t i, std::size_t j) const {
  if (i > j) std::swap(i, j);
  auto it = terms_.find({i, j});
  return it == terms_.end() ? 0.0 : it->second;
}

double Qubo::energy(const std::vector<int>& x) const {
  if (x.size() != n_)
    throw std::invalid_argument("Qubo::energy: size mismatch");
  double e = 0.0;
  for (const auto& [pair, w] : terms_) {
    if (x[pair.first] && x[pair.second]) e += w;
  }
  return e;
}

std::size_t Qubo::coupling_count() const {
  std::size_t c = 0;
  for (const auto& [pair, w] : terms_)
    if (pair.first != pair.second && w != 0.0) ++c;
  return c;
}

std::vector<std::pair<std::size_t, std::size_t>> Qubo::edges() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const auto& [pair, w] : terms_)
    if (pair.first != pair.second && w != 0.0) out.push_back(pair);
  return out;
}

IsingModel Qubo::to_ising() const {
  // x_i = (1 + s_i)/2:
  //   Q_ii x_i        -> Q_ii/2 s_i + Q_ii/2
  //   Q_ij x_i x_j    -> Q_ij/4 (s_i s_j + s_i + s_j + 1)
  IsingModel m(n_);
  for (const auto& [pair, w] : terms_) {
    const auto [i, j] = pair;
    if (i == j) {
      m.h[i] += w / 2.0;
      m.offset += w / 2.0;
    } else {
      m.add_coupling(i, j, w / 4.0);
      m.h[i] += w / 4.0;
      m.h[j] += w / 4.0;
      m.offset += w / 4.0;
    }
  }
  return m;
}

Qubo Qubo::from_ising(const IsingModel& ising) {
  // s_i = 2 x_i - 1:
  //   h_i s_i      -> 2 h_i x_i - h_i
  //   J_ij s_i s_j -> 4 J x_i x_j - 2 J x_i - 2 J x_j + J
  Qubo q(ising.n);
  for (std::size_t i = 0; i < ising.n; ++i)
    if (ising.h[i] != 0.0) q.add(i, i, 2.0 * ising.h[i]);
  for (const auto& [pair, value] : ising.j) {
    q.add(pair.first, pair.second, 4.0 * value);
    q.add(pair.first, pair.first, -2.0 * value);
    q.add(pair.second, pair.second, -2.0 * value);
  }
  // Constant offset (ising.offset - sum h + sum J) is dropped: QUBO argmin
  // is unaffected by constants.
  return q;
}

std::pair<std::vector<int>, double> Qubo::brute_force_minimum() const {
  if (n_ > 30)
    throw std::invalid_argument("Qubo::brute_force_minimum: n > 30");
  std::vector<int> best(n_, 0);
  double best_e = energy(best);
  std::vector<int> x(n_);
  for (std::uint64_t mask = 1; mask < (1ULL << n_); ++mask) {
    for (std::size_t i = 0; i < n_; ++i) x[i] = (mask >> i) & 1 ? 1 : 0;
    const double e = energy(x);
    if (e < best_e) {
      best_e = e;
      best = x;
    }
  }
  return {best, best_e};
}

std::vector<int> spins_to_binary(const std::vector<int>& spins) {
  std::vector<int> bits(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i)
    bits[i] = spins[i] > 0 ? 1 : 0;
  return bits;
}

std::vector<int> binary_to_spins(const std::vector<int>& bits) {
  std::vector<int> spins(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) spins[i] = bits[i] ? 1 : -1;
  return spins;
}

}  // namespace qs::anneal
