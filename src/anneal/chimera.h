// The Chimera hardware graph C(m, n, t): an m x n grid of K_{t,t} unit
// cells with inter-cell couplers — the topology of D-Wave annealers
// (the 2000Q is C(16,16,4) with 2048 qubits). Used by the minor-embedding
// experiments reproducing the paper's "9 cities max on a 2000Q" claim (E4).
#pragma once

#include <cstddef>
#include <vector>

namespace qs::anneal {

class ChimeraGraph {
 public:
  /// m rows x n columns of K_{t,t} cells.
  ChimeraGraph(std::size_t m, std::size_t n, std::size_t t);

  /// The D-Wave 2000Q topology: C(16,16,4), 2048 qubits.
  static ChimeraGraph dwave2000q() { return ChimeraGraph(16, 16, 4); }

  std::size_t size() const { return adjacency_.size(); }
  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }
  std::size_t shore() const { return t_; }

  /// Node id for (row, col, side, k); side 0 = "vertical" shore,
  /// side 1 = "horizontal" shore, k in [0, t).
  std::size_t node_id(std::size_t row, std::size_t col, std::size_t side,
                      std::size_t k) const;

  const std::vector<std::size_t>& neighbours(std::size_t node) const;
  bool connected(std::size_t a, std::size_t b) const;
  std::size_t edge_count() const;
  double average_degree() const;

 private:
  void add_edge(std::size_t a, std::size_t b);

  std::size_t m_, n_, t_;
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace qs::anneal
