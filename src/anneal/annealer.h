// Annealing solvers for Ising/QUBO problems (paper Sections 3.3, 4.2):
//  * SimulatedAnnealer        — classical Metropolis annealing baseline.
//  * SimulatedQuantumAnnealer — path-integral Monte Carlo with a transverse
//    field schedule: the closest laptop-scale stand-in for a D-Wave-style
//    quantum annealer (substitution documented in DESIGN.md).
#pragma once

#include <cstddef>
#include <vector>

#include "anneal/qubo.h"
#include "common/cancellation.h"
#include "common/rng.h"

namespace qs::anneal {

struct AnnealResult {
  std::vector<int> best_spins;   ///< {-1,+1}
  double best_energy = 0.0;
  std::size_t sweeps_done = 0;
  std::vector<double> energy_trace;  ///< best-so-far per recorded sweep
};

struct AnnealSchedule {
  std::size_t sweeps = 1000;
  double beta_start = 0.1;   ///< initial inverse temperature
  double beta_end = 5.0;     ///< final inverse temperature
  std::size_t restarts = 1;
  std::size_t trace_every = 0;  ///< 0 = no trace recording
};

/// Spin groups updated collectively in addition to single-spin moves.
/// Used for embedded problems: a ferromagnetic chain is nearly impossible
/// to flip spin-by-spin once frozen, but flips freely as one cluster.
using SpinClusters = std::vector<std::vector<std::size_t>>;

/// Classical simulated annealing with a geometric beta schedule.
///
/// Both solvers observe an optional CancelToken at every sweep boundary
/// and throw CancelledError when it requests a stop, so a deadline or a
/// client cancel aborts a long anneal mid-schedule instead of running the
/// sweep budget to completion. The default token never stops.
class SimulatedAnnealer {
 public:
  explicit SimulatedAnnealer(AnnealSchedule schedule = {})
      : schedule_(schedule) {}

  AnnealResult solve(const IsingModel& model, Rng& rng,
                     const SpinClusters& clusters = {},
                     const CancelToken& cancel = {}) const;

  /// Convenience wrapper: anneal the QUBO's Ising image, return binary x.
  std::pair<std::vector<int>, double> solve_qubo(
      const Qubo& qubo, Rng& rng, const CancelToken& cancel = {}) const;

 private:
  AnnealSchedule schedule_;
};

struct QuantumAnnealSchedule {
  std::size_t sweeps = 500;
  std::size_t trotter_slices = 16;  ///< P replicas of the spin system
  double temperature = 0.05;        ///< PT product sets replica coupling
  double gamma_start = 3.0;         ///< initial transverse field
  double gamma_end = 1e-3;          ///< final transverse field
  std::size_t restarts = 1;
};

/// Path-integral Monte Carlo simulated quantum annealing: the classical
/// system is replicated into P Trotter slices coupled along the imaginary
/// time axis with strength J_perp = -(P*T/2) ln tanh(Gamma/(P*T)); the
/// transverse field Gamma anneals from gamma_start to gamma_end.
class SimulatedQuantumAnnealer {
 public:
  explicit SimulatedQuantumAnnealer(QuantumAnnealSchedule schedule = {})
      : schedule_(schedule) {}

  AnnealResult solve(const IsingModel& model, Rng& rng,
                     const SpinClusters& clusters = {},
                     const CancelToken& cancel = {}) const;

  std::pair<std::vector<int>, double> solve_qubo(
      const Qubo& qubo, Rng& rng, const CancelToken& cancel = {}) const;

 private:
  QuantumAnnealSchedule schedule_;
};

}  // namespace qs::anneal
