#include "anneal/embedding.h"

#include "anneal/chimera.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <queue>

namespace qs::anneal {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Node-weighted multi-source Dijkstra used by the CMR-style heuristic:
/// entering a node costs exponentially more the more chains already use
/// it, steering new chains around congestion while still allowing overlap
/// (overlaps are resolved across rip-up passes).
struct Dijkstra {
  std::vector<double> dist;
  std::vector<std::size_t> parent;

  void run(const HardwareGraph& hw, const std::vector<std::size_t>& sources,
           const std::vector<double>& node_cost) {
    const std::size_t n = hw.size();
    dist.assign(n, kInf);
    parent.assign(n, n);
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    for (std::size_t s : sources) {
      dist[s] = 0.0;  // inside the source chain: free
      queue.push({0.0, s});
    }
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[u]) continue;
      for (std::size_t v : hw.adjacency[u]) {
        const double nd = d + node_cost[v];
        if (nd < dist[v]) {
          dist[v] = nd;
          parent[v] = u;
          queue.push({nd, v});
        }
      }
    }
  }
};

}  // namespace

Embedding Embedder::embed(
    std::size_t logical_count,
    const std::vector<std::pair<std::size_t, std::size_t>>& logical_edges,
    const HardwareGraph& hardware, Rng& rng) const {
  Embedding best;
  for (std::size_t a = 0; a < std::max<std::size_t>(attempts_, 1); ++a) {
    Embedding e = try_once(logical_count, logical_edges, hardware, rng);
    if (e.success &&
        (!best.success ||
         e.physical_qubits_used < best.physical_qubits_used)) {
      best = e;
    }
  }
  return best;
}

Embedding Embedder::try_once(
    std::size_t logical_count,
    const std::vector<std::pair<std::size_t, std::size_t>>& logical_edges,
    const HardwareGraph& hardware, Rng& rng) const {
  Embedding result;
  result.chains.assign(logical_count, {});
  if (logical_count == 0) {
    result.success = true;
    return result;
  }
  const std::size_t hn = hardware.size();
  if (hn == 0) return result;

  // Logical adjacency.
  std::vector<std::vector<std::size_t>> ladj(logical_count);
  for (const auto& [u, v] : logical_edges) {
    if (u >= logical_count || v >= logical_count || u == v) continue;
    ladj[u].push_back(v);
    ladj[v].push_back(u);
  }

  // usage[node] = number of chains currently containing the node;
  // membership[node] marks nodes of one specific chain during routing.
  std::vector<int> usage(hn, 0);
  std::vector<std::uint32_t> member_stamp(hn, 0);
  std::uint32_t stamp = 0;
  auto& chains = result.chains;

  auto rip = [&](std::size_t v) {
    for (std::size_t node : chains[v]) --usage[node];
    chains[v].clear();
  };

  auto claim = [&](std::size_t v, std::size_t node) {
    if (std::find(chains[v].begin(), chains[v].end(), node) ==
        chains[v].end()) {
      chains[v].push_back(node);
      ++usage[node];
    }
  };

  std::vector<std::size_t> order(logical_count);
  std::iota(order.begin(), order.end(), 0);

  std::vector<double> node_cost(hn);
  std::vector<Dijkstra> per_neighbour;
  Dijkstra grow;

  const std::size_t max_passes = 64;
  double alpha = 1.5;      // congestion penalty base, escalated per pass
  double noise = 1.3;      // cost-noise ceiling; boosted on stagnation
  std::size_t last_overlaps = static_cast<std::size_t>(-1);
  std::size_t stagnant = 0;

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    rng.shuffle(order);
    if (pass == 0) {
      // First pass: hardest (highest-degree) variables claim space first.
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return ladj[a].size() > ladj[b].size();
                       });
    }
    for (std::size_t v : order) {
      rip(v);
      // Multiplicative cost noise breaks re-routing deadlocks: without it
      // two mutually-blocking chains re-derive the same "optimal" routes
      // every pass and the overlap never resolves.
      for (std::size_t node = 0; node < hn; ++node)
        node_cost[node] = std::pow(alpha, static_cast<double>(usage[node])) *
                          rng.uniform(1.0, noise);

      std::vector<std::size_t> neighbours;
      for (std::size_t u : ladj[v])
        if (!chains[u].empty()) neighbours.push_back(u);

      if (neighbours.empty()) {
        // Seed on a free (or least congested reachable) node.
        std::size_t seed = rng.uniform_int(hn);
        for (std::size_t probe = 0; probe < hn; ++probe) {
          const std::size_t cand = (seed + probe) % hn;
          if (usage[cand] == 0) {
            seed = cand;
            break;
          }
        }
        claim(v, seed);
        continue;
      }

      // Distance field per embedded neighbour chain; root minimises the
      // summed distance (classic CMR root selection).
      per_neighbour.assign(neighbours.size(), Dijkstra{});
      for (std::size_t k = 0; k < neighbours.size(); ++k)
        per_neighbour[k].run(hardware, chains[neighbours[k]], node_cost);
      std::size_t root = hn;
      double best_total = kInf;
      for (std::size_t node = 0; node < hn; ++node) {
        double total = node_cost[node];
        for (const auto& d : per_neighbour) {
          if (d.dist[node] == kInf) {
            total = kInf;
            break;
          }
          total += d.dist[node];
        }
        if (total < best_total) {
          best_total = total;
          root = node;
        }
      }
      if (root == hn) return result;  // hardware graph disconnected

      claim(v, root);

      // Connect to each neighbour chain *sequentially from the growing
      // chain*, nearest first, so paths share structure (Steiner-style)
      // instead of forming a giant star of independent paths.
      std::vector<std::size_t> by_distance(neighbours.size());
      std::iota(by_distance.begin(), by_distance.end(), 0);
      std::sort(by_distance.begin(), by_distance.end(),
                [&](std::size_t a, std::size_t b) {
                  return per_neighbour[a].dist[root] <
                         per_neighbour[b].dist[root];
                });

      for (std::size_t k : by_distance) {
        const std::size_t u = neighbours[k];
        // Already physically coupled?
        ++stamp;
        for (std::size_t node : chains[u]) member_stamp[node] = stamp;
        bool coupled = false;
        for (std::size_t mine : chains[v]) {
          for (std::size_t adj : hardware.adjacency[mine])
            if (member_stamp[adj] == stamp) {
              coupled = true;
              break;
            }
          if (coupled) break;
        }
        if (coupled) continue;

        // Grow: cheapest path from the current chain(v) to chain(u).
        grow.run(hardware, chains[v], node_cost);
        std::size_t target = hn;
        double best_dist = kInf;
        for (std::size_t node : chains[u]) {
          if (grow.dist[node] < best_dist) {
            best_dist = grow.dist[node];
            target = node;
          }
        }
        if (target == hn) return result;
        // Claim interior path nodes (exclude the target, which belongs to
        // the neighbour chain; sources have dist 0 and unset parents).
        std::size_t cur = grow.parent[target];
        while (cur != hn && grow.dist[cur] > 0.0) {
          claim(v, cur);
          cur = grow.parent[cur];
        }
      }

      // Trim: repeatedly drop chain leaves that are not required to stay
      // adjacent to any neighbour chain. Without this, chains only ever
      // grow across passes and the hardware congests.
      bool trimmed = true;
      while (trimmed && chains[v].size() > 1) {
        trimmed = false;
        for (std::size_t idx = 0; idx < chains[v].size(); ++idx) {
          const std::size_t node = chains[v][idx];
          // Degree within the chain.
          ++stamp;
          for (std::size_t m : chains[v]) member_stamp[m] = stamp;
          std::size_t degree = 0;
          for (std::size_t adj : hardware.adjacency[node])
            if (member_stamp[adj] == stamp) ++degree;
          if (degree > 1) continue;  // interior node: keep
          // Would every neighbour chain still touch chain(v) \ {node}?
          bool required = false;
          for (std::size_t u : neighbours) {
            ++stamp;
            for (std::size_t m : chains[u]) member_stamp[m] = stamp;
            bool touches_via_other = false;
            bool touches_via_node = false;
            for (std::size_t mine : chains[v]) {
              if (mine == node) {
                for (std::size_t adj : hardware.adjacency[mine])
                  if (member_stamp[adj] == stamp) touches_via_node = true;
                continue;
              }
              for (std::size_t adj : hardware.adjacency[mine])
                if (member_stamp[adj] == stamp) {
                  touches_via_other = true;
                  break;
                }
              if (touches_via_other) break;
            }
            if (touches_via_node && !touches_via_other) {
              required = true;
              break;
            }
          }
          if (required) continue;
          --usage[node];
          chains[v].erase(chains[v].begin() +
                          static_cast<std::ptrdiff_t>(idx));
          trimmed = true;
          break;  // restart the scan: degrees changed
        }
      }
    }

    // Converged when no hardware node is shared between chains.
    std::size_t overlaps = 0;
    for (int u : usage)
      if (u > 1) overlaps += static_cast<std::size_t>(u - 1);
    if (overlaps == 0) {
      result.success = true;
      break;
    }
    // Escalate congestion pressure; on stagnation, crank the routing noise
    // to shake mutually-blocking chains out of their deadlock.
    if (overlaps >= last_overlaps) {
      if (++stagnant >= 3) {
        noise = std::min(noise * 2.0, 16.0);
        stagnant = 0;
      }
    } else {
      stagnant = 0;
      noise = 1.3;
    }
    last_overlaps = overlaps;
    alpha = std::min(alpha * 1.35, 1.0e6);
  }

  if (!result.success) {
    for (auto& chain : chains) chain.clear();
    return result;
  }

  std::size_t used = 0;
  std::size_t longest = 0;
  for (const auto& chain : chains) {
    used += chain.size();
    longest = std::max(longest, chain.size());
  }
  result.physical_qubits_used = used;
  result.max_chain_length = longest;
  result.average_chain_length =
      static_cast<double>(used) / static_cast<double>(logical_count);
  return result;
}


std::size_t chimera_clique_capacity(const ChimeraGraph& graph) {
  if (graph.rows() != graph.cols()) return 0;
  return graph.shore() * graph.rows();
}

Embedding chimera_clique_embedding(std::size_t logical_count,
                                   const ChimeraGraph& graph) {
  if (graph.rows() != graph.cols())
    throw std::invalid_argument(
        "chimera_clique_embedding: requires a square Chimera grid");
  Embedding result;
  result.chains.assign(logical_count, {});
  const std::size_t m = graph.rows();
  const std::size_t t = graph.shore();
  if (logical_count > t * m) return result;  // beyond native clique size

  for (std::size_t v = 0; v < logical_count; ++v) {
    const std::size_t a = v / t;   // diagonal block
    const std::size_t k = v % t;   // shore index
    auto& chain = result.chains[v];
    // Vertical run: shore-0 qubit k of column a, rows 0..a.
    for (std::size_t r = 0; r <= a; ++r)
      chain.push_back(graph.node_id(r, a, 0, k));
    // Horizontal run: shore-1 qubit k of row a, columns a..m-1.
    for (std::size_t c = a; c < m; ++c)
      chain.push_back(graph.node_id(a, c, 1, k));
  }

  result.success = true;
  std::size_t used = 0;
  std::size_t longest = 0;
  for (const auto& chain : result.chains) {
    used += chain.size();
    longest = std::max(longest, chain.size());
  }
  result.physical_qubits_used = used;
  result.max_chain_length = longest;
  result.average_chain_length =
      logical_count ? static_cast<double>(used) /
                          static_cast<double>(logical_count)
                    : 0.0;
  return result;
}

}  // namespace qs::anneal
