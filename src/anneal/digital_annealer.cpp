#include "anneal/digital_annealer.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace qs::anneal {

std::pair<std::vector<int>, double> DigitalAnnealer::solve(const Qubo& qubo,
                                                           Rng& rng) const {
  const std::size_t n = qubo.size();
  if (!fits(n))
    throw std::invalid_argument(
        "DigitalAnnealer: problem exceeds the 8192-node capacity");

  // Dense coupling matrix for O(1) single-flip energy deltas (the DA's
  // full-connectivity advantage made concrete).
  std::vector<double> q(n * n, 0.0);
  std::vector<double> diag(n, 0.0);
  for (const auto& [pair, w] : qubo.terms()) {
    const auto [i, j] = pair;
    if (i == j) {
      diag[i] += w;
    } else {
      q[i * n + j] += w;
      q[j * n + i] += w;
    }
  }

  std::vector<int> best;
  double best_e = std::numeric_limits<double>::infinity();

  for (std::size_t restart = 0; restart < params_.restarts; ++restart) {
    std::vector<int> x(n);
    for (auto& v : x) v = rng.bernoulli(0.5) ? 1 : 0;
    // local[i] = sum_j Q_ij x_j  (off-diagonal part).
    std::vector<double> local(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if (x[j]) local[i] += q[i * n + j];
    double energy = qubo.energy(x);
    double offset = 0.0;  // dynamic escape offset

    const double ratio =
        params_.iterations > 1
            ? std::pow(params_.beta_end / params_.beta_start,
                       1.0 / static_cast<double>(params_.iterations - 1))
            : 1.0;
    double beta = params_.beta_start;

    for (std::size_t it = 0; it < params_.iterations; ++it) {
      // Parallel trial: evaluate the flip delta of every variable, accept
      // each independently per the Metropolis criterion with the dynamic
      // offset, then commit one uniformly-chosen accepted flip (the DA
      // hardware commits one winner per cycle).
      std::vector<std::size_t> accepted;
      std::vector<double> deltas(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double delta = x[i]
                                 ? -(diag[i] + local[i])
                                 : (diag[i] + local[i]);
        deltas[i] = delta;
        const double effective = delta - offset;
        if (effective <= 0.0 ||
            rng.uniform() < std::exp(-beta * effective)) {
          accepted.push_back(i);
        }
      }
      if (accepted.empty()) {
        offset += params_.offset_increase;  // escape mechanism
      } else {
        offset = 0.0;
        const std::size_t pick =
            accepted[rng.uniform_int(accepted.size())];
        const int old = x[pick];
        x[pick] = 1 - old;
        energy += deltas[pick];
        const double sign = x[pick] ? 1.0 : -1.0;
        for (std::size_t i = 0; i < n; ++i)
          local[i] += sign * q[i * n + pick];
        if (energy < best_e) {
          best_e = energy;
          best = x;
        }
      }
      beta *= ratio;
    }
    if (best.empty()) {
      best = x;
      best_e = energy;
    }
  }
  return {best, best_e};
}

}  // namespace qs::anneal
