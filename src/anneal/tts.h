// Time-to-solution (TTS): the standard figure of merit for comparing
// annealing-class solvers (paper Section 3.3's "choice of the quantum
// accelerator is dependent on the specific energy landscape"). TTS(q) is
// the expected number of sweeps to reach the target energy at least once
// with confidence q, given the per-run success probability.
#pragma once

#include <cstddef>
#include <functional>

#include "anneal/qubo.h"
#include "common/rng.h"

namespace qs::anneal {

struct TtsResult {
  double success_probability = 0.0;  ///< fraction of runs reaching target
  double sweeps_per_run = 0.0;
  double tts_sweeps = 0.0;           ///< expected sweeps for q confidence
  std::size_t runs = 0;
};

/// A solver invocation returning the best energy of one independent run.
using SolverRun = std::function<double(Rng&)>;

/// Estimates TTS(q) over `runs` independent solver invocations.
/// `target_energy` is reached when best <= target + tolerance.
/// When every run succeeds, TTS equals one run's sweeps; when none do,
/// tts_sweeps is +inf.
TtsResult time_to_solution(const SolverRun& run, double target_energy,
                           double sweeps_per_run, std::size_t runs, Rng& rng,
                           double confidence = 0.99, double tolerance = 1e-9);

}  // namespace qs::anneal
