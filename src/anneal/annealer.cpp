#include "anneal/annealer.h"

#include <algorithm>
#include <numeric>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace qs::anneal {

namespace {

/// Local field at spin i: dE of flipping s_i is -2 s_i * local(i).
double local_field(
    const IsingModel& m,
    const std::vector<std::vector<std::pair<std::size_t, double>>>& adj,
    const std::vector<int>& s, std::size_t i) {
  double f = m.h[i];
  for (const auto& [k, w] : adj[i]) f += w * s[k];
  return f;
}

/// Metropolis acceptance. Zero-delta moves are accepted with probability
/// 1/2: deterministically accepting them creates limit cycles (e.g. a
/// domain wall rotating around an antiferromagnetic ring forever under
/// sequential updates).
bool metropolis_accept(double delta, double beta, Rng& rng) {
  if (delta < 0.0) return true;
  if (delta == 0.0) return rng.bernoulli(0.5);
  return rng.uniform() < std::exp(-beta * delta);
}

/// Energy change of flipping a whole cluster: intra-cluster couplings are
/// invariant, so only fields and boundary couplings contribute.
double cluster_flip_delta(
    const IsingModel& m,
    const std::vector<std::vector<std::pair<std::size_t, double>>>& adj,
    const std::vector<int>& s, const std::vector<std::size_t>& cluster,
    std::vector<char>& in_cluster) {
  for (std::size_t i : cluster) in_cluster[i] = 1;
  double delta = 0.0;
  for (std::size_t i : cluster) {
    double boundary = m.h[i];
    for (const auto& [k, w] : adj[i])
      if (!in_cluster[k]) boundary += w * s[k];
    delta += -2.0 * static_cast<double>(s[i]) * boundary;
  }
  for (std::size_t i : cluster) in_cluster[i] = 0;
  return delta;
}

}  // namespace

AnnealResult SimulatedAnnealer::solve(const IsingModel& model, Rng& rng,
                                      const SpinClusters& clusters,
                                      const CancelToken& cancel) const {
  if (model.n == 0)
    throw std::invalid_argument("SimulatedAnnealer: empty model");
  const auto adj = model.adjacency();
  AnnealResult best;
  best.best_energy = std::numeric_limits<double>::infinity();

  for (std::size_t restart = 0; restart < schedule_.restarts; ++restart) {
    std::vector<int> s(model.n);
    for (auto& v : s) v = rng.bernoulli(0.5) ? 1 : -1;
    double energy = model.energy(s);
    std::vector<int> local_best = s;
    double local_best_e = energy;

    const double ratio =
        schedule_.sweeps > 1
            ? std::pow(schedule_.beta_end / schedule_.beta_start,
                       1.0 / static_cast<double>(schedule_.sweeps - 1))
            : 1.0;
    double beta = schedule_.beta_start;

    std::vector<std::size_t> order(model.n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<char> in_cluster(model.n, 0);
    for (std::size_t sweep = 0; sweep < schedule_.sweeps; ++sweep) {
      throw_if_stopped(cancel);
      rng.shuffle(order);
      for (std::size_t i : order) {
        // E contains h_i s_i + sum_k J_ik s_i s_k = s_i * local(i), so a
        // flip changes the energy by -2 s_i local(i).
        const double delta =
            -2.0 * static_cast<double>(s[i]) * local_field(model, adj, s, i);
        if (metropolis_accept(delta, beta, rng)) {
          s[i] = -s[i];
          energy += delta;
          if (energy < local_best_e) {
            local_best_e = energy;
            local_best = s;
          }
        }
      }
      // Collective cluster flips (embedded-chain moves).
      if (!clusters.empty()) {
        for (const auto& cluster : clusters) {
          if (cluster.empty()) continue;
          const double delta =
              cluster_flip_delta(model, adj, s, cluster, in_cluster);
          if (metropolis_accept(delta, beta, rng)) {
            for (std::size_t i : cluster) s[i] = -s[i];
            energy += delta;
            if (energy < local_best_e) {
              local_best_e = energy;
              local_best = s;
            }
          }
        }
      }
      beta *= ratio;
      ++best.sweeps_done;
      if (schedule_.trace_every &&
          sweep % schedule_.trace_every == 0)
        best.energy_trace.push_back(std::min(local_best_e, best.best_energy));
    }
    if (local_best_e < best.best_energy) {
      best.best_energy = local_best_e;
      best.best_spins = local_best;
    }
  }
  return best;
}

std::pair<std::vector<int>, double> SimulatedAnnealer::solve_qubo(
    const Qubo& qubo, Rng& rng, const CancelToken& cancel) const {
  const IsingModel ising = qubo.to_ising();
  const AnnealResult r = solve(ising, rng, /*clusters=*/{}, cancel);
  std::vector<int> x = spins_to_binary(r.best_spins);
  return {x, qubo.energy(x)};
}

AnnealResult SimulatedQuantumAnnealer::solve(
    const IsingModel& model, Rng& rng, const SpinClusters& clusters,
    const CancelToken& cancel) const {
  if (model.n == 0)
    throw std::invalid_argument("SimulatedQuantumAnnealer: empty model");
  const std::size_t P = std::max<std::size_t>(2, schedule_.trotter_slices);
  const double T = schedule_.temperature;
  const double PT = static_cast<double>(P) * T;
  const double beta_slice = 1.0 / PT;  // effective inverse temp per slice
  const auto adj = model.adjacency();

  AnnealResult best;
  best.best_energy = std::numeric_limits<double>::infinity();

  for (std::size_t restart = 0; restart < schedule_.restarts; ++restart) {
    // replicas[p][i]: spin i in Trotter slice p.
    std::vector<std::vector<int>> replicas(P, std::vector<int>(model.n));
    for (auto& slice : replicas)
      for (auto& v : slice) v = rng.bernoulli(0.5) ? 1 : -1;

    const double gamma_ratio =
        schedule_.sweeps > 1
            ? std::pow(schedule_.gamma_end / schedule_.gamma_start,
                       1.0 / static_cast<double>(schedule_.sweeps - 1))
            : 1.0;
    double gamma = schedule_.gamma_start;

    std::vector<std::size_t> order(model.n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<char> in_cluster(model.n, 0);
    for (std::size_t sweep = 0; sweep < schedule_.sweeps; ++sweep) {
      throw_if_stopped(cancel);
      // Ferromagnetic replica coupling grows as the field shrinks,
      // freezing the slices together into a classical state.
      const double jperp =
          -0.5 * PT * std::log(std::tanh(gamma / PT));
      for (std::size_t p = 0; p < P; ++p) {
        auto& s = replicas[p];
        const auto& up = replicas[(p + 1) % P];
        const auto& down = replicas[(p + P - 1) % P];
        rng.shuffle(order);
        for (std::size_t i : order) {
          // The action weights the problem term by beta/P = beta_slice, so
          // the local field enters undivided here.
          const double classical = local_field(model, adj, s, i);
          // Ferromagnetic coupling along imaginary time: the effective
          // Hamiltonian term is -J_perp s_i^p s_i^{p+1}.
          const double quantum = -jperp * (up[i] + down[i]);
          const double delta =
              -2.0 * static_cast<double>(s[i]) * (classical + quantum);
          if (metropolis_accept(delta, beta_slice, rng)) {
            s[i] = -s[i];
          }
        }
      }
      // Collective cluster flips per slice. Flipping the cluster in one
      // slice leaves the replica-coupling term for its spins unchanged in
      // expectation only when neighbours agree; compute it exactly.
      if (!clusters.empty()) {
        for (std::size_t p = 0; p < P; ++p) {
          auto& s = replicas[p];
          const auto& up = replicas[(p + 1) % P];
          const auto& down = replicas[(p + P - 1) % P];
          for (const auto& cluster : clusters) {
            if (cluster.empty()) continue;
            double delta =
                cluster_flip_delta(model, adj, s, cluster, in_cluster);
            for (std::size_t i : cluster)
              delta += 2.0 * jperp * static_cast<double>(s[i]) *
                       static_cast<double>(up[i] + down[i]);
            if (metropolis_accept(delta, beta_slice, rng)) {
              for (std::size_t i : cluster) s[i] = -s[i];
            }
          }
        }
      }
      gamma *= gamma_ratio;
      ++best.sweeps_done;
    }

    // Read out the best slice.
    for (const auto& slice : replicas) {
      const double e = model.energy(slice);
      if (e < best.best_energy) {
        best.best_energy = e;
        best.best_spins = slice;
      }
    }
  }
  return best;
}

std::pair<std::vector<int>, double> SimulatedQuantumAnnealer::solve_qubo(
    const Qubo& qubo, Rng& rng, const CancelToken& cancel) const {
  const IsingModel ising = qubo.to_ising();
  const AnnealResult r = solve(ising, rng, /*clusters=*/{}, cancel);
  std::vector<int> x = spins_to_binary(r.best_spins);
  return {x, qubo.energy(x)};
}

}  // namespace qs::anneal
