#include "anneal/tts.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace qs::anneal {

TtsResult time_to_solution(const SolverRun& run, double target_energy,
                           double sweeps_per_run, std::size_t runs, Rng& rng,
                           double confidence, double tolerance) {
  if (runs == 0)
    throw std::invalid_argument("time_to_solution: need at least one run");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("time_to_solution: confidence in (0,1)");

  std::size_t successes = 0;
  for (std::size_t r = 0; r < runs; ++r)
    if (run(rng) <= target_energy + tolerance) ++successes;

  TtsResult result;
  result.runs = runs;
  result.sweeps_per_run = sweeps_per_run;
  result.success_probability =
      static_cast<double>(successes) / static_cast<double>(runs);

  if (successes == 0) {
    result.tts_sweeps = std::numeric_limits<double>::infinity();
  } else if (successes == runs) {
    result.tts_sweeps = sweeps_per_run;  // every run solves: one run's work
  } else {
    const double p = result.success_probability;
    result.tts_sweeps =
        sweeps_per_run * std::log(1.0 - confidence) / std::log(1.0 - p);
  }
  return result;
}

}  // namespace qs::anneal
