// Graph minor embedding: mapping each logical QUBO variable onto a chain
// of physical qubits so that every logical coupling has at least one
// physical coupler (paper Section 4.2: "we have to find a graph minor
// embedding, combining several physical qubits into a logical qubit.
// Finding an embedding is NP-hard in itself, so probabilistic heuristics
// are normally used"). Implements a greedy chain-growth heuristic.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace qs::anneal {

/// Abstract hardware connectivity for the embedder (adapts ChimeraGraph
/// or any adjacency structure).
struct HardwareGraph {
  std::vector<std::vector<std::size_t>> adjacency;
  std::size_t size() const { return adjacency.size(); }
};

struct Embedding {
  bool success = false;
  /// chains[v] = physical qubits representing logical variable v.
  std::vector<std::vector<std::size_t>> chains;
  std::size_t physical_qubits_used = 0;
  std::size_t max_chain_length = 0;
  double average_chain_length = 0.0;
};

/// Deterministic "triangle" clique embedding on a Chimera C(m,m,t) graph:
/// logical variable v = t*a + k maps to the L-shaped chain
///   { vertical shore qubit k of cells (0..a, a) } union
///   { horizontal shore qubit k of cells (a, a..m-1) }
/// of length m+1, giving a native K_{t*m} (any logical graph on at most
/// t*m variables embeds, since the clique dominates it). Returns an
/// unsuccessful embedding when logical_count exceeds t*m.
class ChimeraGraph;  // fwd (chimera.h)

class Embedder {
 public:
  /// attempts: independent randomised tries; the best success is returned.
  explicit Embedder(std::size_t attempts = 4) : attempts_(attempts) {}

  /// Embeds a logical graph (given by its edge list over `logical_count`
  /// variables) into the hardware graph. Greedy chain growth: variables
  /// in decreasing-degree order; each new variable claims the free
  /// physical qubit minimising the summed BFS distance to its embedded
  /// neighbours' chains, then connects to each neighbour chain along a
  /// shortest free path (path interior joins the new chain).
  Embedding embed(
      std::size_t logical_count,
      const std::vector<std::pair<std::size_t, std::size_t>>& logical_edges,
      const HardwareGraph& hardware, Rng& rng) const;

 private:
  Embedding try_once(
      std::size_t logical_count,
      const std::vector<std::pair<std::size_t, std::size_t>>& logical_edges,
      const HardwareGraph& hardware, Rng& rng) const;

  std::size_t attempts_;
};

/// The triangle clique embedding described above (requires m == n on the
/// Chimera grid). Throws std::invalid_argument for non-square graphs.
Embedding chimera_clique_embedding(std::size_t logical_count,
                                   const ChimeraGraph& graph);

/// Largest clique the triangle construction supports on the graph: t * m.
std::size_t chimera_clique_capacity(const ChimeraGraph& graph);

}  // namespace qs::anneal
