// Quadratic Unconstrained Binary Optimisation (QUBO) and Ising models —
// the abstraction level of the annealing-based accelerator (paper
// Section 3.3): minimise y = x^T Q x over binary x, isomorphic to the
// Ising spin model used by quantum annealers.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

namespace qs::anneal {

/// Ising model: energy(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j + offset,
/// spins s_i in {-1, +1}.
struct IsingModel {
  std::size_t n = 0;
  std::vector<double> h;
  std::map<std::pair<std::size_t, std::size_t>, double> j;  ///< keys i<j
  double offset = 0.0;

  explicit IsingModel(std::size_t size = 0) : n(size), h(size, 0.0) {}

  void add_field(std::size_t i, double value);
  void add_coupling(std::size_t i, std::size_t k, double value);
  double energy(const std::vector<int>& spins) const;

  /// Neighbour lists implied by non-zero couplings (for local solvers).
  std::vector<std::vector<std::pair<std::size_t, double>>> adjacency() const;
};

/// Upper-triangular QUBO: energy(x) = sum_{i<=j} Q_ij x_i x_j, binary x.
class Qubo {
 public:
  explicit Qubo(std::size_t n);

  std::size_t size() const { return n_; }

  /// Adds weight to Q_ij (stored with i <= j; (i,j) and (j,i) accumulate
  /// into the same coefficient).
  void add(std::size_t i, std::size_t j, double weight);

  double coeff(std::size_t i, std::size_t j) const;

  double energy(const std::vector<int>& x) const;

  const std::map<std::pair<std::size_t, std::size_t>, double>& terms() const {
    return terms_;
  }

  /// Number of distinct variable pairs with non-zero quadratic coupling.
  std::size_t coupling_count() const;

  /// Logical interaction graph edges (i<j with non-zero off-diagonal).
  std::vector<std::pair<std::size_t, std::size_t>> edges() const;

  /// Exact transformation to the Ising model via x = (1+s)/2.
  IsingModel to_ising() const;

  /// Exact inverse transformation.
  static Qubo from_ising(const IsingModel& ising);

  /// Brute-force minimum over all 2^n assignments (n <= 30 guard).
  std::pair<std::vector<int>, double> brute_force_minimum() const;

 private:
  std::size_t n_;
  std::map<std::pair<std::size_t, std::size_t>, double> terms_;
};

/// Converts a spin vector {-1,+1} to binary {0,1} and back.
std::vector<int> spins_to_binary(const std::vector<int>& spins);
std::vector<int> binary_to_spins(const std::vector<int>& bits);

}  // namespace qs::anneal
