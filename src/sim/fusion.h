// Cross-gate fusion (the compiler-side half of the kernel speedup, after
// quilc and staq): merges runs of adjacent 1-/2-qubit unitaries whose
// combined support stays within two qubits into single 4x4 (or 2x2)
// matrices, so one memory pass over the state replaces a whole gate
// sequence; interleaved rotation chains collapse to one matrix each.
//
// Emission is cost-aware: a block is only kept when the one fused pass is
// estimated cheaper than the specialized per-gate passes it replaces
// (e.g. three CNOTs stay three permutation passes — a dense 4x4 sweep
// over the whole state would cost more than the three quarter-state
// swaps). Uneconomical blocks dissolve back into their original
// instructions, preserving the fast-path kernels' exact arithmetic.
//
// A second pass collapses runs of consecutive diagonal gates — QFT CRK
// chains, CZ/RZ layers — into one *diagonal window* op: the gates'
// diagonals compose exactly into a table over a contiguous bit window,
// and one sweep (amp[i] *= table[(i >> shift) & mask]) replaces the whole
// run. Diagonal gates all commute, so any consecutive run fuses no
// matter which qubits the gates touch.
//
// The pass keeps several blocks open at once (their qubit sets are
// pairwise disjoint), so independent per-qubit gate runs fuse even when
// the instruction stream interleaves them. Gates are only ever reordered
// across *disjoint* qubit sets — exact mathematical commutation — and
// the pass is deterministic, so a fused program is a pure function of
// the flattened instruction stream and fuses identically on every
// worker, shard, retry and store revival.
//
// Validity: only under a stochastic-error-free qubit model
// (sim::stochastic_model(model) == false). Error models inject noise per
// gate; collapsing a sequence would change how often the hooks fire, so
// the Simulator ignores fused programs on noisy models and runs the
// original instruction stream.
//
// Numerics: a fused block applies the product matrix, whose doubles
// differ from the gate-by-gate application by normal rounding (~1e-15).
// Fusion is therefore part of the engine-config tier: every route that
// executes a program applies the same pass, keeping histograms
// byte-identical within each tier (docs/simulator.md).
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/types.h"
#include "qasm/instruction.h"

namespace qs::sim {

/// One executable step of a fused program: an original instruction
/// (non-unitary steps, conditionals, and runs the cost model leaves on
/// the specialized fast-path kernels), a fused unitary block, or a fused
/// diagonal window (a run of commuting diagonal gates composed into one
/// phase table indexed by a contiguous bit window).
struct FusedOp {
  /// Valid when !is_block && !is_diag_window (default otherwise).
  qasm::Instruction instr;

  bool is_block = false;
  Matrix u;                   ///< 2x2 (arity 1) or 4x4 (arity 2)
  std::size_t arity = 0;      ///< block operand count
  QubitIndex q1 = 0;          ///< matrix MSB operand (arity 2)
  QubitIndex q0 = 0;          ///< matrix LSB operand / sole operand

  /// Diagonal chain: amp[i] *= dw_table[(i >> dw_shift) & (2^dw_width-1)].
  bool is_diag_window = false;
  QubitIndex dw_shift = 0;
  QubitIndex dw_width = 0;
  std::vector<cplx> dw_table;

  std::size_t gate_count = 1; ///< original unitary gates this op represents
};

struct FusionStats {
  std::size_t input_gates = 0;   ///< unitary gates in the source stream
  std::size_t output_ops = 0;    ///< unitary ops after fusion
  std::size_t fused_blocks = 0;  ///< ops representing >= 2 gates
  std::size_t max_run = 0;       ///< longest gate run fused into one op
};

/// A fused instruction stream, aligned with the flattened program it was
/// built from.
struct FusedProgram {
  std::vector<FusedOp> ops;
  /// Number of ops covering flat[0, boundary) — the shot-deterministic
  /// prefix when built with boundary = analysis.terminal_start, so the
  /// sampling fast path can execute exactly the fused prefix.
  std::size_t prefix_ops = 0;
  FusionStats stats;

  /// Approximate resident size, for cache accounting.
  std::size_t bytes() const;
};

/// Fuses the flattened stream. `boundary` forces a flush (no block spans
/// it); pass analysis.terminal_start so the sampled prefix stays aligned,
/// or flat.size() when there is no terminal region.
FusedProgram fuse_sequences(const std::vector<qasm::Instruction>& flat,
                            std::size_t boundary);

}  // namespace qs::sim
