// Dense 2^n state-vector engine — the mathematical core of the QX-like
// simulator (paper Section 2.7). Qubit 0 is the least significant bit of
// the basis-state index; bitstrings render with q[0] as the leftmost
// character (cQASM display convention).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/types.h"

namespace qs::sim {

class StateVector {
 public:
  /// Initialises |0...0> on `qubit_count` qubits.
  /// Throws std::invalid_argument above kMaxQubits (memory guard).
  explicit StateVector(std::size_t qubit_count);

  static constexpr std::size_t kMaxQubits = 28;

  std::size_t qubit_count() const { return n_; }
  std::size_t dimension() const { return amps_.size(); }

  /// Resets to |0...0>.
  void reset();

  const cplx& amplitude(StateIndex basis) const { return amps_[basis]; }
  void set_amplitude(StateIndex basis, cplx value) { amps_[basis] = value; }

  /// Applies a 2x2 unitary to qubit q.
  void apply_1q(const Matrix& u, QubitIndex q);

  /// Applies a 2x2 unitary to the target, conditioned on all controls = 1.
  void apply_controlled_1q(const Matrix& u,
                           const std::vector<QubitIndex>& controls,
                           QubitIndex target);

  /// Applies a full 4x4 unitary to (q1, q0) where q1 indexes the most
  /// significant bit of the matrix ordering.
  void apply_2q(const Matrix& u, QubitIndex q1, QubitIndex q0);

  /// Swap without matrix arithmetic (pure amplitude permutation).
  void apply_swap(QubitIndex a, QubitIndex b);

  /// Probability of reading 1 on qubit q.
  double prob_one(QubitIndex q) const;

  /// Projective Z measurement with collapse; returns the outcome bit.
  int measure(QubitIndex q, Rng& rng);

  /// Forces qubit q into |0> (projective preparation: measure + conditional X).
  void prep_z(QubitIndex q, Rng& rng);

  /// Measures every qubit (in index order) with collapse.
  std::vector<int> measure_all(Rng& rng);

  /// Samples a basis state from |amp|^2 without collapsing.
  StateIndex sample(Rng& rng) const;

  /// <Z_q> expectation.
  double expectation_z(QubitIndex q) const;

  /// Expectation of a diagonal observable: sum_i |amp_i|^2 * f(i).
  double expectation_diagonal(
      const std::function<double(StateIndex)>& f) const;

  /// Squared norm (should stay 1 within rounding).
  double norm() const;

  /// Rescales amplitudes to unit norm.
  void normalize();

  /// Fidelity |<this|other>|^2 against another state of equal size.
  double fidelity(const StateVector& other) const;

  /// Renders basis index as bitstring with q[0] leftmost.
  std::string basis_string(StateIndex basis) const;

  /// Direct access for benchmarks and tests.
  const std::vector<cplx>& amplitudes() const { return amps_; }

 private:
  void check_qubit(QubitIndex q) const;

  std::size_t n_;
  std::vector<cplx> amps_;
};

}  // namespace qs::sim
