// Dense 2^n state-vector engine — the mathematical core of the QX-like
// simulator (paper Section 2.7). Qubit 0 is the least significant bit of
// the basis-state index; bitstrings render with q[0] as the leftmost
// character (cQASM display convention).
//
// Storage is split real/imag (SoA) arrays at one of two precisions:
// f64 (the reference tier) or f32 (half the bytes per amplitude — one
// extra qubit under the same byte budget). Kernels dispatch through a
// per-backend function table (sim/kernels.h): a true-scalar build and an
// AVX2 auto-vectorised build selected at runtime via cpuid, with the
// QS_SIMD CMake option / environment variable as escape hatches.
//
// Kernel layer: every hot operation is written as a partitionable kernel
// over the amplitude arrays. With a KernelPolicy attached (thread pool +
// size threshold) the partitions run on pool threads; the per-amplitude
// arithmetic and — for reductions — the combination order are identical in
// both modes, so results are bit-identical for any thread count. The same
// holds across backends at f64 (docs/simulator.md: scalar-f64 and
// simd-f64 share one determinism class; f32 is its own class).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "sim/kernels.h"

namespace qs::sim {

/// How StateVector kernels execute. The pool is borrowed, not owned
/// (typically the owning Simulator's); nullptr means sequential. States
/// below `min_parallel_qubits` always run sequentially — fork-join
/// overhead beats the arithmetic there.
struct KernelPolicy {
  ThreadPool* pool = nullptr;
  std::size_t min_parallel_qubits = 14;
};

class StateVector {
 public:
  /// Default amplitude-memory budget: 4 GiB — 28 qubits at f64,
  /// 29 qubits at f32.
  static constexpr std::size_t kDefaultMaxStateBytes = std::size_t{4} << 30;

  /// Initialises |0...0> on `qubit_count` qubits at the given precision.
  /// Throws std::invalid_argument when the state would exceed
  /// `max_state_bytes` (0 = use the default budget); the message reports
  /// requested vs allowed bytes.
  explicit StateVector(std::size_t qubit_count,
                       Precision precision = Precision::kF64,
                       std::size_t max_state_bytes = kDefaultMaxStateBytes,
                       SimdMode simd = SimdMode::kAuto);

  std::size_t qubit_count() const { return n_; }
  std::size_t dimension() const { return static_cast<std::size_t>(dim_); }
  Precision precision() const { return prec_; }

  /// True when the AVX2 backend serves this state's kernels.
  bool simd_active() const { return simd_; }
  /// "avx2" or "scalar".
  const char* backend_name() const { return simd_ ? "avx2" : "scalar"; }

  /// Resets to |0...0>.
  void reset();

  /// Attaches (or detaches, with pool = nullptr) the execution policy.
  /// Copies the struct; the pool pointer must outlive this StateVector.
  void set_kernel_policy(KernelPolicy policy) { policy_ = policy; }
  const KernelPolicy& kernel_policy() const { return policy_; }

  cplx amplitude(StateIndex basis) const {
    return prec_ == Precision::kF32
               ? cplx(re32_[basis], im32_[basis])
               : cplx(re_[basis], im_[basis]);
  }
  void set_amplitude(StateIndex basis, cplx value) {
    if (prec_ == Precision::kF32) {
      re32_[basis] = static_cast<float>(value.real());
      im32_[basis] = static_cast<float>(value.imag());
    } else {
      re_[basis] = value.real();
      im_[basis] = value.imag();
    }
  }

  /// Applies a 2x2 unitary to qubit q.
  void apply_1q(const Matrix& u, QubitIndex q);

  /// Applies a 2x2 unitary to the target, conditioned on all controls = 1.
  void apply_controlled_1q(const Matrix& u,
                           const std::vector<QubitIndex>& controls,
                           QubitIndex target);

  /// Applies a full 4x4 unitary to (q1, q0) where q1 indexes the most
  /// significant bit of the matrix ordering.
  void apply_2q(const Matrix& u, QubitIndex q1, QubitIndex q0);

  // ---- Fused fast-path kernels ------------------------------------------
  // Specialized forms of the generic apply paths for the structured gates
  // of the cQASM set: permutations and diagonals touch each amplitude once
  // with no matrix fetch and no zero-term arithmetic. Each is numerically
  // equivalent to the corresponding generic matrix application (identical
  // values; only signs of exact zeros may differ).

  /// Pauli X on q: swaps the two halves of every amplitude pair.
  void apply_x(QubitIndex q);

  /// Pauli Y on q: swap with +/-i phases.
  void apply_y(QubitIndex q);

  /// Pauli Z on q: negates amplitudes with bit q set.
  void apply_z(QubitIndex q);

  /// diag(1, phase) on q — S, Sdag, T, Tdag, and any phase gate.
  void apply_phase(QubitIndex q, cplx phase);

  /// diag(d0, d1) on q — RZ and friends.
  void apply_diag(QubitIndex q, cplx d0, cplx d1);

  /// CNOT: swaps target pairs inside the control=1 subspace.
  void apply_cnot(QubitIndex control, QubitIndex target);

  /// Controlled phase on |11>: CZ (phase = -1), CR, CRK.
  void apply_cphase(QubitIndex a, QubitIndex b, cplx phase);

  /// exp(-i theta/2 Z(x)Z) as diagonal phases by ZZ parity: `same` on
  /// |00>/|11>, `diff` on |01>/|10>.
  void apply_zz_phase(QubitIndex a, QubitIndex b, cplx same, cplx diff);

  /// Swap without matrix arithmetic (pure amplitude permutation).
  void apply_swap(QubitIndex a, QubitIndex b);

  /// Fused diagonal chain: amp[i] *= table[(i >> shift) & (2^width - 1)].
  /// `table` must hold 2^width entries; the window [shift, shift+width)
  /// must lie inside the register. One sweep replaces a whole run of
  /// diagonal gates (sim/fusion.h builds the table).
  void apply_diag_window(QubitIndex shift, QubitIndex width,
                         const cplx* table);

  /// Probability of reading 1 on qubit q.
  double prob_one(QubitIndex q) const;

  /// Projective Z measurement with collapse; returns the outcome bit.
  /// Probability and collapse both run as fused block kernels (no
  /// per-index bit tests).
  int measure(QubitIndex q, Rng& rng);

  /// Forces qubit q into |0> (projective preparation: measure + conditional X).
  void prep_z(QubitIndex q, Rng& rng);

  /// Measures every qubit (in index order) with collapse.
  std::vector<int> measure_all(Rng& rng);

  /// Samples a basis state from |amp|^2 without collapsing. Weights are
  /// normalized by the running total, so a sub-unit state (e.g. after
  /// stochastic error channels) does not bias the tail. One prefix-sum
  /// pass plus an O(n) binary search per draw (shared machinery with the
  /// terminal-measurement sampling fast path).
  StateIndex sample(Rng& rng) const;

  /// Inclusive prefix sums of |amp_i|^2 in basis order: cum[i] =
  /// sum_{j<=i} |amp_j|^2, cum.back() = total norm. Built with the fixed
  /// 2^16-amplitude chunk scheme (per-chunk running sums, chunk bases
  /// accumulated in chunk order), so the doubles are bit-identical for
  /// any thread count; states up to 16 qubits are a single chunk, i.e. a
  /// plain left-to-right sum. The squares are a vectorisable elementwise
  /// pass; the running sums stay ordered in every backend. `cancel` is
  /// observed between chunks (between passes when parallel); throws
  /// CancelledError on stop.
  std::vector<double> cumulative_distribution(
      const CancelToken& cancel = {}) const;

  /// <Z_q> expectation.
  double expectation_z(QubitIndex q) const;

  /// Expectation of a diagonal observable: sum_i |amp_i|^2 * f(i).
  double expectation_diagonal(
      const std::function<double(StateIndex)>& f) const;

  /// Squared norm (should stay 1 within rounding).
  double norm() const;

  /// Rescales amplitudes to unit norm.
  void normalize();

  /// Fidelity |<this|other>|^2 against another state of equal size and
  /// precision.
  double fidelity(const StateVector& other) const;

  /// Renders basis index as bitstring with q[0] leftmost.
  std::string basis_string(StateIndex basis) const;

 private:
  void check_qubit(QubitIndex q) const;

  /// True when kernels should fork onto the pool for this state size.
  bool parallel_active() const {
    return policy_.pool != nullptr && policy_.pool->size() > 1 &&
           n_ >= policy_.min_parallel_qubits;
  }

  /// Runs body(lo, hi) over a disjoint partition of [0, count): one slice
  /// per pool lane when parallel, a single slice otherwise. For kernels
  /// with independent per-element writes only.
  void for_slices(StateIndex count,
                  const std::function<void(StateIndex, StateIndex)>& body) const;

  /// Deterministic reduction: [0, count) in fixed-size chunks (independent
  /// of thread count), per-chunk sums sequential, partials combined in
  /// chunk order. Bit-identical for any pool size.
  double reduce_chunks(
      StateIndex count,
      const std::function<double(StateIndex, StateIndex)>& chunk_sum) const;

  std::size_t n_;
  StateIndex dim_;
  Precision prec_;
  bool simd_;
  const KernelFns<double>* k64_;  ///< active when prec_ == kF64
  const KernelFns<float>* k32_;   ///< active when prec_ == kF32
  std::vector<double> re_, im_;   ///< f64 tier storage
  std::vector<float> re32_, im32_;  ///< f32 tier storage
  KernelPolicy policy_;
};

/// First index i with cum[i] > u (binary search over an inclusive
/// prefix-sum array). Zero-weight basis states are unselectable: their
/// cum entry equals their predecessor's, and upper_bound skips ties.
/// When u lands on or beyond cum.back() (a floating-point boundary draw),
/// returns the last occupied index, mirroring the linear-scan fallback.
StateIndex sample_from_cumulative(const std::vector<double>& cum, double u);

}  // namespace qs::sim
