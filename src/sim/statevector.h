// Dense 2^n state-vector engine — the mathematical core of the QX-like
// simulator (paper Section 2.7). Qubit 0 is the least significant bit of
// the basis-state index; bitstrings render with q[0] as the leftmost
// character (cQASM display convention).
//
// Kernel layer: every hot operation is written as a partitionable kernel
// over the amplitude array. With a KernelPolicy attached (thread pool +
// size threshold) the partitions run on pool threads; the per-amplitude
// arithmetic and — for reductions — the combination order are identical in
// both modes, so results are bit-identical for any thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace qs::sim {

/// How StateVector kernels execute. The pool is borrowed, not owned
/// (typically the owning Simulator's); nullptr means sequential. States
/// below `min_parallel_qubits` always run sequentially — fork-join
/// overhead beats the arithmetic there.
struct KernelPolicy {
  ThreadPool* pool = nullptr;
  std::size_t min_parallel_qubits = 14;
};

class StateVector {
 public:
  /// Initialises |0...0> on `qubit_count` qubits.
  /// Throws std::invalid_argument above kMaxQubits (memory guard).
  explicit StateVector(std::size_t qubit_count);

  static constexpr std::size_t kMaxQubits = 28;

  std::size_t qubit_count() const { return n_; }
  std::size_t dimension() const { return amps_.size(); }

  /// Resets to |0...0>.
  void reset();

  /// Attaches (or detaches, with pool = nullptr) the execution policy.
  /// Copies the struct; the pool pointer must outlive this StateVector.
  void set_kernel_policy(KernelPolicy policy) { policy_ = policy; }
  const KernelPolicy& kernel_policy() const { return policy_; }

  const cplx& amplitude(StateIndex basis) const { return amps_[basis]; }
  void set_amplitude(StateIndex basis, cplx value) { amps_[basis] = value; }

  /// Applies a 2x2 unitary to qubit q.
  void apply_1q(const Matrix& u, QubitIndex q);

  /// Applies a 2x2 unitary to the target, conditioned on all controls = 1.
  void apply_controlled_1q(const Matrix& u,
                           const std::vector<QubitIndex>& controls,
                           QubitIndex target);

  /// Applies a full 4x4 unitary to (q1, q0) where q1 indexes the most
  /// significant bit of the matrix ordering.
  void apply_2q(const Matrix& u, QubitIndex q1, QubitIndex q0);

  // ---- Fused fast-path kernels ------------------------------------------
  // Specialized forms of the generic apply paths for the structured gates
  // of the cQASM set: permutations and diagonals touch each amplitude once
  // with no matrix fetch and no zero-term arithmetic. Each is numerically
  // equivalent to the corresponding generic matrix application (identical
  // doubles; only signs of exact zeros may differ).

  /// Pauli X on q: swaps the two halves of every amplitude pair.
  void apply_x(QubitIndex q);

  /// Pauli Y on q: swap with +/-i phases.
  void apply_y(QubitIndex q);

  /// Pauli Z on q: negates amplitudes with bit q set.
  void apply_z(QubitIndex q);

  /// diag(1, phase) on q — S, Sdag, T, Tdag, and any phase gate.
  void apply_phase(QubitIndex q, cplx phase);

  /// diag(d0, d1) on q — RZ and friends.
  void apply_diag(QubitIndex q, cplx d0, cplx d1);

  /// CNOT: swaps target pairs inside the control=1 subspace.
  void apply_cnot(QubitIndex control, QubitIndex target);

  /// Controlled phase on |11>: CZ (phase = -1), CR, CRK.
  void apply_cphase(QubitIndex a, QubitIndex b, cplx phase);

  /// exp(-i theta/2 Z(x)Z) as diagonal phases by ZZ parity: `same` on
  /// |00>/|11>, `diff` on |01>/|10>.
  void apply_zz_phase(QubitIndex a, QubitIndex b, cplx same, cplx diff);

  /// Swap without matrix arithmetic (pure amplitude permutation).
  void apply_swap(QubitIndex a, QubitIndex b);

  /// Probability of reading 1 on qubit q.
  double prob_one(QubitIndex q) const;

  /// Projective Z measurement with collapse; returns the outcome bit.
  /// Probability and collapse both run as fused block kernels (no
  /// per-index bit tests).
  int measure(QubitIndex q, Rng& rng);

  /// Forces qubit q into |0> (projective preparation: measure + conditional X).
  void prep_z(QubitIndex q, Rng& rng);

  /// Measures every qubit (in index order) with collapse.
  std::vector<int> measure_all(Rng& rng);

  /// Samples a basis state from |amp|^2 without collapsing. Weights are
  /// normalized by the running total, so a sub-unit state (e.g. after
  /// stochastic error channels) does not bias the tail. One prefix-sum
  /// pass plus an O(n) binary search per draw (shared machinery with the
  /// terminal-measurement sampling fast path).
  StateIndex sample(Rng& rng) const;

  /// Inclusive prefix sums of |amp_i|^2 in basis order: cum[i] =
  /// sum_{j<=i} |amp_j|^2, cum.back() = total norm. Built with the fixed
  /// 2^16-amplitude chunk scheme (per-chunk running sums, chunk bases
  /// accumulated in chunk order), so the doubles are bit-identical for
  /// any thread count; states up to 16 qubits are a single chunk, i.e. a
  /// plain left-to-right sum. `cancel` is observed between chunks
  /// (between passes when parallel); throws CancelledError on stop.
  std::vector<double> cumulative_distribution(
      const CancelToken& cancel = {}) const;

  /// <Z_q> expectation.
  double expectation_z(QubitIndex q) const;

  /// Expectation of a diagonal observable: sum_i |amp_i|^2 * f(i).
  double expectation_diagonal(
      const std::function<double(StateIndex)>& f) const;

  /// Squared norm (should stay 1 within rounding).
  double norm() const;

  /// Rescales amplitudes to unit norm.
  void normalize();

  /// Fidelity |<this|other>|^2 against another state of equal size.
  double fidelity(const StateVector& other) const;

  /// Renders basis index as bitstring with q[0] leftmost.
  std::string basis_string(StateIndex basis) const;

  /// Direct access for benchmarks and tests.
  const std::vector<cplx>& amplitudes() const { return amps_; }

 private:
  void check_qubit(QubitIndex q) const;

  /// True when kernels should fork onto the pool for this state size.
  bool parallel_active() const {
    return policy_.pool != nullptr && policy_.pool->size() > 1 &&
           n_ >= policy_.min_parallel_qubits;
  }

  /// Runs body(lo, hi) over a disjoint partition of [0, count): one slice
  /// per pool lane when parallel, a single slice otherwise. For kernels
  /// with independent per-element writes only.
  void for_slices(StateIndex count,
                  const std::function<void(StateIndex, StateIndex)>& body) const;

  /// Deterministic reduction: [0, count) in fixed-size chunks (independent
  /// of thread count), per-chunk sums sequential, partials combined in
  /// chunk order. Bit-identical for any pool size.
  double reduce_chunks(
      StateIndex count,
      const std::function<double(StateIndex, StateIndex)>& chunk_sum) const;

  /// Zeroes the discarded half and rescales the kept half after measuring
  /// `outcome` on qubit q.
  void collapse(QubitIndex q, int outcome, double keep_prob);

  std::size_t n_;
  std::vector<cplx> amps_;
  KernelPolicy policy_;
};

/// First index i with cum[i] > u (binary search over an inclusive
/// prefix-sum array). Zero-weight basis states are unselectable: their
/// cum entry equals their predecessor's, and upper_bound skips ties.
/// When u lands on or beyond cum.back() (a floating-point boundary draw),
/// returns the last occupied index, mirroring the linear-scan fallback.
StateIndex sample_from_cumulative(const std::vector<double>& cum, double u);

}  // namespace qs::sim
