// The QX-like simulator front-end (paper Section 2.7): executes a cQASM
// program on the state-vector engine, injecting errors per the configured
// qubit model, handling measurement, binary-controlled gates and waits.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "qasm/program.h"
#include "sim/error_model.h"
#include "sim/fusion.h"
#include "sim/statevector.h"
#include "sim/trajectory_analysis.h"

namespace qs::sim {

/// Wall-clock duration of each operation class in nanoseconds; used both by
/// the decoherence model and the micro-architecture timing domain. Defaults
/// follow typical transmon numbers (paper Section 3.1 context).
struct GateDurations {
  NanoSec single_qubit = 20;
  NanoSec two_qubit = 40;
  NanoSec measure = 300;
  NanoSec prep = 200;
  NanoSec cycle = 20;  ///< duration of one schedule cycle / wait unit

  NanoSec of(const qasm::Instruction& instr) const;
};

/// Kernel-execution knobs. Results are bit-identical for a fixed seed
/// whatever the thread count (see docs/simulator.md for the contract);
/// fused kernels are numerically equivalent to the generic matrix path.
struct SimOptions {
  /// Kernel threads for the state-vector hot loops. 0 resolves through the
  /// QS_SIM_THREADS environment variable, defaulting to 1 (sequential).
  std::size_t threads = 0;

  /// Specialized fast-path kernels for X/Y/Z/S/T/phase/RZ/CNOT/CZ/SWAP/RZZ
  /// (diagonals and permutations skip the generic 2x2/4x4 multiply).
  bool fused_kernels = true;

  /// States below this qubit count always run kernels sequentially; the
  /// fork-join overhead dominates the arithmetic there.
  std::size_t min_parallel_qubits = 14;

  /// Cooperative stop: multi-shot loops (Simulator::run, Executor::
  /// run_shots) check between shots and throw qs::CancelledError when a
  /// cancel is requested or the attached deadline expires. The default
  /// token never fires. Checking at shot granularity keeps a cancelled or
  /// expired job from occupying a worker for more than one trajectory.
  /// The sampling fast path checks every 4096 draws and between
  /// distribution-build chunks — the same order of granularity.
  CancelToken cancel;

  /// Amplitude storage precision. f64 is the reference tier; f32 halves
  /// the state footprint (one extra qubit per byte budget) and roughly
  /// doubles SIMD lane width, at ~1e-7 per-gate rounding. Each tier is
  /// internally byte-identical; tiers differ from each other.
  Precision precision = Precision::kF64;

  /// Byte budget for the amplitude arrays (replaces the old hard 28-qubit
  /// cap). The default admits 28 qubits at f64 and 29 at f32 exactly.
  std::size_t max_state_bytes = StateVector::kDefaultMaxStateBytes;

  /// Kernel backend selection. kAuto picks AVX2 when compiled in and the
  /// CPU supports it (QS_SIMD=off in the environment overrides to
  /// scalar); kOff forces the scalar backend. f64 results are
  /// byte-identical either way; the switch exists for benchmarking and
  /// as an escape hatch.
  SimdMode simd = SimdMode::kAuto;

  /// Compile-time gate-sequence fusion (sim/fusion.h): Simulator::run
  /// fuses adjacent <= 2-qubit unitary runs into single matrices when the
  /// qubit model is stochastic-error-free. Callers holding a cached
  /// FusedProgram pass it to run_flat directly; this knob only controls
  /// the convenience path that builds one on the fly.
  bool fuse_sequences = true;

  /// Terminal-measurement sampling fast path: shot-deterministic circuits
  /// (see analyze_trajectory) evolve once and draw all shots from the
  /// final distribution. Off forces the per-shot trajectory loop — same
  /// statistics, different (per-trajectory) RNG stream, so fixed-seed
  /// histograms differ between the two paths by design.
  bool sampling = true;
};

/// Resolves a requested kernel-thread count: `requested` if non-zero, else
/// the QS_SIM_THREADS environment variable, else 1. Clamped to [1, 64].
std::size_t resolve_sim_threads(std::size_t requested);

/// Result of a multi-shot run.
struct RunResult {
  Histogram histogram;          ///< full-register bitstrings, q[0] leftmost
  std::size_t shots = 0;
  std::size_t total_gates = 0;  ///< unitary gates executed across all shots
  bool sampled = false;         ///< took the sampling fast path
  FusionStats fusion;           ///< gate-fusion stats (zero when unfused)
};

class Simulator {
 public:
  /// Creates a simulator over `qubit_count` qubits with the given qubit
  /// quality model, RNG seed and kernel options.
  explicit Simulator(std::size_t qubit_count,
                     QubitModel model = QubitModel::perfect(),
                     std::uint64_t seed = 1,
                     GateDurations durations = GateDurations{},
                     SimOptions options = SimOptions{});

  std::size_t qubit_count() const { return state_.qubit_count(); }
  const QubitModel& qubit_model() const { return model_; }

  /// Effective kernel options (threads resolved; see resolve_sim_threads).
  const SimOptions& options() const { return options_; }

  /// Resets state and classical bits to all-zero.
  void reset();

  /// Executes a single instruction against the live state. Returns false
  /// for a conditional instruction whose condition bits were not all 1.
  bool execute(const qasm::Instruction& instr);

  /// Executes the full (flattened) program once; returns the classical bit
  /// register after the final instruction.
  std::vector<int> run_once(const qasm::Program& program);

  /// Runs the program for `shots` shots; collects full-register
  /// bitstrings (q[0] leftmost). Shot-deterministic circuits (terminal
  /// measurements only, no conditionals, stochastic-error-free model —
  /// see analyze_trajectory) evolve ONCE and draw every shot from the
  /// final distribution; everything else runs `shots` independent
  /// trajectories with a reset before each. The program is flattened and
  /// analyzed once, not per shot.
  RunResult run(const qasm::Program& program, std::size_t shots);

  /// As run(), over a pre-flattened, pre-validated, pre-analyzed program
  /// (the service caches all three per compiled entry). The analysis must
  /// have been computed for this simulator's register width and qubit
  /// model. When `fused` is non-null (built by fuse_sequences over this
  /// exact flat stream with boundary = analysis.terminal_start) the fused
  /// ops execute instead of the raw instructions; callers must only pass
  /// it under a stochastic-error-free model.
  RunResult run_flat(const std::vector<qasm::Instruction>& flat,
                     const TrajectoryAnalysis& analysis, std::size_t shots,
                     const FusedProgram* fused = nullptr);

  /// Evolves the shot-deterministic prefix once (from reset) and returns
  /// the reusable final distribution. Requires analysis.samplable.
  /// Observes options().cancel before/during the build. A non-null
  /// `fused` executes ops[0, prefix_ops) instead of the raw prefix.
  FinalDistribution final_distribution(
      const std::vector<qasm::Instruction>& flat,
      const TrajectoryAnalysis& analysis,
      const FusedProgram* fused = nullptr);

  /// Live state access (inspection after run_once; tests and QAOA use it).
  StateVector& state() { return state_; }
  const StateVector& state() const { return state_; }

  /// Classical measurement-bit register (bit i paired with qubit i).
  const std::vector<int>& bits() const { return bits_; }

  Rng& rng() { return rng_; }

  /// Number of unitary gates applied since construction/reset counter zero.
  std::size_t gates_executed() const { return gates_executed_; }

 private:
  void apply_unitary(const qasm::Instruction& instr);
  bool apply_fused(const qasm::Instruction& instr);
  void execute_fused_op(const FusedOp& op);

  StateVector state_;
  QubitModel model_;
  std::unique_ptr<ErrorModel> errors_;
  GateDurations durations_;
  std::uint64_t seed_;  ///< base seed for counter-derived sampling streams
  Rng rng_;
  std::vector<int> bits_;
  std::size_t gates_executed_ = 0;
  SimOptions options_;
  std::unique_ptr<ThreadPool> pool_;  ///< kernel threads (threads > 1 only)
};

}  // namespace qs::sim
