// Unitary matrices for the cQASM gate set. 2x2 for single-qubit gates and
// 4x4 for two-qubit gates (row/column order: |control target> = |q1 q0>
// with the *first* operand as the most significant bit).
#pragma once

#include "common/matrix.h"
#include "qasm/instruction.h"

namespace qs::sim {

/// 2x2 matrix for a single-qubit gate kind. Throws for non-1q kinds.
Matrix gate_matrix_1q(qasm::GateKind kind, double angle = 0.0);

/// 4x4 matrix for a two-qubit gate kind (first operand = most significant
/// bit). Throws for non-2q kinds. For CRK pass k via param_k.
Matrix gate_matrix_2q(qasm::GateKind kind, double angle = 0.0,
                      std::int64_t param_k = 0);

/// Full unitary for any unitary instruction, sized 2^arity.
Matrix gate_matrix(const qasm::Instruction& instr);

// Named constructors for the common fixed gates (unit-test vocabulary).
Matrix pauli_x();
Matrix pauli_y();
Matrix pauli_z();
Matrix hadamard();
Matrix phase_s();
Matrix gate_t();
Matrix rx(double theta);
Matrix ry(double theta);
Matrix rz(double theta);

}  // namespace qs::sim
