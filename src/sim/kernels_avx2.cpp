// AVX2 kernel backend. Compiled with -mavx2 -ffp-contract=off (see
// src/sim/CMakeLists.txt): the contiguous inner runs auto-vectorise into
// 4x f64 / 8x f32 lanes, and with contraction off the per-element
// expression trees evaluate exactly as the scalar build's do — no FMA, no
// reassociation — so at f64 this backend is byte-identical to the scalar
// one. This TU exists only under the QS_SIMD CMake option; kernels_scalar
// .cpp supplies the nullptr stubs otherwise.
#include "sim/kernels.h"

namespace {
using qs::QubitIndex;
using qs::StateIndex;
using qs::cplx;
#include "sim/kernels_core.inc"

const qs::sim::KernelFns<double> kTableF64 = make_kernel_table<double>();
const qs::sim::KernelFns<float> kTableF32 = make_kernel_table<float>();
}  // namespace

namespace qs::sim {

bool simd_compiled() { return true; }
const KernelFns<double>* avx2_kernels_f64() { return &kTableF64; }
const KernelFns<float>* avx2_kernels_f32() { return &kTableF32; }

}  // namespace qs::sim
