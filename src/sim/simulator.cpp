#include "sim/simulator.h"

#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"

#include "sim/gates.h"

namespace qs::sim {

namespace {
const cplx kImag(0.0, 1.0);
}

NanoSec GateDurations::of(const qasm::Instruction& instr) const {
  using qasm::GateKind;
  switch (instr.kind()) {
    case GateKind::Measure:
    case GateKind::MeasureAll:
      return measure;
    case GateKind::PrepZ:
      return prep;
    case GateKind::Wait:
      return cycle * static_cast<NanoSec>(instr.param_k() > 0
                                              ? instr.param_k()
                                              : 1);
    case GateKind::Display:
    case GateKind::Barrier:
      return 0;
    default:
      return qasm::gate_arity(instr.kind()) >= 2 ? two_qubit : single_qubit;
  }
}

std::size_t resolve_sim_threads(std::size_t requested) {
  std::size_t t = requested;
  if (t == 0) {
    if (const char* env = std::getenv("QS_SIM_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) t = static_cast<std::size_t>(parsed);
    }
  }
  if (t == 0) t = 1;
  return t > 64 ? 64 : t;
}

Simulator::Simulator(std::size_t qubit_count, QubitModel model,
                     std::uint64_t seed, GateDurations durations,
                     SimOptions options)
    : state_(qubit_count, options.precision, options.max_state_bytes,
             options.simd),
      model_(model),
      errors_(make_error_model(model)),
      durations_(durations),
      seed_(seed),
      rng_(seed),
      bits_(qubit_count, 0),
      options_(options) {
  options_.threads = resolve_sim_threads(options.threads);
  if (options_.threads > 1)
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  state_.set_kernel_policy({pool_.get(), options_.min_parallel_qubits});
}

void Simulator::reset() {
  state_.reset();
  std::fill(bits_.begin(), bits_.end(), 0);
}

bool Simulator::apply_fused(const qasm::Instruction& instr) {
  using qasm::GateKind;
  const auto& q = instr.qubits();
  // Phase constants mirror gates.cpp expression-for-expression so the
  // fused path produces the same doubles as the generic matrix path.
  switch (instr.kind()) {
    case GateKind::X:
      state_.apply_x(q[0]);
      return true;
    case GateKind::Y:
      state_.apply_y(q[0]);
      return true;
    case GateKind::Z:
      state_.apply_z(q[0]);
      return true;
    case GateKind::S:
      state_.apply_phase(q[0], kImag);
      return true;
    case GateKind::Sdag:
      state_.apply_phase(q[0], -kImag);
      return true;
    case GateKind::T:
      state_.apply_phase(q[0], std::exp(kImag * (kPi / 4.0)));
      return true;
    case GateKind::Tdag:
      state_.apply_phase(q[0], std::conj(std::exp(kImag * (kPi / 4.0))));
      return true;
    case GateKind::Rz:
      state_.apply_diag(q[0], std::exp(-kImag * (instr.angle() / 2.0)),
                        std::exp(kImag * (instr.angle() / 2.0)));
      return true;
    case GateKind::CNOT:
      state_.apply_cnot(q[0], q[1]);
      return true;
    case GateKind::CZ:
      state_.apply_cphase(q[0], q[1], cplx(-1.0, 0.0));
      return true;
    case GateKind::Swap:
      state_.apply_swap(q[0], q[1]);
      return true;
    case GateKind::CR:
      state_.apply_cphase(q[0], q[1], std::exp(kImag * instr.angle()));
      return true;
    case GateKind::CRK: {
      if (instr.param_k() < 0) return false;  // generic path raises the error
      const double phi =
          2.0 * kPi / static_cast<double>(1LL << instr.param_k());
      state_.apply_cphase(q[0], q[1], std::exp(kImag * phi));
      return true;
    }
    case GateKind::RZZ:
      state_.apply_zz_phase(q[0], q[1],
                            std::exp(-kImag * (instr.angle() / 2.0)),
                            std::exp(kImag * (instr.angle() / 2.0)));
      return true;
    default:
      return false;
  }
}

void Simulator::apply_unitary(const qasm::Instruction& instr) {
  using qasm::GateKind;
  const auto& q = instr.qubits();
  if (!options_.fused_kernels || !apply_fused(instr)) {
    switch (instr.kind()) {
      case GateKind::CNOT:
        state_.apply_controlled_1q(pauli_x(), {q[0]}, q[1]);
        break;
      case GateKind::CZ:
        state_.apply_controlled_1q(pauli_z(), {q[0]}, q[1]);
        break;
      case GateKind::Swap:
        state_.apply_2q(gate_matrix_2q(GateKind::Swap), q[0], q[1]);
        break;
      case GateKind::Toffoli:
        state_.apply_controlled_1q(pauli_x(), {q[0], q[1]}, q[2]);
        break;
      case GateKind::CR:
      case GateKind::CRK:
      case GateKind::RZZ:
        state_.apply_2q(
            gate_matrix_2q(instr.kind(), instr.angle(), instr.param_k()),
            q[0], q[1]);
        break;
      default:
        state_.apply_1q(gate_matrix_1q(instr.kind(), instr.angle()), q[0]);
        break;
    }
  }
  ++gates_executed_;
  errors_->after_gate(state_, q, durations_.of(instr), rng_);
}

bool Simulator::execute(const qasm::Instruction& instr) {
  using qasm::GateKind;
  // Binary-controlled gate: all condition bits must currently read 1.
  for (BitIndex b : instr.conditions()) {
    if (b >= bits_.size())
      throw std::out_of_range("Simulator: condition bit out of range");
    if (bits_[b] != 1) return false;
  }

  switch (instr.kind()) {
    case GateKind::PrepZ:
      state_.prep_z(instr.qubits()[0], rng_);
      bits_[instr.qubits()[0]] = 0;
      return true;
    case GateKind::Measure: {
      const QubitIndex q = instr.qubits()[0];
      const int raw = state_.measure(q, rng_);
      bits_[q] = errors_->corrupt_readout(raw, rng_);
      return true;
    }
    case GateKind::MeasureAll: {
      for (QubitIndex q = 0; q < state_.qubit_count(); ++q) {
        const int raw = state_.measure(q, rng_);
        bits_[q] = errors_->corrupt_readout(raw, rng_);
      }
      return true;
    }
    case GateKind::Display: {
      // cQASM `display`: dump the non-negligible amplitudes (debug aid,
      // emitted through the logging sink at Info level).
      std::ostringstream os;
      os << "state dump:";
      std::size_t shown = 0;
      for (StateIndex i = 0; i < state_.dimension() && shown < 16; ++i) {
        const cplx a = state_.amplitude(i);
        if (std::norm(a) < 1e-12) continue;
        os << " |" << state_.basis_string(i) << "> " << a.real();
        if (a.imag() >= 0) os << "+";
        os << a.imag() << "i;";
        ++shown;
      }
      QS_LOG(LogLevel::Info, "qx", os.str());
      return true;
    }
    case GateKind::Barrier:
      return true;  // no simulation semantics
    case GateKind::Wait: {
      // A bare `wait n` (no qubit operands — legal cQASM) idles the whole
      // register; listing qubits restricts the idle to those.
      if (instr.qubits().empty()) {
        std::vector<QubitIndex> all(state_.qubit_count());
        std::iota(all.begin(), all.end(), QubitIndex{0});
        errors_->idle(state_, all, durations_.of(instr), rng_);
      } else {
        errors_->idle(state_, instr.qubits(), durations_.of(instr), rng_);
      }
      return true;
    }
    default:
      apply_unitary(instr);
      return true;
  }
}

std::vector<int> Simulator::run_once(const qasm::Program& program) {
  program.validate();
  if (program.qubit_count() > state_.qubit_count())
    throw std::invalid_argument(
        "Simulator: program needs more qubits than the simulator has");
  const std::vector<qasm::Instruction> flat = program.flatten();
  // Same guard as run(): per-gate error hooks count physical gates, so
  // fusion is only exact on noiseless models.
  if (options_.fuse_sequences && !stochastic_model(model_)) {
    const FusedProgram fused = fuse_sequences(flat, flat.size());
    for (const FusedOp& op : fused.ops) execute_fused_op(op);
  } else {
    for (const auto& instr : flat) execute(instr);
  }
  return bits_;
}

RunResult Simulator::run(const qasm::Program& program, std::size_t shots) {
  program.validate();
  if (program.qubit_count() > state_.qubit_count())
    throw std::invalid_argument(
        "Simulator: program needs more qubits than the simulator has");
  // Flatten and analyze once: both the instruction stream and the
  // shot-determinism verdict are per-program facts, not per-shot ones.
  const std::vector<qasm::Instruction> flat = program.flatten();
  const TrajectoryAnalysis analysis =
      analyze_trajectory(flat, state_.qubit_count(), model_);
  // Fusion is only exact when no per-gate error hooks fire (they count
  // physical gates, not fused blocks).
  if (options_.fuse_sequences && !stochastic_model(model_)) {
    const FusedProgram fused = fuse_sequences(flat, analysis.terminal_start);
    return run_flat(flat, analysis, shots, &fused);
  }
  return run_flat(flat, analysis, shots);
}

void Simulator::execute_fused_op(const FusedOp& op) {
  if (op.is_diag_window) {
    state_.apply_diag_window(op.dw_shift, op.dw_width, op.dw_table.data());
    gates_executed_ += op.gate_count;
    return;
  }
  if (!op.is_block) {
    execute(op.instr);
    return;
  }
  if (op.arity == 2) {
    state_.apply_2q(op.u, op.q1, op.q0);
  } else {
    state_.apply_1q(op.u, op.q0);
  }
  // Gate accounting stays logical: a block counts the gates it replaced,
  // so gates_executed()/total_gates are fusion-invariant.
  gates_executed_ += op.gate_count;
}

RunResult Simulator::run_flat(const std::vector<qasm::Instruction>& flat,
                              const TrajectoryAnalysis& analysis,
                              std::size_t shots, const FusedProgram* fused) {
  RunResult result;
  result.shots = shots;
  if (fused != nullptr) result.fusion = fused->stats;
  if (options_.sampling && analysis.samplable) {
    // Shot-deterministic circuit: evolve once, sample every shot from the
    // final distribution. One counter-derived draw per shot keeps the
    // histogram byte-identical to any other sampler of the same
    // (seed, shots) pair — whatever the thread count or shard layout.
    const FinalDistribution dist = final_distribution(flat, analysis, fused);
    result.total_gates = dist.gates;
    result.histogram = sample_histogram(dist, shots, seed_, options_.cancel);
    result.sampled = true;
    return result;
  }
  const std::size_t gates_before = gates_executed_;
  std::string key(bits_.size(), '0');
  for (std::size_t s = 0; s < shots; ++s) {
    throw_if_stopped(options_.cancel);
    reset();
    if (fused != nullptr) {
      for (const FusedOp& op : fused->ops) execute_fused_op(op);
    } else {
      for (const auto& instr : flat) execute(instr);
    }
    for (std::size_t i = 0; i < bits_.size(); ++i)
      key[i] = bits_[i] ? '1' : '0';
    result.histogram.add(key);
  }
  result.total_gates = gates_executed_ - gates_before;
  return result;
}

FinalDistribution Simulator::final_distribution(
    const std::vector<qasm::Instruction>& flat,
    const TrajectoryAnalysis& analysis, const FusedProgram* fused) {
  if (!analysis.samplable)
    throw std::logic_error(
        "Simulator::final_distribution: trajectory is not samplable");
  throw_if_stopped(options_.cancel);
  const std::size_t gates_before = gates_executed_;
  reset();
  if (fused != nullptr) {
    for (std::size_t i = 0; i < fused->prefix_ops; ++i)
      execute_fused_op(fused->ops[i]);
  } else {
    for (std::size_t i = 0; i < analysis.terminal_start; ++i)
      execute(flat[i]);
  }
  FinalDistribution dist;
  dist.qubit_count = state_.qubit_count();
  dist.measured_mask = analysis.measured_mask;
  dist.gates = gates_executed_ - gates_before;
  // Measurement-free circuits never consult the amplitudes; skip the
  // prefix-sum pass entirely.
  if (analysis.measured_mask != 0)
    dist.cum = state_.cumulative_distribution(options_.cancel);
  return dist;
}

}  // namespace qs::sim
