#include "sim/simulator.h"

#include <sstream>
#include <stdexcept>

#include "common/logging.h"

#include "sim/gates.h"

namespace qs::sim {

NanoSec GateDurations::of(const qasm::Instruction& instr) const {
  using qasm::GateKind;
  switch (instr.kind()) {
    case GateKind::Measure:
    case GateKind::MeasureAll:
      return measure;
    case GateKind::PrepZ:
      return prep;
    case GateKind::Wait:
      return cycle * static_cast<NanoSec>(instr.param_k() > 0
                                              ? instr.param_k()
                                              : 1);
    case GateKind::Display:
    case GateKind::Barrier:
      return 0;
    default:
      return qasm::gate_arity(instr.kind()) >= 2 ? two_qubit : single_qubit;
  }
}

Simulator::Simulator(std::size_t qubit_count, QubitModel model,
                     std::uint64_t seed, GateDurations durations)
    : state_(qubit_count),
      model_(model),
      errors_(make_error_model(model)),
      durations_(durations),
      rng_(seed),
      bits_(qubit_count, 0) {}

void Simulator::reset() {
  state_.reset();
  std::fill(bits_.begin(), bits_.end(), 0);
}

void Simulator::apply_unitary(const qasm::Instruction& instr) {
  using qasm::GateKind;
  const auto& q = instr.qubits();
  switch (instr.kind()) {
    case GateKind::CNOT:
      state_.apply_controlled_1q(pauli_x(), {q[0]}, q[1]);
      break;
    case GateKind::CZ:
      state_.apply_controlled_1q(pauli_z(), {q[0]}, q[1]);
      break;
    case GateKind::Swap:
      state_.apply_swap(q[0], q[1]);
      break;
    case GateKind::Toffoli:
      state_.apply_controlled_1q(pauli_x(), {q[0], q[1]}, q[2]);
      break;
    case GateKind::CR:
    case GateKind::CRK:
    case GateKind::RZZ:
      state_.apply_2q(
          gate_matrix_2q(instr.kind(), instr.angle(), instr.param_k()), q[0],
          q[1]);
      break;
    default:
      state_.apply_1q(gate_matrix_1q(instr.kind(), instr.angle()), q[0]);
      break;
  }
  ++gates_executed_;
  errors_->after_gate(state_, q, durations_.of(instr), rng_);
}

bool Simulator::execute(const qasm::Instruction& instr) {
  using qasm::GateKind;
  // Binary-controlled gate: all condition bits must currently read 1.
  for (BitIndex b : instr.conditions()) {
    if (b >= bits_.size())
      throw std::out_of_range("Simulator: condition bit out of range");
    if (bits_[b] != 1) return false;
  }

  switch (instr.kind()) {
    case GateKind::PrepZ:
      state_.prep_z(instr.qubits()[0], rng_);
      bits_[instr.qubits()[0]] = 0;
      return true;
    case GateKind::Measure: {
      const QubitIndex q = instr.qubits()[0];
      const int raw = state_.measure(q, rng_);
      bits_[q] = errors_->corrupt_readout(raw, rng_);
      return true;
    }
    case GateKind::MeasureAll: {
      for (QubitIndex q = 0; q < state_.qubit_count(); ++q) {
        const int raw = state_.measure(q, rng_);
        bits_[q] = errors_->corrupt_readout(raw, rng_);
      }
      return true;
    }
    case GateKind::Display: {
      // cQASM `display`: dump the non-negligible amplitudes (debug aid,
      // emitted through the logging sink at Info level).
      std::ostringstream os;
      os << "state dump:";
      std::size_t shown = 0;
      for (StateIndex i = 0; i < state_.dimension() && shown < 16; ++i) {
        const cplx a = state_.amplitude(i);
        if (std::norm(a) < 1e-12) continue;
        os << " |" << state_.basis_string(i) << "> " << a.real();
        if (a.imag() >= 0) os << "+";
        os << a.imag() << "i;";
        ++shown;
      }
      QS_LOG(LogLevel::Info, "qx", os.str());
      return true;
    }
    case GateKind::Barrier:
      return true;  // no simulation semantics
    case GateKind::Wait:
      errors_->idle(state_, instr.qubits(), durations_.of(instr), rng_);
      return true;
    default:
      apply_unitary(instr);
      return true;
  }
}

std::vector<int> Simulator::run_once(const qasm::Program& program) {
  program.validate();
  if (program.qubit_count() > state_.qubit_count())
    throw std::invalid_argument(
        "Simulator: program needs more qubits than the simulator has");
  for (const auto& instr : program.flatten()) execute(instr);
  return bits_;
}

RunResult Simulator::run(const qasm::Program& program, std::size_t shots) {
  RunResult result;
  result.shots = shots;
  const std::size_t gates_before = gates_executed_;
  for (std::size_t s = 0; s < shots; ++s) {
    reset();
    const std::vector<int> bits = run_once(program);
    std::string key(bits.size(), '0');
    for (std::size_t i = 0; i < bits.size(); ++i)
      key[i] = bits[i] ? '1' : '0';
    result.histogram.add(key);
  }
  result.total_gates = gates_executed_ - gates_before;
  return result;
}

}  // namespace qs::sim
