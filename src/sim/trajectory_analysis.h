// Shot-determinism analysis for the terminal-measurement sampling fast
// path (paper Section 2.7 / experiment E2 context). The trajectory of a
// circuit is shot-deterministic when nothing stochastic can perturb it:
// a stochastic-error-free qubit model, no classically-controlled gates,
// and measurements only in a terminal region (waits are exact no-ops
// under such a model, prep_z on the initial |0...0> is a deterministic
// identity). For such circuits every shot evolves the same final state,
// so a multi-shot run can evolve ONCE, build a cumulative distribution
// over the final amplitudes, and draw every shot by binary search — an
// O(shots x gates x 2^n) -> O(gates x 2^n + shots x n) win.
//
// Determinism contract (same one the trajectory path keeps): shot s draws
// from Rng(derive_stream_seed(seed, s)), one uniform per shot, so the
// histogram is a pure function of (final state, seed, shots) — identical
// across sim_threads, worker counts, shard layouts, retries and
// failovers. The cumulative array itself is built with the fixed-chunk
// scheme of docs/simulator.md, bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/stats.h"
#include "common/types.h"
#include "qasm/instruction.h"
#include "sim/error_model.h"

namespace qs::sim {

/// Why a program cannot take the sampling fast path (kNone = it can).
/// The enum doubles as the `reason` label of the service's
/// qs_sampling_fallback_total metric.
enum class SamplingFallback {
  kNone,              ///< eligible
  kStochasticModel,   ///< qubit model injects stochastic errors
  kConditional,       ///< classically-controlled gate (c-x et al.)
  kMidCircuitMeasure, ///< measurement followed by non-terminal work
  kMidCircuitPrep,    ///< prep_z after the state left |0...0>
  kDisplay,           ///< state dump: per-shot side effect, not replayable
  kDisabled,          ///< fast path switched off by options
};

/// Metrics-label spelling ("stochastic_model", "conditional_gate", ...).
const char* to_string(SamplingFallback reason);

/// Verdict of analyzing one flattened program against a qubit model.
struct TrajectoryAnalysis {
  bool samplable = false;
  SamplingFallback fallback = SamplingFallback::kNone;

  /// Index of the first terminal-region instruction (== flat.size() for a
  /// measurement-free program). The single evolution executes [0, here).
  std::size_t terminal_start = 0;

  /// Bit q set when qubit q is read in the terminal region. Unmeasured
  /// qubits report '0' in every histogram key, exactly as the per-shot
  /// path leaves their classical bits untouched.
  StateIndex measured_mask = 0;
};

/// Mirrors make_error_model: a Perfect-kind model, or any kind whose
/// parameters are all zero, builds a NoErrorModel — nothing stochastic
/// ever touches the state or the readout, so the trajectory is exact.
/// Shared gate: the sampling fast path and the gate-sequence fusion pass
/// (sim/fusion.h) are both valid only under such a model.
bool stochastic_model(const QubitModel& model);

/// Analyzes a flattened program for shot-determinism. `qubit_count` is the
/// register width of the executing simulator (measure_all reads every
/// register qubit, not just the ones the program names), `model` the qubit
/// model it will run under.
TrajectoryAnalysis analyze_trajectory(
    const std::vector<qasm::Instruction>& flat, std::size_t qubit_count,
    const QubitModel& model);

/// The reusable product of one evolution: an inclusive prefix sum over
/// |amp_i|^2 in basis order, plus the metadata needed to render histogram
/// keys. Immutable; the service's FinalStateCache shares it across jobs.
struct FinalDistribution {
  std::size_t qubit_count = 0;
  StateIndex measured_mask = 0;
  std::vector<double> cum;  ///< inclusive prefix sums of |amp_i|^2
  std::size_t gates = 0;    ///< unitary gates in the single evolution

  /// Approximate resident size, for the cache's byte budget.
  std::size_t bytes() const {
    return sizeof(FinalDistribution) + cum.size() * sizeof(double);
  }
};

/// Draws `shots` basis states from `dist` and bins them as full-register
/// bitstrings (q[0] leftmost; unmeasured qubits '0'). Shot s consumes one
/// uniform from Rng(derive_stream_seed(seed, s)); `cancel` is checked
/// every 4096 draws, so deadlines and cancellation keep working after the
/// per-shot trajectory loop disappears. Throws CancelledError on stop.
Histogram sample_histogram(const FinalDistribution& dist, std::size_t shots,
                           std::uint64_t seed,
                           const CancelToken& cancel = {});

}  // namespace qs::sim
