#include "sim/gates.h"

#include <cmath>
#include <stdexcept>

#include "common/types.h"

namespace qs::sim {

namespace {
const cplx kI(0.0, 1.0);
}

Matrix pauli_x() { return Matrix{{0, 1}, {1, 0}}; }
Matrix pauli_y() { return Matrix{{0, -kI}, {kI, 0}}; }
Matrix pauli_z() { return Matrix{{1, 0}, {0, -1}}; }
Matrix hadamard() {
  const double s = 1.0 / std::sqrt(2.0);
  return Matrix{{s, s}, {s, -s}};
}
Matrix phase_s() { return Matrix{{1, 0}, {0, kI}}; }
Matrix gate_t() {
  return Matrix{{1, 0}, {0, std::exp(kI * (kPi / 4.0))}};
}
Matrix rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Matrix{{c, -kI * s}, {-kI * s, c}};
}
Matrix ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Matrix{{c, -s}, {s, c}};
}
Matrix rz(double theta) {
  return Matrix{{std::exp(-kI * (theta / 2.0)), 0},
                {0, std::exp(kI * (theta / 2.0))}};
}

Matrix gate_matrix_1q(qasm::GateKind kind, double angle) {
  using qasm::GateKind;
  switch (kind) {
    case GateKind::I: return Matrix::identity(2);
    case GateKind::X: return pauli_x();
    case GateKind::Y: return pauli_y();
    case GateKind::Z: return pauli_z();
    case GateKind::H: return hadamard();
    case GateKind::S: return phase_s();
    case GateKind::Sdag: return phase_s().dagger();
    case GateKind::T: return gate_t();
    case GateKind::Tdag: return gate_t().dagger();
    case GateKind::X90: return rx(kPi / 2.0);
    case GateKind::MX90: return rx(-kPi / 2.0);
    case GateKind::Y90: return ry(kPi / 2.0);
    case GateKind::MY90: return ry(-kPi / 2.0);
    case GateKind::Rx: return rx(angle);
    case GateKind::Ry: return ry(angle);
    case GateKind::Rz: return rz(angle);
    default:
      throw std::invalid_argument("gate_matrix_1q: not a single-qubit gate: " +
                                  qasm::gate_name(kind));
  }
}

Matrix gate_matrix_2q(qasm::GateKind kind, double angle,
                      std::int64_t param_k) {
  using qasm::GateKind;
  switch (kind) {
    case GateKind::CNOT:
      // First operand (MSB) controls an X on the second.
      return Matrix{{1, 0, 0, 0},
                    {0, 1, 0, 0},
                    {0, 0, 0, 1},
                    {0, 0, 1, 0}};
    case GateKind::CZ:
      return Matrix{{1, 0, 0, 0},
                    {0, 1, 0, 0},
                    {0, 0, 1, 0},
                    {0, 0, 0, -1}};
    case GateKind::Swap:
      return Matrix{{1, 0, 0, 0},
                    {0, 0, 1, 0},
                    {0, 1, 0, 0},
                    {0, 0, 0, 1}};
    case GateKind::CR: {
      Matrix m = Matrix::identity(4);
      m(3, 3) = std::exp(kI * angle);
      return m;
    }
    case GateKind::CRK: {
      if (param_k < 0)
        throw std::invalid_argument("gate_matrix_2q: crk needs k >= 0");
      const double phi = 2.0 * kPi / static_cast<double>(1LL << param_k);
      Matrix m = Matrix::identity(4);
      m(3, 3) = std::exp(kI * phi);
      return m;
    }
    case GateKind::RZZ: {
      // exp(-i angle/2 Z(x)Z): diagonal phases by ZZ parity.
      Matrix m(4, 4);
      const cplx minus = std::exp(-kI * (angle / 2.0));
      const cplx plus = std::exp(kI * (angle / 2.0));
      m(0, 0) = minus;  // |00>: parity +1
      m(1, 1) = plus;   // |01>
      m(2, 2) = plus;   // |10>
      m(3, 3) = minus;  // |11>
      return m;
    }
    default:
      throw std::invalid_argument("gate_matrix_2q: not a two-qubit gate: " +
                                  qasm::gate_name(kind));
  }
}

Matrix gate_matrix(const qasm::Instruction& instr) {
  if (!qasm::gate_is_unitary(instr.kind()))
    throw std::invalid_argument("gate_matrix: non-unitary instruction " +
                                qasm::gate_name(instr.kind()));
  const std::size_t arity = qasm::gate_arity(instr.kind());
  if (arity == 1) return gate_matrix_1q(instr.kind(), instr.angle());
  if (arity == 2)
    return gate_matrix_2q(instr.kind(), instr.angle(), instr.param_k());
  if (instr.kind() == qasm::GateKind::Toffoli) {
    Matrix m = Matrix::identity(8);
    // |110> <-> |111> (first two operands are the controls / high bits).
    m(6, 6) = 0;
    m(7, 7) = 0;
    m(6, 7) = 1;
    m(7, 6) = 1;
    return m;
  }
  throw std::invalid_argument("gate_matrix: unsupported arity");
}

}  // namespace qs::sim
