#include "sim/fusion.h"

#include <algorithm>
#include <cstdint>
#include <functional>

#include "sim/gates.h"

namespace qs::sim {

namespace {

using qasm::GateKind;
using qasm::Instruction;

/// A gate can join a fusion block when it is an unconditional unitary on
/// one or two qubits whose matrix is known at compile time. CRK with a
/// negative k is left alone so the generic execution path raises its
/// usual error at run time.
bool fusable(const Instruction& instr) {
  if (instr.is_conditional()) return false;
  if (!qasm::gate_is_unitary(instr.kind())) return false;
  if (instr.kind() == GateKind::CRK && instr.param_k() < 0) return false;
  const std::size_t arity = instr.qubits().size();
  if (arity < 1 || arity > 2) return false;
  if (arity == 2 && instr.qubits()[0] == instr.qubits()[1]) return false;
  return true;
}

/// Relative cost of one specialized kernel pass, in units of "one dense
/// 2x2 sweep over the whole state" (~1.0). Derived from measured pass
/// times at n=20: permutation/diagonal passes stream the state once,
/// phase-like passes touch half of it, controlled phases a quarter. The
/// table is backend-independent on purpose — the fused program must be
/// a pure function of the instruction stream so every backend executes
/// the same ops and histograms stay byte-identical within a tier.
double gate_cost(const Instruction& instr) {
  switch (instr.kind()) {
    case GateKind::I:
      return 0.0;
    case GateKind::Z:
      return 0.45;  // sign flip on half the amplitudes
    case GateKind::S:
    case GateKind::Sdag:
    case GateKind::T:
    case GateKind::Tdag:
      return 0.5;  // phase on half the amplitudes
    case GateKind::Rz:
      return 0.9;  // diagonal sweep
    case GateKind::X:
      return 0.8;  // pure permutation
    case GateKind::CNOT:
      return 0.5;  // permutation of the control=1 half
    case GateKind::Swap:
      return 0.5;  // permutation of the differing-bits half
    case GateKind::CZ:
    case GateKind::CR:
    case GateKind::CRK:
      return 0.35;  // phase on the |11> quarter
    case GateKind::RZZ:
      return 1.0;  // diagonal sweep over quads
    default:
      // Dense matrix path: H/Y/Rx/Ry/X90... (1q) or a generic 4x4 (2q).
      return instr.qubits().size() == 2 ? 2.2 : 1.0;
  }
}

/// Cost of executing a fused block of the given arity (one dense sweep).
double block_cost(std::size_t arity) { return arity == 2 ? 2.2 : 1.0; }

/// Cost of a fused diagonal-window sweep (one streaming pass plus the
/// table lookups).
constexpr double kDiagWindowCost = 1.1;

/// Widest diagonal window (table of 2^k complex entries; 10 keeps the
/// table L1-resident). Longer chains split into several windows.
constexpr QubitIndex kMaxWindowBits = 10;

/// Lifts a unitary whose operands are `gq` (MSB first, matching gates.h)
/// onto the frame (q1=MSB, q0=LSB). A 1-qubit frame returns the matrix
/// unchanged; in a 2-qubit frame 1q gates tensor with the identity on
/// the other slot and reversed 2q gates get conjugated by the bit-swap
/// permutation.
Matrix lift(const Matrix& g, const std::vector<QubitIndex>& gq,
            QubitIndex q1, QubitIndex q0, std::size_t frame) {
  if (frame == 1) return g;
  if (gq.size() == 1) {
    const Matrix id = Matrix::identity(2);
    // kron: *this supplies the most significant bit.
    return gq[0] == q1 ? g.kron(id) : id.kron(g);
  }
  if (gq[0] == q1 && gq[1] == q0) return g;
  // Reversed operand order: frame index bits (b1 b0) read the gate's
  // matrix at bits (b0 b1).
  static constexpr std::size_t kSwap[4] = {0, 2, 1, 3};
  Matrix out(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) out(r, c) = g(kSwap[r], kSwap[c]);
  return out;
}

/// One open accumulation block: a running product unitary over a fixed
/// qubit set. Open blocks are pairwise disjoint and a block's set never
/// shrinks, so emitting blocks in creation order only ever reorders
/// gates with disjoint supports — exact commutation.
struct Block {
  Matrix u;
  std::vector<QubitIndex> qubits;   ///< sorted descending: {q1} or {q1, q0}
  std::vector<Instruction> members; ///< stream-ordered, for de-fusion
  double member_cost = 0.0;         ///< sum of specialized pass costs
  std::size_t count = 0;
  std::uint64_t born = 0;
};

/// True when `op` counts toward FusionStats unitary op totals.
bool counts_as_unitary_op(const FusedOp& op) {
  if (op.is_block || op.is_diag_window) return true;
  const Instruction& in = op.instr;
  return qasm::gate_is_unitary(in.kind()) &&
         !(in.kind() == GateKind::CRK && in.param_k() < 0);
}

/// Exactly-diagonal test for a gate/block matrix (2x2 or 4x4).
bool is_diagonal(const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (r != c && m(r, c) != cplx(0.0, 0.0)) return false;
  return true;
}

/// Second pass: collapse runs of consecutive diagonal ops into diagonal
/// windows. Diagonal operators commute pairwise, so a consecutive run
/// fuses regardless of which qubits its gates touch; the only limits are
/// the window width (table size) and the cost test. `boundary_op` is the
/// op index the sampling prefix ends at — no window may span it.
std::vector<FusedOp> fuse_diagonal_runs(std::vector<FusedOp> ops,
                                        std::size_t boundary_op,
                                        std::size_t* new_boundary,
                                        FusionStats* stats) {
  std::vector<FusedOp> out;
  out.reserve(ops.size());

  struct Member {
    FusedOp op;
    Matrix diag;                     ///< 2x2 or 4x4, exactly diagonal
    std::vector<QubitIndex> qubits;  ///< MSB first (gates.h convention)
    double cost;
  };
  std::vector<Member> run;
  QubitIndex run_lo = 0, run_hi = 0;  ///< inclusive window bit range

  const auto flush_run = [&] {
    double cost_sum = 0.0;
    std::size_t gates = 0;
    for (const Member& m : run) {
      cost_sum += m.cost;
      gates += m.op.gate_count;
    }
    if (run.size() >= 2 && cost_sum > kDiagWindowCost) {
      FusedOp op;
      op.is_diag_window = true;
      op.dw_shift = run_lo;
      op.dw_width = static_cast<QubitIndex>(run_hi - run_lo + 1);
      op.dw_table.assign(std::size_t{1} << op.dw_width, cplx(1.0, 0.0));
      for (const Member& m : run) {
        // Compose this gate's diagonal into the table: entry v multiplies
        // by d[bits of v at the gate's operands], MSB-first.
        for (std::size_t v = 0; v < op.dw_table.size(); ++v) {
          std::size_t idx = 0;
          for (QubitIndex q : m.qubits)
            idx = (idx << 1) | ((v >> (q - run_lo)) & 1u);
          op.dw_table[v] *= m.diag(idx, idx);
        }
      }
      op.gate_count = gates;
      ++stats->fused_blocks;
      stats->max_run = std::max(stats->max_run, gates);
      out.push_back(std::move(op));
    } else {
      for (Member& m : run) out.push_back(std::move(m.op));
    }
    run.clear();
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i == boundary_op) {
      flush_run();
      *new_boundary = out.size();
    }
    FusedOp& op = ops[i];

    Member m;
    bool eligible = false;
    if (op.is_block) {
      if (is_diagonal(op.u)) {
        m.diag = op.u;
        m.qubits = op.arity == 2 ? std::vector<QubitIndex>{op.q1, op.q0}
                                 : std::vector<QubitIndex>{op.q0};
        m.cost = block_cost(op.arity);
        eligible = true;
      }
    } else if (!op.is_diag_window && fusable(op.instr)) {
      const Matrix g = gate_matrix(op.instr);
      if (is_diagonal(g)) {
        m.diag = g;
        m.qubits = op.instr.qubits();
        m.cost = gate_cost(op.instr);
        eligible = true;
      }
    }

    if (eligible) {
      QubitIndex qlo = m.qubits[0], qhi = m.qubits[0];
      for (QubitIndex q : m.qubits) {
        qlo = std::min(qlo, q);
        qhi = std::max(qhi, q);
      }
      const QubitIndex lo = run.empty() ? qlo : std::min(run_lo, qlo);
      const QubitIndex hi = run.empty() ? qhi : std::max(run_hi, qhi);
      if (hi - lo + 1 > kMaxWindowBits) flush_run();
      run_lo = run.empty() ? qlo : std::min(run_lo, qlo);
      run_hi = run.empty() ? qhi : std::max(run_hi, qhi);
      m.op = std::move(op);
      run.push_back(std::move(m));
      continue;
    }

    flush_run();
    out.push_back(std::move(op));
  }
  flush_run();
  if (boundary_op >= ops.size()) *new_boundary = out.size();
  return out;
}

}  // namespace

std::size_t FusedProgram::bytes() const {
  std::size_t total = sizeof(FusedProgram);
  for (const FusedOp& op : ops)
    total += sizeof(FusedOp) + op.u.rows() * op.u.cols() * sizeof(cplx) +
             op.dw_table.size() * sizeof(cplx) +
             op.instr.qubits().size() * sizeof(QubitIndex);
  return total;
}

FusedProgram fuse_sequences(const std::vector<qasm::Instruction>& flat,
                            std::size_t boundary) {
  FusedProgram out;
  std::vector<Block> open;
  std::uint64_t next_born = 0;

  const auto emit_block = [&out](Block& b) {
    if (b.count > 1 && b.member_cost > block_cost(b.qubits.size())) {
      FusedOp op;
      op.is_block = true;
      op.u = std::move(b.u);
      op.arity = b.qubits.size();
      op.q1 = b.qubits.front();
      op.q0 = b.qubits.back();
      op.gate_count = b.count;
      ++out.stats.fused_blocks;
      ++out.stats.output_ops;
      out.stats.max_run = std::max(out.stats.max_run, b.count);
      out.ops.push_back(std::move(op));
      return;
    }
    // Single-gate runs — and runs whose specialized per-gate passes are
    // estimated cheaper than one dense sweep — re-emit the original
    // instructions, keeping the fast-path kernels' exact arithmetic.
    for (Instruction& instr : b.members) {
      FusedOp op;
      op.instr = std::move(instr);
      ++out.stats.output_ops;
      out.stats.max_run = std::max<std::size_t>(out.stats.max_run, 1);
      out.ops.push_back(std::move(op));
    }
  };

  const auto flush_all = [&] {
    std::sort(open.begin(), open.end(),
              [](const Block& a, const Block& b) { return a.born < b.born; });
    for (Block& b : open) emit_block(b);
    open.clear();
  };

  std::size_t prefix_op_index = 0;
  bool prefix_set = false;

  for (std::size_t i = 0; i < flat.size(); ++i) {
    if (i == boundary) {
      // No block may span the shot-deterministic prefix boundary: the
      // sampling fast path executes exactly ops[0, prefix_ops).
      flush_all();
      prefix_op_index = out.ops.size();
      prefix_set = true;
    }
    const Instruction& instr = flat[i];

    if (!fusable(instr)) {
      // Conservative: measurements, preps, conditionals, displays,
      // barriers, waits and 3-qubit gates act as full barriers.
      flush_all();
      FusedOp op;
      op.instr = instr;
      out.ops.push_back(std::move(op));
      if (qasm::gate_is_unitary(instr.kind()) &&
          !(instr.kind() == GateKind::CRK && instr.param_k() < 0)) {
        // Toffoli and conditional unitaries still execute 1:1.
        ++out.stats.input_gates;
        ++out.stats.output_ops;
      }
      continue;
    }

    ++out.stats.input_gates;
    const std::vector<QubitIndex>& gq = instr.qubits();

    // This gate's qubits unioned with every intersecting open block.
    std::vector<std::size_t> hits;
    std::vector<QubitIndex> frame_set(gq.begin(), gq.end());
    for (std::size_t b = 0; b < open.size(); ++b) {
      const Block& blk = open[b];
      const bool intersects =
          std::any_of(gq.begin(), gq.end(), [&blk](QubitIndex q) {
            return std::find(blk.qubits.begin(), blk.qubits.end(), q) !=
                   blk.qubits.end();
          });
      if (!intersects) continue;
      hits.push_back(b);
      for (QubitIndex q : blk.qubits)
        if (std::find(frame_set.begin(), frame_set.end(), q) ==
            frame_set.end())
          frame_set.push_back(q);
    }
    // Oldest-first for the running product and for emission; descending
    // index for erasure (open is not sorted by born once merged blocks —
    // old born, appended last — exist, so these orders differ).
    std::sort(hits.begin(), hits.end(),
              [&open](std::size_t a, std::size_t b) {
                return open[a].born < open[b].born;
              });
    const auto erase_hits = [&open, &hits] {
      std::vector<std::size_t> by_index = hits;
      std::sort(by_index.begin(), by_index.end(),
                std::greater<std::size_t>());
      for (std::size_t h : by_index)
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(h));
    };

    if (frame_set.size() <= 2) {
      // The gate and every intersecting block fit in one <= 2-qubit
      // frame: fold them all into a single product, oldest block first,
      // newest gate applied last (leftmost in the product).
      std::sort(frame_set.begin(), frame_set.end(),
                std::greater<QubitIndex>());
      const QubitIndex q1 = frame_set.front();
      const QubitIndex q0 = frame_set.back();
      const std::size_t frame = frame_set.size();

      Block merged;
      merged.qubits = frame_set;
      merged.born = hits.empty() ? next_born++ : open[hits.front()].born;
      merged.u = Matrix::identity(frame == 2 ? 4 : 2);
      for (std::size_t h : hits) {
        Block& blk = open[h];
        merged.u = lift(blk.u, blk.qubits, q1, q0, frame) * merged.u;
        merged.count += blk.count;
        merged.member_cost += blk.member_cost;
        for (Instruction& m : blk.members)
          merged.members.push_back(std::move(m));
      }
      merged.u = lift(gate_matrix(instr), gq, q1, q0, frame) * merged.u;
      merged.count += 1;
      merged.member_cost += gate_cost(instr);
      merged.members.push_back(instr);

      erase_hits();
      open.push_back(std::move(merged));
    } else {
      // Would need a > 2-qubit frame: retire the intersecting blocks
      // and start fresh with this gate.
      for (std::size_t h : hits) emit_block(open[h]);
      erase_hits();

      Block fresh;
      fresh.qubits.assign(gq.begin(), gq.end());
      std::sort(fresh.qubits.begin(), fresh.qubits.end(),
                std::greater<QubitIndex>());
      fresh.u = lift(gate_matrix(instr), gq, fresh.qubits.front(),
                     fresh.qubits.back(), fresh.qubits.size());
      fresh.members.push_back(instr);
      fresh.member_cost = gate_cost(instr);
      fresh.count = 1;
      fresh.born = next_born++;
      open.push_back(std::move(fresh));
    }
  }

  flush_all();
  if (!prefix_set) prefix_op_index = out.ops.size();

  // Second pass: consecutive diagonal ops collapse into window sweeps.
  std::size_t new_boundary = prefix_op_index;
  out.ops = fuse_diagonal_runs(std::move(out.ops), prefix_op_index,
                               &new_boundary, &out.stats);
  out.prefix_ops = new_boundary;

  // output_ops is recounted after the second pass (windows absorb ops).
  out.stats.output_ops = 0;
  for (const FusedOp& op : out.ops)
    if (counts_as_unitary_op(op)) ++out.stats.output_ops;
  return out;
}

}  // namespace qs::sim
