// Backend dispatch for the state-vector hot loops. The kernels themselves
// live in kernels_core.inc as plain templated loops over split real/imag
// (SoA) arrays; that file is compiled twice into per-backend tables:
//
//   * kernels_scalar.cpp  — built with -fno-tree-vectorize: the true
//     scalar tier, one amplitude at a time.
//   * kernels_avx2.cpp    — built with -mavx2 -ffp-contract=off: the
//     compiler auto-vectorises the contiguous inner runs into 4x f64 /
//     8x f32 lanes. Contraction is off and the per-element expression
//     trees are identical to the scalar build, so at f64 the AVX2 path
//     produces the very same doubles as the scalar path — simd-f64 and
//     scalar-f64 share one byte-identity class (docs/simulator.md).
//
// Both tables exist for both element types; reductions keep the ordered
// left-to-right accumulation in every backend (a loop-carried dependency
// the vectoriser must not reassociate), so sampling and measurement
// streams never depend on the selected backend.
//
// The AVX2 table is compiled only under the QS_SIMD CMake option (the
// compile-time escape hatch) and is selected at runtime only when cpuid
// reports AVX2 and the QS_SIMD environment variable is not "off".
#pragma once

#include <cstddef>

#include "common/types.h"

namespace qs::sim {

/// One backend's kernel set for element type T (double or float). Ranges
/// are in the same units the StateVector partitioner uses: pair numbers
/// for single-qubit kernels, quad numbers for two-qubit kernels, element
/// indices for whole-array sweeps — so thread partitioning is identical
/// whichever backend runs the slice.
template <typename T>
struct KernelFns {
  // m2 = {u00, u01, u10, u11}; m4 = 16 row-major entries.
  void (*apply_1q)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex q,
                   const cplx* m2);
  void (*apply_controlled_1q)(T* re, T* im, StateIndex lo, StateIndex hi,
                              QubitIndex target, StateIndex control_mask,
                              const cplx* m2);
  void (*apply_2q)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex blo,
                   QubitIndex bhi, StateIndex m1, StateIndex m0,
                   const cplx* m4);
  void (*apply_x)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex q);
  void (*apply_y)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex q);
  void (*apply_z)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex q);
  void (*apply_phase)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex q,
                      cplx phase);
  void (*apply_diag)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex q,
                     cplx d0, cplx d1);
  void (*apply_cnot)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex blo,
                     QubitIndex bhi, StateIndex mc, StateIndex mt);
  void (*apply_cphase)(T* re, T* im, StateIndex lo, StateIndex hi,
                       QubitIndex blo, QubitIndex bhi, StateIndex both,
                       cplx phase);
  void (*apply_zz_phase)(T* re, T* im, StateIndex lo, StateIndex hi,
                         QubitIndex blo, QubitIndex bhi, StateIndex ma,
                         StateIndex mb, cplx same, cplx diff);
  void (*apply_swap)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex blo,
                     QubitIndex bhi, StateIndex ma, StateIndex mb);
  /// Fused diagonal chain: amp[i] *= table[(i >> shift) & wmask] over
  /// element indices [lo, hi). `wmask` is 2^w - 1 for a w-qubit window.
  void (*apply_diag_window)(T* re, T* im, StateIndex lo, StateIndex hi,
                            QubitIndex shift, StateIndex wmask,
                            const cplx* table);

  /// Ordered left-to-right sum of |a_i|^2 over element range [lo, hi).
  /// Accumulates in double for both element types.
  double (*sum_sq)(const T* re, const T* im, StateIndex lo, StateIndex hi);
  /// Ordered sum of |a|^2 over the bit-q-set member of pairs [lo, hi).
  double (*sum_sq_set)(const T* re, const T* im, StateIndex lo, StateIndex hi,
                       QubitIndex q);

  /// Fused post-measurement sweep over pairs [lo, hi): rescales the kept
  /// half by `scale`, zeroes the discarded half.
  void (*collapse)(T* re, T* im, StateIndex lo, StateIndex hi, QubitIndex q,
                   int outcome, double scale);
  /// Elementwise rescale over [lo, hi).
  void (*scale)(T* re, T* im, StateIndex lo, StateIndex hi, double s);
  /// out[i] = |a_i|^2 as a double, elementwise over [lo, hi) — the
  /// vectorisable first pass of cumulative_distribution; the ordered
  /// running-sum pass stays scalar in every backend.
  void (*square_into)(const T* re, const T* im, double* out, StateIndex lo,
                      StateIndex hi);
};

/// True when this binary carries the AVX2 backend (built with QS_SIMD=ON).
bool simd_compiled();

/// True when the running CPU reports AVX2 support.
bool simd_cpu_supported();

/// Resolves SimdMode::kAuto against the build, the CPU and the QS_SIMD
/// environment variable ("off"/"0" disables; anything else leaves auto).
bool simd_selected(SimdMode mode);

const KernelFns<double>* scalar_kernels_f64();
const KernelFns<float>* scalar_kernels_f32();
/// nullptr when the AVX2 backend is not compiled in.
const KernelFns<double>* avx2_kernels_f64();
const KernelFns<float>* avx2_kernels_f32();

}  // namespace qs::sim
