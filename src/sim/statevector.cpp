#include "sim/statevector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qs::sim {

namespace {

// Fixed reduction granularity: 2^16 amplitudes per chunk. Chunk boundaries
// depend only on the state size — never on the thread count — so partial
// sums combine in the same order however the chunks are scheduled. States
// up to 16 qubits are a single chunk, i.e. a plain left-to-right sum.
constexpr StateIndex kReduceChunkBits = 16;

/// Index of the pair member with bit q clear, for pair number p.
inline StateIndex pair_index(StateIndex p, QubitIndex q, StateIndex stride) {
  return ((p >> q) << (q + 1)) | (p & (stride - 1));
}

/// Inserts a zero bit at position b (shifting higher bits up).
inline StateIndex insert_zero(StateIndex x, QubitIndex b) {
  const StateIndex low = (StateIndex{1} << b) - 1;
  return ((x >> b) << (b + 1)) | (x & low);
}

/// Index with bits a and b both clear, for quarter-space number t.
inline StateIndex quad_index(StateIndex t, QubitIndex lo, QubitIndex hi) {
  return insert_zero(insert_zero(t, lo), hi);
}

}  // namespace

StateVector::StateVector(std::size_t qubit_count) : n_(qubit_count) {
  if (qubit_count == 0)
    throw std::invalid_argument("StateVector: need at least one qubit");
  if (qubit_count > kMaxQubits)
    throw std::invalid_argument(
        "StateVector: " + std::to_string(qubit_count) +
        " qubits exceeds the " + std::to_string(kMaxQubits) +
        "-qubit memory guard");
  amps_.assign(StateIndex{1} << n_, cplx(0.0, 0.0));
  amps_[0] = cplx(1.0, 0.0);
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
  amps_[0] = cplx(1.0, 0.0);
}

void StateVector::check_qubit(QubitIndex q) const {
  if (q >= n_)
    throw std::out_of_range("StateVector: qubit index " + std::to_string(q) +
                            " out of range (n=" + std::to_string(n_) + ")");
}

void StateVector::for_slices(
    StateIndex count,
    const std::function<void(StateIndex, StateIndex)>& body) const {
  if (!parallel_active()) {
    body(0, count);
    return;
  }
  ThreadPool& pool = *policy_.pool;
  const std::size_t slices = pool.size();
  pool.run_chunks(slices, [&](std::size_t s) {
    std::size_t lo = 0, hi = 0;
    ThreadPool::slice(0, count, slices, s, &lo, &hi);
    if (lo < hi) body(lo, hi);
  });
}

double StateVector::reduce_chunks(
    StateIndex count,
    const std::function<double(StateIndex, StateIndex)>& chunk_sum) const {
  const StateIndex chunk = StateIndex{1} << kReduceChunkBits;
  if (count <= chunk) return chunk_sum(0, count);
  const std::size_t chunks =
      static_cast<std::size_t>((count + chunk - 1) >> kReduceChunkBits);
  std::vector<double> partial(chunks, 0.0);
  auto run_chunk = [&](std::size_t c) {
    const StateIndex lo = static_cast<StateIndex>(c) << kReduceChunkBits;
    const StateIndex hi = std::min(count, lo + chunk);
    partial[c] = chunk_sum(lo, hi);
  };
  if (parallel_active()) {
    policy_.pool->run_chunks(chunks, run_chunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
  }
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

void StateVector::apply_1q(const Matrix& u, QubitIndex q) {
  check_qubit(q);
  if (u.rows() != 2 || u.cols() != 2)
    throw std::invalid_argument("apply_1q: matrix must be 2x2");
  const StateIndex stride = StateIndex{1} << q;
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  for_slices(amps_.size() >> 1, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex p = lo; p < hi; ++p) {
      const StateIndex i0 = pair_index(p, q, stride);
      const StateIndex i1 = i0 | stride;
      const cplx a0 = amps_[i0];
      const cplx a1 = amps_[i1];
      amps_[i0] = u00 * a0 + u01 * a1;
      amps_[i1] = u10 * a0 + u11 * a1;
    }
  });
}

void StateVector::apply_controlled_1q(const Matrix& u,
                                      const std::vector<QubitIndex>& controls,
                                      QubitIndex target) {
  check_qubit(target);
  if (u.rows() != 2 || u.cols() != 2)
    throw std::invalid_argument("apply_controlled_1q: matrix must be 2x2");
  StateIndex control_mask = 0;
  for (QubitIndex c : controls) {
    check_qubit(c);
    if (c == target)
      throw std::invalid_argument(
          "apply_controlled_1q: control equals target");
    control_mask |= StateIndex{1} << c;
  }
  const StateIndex stride = StateIndex{1} << target;
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  for_slices(amps_.size() >> 1, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex p = lo; p < hi; ++p) {
      const StateIndex i0 = pair_index(p, target, stride);
      if ((i0 & control_mask) != control_mask) continue;
      const StateIndex i1 = i0 | stride;
      const cplx a0 = amps_[i0];
      const cplx a1 = amps_[i1];
      amps_[i0] = u00 * a0 + u01 * a1;
      amps_[i1] = u10 * a0 + u11 * a1;
    }
  });
}

void StateVector::apply_2q(const Matrix& u, QubitIndex q1, QubitIndex q0) {
  check_qubit(q1);
  check_qubit(q0);
  if (q1 == q0)
    throw std::invalid_argument("apply_2q: identical qubit operands");
  if (u.rows() != 4 || u.cols() != 4)
    throw std::invalid_argument("apply_2q: matrix must be 4x4");
  const StateIndex m1 = StateIndex{1} << q1;
  const StateIndex m0 = StateIndex{1} << q0;
  const QubitIndex blo = q1 < q0 ? q1 : q0;
  const QubitIndex bhi = q1 < q0 ? q0 : q1;
  cplx m[4][4];
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) m[r][c] = u(r, c);
  for_slices(amps_.size() >> 2, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex t = lo; t < hi; ++t) {
      const StateIndex i00 = quad_index(t, blo, bhi);
      const StateIndex i01 = i00 | m0;
      const StateIndex i10 = i00 | m1;
      const StateIndex i11 = i00 | m1 | m0;
      const cplx a00 = amps_[i00];
      const cplx a01 = amps_[i01];
      const cplx a10 = amps_[i10];
      const cplx a11 = amps_[i11];
      amps_[i00] = m[0][0] * a00 + m[0][1] * a01 + m[0][2] * a10 + m[0][3] * a11;
      amps_[i01] = m[1][0] * a00 + m[1][1] * a01 + m[1][2] * a10 + m[1][3] * a11;
      amps_[i10] = m[2][0] * a00 + m[2][1] * a01 + m[2][2] * a10 + m[2][3] * a11;
      amps_[i11] = m[3][0] * a00 + m[3][1] * a01 + m[3][2] * a10 + m[3][3] * a11;
    }
  });
}

void StateVector::apply_x(QubitIndex q) {
  check_qubit(q);
  const StateIndex stride = StateIndex{1} << q;
  for_slices(amps_.size() >> 1, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex p = lo; p < hi; ++p) {
      const StateIndex i0 = pair_index(p, q, stride);
      std::swap(amps_[i0], amps_[i0 | stride]);
    }
  });
}

void StateVector::apply_y(QubitIndex q) {
  check_qubit(q);
  const StateIndex stride = StateIndex{1} << q;
  for_slices(amps_.size() >> 1, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex p = lo; p < hi; ++p) {
      const StateIndex i0 = pair_index(p, q, stride);
      const StateIndex i1 = i0 | stride;
      const cplx a0 = amps_[i0];
      const cplx a1 = amps_[i1];
      amps_[i0] = cplx(a1.imag(), -a1.real());   // -i * a1
      amps_[i1] = cplx(-a0.imag(), a0.real());   //  i * a0
    }
  });
}

void StateVector::apply_z(QubitIndex q) {
  check_qubit(q);
  const StateIndex stride = StateIndex{1} << q;
  for_slices(amps_.size() >> 1, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex p = lo; p < hi; ++p) {
      const StateIndex i1 = pair_index(p, q, stride) | stride;
      amps_[i1] = -amps_[i1];
    }
  });
}

void StateVector::apply_phase(QubitIndex q, cplx phase) {
  check_qubit(q);
  const StateIndex stride = StateIndex{1} << q;
  for_slices(amps_.size() >> 1, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex p = lo; p < hi; ++p) {
      const StateIndex i1 = pair_index(p, q, stride) | stride;
      amps_[i1] = phase * amps_[i1];
    }
  });
}

void StateVector::apply_diag(QubitIndex q, cplx d0, cplx d1) {
  check_qubit(q);
  const StateIndex stride = StateIndex{1} << q;
  for_slices(amps_.size() >> 1, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex p = lo; p < hi; ++p) {
      const StateIndex i0 = pair_index(p, q, stride);
      const StateIndex i1 = i0 | stride;
      amps_[i0] = d0 * amps_[i0];
      amps_[i1] = d1 * amps_[i1];
    }
  });
}

void StateVector::apply_cnot(QubitIndex control, QubitIndex target) {
  check_qubit(control);
  check_qubit(target);
  if (control == target)
    throw std::invalid_argument("apply_cnot: identical operands");
  const StateIndex mc = StateIndex{1} << control;
  const StateIndex mt = StateIndex{1} << target;
  const QubitIndex blo = control < target ? control : target;
  const QubitIndex bhi = control < target ? target : control;
  for_slices(amps_.size() >> 2, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex t = lo; t < hi; ++t) {
      const StateIndex i0 = quad_index(t, blo, bhi) | mc;  // control=1, target=0
      std::swap(amps_[i0], amps_[i0 | mt]);
    }
  });
}

void StateVector::apply_cphase(QubitIndex a, QubitIndex b, cplx phase) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("apply_cphase: identical operands");
  const StateIndex both = (StateIndex{1} << a) | (StateIndex{1} << b);
  const QubitIndex blo = a < b ? a : b;
  const QubitIndex bhi = a < b ? b : a;
  for_slices(amps_.size() >> 2, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex t = lo; t < hi; ++t) {
      const StateIndex i11 = quad_index(t, blo, bhi) | both;
      amps_[i11] = phase * amps_[i11];
    }
  });
}

void StateVector::apply_zz_phase(QubitIndex a, QubitIndex b, cplx same,
                                 cplx diff) {
  check_qubit(a);
  check_qubit(b);
  if (a == b)
    throw std::invalid_argument("apply_zz_phase: identical operands");
  const StateIndex ma = StateIndex{1} << a;
  const StateIndex mb = StateIndex{1} << b;
  const QubitIndex blo = a < b ? a : b;
  const QubitIndex bhi = a < b ? b : a;
  for_slices(amps_.size() >> 2, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex t = lo; t < hi; ++t) {
      const StateIndex i00 = quad_index(t, blo, bhi);
      amps_[i00] = same * amps_[i00];
      amps_[i00 | ma] = diff * amps_[i00 | ma];
      amps_[i00 | mb] = diff * amps_[i00 | mb];
      amps_[i00 | ma | mb] = same * amps_[i00 | ma | mb];
    }
  });
}

void StateVector::apply_swap(QubitIndex a, QubitIndex b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("apply_swap: identical operands");
  const StateIndex ma = StateIndex{1} << a;
  const StateIndex mb = StateIndex{1} << b;
  const QubitIndex blo = a < b ? a : b;
  const QubitIndex bhi = a < b ? b : a;
  for_slices(amps_.size() >> 2, [&](StateIndex lo, StateIndex hi) {
    for (StateIndex t = lo; t < hi; ++t) {
      // Swap (a=1, b=0) with (a=0, b=1) once per 4-amplitude block.
      const StateIndex i00 = quad_index(t, blo, bhi);
      std::swap(amps_[i00 | ma], amps_[i00 | mb]);
    }
  });
}

double StateVector::prob_one(QubitIndex q) const {
  check_qubit(q);
  const StateIndex stride = StateIndex{1} << q;
  // Block kernel over the bit-set half: no per-index bit test. Pair p
  // visits basis states in increasing index order, so a single-chunk
  // reduction equals the naive masked sum exactly.
  return reduce_chunks(amps_.size() >> 1, [&](StateIndex lo, StateIndex hi) {
    double s = 0.0;
    for (StateIndex p = lo; p < hi; ++p)
      s += std::norm(amps_[pair_index(p, q, stride) | stride]);
    return s;
  });
}

void StateVector::collapse(QubitIndex q, int outcome, double keep_prob) {
  const StateIndex stride = StateIndex{1} << q;
  const double scale = keep_prob > 0.0 ? 1.0 / std::sqrt(keep_prob) : 0.0;
  // Fused sweep: one pass rescales the kept half and zeroes the other.
  for_slices(amps_.size() >> 1, [&](StateIndex lo, StateIndex hi) {
    if (outcome) {
      for (StateIndex p = lo; p < hi; ++p) {
        const StateIndex i0 = pair_index(p, q, stride);
        amps_[i0] = cplx(0.0, 0.0);
        amps_[i0 | stride] *= scale;
      }
    } else {
      for (StateIndex p = lo; p < hi; ++p) {
        const StateIndex i0 = pair_index(p, q, stride);
        amps_[i0] *= scale;
        amps_[i0 | stride] = cplx(0.0, 0.0);
      }
    }
  });
}

int StateVector::measure(QubitIndex q, Rng& rng) {
  const double p1 = prob_one(q);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  collapse(q, outcome, outcome ? p1 : 1.0 - p1);
  return outcome;
}

void StateVector::prep_z(QubitIndex q, Rng& rng) {
  if (measure(q, rng) == 1) apply_x(q);
}

std::vector<int> StateVector::measure_all(Rng& rng) {
  std::vector<int> bits(n_);
  for (QubitIndex q = 0; q < n_; ++q) bits[q] = measure(q, rng);
  return bits;
}

std::vector<double> StateVector::cumulative_distribution(
    const CancelToken& cancel) const {
  const StateIndex count = static_cast<StateIndex>(amps_.size());
  const StateIndex chunk = StateIndex{1} << kReduceChunkBits;
  const std::size_t chunks =
      static_cast<std::size_t>((count + chunk - 1) >> kReduceChunkBits);
  std::vector<double> cum(count);
  // Pass 1: within-chunk inclusive running sums. The per-chunk arithmetic
  // is the same left-to-right sum whether chunks run sequentially or on
  // pool lanes, so the doubles never depend on the thread count.
  auto fill_chunk = [&](std::size_t c) {
    const StateIndex lo = static_cast<StateIndex>(c) << kReduceChunkBits;
    const StateIndex hi = std::min(count, lo + chunk);
    double running = 0.0;
    for (StateIndex i = lo; i < hi; ++i) {
      running += std::norm(amps_[i]);
      cum[i] = running;
    }
  };
  const bool parallel = parallel_active();
  if (parallel) {
    // Pool bodies must not throw: observe the token between passes.
    throw_if_stopped(cancel);
    policy_.pool->run_chunks(chunks, fill_chunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) {
      throw_if_stopped(cancel);
      fill_chunk(c);
    }
  }
  if (chunks <= 1) return cum;

  // Pass 2 (always sequential): chunk base offsets accumulated in chunk
  // order — the same combination order reduce_chunks uses.
  std::vector<double> base(chunks, 0.0);
  for (std::size_t c = 1; c < chunks; ++c) {
    const StateIndex prev_end =
        std::min(count, static_cast<StateIndex>(c) << kReduceChunkBits);
    base[c] = base[c - 1] + cum[prev_end - 1];
  }

  // Pass 3: shift each chunk by its base (elementwise, disjoint writes;
  // chunk 0 adds exactly 0.0).
  auto shift_chunk = [&](std::size_t c) {
    const StateIndex lo = static_cast<StateIndex>(c) << kReduceChunkBits;
    const StateIndex hi = std::min(count, lo + chunk);
    const double b = base[c];
    for (StateIndex i = lo; i < hi; ++i) cum[i] += b;
  };
  if (parallel) {
    throw_if_stopped(cancel);
    policy_.pool->run_chunks(chunks, shift_chunk);
    throw_if_stopped(cancel);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) {
      throw_if_stopped(cancel);
      shift_chunk(c);
    }
  }
  return cum;
}

StateIndex StateVector::sample(Rng& rng) const {
  // Prefix-sum + binary search (shared with the terminal-measurement
  // sampling fast path) instead of a per-draw O(2^n) subtract scan. The
  // draw scales by the running total: after stochastic error channels the
  // state can drift below unit norm, and an unscaled draw would bias the
  // fallback toward the last basis state.
  const std::vector<double> cum = cumulative_distribution();
  const double total = cum.back();
  const double u = rng.uniform() * total;
  if (total <= 0.0) return 0;
  return sample_from_cumulative(cum, u);
}

double StateVector::expectation_z(QubitIndex q) const {
  return 1.0 - 2.0 * prob_one(q);
}

double StateVector::expectation_diagonal(
    const std::function<double(StateIndex)>& f) const {
  double e = 0.0;
  for (StateIndex i = 0; i < amps_.size(); ++i) {
    const double p = std::norm(amps_[i]);
    if (p > 0.0) e += p * f(i);
  }
  return e;
}

double StateVector::norm() const {
  return reduce_chunks(amps_.size(), [&](StateIndex lo, StateIndex hi) {
    double s = 0.0;
    for (StateIndex i = lo; i < hi; ++i) s += std::norm(amps_[i]);
    return s;
  });
}

void StateVector::normalize() {
  const double n = norm();
  if (n <= 0.0)
    throw std::runtime_error("StateVector::normalize: zero state");
  const double scale = 1.0 / std::sqrt(n);
  for_slices(amps_.size(), [&](StateIndex lo, StateIndex hi) {
    for (StateIndex i = lo; i < hi; ++i) amps_[i] *= scale;
  });
}

double StateVector::fidelity(const StateVector& other) const {
  if (other.n_ != n_)
    throw std::invalid_argument("fidelity: qubit count mismatch");
  cplx overlap(0.0, 0.0);
  for (StateIndex i = 0; i < amps_.size(); ++i)
    overlap += std::conj(amps_[i]) * other.amps_[i];
  return std::norm(overlap);
}

std::string StateVector::basis_string(StateIndex basis) const {
  std::string s(n_, '0');
  for (QubitIndex q = 0; q < n_; ++q)
    if (basis & (StateIndex{1} << q)) s[q] = '1';
  return s;
}

StateIndex sample_from_cumulative(const std::vector<double>& cum, double u) {
  if (cum.empty()) return 0;
  const auto it = std::upper_bound(cum.begin(), cum.end(), u);
  if (it != cum.end()) return static_cast<StateIndex>(it - cum.begin());
  // Boundary draw: u * total can round up onto total itself. Return the
  // last occupied index, mirroring the old linear scan's fallback.
  StateIndex i = static_cast<StateIndex>(cum.size()) - 1;
  while (i > 0 && cum[i - 1] == cum[i]) --i;
  return i;
}

}  // namespace qs::sim
