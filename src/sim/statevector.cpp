#include "sim/statevector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qs::sim {

namespace {

// Fixed reduction granularity: 2^16 amplitudes per chunk. Chunk boundaries
// depend only on the state size — never on the thread count — so partial
// sums combine in the same order however the chunks are scheduled. States
// up to 16 qubits are a single chunk, i.e. a plain left-to-right sum.
constexpr StateIndex kReduceChunkBits = 16;

}  // namespace

// Dispatches a kernel-table entry to the active precision's storage. The
// table pointer (scalar vs AVX2 backend) was fixed at construction.
#define QS_KERNEL(fn, ...)                                  \
  (prec_ == Precision::kF32                                 \
       ? k32_->fn(re32_.data(), im32_.data(), __VA_ARGS__)  \
       : k64_->fn(re_.data(), im_.data(), __VA_ARGS__))
#define QS_KERNEL_CONST(fn, ...)                            \
  (prec_ == Precision::kF32                                 \
       ? k32_->fn(re32_.data(), im32_.data(), __VA_ARGS__)  \
       : k64_->fn(re_.data(), im_.data(), __VA_ARGS__))

StateVector::StateVector(std::size_t qubit_count, Precision precision,
                         std::size_t max_state_bytes, SimdMode simd)
    : n_(qubit_count), prec_(precision), simd_(simd_selected(simd)) {
  if (qubit_count == 0)
    throw std::invalid_argument("StateVector: need at least one qubit");
  if (max_state_bytes == 0) max_state_bytes = kDefaultMaxStateBytes;
  const std::size_t bpa = bytes_per_amplitude(prec_);
  // 2^58 amplitudes already exceed any addressable budget; guarding here
  // keeps the byte computation below from overflowing.
  const bool over = qubit_count >= 58 ||
                    (std::size_t{1} << qubit_count) * bpa > max_state_bytes;
  if (over) {
    const double requested = std::ldexp(static_cast<double>(bpa),
                                        static_cast<int>(qubit_count));
    throw std::invalid_argument(
        "StateVector: " + std::to_string(qubit_count) + " qubits at " +
        std::string(to_string(prec_)) + " needs " +
        std::to_string(static_cast<unsigned long long>(requested)) +
        " bytes, exceeding the " + std::to_string(max_state_bytes) +
        "-byte state budget (raise SimOptions::max_state_bytes or drop to "
        "f32)");
  }
  dim_ = StateIndex{1} << n_;
  if (simd_) {
    k64_ = avx2_kernels_f64();
    k32_ = avx2_kernels_f32();
  } else {
    k64_ = scalar_kernels_f64();
    k32_ = scalar_kernels_f32();
  }
  if (prec_ == Precision::kF32) {
    re32_.assign(dim_, 0.0f);
    im32_.assign(dim_, 0.0f);
    re32_[0] = 1.0f;
  } else {
    re_.assign(dim_, 0.0);
    im_.assign(dim_, 0.0);
    re_[0] = 1.0;
  }
}

void StateVector::reset() {
  if (prec_ == Precision::kF32) {
    std::fill(re32_.begin(), re32_.end(), 0.0f);
    std::fill(im32_.begin(), im32_.end(), 0.0f);
    re32_[0] = 1.0f;
  } else {
    std::fill(re_.begin(), re_.end(), 0.0);
    std::fill(im_.begin(), im_.end(), 0.0);
    re_[0] = 1.0;
  }
}

void StateVector::check_qubit(QubitIndex q) const {
  if (q >= n_)
    throw std::out_of_range("StateVector: qubit index " + std::to_string(q) +
                            " out of range (n=" + std::to_string(n_) + ")");
}

void StateVector::for_slices(
    StateIndex count,
    const std::function<void(StateIndex, StateIndex)>& body) const {
  if (!parallel_active()) {
    body(0, count);
    return;
  }
  ThreadPool& pool = *policy_.pool;
  const std::size_t slices = pool.size();
  pool.run_chunks(slices, [&](std::size_t s) {
    std::size_t lo = 0, hi = 0;
    ThreadPool::slice(0, count, slices, s, &lo, &hi);
    if (lo < hi) body(lo, hi);
  });
}

void StateVector::apply_diag_window(QubitIndex shift, QubitIndex width,
                                    const cplx* table) {
  if (width == 0 || shift + width > n_)
    throw std::invalid_argument(
        "apply_diag_window: window outside the register");
  const StateIndex wmask = (StateIndex{1} << width) - 1;
  for_slices(dim_, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_diag_window, lo, hi, shift, wmask, table);
  });
}

double StateVector::reduce_chunks(
    StateIndex count,
    const std::function<double(StateIndex, StateIndex)>& chunk_sum) const {
  const StateIndex chunk = StateIndex{1} << kReduceChunkBits;
  if (count <= chunk) return chunk_sum(0, count);
  const std::size_t chunks =
      static_cast<std::size_t>((count + chunk - 1) >> kReduceChunkBits);
  std::vector<double> partial(chunks, 0.0);
  auto run_chunk = [&](std::size_t c) {
    const StateIndex lo = static_cast<StateIndex>(c) << kReduceChunkBits;
    const StateIndex hi = std::min(count, lo + chunk);
    partial[c] = chunk_sum(lo, hi);
  };
  if (parallel_active()) {
    policy_.pool->run_chunks(chunks, run_chunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
  }
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

void StateVector::apply_1q(const Matrix& u, QubitIndex q) {
  check_qubit(q);
  if (u.rows() != 2 || u.cols() != 2)
    throw std::invalid_argument("apply_1q: matrix must be 2x2");
  const cplx m2[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
  for_slices(dim_ >> 1, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_1q, lo, hi, q, m2);
  });
}

void StateVector::apply_controlled_1q(const Matrix& u,
                                      const std::vector<QubitIndex>& controls,
                                      QubitIndex target) {
  check_qubit(target);
  if (u.rows() != 2 || u.cols() != 2)
    throw std::invalid_argument("apply_controlled_1q: matrix must be 2x2");
  StateIndex control_mask = 0;
  for (QubitIndex c : controls) {
    check_qubit(c);
    if (c == target)
      throw std::invalid_argument(
          "apply_controlled_1q: control equals target");
    control_mask |= StateIndex{1} << c;
  }
  const cplx m2[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
  for_slices(dim_ >> 1, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_controlled_1q, lo, hi, target, control_mask, m2);
  });
}

void StateVector::apply_2q(const Matrix& u, QubitIndex q1, QubitIndex q0) {
  check_qubit(q1);
  check_qubit(q0);
  if (q1 == q0)
    throw std::invalid_argument("apply_2q: identical qubit operands");
  if (u.rows() != 4 || u.cols() != 4)
    throw std::invalid_argument("apply_2q: matrix must be 4x4");
  const StateIndex m1 = StateIndex{1} << q1;
  const StateIndex m0 = StateIndex{1} << q0;
  const QubitIndex blo = q1 < q0 ? q1 : q0;
  const QubitIndex bhi = q1 < q0 ? q0 : q1;
  cplx m4[16];
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) m4[4 * r + c] = u(r, c);
  for_slices(dim_ >> 2, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_2q, lo, hi, blo, bhi, m1, m0, m4);
  });
}

void StateVector::apply_x(QubitIndex q) {
  check_qubit(q);
  for_slices(dim_ >> 1, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_x, lo, hi, q);
  });
}

void StateVector::apply_y(QubitIndex q) {
  check_qubit(q);
  for_slices(dim_ >> 1, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_y, lo, hi, q);
  });
}

void StateVector::apply_z(QubitIndex q) {
  check_qubit(q);
  for_slices(dim_ >> 1, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_z, lo, hi, q);
  });
}

void StateVector::apply_phase(QubitIndex q, cplx phase) {
  check_qubit(q);
  for_slices(dim_ >> 1, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_phase, lo, hi, q, phase);
  });
}

void StateVector::apply_diag(QubitIndex q, cplx d0, cplx d1) {
  check_qubit(q);
  for_slices(dim_ >> 1, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_diag, lo, hi, q, d0, d1);
  });
}

void StateVector::apply_cnot(QubitIndex control, QubitIndex target) {
  check_qubit(control);
  check_qubit(target);
  if (control == target)
    throw std::invalid_argument("apply_cnot: identical operands");
  const StateIndex mc = StateIndex{1} << control;
  const StateIndex mt = StateIndex{1} << target;
  const QubitIndex blo = control < target ? control : target;
  const QubitIndex bhi = control < target ? target : control;
  for_slices(dim_ >> 2, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_cnot, lo, hi, blo, bhi, mc, mt);
  });
}

void StateVector::apply_cphase(QubitIndex a, QubitIndex b, cplx phase) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("apply_cphase: identical operands");
  const StateIndex both = (StateIndex{1} << a) | (StateIndex{1} << b);
  const QubitIndex blo = a < b ? a : b;
  const QubitIndex bhi = a < b ? b : a;
  for_slices(dim_ >> 2, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_cphase, lo, hi, blo, bhi, both, phase);
  });
}

void StateVector::apply_zz_phase(QubitIndex a, QubitIndex b, cplx same,
                                 cplx diff) {
  check_qubit(a);
  check_qubit(b);
  if (a == b)
    throw std::invalid_argument("apply_zz_phase: identical operands");
  const StateIndex ma = StateIndex{1} << a;
  const StateIndex mb = StateIndex{1} << b;
  const QubitIndex blo = a < b ? a : b;
  const QubitIndex bhi = a < b ? b : a;
  for_slices(dim_ >> 2, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_zz_phase, lo, hi, blo, bhi, ma, mb, same, diff);
  });
}

void StateVector::apply_swap(QubitIndex a, QubitIndex b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("apply_swap: identical operands");
  const StateIndex ma = StateIndex{1} << a;
  const StateIndex mb = StateIndex{1} << b;
  const QubitIndex blo = a < b ? a : b;
  const QubitIndex bhi = a < b ? b : a;
  for_slices(dim_ >> 2, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(apply_swap, lo, hi, blo, bhi, ma, mb);
  });
}

double StateVector::prob_one(QubitIndex q) const {
  check_qubit(q);
  // Block kernel over the bit-set half: no per-index bit test. Pair p
  // visits basis states in increasing index order, so a single-chunk
  // reduction equals the naive masked sum exactly.
  return reduce_chunks(dim_ >> 1, [&](StateIndex lo, StateIndex hi) {
    return QS_KERNEL_CONST(sum_sq_set, lo, hi, q);
  });
}

int StateVector::measure(QubitIndex q, Rng& rng) {
  const double p1 = prob_one(q);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const double keep_prob = outcome ? p1 : 1.0 - p1;
  const double scale = keep_prob > 0.0 ? 1.0 / std::sqrt(keep_prob) : 0.0;
  // Fused sweep: one pass rescales the kept half and zeroes the other.
  for_slices(dim_ >> 1, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(collapse, lo, hi, q, outcome, scale);
  });
  return outcome;
}

void StateVector::prep_z(QubitIndex q, Rng& rng) {
  if (measure(q, rng) == 1) apply_x(q);
}

std::vector<int> StateVector::measure_all(Rng& rng) {
  std::vector<int> bits(n_);
  for (QubitIndex q = 0; q < n_; ++q) bits[q] = measure(q, rng);
  return bits;
}

std::vector<double> StateVector::cumulative_distribution(
    const CancelToken& cancel) const {
  const StateIndex count = dim_;
  const StateIndex chunk = StateIndex{1} << kReduceChunkBits;
  const std::size_t chunks =
      static_cast<std::size_t>((count + chunk - 1) >> kReduceChunkBits);
  std::vector<double> cum(count);
  // Pass 1: within-chunk inclusive running sums. The squares fill the
  // chunk as a vectorisable elementwise pass; the running sum then reads
  // them back left-to-right — the same adds in the same order whether
  // chunks run sequentially or on pool lanes, so the doubles never depend
  // on the thread count (or the kernel backend, at f64).
  auto fill_chunk = [&](std::size_t c) {
    const StateIndex lo = static_cast<StateIndex>(c) << kReduceChunkBits;
    const StateIndex hi = std::min(count, lo + chunk);
    QS_KERNEL_CONST(square_into, cum.data(), lo, hi);
    double running = 0.0;
    for (StateIndex i = lo; i < hi; ++i) {
      running += cum[i];
      cum[i] = running;
    }
  };
  const bool parallel = parallel_active();
  if (parallel) {
    // Pool bodies must not throw: observe the token between passes.
    throw_if_stopped(cancel);
    policy_.pool->run_chunks(chunks, fill_chunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) {
      throw_if_stopped(cancel);
      fill_chunk(c);
    }
  }
  if (chunks <= 1) return cum;

  // Pass 2 (always sequential): chunk base offsets accumulated in chunk
  // order — the same combination order reduce_chunks uses.
  std::vector<double> base(chunks, 0.0);
  for (std::size_t c = 1; c < chunks; ++c) {
    const StateIndex prev_end =
        std::min(count, static_cast<StateIndex>(c) << kReduceChunkBits);
    base[c] = base[c - 1] + cum[prev_end - 1];
  }

  // Pass 3: shift each chunk by its base (elementwise, disjoint writes;
  // chunk 0 adds exactly 0.0).
  auto shift_chunk = [&](std::size_t c) {
    const StateIndex lo = static_cast<StateIndex>(c) << kReduceChunkBits;
    const StateIndex hi = std::min(count, lo + chunk);
    const double b = base[c];
    for (StateIndex i = lo; i < hi; ++i) cum[i] += b;
  };
  if (parallel) {
    throw_if_stopped(cancel);
    policy_.pool->run_chunks(chunks, shift_chunk);
    throw_if_stopped(cancel);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) {
      throw_if_stopped(cancel);
      shift_chunk(c);
    }
  }
  return cum;
}

StateIndex StateVector::sample(Rng& rng) const {
  // Prefix-sum + binary search (shared with the terminal-measurement
  // sampling fast path) instead of a per-draw O(2^n) subtract scan. The
  // draw scales by the running total: after stochastic error channels the
  // state can drift below unit norm, and an unscaled draw would bias the
  // fallback toward the last basis state.
  const std::vector<double> cum = cumulative_distribution();
  const double total = cum.back();
  const double u = rng.uniform() * total;
  if (total <= 0.0) return 0;
  return sample_from_cumulative(cum, u);
}

double StateVector::expectation_z(QubitIndex q) const {
  return 1.0 - 2.0 * prob_one(q);
}

double StateVector::expectation_diagonal(
    const std::function<double(StateIndex)>& f) const {
  double e = 0.0;
  for (StateIndex i = 0; i < dim_; ++i) {
    const double p = std::norm(amplitude(i));
    if (p > 0.0) e += p * f(i);
  }
  return e;
}

double StateVector::norm() const {
  return reduce_chunks(dim_, [&](StateIndex lo, StateIndex hi) {
    return QS_KERNEL_CONST(sum_sq, lo, hi);
  });
}

void StateVector::normalize() {
  const double n = norm();
  if (n <= 0.0)
    throw std::runtime_error("StateVector::normalize: zero state");
  const double scale = 1.0 / std::sqrt(n);
  for_slices(dim_, [&](StateIndex lo, StateIndex hi) {
    QS_KERNEL(scale, lo, hi, scale);
  });
}

double StateVector::fidelity(const StateVector& other) const {
  if (other.n_ != n_)
    throw std::invalid_argument("fidelity: qubit count mismatch");
  cplx overlap(0.0, 0.0);
  for (StateIndex i = 0; i < dim_; ++i)
    overlap += std::conj(amplitude(i)) * other.amplitude(i);
  return std::norm(overlap);
}

std::string StateVector::basis_string(StateIndex basis) const {
  std::string s(n_, '0');
  for (QubitIndex q = 0; q < n_; ++q)
    if (basis & (StateIndex{1} << q)) s[q] = '1';
  return s;
}

StateIndex sample_from_cumulative(const std::vector<double>& cum, double u) {
  if (cum.empty()) return 0;
  const auto it = std::upper_bound(cum.begin(), cum.end(), u);
  if (it != cum.end()) return static_cast<StateIndex>(it - cum.begin());
  // Boundary draw: u * total can round up onto total itself. Return the
  // last occupied index, mirroring the old linear scan's fallback.
  StateIndex i = static_cast<StateIndex>(cum.size()) - 1;
  while (i > 0 && cum[i - 1] == cum[i]) --i;
  return i;
}

}  // namespace qs::sim
