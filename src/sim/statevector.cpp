#include "sim/statevector.h"

#include <cmath>
#include <stdexcept>

namespace qs::sim {

StateVector::StateVector(std::size_t qubit_count) : n_(qubit_count) {
  if (qubit_count == 0)
    throw std::invalid_argument("StateVector: need at least one qubit");
  if (qubit_count > kMaxQubits)
    throw std::invalid_argument(
        "StateVector: " + std::to_string(qubit_count) +
        " qubits exceeds the " + std::to_string(kMaxQubits) +
        "-qubit memory guard");
  amps_.assign(StateIndex{1} << n_, cplx(0.0, 0.0));
  amps_[0] = cplx(1.0, 0.0);
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
  amps_[0] = cplx(1.0, 0.0);
}

void StateVector::check_qubit(QubitIndex q) const {
  if (q >= n_)
    throw std::out_of_range("StateVector: qubit index " + std::to_string(q) +
                            " out of range (n=" + std::to_string(n_) + ")");
}

void StateVector::apply_1q(const Matrix& u, QubitIndex q) {
  check_qubit(q);
  if (u.rows() != 2 || u.cols() != 2)
    throw std::invalid_argument("apply_1q: matrix must be 2x2");
  const StateIndex stride = StateIndex{1} << q;
  const StateIndex dim = amps_.size();
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  for (StateIndex base = 0; base < dim; base += stride * 2) {
    for (StateIndex off = 0; off < stride; ++off) {
      const StateIndex i0 = base + off;
      const StateIndex i1 = i0 + stride;
      const cplx a0 = amps_[i0];
      const cplx a1 = amps_[i1];
      amps_[i0] = u00 * a0 + u01 * a1;
      amps_[i1] = u10 * a0 + u11 * a1;
    }
  }
}

void StateVector::apply_controlled_1q(const Matrix& u,
                                      const std::vector<QubitIndex>& controls,
                                      QubitIndex target) {
  check_qubit(target);
  if (u.rows() != 2 || u.cols() != 2)
    throw std::invalid_argument("apply_controlled_1q: matrix must be 2x2");
  StateIndex control_mask = 0;
  for (QubitIndex c : controls) {
    check_qubit(c);
    if (c == target)
      throw std::invalid_argument(
          "apply_controlled_1q: control equals target");
    control_mask |= StateIndex{1} << c;
  }
  const StateIndex stride = StateIndex{1} << target;
  const StateIndex dim = amps_.size();
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  for (StateIndex base = 0; base < dim; base += stride * 2) {
    for (StateIndex off = 0; off < stride; ++off) {
      const StateIndex i0 = base + off;
      if ((i0 & control_mask) != control_mask) continue;
      const StateIndex i1 = i0 + stride;
      const cplx a0 = amps_[i0];
      const cplx a1 = amps_[i1];
      amps_[i0] = u00 * a0 + u01 * a1;
      amps_[i1] = u10 * a0 + u11 * a1;
    }
  }
}

void StateVector::apply_2q(const Matrix& u, QubitIndex q1, QubitIndex q0) {
  check_qubit(q1);
  check_qubit(q0);
  if (q1 == q0)
    throw std::invalid_argument("apply_2q: identical qubit operands");
  if (u.rows() != 4 || u.cols() != 4)
    throw std::invalid_argument("apply_2q: matrix must be 4x4");
  const StateIndex m1 = StateIndex{1} << q1;
  const StateIndex m0 = StateIndex{1} << q0;
  const StateIndex dim = amps_.size();
  for (StateIndex i = 0; i < dim; ++i) {
    // Visit each 4-amplitude block once, from its (q1=0, q0=0) member.
    if ((i & m1) || (i & m0)) continue;
    const StateIndex i00 = i;
    const StateIndex i01 = i | m0;
    const StateIndex i10 = i | m1;
    const StateIndex i11 = i | m1 | m0;
    const cplx a00 = amps_[i00];
    const cplx a01 = amps_[i01];
    const cplx a10 = amps_[i10];
    const cplx a11 = amps_[i11];
    amps_[i00] = u(0, 0) * a00 + u(0, 1) * a01 + u(0, 2) * a10 + u(0, 3) * a11;
    amps_[i01] = u(1, 0) * a00 + u(1, 1) * a01 + u(1, 2) * a10 + u(1, 3) * a11;
    amps_[i10] = u(2, 0) * a00 + u(2, 1) * a01 + u(2, 2) * a10 + u(2, 3) * a11;
    amps_[i11] = u(3, 0) * a00 + u(3, 1) * a01 + u(3, 2) * a10 + u(3, 3) * a11;
  }
}

void StateVector::apply_swap(QubitIndex a, QubitIndex b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw std::invalid_argument("apply_swap: identical operands");
  const StateIndex ma = StateIndex{1} << a;
  const StateIndex mb = StateIndex{1} << b;
  const StateIndex dim = amps_.size();
  for (StateIndex i = 0; i < dim; ++i) {
    // Swap amplitudes between (a=1,b=0) and (a=0,b=1) once per pair.
    if ((i & ma) && !(i & mb)) {
      const StateIndex j = (i & ~ma) | mb;
      std::swap(amps_[i], amps_[j]);
    }
  }
}

double StateVector::prob_one(QubitIndex q) const {
  check_qubit(q);
  const StateIndex mask = StateIndex{1} << q;
  double p = 0.0;
  for (StateIndex i = 0; i < amps_.size(); ++i)
    if (i & mask) p += std::norm(amps_[i]);
  return p;
}

int StateVector::measure(QubitIndex q, Rng& rng) {
  const double p1 = prob_one(q);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const StateIndex mask = StateIndex{1} << q;
  const double keep_prob = outcome ? p1 : 1.0 - p1;
  const double scale =
      keep_prob > 0.0 ? 1.0 / std::sqrt(keep_prob) : 0.0;
  for (StateIndex i = 0; i < amps_.size(); ++i) {
    const bool bit = (i & mask) != 0;
    if (bit == static_cast<bool>(outcome))
      amps_[i] *= scale;
    else
      amps_[i] = cplx(0.0, 0.0);
  }
  return outcome;
}

void StateVector::prep_z(QubitIndex q, Rng& rng) {
  if (measure(q, rng) == 1) apply_1q(Matrix{{0, 1}, {1, 0}}, q);
}

std::vector<int> StateVector::measure_all(Rng& rng) {
  std::vector<int> bits(n_);
  for (QubitIndex q = 0; q < n_; ++q) bits[q] = measure(q, rng);
  return bits;
}

StateIndex StateVector::sample(Rng& rng) const {
  double r = rng.uniform();
  for (StateIndex i = 0; i < amps_.size(); ++i) {
    r -= std::norm(amps_[i]);
    if (r < 0.0) return i;
  }
  return amps_.size() - 1;
}

double StateVector::expectation_z(QubitIndex q) const {
  return 1.0 - 2.0 * prob_one(q);
}

double StateVector::expectation_diagonal(
    const std::function<double(StateIndex)>& f) const {
  double e = 0.0;
  for (StateIndex i = 0; i < amps_.size(); ++i) {
    const double p = std::norm(amps_[i]);
    if (p > 0.0) e += p * f(i);
  }
  return e;
}

double StateVector::norm() const {
  double s = 0.0;
  for (const cplx& a : amps_) s += std::norm(a);
  return s;
}

void StateVector::normalize() {
  const double n = norm();
  if (n <= 0.0)
    throw std::runtime_error("StateVector::normalize: zero state");
  const double scale = 1.0 / std::sqrt(n);
  for (cplx& a : amps_) a *= scale;
}

double StateVector::fidelity(const StateVector& other) const {
  if (other.n_ != n_)
    throw std::invalid_argument("fidelity: qubit count mismatch");
  cplx overlap(0.0, 0.0);
  for (StateIndex i = 0; i < amps_.size(); ++i)
    overlap += std::conj(amps_[i]) * other.amps_[i];
  return std::norm(overlap);
}

std::string StateVector::basis_string(StateIndex basis) const {
  std::string s(n_, '0');
  for (QubitIndex q = 0; q < n_; ++q)
    if (basis & (StateIndex{1} << q)) s[q] = '1';
  return s;
}

}  // namespace qs::sim
