#include "sim/trajectory_analysis.h"

#include "common/rng.h"
#include "sim/statevector.h"

namespace qs::sim {

bool stochastic_model(const QubitModel& model) {
  if (model.kind == QubitKind::Perfect) return false;
  return model.gate_error_1q > 0.0 || model.gate_error_2q > 0.0 ||
         model.readout_error > 0.0 || model.t1_ns > 0.0 || model.t2_ns > 0.0;
}

const char* to_string(SamplingFallback reason) {
  switch (reason) {
    case SamplingFallback::kNone:
      return "none";
    case SamplingFallback::kStochasticModel:
      return "stochastic_model";
    case SamplingFallback::kConditional:
      return "conditional_gate";
    case SamplingFallback::kMidCircuitMeasure:
      return "mid_circuit_measure";
    case SamplingFallback::kMidCircuitPrep:
      return "mid_circuit_prep";
    case SamplingFallback::kDisplay:
      return "display";
    case SamplingFallback::kDisabled:
      return "disabled";
  }
  return "unknown";
}

TrajectoryAnalysis analyze_trajectory(
    const std::vector<qasm::Instruction>& flat, std::size_t qubit_count,
    const QubitModel& model) {
  using qasm::GateKind;
  TrajectoryAnalysis a;
  a.terminal_start = flat.size();

  const auto reject = [&a](SamplingFallback why) {
    a.samplable = false;
    a.fallback = why;
    return a;
  };

  if (stochastic_model(model))
    return reject(SamplingFallback::kStochasticModel);

  bool state_left_origin = false;  // some unitary/measure already ran
  bool in_terminal = false;        // a measurement has been seen
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const qasm::Instruction& instr = flat[i];
    if (instr.is_conditional()) return reject(SamplingFallback::kConditional);
    switch (instr.kind()) {
      case GateKind::Measure:
      case GateKind::MeasureAll:
        if (!in_terminal) {
          in_terminal = true;
          a.terminal_start = i;
        }
        if (instr.kind() == GateKind::MeasureAll) {
          a.measured_mask = (StateIndex{1} << qubit_count) - 1;
        } else {
          a.measured_mask |= StateIndex{1} << instr.qubits()[0];
        }
        state_left_origin = true;
        break;
      case GateKind::Barrier:
      case GateKind::Wait:
        // Exact no-ops under a stochastic-error-free model (idle() is
        // empty), terminal or not.
        break;
      case GateKind::PrepZ:
        // prep_z measures, then conditionally flips. On the untouched
        // initial |0...0> the outcome is 0 with probability 1 and the
        // collapse rescales by exactly 1.0 — a deterministic identity.
        // Anywhere later the outcome can be random: fall back.
        if (state_left_origin || in_terminal)
          return reject(in_terminal ? SamplingFallback::kMidCircuitMeasure
                                    : SamplingFallback::kMidCircuitPrep);
        break;
      case GateKind::Display:
        // The dump is a per-shot side effect of the *collapsed* state;
        // the fast path would log the uncollapsed superposition once.
        return reject(SamplingFallback::kDisplay);
      default:
        // A unitary gate. After a measurement it makes the measurement
        // mid-circuit: later shots' outcomes depend on the collapse.
        if (in_terminal) return reject(SamplingFallback::kMidCircuitMeasure);
        state_left_origin = true;
        break;
    }
  }

  a.samplable = true;
  a.fallback = SamplingFallback::kNone;
  return a;
}

Histogram sample_histogram(const FinalDistribution& dist, std::size_t shots,
                           std::uint64_t seed, const CancelToken& cancel) {
  Histogram histogram;
  std::string key(dist.qubit_count, '0');
  if (dist.measured_mask == 0) {
    // Measurement-free circuit: every shot reads the all-zero classical
    // register, exactly as the per-shot path leaves bits untouched.
    throw_if_stopped(cancel);
    if (shots > 0) histogram.add(key, shots);
    return histogram;
  }
  const double total = dist.cum.empty() ? 0.0 : dist.cum.back();
  for (std::size_t s = 0; s < shots; ++s) {
    if ((s & 0xFFF) == 0) throw_if_stopped(cancel);
    // One counter-derived uniform per shot: shot s's draw depends only on
    // (seed, s), never on threads, shard layout or retry history.
    Rng rng(derive_stream_seed(seed, s));
    const StateIndex basis =
        total > 0.0 ? sample_from_cumulative(dist.cum, rng.uniform() * total)
                    : StateIndex{0};
    for (std::size_t q = 0; q < dist.qubit_count; ++q) {
      const bool measured = (dist.measured_mask >> q) & 1;
      key[q] = (measured && ((basis >> q) & 1)) ? '1' : '0';
    }
    histogram.add(key);
  }
  return histogram;
}

}  // namespace qs::sim
