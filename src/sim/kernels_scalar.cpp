// Scalar kernel backend. Compiled with -fno-tree-vectorize (see
// src/sim/CMakeLists.txt) so this tier really is one-amplitude-at-a-time —
// without the flag the compiler would SSE-vectorise these loops and the
// "scalar" tier would be a misnomer in benchmarks.
#include "sim/kernels.h"

#include <cstdlib>
#include <cstring>

namespace {
using qs::QubitIndex;
using qs::StateIndex;
using qs::cplx;
#include "sim/kernels_core.inc"

const qs::sim::KernelFns<double> kTableF64 = make_kernel_table<double>();
const qs::sim::KernelFns<float> kTableF32 = make_kernel_table<float>();
}  // namespace

namespace qs::sim {

const KernelFns<double>* scalar_kernels_f64() { return &kTableF64; }
const KernelFns<float>* scalar_kernels_f32() { return &kTableF32; }

bool simd_cpu_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool simd_selected(SimdMode mode) {
  if (mode == SimdMode::kOff) return false;
  if (!simd_compiled() || !simd_cpu_supported()) return false;
  static const bool env_off = [] {
    const char* v = std::getenv("QS_SIMD");
    return v != nullptr &&
           (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0);
  }();
  return !env_off;
}

#ifndef QS_SIMD_AVX2
bool simd_compiled() { return false; }
const KernelFns<double>* avx2_kernels_f64() { return nullptr; }
const KernelFns<float>* avx2_kernels_f32() { return nullptr; }
#endif

}  // namespace qs::sim
