#include "sim/error_model.h"

#include <cmath>

#include "sim/gates.h"

namespace qs::sim {

QubitModel QubitModel::perfect() { return QubitModel{}; }

QubitModel QubitModel::realistic(double e1, double e2, double readout,
                                 double t1_us, double t2_us) {
  QubitModel m;
  m.kind = QubitKind::Realistic;
  m.gate_error_1q = e1;
  m.gate_error_2q = e2;
  m.readout_error = readout;
  m.t1_ns = t1_us * 1000.0;
  m.t2_ns = t2_us * 1000.0;
  return m;
}

QubitModel QubitModel::real_device() {
  QubitModel m = realistic(/*e1=*/5e-3, /*e2=*/2e-2, /*readout=*/2e-2,
                           /*t1_us=*/15.0, /*t2_us=*/10.0);
  m.kind = QubitKind::Real;
  return m;
}

DepolarizingModel::DepolarizingModel(double p1, double p2,
                                     double readout_error)
    : p1_(p1), p2_(p2), readout_error_(readout_error) {}

void DepolarizingModel::inject_random_pauli(StateVector& state, QubitIndex q,
                                            Rng& rng) {
  switch (rng.uniform_int(3)) {
    case 0: state.apply_1q(pauli_x(), q); break;
    case 1: state.apply_1q(pauli_y(), q); break;
    default: state.apply_1q(pauli_z(), q); break;
  }
}

void DepolarizingModel::after_gate(StateVector& state,
                                   const std::vector<QubitIndex>& qubits,
                                   NanoSec /*duration*/, Rng& rng) {
  const double p = qubits.size() >= 2 ? p2_ : p1_;
  for (QubitIndex q : qubits)
    if (rng.bernoulli(p)) inject_random_pauli(state, q, rng);
}

int DepolarizingModel::corrupt_readout(int bit, Rng& rng) {
  return rng.bernoulli(readout_error_) ? 1 - bit : bit;
}

void BitFlipModel::after_gate(StateVector& state,
                              const std::vector<QubitIndex>& qubits,
                              NanoSec, Rng& rng) {
  for (QubitIndex q : qubits)
    if (rng.bernoulli(p_)) state.apply_1q(pauli_x(), q);
}

DecoherenceModel::DecoherenceModel(double t1_ns, double t2_ns)
    : t1_ns_(t1_ns), t2_ns_(t2_ns) {}

void DecoherenceModel::decohere(StateVector& state, QubitIndex q,
                                NanoSec duration, Rng& rng) {
  const double t = static_cast<double>(duration);
  // Amplitude damping: trajectory selection between "no decay" (K0) and
  // "decay to |0>" (K1) Kraus branches.
  if (t1_ns_ > 0.0) {
    const double gamma = 1.0 - std::exp(-t / t1_ns_);
    const double p_decay = gamma * state.prob_one(q);
    if (p_decay > 0.0 && rng.uniform() < p_decay) {
      // K1 branch: |1> -> |0>.
      const double root_gamma = std::sqrt(gamma);
      state.apply_1q(Matrix{{0, root_gamma}, {0, 0}}, q);
      state.normalize();
    } else if (gamma > 0.0) {
      // K0 branch: attenuate |1| amplitude, renormalise.
      const double keep = std::sqrt(1.0 - gamma);
      state.apply_1q(Matrix{{1, 0}, {0, keep}}, q);
      state.normalize();
    }
  }
  // Pure dephasing: T2 combines T1 and a pure-dephasing time T_phi via
  // 1/T2 = 1/(2 T1) + 1/T_phi. Inject Z with the phase-flip probability of
  // the T_phi channel.
  if (t2_ns_ > 0.0) {
    double inv_tphi = 1.0 / t2_ns_;
    if (t1_ns_ > 0.0) inv_tphi -= 1.0 / (2.0 * t1_ns_);
    if (inv_tphi > 0.0) {
      const double p_phase = 0.5 * (1.0 - std::exp(-t * inv_tphi));
      if (rng.bernoulli(p_phase)) state.apply_1q(pauli_z(), q);
    }
  }
}

void DecoherenceModel::after_gate(StateVector& state,
                                  const std::vector<QubitIndex>& qubits,
                                  NanoSec duration, Rng& rng) {
  for (QubitIndex q : qubits) decohere(state, q, duration, rng);
}

void DecoherenceModel::idle(StateVector& state,
                            const std::vector<QubitIndex>& qubits,
                            NanoSec duration, Rng& rng) {
  for (QubitIndex q : qubits) decohere(state, q, duration, rng);
}

void CompositeErrorModel::add(std::unique_ptr<ErrorModel> model) {
  models_.push_back(std::move(model));
}

void CompositeErrorModel::after_gate(StateVector& state,
                                     const std::vector<QubitIndex>& qubits,
                                     NanoSec duration, Rng& rng) {
  for (auto& m : models_) m->after_gate(state, qubits, duration, rng);
}

void CompositeErrorModel::idle(StateVector& state,
                               const std::vector<QubitIndex>& qubits,
                               NanoSec duration, Rng& rng) {
  for (auto& m : models_) m->idle(state, qubits, duration, rng);
}

int CompositeErrorModel::corrupt_readout(int bit, Rng& rng) {
  for (auto& m : models_) bit = m->corrupt_readout(bit, rng);
  return bit;
}

std::unique_ptr<ErrorModel> make_error_model(const QubitModel& model) {
  if (model.kind == QubitKind::Perfect)
    return std::make_unique<NoErrorModel>();
  auto composite = std::make_unique<CompositeErrorModel>();
  if (model.gate_error_1q > 0.0 || model.gate_error_2q > 0.0 ||
      model.readout_error > 0.0) {
    composite->add(std::make_unique<DepolarizingModel>(
        model.gate_error_1q, model.gate_error_2q, model.readout_error));
  }
  if (model.t1_ns > 0.0 || model.t2_ns > 0.0) {
    composite->add(
        std::make_unique<DecoherenceModel>(model.t1_ns, model.t2_ns));
  }
  if (composite->size() == 0) return std::make_unique<NoErrorModel>();
  return composite;
}

}  // namespace qs::sim
