// Error models for "realistic qubit" simulation (paper Sections 2.1, 2.7).
// QX-style stochastic trajectory injection on the state vector: after every
// gate the model may inject Pauli errors, amplitude damping or dephasing,
// and readout may flip measured bits. Perfect qubits use NoErrorModel.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/statevector.h"

namespace qs::sim {

/// The paper's three qubit classes (Section 2.1). `Real` is modelled as
/// Realistic with calibrated (worse) parameters: the physical distinction —
/// an actual cryogenic device — is out of simulation scope by definition.
enum class QubitKind { Perfect, Realistic, Real };

/// Parameter set describing qubit quality.
struct QubitModel {
  QubitKind kind = QubitKind::Perfect;
  double gate_error_1q = 0.0;   ///< depolarising prob. per 1-qubit gate
  double gate_error_2q = 0.0;   ///< depolarising prob. per 2-qubit gate (per operand)
  double readout_error = 0.0;   ///< bit-flip prob. on measurement result
  double t1_ns = 0.0;           ///< amplitude-damping time; 0 = disabled
  double t2_ns = 0.0;           ///< dephasing time; 0 = disabled

  /// Ideal qubits: no decoherence, no gate or readout errors.
  static QubitModel perfect();

  /// Typical NISQ-era numbers (paper quotes ~1e-2..1e-3 gate errors and
  /// tens of microseconds coherence for superconducting qubits).
  static QubitModel realistic(double e1 = 1e-3, double e2 = 1e-2,
                              double readout = 5e-3, double t1_us = 30.0,
                              double t2_us = 20.0);

  /// Calibrated "real device" profile (error rates at today's 1e-2 level).
  static QubitModel real_device();
};

/// Interface for per-gate stochastic error injection.
class ErrorModel {
 public:
  virtual ~ErrorModel() = default;

  /// Called after each unitary gate on the qubits it touched.
  virtual void after_gate(StateVector& state,
                          const std::vector<QubitIndex>& qubits,
                          NanoSec duration, Rng& rng) = 0;

  /// Called on idle qubits during explicit waits.
  virtual void idle(StateVector& state, const std::vector<QubitIndex>& qubits,
                    NanoSec duration, Rng& rng) = 0;

  /// Possibly corrupts a readout bit.
  virtual int corrupt_readout(int bit, Rng& rng) = 0;
};

/// Perfect qubits: every hook is a no-op.
class NoErrorModel final : public ErrorModel {
 public:
  void after_gate(StateVector&, const std::vector<QubitIndex>&, NanoSec,
                  Rng&) override {}
  void idle(StateVector&, const std::vector<QubitIndex>&, NanoSec,
            Rng&) override {}
  int corrupt_readout(int bit, Rng&) override { return bit; }
};

/// Uniform depolarising channel: with probability p (p1 for 1-qubit gates,
/// p2 per operand of multi-qubit gates) injects X, Y or Z uniformly. This is
/// the "simplistic" model the paper names explicitly in Section 2.7.
class DepolarizingModel final : public ErrorModel {
 public:
  DepolarizingModel(double p1, double p2, double readout_error = 0.0);

  void after_gate(StateVector& state, const std::vector<QubitIndex>& qubits,
                  NanoSec duration, Rng& rng) override;
  void idle(StateVector&, const std::vector<QubitIndex>&, NanoSec,
            Rng&) override {}
  int corrupt_readout(int bit, Rng& rng) override;

  /// Injects one uniformly-chosen Pauli on qubit q (used by QEC tests too).
  static void inject_random_pauli(StateVector& state, QubitIndex q, Rng& rng);

 private:
  double p1_;
  double p2_;
  double readout_error_;
};

/// Pure bit-flip channel (X with probability p after each gate touch) —
/// the channel the repetition code corrects.
class BitFlipModel final : public ErrorModel {
 public:
  explicit BitFlipModel(double p) : p_(p) {}
  void after_gate(StateVector& state, const std::vector<QubitIndex>& qubits,
                  NanoSec, Rng& rng) override;
  void idle(StateVector&, const std::vector<QubitIndex>&, NanoSec,
            Rng&) override {}
  int corrupt_readout(int bit, Rng&) override { return bit; }

 private:
  double p_;
};

/// T1/T2 decoherence via quantum trajectories: amplitude damping with
/// gamma = 1 - exp(-t/T1) plus pure dephasing from T2. Applied per gate
/// duration and on idles — this is what makes "realistic" circuits decay
/// with wall-clock depth rather than just gate count.
class DecoherenceModel final : public ErrorModel {
 public:
  DecoherenceModel(double t1_ns, double t2_ns);

  void after_gate(StateVector& state, const std::vector<QubitIndex>& qubits,
                  NanoSec duration, Rng& rng) override;
  void idle(StateVector& state, const std::vector<QubitIndex>& qubits,
            NanoSec duration, Rng& rng) override;
  int corrupt_readout(int bit, Rng&) override { return bit; }

 private:
  void decohere(StateVector& state, QubitIndex q, NanoSec duration, Rng& rng);

  double t1_ns_;
  double t2_ns_;
};

/// Sequential composition of error models.
class CompositeErrorModel final : public ErrorModel {
 public:
  void add(std::unique_ptr<ErrorModel> model);
  std::size_t size() const { return models_.size(); }

  void after_gate(StateVector& state, const std::vector<QubitIndex>& qubits,
                  NanoSec duration, Rng& rng) override;
  void idle(StateVector& state, const std::vector<QubitIndex>& qubits,
            NanoSec duration, Rng& rng) override;
  int corrupt_readout(int bit, Rng& rng) override;

 private:
  std::vector<std::unique_ptr<ErrorModel>> models_;
};

/// Builds the error model matching a QubitModel parameter set.
std::unique_ptr<ErrorModel> make_error_model(const QubitModel& model);

}  // namespace qs::sim
