// Fixed-size worker thread pool executing shard tasks. Deliberately dumb:
// determinism lives in the seeding scheme (counter-derived RNG streams per
// shard), not in the scheduler, so the pool is free to run shards in any
// order on any thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qs::service {

class WorkerPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit WorkerPool(std::size_t threads);

  /// Finishes queued tasks, then joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task. Tasks must not throw — they run on worker threads
  /// with no one to catch; the service wraps execution and routes errors
  /// into the job's promise.
  void submit(std::function<void()> task);

  /// Blocks until the task queue is empty and all workers are idle.
  void wait_idle();

  std::size_t thread_count() const { return threads_.size(); }

  /// Tasks currently queued (excludes running ones); for queue-depth gauges.
  std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace qs::service
