// Crash-durable write-ahead job journal.
//
// An admitted job must survive the process that admitted it: the paper's
// runtime layer — not the client — owns execution state, and a serving
// tier restarted mid-burst has to finish what it accepted. The journal is
// a single append-only file (`journal.qsj` inside the service's
// store_dir) of checksummed records tracing each job's lifecycle:
//
//   admitted(job_id, RunRequest) -> dispatched(job_id)
//     -> completed/failed/cancelled(job_id, RunResult)
//
// Appends are write+fsync with group commit (concurrent appenders share
// one fsync), so the admitted record is on the platter before the submit
// call returns its handle. On construction over an existing file the
// journal replays: a record whose length/checksum does not verify marks a
// torn tail — everything before it is kept, the tail is truncated, and
// the service re-enqueues every admitted-but-unterminated job (their
// checkpoints limit re-execution to unfinished shards). Terminal records
// carry the full RunResult so a restarted service can serve a stored
// result for a duplicate idempotency_key without re-running anything.
//
// Compaction (after replay, or when the live file grows past a bound)
// rewrites the file to the admitted records of in-flight jobs plus the
// most recent N terminal pairs, via a durable tmp+rename.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/run_api.h"
#include "store/durable.h"

namespace qs::service {

enum class JournalRecordType : std::uint8_t {
  kAdmitted = 1,
  kDispatched = 2,
  kCompleted = 3,  ///< terminal, status OK
  kFailed = 4,     ///< terminal, non-OK, not cancelled
  kCancelled = 5,  ///< terminal, kCancelled
};

/// Parsed state of a journal file after replay.
struct JournalReplay {
  struct InflightJob {
    std::uint64_t job_id = 0;
    runtime::RunRequest request;
    bool dispatched = false;
  };
  struct FinishedJob {
    std::uint64_t job_id = 0;
    runtime::RunRequest request;
    runtime::RunResult result;
  };

  /// Admitted records without a terminal record, in admission order —
  /// the jobs a restarted service must re-enqueue.
  std::vector<InflightJob> inflight;
  /// Jobs with a terminal record (any status), in completion order.
  std::vector<FinishedJob> finished;

  std::uint64_t max_job_id = 0;   ///< for next_job_id continuity
  std::size_t records = 0;        ///< valid records replayed
  std::size_t truncated_bytes = 0;  ///< torn tail dropped (0 = clean)
};

/// The write-ahead journal. Thread-safe; appends may be called from any
/// worker thread. All I/O failures are reported as `false`, never thrown —
/// a dead disk degrades durability, it does not take the service down.
class JobJournal {
 public:
  struct Options {
    std::string directory;  ///< required: the service's store_dir
    /// fsync each record batch (group commit). Off = page-cache only,
    /// still torn-tail safe against process crashes, not power loss.
    bool sync_writes = true;
    /// Terminal records retained through compaction — the replay window
    /// for duplicate idempotency keys across a restart.
    std::size_t finished_retention = 256;
  };

  explicit JobJournal(Options options);
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Replays the existing file (if any), truncating a torn tail in place.
  /// Call once, before any append.
  JournalReplay replay();

  /// Compacts the file down to `state` (inflight admitted records plus the
  /// newest finished_retention terminal pairs) via durable tmp+rename, and
  /// reopens for appending. Returns false on I/O failure (the old file is
  /// kept — never trade a fat journal for a missing one).
  bool compact(const JournalReplay& state);

  // ---- Durable appends --------------------------------------------------

  bool append_admitted(std::uint64_t job_id,
                       const runtime::RunRequest& request);
  bool append_dispatched(std::uint64_t job_id);
  /// Record type is derived from result.status (OK / cancelled / failed).
  bool append_terminal(std::uint64_t job_id,
                       const runtime::RunResult& result);

  std::string path() const;
  std::uint64_t bytes_appended() const;

  // ---- Record codecs (exposed for tests) --------------------------------

  static std::string encode_request(const runtime::RunRequest& request);
  static bool decode_request(const std::string& payload,
                             runtime::RunRequest* out);
  static std::string encode_result(const runtime::RunResult& result);
  static bool decode_result(const std::string& payload,
                            runtime::RunResult* out);

 private:
  bool append_record(JournalRecordType type, std::uint64_t job_id,
                     const std::string& body);
  /// Serializes one framed record (header + checksum + payload).
  static std::string frame_record(JournalRecordType type,
                                  std::uint64_t job_id,
                                  const std::string& body);

  const Options options_;

  mutable std::mutex write_mutex_;  ///< serialises append+offset
  mutable std::mutex sync_mutex_;   ///< group-commit fsync
  store::AppendFile file_;
  std::uint64_t appended_ = 0;  ///< bytes appended since open
  std::uint64_t synced_ = 0;    ///< bytes known fsync'd
};

}  // namespace qs::service
