// Backend supervision (paper Secs. 2.4-2.7): the runtime drives multiple
// heterogeneous execution substrates — gate accelerators over distinct
// SimOptions (Direct or MicroArch route) and annealing accelerators — and
// none of them is implicitly trusted. A BackendPool registers N named
// backends, tracks per-backend health through a closed/open/half-open
// circuit breaker driven by observed failures, and runs self-test probes
// (a 2-qubit Bell circuit whose histogram must pass a chi-square sanity
// gate) that quarantine a silently-corrupting backend before client work
// reaches it.
//
// The service dispatches shards through acquire(): round-robin over the
// healthy backends of the right kind, skipping open breakers and the
// backend a shard just failed on. Because shard RNG streams are derived
// from (job seed, shard index) only, re-routing a shard to a different
// backend of the same platform cannot change the merged histogram.
//
// Breaker state machine:
//
//           failures >= threshold                 cooldown elapsed
//   Closed ───────────────────────▶ Open ───────────────────────▶ HalfOpen
//     ▲                              ▲                               │
//     │   half_open_successes        │        any failure            │
//     └──────────────────────────────┴───────────────────────────────┘
//
// quarantine() (probe failure, corrupt result) trips straight to Open.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "runtime/accelerator.h"
#include "service/metrics.h"

namespace qs::service {

/// Thrown by shard execution when an injected backend crash fires; the
/// service maps it to a breaker failure plus a failover, never to a
/// client-visible exception.
class BackendError : public std::runtime_error {
 public:
  explicit BackendError(const std::string& what) : std::runtime_error(what) {}
};

enum class BreakerState { Closed, Open, HalfOpen };

const char* to_string(BreakerState state);

struct BreakerOptions {
  /// Consecutive failures that open a closed breaker.
  std::size_t failure_threshold = 3;
  /// How long an open breaker blocks traffic before admitting trial
  /// requests (half-open). Zero means the next allow() is already a trial.
  std::chrono::microseconds open_cooldown{50'000};
  /// Consecutive half-open successes that close the breaker again.
  std::size_t half_open_successes = 2;
};

/// Per-backend health switch. Thread-safe; all transitions happen under an
/// internal mutex so concurrent shard workers observe a consistent state.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = {});

  /// Current state; an Open breaker whose cooldown elapsed reports (and
  /// becomes) HalfOpen.
  BreakerState state() const;

  /// True when a request may be routed here (Closed, or HalfOpen trial).
  bool allow() const;

  void record_success();
  void record_failure();

  /// Trips straight to Open regardless of counters (quarantine).
  void trip();

  std::size_t consecutive_failures() const;

 private:
  using Clock = std::chrono::steady_clock;

  BreakerState state_locked() const;  // applies Open->HalfOpen on cooldown

  BreakerOptions options_;
  mutable std::mutex mutex_;
  mutable BreakerState state_ = BreakerState::Closed;
  std::size_t failures_ = 0;        ///< consecutive, resets on success
  std::size_t trial_successes_ = 0; ///< consecutive successes in HalfOpen
  Clock::time_point opened_at_{};
};

/// One supervised execution substrate. Gate backends wrap a
/// GateAccelerator (any GatePath / SimOptions), anneal backends an
/// AnnealAccelerator; a backend serves exactly one job kind.
struct Backend {
  std::string name;
  std::shared_ptr<runtime::GateAccelerator> gate;
  std::shared_ptr<runtime::AnnealAccelerator> annealer;
  CircuitBreaker breaker;

  std::atomic<std::uint64_t> shards_ok{0};
  std::atomic<std::uint64_t> shards_failed{0};
  std::atomic<std::uint64_t> probes_failed{0};
  /// Test hook: force the next probes to fail (deterministic CI stand-in
  /// for a silently-corrupting device).
  std::atomic<bool> inject_probe_failure{false};

  explicit Backend(BreakerOptions breaker_options)
      : breaker(breaker_options) {}

  runtime::JobKind kind() const {
    return gate ? runtime::JobKind::Gate : runtime::JobKind::Anneal;
  }
};

/// Point-in-time health summary of one backend (status()/operators).
struct BackendStatus {
  std::string name;
  runtime::JobKind kind = runtime::JobKind::Gate;
  BreakerState breaker = BreakerState::Closed;
  std::uint64_t shards_ok = 0;
  std::uint64_t shards_failed = 0;
  std::uint64_t probes_failed = 0;
};

struct BackendPoolOptions {
  BreakerOptions breaker;

  /// Self-test probe: shots for the Bell circuit, fixed seed (probes are
  /// as deterministic as everything else), and the acceptance gates.
  std::size_t probe_shots = 256;
  std::uint64_t probe_seed = 0xB311'57A7E5ULL;
  /// Chi-square of the 00/11 split among non-leaked counts; 16 is far
  /// beyond any plausible p=1/2 fluctuation at 256 shots.
  double probe_chi2_threshold = 16.0;
  /// Fraction of probe mass outside {|00..0>, |11..0>} tolerated before
  /// the probe fails (realistic/noisy platforms leak a little; a
  /// corrupting backend leaks a lot).
  double probe_max_leak_fraction = 0.25;

  /// Period of the background probe loop; zero disables the thread
  /// (run_probes() stays available for deterministic tests).
  std::chrono::microseconds probe_interval{0};
};

/// Registry + health tracker + router for the execution backends.
/// Thread-safe: registration happens before serving, acquire()/record_*()
/// run concurrently from shard workers, probes from the probe thread.
class BackendPool {
 public:
  explicit BackendPool(BackendPoolOptions options = {});
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// Registers a gate backend. All gate backends must share the primary's
  /// platform/compile-option fingerprints — that is the precondition for
  /// shard failover to preserve byte-identical merged histograms — so a
  /// mismatch is refused with kFailedPrecondition.
  Status register_gate(std::string name,
                       std::shared_ptr<runtime::GateAccelerator> gate);

  Status register_anneal(std::string name,
                         std::shared_ptr<runtime::AnnealAccelerator> annealer);

  /// Round-robin over healthy backends of `kind`, skipping open breakers
  /// and `exclude` (the backend a shard just failed on). Returns nullptr
  /// when no healthy backend remains — the caller fails the shard with
  /// kUnavailable rather than waiting.
  std::shared_ptr<Backend> acquire(runtime::JobKind kind,
                                   const std::string& exclude = {});

  std::shared_ptr<Backend> find(const std::string& name) const;
  /// First registered backend of `kind` (compile authority for gate jobs).
  std::shared_ptr<Backend> primary(runtime::JobKind kind) const;

  std::size_t size() const;
  std::size_t healthy_count(runtime::JobKind kind) const;
  /// True when any gate backend routes through the micro-architecture
  /// (the compile cache then pre-assembles eQASM).
  bool any_microarch() const;

  void record_success(Backend& backend);
  void record_failure(Backend& backend);

  /// Trips the breaker immediately (invalid result, failed probe).
  void quarantine(Backend& backend);

  /// Runs one self-test probe on every backend; returns how many failed.
  /// A failed probe quarantines the backend; a passing probe records a
  /// breaker success, which is how a quarantined backend that recovers
  /// works its way through half-open back to closed.
  std::size_t run_probes();

  /// Starts/stops the periodic probe thread (no-op when the configured
  /// interval is zero or the thread is already running).
  void start_probing();
  void stop_probing();

  /// Metrics sink for breaker-state gauges and probe/quarantine counters
  /// (optional; the service attaches its registry).
  void attach_metrics(MetricsRegistry* metrics);

  std::vector<BackendStatus> status() const;
  BreakerState breaker_state(const std::string& name) const;

  const BackendPoolOptions& options() const { return options_; }

 private:
  bool probe_backend(Backend& backend);
  void publish_breaker_gauge(const Backend& backend);
  void probe_loop();
  std::vector<std::shared_ptr<Backend>> snapshot() const;

  BackendPoolOptions options_;
  mutable std::mutex mutex_;                       // guards backends_
  std::vector<std::shared_ptr<Backend>> backends_;
  std::atomic<std::size_t> rotation_{0};
  std::atomic<MetricsRegistry*> metrics_{nullptr};

  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
  std::thread probe_thread_;
};

}  // namespace qs::service
