// Job model of the execution service. The serving front door is the
// runtime::RunRequest / RunResult pair (re-exported here): one request
// type for gate and anneal work, one result type carrying a typed
// qs::Status terminal state. submit() hands back a JobHandle — a future
// plus a cooperative cancel switch.
//
// (The pre-RunRequest JobRequest/JobResult shim — throwing validate(),
// exception-carrying std::future — was deprecated for one release and is
// now removed; see docs/artifact_store.md "Migration notes".)
#pragma once

#include <cstdint>
#include <future>
#include <string>

#include "common/cancellation.h"
#include "common/stats.h"
#include "common/status.h"
#include "runtime/run_api.h"

namespace qs::service {

// The serving API types live at the runtime layer so GateAccelerator can
// speak them too; service code refers to them unqualified.
using runtime::FaultPlan;
using runtime::JobKind;
using runtime::JobStats;
using runtime::RunRequest;
using runtime::RunResult;
using runtime::to_string;

/// Client-side handle for a submitted job: observe completion through
/// get()/wait(), request cooperative cancellation through cancel().
/// Copyable — copies share the same underlying job. Cancellation is
/// best-effort and race-free: workers observe the cancel token between
/// shards, the simulator between shots, and a job cancelled before
/// dispatch never compiles or runs. Whatever wins the race, get() always
/// returns (status kOk if the job finished first, kCancelled otherwise) —
/// it never throws and never hangs.
class JobHandle {
 public:
  JobHandle() = default;

  /// Service-assigned job id (0 for requests rejected before admission).
  std::uint64_t id() const { return id_; }

  /// True when the handle refers to a job (even an already-rejected one).
  bool valid() const { return future_.valid(); }

  /// Requests cooperative cancellation. Idempotent, callable from any
  /// thread, returns immediately; the job resolves to kCancelled at the
  /// next cancellation point unless it already reached a terminal state.
  void cancel() { cancel_.request_cancel(); }

  bool cancel_requested() const { return cancel_.cancel_requested(); }

  /// Blocks until the job reaches a terminal state; never throws.
  RunResult get() const { return future_.get(); }

  void wait() const { future_.wait(); }

  template <typename Rep, typename Period>
  std::future_status wait_for(
      const std::chrono::duration<Rep, Period>& d) const {
    return future_.wait_for(d);
  }

 private:
  friend class QuantumService;

  std::uint64_t id_ = 0;
  CancelSource cancel_;
  std::shared_future<RunResult> future_;
};

/// Number of fixed-size shards a job of `shots` splits into. Shard size is
/// a service constant, never a function of worker count — this is what
/// keeps merged histograms bit-identical across pool sizes.
std::size_t shard_count(std::size_t shots, std::size_t shard_shots);

/// Point-in-time snapshot of a running job's merge state, taken at shard
/// granularity: `partial` holds the histogram of every shard merged so
/// far. QuantumService::progress() serves these to the gateway's
/// StreamProgress op; `seq` increments once per merged shard, so a
/// streamer only ships snapshots when something actually advanced.
struct JobProgress {
  std::uint64_t job_id = 0;
  std::uint64_t seq = 0;          ///< merged-shard counter (monotonic)
  std::size_t shards_total = 0;   ///< 0 until the job is dispatched
  std::size_t shards_done = 0;    ///< merged shards (incl. resumed ones)
  Histogram partial;              ///< merge of the completed shards
};

}  // namespace qs::service
