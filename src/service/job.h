// Job model of the execution service: what a client submits (a cQASM
// program or a QUBO, plus shots/seed/priority) and what it gets back (a
// merged histogram with latency and cache accounting). The service is the
// serving layer the paper's host-accelerator picture (Figures 1/3/8)
// implies but never builds: the host CPU delegates kernels, and something
// must batch, schedule, cache and measure those delegations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "anneal/qubo.h"
#include "common/stats.h"
#include "qasm/program.h"

namespace qs::service {

/// What a job runs on: the gate-model stack or the annealing stack.
enum class JobKind { Gate, Anneal };

const char* to_string(JobKind kind);

/// A unit of work submitted to the QuantumService. Exactly one of
/// `program` (gate model) or `qubo` (annealing model) must be set.
struct JobRequest {
  std::optional<qasm::Program> program;  ///< gate-model kernel (cQASM)
  std::optional<anneal::Qubo> qubo;      ///< annealing problem

  /// Gate model: measurement trajectories. Anneal model: independent reads.
  std::size_t shots = 1024;

  /// Base seed; shard `i` derives its stream via derive_stream_seed(seed,i),
  /// making the merged result independent of worker count.
  std::uint64_t seed = 1;

  /// Higher priority dispatches first; FIFO within equal priority.
  int priority = 0;

  /// Gate model: intra-shot simulator threads for this job's shards
  /// (0 = service default). The service clamps the effective budget
  /// against worker-count oversubscription; the histogram is bit-identical
  /// whatever value wins — this knob tunes throughput, never output.
  std::size_t sim_threads = 0;

  /// Optional client tag echoed into the result (tracing / metrics label).
  std::string tag;

  JobKind kind() const { return program ? JobKind::Gate : JobKind::Anneal; }

  /// Throws std::invalid_argument unless exactly one payload is set and
  /// shots >= 1.
  void validate() const;

  // Convenience constructors.
  static JobRequest gate(qasm::Program program, std::size_t shots,
                         std::uint64_t seed = 1, int priority = 0);
  static JobRequest anneal(anneal::Qubo qubo, std::size_t reads,
                           std::uint64_t seed = 1, int priority = 0);
};

/// Result of one job, fulfilled through the future submit() returns.
struct JobResult {
  std::uint64_t job_id = 0;
  JobKind kind = JobKind::Gate;
  std::string tag;

  /// Gate model: histogram of full-register bitstrings (merged across
  /// shards). Anneal model: histogram of solution bitstrings.
  Histogram histogram;

  /// Annealing only: best (lowest-energy) solution over all reads. Ties
  /// resolve to the lowest read index, keeping the merge deterministic.
  std::vector<int> best_solution;
  double best_energy = 0.0;

  bool cache_hit = false;     ///< compiled program came from the cache
  std::size_t shards = 0;     ///< number of shard tasks the job split into
  std::uint64_t dispatch_seq = 0;  ///< dispatch order stamp (1 = first)

  double wait_us = 0.0;  ///< submit -> dispatch (queue wait)
  double run_us = 0.0;   ///< dispatch -> last shard merged
};

/// Number of fixed-size shards a job of `shots` splits into. Shard size is
/// a service constant, never a function of worker count — this is what
/// keeps merged histograms bit-identical across pool sizes.
std::size_t shard_count(std::size_t shots, std::size_t shard_shots);

}  // namespace qs::service
