// Final-state distributions as a typed view over the ArtifactStore, for
// the sampling fast path. A repeated RunRequest for the same circuit —
// the common case the compile cache's ~92% hit rate demonstrates — skips
// even the single evolution and goes straight to binary-search sampling;
// with a disk-backed store it skips it across process restarts too.
// Shards of one job share the entry by shared_ptr. Keyed by the
// compiled-program cache key (cQASM text + platform + compile options)
// combined with a fingerprint of the qubit model and the kernel flavour,
// so a config change can never serve a stale distribution. Seed and
// thread count are deliberately NOT part of the key: the distribution of
// a shot-deterministic circuit is seed-independent, and the kernel
// layer's bit-identity contract makes it thread-count-independent.
//
// Entries are O(2^n) doubles, persisted as raw IEEE-754 bit patterns
// (blob.h): a store-loaded distribution is bit-identical to the
// freshly-evolved one, so the sampled histogram cannot depend on whether
// the bytes came from memory, disk, or an evolution.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/error_model.h"
#include "sim/trajectory_analysis.h"
#include "store/artifact_store.h"

namespace qs::service {

/// Key for a final distribution: the compiled-program cache key combined
/// with the qubit-model parameters and the engine-config tier that
/// produced the amplitudes — the kernel flavour, the amplitude precision
/// and whether gate-sequence fusion ran. Each changes the evolved
/// doubles, so each is part of the key; SIMD-vs-scalar and thread count
/// are NOT (the kernel layer keeps them bit-identical).
std::uint64_t final_state_key(std::uint64_t compiled_key,
                              const sim::QubitModel& model,
                              bool fused_kernels,
                              Precision precision = Precision::kF64,
                              bool fused_sequences = false);

/// Typed view over the ArtifactStore for final-state distributions.
/// Thread-safe (the store is).
class FinalStateCache {
 public:
  /// Standalone view over a private memory-only store (unit tests,
  /// embedded use).
  explicit FinalStateCache(std::size_t capacity_bytes = 128ull << 20);

  /// View over a shared store.
  explicit FinalStateCache(std::shared_ptr<store::ArtifactStore> store);

  /// Memory tier, then verified disk load; nullptr on full miss.
  std::shared_ptr<const sim::FinalDistribution> lookup(
      std::uint64_t key, store::Outcome* outcome = nullptr);

  /// Inserts into the memory tier (evicting least-recently-used entries
  /// until the byte budget holds) and persists to the disk tier; returns
  /// how many memory entries were evicted. An entry larger than the
  /// whole memory budget is not held in memory at all (callers keep
  /// their shared_ptr — the job still samples; with a disk tier the
  /// entry is still persisted there).
  std::size_t insert(std::uint64_t key,
                     std::shared_ptr<const sim::FinalDistribution> dist,
                     store::Outcome* outcome = nullptr);

  std::size_t size() const;
  std::size_t bytes() const;  ///< memory tier, all kinds (shared budget)
  std::size_t capacity_bytes() const {
    return store_->options().memory_budget_bytes;
  }

  std::uint64_t hits() const;    ///< memory + disk hits
  std::uint64_t misses() const;  ///< full misses (deepest tier missed)
  std::uint64_t evictions() const;
  /// Entries that skipped the memory tier because a single distribution
  /// exceeded the whole byte budget (exported as
  /// qs_store_oversized_total{tier="memory"} and the legacy
  /// qs_final_state_cache_oversized_total).
  std::uint64_t oversized() const;

  void clear();  ///< drops the store's memory tier (all kinds)

  const store::ArtifactStore& store() const { return *store_; }

 private:
  store::StoreStats stats() const {
    return store_->stats(store::ArtifactKind::kFinalState);
  }

  std::shared_ptr<store::ArtifactStore> store_;
  store::Codec<sim::FinalDistribution> codec_;
};

}  // namespace qs::service
