// Memory-bounded LRU cache of final-state distributions for the sampling
// fast path. A repeated RunRequest for the same circuit — the common case
// the compile cache's ~92% hit rate demonstrates — skips even the single
// evolution and goes straight to binary-search sampling; shards of one
// job share the entry by shared_ptr. Keyed by the compiled-program cache
// key (cQASM text + platform + compile options) combined with a
// fingerprint of the qubit model and the kernel flavour, so a config
// change can never serve a stale distribution. Seed and thread count are
// deliberately NOT part of the key: the distribution of a
// shot-deterministic circuit is seed-independent, and the kernel layer's
// bit-identity contract makes it thread-count-independent.
//
// Unlike the compile cache, entries here are O(2^n) doubles, so the
// budget is bytes, not entry count.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/error_model.h"
#include "sim/trajectory_analysis.h"

namespace qs::service {

/// Key for a final distribution: the compiled-program cache key combined
/// with the qubit-model parameters and the kernel flavour that produced
/// the amplitudes.
std::uint64_t final_state_key(std::uint64_t compiled_key,
                              const sim::QubitModel& model,
                              bool fused_kernels);

/// Thread-safe, byte-budgeted LRU cache keyed by final_state_key.
class FinalStateCache {
 public:
  explicit FinalStateCache(std::size_t capacity_bytes = 128ull << 20);

  /// Returns the entry and refreshes its recency, or nullptr on miss.
  std::shared_ptr<const sim::FinalDistribution> lookup(std::uint64_t key);

  /// Inserts (or replaces) an entry, evicting least-recently-used entries
  /// until the byte budget holds; returns how many were evicted. An entry
  /// larger than the whole budget is not cached at all (callers keep
  /// their shared_ptr — the job still samples, later jobs re-evolve).
  std::size_t insert(std::uint64_t key,
                     std::shared_ptr<const sim::FinalDistribution> dist);

  std::size_t size() const;
  std::size_t bytes() const;
  std::size_t capacity_bytes() const { return capacity_bytes_; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  /// Entries rejected because a single distribution exceeded the whole
  /// byte budget (exported as qs_final_state_cache_oversized_total).
  std::uint64_t oversized() const;

  void clear();

 private:
  struct Slot {
    std::uint64_t key;
    std::shared_ptr<const sim::FinalDistribution> dist;
    std::size_t bytes;
  };

  void evict_lru_locked();

  const std::size_t capacity_bytes_;
  mutable std::mutex mutex_;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Slot>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t oversized_ = 0;
};

}  // namespace qs::service
