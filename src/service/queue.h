// Bounded, priority-ordered MPMC queues for job admission.
//
// BoundedPriorityQueue: higher priority pops first; entries of equal
// priority pop in submission (FIFO) order via a monotonic sequence number —
// a plain std::priority_queue would not give the FIFO-within-priority
// guarantee the service promises.
//
// WeightedFairQueue: the multi-tenant replacement. Entries carry a tenant
// name; each tenant keeps its own priority-FIFO sub-queue, and pop()
// start-time fair queues across tenants so sustained throughput shares are
// proportional to configured weights — a flood from one tenant can no
// longer starve the others. With a single tenant it degenerates to exactly
// the BoundedPriorityQueue order.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>

namespace qs::service {

/// Thread-safe bounded priority queue.
///
/// push() blocks while the queue is full (backpressure towards clients);
/// try_push() rejects instead. pop() blocks while empty; both unblock when
/// close() is called, after which pop() drains remaining entries and then
/// returns nullopt, and pushes are refused.
template <typename T>
class BoundedPriorityQueue {
 public:
  explicit BoundedPriorityQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedPriorityQueue(const BoundedPriorityQueue&) = delete;
  BoundedPriorityQueue& operator=(const BoundedPriorityQueue&) = delete;

  /// Blocks until space is available (or the queue closes). Returns false
  /// if the queue was closed before the entry could be admitted.
  bool push(T value, int priority) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || entries_.size() < capacity_; });
    if (closed_) return false;
    admit(std::move(value), priority);
    return true;
  }

  /// Non-blocking admission; false when full or closed.
  bool try_push(T value, int priority) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || entries_.size() >= capacity_) return false;
    admit(std::move(value), priority);
    return true;
  }

  /// Blocks until an entry is available; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !entries_.empty(); });
    if (entries_.empty()) return std::nullopt;
    auto first = entries_.begin();
    T value = std::move(first->value);
    entries_.erase(first);
    not_full_.notify_one();
    return value;
  }

  /// Stops admissions and wakes all waiters. Entries already queued can
  /// still be popped (drain semantics).
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;
    mutable T value;  // moved out on pop; the key part stays untouched

    // Ordering key: highest priority first, then earliest sequence.
    bool operator<(const Entry& other) const {
      if (priority != other.priority) return priority > other.priority;
      return seq < other.seq;
    }
  };

  void admit(T value, int priority) {
    entries_.insert(Entry{priority, next_seq_++, std::move(value)});
    not_empty_.notify_one();
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::set<Entry> entries_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

/// Thread-safe bounded queue, weighted-fair across tenants and
/// priority-FIFO within a tenant.
///
/// Scheduling is start-time fair queuing (SFQ) with unit job cost. A
/// tenant's head-of-line job carries a virtual start tag S: stamped at the
/// current vclock when the tenant transitions idle -> backlogged, and set
/// to the previous job's finish F = S + 1/weight(t) while the backlog
/// persists. pop() serves the backlogged tenant with the smallest F (ties
/// break on tenant name, keeping the schedule deterministic) and advances
/// vclock to the served tag. Stamping at backlog entry — not at pop — is
/// what makes shares converge to weight proportions: heavier tenants
/// accrue finish tags in smaller steps, so they win proportionally more
/// of the tag race. A tenant's tags lapse when its sub-queue empties, so
/// returning tenants re-enter at the live vclock — no banked credit, no
/// starvation.
///
/// The capacity bound is global (total entries across tenants): per-tenant
/// backlog limits are the admission layer's job, not the queue's.
template <typename T>
class WeightedFairQueue {
 public:
  explicit WeightedFairQueue(std::size_t capacity, double default_weight = 1.0)
      : capacity_(capacity), default_weight_(default_weight) {}

  WeightedFairQueue(const WeightedFairQueue&) = delete;
  WeightedFairQueue& operator=(const WeightedFairQueue&) = delete;

  /// Sets the scheduling weight for `tenant` (must be > 0; values <= 0 are
  /// ignored rather than corrupting the virtual clock). Takes effect from
  /// the tenant's next pop.
  void set_weight(const std::string& tenant, double weight) {
    if (!(weight > 0.0)) return;
    std::lock_guard<std::mutex> lock(mutex_);
    weights_[tenant] = weight;
  }

  double weight(const std::string& tenant) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = weights_.find(tenant);
    return it != weights_.end() ? it->second : default_weight_;
  }

  /// Blocks until space is available (or the queue closes). Returns false
  /// if the queue was closed before the entry could be admitted.
  bool push(T value, int priority, const std::string& tenant) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || size_ < capacity_; });
    if (closed_) return false;
    admit(std::move(value), priority, tenant);
    return true;
  }

  /// Non-blocking admission; false when full or closed.
  bool try_push(T value, int priority, const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || size_ >= capacity_) return false;
    admit(std::move(value), priority, tenant);
    return true;
  }

  /// Blocks until an entry is available; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;

    // Pick the backlogged tenant with the smallest virtual finish tag.
    // Iteration is in tenant-name order, so `<` tie-breaks by name.
    auto best = tenants_.end();
    double best_finish = 0.0;
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
      const double finish =
          it->second.start + 1.0 / lookup_weight(it->first);
      if (best == tenants_.end() || finish < best_finish) {
        best = it;
        best_finish = finish;
      }
    }

    auto first = best->second.entries.begin();
    T value = std::move(first->value);
    best->second.entries.erase(first);
    --size_;
    vclock_ = std::max(vclock_, best->second.start);
    if (best->second.entries.empty())
      tenants_.erase(best);  // idle tenants re-enter at the live vclock
    else
      best->second.start = best_finish;  // next job starts where this ended
    not_full_.notify_one();
    return value;
  }

  /// Stops admissions and wakes all waiters. Entries already queued can
  /// still be popped (drain semantics).
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  /// Entries queued for one tenant (its current backlog).
  std::size_t tenant_depth(const std::string& tenant) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(tenant);
    return it != tenants_.end() ? it->second.entries.size() : 0;
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;
    mutable T value;  // moved out on pop; the key part stays untouched

    bool operator<(const Entry& other) const {
      if (priority != other.priority) return priority > other.priority;
      return seq < other.seq;
    }
  };

  struct TenantQueue {
    std::set<Entry> entries;  // priority-FIFO, same ordering key as above
    double start = 0.0;       ///< virtual start tag of the head-of-line job
  };

  double lookup_weight(const std::string& tenant) const {
    auto it = weights_.find(tenant);
    return it != weights_.end() ? it->second : default_weight_;
  }

  void admit(T value, int priority, const std::string& tenant) {
    auto [it, newly_backlogged] = tenants_.try_emplace(tenant);
    if (newly_backlogged) it->second.start = vclock_;
    it->second.entries.insert(Entry{priority, next_seq_++, std::move(value)});
    ++size_;
    not_empty_.notify_one();
  }

  const std::size_t capacity_;
  const double default_weight_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::map<std::string, TenantQueue> tenants_;
  std::map<std::string, double> weights_;
  std::size_t size_ = 0;
  double vclock_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace qs::service
