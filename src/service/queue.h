// Bounded, priority-ordered MPMC queue for job admission. Higher priority
// pops first; entries of equal priority pop in submission (FIFO) order via
// a monotonic sequence number — a plain std::priority_queue would not give
// the FIFO-within-priority guarantee the service promises.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <utility>

namespace qs::service {

/// Thread-safe bounded priority queue.
///
/// push() blocks while the queue is full (backpressure towards clients);
/// try_push() rejects instead. pop() blocks while empty; both unblock when
/// close() is called, after which pop() drains remaining entries and then
/// returns nullopt, and pushes are refused.
template <typename T>
class BoundedPriorityQueue {
 public:
  explicit BoundedPriorityQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedPriorityQueue(const BoundedPriorityQueue&) = delete;
  BoundedPriorityQueue& operator=(const BoundedPriorityQueue&) = delete;

  /// Blocks until space is available (or the queue closes). Returns false
  /// if the queue was closed before the entry could be admitted.
  bool push(T value, int priority) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || entries_.size() < capacity_; });
    if (closed_) return false;
    admit(std::move(value), priority);
    return true;
  }

  /// Non-blocking admission; false when full or closed.
  bool try_push(T value, int priority) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || entries_.size() >= capacity_) return false;
    admit(std::move(value), priority);
    return true;
  }

  /// Blocks until an entry is available; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !entries_.empty(); });
    if (entries_.empty()) return std::nullopt;
    auto first = entries_.begin();
    T value = std::move(first->value);
    entries_.erase(first);
    not_full_.notify_one();
    return value;
  }

  /// Stops admissions and wakes all waiters. Entries already queued can
  /// still be popped (drain semantics).
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;
    mutable T value;  // moved out on pop; the key part stays untouched

    // Ordering key: highest priority first, then earliest sequence.
    bool operator<(const Entry& other) const {
      if (priority != other.priority) return priority > other.priority;
      return seq < other.seq;
    }
  };

  void admit(T value, int priority) {
    entries_.insert(Entry{priority, next_seq_++, std::move(value)});
    not_empty_.notify_one();
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::set<Entry> entries_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace qs::service
