// Service observability: counters, gauges, and bucketed latency histograms
// with a Prometheus-style text snapshot. The benches and tests read the
// snapshot (queue depth, wait vs. run latency, cache hit rate, shots/sec)
// instead of poking at service internals.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qs::service {

/// Monotonic event counter (lock-free).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (queue depth, workers busy).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Cumulative histogram over fixed upper-bound buckets plus sum/count —
/// enough for mean and quantile estimates of wait/run latencies.
class LatencyHistogram {
 public:
  /// Bounds must be strictly increasing; an implicit +inf bucket is added.
  explicit LatencyHistogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::uint64_t count() const;
  double sum() const;
  double mean() const;
  /// Linear-interpolated quantile estimate from bucket counts, q in [0,1].
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;

  /// Default bounds for microsecond latencies: 1us .. ~100s, log-spaced.
  static std::vector<double> default_us_bounds();

  /// Default bounds for second-denominated latencies (1us .. 100s,
  /// log-spaced) — the `qs_queue_wait_seconds` exposition unit.
  static std::vector<double> default_seconds_bounds();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> buckets_;  // one per bound, plus +inf at back
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Named metric registry. Metric objects are created on first access and
/// have stable addresses for the registry's lifetime, so hot paths can
/// grab a reference once and update lock-free.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(
      const std::string& name,
      std::vector<double> upper_bounds = LatencyHistogram::default_us_bounds());

  /// Text exposition: one `name value` line per counter/gauge, and
  /// `name_count` / `name_sum` / `name_p50` / `name_p99` per histogram,
  /// sorted by name (stable for golden-file tests).
  std::string render() const;

  /// Bucket bounds for ratio-of-budget histograms (e.g. queue wait as a
  /// fraction of the job's deadline): 0.01 .. 5.0, log-ish spaced, with
  /// the 1.0 boundary separating "made it" from "expired in queue".
  static std::vector<double> fraction_bounds();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace qs::service
