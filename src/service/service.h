// QuantumService: the serving layer over the accelerator stack. Clients
// submit jobs (cQASM program or QUBO + shots + seed + priority) into a
// bounded priority queue and get a future back; a dispatcher thread pulls
// jobs in priority order, resolves the compiled program through an LRU
// cache, shards the job's shots into fixed-size shard tasks with
// counter-derived RNG streams, and a worker pool executes the shards and
// merges per-shard histograms. Because shard boundaries and shard seeds
// depend only on (job seed, shard index) — never on the pool size — the
// merged histogram is bit-identical for any worker count.
//
// Job lifecycle:  submitted -> queued -> dispatched (compile/cache)
//                 -> sharded -> running -> merged -> future fulfilled
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <thread>

#include "runtime/accelerator.h"
#include "service/cache.h"
#include "service/job.h"
#include "service/metrics.h"
#include "service/queue.h"
#include "service/worker_pool.h"

namespace qs::service {

struct ServiceOptions {
  std::size_t workers = 4;          ///< shard-executing worker threads
  std::size_t queue_capacity = 64;  ///< max jobs awaiting dispatch
  /// Shots per shard. A service constant independent of worker count:
  /// changing it changes shard seeds and thus the (still valid) sampled
  /// histogram, so treat it as part of the reproducibility contract.
  std::size_t shard_shots = 256;
  bool cache_enabled = true;        ///< compiled-program cache on/off
  std::size_t cache_capacity = 128;
  bool start_paused = false;        ///< accept jobs but hold dispatch
  /// Default intra-shot simulator threads per shard when the job does not
  /// set its own budget (0 = scalar kernels / QS_SIM_THREADS).
  std::size_t sim_threads = 0;
  /// Clamp the per-shard thread budget to hardware_concurrency / workers so
  /// shard workers and kernel threads never oversubscribe the machine.
  /// Disable to force the requested budget (thread-scaling benchmarks).
  bool clamp_sim_threads = true;
};

/// The execution service. One instance serves one gate platform (and
/// optionally one annealing device) from a shared worker pool.
class QuantumService {
 public:
  explicit QuantumService(runtime::GateAccelerator gate,
                          ServiceOptions options = {});
  QuantumService(runtime::GateAccelerator gate,
                 runtime::AnnealAccelerator annealer,
                 ServiceOptions options = {});

  /// Drains in-flight work and joins all threads.
  ~QuantumService();

  QuantumService(const QuantumService&) = delete;
  QuantumService& operator=(const QuantumService&) = delete;

  /// Validates and enqueues a job; blocks while the queue is full
  /// (backpressure). Throws std::invalid_argument on a malformed request
  /// and std::runtime_error after shutdown().
  std::future<JobResult> submit(JobRequest request);

  /// Non-blocking admission: nullopt when the queue is full (the job is
  /// counted as rejected) or the service is shut down.
  std::optional<std::future<JobResult>> try_submit(JobRequest request);

  /// Holds/resumes dispatch while still accepting submissions — lets a
  /// client batch a burst and lets tests freeze the queue to observe
  /// ordering.
  void pause();
  void resume();

  /// Blocks until every job submitted so far has completed.
  void drain();

  /// Stops admissions, finishes all accepted jobs, joins threads.
  /// Idempotent; also invoked by the destructor.
  void shutdown();

  MetricsRegistry& metrics() { return metrics_; }
  const CompiledProgramCache& cache() const { return cache_; }
  const ServiceOptions& options() const { return options_; }
  const runtime::GateAccelerator& gate() const { return gate_; }

  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t worker_count() const { return pool_.thread_count(); }

 private:
  struct JobState;

  void dispatcher_loop();
  void dispatch(const std::shared_ptr<JobState>& job);
  std::shared_ptr<const CompiledEntry> resolve_compiled(
      const qasm::Program& program, bool* cache_hit);
  std::size_t effective_sim_threads(std::size_t job_threads) const;
  void run_gate_shard(const std::shared_ptr<JobState>& job,
                      std::size_t shard_index);
  void run_anneal_shard(const std::shared_ptr<JobState>& job,
                        std::size_t shard_index);
  void finish_shard(const std::shared_ptr<JobState>& job);
  void fail_job(const std::shared_ptr<JobState>& job, std::exception_ptr err);
  void job_done();

  ServiceOptions options_;
  runtime::GateAccelerator gate_;
  std::optional<runtime::AnnealAccelerator> annealer_;

  CompiledProgramCache cache_;
  MetricsRegistry metrics_;
  BoundedPriorityQueue<std::shared_ptr<JobState>> queue_;
  WorkerPool pool_;

  std::mutex control_mutex_;
  std::condition_variable control_cv_;
  bool paused_ = false;
  bool closing_ = false;
  bool shut_down_ = false;
  std::size_t inflight_ = 0;  ///< submitted but not yet completed jobs

  std::uint64_t next_job_id_ = 1;     // under control_mutex_
  std::uint64_t dispatch_counter_ = 0;  // dispatcher thread only

  std::thread dispatcher_;  // last member: starts after everything is built
};

}  // namespace qs::service
