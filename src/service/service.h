// QuantumService: the serving layer over the accelerator stack. Clients
// submit RunRequests (cQASM program or QUBO + shots + seed + priority +
// optional deadline) into a bounded priority queue and get a JobHandle
// back; a dispatcher thread pulls jobs in priority order, resolves the
// compiled program through the content-addressed artifact store (in-memory
// LRU tier, optionally persisted on disk), shards the job's shots into
// fixed-size shard tasks with counter-derived RNG streams, and a worker
// pool executes the shards and merges per-shard histograms. Because shard
// boundaries and shard seeds depend only on (job seed, shard index) —
// never on the pool size or on how often a shard was retried — the merged
// histogram is bit-identical for any worker count and any fault history.
//
// Robustness layer: jobs carry deadlines (rejected on dequeue if already
// expired, stopped between shards/shots while running), are cooperatively
// cancellable through JobHandle::cancel(), and transiently-failed shards
// retry with deterministic exponential backoff. All terminal states —
// done / failed / cancelled / timed-out / rejected — arrive as a typed
// qs::Status inside RunResult; the new API never throws across the
// service boundary and never hangs the dispatcher.
//
// Job lifecycle:  submitted -> queued -> dispatched (compile/cache)
//                 -> sharded -> running -> { merged | cancelled |
//                    timed-out | failed } -> JobHandle fulfilled
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/backoff.h"
#include "common/status.h"
#include "runtime/accelerator.h"
#include "service/backend_pool.h"
#include "service/cache.h"
#include "service/checkpoint.h"
#include "service/final_state_cache.h"
#include "service/job.h"
#include "service/journal.h"
#include "service/metrics.h"
#include "service/queue.h"
#include "service/worker_pool.h"
#include "store/artifact_store.h"

namespace qs::service {

struct ServiceOptions {
  std::size_t workers = 4;          ///< shard-executing worker threads
  std::size_t queue_capacity = 64;  ///< max jobs awaiting dispatch
  /// Weighted-fair scheduling weights by tenant name; tenants not listed
  /// here run at `default_tenant_weight`. Sustained dispatch shares across
  /// backlogged tenants are proportional to these weights (priority stays
  /// FIFO-ordered *within* a tenant); weights can also be adjusted live
  /// via set_tenant_weight().
  std::map<std::string, double> tenant_weights;
  double default_tenant_weight = 1.0;
  /// Shots per shard. A service constant independent of worker count:
  /// changing it changes shard seeds and thus the (still valid) sampled
  /// histogram, so treat it as part of the reproducibility contract.
  std::size_t shard_shots = 256;
  bool cache_enabled = true;        ///< compiled-program memoisation on/off
  bool start_paused = false;        ///< accept jobs but hold dispatch
  /// Default intra-shot simulator threads per shard when the job does not
  /// set its own budget (0 = scalar kernels / QS_SIM_THREADS).
  std::size_t sim_threads = 0;
  /// Clamp the per-shard thread budget to hardware_concurrency / workers so
  /// shard workers and kernel threads never oversubscribe the machine.
  /// Disable to force the requested budget (thread-scaling benchmarks).
  bool clamp_sim_threads = true;
  /// Retry budget per shard for transient failures (a shard runs at most
  /// 1 + max_shard_retries times). Retries re-derive the same RNG stream,
  /// so a job that succeeds after retries produces the histogram of a job
  /// that never failed.
  std::size_t max_shard_retries = 2;
  /// Deterministic exponential backoff between shard retry attempts.
  BackoffPolicy retry_backoff{std::chrono::microseconds(200), 2.0,
                              std::chrono::microseconds(5000)};
  /// Failover budget per shard: how many times a shard may be re-routed to
  /// another backend (backend crash, corrupt result, watchdog timeout)
  /// before it fails terminally with kUnavailable. Distinct from
  /// max_shard_retries, which covers transient same-route failures.
  std::size_t max_shard_failovers = 3;
  /// Per-shard watchdog: an attempt exceeding this wall-clock budget is
  /// cancelled (at the next shot boundary) and re-routed to another
  /// backend. Zero disables the watchdog; the job deadline still applies.
  std::chrono::microseconds shard_time_budget{0};
  /// Crash-safe checkpoint/resume (null = disabled). Jobs submitted with a
  /// non-empty checkpoint_key snapshot their merged partial histogram and
  /// shard cursor here after every completed shard, and a resubmission
  /// with the same key re-runs only the unfinished shards.
  std::shared_ptr<CheckpointStore> checkpoint_store;
  /// Terminal-measurement sampling fast path: shot-deterministic gate jobs
  /// (perfect model, terminal measures, no conditionals) evolve once and
  /// sample all shots from the final distribution. Off forces the
  /// per-shot trajectory path for every job (A/B benchmarking).
  bool sampling_enabled = true;
  /// Final-state memoisation, which lets repeated submissions of the same
  /// circuit skip even the single evolution. Off = each sampled job still
  /// evolves exactly once. (Replaces `final_state_cache_bytes = 0`; the
  /// byte budget now lives in `store_memory_bytes`.)
  bool final_state_cache_enabled = true;

  // ---- Artifact store (the memo substrate behind both caches) -----------
  /// Byte budget of the store's in-memory LRU tier, shared by compiled
  /// programs and final-state distributions — one budget instead of the
  /// former per-cache knobs (`cache_capacity`, `final_state_cache_bytes`).
  std::size_t store_memory_bytes = 256ull << 20;
  /// On-disk store tier. Non-empty = compiled programs and final-state
  /// distributions are persisted there (tmp+rename atomic, verified on
  /// load), so a restarted service — or a sibling worker process pointed
  /// at the same directory — revives artifacts instead of recomputing,
  /// and checkpoint/resume works across restarts without any separate
  /// configuration (a StoreCheckpointStore is auto-wired when
  /// `checkpoint_store` is null). Empty = memory-only (process-local).
  std::string store_dir;
  /// Use this store instance instead of building one from the two knobs
  /// above — how several QuantumServices in one process (or a service and
  /// its gateway-facing twin) share one artifact space.
  std::shared_ptr<store::ArtifactStore> artifact_store;

  // ---- Durability & exactly-once ----------------------------------------
  /// Crash-durable job journal (effective only with a non-empty
  /// store_dir). Every admitted job is WAL-logged before its handle is
  /// returned; a service constructed over the same store_dir re-enqueues
  /// admitted-but-unfinished jobs (resuming from their checkpoints) and
  /// serves stored results for finished idempotency keys.
  bool journal_enabled = true;
  /// fsync store + journal writes (power-loss durability, not just
  /// crash-atomicity). Forwarded to StoreOptions::sync_writes when the
  /// service builds its own store. Tests and benches that churn many
  /// artifacts can turn it off.
  bool sync_writes = true;
  /// Terminal results retained for duplicate idempotency keys — the
  /// exactly-once replay window, both in memory and through journal
  /// compaction.
  std::size_t journal_retention = 256;

  /// kInvalidArgument on configurations that would misbehave silently
  /// (zero workers, zero queue capacity, zero shard size, non-positive
  /// scheduling weights). The QuantumService constructor enforces this —
  /// throwing std::invalid_argument with the same message, since a bad
  /// config is a wiring bug, not a serving-path error — and callers that
  /// prefer a typed error can pre-check here.
  Status validate() const;
};

/// The execution service. One instance serves one gate platform — through
/// one backend or a supervised pool of equivalent backends — and
/// optionally annealing devices, from a shared worker pool.
class QuantumService {
 public:
  /// Supervised-pool constructor: shards dispatch through `backends`
  /// (health-checked, circuit-broken, failover-routed). The pool must hold
  /// at least one gate backend; all its gate backends share one platform
  /// fingerprint (BackendPool::register_gate enforces this), which is what
  /// makes failover histogram-preserving. Throws std::invalid_argument on
  /// a null or gate-less pool — a wiring bug, not a serving-path error.
  explicit QuantumService(std::shared_ptr<BackendPool> backends,
                          ServiceOptions options = {});

  /// Single-backend convenience constructors: wrap the accelerator(s) in a
  /// one-entry ("gate0" / "anneal0") pool.
  explicit QuantumService(runtime::GateAccelerator gate,
                          ServiceOptions options = {});
  QuantumService(runtime::GateAccelerator gate,
                 runtime::AnnealAccelerator annealer,
                 ServiceOptions options = {});

  /// Drains in-flight work and joins all threads.
  ~QuantumService();

  QuantumService(const QuantumService&) = delete;
  QuantumService& operator=(const QuantumService&) = delete;

  /// The serving front door. Validates and enqueues the request; blocks
  /// while the queue is full (backpressure). Never throws: a malformed
  /// request resolves the handle immediately with kInvalidArgument, an
  /// anneal request without an annealer with kFailedPrecondition, and
  /// submission after shutdown() with kUnavailable. All later outcomes —
  /// done, failed, cancelled, timed-out — arrive through the handle as a
  /// typed Status inside RunResult.
  JobHandle submit(RunRequest request);

  /// Non-blocking admission: a full queue resolves the handle immediately
  /// with kResourceExhausted (queue depth in the message) and counts the
  /// job as rejected, instead of applying backpressure.
  JobHandle try_submit(RunRequest request);

  /// Holds/resumes dispatch while still accepting submissions — lets a
  /// client batch a burst and lets tests freeze the queue to observe
  /// ordering.
  void pause();
  void resume();

  /// Blocks until every job submitted so far has completed.
  void drain();

  /// Shard-granular progress snapshot of a live job: shards merged so far
  /// plus the partial histogram. nullopt once the job reached a terminal
  /// state (read the final result from the JobHandle) or for unknown ids.
  /// Safe to call from any thread at any rate; the gateway's
  /// StreamProgress op polls this and forwards snapshots whenever `seq`
  /// advances — i.e. at shard boundaries.
  std::optional<JobProgress> progress(std::uint64_t job_id) const;

  /// Adjusts a tenant's weighted-fair scheduling weight at runtime
  /// (weight must be > 0; non-positive values are ignored). Takes effect
  /// from the next dequeue.
  void set_tenant_weight(const std::string& tenant, double weight);

  /// Stops admissions, finishes all accepted jobs, joins threads.
  /// Idempotent; also invoked by the destructor.
  void shutdown();

  MetricsRegistry& metrics() { return metrics_; }
  const CompiledProgramCache& cache() const { return cache_; }
  const FinalStateCache& final_state_cache() const { return final_cache_; }
  /// The artifact store backing both caches (and, when a disk tier is
  /// configured, checkpoints). Share it across services by passing
  /// `store_ptr()` as ServiceOptions::artifact_store.
  const store::ArtifactStore& artifact_store() const { return *store_; }
  std::shared_ptr<store::ArtifactStore> store_ptr() const { return store_; }
  const ServiceOptions& options() const { return options_; }
  /// The primary gate backend (compile authority for the whole pool).
  const runtime::GateAccelerator& gate() const { return *primary_gate_; }
  /// The supervised backend pool shards dispatch through.
  BackendPool& backends() { return *backends_; }
  const BackendPool& backends() const { return *backends_; }

  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t worker_count() const { return pool_.thread_count(); }

  /// The write-ahead job journal (null unless journal_enabled and a
  /// store_dir is configured). Exposed for tests and tooling.
  const JobJournal* journal() const { return journal_.get(); }

 private:
  struct JobState;

  /// A key's registration: the job that owns it plus, once terminal, the
  /// stored result served to duplicates.
  struct IdempotencyEntry {
    std::uint64_t job_id = 0;
    std::uint64_t fingerprint = 0;
    std::weak_ptr<JobState> live;
    std::shared_ptr<const RunResult> result;
  };

  /// Builds a JobState (id assignment, deadline stamping). Returns nullptr
  /// with *status = kUnavailable after shutdown.
  std::shared_ptr<JobState> make_job(RunRequest request, Status* status);

  /// Admits a job into the queue (blocking or not). On failure the job's
  /// inflight slot is released and the returned status is non-OK; the
  /// caller resolves the job's promise.
  Status admit(const std::shared_ptr<JobState>& job, bool blocking);

  /// A handle whose future is already resolved with `status` (requests
  /// rejected before admission). Counts the job as rejected, globally and
  /// against `tenant`.
  JobHandle rejected_handle(Status status, const std::string& tenant);

  /// Fulfils the job's promise (and legacy promise, if any), bumps the
  /// terminal-state metric for result.status, and releases the inflight
  /// slot. Every dispatched job resolves through here exactly once.
  void resolve(const std::shared_ptr<JobState>& job, RunResult result);

  /// Fulfils a job that was refused admission (already counted rejected).
  void resolve_unadmitted(const std::shared_ptr<JobState>& job,
                          Status status);

  /// Terminal state reached at dispatch, before any shard ran.
  void resolve_at_dispatch(const std::shared_ptr<JobState>& job,
                           Status status);

  /// Records the first failure status for a job (first writer wins) and
  /// flags remaining shards to skip work.
  void note_failure(const std::shared_ptr<JobState>& job, Status status);

  void dispatcher_loop();
  void dispatch(const std::shared_ptr<JobState>& job);
  std::shared_ptr<const CompiledEntry> resolve_compiled(
      const qasm::Program& program, bool* cache_hit,
      runtime::CacheTier* tier);
  std::size_t effective_sim_threads(std::size_t job_threads) const;

  /// Maps a store Outcome onto the unified qs_store_* metric family
  /// (hits/misses per tier, evictions, oversized, corrupt, writes).
  void record_store_outcome(const store::Outcome& outcome);

  /// Materialises the job's shared final distribution exactly once per
  /// job (FinalStateCache lookup, else one evolution + insert); called
  /// from the first sampled shard to reach it, other shards block on the
  /// once-flag. Throws CancelledError when `token` stops the evolution.
  void ensure_final_distribution(const std::shared_ptr<JobState>& job,
                                 const CancelToken& token);

  void run_gate_shard(const std::shared_ptr<JobState>& job,
                      std::size_t shard_index);
  void run_anneal_shard(const std::shared_ptr<JobState>& job,
                        std::size_t shard_index);
  void finish_shard(const std::shared_ptr<JobState>& job);

  /// Final bookkeeping after a job's promise is fulfilled (or abandoned on
  /// a legacy admission failure): drops the progress-registry entry, the
  /// tenant inflight gauge and the service inflight count.
  void job_done(const std::shared_ptr<JobState>& job);

  /// Per-attempt cancel token: the job deadline combined with the
  /// watchdog's per-shard time budget, whichever fires first.
  CancelToken attempt_token(const JobState& job) const;

  /// Snapshots the job's merge state to the checkpoint store (no-op when
  /// checkpointing is off for this job). Caller holds merge_mutex.
  void save_checkpoint_locked(JobState& job);

  /// Shared body of submit/try_submit: idempotency lookup, journal
  /// admitted record, crash-point injection, admission.
  JobHandle submit_impl(RunRequest request, bool blocking);

  /// Replays the journal on construction: continues the job-id sequence,
  /// registers stored results for finished idempotency keys, re-enqueues
  /// admitted-but-unfinished jobs under their original ids, compacts.
  void recover_from_journal();

  /// Terminal bookkeeping shared by every resolution path: appends the
  /// journal's terminal record and settles the idempotency entry (stores
  /// the result, or erases the entry for a simulated crash).
  void finalize_job(const std::shared_ptr<JobState>& job,
                    const RunResult& result);

  ServiceOptions options_;
  std::shared_ptr<BackendPool> backends_;
  std::shared_ptr<runtime::GateAccelerator> primary_gate_;

  /// The content-addressed memo substrate; cache_ / final_cache_ are typed
  /// views over it (declared after it — construction order matters).
  std::shared_ptr<store::ArtifactStore> store_;
  CompiledProgramCache cache_;
  FinalStateCache final_cache_;
  MetricsRegistry metrics_;
  WeightedFairQueue<std::shared_ptr<JobState>> queue_;
  WorkerPool pool_;

  /// Write-ahead job journal (null = disabled). Constructed and replayed
  /// before the dispatcher starts, so recovered jobs are already queued
  /// when the first dequeue happens.
  std::unique_ptr<JobJournal> journal_;

  /// idempotency_key -> registration. Held across job registration in
  /// submit_impl so two racing duplicates cannot both admit. Lock order:
  /// idemp_mutex_ before control_mutex_/jobs_mutex_, never after.
  mutable std::mutex idemp_mutex_;
  std::unordered_map<std::string, IdempotencyEntry> idempotency_;
  /// Keys with stored results, oldest first — the eviction order keeping
  /// the replay window at journal_retention entries.
  std::deque<std::string> idemp_order_;

  /// Live-job registry backing progress(): id -> state, inserted at
  /// admission, erased at resolution. Weak pointers: the registry must
  /// never extend a job's lifetime.
  mutable std::mutex jobs_mutex_;
  std::unordered_map<std::uint64_t, std::weak_ptr<JobState>> jobs_;

  std::mutex control_mutex_;
  std::condition_variable control_cv_;
  bool paused_ = false;
  bool closing_ = false;
  bool shut_down_ = false;
  std::size_t inflight_ = 0;  ///< submitted but not yet completed jobs

  std::uint64_t next_job_id_ = 1;     // under control_mutex_
  std::uint64_t dispatch_counter_ = 0;  // dispatcher thread only

  std::thread dispatcher_;  // last member: starts after everything is built
};

}  // namespace qs::service
