#include "service/final_state_cache.h"

#include <sstream>

#include "common/hash.h"

namespace qs::service {

std::uint64_t final_state_key(std::uint64_t compiled_key,
                              const sim::QubitModel& model,
                              bool fused_kernels) {
  // Hexfloat round-trips doubles exactly, so two models hash equal iff
  // their parameters are bit-equal (same rule the platform fingerprint
  // follows for durations).
  std::ostringstream os;
  os << static_cast<int>(model.kind) << ' ' << std::hexfloat
     << model.gate_error_1q << ' ' << model.gate_error_2q << ' '
     << model.readout_error << ' ' << model.t1_ns << ' ' << model.t2_ns
     << ' ' << (fused_kernels ? 'f' : 'g');
  return hash_combine(compiled_key, fnv1a64(os.str()));
}

FinalStateCache::FinalStateCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

std::shared_ptr<const sim::FinalDistribution> FinalStateCache::lookup(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->dist;
}

void FinalStateCache::evict_lru_locked() {
  const Slot& victim = lru_.back();
  bytes_ -= victim.bytes;
  index_.erase(victim.key);
  lru_.pop_back();
  ++evictions_;
}

std::size_t FinalStateCache::insert(
    std::uint64_t key, std::shared_ptr<const sim::FinalDistribution> dist) {
  if (!dist) return 0;
  const std::size_t cost = dist->bytes();
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (cost > capacity_bytes_) {  // would evict everything for one job
    ++oversized_;
    return 0;
  }
  std::size_t evicted = 0;
  while (!lru_.empty() && bytes_ + cost > capacity_bytes_) {
    evict_lru_locked();
    ++evicted;
  }
  lru_.push_front(Slot{key, std::move(dist), cost});
  index_[key] = lru_.begin();
  bytes_ += cost;
  return evicted;
}

std::size_t FinalStateCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::size_t FinalStateCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t FinalStateCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t FinalStateCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t FinalStateCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::uint64_t FinalStateCache::oversized() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return oversized_;
}

void FinalStateCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace qs::service
