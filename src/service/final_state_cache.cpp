#include "service/final_state_cache.h"

#include <sstream>

#include "common/hash.h"
#include "store/blob.h"

namespace qs::service {

namespace {

/// Raw-bit payload: metadata as u64s, amplitudes' prefix sums as IEEE-754
/// bit patterns. Never decimal formatting — the bit-identity regression
/// test (store-loaded vs freshly-evolved) holds exactly because of this.
store::Codec<sim::FinalDistribution> make_codec() {
  store::Codec<sim::FinalDistribution> codec;

  codec.encode = [](const sim::FinalDistribution& dist) {
    store::BlobWriter w;
    w.u64(dist.qubit_count);
    w.u64(static_cast<std::uint64_t>(dist.measured_mask));
    w.u64(dist.gates);
    w.u64(dist.cum.size());
    for (double v : dist.cum) w.f64(v);
    return w.take();
  };

  codec.decode = [](const std::string& payload)
      -> std::shared_ptr<const sim::FinalDistribution> {
    store::BlobReader r(payload);
    auto dist = std::make_shared<sim::FinalDistribution>();
    std::uint64_t qubits, mask, gates, n;
    if (!r.u64(&qubits) || !r.u64(&mask) || !r.u64(&gates) || !r.u64(&n))
      return nullptr;
    dist->qubit_count = static_cast<std::size_t>(qubits);
    dist->measured_mask = static_cast<StateIndex>(mask);
    dist->gates = static_cast<std::size_t>(gates);
    dist->cum.resize(static_cast<std::size_t>(n));
    for (double& v : dist->cum)
      if (!r.f64(&v)) return nullptr;
    if (!r.done()) return nullptr;
    // Shape check: a distribution over q qubits has exactly 2^q buckets.
    if (dist->qubit_count >= 64 ||
        dist->cum.size() != (std::size_t{1} << dist->qubit_count))
      return nullptr;
    return dist;
  };

  codec.resident_bytes = [](const sim::FinalDistribution& dist) {
    return dist.bytes();
  };
  return codec;
}

}  // namespace

std::uint64_t final_state_key(std::uint64_t compiled_key,
                              const sim::QubitModel& model,
                              bool fused_kernels, Precision precision,
                              bool fused_sequences) {
  // Hexfloat round-trips doubles exactly, so two models hash equal iff
  // their parameters are bit-equal (same rule the platform fingerprint
  // follows for durations).
  std::ostringstream os;
  os << static_cast<int>(model.kind) << ' ' << std::hexfloat
     << model.gate_error_1q << ' ' << model.gate_error_2q << ' '
     << model.readout_error << ' ' << model.t1_ns << ' ' << model.t2_ns
     << ' ' << (fused_kernels ? 'f' : 'g');
  // Appended (rather than inline) so every pre-existing (f64, unfused)
  // disk entry keeps its key.
  if (precision != Precision::kF64 || fused_sequences)
    os << ' ' << to_string(precision) << (fused_sequences ? "+fused" : "");
  return hash_combine(compiled_key, fnv1a64(os.str()));
}

FinalStateCache::FinalStateCache(std::size_t capacity_bytes)
    : store_(std::make_shared<store::ArtifactStore>(store::StoreOptions{
          capacity_bytes, /*directory=*/""})),
      codec_(make_codec()) {}

FinalStateCache::FinalStateCache(std::shared_ptr<store::ArtifactStore> store)
    : store_(std::move(store)), codec_(make_codec()) {}

std::shared_ptr<const sim::FinalDistribution> FinalStateCache::lookup(
    std::uint64_t key, store::Outcome* outcome) {
  return store_->get(store::ArtifactKey::final_state(key), codec_, outcome);
}

std::size_t FinalStateCache::insert(
    std::uint64_t key, std::shared_ptr<const sim::FinalDistribution> dist,
    store::Outcome* outcome) {
  if (!dist) return 0;
  store::Outcome local;
  store::Outcome* o = outcome ? outcome : &local;
  store_->put(store::ArtifactKey::final_state(key), std::move(dist), codec_,
              o);
  return o->evicted;
}

std::size_t FinalStateCache::size() const {
  return store_->memory_entries(store::ArtifactKind::kFinalState);
}

std::size_t FinalStateCache::bytes() const { return store_->memory_bytes(); }

std::uint64_t FinalStateCache::hits() const {
  const store::StoreStats s = stats();
  return s.memory.hits + s.disk.hits;
}

std::uint64_t FinalStateCache::misses() const {
  const store::StoreStats s = stats();
  return store_->disk_enabled() ? s.disk.misses : s.memory.misses;
}

std::uint64_t FinalStateCache::evictions() const {
  return stats().memory.evictions;
}

std::uint64_t FinalStateCache::oversized() const {
  return stats().memory.oversized;
}

void FinalStateCache::clear() { store_->clear_memory(); }

}  // namespace qs::service
