#include "service/worker_pool.h"

#include <algorithm>

namespace qs::service {

WorkerPool::WorkerPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(threads, 1);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return tasks_.empty() && active_ == 0; });
}

std::size_t WorkerPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [&] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace qs::service
