#include "service/journal.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/hash.h"
#include "qasm/printer.h"
#include "store/blob.h"

namespace qs::service {

namespace {

/// File header: identifies the format so a foreign file in store_dir is
/// never misparsed as a journal.
constexpr char kJournalMagic[8] = {'Q', 'S', 'J', 'R', 'N', 'L', '1', '\n'};
constexpr std::size_t kFrameHeaderBytes = 16;  // u64 len + u64 checksum

std::uint64_t read_u64le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  return v;
}

constexpr std::uint8_t kPayloadGateText = 0;
constexpr std::uint8_t kPayloadQubo = 1;

}  // namespace

// ------------------------------------------------------------- codecs ----

std::string JobJournal::encode_request(const runtime::RunRequest& m) {
  store::BlobWriter e;
  if (m.qubo) {
    e.u8(kPayloadQubo);
    e.u64(m.qubo->size());
    e.u64(m.qubo->terms().size());
    for (const auto& [ij, w] : m.qubo->terms()) {
      e.u64(ij.first);
      e.u64(ij.second);
      e.f64(w);
    }
  } else {
    // Structured programs are journalled as their canonical cQASM print —
    // the same text the gateway sends — so replayed jobs parse at dispatch
    // exactly like live ones.
    e.u8(kPayloadGateText);
    e.str(m.program_text ? *m.program_text
                         : (m.program ? qasm::to_cqasm(*m.program)
                                      : std::string()));
  }
  e.u64(m.shots);
  e.u64(m.seed);
  e.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(m.priority)));
  e.u8(m.deadline ? 1 : 0);
  if (m.deadline)
    e.u64(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(*m.deadline)
            .count()));
  e.u64(m.sim_threads);
  e.str(m.tag);
  e.str(m.tenant);
  e.u64(m.session);
  e.str(m.checkpoint_key);
  e.str(m.idempotency_key);
  // Precision is part of the request fingerprint, so a recovered job
  // must replay at the tier it was admitted at.
  e.u8(static_cast<std::uint8_t>(m.precision));
  // Not carried (host-side concerns): faults.
  return e.take();
}

bool JobJournal::decode_request(const std::string& payload,
                                runtime::RunRequest* out) {
  store::BlobReader r(payload);
  runtime::RunRequest m;
  std::uint8_t tag;
  if (!r.u8(&tag)) return false;
  if (tag == kPayloadQubo) {
    std::uint64_t size, terms;
    if (!r.u64(&size) || !r.u64(&terms)) return false;
    anneal::Qubo q(static_cast<std::size_t>(size));
    for (std::uint64_t t = 0; t < terms; ++t) {
      std::uint64_t i, j;
      double w;
      if (!r.u64(&i) || !r.u64(&j) || !r.f64(&w)) return false;
      if (i >= size || j >= size) return false;
      q.add(static_cast<std::size_t>(i), static_cast<std::size_t>(j), w);
    }
    m.qubo = std::move(q);
  } else if (tag == kPayloadGateText) {
    std::string text;
    if (!r.str(&text)) return false;
    m.program_text = std::move(text);
  } else {
    return false;
  }
  std::uint64_t shots, seed, priority, sim_threads, session;
  std::uint8_t has_deadline;
  if (!r.u64(&shots) || !r.u64(&seed) || !r.u64(&priority) ||
      !r.u8(&has_deadline))
    return false;
  if (has_deadline) {
    std::uint64_t us;
    if (!r.u64(&us)) return false;
    m.deadline = std::chrono::microseconds(us);
  }
  if (!r.u64(&sim_threads) || !r.str(&m.tag) || !r.str(&m.tenant) ||
      !r.u64(&session) || !r.str(&m.checkpoint_key) ||
      !r.str(&m.idempotency_key))
    return false;
  // Trailing field, absent in journals written before precision tiers
  // existed; those jobs ran (and therefore replay) at f64.
  std::uint8_t precision = 0;
  if (!r.done() && (!r.u8(&precision) || precision > 1)) return false;
  m.precision = static_cast<Precision>(precision);
  if (!r.done()) return false;
  m.shots = static_cast<std::size_t>(shots);
  m.seed = seed;
  m.priority =
      static_cast<int>(static_cast<std::int64_t>(priority));
  m.sim_threads = static_cast<std::size_t>(sim_threads);
  m.session = session;
  *out = std::move(m);
  return true;
}

std::string JobJournal::encode_result(const runtime::RunResult& m) {
  store::BlobWriter e;
  e.u64(m.job_id);
  e.u8(m.kind == runtime::JobKind::Gate ? 0 : 1);
  e.str(m.tag);
  e.u64(status_code_to_wire(m.status.code()));
  e.str(m.status.message());
  e.u64(m.histogram.counts().size());
  for (const auto& [key, count] : m.histogram.counts()) {
    e.str(key);
    e.u64(count);
  }
  e.u64(m.best_solution.size());
  for (int bit : m.best_solution)
    e.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(bit)));
  e.f64(m.best_energy);
  e.f64(m.stats.queue_wait_us);
  e.f64(m.stats.run_us);
  e.u64(m.stats.retries);
  e.u64(m.stats.shards);
  e.u64(m.stats.failovers);
  e.u64(m.stats.shards_resumed);
  e.u64(m.stats.shards_executed);
  e.u8(m.stats.sampled ? 1 : 0);
  return e.take();
}

bool JobJournal::decode_result(const std::string& payload,
                               runtime::RunResult* out) {
  store::BlobReader r(payload);
  runtime::RunResult m;
  std::uint8_t kind, sampled;
  std::uint64_t code, entries, bits, retries, shards, failovers, resumed,
      executed;
  std::string message;
  if (!r.u64(&m.job_id) || !r.u8(&kind) || !r.str(&m.tag) || !r.u64(&code) ||
      !r.str(&message) || !r.u64(&entries))
    return false;
  m.kind = kind == 0 ? runtime::JobKind::Gate : runtime::JobKind::Anneal;
  m.status = Status(status_code_from_wire(static_cast<std::uint16_t>(code)),
                    std::move(message));
  for (std::uint64_t i = 0; i < entries; ++i) {
    std::string key;
    std::uint64_t count;
    if (!r.str(&key) || !r.u64(&count)) return false;
    m.histogram.add(key, static_cast<std::size_t>(count));
  }
  if (!r.u64(&bits)) return false;
  m.best_solution.reserve(static_cast<std::size_t>(bits));
  for (std::uint64_t i = 0; i < bits; ++i) {
    std::uint64_t b;
    if (!r.u64(&b)) return false;
    m.best_solution.push_back(
        static_cast<int>(static_cast<std::int64_t>(b)));
  }
  if (!r.f64(&m.best_energy) || !r.f64(&m.stats.queue_wait_us) ||
      !r.f64(&m.stats.run_us) || !r.u64(&retries) || !r.u64(&shards) ||
      !r.u64(&failovers) || !r.u64(&resumed) || !r.u64(&executed) ||
      !r.u8(&sampled))
    return false;
  if (!r.done()) return false;
  m.stats.retries = static_cast<std::size_t>(retries);
  m.stats.shards = static_cast<std::size_t>(shards);
  m.stats.failovers = static_cast<std::size_t>(failovers);
  m.stats.shards_resumed = static_cast<std::size_t>(resumed);
  m.stats.shards_executed = static_cast<std::size_t>(executed);
  m.stats.sampled = sampled != 0;
  *out = std::move(m);
  return true;
}

// ------------------------------------------------------------- framing ----

std::string JobJournal::frame_record(JournalRecordType type,
                                     std::uint64_t job_id,
                                     const std::string& body) {
  store::BlobWriter payload;
  payload.u8(static_cast<std::uint8_t>(type));
  payload.u64(job_id);
  payload.str(body);
  store::BlobWriter frame;
  frame.u64(payload.payload().size());
  frame.u64(fnv1a64(payload.payload()));
  std::string out = frame.take();
  out += payload.take();
  return out;
}

// ------------------------------------------------------------ lifecycle ----

JobJournal::JobJournal(Options options) : options_(std::move(options)) {}

JobJournal::~JobJournal() = default;

std::string JobJournal::path() const {
  return options_.directory + "/journal.qsj";
}

std::uint64_t JobJournal::bytes_appended() const {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return appended_;
}

JournalReplay JobJournal::replay() {
  JournalReplay out;
  if (options_.directory.empty()) return out;
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  const std::string p = path();

  std::string raw;
  {
    std::ifstream in(p, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      raw = buf.str();
    }
  }

  std::size_t pos = 0;
  // Index into out.inflight by job id while jobs are still in flight.
  std::unordered_map<std::uint64_t, std::size_t> live;
  if (raw.size() >= sizeof(kJournalMagic) &&
      std::memcmp(raw.data(), kJournalMagic, sizeof(kJournalMagic)) == 0) {
    pos = sizeof(kJournalMagic);
    while (raw.size() - pos >= kFrameHeaderBytes) {
      const std::uint64_t len = read_u64le(raw.data() + pos);
      const std::uint64_t checksum = read_u64le(raw.data() + pos + 8);
      if (len > raw.size() - pos - kFrameHeaderBytes) break;  // torn tail
      const std::string_view payload(raw.data() + pos + kFrameHeaderBytes,
                                     static_cast<std::size_t>(len));
      if (fnv1a64(payload) != checksum) break;  // torn or bit-flipped

      store::BlobReader r(payload);
      std::uint8_t type;
      std::uint64_t job_id;
      std::string body;
      if (!r.u8(&type) || !r.u64(&job_id) || !r.str(&body) || !r.done())
        break;

      bool applied = true;
      switch (static_cast<JournalRecordType>(type)) {
        case JournalRecordType::kAdmitted: {
          runtime::RunRequest req;
          if (!decode_request(body, &req)) {
            applied = false;
            break;
          }
          live[job_id] = out.inflight.size();
          out.inflight.push_back({job_id, std::move(req), false});
          break;
        }
        case JournalRecordType::kDispatched: {
          if (const auto it = live.find(job_id); it != live.end())
            out.inflight[it->second].dispatched = true;
          break;
        }
        case JournalRecordType::kCompleted:
        case JournalRecordType::kFailed:
        case JournalRecordType::kCancelled: {
          runtime::RunResult result;
          if (!decode_result(body, &result)) {
            applied = false;
            break;
          }
          const auto it = live.find(job_id);
          if (it == live.end()) break;  // terminal for an unknown job
          JournalReplay::FinishedJob done;
          done.job_id = job_id;
          done.request = std::move(out.inflight[it->second].request);
          done.result = std::move(result);
          // Mark the inflight slot consumed; compacted out below.
          out.inflight[it->second].job_id = 0;
          live.erase(it);
          out.finished.push_back(std::move(done));
          break;
        }
        default:
          applied = false;
          break;
      }
      if (!applied) break;  // checksummed but unparseable: stop replay here

      out.max_job_id = std::max(out.max_job_id, job_id);
      ++out.records;
      pos += kFrameHeaderBytes + static_cast<std::size_t>(len);
    }
  } else if (!raw.empty()) {
    // Foreign or torn header: drop the whole file.
    pos = 0;
  }

  if (pos < raw.size()) {
    out.truncated_bytes = raw.size() - pos;
    if (pos < sizeof(kJournalMagic)) {
      std::filesystem::remove(p, ec);
    } else {
      std::filesystem::resize_file(p, pos, ec);
    }
  }

  // Compact the inflight list down to still-live slots.
  std::vector<JournalReplay::InflightJob> inflight;
  inflight.reserve(live.size());
  for (auto& job : out.inflight)
    if (job.job_id != 0) inflight.push_back(std::move(job));
  out.inflight = std::move(inflight);

  // Open (creating if needed) for appending; a brand-new file gets the
  // header record first.
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (file_.open(p, options_.sync_writes)) {
    std::uintmax_t size = std::filesystem::file_size(p, ec);
    if (ec) size = 0;
    if (size == 0) {
      file_.append(kJournalMagic, sizeof(kJournalMagic));
      if (options_.sync_writes) file_.sync();
      size = sizeof(kJournalMagic);
    }
    appended_ = size;
    synced_ = size;
  }
  return out;
}

bool JobJournal::compact(const JournalReplay& state) {
  if (options_.directory.empty()) return false;
  std::string content(kJournalMagic, sizeof(kJournalMagic));
  for (const auto& job : state.inflight) {
    content += frame_record(JournalRecordType::kAdmitted, job.job_id,
                            encode_request(job.request));
    if (job.dispatched)
      content += frame_record(JournalRecordType::kDispatched, job.job_id,
                              std::string());
  }
  const std::size_t keep =
      std::min(state.finished.size(), options_.finished_retention);
  for (std::size_t i = state.finished.size() - keep;
       i < state.finished.size(); ++i) {
    const auto& job = state.finished[i];
    content += frame_record(JournalRecordType::kAdmitted, job.job_id,
                            encode_request(job.request));
    const JournalRecordType type =
        job.result.status.ok() ? JournalRecordType::kCompleted
        : job.result.status.code() == StatusCode::kCancelled
            ? JournalRecordType::kCancelled
            : JournalRecordType::kFailed;
    content += frame_record(type, job.job_id, encode_result(job.result));
  }

  const std::string p = path();
  const std::string tmp = p + ".compact.tmp";
  if (!store::write_file(tmp, content.data(), content.size(),
                         options_.sync_writes)) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::lock_guard<std::mutex> sync_lock(sync_mutex_);
  std::lock_guard<std::mutex> lock(write_mutex_);
  file_.close();
  std::error_code ec;
  std::filesystem::rename(tmp, p, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    // Reopen the old file; the journal stays fat but intact.
    file_.open(p, options_.sync_writes);
    return false;
  }
  if (options_.sync_writes) store::sync_parent_dir(p);
  if (!file_.open(p, options_.sync_writes)) return false;
  appended_ = content.size();
  synced_ = content.size();
  return true;
}

// -------------------------------------------------------------- appends ----

bool JobJournal::append_record(JournalRecordType type, std::uint64_t job_id,
                               const std::string& body) {
  const std::string record = frame_record(type, job_id, body);
  std::uint64_t my_offset = 0;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!file_.is_open()) return false;
    if (!file_.append(record.data(), record.size())) return false;
    appended_ += record.size();
    my_offset = appended_;
  }
  if (!options_.sync_writes) return true;

  // Group commit: whoever reaches the sync mutex first fsyncs everything
  // appended so far; appenders that were covered by that fsync skip their
  // own. Under concurrent submit bursts this amortises the fsync cost
  // across the batch.
  std::lock_guard<std::mutex> sync_lock(sync_mutex_);
  std::uint64_t target;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (synced_ >= my_offset) return true;
    target = appended_;
  }
  if (!file_.sync()) return false;
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (synced_ < target) synced_ = target;
  return true;
}

bool JobJournal::append_admitted(std::uint64_t job_id,
                                 const runtime::RunRequest& request) {
  return append_record(JournalRecordType::kAdmitted, job_id,
                       encode_request(request));
}

bool JobJournal::append_dispatched(std::uint64_t job_id) {
  return append_record(JournalRecordType::kDispatched, job_id,
                       std::string());
}

bool JobJournal::append_terminal(std::uint64_t job_id,
                                 const runtime::RunResult& result) {
  const JournalRecordType type =
      result.status.ok() ? JournalRecordType::kCompleted
      : result.status.code() == StatusCode::kCancelled
          ? JournalRecordType::kCancelled
          : JournalRecordType::kFailed;
  return append_record(type, job_id, encode_result(result));
}

}  // namespace qs::service
