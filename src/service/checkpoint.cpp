#include "service/checkpoint.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace qs::service {

namespace {

/// Bitstring keys and solutions are written verbatim; doubles round-trip
/// through max_digits10 so a resumed best_energy compares exactly equal.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status malformed(const std::string& what) {
  return Status::InvalidArgument("JobCheckpoint: malformed snapshot: " + what);
}

}  // namespace

std::size_t JobCheckpoint::completed() const {
  std::size_t n = 0;
  for (char d : shard_done) n += d ? 1 : 0;
  return n;
}

std::string JobCheckpoint::serialize() const {
  std::ostringstream out;
  out << "qs-checkpoint v1\n";
  out << "fingerprint " << fingerprint << "\n";
  out << "shards " << shards << "\n";
  for (std::size_t i = 0; i < shard_done.size(); ++i)
    if (shard_done[i]) out << "done " << i << "\n";
  if (has_best) {
    out << "best " << format_double(best_energy) << " " << best_read << " ";
    for (int b : best_solution) out << (b ? '1' : '0');
    out << "\n";
  }
  for (const auto& [bits, n] : merged.counts())
    out << "count " << bits << " " << n << "\n";
  out << "end\n";
  return out.str();
}

StatusOr<JobCheckpoint> JobCheckpoint::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "qs-checkpoint v1")
    return malformed("missing header");

  JobCheckpoint cp;
  bool saw_fingerprint = false, saw_shards = false, saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "fingerprint") {
      if (!(fields >> cp.fingerprint)) return malformed(line);
      saw_fingerprint = true;
    } else if (tag == "shards") {
      if (!(fields >> cp.shards)) return malformed(line);
      cp.shard_done.assign(cp.shards, 0);
      saw_shards = true;
    } else if (tag == "done") {
      std::size_t index = 0;
      if (!saw_shards || !(fields >> index) || index >= cp.shards)
        return malformed(line);
      cp.shard_done[index] = 1;
    } else if (tag == "best") {
      std::string bits;
      if (!(fields >> cp.best_energy >> cp.best_read >> bits))
        return malformed(line);
      cp.has_best = true;
      cp.best_solution.clear();
      for (char c : bits) {
        if (c != '0' && c != '1') return malformed(line);
        cp.best_solution.push_back(c == '1' ? 1 : 0);
      }
    } else if (tag == "count") {
      std::string bits;
      std::size_t n = 0;
      if (!(fields >> bits >> n) || n == 0) return malformed(line);
      cp.merged.add(bits, n);
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      return malformed(line);
    }
  }
  // The trailing "end" marker distinguishes a complete snapshot from a
  // torn write; refuse anything that is not provably whole.
  if (!saw_fingerprint || !saw_shards || !saw_end)
    return malformed("truncated snapshot");
  return cp;
}

// ------------------------------------------------------------ in-memory ----

Status InMemoryCheckpointStore::save(const std::string& key,
                                     const JobCheckpoint& cp) {
  std::string text = cp.serialize();
  std::lock_guard<std::mutex> lock(mutex_);
  snapshots_[key] = std::move(text);
  return Status::Ok();
}

std::optional<JobCheckpoint> InMemoryCheckpointStore::load(
    const std::string& key) {
  std::string text;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = snapshots_.find(key);
    if (it == snapshots_.end()) return std::nullopt;
    text = it->second;
  }
  StatusOr<JobCheckpoint> cp = JobCheckpoint::deserialize(text);
  if (!cp.ok()) return std::nullopt;
  return std::move(*cp);
}

void InMemoryCheckpointStore::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshots_.erase(key);
}

std::size_t InMemoryCheckpointStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_.size();
}

// --------------------------------------------------------- store-backed ----

StoreCheckpointStore::StoreCheckpointStore(
    std::shared_ptr<store::ArtifactStore> store)
    : store_(std::move(store)) {
  if (!store_)
    throw std::invalid_argument("StoreCheckpointStore: null artifact store");
}

Status StoreCheckpointStore::save(const std::string& key,
                                  const JobCheckpoint& cp) {
  const bool ok = store_->put_bytes(store::ArtifactKey::checkpoint(key),
                                    cp.serialize(), use_memory_tier());
  if (!ok)
    return Status::Unavailable("StoreCheckpointStore: write failed for '" +
                               key + "'");
  return Status::Ok();
}

std::optional<JobCheckpoint> StoreCheckpointStore::load(
    const std::string& key) {
  std::optional<std::string> text = store_->get_bytes(
      store::ArtifactKey::checkpoint(key), use_memory_tier());
  if (!text) return std::nullopt;
  // Second verification layer: the store proved the bytes whole, the
  // deserializer proves they parse. A torn or hand-edited snapshot is
  // refused either way — the resumed job just starts fresh.
  StatusOr<JobCheckpoint> cp = JobCheckpoint::deserialize(*text);
  if (!cp.ok()) return std::nullopt;
  return std::move(*cp);
}

void StoreCheckpointStore::remove(const std::string& key) {
  store_->remove(store::ArtifactKey::checkpoint(key));
}

// ---------------------------------------------------------- file-backed ----

FileCheckpointStore::FileCheckpointStore(std::string directory)
    : directory_(std::move(directory)),
      inner_(std::make_shared<store::ArtifactStore>(store::StoreOptions{
          /*memory_budget_bytes=*/1, directory_})) {
  // The inner store creates the directory; a failure surfaces as a save()
  // error, so construction stays noexcept and an operator typo cannot
  // take the service down. The 1-byte memory budget is irrelevant — the
  // checkpoint path bypasses the memory tier on disk-backed stores.
}

std::string FileCheckpointStore::path_for(const std::string& key) const {
  return inner_.store().path_for(store::ArtifactKey::checkpoint(key));
}

Status FileCheckpointStore::save(const std::string& key,
                                 const JobCheckpoint& cp) {
  return inner_.save(key, cp);
}

std::optional<JobCheckpoint> FileCheckpointStore::load(
    const std::string& key) {
  return inner_.load(key);
}

void FileCheckpointStore::remove(const std::string& key) {
  inner_.remove(key);
}

}  // namespace qs::service
