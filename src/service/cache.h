// LRU cache of compiled programs. Repeat submissions of the same kernel —
// the common case for a serving workload (parameter sweeps, shot batches,
// many clients running the same algorithm) — skip the compile and eQASM
// assembly passes entirely. Keyed by a stable content hash of the cQASM
// text + platform fingerprint + compile-option fingerprint, so a config
// change can never serve a stale artefact.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "compiler/compiler.h"
#include "microarch/eqasm.h"
#include "sim/trajectory_analysis.h"

namespace qs::service {

/// A cached compilation artefact: the scheduled cQASM plus, for the
/// micro-architecture path, the assembled eQASM (so cache hits skip both
/// passes), plus the flattened instruction stream and its
/// shot-determinism verdict (so shards skip flatten()/validate() and the
/// dispatcher knows whether the job may take the sampling fast path
/// without re-walking the program). Immutable once inserted — workers
/// share it by shared_ptr.
struct CompiledEntry {
  std::uint64_t key = 0;  ///< compiled_program_key this entry was cached under
  compiler::CompileResult compiled;
  std::shared_ptr<const microarch::EqProgram> eqasm;  ///< null on Direct path
  std::vector<qasm::Instruction> flat;  ///< compiled.program, flattened
  sim::TrajectoryAnalysis analysis;     ///< verdict for the platform's model
};

/// Computes the cache key for a program against a platform/options pair.
std::uint64_t compiled_program_key(const std::string& cqasm_text,
                                   std::uint64_t platform_fingerprint,
                                   std::uint64_t options_fingerprint);

/// Thread-safe LRU cache keyed by compiled_program_key.
class CompiledProgramCache {
 public:
  explicit CompiledProgramCache(std::size_t capacity = 128);

  /// Returns the entry and refreshes its recency, or nullptr on miss.
  std::shared_ptr<const CompiledEntry> lookup(std::uint64_t key);

  /// Inserts (or replaces) an entry, evicting the least recently used
  /// entry when over capacity.
  void insert(std::uint64_t key, std::shared_ptr<const CompiledEntry> entry);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  /// hits / (hits + misses); 0 when no lookups have happened.
  double hit_rate() const;

  void clear();

 private:
  struct Slot {
    std::uint64_t key;
    std::shared_ptr<const CompiledEntry> entry;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Slot>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace qs::service
