// Compiled-program memoisation as a typed view over the ArtifactStore.
// Repeat submissions of the same kernel — the common case for a serving
// workload (parameter sweeps, shot batches, many clients running the same
// algorithm) — skip the compile and eQASM assembly passes entirely; with
// a disk-backed store they skip them across process restarts too. Keyed
// by a stable content hash of the cQASM text + platform fingerprint +
// compile-option fingerprint, so a config change can never serve a stale
// artefact.
//
// Disk revival round-trips the compiled program through its exact cQASM
// text (the printer guarantees value-exact angles) and the eQASM through
// its textual form, then re-runs validate/flatten/analyze — cheap passes
// whose outputs are pure functions of the program, so a revived entry is
// behaviourally identical to a freshly compiled one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "compiler/compiler.h"
#include "microarch/eqasm.h"
#include "sim/error_model.h"
#include "sim/fusion.h"
#include "sim/trajectory_analysis.h"
#include "store/artifact_store.h"

namespace qs::service {

/// A cached compilation artefact: the scheduled cQASM plus, for the
/// micro-architecture path, the assembled eQASM (so cache hits skip both
/// passes), plus the flattened instruction stream and its
/// shot-determinism verdict (so shards skip flatten()/validate() and the
/// dispatcher knows whether the job may take the sampling fast path
/// without re-walking the program). Immutable once inserted — workers
/// share it by shared_ptr.
struct CompiledEntry {
  std::uint64_t key = 0;  ///< compiled_program_key this entry was cached under
  compiler::CompileResult compiled;
  std::shared_ptr<const microarch::EqProgram> eqasm;  ///< null on Direct path
  std::vector<qasm::Instruction> flat;  ///< compiled.program, flattened
  sim::TrajectoryAnalysis analysis;     ///< verdict for the platform's model
  /// Gate-sequence fusion of `flat` (sim/fusion.h); null when the
  /// platform's qubit model is stochastic (fusion is invalid there).
  /// Like `flat` and `analysis` it is a cheap pure function of the
  /// program, so disk revival recomputes it — warm restarts revive fused
  /// programs without a blob-format change.
  std::shared_ptr<const sim::FusedProgram> fused;
};

/// Builds `entry.fused` for a freshly compiled or revived entry: the
/// fusion pass over `entry.flat` with the sampling-prefix boundary, or
/// null under a stochastic qubit model.
void fuse_compiled_entry(CompiledEntry& entry, const sim::QubitModel& model);

/// Computes the cache key for a program against a platform/options pair.
std::uint64_t compiled_program_key(const std::string& cqasm_text,
                                   std::uint64_t platform_fingerprint,
                                   std::uint64_t options_fingerprint);

/// Approximate resident size of an entry, charged against the store's
/// memory budget.
std::size_t compiled_entry_bytes(const CompiledEntry& entry);

/// Typed view over the ArtifactStore for compiled programs. Thread-safe
/// (the store is). Several views may share one store — that is exactly
/// how a service and a sibling worker process share artifacts.
class CompiledProgramCache {
 public:
  /// Everything a disk-revived entry needs that is not in the payload:
  /// the platform the analysis runs against, and whether the pool needs
  /// the eQASM form (a payload without it is then rejected → recompile).
  struct ReviveContext {
    std::size_t qubit_count = 0;
    sim::QubitModel model = sim::QubitModel::perfect();
    bool want_eqasm = false;
  };

  /// Standalone view over a private memory-only store (unit tests,
  /// embedded use).
  explicit CompiledProgramCache(std::size_t memory_budget_bytes = 64ull
                                                                  << 20);

  /// View over a shared store.
  CompiledProgramCache(std::shared_ptr<store::ArtifactStore> store,
                       ReviveContext revive);

  /// Memory tier, then verified disk load (revive); nullptr on full miss.
  std::shared_ptr<const CompiledEntry> lookup(
      std::uint64_t key, store::Outcome* outcome = nullptr);

  /// Inserts into the memory tier and persists to the disk tier.
  void insert(std::uint64_t key, std::shared_ptr<const CompiledEntry> entry,
              store::Outcome* outcome = nullptr);

  std::size_t size() const;

  std::uint64_t hits() const;    ///< memory + disk hits
  std::uint64_t misses() const;  ///< full misses (deepest tier missed)
  std::uint64_t evictions() const;
  std::uint64_t oversized() const;
  /// hits / (hits + misses); 0 when no lookups have happened.
  double hit_rate() const;

  void clear();  ///< drops the store's memory tier (all kinds)

  const store::ArtifactStore& store() const { return *store_; }
  const std::shared_ptr<store::ArtifactStore>& store_ptr() const {
    return store_;
  }

 private:
  store::StoreStats stats() const {
    return store_->stats(store::ArtifactKind::kCompiled);
  }

  std::shared_ptr<store::ArtifactStore> store_;
  store::Codec<CompiledEntry> codec_;
};

}  // namespace qs::service
