#include "service/backend_pool.h"

#include <algorithm>
#include <cmath>

#include "anneal/qubo.h"
#include "common/rng.h"
#include "compiler/compiler.h"
#include "compiler/platform.h"

namespace qs::service {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half-open";
  }
  return "unknown";
}

// ------------------------------------------------------- circuit breaker ----

CircuitBreaker::CircuitBreaker(BreakerOptions options)
    : options_(options) {}

BreakerState CircuitBreaker::state_locked() const {
  if (state_ == BreakerState::Open &&
      Clock::now() - opened_at_ >= options_.open_cooldown)
    state_ = BreakerState::HalfOpen;
  return state_;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_locked();
}

bool CircuitBreaker::allow() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_locked() != BreakerState::Open;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_locked()) {
    case BreakerState::Closed:
      failures_ = 0;
      break;
    case BreakerState::HalfOpen:
      if (++trial_successes_ >= options_.half_open_successes) {
        state_ = BreakerState::Closed;
        failures_ = 0;
        trial_successes_ = 0;
      }
      break;
    case BreakerState::Open:
      // A success report racing the trip (the shard started before the
      // breaker opened) does not reopen traffic; the cooldown stands.
      break;
  }
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_locked()) {
    case BreakerState::Closed:
      if (++failures_ >= options_.failure_threshold) {
        state_ = BreakerState::Open;
        opened_at_ = Clock::now();
        trial_successes_ = 0;
      }
      break;
    case BreakerState::HalfOpen:
      // The trial failed: straight back to Open for another cooldown.
      state_ = BreakerState::Open;
      opened_at_ = Clock::now();
      trial_successes_ = 0;
      ++failures_;
      break;
    case BreakerState::Open:
      ++failures_;
      break;
  }
}

void CircuitBreaker::trip() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = BreakerState::Open;
  opened_at_ = Clock::now();
  trial_successes_ = 0;
  failures_ = std::max(failures_ + 1, options_.failure_threshold);
}

std::size_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

// ----------------------------------------------------------------- pool ----

BackendPool::BackendPool(BackendPoolOptions options)
    : options_(options) {}

BackendPool::~BackendPool() { stop_probing(); }

Status BackendPool::register_gate(
    std::string name, std::shared_ptr<runtime::GateAccelerator> gate) {
  if (!gate)
    return Status::InvalidArgument("BackendPool: null gate accelerator");
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& b : backends_)
    if (b->name == name)
      return Status::InvalidArgument("BackendPool: duplicate backend name '" +
                                     name + "'");
  // Shard failover preserves byte-identical merged histograms only when
  // every gate backend compiles to the same target: same platform, same
  // compile options (SimOptions and GatePath may differ — the kernel
  // bit-identity contract covers those).
  for (const auto& b : backends_) {
    if (!b->gate) continue;
    if (compiler::fingerprint(b->gate->platform()) !=
            compiler::fingerprint(gate->platform()) ||
        compiler::fingerprint(b->gate->options()) !=
            compiler::fingerprint(gate->options()))
      return Status::FailedPrecondition(
          "BackendPool: gate backend '" + name +
          "' has a different platform/compile-options fingerprint than '" +
          b->name + "'; failover would not be histogram-preserving");
    break;  // all registered gate backends already match each other
  }
  auto backend = std::make_shared<Backend>(options_.breaker);
  backend->name = std::move(name);
  backend->gate = std::move(gate);
  backends_.push_back(std::move(backend));
  publish_breaker_gauge(*backends_.back());
  return Status::Ok();
}

Status BackendPool::register_anneal(
    std::string name, std::shared_ptr<runtime::AnnealAccelerator> annealer) {
  if (!annealer)
    return Status::InvalidArgument("BackendPool: null anneal accelerator");
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& b : backends_)
    if (b->name == name)
      return Status::InvalidArgument("BackendPool: duplicate backend name '" +
                                     name + "'");
  auto backend = std::make_shared<Backend>(options_.breaker);
  backend->name = std::move(name);
  backend->annealer = std::move(annealer);
  backends_.push_back(std::move(backend));
  publish_breaker_gauge(*backends_.back());
  return Status::Ok();
}

std::vector<std::shared_ptr<Backend>> BackendPool::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backends_;
}

std::shared_ptr<Backend> BackendPool::acquire(runtime::JobKind kind,
                                              const std::string& exclude) {
  const auto backends = snapshot();
  if (backends.empty()) return nullptr;
  const std::size_t start =
      rotation_.fetch_add(1, std::memory_order_relaxed) % backends.size();
  std::shared_ptr<Backend> excluded_fallback;
  for (std::size_t i = 0; i < backends.size(); ++i) {
    const auto& backend = backends[(start + i) % backends.size()];
    if (backend->kind() != kind) continue;
    if (!backend->breaker.allow()) continue;
    if (!exclude.empty() && backend->name == exclude) {
      excluded_fallback = backend;
      continue;
    }
    return backend;
  }
  // Only the just-failed backend is healthy: retrying there beats failing
  // the shard outright (its fault may have been transient).
  return excluded_fallback;
}

std::shared_ptr<Backend> BackendPool::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& b : backends_)
    if (b->name == name) return b;
  return nullptr;
}

std::shared_ptr<Backend> BackendPool::primary(runtime::JobKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& b : backends_)
    if (b->kind() == kind) return b;
  return nullptr;
}

std::size_t BackendPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backends_.size();
}

std::size_t BackendPool::healthy_count(runtime::JobKind kind) const {
  std::size_t n = 0;
  for (const auto& b : snapshot())
    if (b->kind() == kind && b->breaker.allow()) ++n;
  return n;
}

bool BackendPool::any_microarch() const {
  for (const auto& b : snapshot())
    if (b->gate && b->gate->path() == runtime::GatePath::MicroArch) return true;
  return false;
}

void BackendPool::record_success(Backend& backend) {
  backend.shards_ok.fetch_add(1, std::memory_order_relaxed);
  backend.breaker.record_success();
  publish_breaker_gauge(backend);
}

void BackendPool::record_failure(Backend& backend) {
  backend.shards_failed.fetch_add(1, std::memory_order_relaxed);
  backend.breaker.record_failure();
  publish_breaker_gauge(backend);
}

void BackendPool::quarantine(Backend& backend) {
  backend.shards_failed.fetch_add(1, std::memory_order_relaxed);
  backend.breaker.trip();
  if (auto* metrics = metrics_.load(std::memory_order_acquire))
    metrics->counter("qs_backend_quarantines_total").inc();
  publish_breaker_gauge(backend);
}

void BackendPool::publish_breaker_gauge(const Backend& backend) {
  auto* metrics = metrics_.load(std::memory_order_acquire);
  if (!metrics) return;
  // 0 = closed, 1 = half-open, 2 = open — ordered by severity so alerts
  // can threshold on > 0.
  std::int64_t level = 0;
  switch (backend.breaker.state()) {
    case BreakerState::Closed:
      level = 0;
      break;
    case BreakerState::HalfOpen:
      level = 1;
      break;
    case BreakerState::Open:
      level = 2;
      break;
  }
  metrics->gauge("qs_backend_breaker_state_" + backend.name).set(level);
}

// --------------------------------------------------------------- probes ----

namespace {

/// 2-qubit Bell pair; a healthy backend's histogram concentrates on
/// {"00", "11"} in roughly equal halves.
constexpr const char* kBellProbeSource =
    "version 1.0\n"
    "qubits 2\n"
    "h q[0]\n"
    "cnot q[0], q[1]\n"
    "measure q[0]\n"
    "measure q[1]\n";

bool bell_histogram_sane(const Histogram& histogram, std::size_t shots,
                         double chi2_threshold, double max_leak_fraction) {
  if (histogram.total() != shots || shots == 0) return false;
  std::size_t n00 = 0, n11 = 0;
  for (const auto& [bits, n] : histogram.counts()) {
    if (bits == "00")
      n00 = n;
    else if (bits == "11")
      n11 = n;
  }
  const std::size_t kept = n00 + n11;
  const double leak =
      static_cast<double>(shots - kept) / static_cast<double>(shots);
  if (leak > max_leak_fraction) return false;
  if (kept == 0) return false;
  // Chi-square of the observed 00/11 split against the ideal 50/50.
  const double expected = static_cast<double>(kept) / 2.0;
  const double d0 = static_cast<double>(n00) - expected;
  const double d1 = static_cast<double>(n11) - expected;
  const double chi2 = (d0 * d0 + d1 * d1) / expected;
  return chi2 <= chi2_threshold;
}

}  // namespace

bool BackendPool::probe_backend(Backend& backend) {
  if (backend.inject_probe_failure.load(std::memory_order_relaxed))
    return false;
  if (backend.gate) {
    if (backend.gate->qubit_count() < 2) return false;
    runtime::RunRequest request = runtime::RunRequest::gate_source(
        kBellProbeSource, options_.probe_shots, options_.probe_seed);
    runtime::RunResult result = backend.gate->run(request);
    if (!result.ok()) return false;
    return bell_histogram_sane(result.histogram, options_.probe_shots,
                               options_.probe_chi2_threshold,
                               options_.probe_max_leak_fraction);
  }
  // Anneal probe: a 2-variable QUBO whose optimum (x = {1,1}, energy -1)
  // any functioning annealer finds essentially always.
  anneal::Qubo qubo(2);
  qubo.add(0, 0, 1.0);
  qubo.add(1, 1, 1.0);
  qubo.add(0, 1, -3.0);
  try {
    Rng rng(options_.probe_seed);
    runtime::AnnealOutcome outcome = backend.annealer->solve(qubo, rng);
    return outcome.energy <= -1.0 + 1e-9 &&
           outcome.solution == std::vector<int>{1, 1};
  } catch (const std::exception&) {
    return false;  // embedding failure / injected fault: unhealthy
  }
}

std::size_t BackendPool::run_probes() {
  std::size_t failed = 0;
  for (const auto& backend : snapshot()) {
    if (probe_backend(*backend)) {
      // A passing probe is evidence of health: it walks a quarantined
      // backend through half-open back to closed without client traffic.
      backend->breaker.record_success();
      publish_breaker_gauge(*backend);
      continue;
    }
    ++failed;
    backend->probes_failed.fetch_add(1, std::memory_order_relaxed);
    if (auto* metrics = metrics_.load(std::memory_order_acquire))
      metrics->counter("qs_backend_probe_failures_total").inc();
    quarantine(*backend);
  }
  return failed;
}

void BackendPool::start_probing() {
  if (options_.probe_interval.count() <= 0) return;
  std::lock_guard<std::mutex> lock(probe_mutex_);
  if (probe_thread_.joinable()) return;
  probe_stop_ = false;
  probe_thread_ = std::thread([this] { probe_loop(); });
}

void BackendPool::stop_probing() {
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
}

void BackendPool::probe_loop() {
  std::unique_lock<std::mutex> lock(probe_mutex_);
  while (!probe_stop_) {
    if (probe_cv_.wait_for(lock, options_.probe_interval,
                           [this] { return probe_stop_; }))
      return;
    lock.unlock();
    run_probes();
    lock.lock();
  }
}

void BackendPool::attach_metrics(MetricsRegistry* metrics) {
  metrics_.store(metrics, std::memory_order_release);
  for (const auto& backend : snapshot()) publish_breaker_gauge(*backend);
}

std::vector<BackendStatus> BackendPool::status() const {
  std::vector<BackendStatus> out;
  for (const auto& b : snapshot()) {
    BackendStatus s;
    s.name = b->name;
    s.kind = b->kind();
    s.breaker = b->breaker.state();
    s.shards_ok = b->shards_ok.load(std::memory_order_relaxed);
    s.shards_failed = b->shards_failed.load(std::memory_order_relaxed);
    s.probes_failed = b->probes_failed.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

BreakerState BackendPool::breaker_state(const std::string& name) const {
  auto backend = find(name);
  return backend ? backend->breaker.state() : BreakerState::Open;
}

}  // namespace qs::service
