#include "service/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace qs::service {

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument(
          "LatencyHistogram: bounds must be strictly increasing");
}

void LatencyHistogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[idx];
  ++count_;
  sum_ += value;
}

std::uint64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double LatencyHistogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double LatencyHistogram::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= target && buckets_[i] > 0) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : lo * 2.0;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_;
}

std::vector<double> LatencyHistogram::default_us_bounds() {
  // 1us .. 1e8us (100s) in half-decade steps.
  std::vector<double> b;
  for (double v = 1.0; v <= 1e8; v *= 10.0) {
    b.push_back(v);
    b.push_back(v * 3.162);
  }
  return b;
}

std::vector<double> LatencyHistogram::default_seconds_bounds() {
  // 1us .. 100s in half-decade steps, denominated in seconds.
  std::vector<double> b;
  for (double v = 1e-6; v <= 1e2; v *= 10.0) {
    b.push_back(v);
    b.push_back(v * 3.162);
  }
  return b;
}

std::vector<double> MetricsRegistry::fraction_bounds() {
  return {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 2.0, 5.0};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(
    const std::string& name, std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>(std::move(upper_bounds));
  return *slot;
}

namespace {
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}
}  // namespace

std::string MetricsRegistry::render() const {
  // Copy the metric pointers under the lock, then read each metric through
  // its own synchronisation (maps are only mutated under mutex_, and
  // entries are never removed, so the pointers stay valid).
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_)
    out << name << ' ' << c->value() << '\n';
  for (const auto& [name, g] : gauges_)
    out << name << ' ' << g->value() << '\n';
  for (const auto& [name, h] : histograms_) {
    out << name << "_count " << h->count() << '\n';
    out << name << "_sum " << fmt_double(h->sum()) << '\n';
    out << name << "_mean " << fmt_double(h->mean()) << '\n';
    out << name << "_p50 " << fmt_double(h->quantile(0.5)) << '\n';
    out << name << "_p99 " << fmt_double(h->quantile(0.99)) << '\n';
  }
  return out.str();
}

}  // namespace qs::service
