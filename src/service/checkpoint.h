// Crash-safe checkpoint/resume for long jobs. After every completed shard
// the service snapshots the job's merged partial histogram plus the shard
// cursor (which shard indices are done); a worker crash, a failed job or a
// full service restart can then resume from the snapshot and re-run only
// the unfinished shards. Because shard seeds are a pure function of
// (job seed, shard index) and histogram merging is commutative, a resumed
// job's final histogram is byte-identical to an uninterrupted run.
//
// A checkpoint is only trusted when its fingerprint — a stable hash of the
// job payload, seed, shot count and shard size — matches the resubmitted
// request; anything else (changed program, different shard plan) starts
// fresh rather than merging incompatible partials.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "store/artifact_store.h"

namespace qs::service {

/// Snapshot of a partially-completed job: which shards finished and what
/// they merged to. The anneal best-of-N reduction state rides along so
/// annealing jobs resume their tie-break-deterministic best solution too.
struct JobCheckpoint {
  std::uint64_t fingerprint = 0;  ///< request/shard-plan hash, must match
  std::size_t shards = 0;         ///< total shards in the plan
  std::vector<char> shard_done;   ///< size == shards; 1 = merged
  Histogram merged;               ///< union of the completed shards

  // Annealing best-of-N state (ignored for gate jobs).
  bool has_best = false;
  double best_energy = 0.0;
  std::uint64_t best_read = 0;
  std::vector<int> best_solution;

  std::size_t completed() const;

  /// Line-based text form (stable across platforms, safe to diff):
  ///   qs-checkpoint v1
  ///   fingerprint <u64> / shards <n> / done <i>... / best ... / count ...
  std::string serialize() const;

  /// Inverse of serialize(). kInvalidArgument on any malformed line —
  /// a torn or hand-edited snapshot is refused, never half-applied.
  static StatusOr<JobCheckpoint> deserialize(const std::string& text);
};

/// Where snapshots live. Implementations must be safe to call from
/// concurrent shard workers (the service serialises saves per job, but
/// different jobs checkpoint in parallel).
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  virtual Status save(const std::string& key, const JobCheckpoint& cp) = 0;
  virtual std::optional<JobCheckpoint> load(const std::string& key) = 0;
  virtual void remove(const std::string& key) = 0;
};

/// Process-local store: survives service restarts within one process
/// (tests, embedded deployments). Stores the serialized text so the
/// serialize/deserialize round trip is always exercised.
class InMemoryCheckpointStore final : public CheckpointStore {
 public:
  Status save(const std::string& key, const JobCheckpoint& cp) override;
  std::optional<JobCheckpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::string> snapshots_;
};

/// Checkpoints as ArtifactStore entries: the snapshot text rides the
/// store's verified on-disk layout (tmp+rename atomicity, magic + length
/// + checksum on load), making the checkpoint store one more artifact
/// kind rather than its own persistence mechanism. When the store has a
/// disk tier, saves and loads bypass the memory tier so every load
/// observes the durable bytes (torn-write detection stays honest); on a
/// memory-only store snapshots live in the shared LRU tier instead
/// (process-local resume, like InMemoryCheckpointStore — eviction just
/// means a resume starts fresh).
class StoreCheckpointStore final : public CheckpointStore {
 public:
  /// Throws std::invalid_argument on a null store (wiring bug).
  explicit StoreCheckpointStore(std::shared_ptr<store::ArtifactStore> store);

  Status save(const std::string& key, const JobCheckpoint& cp) override;
  std::optional<JobCheckpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;

  const store::ArtifactStore& store() const { return *store_; }

 private:
  bool use_memory_tier() const { return !store_->disk_enabled(); }

  std::shared_ptr<store::ArtifactStore> store_;
};

/// File-backed store: one verified store entry per key under `directory`,
/// written tmp-then-rename so a crash mid-save never leaves a torn
/// snapshot. A thin compatibility wrapper over StoreCheckpointStore with
/// a private disk-only ArtifactStore — kept because "point checkpoints at
/// a directory" is the natural operator-facing configuration.
class FileCheckpointStore final : public CheckpointStore {
 public:
  /// Creates `directory` if missing.
  explicit FileCheckpointStore(std::string directory);

  Status save(const std::string& key, const JobCheckpoint& cp) override;
  std::optional<JobCheckpoint> load(const std::string& key) override;
  void remove(const std::string& key) override;

  const std::string& directory() const { return directory_; }

  /// The on-disk path a key maps to (for tests / operators).
  std::string path_for(const std::string& key) const;

 private:
  std::string directory_;
  StoreCheckpointStore inner_;
};

}  // namespace qs::service
