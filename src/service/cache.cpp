#include "service/cache.h"

#include <utility>

#include "common/hash.h"
#include "microarch/eqasm_parser.h"
#include "qasm/parser.h"
#include "store/blob.h"

namespace qs::service {

namespace {

/// Builds the codec for one revive context. The payload carries the
/// artefact's *textual* forms — exact-round-trip cQASM and eQASM — plus
/// the headline gate counts; the flatten and the trajectory analysis are
/// cheap pure functions of the program and are recomputed on revival
/// (per-pass compiler stats are not persisted and revive as zeros).
store::Codec<CompiledEntry> make_codec(
    CompiledProgramCache::ReviveContext ctx) {
  store::Codec<CompiledEntry> codec;

  codec.encode = [](const CompiledEntry& entry) {
    store::BlobWriter w;
    w.u64(entry.key);
    w.str(entry.compiled.cqasm);
    w.u8(entry.eqasm ? 1 : 0);
    if (entry.eqasm) w.str(entry.eqasm->to_string());
    w.u64(entry.compiled.gates_before);
    w.u64(entry.compiled.gates_after);
    w.u64(entry.compiled.two_qubit_gates_after);
    return w.take();
  };

  codec.decode =
      [ctx](const std::string& payload) -> std::shared_ptr<const CompiledEntry> {
    store::BlobReader r(payload);
    auto entry = std::make_shared<CompiledEntry>();
    std::uint8_t has_eqasm = 0;
    std::string eqasm_text;
    std::uint64_t gates_before, gates_after, two_qubit;
    if (!r.u64(&entry->key) || !r.str(&entry->compiled.cqasm) ||
        !r.u8(&has_eqasm) || has_eqasm > 1 ||
        (has_eqasm && !r.str(&eqasm_text)) || !r.u64(&gates_before) ||
        !r.u64(&gates_after) || !r.u64(&two_qubit) || !r.done())
      return nullptr;
    // A payload from a store shared with a micro-arch pool may lack the
    // eQASM this pool needs: reject (→ recompile) rather than serve an
    // entry a failover route cannot execute.
    if (ctx.want_eqasm && !has_eqasm) return nullptr;

    StatusOr<qasm::Program> program =
        qasm::Parser::parse_or_status(entry->compiled.cqasm);
    if (!program.ok()) return nullptr;
    entry->compiled.program = std::move(*program);
    entry->compiled.gates_before = static_cast<std::size_t>(gates_before);
    entry->compiled.gates_after = static_cast<std::size_t>(gates_after);
    entry->compiled.two_qubit_gates_after =
        static_cast<std::size_t>(two_qubit);
    if (has_eqasm) {
      StatusOr<microarch::EqProgram> eq =
          microarch::parse_eqasm_or_status(eqasm_text);
      if (!eq.ok()) return nullptr;
      entry->eqasm =
          std::make_shared<const microarch::EqProgram>(std::move(*eq));
    }
    try {
      entry->compiled.program.validate();
      entry->flat = entry->compiled.program.flatten();
    } catch (const std::exception&) {
      return nullptr;
    }
    entry->analysis =
        sim::analyze_trajectory(entry->flat, ctx.qubit_count, ctx.model);
    fuse_compiled_entry(*entry, ctx.model);
    return entry;
  };

  codec.resident_bytes = [](const CompiledEntry& entry) {
    return compiled_entry_bytes(entry);
  };
  return codec;
}

}  // namespace

std::uint64_t compiled_program_key(const std::string& cqasm_text,
                                   std::uint64_t platform_fingerprint,
                                   std::uint64_t options_fingerprint) {
  std::uint64_t h = fnv1a64(cqasm_text);
  h = hash_combine(h, platform_fingerprint);
  h = hash_combine(h, options_fingerprint);
  return h;
}

void fuse_compiled_entry(CompiledEntry& entry, const sim::QubitModel& model) {
  if (sim::stochastic_model(model)) {
    entry.fused = nullptr;
    return;
  }
  entry.fused = std::make_shared<const sim::FusedProgram>(
      sim::fuse_sequences(entry.flat, entry.analysis.terminal_start));
}

std::size_t compiled_entry_bytes(const CompiledEntry& entry) {
  std::size_t n = sizeof(CompiledEntry);
  n += entry.compiled.cqasm.size();
  n += entry.compiled.program.total_instructions() * sizeof(qasm::Instruction);
  n += entry.flat.size() * sizeof(qasm::Instruction);
  if (entry.eqasm)
    n += entry.eqasm->instructions().size() * sizeof(microarch::EqInstruction);
  if (entry.fused) n += entry.fused->bytes();
  return n;
}

CompiledProgramCache::CompiledProgramCache(std::size_t memory_budget_bytes)
    : store_(std::make_shared<store::ArtifactStore>(store::StoreOptions{
          memory_budget_bytes, /*directory=*/""})),
      codec_(make_codec(ReviveContext{})) {}

CompiledProgramCache::CompiledProgramCache(
    std::shared_ptr<store::ArtifactStore> store, ReviveContext revive)
    : store_(std::move(store)), codec_(make_codec(revive)) {}

std::shared_ptr<const CompiledEntry> CompiledProgramCache::lookup(
    std::uint64_t key, store::Outcome* outcome) {
  return store_->get(store::ArtifactKey::compiled(key), codec_, outcome);
}

void CompiledProgramCache::insert(std::uint64_t key,
                                  std::shared_ptr<const CompiledEntry> entry,
                                  store::Outcome* outcome) {
  store_->put(store::ArtifactKey::compiled(key), std::move(entry), codec_,
              outcome);
}

std::size_t CompiledProgramCache::size() const {
  return store_->memory_entries(store::ArtifactKind::kCompiled);
}

std::uint64_t CompiledProgramCache::hits() const {
  const store::StoreStats s = stats();
  return s.memory.hits + s.disk.hits;
}

std::uint64_t CompiledProgramCache::misses() const {
  // A full miss is a miss of the deepest enabled tier: with a disk tier
  // the memory misses that were answered from disk are not misses of the
  // cache, they are (slower) hits.
  const store::StoreStats s = stats();
  return store_->disk_enabled() ? s.disk.misses : s.memory.misses;
}

std::uint64_t CompiledProgramCache::evictions() const {
  return stats().memory.evictions;
}

std::uint64_t CompiledProgramCache::oversized() const {
  return stats().memory.oversized;
}

double CompiledProgramCache::hit_rate() const {
  const std::uint64_t h = hits();
  const std::uint64_t total = h + misses();
  return total == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(total);
}

void CompiledProgramCache::clear() { store_->clear_memory(); }

}  // namespace qs::service
