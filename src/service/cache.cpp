#include "service/cache.h"

#include <stdexcept>

#include "common/hash.h"

namespace qs::service {

std::uint64_t compiled_program_key(const std::string& cqasm_text,
                                   std::uint64_t platform_fingerprint,
                                   std::uint64_t options_fingerprint) {
  std::uint64_t h = fnv1a64(cqasm_text);
  h = hash_combine(h, platform_fingerprint);
  h = hash_combine(h, options_fingerprint);
  return h;
}

CompiledProgramCache::CompiledProgramCache(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity_ == 0)
    throw std::invalid_argument(
        "CompiledProgramCache: capacity must be >= 1");
}

std::shared_ptr<const CompiledEntry> CompiledProgramCache::lookup(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->entry;
}

void CompiledProgramCache::insert(std::uint64_t key,
                                  std::shared_ptr<const CompiledEntry> entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::move(entry)});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t CompiledProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t CompiledProgramCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t CompiledProgramCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t CompiledProgramCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

double CompiledProgramCache::hit_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void CompiledProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace qs::service
