#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/cancellation.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "qasm/parser.h"
#include "qasm/printer.h"

namespace qs::service {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

double us_of(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

std::string solution_bits(const std::vector<int>& solution) {
  std::string bits(solution.size(), '0');
  for (std::size_t i = 0; i < solution.size(); ++i)
    if (solution[i]) bits[i] = '1';
  return bits;
}

/// One-entry pool for the single-backend convenience constructors.
std::shared_ptr<BackendPool> make_single_pool(
    runtime::GateAccelerator gate,
    std::optional<runtime::AnnealAccelerator> annealer) {
  auto pool = std::make_shared<BackendPool>();
  // A fresh pool with a unique name cannot collide or mismatch; the
  // statuses are asserted OK rather than surfaced.
  Status st = pool->register_gate(
      "gate0", std::make_shared<runtime::GateAccelerator>(std::move(gate)));
  if (!st.ok()) throw std::invalid_argument(st.to_string());
  if (annealer) {
    st = pool->register_anneal("anneal0",
                               std::make_shared<runtime::AnnealAccelerator>(
                                   std::move(*annealer)));
    if (!st.ok()) throw std::invalid_argument(st.to_string());
  }
  return pool;
}

/// Identity of a checkpointed shard plan: payload content, base seed, total
/// shots and shard size. A resumed submission must match all four — any
/// change re-derives different shard streams, so merging stale partials
/// would corrupt the histogram.
std::uint64_t checkpoint_fingerprint(const RunRequest& req,
                                     std::size_t shard_shots) {
  std::uint64_t h = 0;
  if (req.kind() == JobKind::Gate) {
    h = fnv1a64(qasm::to_cqasm(*req.program));
  } else {
    std::ostringstream payload;
    payload << "qubo " << req.qubo->size();
    for (const auto& [ij, w] : req.qubo->terms())
      payload << ' ' << ij.first << ',' << ij.second << '='
              << std::hexfloat << w;
    h = fnv1a64(payload.str());
  }
  h = hash_combine(h, req.seed);
  h = hash_combine(h, req.shots);
  h = hash_combine(h, shard_shots);
  // The precision tier changes amplitudes, hence shard histograms: f32
  // partials must never merge into an f64 resume (or vice versa).
  h = hash_combine(h, static_cast<std::uint64_t>(req.precision));
  return h;
}

/// Identity of a request for exactly-once: same ingredients as
/// checkpoint_fingerprint but computable before parsing — a raw-source
/// submission hashes as submitted, which is exactly the byte string a
/// retrying client sends again.
std::uint64_t request_fingerprint(const RunRequest& req,
                                  std::size_t shard_shots) {
  std::uint64_t h = 0;
  if (req.kind() == JobKind::Gate) {
    h = fnv1a64(req.program_text ? *req.program_text
                                 : qasm::to_cqasm(*req.program));
  } else {
    std::ostringstream payload;
    payload << "qubo " << req.qubo->size();
    for (const auto& [ij, w] : req.qubo->terms())
      payload << ' ' << ij.first << ',' << ij.second << '='
              << std::hexfloat << w;
    h = fnv1a64(payload.str());
  }
  h = hash_combine(h, req.seed);
  h = hash_combine(h, req.shots);
  h = hash_combine(h, shard_shots);
  // Same rationale as checkpoint_fingerprint: a different precision tier
  // is a different result, so it is a different request.
  h = hash_combine(h, static_cast<std::uint64_t>(req.precision));
  return h;
}

runtime::CrashPoint crash_point_of(const RunRequest& req) {
  return req.faults ? req.faults->crash_point : runtime::CrashPoint::kNone;
}

Status crash_status(runtime::CrashPoint point) {
  return Status::Unavailable(std::string("injected crash at ") +
                             runtime::to_string(point) + " (FaultPlan)");
}

/// Sanity gate every shard result passes before it may merge: counts sum
/// to the shard's shot count, every bitstring has the register's arity and
/// is binary. A violation means the backend silently corrupted the result
/// (as opposed to failing loudly) — the caller quarantines it and
/// re-routes the shard.
Status validate_shard_histogram(const Histogram& shard, std::size_t shots,
                                std::size_t arity) {
  if (shard.total() != shots)
    return Status::Internal("shard histogram counts sum to " +
                            std::to_string(shard.total()) + ", expected " +
                            std::to_string(shots));
  for (const auto& [bits, n] : shard.counts()) {
    if (n == 0) return Status::Internal("shard histogram has a zero count");
    if (bits.size() != arity)
      return Status::Internal("shard histogram key '" + bits +
                              "' does not match register arity " +
                              std::to_string(arity));
    for (char c : bits)
      if (c != '0' && c != '1')
        return Status::Internal("shard histogram key '" + bits +
                                "' is not binary");
  }
  return Status::Ok();
}

/// Queue / metrics key for a request's tenant: the anonymous tenant maps
/// to "default" so single-tenant callers never see an empty label.
std::string tenant_of(const RunRequest& request) {
  return request.tenant.empty() ? "default" : request.tenant;
}

std::string tenant_metric(const char* stem, const std::string& tenant) {
  return std::string(stem) + "{tenant=\"" + tenant + "\"}";
}

/// Throws the validate() message before any member (worker pool, caches,
/// queue) is built from a bad value.
ServiceOptions validated(ServiceOptions options) {
  if (Status v = options.validate(); !v.ok())
    throw std::invalid_argument(v.message());
  return options;
}

/// Resolves the pool's primary gate backend in the constructor init list,
/// before the cache views need its platform for their revive context.
std::shared_ptr<runtime::GateAccelerator> primary_gate_of(
    const std::shared_ptr<BackendPool>& pool) {
  if (!pool)
    throw std::invalid_argument("QuantumService: null backend pool");
  auto primary = pool->primary(runtime::JobKind::Gate);
  if (!primary)
    throw std::invalid_argument("QuantumService: pool has no gate backend");
  return primary->gate;
}

/// The service's artifact store: a caller-shared instance when provided,
/// else one built from the store_memory_bytes / store_dir knobs.
std::shared_ptr<store::ArtifactStore> make_store(const ServiceOptions& o) {
  if (o.artifact_store) return o.artifact_store;
  store::StoreOptions so;
  so.memory_budget_bytes = o.store_memory_bytes;
  so.directory = o.store_dir;
  so.sync_writes = o.sync_writes;
  return std::make_shared<store::ArtifactStore>(std::move(so));
}

runtime::CacheTier to_cache_tier(store::Tier tier) {
  switch (tier) {
    case store::Tier::kMemory: return runtime::CacheTier::kMemory;
    case store::Tier::kDisk: return runtime::CacheTier::kDisk;
    case store::Tier::kNone: break;
  }
  return runtime::CacheTier::kNone;
}

}  // namespace

Status ServiceOptions::validate() const {
  if (workers == 0)
    return Status::InvalidArgument(
        "ServiceOptions: workers must be >= 1 (0 would accept jobs and "
        "never run a shard)");
  if (queue_capacity == 0)
    return Status::InvalidArgument(
        "ServiceOptions: queue_capacity must be >= 1 (0 would reject or "
        "block every submission)");
  if (shard_shots == 0)
    return Status::InvalidArgument(
        "ServiceOptions: shard_shots must be >= 1");
  if (!(default_tenant_weight > 0.0))
    return Status::InvalidArgument(
        "ServiceOptions: default_tenant_weight must be > 0");
  for (const auto& [tenant, weight] : tenant_weights)
    if (!(weight > 0.0))
      return Status::InvalidArgument(
          "ServiceOptions: tenant_weights[\"" + tenant +
          "\"] must be > 0 (a zero-weight tenant would never dequeue)");
  if (store_memory_bytes == 0)
    return Status::InvalidArgument(
        "ServiceOptions: store_memory_bytes must be >= 1 (disable "
        "memoisation with cache_enabled / final_state_cache_enabled, not a "
        "zero budget)");
  return Status::Ok();
}

/// Per-job bookkeeping shared between the dispatcher and shard tasks.
struct QuantumService::JobState {
  std::uint64_t id = 0;
  std::string tenant;  ///< normalized queue/metrics key ("" -> "default")
  RunRequest request;
  std::promise<RunResult> promise;
  std::shared_future<RunResult> future;  // handed to the JobHandle
  CancelSource cancel;
  std::optional<Clock::time_point> deadline_at;
  Clock::time_point submitted;
  Clock::time_point dispatched;
  std::uint64_t dispatch_seq = 0;
  double wait_us = 0.0;
  bool cache_hit = false;
  runtime::CacheTier compile_tier = runtime::CacheTier::kNone;
  std::size_t shards = 0;
  std::shared_ptr<const CompiledEntry> entry;  // gate jobs only

  // Sampling fast path (gate jobs whose trajectory is shot-deterministic).
  // The distribution is materialised at most once per job — by the first
  // shard to reach it, under dist_once — and shared read-only; call_once
  // synchronises the fields below for every other shard.
  bool sampled = false;             ///< decided at dispatch
  std::uint64_t final_key = 0;      ///< FinalStateCache key
  std::once_flag dist_once;
  std::shared_ptr<const sim::FinalDistribution> final_dist;
  bool final_cache_hit = false;     ///< written under dist_once
  runtime::CacheTier final_tier = runtime::CacheTier::kNone;  // dist_once

  // Shard merge state. Histogram addition is commutative, so taking the
  // merge mutex in arbitrary shard-completion order still yields a
  // deterministic merged result.
  std::mutex merge_mutex;
  Histogram merged;
  bool has_best = false;
  double best_energy = 0.0;
  std::uint64_t best_read = 0;
  std::vector<int> best_solution;
  Status status;  // first failure wins; guarded by merge_mutex

  /// Set alongside a failure status: remaining shards skip their work
  /// (they still run through finish_shard to keep the count exact).
  std::atomic<bool> abort{false};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> remaining{0};

  /// Bumped once per merged shard (under merge_mutex); progress()
  /// consumers ship a snapshot only when this advances.
  std::atomic<std::uint64_t> progress_seq{0};

  // Supervision / checkpoint state.
  std::vector<char> shard_done;        ///< guarded by merge_mutex
  std::uint64_t checkpoint_fp = 0;     ///< 0 = checkpointing off
  std::size_t shards_resumed = 0;      ///< restored at dispatch
  std::atomic<std::size_t> failovers{0};
  std::atomic<std::size_t> shards_executed{0};

  // Durability / exactly-once state.
  bool journaled = false;  ///< admitted record reached the journal
  bool recovered = false;  ///< re-enqueued from a journal replay
  std::string idemp_key;   ///< registered idempotency key ("" = none)
  /// Simulated-crash flag (FaultPlan::crash_point): suppresses the
  /// terminal journal record and the idempotency result, so the job's
  /// on-disk state is exactly that of a process that died at the point.
  std::atomic<bool> crashed{false};
};

QuantumService::QuantumService(std::shared_ptr<BackendPool> backends,
                               ServiceOptions options)
    : options_(validated(std::move(options))),
      backends_(std::move(backends)),
      primary_gate_(primary_gate_of(backends_)),
      store_(make_store(options_)),
      cache_(store_,
             CompiledProgramCache::ReviveContext{
                 primary_gate_->platform().qubit_count,
                 primary_gate_->platform().qubit_model,
                 backends_->any_microarch()}),
      final_cache_(store_),
      queue_(options_.queue_capacity, options_.default_tenant_weight),
      pool_(options_.workers),
      paused_(options_.start_paused) {
  for (const auto& [tenant, weight] : options_.tenant_weights)
    queue_.set_weight(tenant, weight);
  // A persistent store doubles as the checkpoint substrate: with a disk
  // tier configured and no explicit CheckpointStore, checkpoint/resume
  // lands in the same directory (same atomic-write + verified-load path).
  if (!options_.checkpoint_store && store_->disk_enabled())
    options_.checkpoint_store = std::make_shared<StoreCheckpointStore>(store_);
  // Crash-durable journal: replay and recovery must finish before the
  // dispatcher's first dequeue, so recovered jobs keep their admission
  // order ahead of anything submitted to the new process. Keyed to
  // store_dir (not to a shared artifact_store's directory) so two services
  // sharing one store never contend for one journal file / id sequence.
  if (options_.journal_enabled && !options_.store_dir.empty()) {
    JobJournal::Options jo;
    jo.directory = options_.store_dir;
    jo.sync_writes = options_.sync_writes;
    jo.finished_retention = options_.journal_retention;
    journal_ = std::make_unique<JobJournal>(std::move(jo));
    recover_from_journal();
  }
  backends_->attach_metrics(&metrics_);
  backends_->start_probing();
  metrics_.gauge("qs_workers").set(
      static_cast<std::int64_t>(pool_.thread_count()));
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

QuantumService::QuantumService(runtime::GateAccelerator gate,
                               ServiceOptions options)
    : QuantumService(make_single_pool(std::move(gate), std::nullopt),
                     options) {}

QuantumService::QuantumService(runtime::GateAccelerator gate,
                               runtime::AnnealAccelerator annealer,
                               ServiceOptions options)
    : QuantumService(make_single_pool(std::move(gate), std::move(annealer)),
                     options) {}

QuantumService::~QuantumService() { shutdown(); }

// ---------------------------------------------------------- admission ----

std::shared_ptr<QuantumService::JobState> QuantumService::make_job(
    RunRequest request, Status* status) {
  auto job = std::make_shared<JobState>();
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (closing_) {
      *status = Status::Unavailable("QuantumService: submit after shutdown");
      return nullptr;
    }
    job->id = next_job_id_++;
    ++inflight_;
  }
  job->request = std::move(request);
  job->tenant = tenant_of(job->request);
  job->submitted = Clock::now();
  if (job->request.deadline)
    job->deadline_at = job->submitted + *job->request.deadline;
  job->future = job->promise.get_future().share();
  metrics_.gauge(tenant_metric("qs_tenant_inflight", job->tenant)).add(1);
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.emplace(job->id, job);
  }
  *status = Status::Ok();
  return job;
}

Status QuantumService::admit(const std::shared_ptr<JobState>& job,
                             bool blocking) {
  const int priority = job->request.priority;
  const bool admitted =
      blocking ? queue_.push(job, priority, job->tenant)
               : queue_.try_push(job, priority, job->tenant);
  if (!admitted) {
    // Blocking push only fails once the queue is closed; try_push also
    // fails on a full queue. Either way the job never ran.
    Status status =
        queue_.closed()
            ? Status::Unavailable("QuantumService: submit after shutdown")
            : Status::ResourceExhausted(
                  "QuantumService: queue full (depth " +
                  std::to_string(queue_.size()) + "/" +
                  std::to_string(queue_.capacity()) + ")");
    metrics_.counter("qs_jobs_rejected_total").inc();
    metrics_.counter(tenant_metric("qs_tenant_rejected_total", job->tenant))
        .inc();
    return status;
  }
  metrics_.counter("qs_jobs_submitted_total").inc();
  metrics_.counter(tenant_metric("qs_tenant_admitted_total", job->tenant))
      .inc();
  metrics_.gauge("qs_queue_depth")
      .set(static_cast<std::int64_t>(queue_.size()));
  return Status::Ok();
}

JobHandle QuantumService::rejected_handle(Status status,
                                          const std::string& tenant) {
  metrics_.counter("qs_jobs_rejected_total").inc();
  metrics_.counter(tenant_metric("qs_tenant_rejected_total", tenant)).inc();
  JobHandle handle;
  std::promise<RunResult> promise;
  handle.future_ = promise.get_future().share();
  RunResult result;
  result.status = std::move(status);
  promise.set_value(std::move(result));
  return handle;
}

JobHandle QuantumService::submit(RunRequest request) {
  return submit_impl(std::move(request), /*blocking=*/true);
}

JobHandle QuantumService::try_submit(RunRequest request) {
  return submit_impl(std::move(request), /*blocking=*/false);
}

JobHandle QuantumService::submit_impl(RunRequest request, bool blocking) {
  const std::string tenant = tenant_of(request);
  if (Status v = request.validate(); !v.ok())
    return rejected_handle(std::move(v), tenant);
  if (request.qubo && !backends_->primary(runtime::JobKind::Anneal))
    return rejected_handle(Status::FailedPrecondition(
        "QuantumService: no annealing accelerator attached"), tenant);

  // Exactly-once: a known idempotency_key attaches to the live job or is
  // served the stored result instead of re-running. The registry lock is
  // held through job registration so two racing duplicates cannot both
  // admit.
  std::unique_lock<std::mutex> idemp_lock(idemp_mutex_, std::defer_lock);
  std::uint64_t fingerprint = 0;
  if (!request.idempotency_key.empty()) {
    fingerprint = request_fingerprint(request, options_.shard_shots);
    idemp_lock.lock();
    auto it = idempotency_.find(request.idempotency_key);
    if (it != idempotency_.end()) {
      if (it->second.fingerprint != fingerprint) {
        idemp_lock.unlock();
        return rejected_handle(
            Status::InvalidArgument(
                "idempotency_key '" + request.idempotency_key +
                "' was already used with a different payload/seed/shot "
                "plan"),
            tenant);
      }
      if (it->second.result) {
        JobHandle handle;
        handle.id_ = it->second.job_id;
        std::promise<RunResult> promise;
        handle.future_ = promise.get_future().share();
        RunResult served = *it->second.result;
        served.stats.idempotent_hit = true;
        promise.set_value(std::move(served));
        idemp_lock.unlock();
        metrics_.counter("qs_idempotent_served_total").inc();
        return handle;
      }
      if (auto live = it->second.live.lock()) {
        // Attach: same id, same cancel scope, same future — the duplicate
        // and the original are one job.
        JobHandle handle;
        handle.id_ = live->id;
        handle.cancel_ = live->cancel;
        handle.future_ = live->future;
        idemp_lock.unlock();
        metrics_.counter("qs_idempotent_attached_total").inc();
        return handle;
      }
      // Stale registration (a simulated crash abandoned the job without a
      // stored result): fall through and run it for real.
    }
  }

  Status status;
  auto job = make_job(std::move(request), &status);
  if (!job) return rejected_handle(std::move(status), tenant);
  job->idemp_key = job->request.idempotency_key;
  if (idemp_lock.owns_lock()) {
    IdempotencyEntry entry;
    entry.job_id = job->id;
    entry.fingerprint = fingerprint;
    entry.live = job;
    idempotency_[job->idemp_key] = std::move(entry);
    idemp_lock.unlock();
  }

  JobHandle handle;
  handle.id_ = job->id;
  handle.cancel_ = job->cancel;
  handle.future_ = job->future;

  if (journal_) {
    // Journaled jobs always checkpoint: recovery resumes from completed
    // shards instead of re-running them, and the key is derived from the
    // job id so a recovered job finds its own snapshot.
    if (job->request.checkpoint_key.empty() && options_.checkpoint_store)
      job->request.checkpoint_key = "qsj-" + std::to_string(job->id);
    // WAL contract: the admitted record is durable before the caller gets
    // a handle back.
    job->journaled = journal_->append_admitted(job->id, job->request);
    if (!job->journaled)
      metrics_.counter("qs_journal_append_failures_total").inc();
  }

  if (crash_point_of(job->request) == runtime::CrashPoint::kAdmit) {
    job->crashed.store(true, std::memory_order_relaxed);
    metrics_.counter("qs_injected_crashes_total").inc();
    resolve_unadmitted(job, crash_status(runtime::CrashPoint::kAdmit));
    return handle;
  }

  if (Status admitted = admit(job, blocking); !admitted.ok())
    resolve_unadmitted(job, std::move(admitted));
  return handle;
}

// ------------------------------------------------------------ control ----

void QuantumService::pause() {
  std::lock_guard<std::mutex> lock(control_mutex_);
  paused_ = true;
}

void QuantumService::resume() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    paused_ = false;
  }
  control_cv_.notify_all();
}

void QuantumService::drain() {
  std::unique_lock<std::mutex> lock(control_mutex_);
  control_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void QuantumService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    closing_ = true;
  }
  control_cv_.notify_all();
  queue_.close();  // dispatcher drains remaining jobs, then exits
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.wait_idle();
  // The pool may be shared and outlive this service: stop its probe
  // thread and detach our metrics registry before the registry dies.
  backends_->stop_probing();
  backends_->attach_metrics(nullptr);
}

// --------------------------------------------------------- resolution ----

void QuantumService::resolve(const std::shared_ptr<JobState>& job,
                             RunResult result) {
  result.stats.journal_recovered = job->recovered;
  switch (result.status.code()) {
    case StatusCode::kOk:
      metrics_.counter("qs_jobs_completed_total").inc();
      metrics_
          .counter(result.kind == JobKind::Gate ? "qs_gate_shots_total"
                                                : "qs_anneal_reads_total")
          .inc(job->request.shots);
      metrics_.histogram("qs_job_run_us").observe(result.stats.run_us);
      break;
    case StatusCode::kCancelled:
      metrics_.counter("qs_jobs_cancelled_total").inc();
      break;
    case StatusCode::kDeadlineExceeded:
      metrics_.counter("qs_jobs_timed_out_total").inc();
      break;
    default:
      metrics_.counter("qs_jobs_failed_total").inc();
      break;
  }

  finalize_job(job, result);
  job->promise.set_value(std::move(result));
  job_done(job);
}

void QuantumService::resolve_unadmitted(const std::shared_ptr<JobState>& job,
                                        Status status) {
  // Never dispatched: the rejection was already counted in admit(), so
  // fulfil the promise directly without bumping a terminal-state metric.
  RunResult result;
  result.job_id = job->id;
  result.kind = job->request.kind();
  result.tag = job->request.tag;
  result.status = std::move(status);
  finalize_job(job, result);
  job->promise.set_value(std::move(result));
  job_done(job);
}

void QuantumService::finalize_job(const std::shared_ptr<JobState>& job,
                                  const RunResult& result) {
  const bool crashed = job->crashed.load(std::memory_order_relaxed);
  if (job->journaled && journal_ && !crashed) {
    if (!journal_->append_terminal(job->id, result))
      metrics_.counter("qs_journal_append_failures_total").inc();
  }
  if (job->idemp_key.empty()) return;
  std::lock_guard<std::mutex> lock(idemp_mutex_);
  auto it = idempotency_.find(job->idemp_key);
  if (it == idempotency_.end() || it->second.job_id != job->id) return;
  if (crashed) {
    // The simulated crash abandoned the job: drop the registration so a
    // resubmission runs it for real (in this process, or after a restart
    // through journal recovery).
    idempotency_.erase(it);
    return;
  }
  it->second.result = std::make_shared<const RunResult>(result);
  it->second.live.reset();
  idemp_order_.push_back(job->idemp_key);
  while (idemp_order_.size() > options_.journal_retention) {
    const std::string victim = std::move(idemp_order_.front());
    idemp_order_.pop_front();
    auto vit = idempotency_.find(victim);
    if (vit != idempotency_.end() && vit->second.result)
      idempotency_.erase(vit);
  }
}

void QuantumService::recover_from_journal() {
  JournalReplay replay = journal_->replay();
  if (replay.truncated_bytes > 0)
    metrics_.counter("qs_journal_truncated_bytes_total")
        .inc(replay.truncated_bytes);
  if (replay.records == 0) return;
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (replay.max_job_id >= next_job_id_)
      next_job_id_ = replay.max_job_id + 1;
  }
  // Compact before consuming the replay: the rewritten file keeps the
  // admitted records of everything re-enqueued below, so a crash during
  // recovery just recovers again.
  journal_->compact(replay);

  // Finished keyed jobs: register their stored results so a duplicate
  // idempotency_key after the restart is served without re-running.
  for (JournalReplay::FinishedJob& fin : replay.finished) {
    if (fin.request.idempotency_key.empty()) continue;
    IdempotencyEntry entry;
    entry.job_id = fin.job_id;
    entry.fingerprint =
        request_fingerprint(fin.request, options_.shard_shots);
    entry.result = std::make_shared<const RunResult>(std::move(fin.result));
    std::lock_guard<std::mutex> lock(idemp_mutex_);
    idemp_order_.push_back(fin.request.idempotency_key);
    idempotency_[fin.request.idempotency_key] = std::move(entry);
  }

  // In-flight jobs: re-enqueue under their original ids. Their (auto-
  // assigned) checkpoint keys limit re-execution to unfinished shards.
  std::size_t recovered = 0;
  for (JournalReplay::InflightJob& inflight : replay.inflight) {
    auto job = std::make_shared<JobState>();
    job->id = inflight.job_id;
    job->request = std::move(inflight.request);
    job->tenant = tenant_of(job->request);
    job->submitted = Clock::now();
    // The deadline budget re-arms from recovery time — the original
    // submission instant did not survive the crash, and failing a
    // recovered job for time spent dead helps nobody.
    if (job->request.deadline)
      job->deadline_at = job->submitted + *job->request.deadline;
    job->future = job->promise.get_future().share();
    job->journaled = true;
    job->recovered = true;
    job->idemp_key = job->request.idempotency_key;
    {
      std::lock_guard<std::mutex> lock(control_mutex_);
      ++inflight_;
    }
    metrics_.gauge(tenant_metric("qs_tenant_inflight", job->tenant)).add(1);
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_.emplace(job->id, job);
    }
    if (!job->idemp_key.empty()) {
      IdempotencyEntry entry;
      entry.job_id = job->id;
      entry.fingerprint =
          request_fingerprint(job->request, options_.shard_shots);
      entry.live = job;
      std::lock_guard<std::mutex> lock(idemp_mutex_);
      idempotency_[job->idemp_key] = std::move(entry);
    }
    if (queue_.try_push(job, job->request.priority, job->tenant)) {
      ++recovered;
    } else {
      // Over-capacity recovery (this process has a smaller queue than the
      // one that crashed): fail the job terminally so it stops recurring
      // on every restart.
      resolve_unadmitted(
          job, Status::ResourceExhausted(
                   "recovered job " + std::to_string(job->id) +
                   " exceeds queue capacity " +
                   std::to_string(queue_.capacity())));
    }
  }
  if (recovered > 0) {
    metrics_.counter("qs_journal_recovered_jobs_total").inc(recovered);
    QS_LOG(LogLevel::Info, "service",
           "journal: recovered " << recovered << " in-flight job(s), "
                                 << replay.finished.size()
                                 << " finished record(s) replayed");
  }
}

void QuantumService::resolve_at_dispatch(
    const std::shared_ptr<JobState>& job, Status status) {
  RunResult result;
  result.job_id = job->id;
  result.kind = job->request.kind();
  result.tag = job->request.tag;
  result.status = std::move(status);
  result.stats.queue_wait_us = job->wait_us;
  result.stats.dispatch_seq = job->dispatch_seq;
  result.stats.run_us = us_between(job->dispatched, Clock::now());
  resolve(job, std::move(result));
}

void QuantumService::note_failure(const std::shared_ptr<JobState>& job,
                                  Status status) {
  {
    std::lock_guard<std::mutex> lock(job->merge_mutex);
    if (job->status.ok()) job->status = std::move(status);
  }
  job->abort.store(true, std::memory_order_release);
}

// ----------------------------------------------------------- dispatch ----

void QuantumService::dispatcher_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(control_mutex_);
      control_cv_.wait(lock, [&] { return !paused_ || closing_; });
    }
    std::optional<std::shared_ptr<JobState>> job = queue_.pop();
    if (!job) return;  // queue closed and drained
    metrics_.gauge("qs_queue_depth")
        .set(static_cast<std::int64_t>(queue_.size()));
    dispatch(*job);
  }
}

void QuantumService::dispatch(const std::shared_ptr<JobState>& job) {
  job->dispatched = Clock::now();
  job->dispatch_seq = ++dispatch_counter_;
  job->wait_us = us_between(job->submitted, job->dispatched);
  metrics_.histogram("qs_job_wait_us").observe(job->wait_us);
  metrics_
      .histogram("qs_queue_wait_seconds",
                 LatencyHistogram::default_seconds_bounds())
      .observe(job->wait_us / 1e6);
  if (job->request.deadline) {
    // Fraction of the deadline budget consumed while waiting in queue:
    // > 1 means the job expired before it ever ran (capacity signal).
    metrics_
        .histogram("qs_deadline_wait_fraction",
                   MetricsRegistry::fraction_bounds())
        .observe(job->wait_us / us_of(*job->request.deadline));
  }

  // Rejected-on-dequeue paths: never compile, never shard.
  if (job->cancel.cancel_requested()) {
    resolve_at_dispatch(job,
                        Status::Cancelled("job cancelled before dispatch"));
    return;
  }
  if (job->deadline_at && job->dispatched > *job->deadline_at) {
    resolve_at_dispatch(
        job, Status::DeadlineExceeded(
                 "deadline expired in queue after " +
                 std::to_string(static_cast<long long>(job->wait_us)) +
                 "us (budget " +
                 std::to_string(static_cast<long long>(
                     us_of(*job->request.deadline))) +
                 "us)"));
    return;
  }

  if (job->journaled && journal_) {
    if (!journal_->append_dispatched(job->id))
      metrics_.counter("qs_journal_append_failures_total").inc();
  }
  if (crash_point_of(job->request) == runtime::CrashPoint::kDispatch) {
    // Simulated death between the dispatched record and the first shard:
    // recovery re-runs the job from shard zero.
    job->crashed.store(true, std::memory_order_relaxed);
    metrics_.counter("qs_injected_crashes_total").inc();
    resolve_at_dispatch(job, crash_status(runtime::CrashPoint::kDispatch));
    return;
  }

  const RunRequest& req = job->request;
  if (req.kind() == JobKind::Gate) {
    if (!job->request.program) {
      // Raw-source submission: parse here so malformed cQASM maps to a
      // typed kInvalidArgument in the result, never an exception.
      StatusOr<qasm::Program> parsed =
          qasm::Parser::parse_or_status(*job->request.program_text);
      if (!parsed.ok()) {
        resolve_at_dispatch(job, parsed.status());
        return;
      }
      job->request.program = std::move(*parsed);
    }
    if (req.program->qubit_count() > primary_gate_->qubit_count()) {
      resolve_at_dispatch(
          job, Status::InvalidArgument(
                   "program needs " +
                   std::to_string(req.program->qubit_count()) +
                   " qubits, platform has " +
                   std::to_string(primary_gate_->qubit_count())));
      return;
    }
    if (req.faults && req.faults->fail_compile) {
      resolve_at_dispatch(
          job, Status::Internal("injected compile failure (FaultPlan)"));
      return;
    }
    try {
      job->entry =
          resolve_compiled(*req.program, &job->cache_hit, &job->compile_tier);
    } catch (const std::exception& e) {
      resolve_at_dispatch(job, Status::InvalidArgument(
                                   std::string("compile failed: ") +
                                   e.what()));
      return;
    } catch (...) {
      resolve_at_dispatch(job,
                          Status::Internal("compile failed: unknown error"));
      return;
    }
    // Sampling-path election. Purely a function of the analysis verdict —
    // never of the FaultPlan or the backend route: sampled shards still
    // traverse the full retry/failover machinery, so a faulted run stays
    // byte-identical to a clean one.
    if (options_.sampling_enabled && job->entry->analysis.samplable) {
      job->sampled = true;
      job->final_key = final_state_key(
          job->entry->key, primary_gate_->platform().qubit_model,
          primary_gate_->sim_options().fused_kernels, req.precision,
          job->entry->fused != nullptr);
      metrics_.counter("qs_jobs_sampled_total").inc();
    } else {
      const sim::SamplingFallback reason =
          options_.sampling_enabled ? job->entry->analysis.fallback
                                    : sim::SamplingFallback::kDisabled;
      metrics_
          .counter(std::string("qs_sampling_fallback_total{reason=\"") +
                   sim::to_string(reason) + "\"}")
          .inc();
    }
  }

  metrics_.counter("qs_jobs_dispatched_total").inc();
  if (req.kind() == JobKind::Gate) {
    metrics_
        .counter(std::string("qs_jobs_by_precision_total{tier=\"") +
                 to_string(req.precision) + "\"}")
        .inc();
    if (job->entry && job->entry->fused) {
      const sim::FusionStats& fs = job->entry->fused->stats;
      metrics_.counter("qs_fused_jobs_total").inc();
      if (fs.input_gates >= fs.output_ops)
        metrics_.counter("qs_fused_gates_saved_total")
            .inc(fs.input_gates - fs.output_ops);
    }
  }
  {
    // progress() may be reading concurrently from a gateway stream.
    std::lock_guard<std::mutex> lock(job->merge_mutex);
    job->shards = shard_count(req.shots, options_.shard_shots);
    job->shard_done.assign(job->shards, 0);
  }

  // Checkpoint resume: restore the merged partials of a previous
  // submission with the same key, provided the fingerprint proves the
  // payload/seed/shot/shard plan is unchanged. Anything else starts fresh.
  if (!req.checkpoint_key.empty() && options_.checkpoint_store) {
    job->checkpoint_fp = checkpoint_fingerprint(req, options_.shard_shots);
    std::optional<JobCheckpoint> cp =
        options_.checkpoint_store->load(req.checkpoint_key);
    if (cp && cp->fingerprint == job->checkpoint_fp &&
        cp->shards == job->shards && cp->shard_done.size() == job->shards) {
      std::lock_guard<std::mutex> lock(job->merge_mutex);
      job->merged = std::move(cp->merged);
      job->shard_done = std::move(cp->shard_done);
      job->has_best = cp->has_best;
      job->best_energy = cp->best_energy;
      job->best_read = cp->best_read;
      job->best_solution = std::move(cp->best_solution);
      for (char d : job->shard_done) job->shards_resumed += d ? 1 : 0;
      if (job->shards_resumed > 0) {
        metrics_.counter("qs_shards_resumed_total")
            .inc(job->shards_resumed);
        job->progress_seq.fetch_add(job->shards_resumed,
                                    std::memory_order_relaxed);
      }
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < job->shards; ++i)
    if (!job->shard_done[i]) pending.push_back(i);
  QS_LOG(LogLevel::Debug, "service",
         "dispatch job " << job->id << " (" << to_string(req.kind()) << ", "
                         << req.shots << " shots, " << job->shards
                         << " shards, " << job->shards_resumed
                         << " resumed, cache_hit=" << job->cache_hit << ")");

  if (pending.empty()) {
    // Every shard was restored from the checkpoint: assemble directly.
    job->remaining.store(1, std::memory_order_relaxed);
    finish_shard(job);
    return;
  }

  job->remaining.store(pending.size(), std::memory_order_relaxed);
  const bool is_gate = req.kind() == JobKind::Gate;
  for (std::size_t i : pending) {
    pool_.submit([this, job, i, is_gate] {
      if (is_gate)
        run_gate_shard(job, i);
      else
        run_anneal_shard(job, i);
    });
  }
}

void QuantumService::record_store_outcome(const store::Outcome& outcome) {
  // Unified observability for the artifact store, labelled by tier. The
  // per-cache legacy names (qs_cache_*, qs_final_state_cache_*) keep
  // emitting for one release — docs/artifact_store.md has the mapping.
  if (outcome.tier == store::Tier::kMemory)
    metrics_.counter("qs_store_hits_total{tier=\"memory\"}").inc();
  else if (outcome.tier == store::Tier::kDisk)
    metrics_.counter("qs_store_hits_total{tier=\"disk\"}").inc();
  if (outcome.memory_missed)
    metrics_.counter("qs_store_misses_total{tier=\"memory\"}").inc();
  if (outcome.disk_missed)
    metrics_.counter("qs_store_misses_total{tier=\"disk\"}").inc();
  if (outcome.corrupt) metrics_.counter("qs_store_corrupt_total").inc();
  if (outcome.evicted > 0)
    metrics_.counter("qs_store_evictions_total{tier=\"memory\"}")
        .inc(outcome.evicted);
  if (outcome.oversized)
    metrics_.counter("qs_store_oversized_total{tier=\"memory\"}").inc();
  if (outcome.wrote_disk) metrics_.counter("qs_store_writes_total").inc();
  if (outcome.disk_write_failed)
    metrics_.counter("qs_store_write_failures_total").inc();
  if (outcome.disk_degraded)
    metrics_.counter("qs_store_degraded_skips_total").inc();
  metrics_.gauge("qs_store_disk_degraded")
      .set(store_->disk_degraded() ? 1 : 0);
}

std::shared_ptr<const CompiledEntry> QuantumService::resolve_compiled(
    const qasm::Program& program, bool* cache_hit,
    runtime::CacheTier* tier) {
  *cache_hit = false;
  *tier = runtime::CacheTier::kNone;
  const std::string text = qasm::to_cqasm(program);
  const std::uint64_t key = compiled_program_key(
      text, compiler::fingerprint(primary_gate_->platform()),
      compiler::fingerprint(primary_gate_->options()));

  if (options_.cache_enabled) {
    store::Outcome outcome;
    auto entry = cache_.lookup(key, &outcome);
    record_store_outcome(outcome);
    if (entry) {
      *cache_hit = true;
      *tier = to_cache_tier(outcome.tier);
      metrics_.counter("qs_cache_hits_total").inc();
      return entry;
    }
    metrics_.counter("qs_cache_misses_total").inc();
  }

  auto entry = std::make_shared<CompiledEntry>();
  entry->key = key;
  entry->compiled = primary_gate_->compile_const(program);
  // Pre-assemble eQASM when any pool backend takes the micro-arch route —
  // a shard may fail over to such a backend even if the primary is Direct.
  if (backends_->any_microarch())
    entry->eqasm = std::make_shared<const microarch::EqProgram>(
        primary_gate_->assemble(entry->compiled));
  // Flatten, validate and analyze once per compiled program: shards run
  // the cached stream directly, and the dispatcher reads the cached
  // verdict to elect the sampling fast path.
  entry->compiled.program.validate();
  entry->flat = entry->compiled.program.flatten();
  entry->analysis = sim::analyze_trajectory(
      entry->flat, primary_gate_->platform().qubit_count,
      primary_gate_->platform().qubit_model);
  fuse_compiled_entry(*entry, primary_gate_->platform().qubit_model);
  if (options_.cache_enabled) {
    store::Outcome outcome;
    cache_.insert(key, entry, &outcome);
    record_store_outcome(outcome);
  }
  return entry;
}

std::size_t QuantumService::effective_sim_threads(
    std::size_t job_threads) const {
  // Per-job budget wins over the service default; both resolve
  // QS_SIM_THREADS when zero (sim::resolve_sim_threads handles that).
  const std::size_t want = sim::resolve_sim_threads(
      job_threads != 0 ? job_threads : options_.sim_threads);
  if (!options_.clamp_sim_threads) return want;
  // Shard workers already fan out across cores: cap kernel threads per
  // shard at hardware_concurrency / workers so total threads stay at or
  // below the core count. Bit-identity makes this clamp output-invisible.
  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  const std::size_t per_shard =
      std::max<std::size_t>(hw / std::max<std::size_t>(pool_.thread_count(), 1),
                            1);
  return std::min(want, per_shard);
}

// ------------------------------------------------------------- shards ----

CancelToken QuantumService::attempt_token(const JobState& job) const {
  std::optional<Clock::time_point> deadline = job.deadline_at;
  if (options_.shard_time_budget.count() > 0) {
    const Clock::time_point watchdog_at =
        Clock::now() + options_.shard_time_budget;
    if (!deadline || watchdog_at < *deadline) deadline = watchdog_at;
  }
  return job.cancel.token(deadline);
}

void QuantumService::save_checkpoint_locked(JobState& job) {
  if (job.checkpoint_fp == 0 || !options_.checkpoint_store) return;
  JobCheckpoint cp;
  cp.fingerprint = job.checkpoint_fp;
  cp.shards = job.shards;
  cp.shard_done = job.shard_done;
  cp.merged = job.merged;
  cp.has_best = job.has_best;
  cp.best_energy = job.best_energy;
  cp.best_read = job.best_read;
  cp.best_solution = job.best_solution;
  if (options_.checkpoint_store->save(job.request.checkpoint_key, cp).ok())
    metrics_.counter("qs_checkpoint_saves_total").inc();
  else
    metrics_.counter("qs_checkpoint_save_failures_total").inc();
}

void QuantumService::ensure_final_distribution(
    const std::shared_ptr<JobState>& job, const CancelToken& token) {
  // call_once: on a thrown CancelledError the flag stays unset, so a
  // retried attempt (or another shard) re-runs the lookup/evolution under
  // its own token instead of every shard inheriting the failure.
  std::call_once(job->dist_once, [&] {
    const bool cache_on = options_.final_state_cache_enabled;
    if (cache_on) {
      store::Outcome outcome;
      auto dist = final_cache_.lookup(job->final_key, &outcome);
      record_store_outcome(outcome);
      if (dist) {
        metrics_.counter("qs_final_state_cache_hits_total").inc();
        job->final_cache_hit = true;
        job->final_tier = to_cache_tier(outcome.tier);
        job->final_dist = std::move(dist);
        return;
      }
      metrics_.counter("qs_final_state_cache_misses_total").inc();
    }
    sim::SimOptions sim_options = primary_gate_->sim_options();
    sim_options.threads = effective_sim_threads(job->request.sim_threads);
    sim_options.precision = job->request.precision;
    sim_options.cancel = token;
    auto dist = std::make_shared<const sim::FinalDistribution>(
        primary_gate_->final_distribution(job->entry->flat,
                                          job->entry->analysis, sim_options,
                                          job->entry->fused.get()));
    if (cache_on) {
      store::Outcome outcome;
      const std::size_t evicted =
          final_cache_.insert(job->final_key, dist, &outcome);
      record_store_outcome(outcome);
      if (evicted > 0)
        metrics_.counter("qs_final_state_cache_evictions_total").inc(evicted);
      if (outcome.oversized)
        metrics_.counter("qs_final_state_cache_oversized_total").inc();
    }
    job->final_dist = std::move(dist);
  });
}

void QuantumService::run_gate_shard(const std::shared_ptr<JobState>& job,
                                    std::size_t shard_index) {
  const RunRequest& req = job->request;
  const std::size_t begin = shard_index * options_.shard_shots;
  const std::size_t count = std::min(options_.shard_shots, req.shots - begin);
  // Retries and failovers re-derive the same stream: the seed is a pure
  // function of (job seed, shard index) — never of the attempt count or
  // of which backend runs the shard — so a job that succeeds after
  // retries or re-routing produces the histogram of a job that never
  // failed, on whatever backend.
  const std::uint64_t seed = derive_stream_seed(req.seed, shard_index);
  const std::size_t planned_failures =
      req.faults ? req.faults->failures_for(shard_index) : 0;

  std::size_t transient_attempt = 0;  // same-route retries (TransientError)
  std::size_t failover_count = 0;     // re-routes to another backend
  std::string exclude;                // backend the last attempt failed on

  // Re-route the shard after a backend-level failure; returns false once
  // the failover budget is spent (the shard then fails terminally).
  const auto fail_over = [&](Backend& backend, const std::string& reason,
                             bool quarantine_backend) {
    if (quarantine_backend)
      backends_->quarantine(backend);
    else
      backends_->record_failure(backend);
    exclude = backend.name;
    metrics_.counter("qs_backend_failovers_total").inc();
    job->failovers.fetch_add(1, std::memory_order_relaxed);
    if (++failover_count > options_.max_shard_failovers) {
      note_failure(job, Status::Unavailable(
                            "shard " + std::to_string(shard_index) + ": " +
                            reason + " (failover budget exhausted after " +
                            std::to_string(failover_count) + " re-routes)"));
      return false;
    }
    return true;
  };

  for (;;) {
    if (job->abort.load(std::memory_order_acquire)) break;
    if (job->cancel.cancel_requested()) {
      note_failure(job, Status::Cancelled("job cancelled mid-run"));
      break;
    }
    if (job->deadline_at && Clock::now() > *job->deadline_at) {
      note_failure(job,
                   Status::DeadlineExceeded("deadline expired mid-run"));
      break;
    }

    std::shared_ptr<Backend> backend =
        backends_->acquire(JobKind::Gate, exclude);
    if (!backend) {
      note_failure(job, Status::Unavailable(
                            "shard " + std::to_string(shard_index) +
                            ": no healthy gate backend in the pool"));
      break;
    }
    // The measured register is as wide as the backend's platform: a
    // 4-qubit program on an 8-qubit device still reads out all 8 lines.
    // Shard sanity checks must use that width, not the program's.
    const std::size_t arity = backend->gate->qubit_count();
    // Watchdog: the attempt runs under the job deadline tightened by the
    // per-shard time budget; expiry cancels the kernel at the next shot
    // boundary and the shard re-routes instead of hanging the worker.
    const CancelToken token = attempt_token(*job);

    try {
      if (req.faults && req.faults->shard_latency.count() > 0)
        std::this_thread::sleep_for(req.faults->shard_latency);
      if (transient_attempt < planned_failures)
        throw TransientError("injected fault: shard " +
                             std::to_string(shard_index) + " attempt " +
                             std::to_string(transient_attempt));
      if (req.faults && req.faults->backend_fault(
                            backend->name, runtime::BackendFaultKind::kCrash))
        throw BackendError("injected crash on backend '" + backend->name +
                           "'");
      if (req.faults &&
          req.faults->backend_fault(backend->name,
                                    runtime::BackendFaultKind::kStuckShard)) {
        // Stall until the watchdog, the job deadline or a cancel fires —
        // a stuck shard with none of the three configured stays stuck,
        // which is exactly what the watchdog budget exists to prevent.
        while (!token.stop_requested())
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        throw_if_stopped(token);
      }

      sim::SimOptions sim_options = backend->gate->sim_options();
      sim_options.threads = effective_sim_threads(req.sim_threads);
      sim_options.precision = req.precision;
      sim_options.cancel = token;
      sim_options.sampling = options_.sampling_enabled;
      Histogram shard;
      if (job->sampled) {
        // Sampling fast path: the job's shared distribution (cached, or
        // computed once under dist_once) replaces the trajectory loop.
        // Everything around the execution call — backend acquire, fault
        // injection, validation, retries, failover accounting — is
        // unchanged, and the shard's counter-derived stream makes the
        // draws identical to what any other route would produce.
        ensure_final_distribution(job, token);
        shard = sim::sample_histogram(*job->final_dist, count, seed, token);
      } else if (backend->gate->path() == runtime::GatePath::MicroArch) {
        shard = job->entry->eqasm
                    ? backend->gate->run_eqasm(*job->entry->eqasm, count,
                                               seed, sim_options)
                    : backend->gate->run_compiled(job->entry->compiled, count,
                                                  seed, sim_options);
      } else {
        // Pre-flattened stream from the compiled entry: no per-shard
        // flatten()/validate(); the entry's fused program (null under a
        // stochastic model) replaces the raw stream. With a micro-arch
        // backend anywhere in the pool the shard runs unfused: a
        // failover re-route onto the eQASM path (which executes the raw
        // gate stream) must reproduce this shard's histogram byte for
        // byte, and fusion changes the evolved doubles.
        const sim::FusedProgram* fused =
            backends_->any_microarch() ? nullptr : job->entry->fused.get();
        shard = backend->gate->run_flat(job->entry->flat,
                                        job->entry->analysis, count, seed,
                                        sim_options, fused);
      }
      if (req.faults &&
          req.faults->backend_fault(
              backend->name, runtime::BackendFaultKind::kCorruptHistogram))
        shard.add(std::string(arity + 1, '1'));  // wrong-arity poison key

      if (Status valid = validate_shard_histogram(shard, count, arity);
          !valid.ok()) {
        // Result-level corruption: the backend lied without failing, so
        // it is quarantined outright and the shard re-runs elsewhere
        // (same seed — the merged histogram cannot tell the difference).
        if (!fail_over(*backend,
                       "invalid shard result: " + valid.message(),
                       /*quarantine_backend=*/true))
          break;
        continue;
      }

      backends_->record_success(*backend);
      job->shards_executed.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(job->merge_mutex);
        for (const auto& [bits, n] : shard.counts())
          job->merged.add(bits, n);
        if (shard_index < job->shard_done.size())
          job->shard_done[shard_index] = 1;
        job->progress_seq.fetch_add(1, std::memory_order_relaxed);
        save_checkpoint_locked(*job);
      }
      // Simulated mid-run death: this shard's checkpoint is on disk, the
      // terminal record never will be — recovery resumes from here.
      if (crash_point_of(req) == runtime::CrashPoint::kMidShard &&
          !job->crashed.exchange(true, std::memory_order_relaxed)) {
        metrics_.counter("qs_injected_crashes_total").inc();
        note_failure(job, crash_status(runtime::CrashPoint::kMidShard));
      }
      break;
    } catch (const CancelledError& e) {
      const bool job_cancelled = job->cancel.cancel_requested();
      const bool job_deadline_hit =
          job->deadline_at && Clock::now() > *job->deadline_at;
      if (e.deadline_expired() && !job_cancelled && !job_deadline_hit) {
        // The watchdog (not the job deadline) fired: the backend was too
        // slow or stuck. Blame it and re-route.
        if (!fail_over(*backend, "watchdog: shard exceeded time budget",
                       /*quarantine_backend=*/false))
          break;
        continue;
      }
      note_failure(job, e.deadline_expired() && !job_cancelled
                            ? Status::DeadlineExceeded(
                                  "deadline expired mid-run")
                            : Status::Cancelled("job cancelled mid-run"));
      break;
    } catch (const BackendError& e) {
      if (!fail_over(*backend, e.what(), /*quarantine_backend=*/false))
        break;
      continue;
    } catch (const TransientError& e) {
      if (transient_attempt >= options_.max_shard_retries) {
        note_failure(job, Status::Unavailable(
                              "shard " + std::to_string(shard_index) +
                              " failed after " +
                              std::to_string(transient_attempt + 1) +
                              " attempts: " + e.what()));
        break;
      }
      job->retries.fetch_add(1, std::memory_order_relaxed);
      metrics_.counter("qs_shard_retries_total").inc();
      std::this_thread::sleep_for(
          options_.retry_backoff.delay(transient_attempt));
      ++transient_attempt;
    } catch (const std::exception& e) {
      backends_->record_failure(*backend);
      note_failure(job,
                   Status::Internal(std::string("shard failed: ") + e.what()));
      break;
    } catch (...) {
      backends_->record_failure(*backend);
      note_failure(job, Status::Internal("shard failed: unknown exception"));
      break;
    }
  }
  finish_shard(job);
}

void QuantumService::run_anneal_shard(const std::shared_ptr<JobState>& job,
                                      std::size_t shard_index) {
  const RunRequest& req = job->request;
  const std::size_t begin = shard_index * options_.shard_shots;
  const std::size_t end = std::min(begin + options_.shard_shots, req.shots);
  const std::size_t arity = req.qubo->size();
  const std::size_t planned_failures =
      req.faults ? req.faults->failures_for(shard_index) : 0;

  std::size_t transient_attempt = 0;
  std::size_t failover_count = 0;
  std::string exclude;

  const auto fail_over = [&](Backend& backend, const std::string& reason,
                             bool quarantine_backend) {
    if (quarantine_backend)
      backends_->quarantine(backend);
    else
      backends_->record_failure(backend);
    exclude = backend.name;
    metrics_.counter("qs_backend_failovers_total").inc();
    job->failovers.fetch_add(1, std::memory_order_relaxed);
    if (++failover_count > options_.max_shard_failovers) {
      note_failure(job, Status::Unavailable(
                            "shard " + std::to_string(shard_index) + ": " +
                            reason + " (failover budget exhausted after " +
                            std::to_string(failover_count) + " re-routes)"));
      return false;
    }
    return true;
  };

  for (;;) {
    if (job->abort.load(std::memory_order_acquire)) break;
    if (job->cancel.cancel_requested()) {
      note_failure(job, Status::Cancelled("job cancelled mid-run"));
      break;
    }
    if (job->deadline_at && Clock::now() > *job->deadline_at) {
      note_failure(job,
                   Status::DeadlineExceeded("deadline expired mid-run"));
      break;
    }

    std::shared_ptr<Backend> backend =
        backends_->acquire(JobKind::Anneal, exclude);
    if (!backend) {
      note_failure(job, Status::Unavailable(
                            "shard " + std::to_string(shard_index) +
                            ": no healthy anneal backend in the pool"));
      break;
    }
    const CancelToken token = attempt_token(*job);

    try {
      if (req.faults && req.faults->shard_latency.count() > 0)
        std::this_thread::sleep_for(req.faults->shard_latency);
      if (transient_attempt < planned_failures)
        throw TransientError("injected fault: shard " +
                             std::to_string(shard_index) + " attempt " +
                             std::to_string(transient_attempt));
      if (req.faults && req.faults->backend_fault(
                            backend->name, runtime::BackendFaultKind::kCrash))
        throw BackendError("injected crash on backend '" + backend->name +
                           "'");
      if (req.faults &&
          req.faults->backend_fault(backend->name,
                                    runtime::BackendFaultKind::kStuckShard)) {
        while (!token.stop_requested())
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        throw_if_stopped(token);
      }
      // Accumulate locally and merge once at the end: keeps the job state
      // untouched until the shard is known-good, so a retried attempt can
      // never double-count its completed reads.
      Histogram local;
      bool local_has_best = false;
      double local_best_energy = 0.0;
      std::uint64_t local_best_read = 0;
      std::vector<int> local_best;
      for (std::size_t read = begin; read < end; ++read) {
        throw_if_stopped(token);
        // Per-read (not per-shard) stream: each anneal is an independent
        // restart, and per-read seeding keeps the best-of-N reduction
        // identical however reads are grouped into shards — and whichever
        // backend runs them.
        Rng rng(derive_stream_seed(req.seed, read));
        // The token reaches the annealer's sweep loop: a deadline or
        // cancel (or the watchdog) stops a QUBO job mid-anneal instead of
        // waiting out the full schedule.
        const runtime::AnnealOutcome outcome =
            backend->annealer->solve(*req.qubo, rng, token);
        local.add(solution_bits(outcome.solution));
        const bool better = !local_has_best ||
                            outcome.energy < local_best_energy ||
                            (outcome.energy == local_best_energy &&
                             read < local_best_read);
        if (better) {
          local_has_best = true;
          local_best_energy = outcome.energy;
          local_best_read = read;
          local_best = outcome.solution;
        }
      }
      if (req.faults &&
          req.faults->backend_fault(
              backend->name, runtime::BackendFaultKind::kCorruptHistogram))
        local.add(std::string(arity + 1, '1'));

      if (Status valid =
              validate_shard_histogram(local, end - begin, arity);
          !valid.ok()) {
        if (!fail_over(*backend,
                       "invalid shard result: " + valid.message(),
                       /*quarantine_backend=*/true))
          break;
        continue;
      }

      backends_->record_success(*backend);
      job->shards_executed.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(job->merge_mutex);
        for (const auto& [bits, n] : local.counts())
          job->merged.add(bits, n);
        if (local_has_best) {
          const bool better = !job->has_best ||
                              local_best_energy < job->best_energy ||
                              (local_best_energy == job->best_energy &&
                               local_best_read < job->best_read);
          if (better) {
            job->has_best = true;
            job->best_energy = local_best_energy;
            job->best_read = local_best_read;
            job->best_solution = std::move(local_best);
          }
        }
        if (shard_index < job->shard_done.size())
          job->shard_done[shard_index] = 1;
        job->progress_seq.fetch_add(1, std::memory_order_relaxed);
        save_checkpoint_locked(*job);
      }
      // Simulated mid-run death — see run_gate_shard.
      if (crash_point_of(req) == runtime::CrashPoint::kMidShard &&
          !job->crashed.exchange(true, std::memory_order_relaxed)) {
        metrics_.counter("qs_injected_crashes_total").inc();
        note_failure(job, crash_status(runtime::CrashPoint::kMidShard));
      }
      break;
    } catch (const CancelledError& e) {
      const bool job_cancelled = job->cancel.cancel_requested();
      const bool job_deadline_hit =
          job->deadline_at && Clock::now() > *job->deadline_at;
      if (e.deadline_expired() && !job_cancelled && !job_deadline_hit) {
        if (!fail_over(*backend, "watchdog: shard exceeded time budget",
                       /*quarantine_backend=*/false))
          break;
        continue;
      }
      note_failure(job, e.deadline_expired() && !job_cancelled
                            ? Status::DeadlineExceeded(
                                  "deadline expired mid-run")
                            : Status::Cancelled("job cancelled mid-run"));
      break;
    } catch (const BackendError& e) {
      if (!fail_over(*backend, e.what(), /*quarantine_backend=*/false))
        break;
      continue;
    } catch (const TransientError& e) {
      if (transient_attempt >= options_.max_shard_retries) {
        note_failure(job, Status::Unavailable(
                              "shard " + std::to_string(shard_index) +
                              " failed after " +
                              std::to_string(transient_attempt + 1) +
                              " attempts: " + e.what()));
        break;
      }
      job->retries.fetch_add(1, std::memory_order_relaxed);
      metrics_.counter("qs_shard_retries_total").inc();
      std::this_thread::sleep_for(
          options_.retry_backoff.delay(transient_attempt));
      ++transient_attempt;
    } catch (const std::exception& e) {
      backends_->record_failure(*backend);
      note_failure(job,
                   Status::Internal(std::string("shard failed: ") + e.what()));
      break;
    } catch (...) {
      backends_->record_failure(*backend);
      note_failure(job, Status::Internal("shard failed: unknown exception"));
      break;
    }
  }
  finish_shard(job);
}

void QuantumService::finish_shard(const std::shared_ptr<JobState>& job) {
  if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Last shard out assembles and publishes the result. The acq_rel
  // decrement chain orders every shard's writes before this read.
  RunResult result;
  result.job_id = job->id;
  result.kind = job->request.kind();
  result.tag = job->request.tag;
  {
    // progress() snapshots may still be racing the final shard.
    std::lock_guard<std::mutex> lock(job->merge_mutex);
    result.status = job->status;
    result.histogram = std::move(job->merged);
    result.best_solution = std::move(job->best_solution);
  }
  result.best_energy = job->best_energy;
  result.stats.queue_wait_us = job->wait_us;
  result.stats.run_us = us_between(job->dispatched, Clock::now());
  result.stats.compile_cache_hit = job->cache_hit;
  result.stats.retries = job->retries.load(std::memory_order_relaxed);
  result.stats.shards = job->shards;
  result.stats.dispatch_seq = job->dispatch_seq;
  result.stats.failovers = job->failovers.load(std::memory_order_relaxed);
  result.stats.shards_resumed = job->shards_resumed;
  result.stats.shards_executed =
      job->shards_executed.load(std::memory_order_relaxed);
  result.stats.compile_cache_tier = job->compile_tier;
  result.stats.sampled = job->sampled;
  result.stats.precision = job->request.precision;
  if (job->entry && job->entry->fused) {
    const sim::FusionStats& fs = job->entry->fused->stats;
    result.stats.fused_gates = fs.input_gates;
    result.stats.fused_ops = fs.output_ops;
    result.stats.fused_max_run = fs.max_run;
  }
  result.stats.final_state_cache_hit = job->final_cache_hit;
  result.stats.final_state_cache_tier = job->final_tier;
  // Simulated pre-completion death: every shard ran and checkpointed, but
  // the result never reaches the journal or the client — recovery
  // reassembles it from the checkpoint alone (the non-OK status below
  // also keeps the checkpoint from being removed).
  if (result.status.ok() &&
      crash_point_of(job->request) == runtime::CrashPoint::kPreComplete &&
      !job->crashed.exchange(true, std::memory_order_relaxed)) {
    metrics_.counter("qs_injected_crashes_total").inc();
    result.status = crash_status(runtime::CrashPoint::kPreComplete);
  }
  // A finished job's checkpoint has served its purpose; a failed,
  // cancelled or timed-out job keeps its snapshot so a resubmission with
  // the same key resumes from the completed shards.
  if (job->checkpoint_fp != 0 && options_.checkpoint_store &&
      result.status.ok())
    options_.checkpoint_store->remove(job->request.checkpoint_key);
  resolve(job, std::move(result));
}

void QuantumService::job_done(const std::shared_ptr<JobState>& job) {
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.erase(job->id);
  }
  metrics_.gauge(tenant_metric("qs_tenant_inflight", job->tenant)).add(-1);
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    --inflight_;
    if (inflight_ != 0) return;
  }
  control_cv_.notify_all();
}

std::optional<JobProgress> QuantumService::progress(
    std::uint64_t job_id) const {
  std::shared_ptr<JobState> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second.lock();
  }
  if (!job) return std::nullopt;
  JobProgress p;
  p.job_id = job_id;
  std::lock_guard<std::mutex> lock(job->merge_mutex);
  p.seq = job->progress_seq.load(std::memory_order_relaxed);
  p.shards_total = job->shards;
  for (char d : job->shard_done) p.shards_done += d ? 1 : 0;
  p.partial = job->merged;
  return p;
}

void QuantumService::set_tenant_weight(const std::string& tenant,
                                       double weight) {
  queue_.set_weight(tenant, weight);
}

}  // namespace qs::service
