#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "qasm/printer.h"

namespace qs::service {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

std::string solution_bits(const std::vector<int>& solution) {
  std::string bits(solution.size(), '0');
  for (std::size_t i = 0; i < solution.size(); ++i)
    if (solution[i]) bits[i] = '1';
  return bits;
}

}  // namespace

/// Per-job bookkeeping shared between the dispatcher and shard tasks.
struct QuantumService::JobState {
  std::uint64_t id = 0;
  JobRequest request;
  std::promise<JobResult> promise;
  Clock::time_point submitted;
  Clock::time_point dispatched;
  std::uint64_t dispatch_seq = 0;
  double wait_us = 0.0;
  bool cache_hit = false;
  std::size_t shards = 0;
  std::shared_ptr<const CompiledEntry> entry;  // gate jobs only

  // Shard merge state. Histogram addition is commutative, so taking the
  // merge mutex in arbitrary shard-completion order still yields a
  // deterministic merged result.
  std::mutex merge_mutex;
  Histogram merged;
  bool has_best = false;
  double best_energy = 0.0;
  std::uint64_t best_read = 0;
  std::vector<int> best_solution;
  std::exception_ptr error;  // first shard/compile error wins

  std::atomic<std::size_t> remaining{0};
};

QuantumService::QuantumService(runtime::GateAccelerator gate,
                               ServiceOptions options)
    : options_(options),
      gate_(std::move(gate)),
      cache_(options.cache_capacity),
      queue_(options.queue_capacity),
      pool_(options.workers),
      paused_(options.start_paused) {
  metrics_.gauge("qs_workers").set(
      static_cast<std::int64_t>(pool_.thread_count()));
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

QuantumService::QuantumService(runtime::GateAccelerator gate,
                               runtime::AnnealAccelerator annealer,
                               ServiceOptions options)
    : QuantumService(std::move(gate), options) {
  annealer_.emplace(std::move(annealer));
}

QuantumService::~QuantumService() { shutdown(); }

std::future<JobResult> QuantumService::submit(JobRequest request) {
  request.validate();
  if (request.qubo && !annealer_)
    throw std::invalid_argument(
        "QuantumService: no annealing accelerator attached");

  auto job = std::make_shared<JobState>();
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (closing_)
      throw std::runtime_error("QuantumService: submit after shutdown");
    job->id = next_job_id_++;
    ++inflight_;
  }
  job->request = std::move(request);
  job->submitted = Clock::now();
  std::future<JobResult> fut = job->promise.get_future();

  const int priority = job->request.priority;
  metrics_.counter("qs_jobs_submitted_total").inc();
  if (!queue_.push(job, priority)) {
    job_done();
    throw std::runtime_error("QuantumService: submit after shutdown");
  }
  metrics_.gauge("qs_queue_depth")
      .set(static_cast<std::int64_t>(queue_.size()));
  return fut;
}

std::optional<std::future<JobResult>> QuantumService::try_submit(
    JobRequest request) {
  request.validate();
  if (request.qubo && !annealer_)
    throw std::invalid_argument(
        "QuantumService: no annealing accelerator attached");

  auto job = std::make_shared<JobState>();
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (closing_) return std::nullopt;
    job->id = next_job_id_++;
    ++inflight_;
  }
  job->request = std::move(request);
  job->submitted = Clock::now();
  std::future<JobResult> fut = job->promise.get_future();

  if (!queue_.try_push(job, job->request.priority)) {
    metrics_.counter("qs_jobs_rejected_total").inc();
    job_done();
    return std::nullopt;
  }
  metrics_.counter("qs_jobs_submitted_total").inc();
  metrics_.gauge("qs_queue_depth")
      .set(static_cast<std::int64_t>(queue_.size()));
  return fut;
}

void QuantumService::pause() {
  std::lock_guard<std::mutex> lock(control_mutex_);
  paused_ = true;
}

void QuantumService::resume() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    paused_ = false;
  }
  control_cv_.notify_all();
}

void QuantumService::drain() {
  std::unique_lock<std::mutex> lock(control_mutex_);
  control_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void QuantumService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    closing_ = true;
  }
  control_cv_.notify_all();
  queue_.close();  // dispatcher drains remaining jobs, then exits
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.wait_idle();
}

void QuantumService::dispatcher_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(control_mutex_);
      control_cv_.wait(lock, [&] { return !paused_ || closing_; });
    }
    std::optional<std::shared_ptr<JobState>> job = queue_.pop();
    if (!job) return;  // queue closed and drained
    metrics_.gauge("qs_queue_depth")
        .set(static_cast<std::int64_t>(queue_.size()));
    dispatch(*job);
  }
}

void QuantumService::dispatch(const std::shared_ptr<JobState>& job) {
  job->dispatched = Clock::now();
  job->dispatch_seq = ++dispatch_counter_;
  job->wait_us = us_between(job->submitted, job->dispatched);
  metrics_.histogram("qs_job_wait_us").observe(job->wait_us);

  const JobRequest& req = job->request;
  if (req.kind() == JobKind::Gate) {
    try {
      job->entry = resolve_compiled(*req.program, &job->cache_hit);
    } catch (...) {
      fail_job(job, std::current_exception());
      return;
    }
  }

  job->shards = shard_count(req.shots, options_.shard_shots);
  job->remaining.store(job->shards, std::memory_order_relaxed);
  QS_LOG(LogLevel::Debug, "service",
         "dispatch job " << job->id << " (" << to_string(req.kind()) << ", "
                         << req.shots << " shots, " << job->shards
                         << " shards, cache_hit=" << job->cache_hit << ")");

  const bool is_gate = req.kind() == JobKind::Gate;
  for (std::size_t i = 0; i < job->shards; ++i) {
    pool_.submit([this, job, i, is_gate] {
      if (is_gate)
        run_gate_shard(job, i);
      else
        run_anneal_shard(job, i);
    });
  }
}

std::shared_ptr<const CompiledEntry> QuantumService::resolve_compiled(
    const qasm::Program& program, bool* cache_hit) {
  *cache_hit = false;
  const std::string text = qasm::to_cqasm(program);
  const std::uint64_t key = compiled_program_key(
      text, compiler::fingerprint(gate_.platform()),
      compiler::fingerprint(gate_.options()));

  if (options_.cache_enabled) {
    if (auto entry = cache_.lookup(key)) {
      *cache_hit = true;
      metrics_.counter("qs_cache_hits_total").inc();
      return entry;
    }
    metrics_.counter("qs_cache_misses_total").inc();
  }

  auto entry = std::make_shared<CompiledEntry>();
  entry->compiled = gate_.compile_const(program);
  if (gate_.path() == runtime::GatePath::MicroArch)
    entry->eqasm = std::make_shared<const microarch::EqProgram>(
        gate_.assemble(entry->compiled));
  if (options_.cache_enabled) cache_.insert(key, entry);
  return entry;
}

std::size_t QuantumService::effective_sim_threads(
    std::size_t job_threads) const {
  // Per-job budget wins over the service default; both resolve
  // QS_SIM_THREADS when zero (sim::resolve_sim_threads handles that).
  const std::size_t want = sim::resolve_sim_threads(
      job_threads != 0 ? job_threads : options_.sim_threads);
  if (!options_.clamp_sim_threads) return want;
  // Shard workers already fan out across cores: cap kernel threads per
  // shard at hardware_concurrency / workers so total threads stay at or
  // below the core count. Bit-identity makes this clamp output-invisible.
  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  const std::size_t per_shard =
      std::max<std::size_t>(hw / std::max<std::size_t>(pool_.thread_count(), 1),
                            1);
  return std::min(want, per_shard);
}

void QuantumService::run_gate_shard(const std::shared_ptr<JobState>& job,
                                    std::size_t shard_index) {
  try {
    const JobRequest& req = job->request;
    const std::size_t begin = shard_index * options_.shard_shots;
    const std::size_t count =
        std::min(options_.shard_shots, req.shots - begin);
    const std::uint64_t seed = derive_stream_seed(req.seed, shard_index);
    sim::SimOptions sim_options = gate_.sim_options();
    sim_options.threads = effective_sim_threads(req.sim_threads);
    const Histogram shard =
        job->entry->eqasm
            ? gate_.run_eqasm(*job->entry->eqasm, count, seed, sim_options)
            : gate_.run_compiled(job->entry->compiled, count, seed,
                                 sim_options);
    std::lock_guard<std::mutex> lock(job->merge_mutex);
    for (const auto& [bits, n] : shard.counts()) job->merged.add(bits, n);
  } catch (...) {
    std::lock_guard<std::mutex> lock(job->merge_mutex);
    if (!job->error) job->error = std::current_exception();
  }
  finish_shard(job);
}

void QuantumService::run_anneal_shard(const std::shared_ptr<JobState>& job,
                                      std::size_t shard_index) {
  try {
    const JobRequest& req = job->request;
    const std::size_t begin = shard_index * options_.shard_shots;
    const std::size_t end =
        std::min(begin + options_.shard_shots, req.shots);
    for (std::size_t read = begin; read < end; ++read) {
      // Per-read (not per-shard) stream: each anneal is an independent
      // restart, and per-read seeding keeps the best-of-N reduction
      // identical however reads are grouped into shards.
      Rng rng(derive_stream_seed(req.seed, read));
      const runtime::AnnealOutcome outcome =
          annealer_->solve(*req.qubo, rng);
      std::lock_guard<std::mutex> lock(job->merge_mutex);
      job->merged.add(solution_bits(outcome.solution));
      const bool better =
          !job->has_best || outcome.energy < job->best_energy ||
          (outcome.energy == job->best_energy && read < job->best_read);
      if (better) {
        job->has_best = true;
        job->best_energy = outcome.energy;
        job->best_read = read;
        job->best_solution = outcome.solution;
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(job->merge_mutex);
    if (!job->error) job->error = std::current_exception();
  }
  finish_shard(job);
}

void QuantumService::finish_shard(const std::shared_ptr<JobState>& job) {
  if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Last shard out assembles and publishes the result.
  if (job->error) {
    metrics_.counter("qs_jobs_failed_total").inc();
    job->promise.set_exception(job->error);
    job_done();
    return;
  }

  JobResult result;
  result.job_id = job->id;
  result.kind = job->request.kind();
  result.tag = job->request.tag;
  result.histogram = std::move(job->merged);
  result.best_solution = std::move(job->best_solution);
  result.best_energy = job->best_energy;
  result.cache_hit = job->cache_hit;
  result.shards = job->shards;
  result.dispatch_seq = job->dispatch_seq;
  result.wait_us = job->wait_us;
  result.run_us = us_between(job->dispatched, Clock::now());

  metrics_.counter("qs_jobs_completed_total").inc();
  metrics_.counter(result.kind == JobKind::Gate ? "qs_gate_shots_total"
                                                : "qs_anneal_reads_total")
      .inc(job->request.shots);
  metrics_.histogram("qs_job_run_us").observe(result.run_us);

  job->promise.set_value(std::move(result));
  job_done();
}

void QuantumService::fail_job(const std::shared_ptr<JobState>& job,
                              std::exception_ptr err) {
  metrics_.counter("qs_jobs_failed_total").inc();
  job->promise.set_exception(std::move(err));
  job_done();
}

void QuantumService::job_done() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    --inflight_;
    if (inflight_ != 0) return;
  }
  control_cv_.notify_all();
}

}  // namespace qs::service
