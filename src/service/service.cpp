#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "common/cancellation.h"
#include "common/logging.h"
#include "common/rng.h"
#include "qasm/printer.h"

namespace qs::service {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

double us_of(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

std::string solution_bits(const std::vector<int>& solution) {
  std::string bits(solution.size(), '0');
  for (std::size_t i = 0; i < solution.size(); ++i)
    if (solution[i]) bits[i] = '1';
  return bits;
}

/// Exception the deprecated future-based API surfaces for a status code.
std::exception_ptr status_to_exception(const Status& status) {
  if (status.code() == StatusCode::kInvalidArgument)
    return std::make_exception_ptr(std::invalid_argument(status.message()));
  return std::make_exception_ptr(std::runtime_error(status.to_string()));
}

}  // namespace

/// Per-job bookkeeping shared between the dispatcher and shard tasks.
struct QuantumService::JobState {
  std::uint64_t id = 0;
  RunRequest request;
  std::promise<RunResult> promise;
  std::shared_future<RunResult> future;  // handed to the JobHandle
  std::unique_ptr<std::promise<JobResult>> legacy;  // deprecated API only
  CancelSource cancel;
  std::optional<Clock::time_point> deadline_at;
  Clock::time_point submitted;
  Clock::time_point dispatched;
  std::uint64_t dispatch_seq = 0;
  double wait_us = 0.0;
  bool cache_hit = false;
  std::size_t shards = 0;
  std::shared_ptr<const CompiledEntry> entry;  // gate jobs only

  // Shard merge state. Histogram addition is commutative, so taking the
  // merge mutex in arbitrary shard-completion order still yields a
  // deterministic merged result.
  std::mutex merge_mutex;
  Histogram merged;
  bool has_best = false;
  double best_energy = 0.0;
  std::uint64_t best_read = 0;
  std::vector<int> best_solution;
  Status status;  // first failure wins; guarded by merge_mutex

  /// Set alongside a failure status: remaining shards skip their work
  /// (they still run through finish_shard to keep the count exact).
  std::atomic<bool> abort{false};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> remaining{0};
};

QuantumService::QuantumService(runtime::GateAccelerator gate,
                               ServiceOptions options)
    : options_(options),
      gate_(std::move(gate)),
      cache_(options.cache_capacity),
      queue_(options.queue_capacity),
      pool_(options.workers),
      paused_(options.start_paused) {
  metrics_.gauge("qs_workers").set(
      static_cast<std::int64_t>(pool_.thread_count()));
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

QuantumService::QuantumService(runtime::GateAccelerator gate,
                               runtime::AnnealAccelerator annealer,
                               ServiceOptions options)
    : QuantumService(std::move(gate), options) {
  annealer_.emplace(std::move(annealer));
}

QuantumService::~QuantumService() { shutdown(); }

// ---------------------------------------------------------- admission ----

std::shared_ptr<QuantumService::JobState> QuantumService::make_job(
    RunRequest request, std::unique_ptr<std::promise<JobResult>> legacy,
    Status* status) {
  auto job = std::make_shared<JobState>();
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (closing_) {
      *status = Status::Unavailable("QuantumService: submit after shutdown");
      return nullptr;
    }
    job->id = next_job_id_++;
    ++inflight_;
  }
  job->request = std::move(request);
  job->legacy = std::move(legacy);
  job->submitted = Clock::now();
  if (job->request.deadline)
    job->deadline_at = job->submitted + *job->request.deadline;
  job->future = job->promise.get_future().share();
  *status = Status::Ok();
  return job;
}

Status QuantumService::admit(const std::shared_ptr<JobState>& job,
                             bool blocking) {
  const int priority = job->request.priority;
  const bool admitted = blocking ? queue_.push(job, priority)
                                 : queue_.try_push(job, priority);
  if (!admitted) {
    // Blocking push only fails once the queue is closed; try_push also
    // fails on a full queue. Either way the job never ran.
    Status status =
        queue_.closed()
            ? Status::Unavailable("QuantumService: submit after shutdown")
            : Status::ResourceExhausted(
                  "QuantumService: queue full (depth " +
                  std::to_string(queue_.size()) + "/" +
                  std::to_string(queue_.capacity()) + ")");
    metrics_.counter("qs_jobs_rejected_total").inc();
    return status;
  }
  metrics_.counter("qs_jobs_submitted_total").inc();
  metrics_.gauge("qs_queue_depth")
      .set(static_cast<std::int64_t>(queue_.size()));
  return Status::Ok();
}

JobHandle QuantumService::rejected_handle(Status status) {
  metrics_.counter("qs_jobs_rejected_total").inc();
  JobHandle handle;
  std::promise<RunResult> promise;
  handle.future_ = promise.get_future().share();
  RunResult result;
  result.status = std::move(status);
  promise.set_value(std::move(result));
  return handle;
}

JobHandle QuantumService::submit(RunRequest request) {
  if (Status v = request.validate(); !v.ok())
    return rejected_handle(std::move(v));
  if (request.qubo && !annealer_)
    return rejected_handle(Status::FailedPrecondition(
        "QuantumService: no annealing accelerator attached"));

  Status status;
  auto job = make_job(std::move(request), /*legacy=*/nullptr, &status);
  if (!job) return rejected_handle(std::move(status));

  JobHandle handle;
  handle.id_ = job->id;
  handle.cancel_ = job->cancel;
  handle.future_ = job->future;

  if (Status admitted = admit(job, /*blocking=*/true); !admitted.ok())
    resolve_unadmitted(job, std::move(admitted));
  return handle;
}

JobHandle QuantumService::try_submit(RunRequest request) {
  if (Status v = request.validate(); !v.ok())
    return rejected_handle(std::move(v));
  if (request.qubo && !annealer_)
    return rejected_handle(Status::FailedPrecondition(
        "QuantumService: no annealing accelerator attached"));

  Status status;
  auto job = make_job(std::move(request), /*legacy=*/nullptr, &status);
  if (!job) return rejected_handle(std::move(status));

  JobHandle handle;
  handle.id_ = job->id;
  handle.cancel_ = job->cancel;
  handle.future_ = job->future;

  if (Status admitted = admit(job, /*blocking=*/false); !admitted.ok())
    resolve_unadmitted(job, std::move(admitted));
  return handle;
}

// ---- Deprecated pre-RunRequest API -------------------------------------

std::future<JobResult> QuantumService::submit(JobRequest request) {
  request.validate();  // throws std::invalid_argument (old contract)
  if (request.qubo && !annealer_)
    throw std::invalid_argument(
        "QuantumService: no annealing accelerator attached");

  auto legacy = std::make_unique<std::promise<JobResult>>();
  std::future<JobResult> fut = legacy->get_future();

  Status status;
  auto job =
      make_job(request.to_run_request(), std::move(legacy), &status);
  if (!job) throw std::runtime_error("QuantumService: submit after shutdown");

  if (Status admitted = admit(job, /*blocking=*/true); !admitted.ok()) {
    job_done();
    throw std::runtime_error("QuantumService: submit after shutdown");
  }
  return fut;
}

std::optional<std::future<JobResult>> QuantumService::try_submit(
    JobRequest request) {
  request.validate();
  if (request.qubo && !annealer_)
    throw std::invalid_argument(
        "QuantumService: no annealing accelerator attached");

  auto legacy = std::make_unique<std::promise<JobResult>>();
  std::future<JobResult> fut = legacy->get_future();

  Status status;
  auto job =
      make_job(request.to_run_request(), std::move(legacy), &status);
  if (!job) return std::nullopt;

  if (Status admitted = admit(job, /*blocking=*/false); !admitted.ok()) {
    job_done();
    return std::nullopt;
  }
  return fut;
}

// ------------------------------------------------------------ control ----

void QuantumService::pause() {
  std::lock_guard<std::mutex> lock(control_mutex_);
  paused_ = true;
}

void QuantumService::resume() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    paused_ = false;
  }
  control_cv_.notify_all();
}

void QuantumService::drain() {
  std::unique_lock<std::mutex> lock(control_mutex_);
  control_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void QuantumService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    closing_ = true;
  }
  control_cv_.notify_all();
  queue_.close();  // dispatcher drains remaining jobs, then exits
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.wait_idle();
}

// --------------------------------------------------------- resolution ----

void QuantumService::resolve(const std::shared_ptr<JobState>& job,
                             RunResult result) {
  switch (result.status.code()) {
    case StatusCode::kOk:
      metrics_.counter("qs_jobs_completed_total").inc();
      metrics_
          .counter(result.kind == JobKind::Gate ? "qs_gate_shots_total"
                                                : "qs_anneal_reads_total")
          .inc(job->request.shots);
      metrics_.histogram("qs_job_run_us").observe(result.stats.run_us);
      break;
    case StatusCode::kCancelled:
      metrics_.counter("qs_jobs_cancelled_total").inc();
      break;
    case StatusCode::kDeadlineExceeded:
      metrics_.counter("qs_jobs_timed_out_total").inc();
      break;
    default:
      metrics_.counter("qs_jobs_failed_total").inc();
      break;
  }

  if (job->legacy) {
    if (result.status.ok()) {
      JobResult jr;
      jr.job_id = result.job_id;
      jr.kind = result.kind;
      jr.tag = result.tag;
      jr.histogram = result.histogram;  // copy: RunResult keeps its own
      jr.best_solution = result.best_solution;
      jr.best_energy = result.best_energy;
      jr.cache_hit = result.stats.compile_cache_hit;
      jr.shards = result.stats.shards;
      jr.dispatch_seq = result.stats.dispatch_seq;
      jr.wait_us = result.stats.queue_wait_us;
      jr.run_us = result.stats.run_us;
      job->legacy->set_value(std::move(jr));
    } else {
      job->legacy->set_exception(status_to_exception(result.status));
    }
  }

  job->promise.set_value(std::move(result));
  job_done();
}

void QuantumService::resolve_unadmitted(const std::shared_ptr<JobState>& job,
                                        Status status) {
  // Never dispatched: the rejection was already counted in admit(), so
  // fulfil the promise directly without bumping a terminal-state metric.
  RunResult result;
  result.job_id = job->id;
  result.kind = job->request.kind();
  result.tag = job->request.tag;
  result.status = std::move(status);
  if (job->legacy) job->legacy->set_exception(status_to_exception(result.status));
  job->promise.set_value(std::move(result));
  job_done();
}

void QuantumService::resolve_at_dispatch(
    const std::shared_ptr<JobState>& job, Status status) {
  RunResult result;
  result.job_id = job->id;
  result.kind = job->request.kind();
  result.tag = job->request.tag;
  result.status = std::move(status);
  result.stats.queue_wait_us = job->wait_us;
  result.stats.dispatch_seq = job->dispatch_seq;
  result.stats.run_us = us_between(job->dispatched, Clock::now());
  resolve(job, std::move(result));
}

void QuantumService::note_failure(const std::shared_ptr<JobState>& job,
                                  Status status) {
  {
    std::lock_guard<std::mutex> lock(job->merge_mutex);
    if (job->status.ok()) job->status = std::move(status);
  }
  job->abort.store(true, std::memory_order_release);
}

// ----------------------------------------------------------- dispatch ----

void QuantumService::dispatcher_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(control_mutex_);
      control_cv_.wait(lock, [&] { return !paused_ || closing_; });
    }
    std::optional<std::shared_ptr<JobState>> job = queue_.pop();
    if (!job) return;  // queue closed and drained
    metrics_.gauge("qs_queue_depth")
        .set(static_cast<std::int64_t>(queue_.size()));
    dispatch(*job);
  }
}

void QuantumService::dispatch(const std::shared_ptr<JobState>& job) {
  job->dispatched = Clock::now();
  job->dispatch_seq = ++dispatch_counter_;
  job->wait_us = us_between(job->submitted, job->dispatched);
  metrics_.histogram("qs_job_wait_us").observe(job->wait_us);
  if (job->request.deadline) {
    // Fraction of the deadline budget consumed while waiting in queue:
    // > 1 means the job expired before it ever ran (capacity signal).
    metrics_
        .histogram("qs_deadline_wait_fraction",
                   MetricsRegistry::fraction_bounds())
        .observe(job->wait_us / us_of(*job->request.deadline));
  }

  // Rejected-on-dequeue paths: never compile, never shard.
  if (job->cancel.cancel_requested()) {
    resolve_at_dispatch(job,
                        Status::Cancelled("job cancelled before dispatch"));
    return;
  }
  if (job->deadline_at && job->dispatched > *job->deadline_at) {
    resolve_at_dispatch(
        job, Status::DeadlineExceeded(
                 "deadline expired in queue after " +
                 std::to_string(static_cast<long long>(job->wait_us)) +
                 "us (budget " +
                 std::to_string(static_cast<long long>(
                     us_of(*job->request.deadline))) +
                 "us)"));
    return;
  }

  const RunRequest& req = job->request;
  if (req.kind() == JobKind::Gate) {
    if (req.program->qubit_count() > gate_.qubit_count()) {
      resolve_at_dispatch(
          job, Status::InvalidArgument(
                   "program needs " +
                   std::to_string(req.program->qubit_count()) +
                   " qubits, platform has " +
                   std::to_string(gate_.qubit_count())));
      return;
    }
    if (req.faults && req.faults->fail_compile) {
      resolve_at_dispatch(
          job, Status::Internal("injected compile failure (FaultPlan)"));
      return;
    }
    try {
      job->entry = resolve_compiled(*req.program, &job->cache_hit);
    } catch (const std::exception& e) {
      resolve_at_dispatch(job, Status::InvalidArgument(
                                   std::string("compile failed: ") +
                                   e.what()));
      return;
    } catch (...) {
      resolve_at_dispatch(job,
                          Status::Internal("compile failed: unknown error"));
      return;
    }
  }

  metrics_.counter("qs_jobs_dispatched_total").inc();
  job->shards = shard_count(req.shots, options_.shard_shots);
  job->remaining.store(job->shards, std::memory_order_relaxed);
  QS_LOG(LogLevel::Debug, "service",
         "dispatch job " << job->id << " (" << to_string(req.kind()) << ", "
                         << req.shots << " shots, " << job->shards
                         << " shards, cache_hit=" << job->cache_hit << ")");

  const bool is_gate = req.kind() == JobKind::Gate;
  for (std::size_t i = 0; i < job->shards; ++i) {
    pool_.submit([this, job, i, is_gate] {
      if (is_gate)
        run_gate_shard(job, i);
      else
        run_anneal_shard(job, i);
    });
  }
}

std::shared_ptr<const CompiledEntry> QuantumService::resolve_compiled(
    const qasm::Program& program, bool* cache_hit) {
  *cache_hit = false;
  const std::string text = qasm::to_cqasm(program);
  const std::uint64_t key = compiled_program_key(
      text, compiler::fingerprint(gate_.platform()),
      compiler::fingerprint(gate_.options()));

  if (options_.cache_enabled) {
    if (auto entry = cache_.lookup(key)) {
      *cache_hit = true;
      metrics_.counter("qs_cache_hits_total").inc();
      return entry;
    }
    metrics_.counter("qs_cache_misses_total").inc();
  }

  auto entry = std::make_shared<CompiledEntry>();
  entry->compiled = gate_.compile_const(program);
  if (gate_.path() == runtime::GatePath::MicroArch)
    entry->eqasm = std::make_shared<const microarch::EqProgram>(
        gate_.assemble(entry->compiled));
  if (options_.cache_enabled) cache_.insert(key, entry);
  return entry;
}

std::size_t QuantumService::effective_sim_threads(
    std::size_t job_threads) const {
  // Per-job budget wins over the service default; both resolve
  // QS_SIM_THREADS when zero (sim::resolve_sim_threads handles that).
  const std::size_t want = sim::resolve_sim_threads(
      job_threads != 0 ? job_threads : options_.sim_threads);
  if (!options_.clamp_sim_threads) return want;
  // Shard workers already fan out across cores: cap kernel threads per
  // shard at hardware_concurrency / workers so total threads stay at or
  // below the core count. Bit-identity makes this clamp output-invisible.
  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  const std::size_t per_shard =
      std::max<std::size_t>(hw / std::max<std::size_t>(pool_.thread_count(), 1),
                            1);
  return std::min(want, per_shard);
}

// ------------------------------------------------------------- shards ----

void QuantumService::run_gate_shard(const std::shared_ptr<JobState>& job,
                                    std::size_t shard_index) {
  const RunRequest& req = job->request;
  const CancelToken token = job->cancel.token(job->deadline_at);
  const std::size_t begin = shard_index * options_.shard_shots;
  const std::size_t count = std::min(options_.shard_shots, req.shots - begin);
  // Retries re-derive the same stream: the seed is a pure function of
  // (job seed, shard index), so attempt j of shard k samples exactly what
  // attempt 0 would have — a job that succeeds after retries produces the
  // histogram of a job that never failed.
  const std::uint64_t seed = derive_stream_seed(req.seed, shard_index);
  const std::size_t planned_failures =
      req.faults ? req.faults->failures_for(shard_index) : 0;

  for (std::size_t attempt = 0;; ++attempt) {
    if (job->abort.load(std::memory_order_acquire)) break;
    if (token.cancelled()) {
      note_failure(job, Status::Cancelled("job cancelled mid-run"));
      break;
    }
    if (token.deadline_expired()) {
      note_failure(job,
                   Status::DeadlineExceeded("deadline expired mid-run"));
      break;
    }
    try {
      if (req.faults && req.faults->shard_latency.count() > 0)
        std::this_thread::sleep_for(req.faults->shard_latency);
      if (attempt < planned_failures)
        throw TransientError("injected fault: shard " +
                             std::to_string(shard_index) + " attempt " +
                             std::to_string(attempt));
      sim::SimOptions sim_options = gate_.sim_options();
      sim_options.threads = effective_sim_threads(req.sim_threads);
      sim_options.cancel = token;
      const Histogram shard =
          job->entry->eqasm
              ? gate_.run_eqasm(*job->entry->eqasm, count, seed, sim_options)
              : gate_.run_compiled(job->entry->compiled, count, seed,
                                   sim_options);
      std::lock_guard<std::mutex> lock(job->merge_mutex);
      for (const auto& [bits, n] : shard.counts()) job->merged.add(bits, n);
      break;
    } catch (const CancelledError& e) {
      note_failure(job, e.deadline_expired()
                            ? Status::DeadlineExceeded(
                                  "deadline expired mid-run")
                            : Status::Cancelled("job cancelled mid-run"));
      break;
    } catch (const TransientError& e) {
      if (attempt >= options_.max_shard_retries) {
        note_failure(job, Status::Unavailable(
                              "shard " + std::to_string(shard_index) +
                              " failed after " +
                              std::to_string(attempt + 1) +
                              " attempts: " + e.what()));
        break;
      }
      job->retries.fetch_add(1, std::memory_order_relaxed);
      metrics_.counter("qs_shard_retries_total").inc();
      std::this_thread::sleep_for(options_.retry_backoff.delay(attempt));
    } catch (const std::exception& e) {
      note_failure(job,
                   Status::Internal(std::string("shard failed: ") + e.what()));
      break;
    } catch (...) {
      note_failure(job, Status::Internal("shard failed: unknown exception"));
      break;
    }
  }
  finish_shard(job);
}

void QuantumService::run_anneal_shard(const std::shared_ptr<JobState>& job,
                                      std::size_t shard_index) {
  const RunRequest& req = job->request;
  const CancelToken token = job->cancel.token(job->deadline_at);
  const std::size_t begin = shard_index * options_.shard_shots;
  const std::size_t end = std::min(begin + options_.shard_shots, req.shots);
  const std::size_t planned_failures =
      req.faults ? req.faults->failures_for(shard_index) : 0;

  for (std::size_t attempt = 0;; ++attempt) {
    if (job->abort.load(std::memory_order_acquire)) break;
    try {
      throw_if_stopped(token);
      if (req.faults && req.faults->shard_latency.count() > 0)
        std::this_thread::sleep_for(req.faults->shard_latency);
      if (attempt < planned_failures)
        throw TransientError("injected fault: shard " +
                             std::to_string(shard_index) + " attempt " +
                             std::to_string(attempt));
      // Accumulate locally and merge once at the end: keeps the job state
      // untouched until the shard is known-good, so a retried attempt can
      // never double-count its completed reads.
      Histogram local;
      bool local_has_best = false;
      double local_best_energy = 0.0;
      std::uint64_t local_best_read = 0;
      std::vector<int> local_best;
      for (std::size_t read = begin; read < end; ++read) {
        throw_if_stopped(token);
        // Per-read (not per-shard) stream: each anneal is an independent
        // restart, and per-read seeding keeps the best-of-N reduction
        // identical however reads are grouped into shards.
        Rng rng(derive_stream_seed(req.seed, read));
        const runtime::AnnealOutcome outcome =
            annealer_->solve(*req.qubo, rng);
        local.add(solution_bits(outcome.solution));
        const bool better = !local_has_best ||
                            outcome.energy < local_best_energy ||
                            (outcome.energy == local_best_energy &&
                             read < local_best_read);
        if (better) {
          local_has_best = true;
          local_best_energy = outcome.energy;
          local_best_read = read;
          local_best = outcome.solution;
        }
      }
      std::lock_guard<std::mutex> lock(job->merge_mutex);
      for (const auto& [bits, n] : local.counts()) job->merged.add(bits, n);
      if (local_has_best) {
        const bool better = !job->has_best ||
                            local_best_energy < job->best_energy ||
                            (local_best_energy == job->best_energy &&
                             local_best_read < job->best_read);
        if (better) {
          job->has_best = true;
          job->best_energy = local_best_energy;
          job->best_read = local_best_read;
          job->best_solution = std::move(local_best);
        }
      }
      break;
    } catch (const CancelledError& e) {
      note_failure(job, e.deadline_expired()
                            ? Status::DeadlineExceeded(
                                  "deadline expired mid-run")
                            : Status::Cancelled("job cancelled mid-run"));
      break;
    } catch (const TransientError& e) {
      if (attempt >= options_.max_shard_retries) {
        note_failure(job, Status::Unavailable(
                              "shard " + std::to_string(shard_index) +
                              " failed after " +
                              std::to_string(attempt + 1) +
                              " attempts: " + e.what()));
        break;
      }
      job->retries.fetch_add(1, std::memory_order_relaxed);
      metrics_.counter("qs_shard_retries_total").inc();
      std::this_thread::sleep_for(options_.retry_backoff.delay(attempt));
    } catch (const std::exception& e) {
      note_failure(job,
                   Status::Internal(std::string("shard failed: ") + e.what()));
      break;
    } catch (...) {
      note_failure(job, Status::Internal("shard failed: unknown exception"));
      break;
    }
  }
  finish_shard(job);
}

void QuantumService::finish_shard(const std::shared_ptr<JobState>& job) {
  if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Last shard out assembles and publishes the result. The acq_rel
  // decrement chain orders every shard's writes before this read.
  RunResult result;
  result.job_id = job->id;
  result.kind = job->request.kind();
  result.tag = job->request.tag;
  result.status = job->status;
  result.histogram = std::move(job->merged);
  result.best_solution = std::move(job->best_solution);
  result.best_energy = job->best_energy;
  result.stats.queue_wait_us = job->wait_us;
  result.stats.run_us = us_between(job->dispatched, Clock::now());
  result.stats.compile_cache_hit = job->cache_hit;
  result.stats.retries = job->retries.load(std::memory_order_relaxed);
  result.stats.shards = job->shards;
  result.stats.dispatch_seq = job->dispatch_seq;
  resolve(job, std::move(result));
}

void QuantumService::job_done() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    --inflight_;
    if (inflight_ != 0) return;
  }
  control_cv_.notify_all();
}

}  // namespace qs::service
