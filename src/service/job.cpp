#include "service/job.h"

#include <stdexcept>

namespace qs::service {

std::size_t shard_count(std::size_t shots, std::size_t shard_shots) {
  if (shard_shots == 0)
    throw std::invalid_argument("shard_count: shard_shots must be >= 1");
  return (shots + shard_shots - 1) / shard_shots;
}

void JobRequest::validate() const {
  if (program.has_value() == qubo.has_value())
    throw std::invalid_argument(
        "JobRequest: exactly one of program/qubo must be set");
  if (shots == 0)
    throw std::invalid_argument("JobRequest: shots must be >= 1");
  if (program) program->validate();
}

RunRequest JobRequest::to_run_request() const {
  RunRequest r;
  r.program = program;
  r.qubo = qubo;
  r.shots = shots;
  r.seed = seed;
  r.priority = priority;
  r.sim_threads = sim_threads;
  r.tag = tag;
  return r;
}

JobRequest JobRequest::gate(qasm::Program program, std::size_t shots,
                            std::uint64_t seed, int priority) {
  JobRequest r;
  r.program = std::move(program);
  r.shots = shots;
  r.seed = seed;
  r.priority = priority;
  return r;
}

JobRequest JobRequest::anneal(anneal::Qubo qubo, std::size_t reads,
                              std::uint64_t seed, int priority) {
  JobRequest r;
  r.qubo = std::move(qubo);
  r.shots = reads;
  r.seed = seed;
  r.priority = priority;
  return r;
}

}  // namespace qs::service
