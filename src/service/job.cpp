#include "service/job.h"

#include <stdexcept>

namespace qs::service {

std::size_t shard_count(std::size_t shots, std::size_t shard_shots) {
  if (shard_shots == 0)
    throw std::invalid_argument("shard_count: shard_shots must be >= 1");
  return (shots + shard_shots - 1) / shard_shots;
}

}  // namespace qs::service
