// Lightweight descriptive statistics used by the benchmark harnesses and
// the stochastic solvers (annealers, QAOA shot estimation).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace qs {

/// Running mean / variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over string-keyed outcomes (e.g. measured bitstrings).
class Histogram {
 public:
  void add(const std::string& key, std::size_t count = 1);
  std::size_t total() const { return total_; }
  std::size_t count(const std::string& key) const;
  double frequency(const std::string& key) const;
  /// Key with the highest count; empty string for an empty histogram.
  std::string mode() const;
  const std::map<std::string, std::size_t>& counts() const { return counts_; }

 private:
  std::map<std::string, std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs);

/// Sample standard deviation of a vector; 0 for fewer than two samples.
double stddev_of(const std::vector<double>& xs);

}  // namespace qs
