// Cooperative cancellation and deadlines. A CancelSource is held by the
// producer of the stop request (the service's JobHandle); CancelTokens are
// cheap copies handed down the stack — shard workers check between shards,
// the simulator checks between shots — so a cancel or an expired deadline
// aborts a job at the next shot boundary instead of hanging the worker.
//
// Layers below the service report an observed stop by throwing
// CancelledError; the service catches it at the shard boundary and maps it
// to Status::kCancelled / kDeadlineExceeded. The exception never crosses
// the service's client-facing API.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>

namespace qs {

/// Read side of a cancellation request, optionally combined with an
/// absolute deadline. Default-constructed tokens never request a stop.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(std::shared_ptr<const std::atomic<bool>> flag,
              std::optional<Clock::time_point> deadline)
      : flag_(std::move(flag)), deadline_(deadline) {}

  /// The owning CancelSource requested a cancel.
  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

  /// The attached deadline (if any) has passed.
  bool deadline_expired() const {
    return deadline_ && Clock::now() > *deadline_;
  }

  /// Work should stop: cancelled or past deadline. Cancellation is checked
  /// first so a job that is both cancelled and expired reports kCancelled.
  bool stop_requested() const { return cancelled() || deadline_expired(); }

  const std::optional<Clock::time_point>& deadline() const {
    return deadline_;
  }

 private:
  std::shared_ptr<const std::atomic<bool>> flag_;
  std::optional<Clock::time_point> deadline_;
};

/// Write side: request_cancel() flips a shared atomic observed by every
/// token minted from this source. Copyable (shares the flag).
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_acquire);
  }

  CancelToken token(
      std::optional<CancelToken::Clock::time_point> deadline = std::nullopt)
      const {
    return CancelToken(flag_, deadline);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Thrown by shot/read loops when their CancelToken requests a stop.
/// `deadline_expired` distinguishes a timeout from a client cancel.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(bool deadline_expired)
      : std::runtime_error(deadline_expired ? "deadline exceeded"
                                            : "cancelled"),
        deadline_expired_(deadline_expired) {}

  bool deadline_expired() const { return deadline_expired_; }

 private:
  bool deadline_expired_;
};

/// Throws CancelledError when `token` requests a stop; call at shot/read
/// boundaries inside long-running loops.
inline void throw_if_stopped(const CancelToken& token) {
  if (token.cancelled()) throw CancelledError(/*deadline_expired=*/false);
  if (token.deadline_expired()) throw CancelledError(/*deadline_expired=*/true);
}

}  // namespace qs
