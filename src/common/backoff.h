// Retry policy for transiently-failed work. The delay schedule is a pure
// function of the attempt index (exponential with a cap, no RNG), so a
// retried shard is reproducible: the *timing* of a retry never feeds into
// any seed derivation, and the retried attempt re-derives the exact same
// counter-based RNG stream as the attempt it replaces.
#pragma once

#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace qs {

/// A failure worth retrying: the operation may succeed if repeated with the
/// same inputs (injected fault, exhausted transient resource). Everything
/// else — bad program, capacity overflow — must NOT be retried.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Deterministic exponential backoff: delay(a) = initial * multiplier^a,
/// clamped to cap. Attempt 0 is the first *retry* (i.e. the delay before
/// the second execution attempt).
struct BackoffPolicy {
  std::chrono::microseconds initial{200};
  double multiplier = 2.0;
  std::chrono::microseconds cap{5000};

  std::chrono::microseconds delay(std::size_t attempt) const;
};

}  // namespace qs
