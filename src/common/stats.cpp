#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace qs {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Histogram::add(const std::string& key, std::size_t count) {
  counts_[key] += count;
  total_ += count;
}

std::size_t Histogram::count(const std::string& key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double Histogram::frequency(const std::string& key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(total_);
}

std::string Histogram::mode() const {
  std::string best;
  std::size_t best_count = 0;
  for (const auto& [key, c] : counts_) {
    if (c > best_count) {
      best_count = c;
      best = key;
    }
  }
  return best;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

}  // namespace qs
