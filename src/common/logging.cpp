#include "common/logging.h"

#include <iostream>

namespace qs {

std::atomic<LogLevel> Log::level_{LogLevel::Warn};
std::mutex Log::mutex_;
bool Log::capture_ = false;
std::ostringstream Log::captured_;

void Log::set_level(LogLevel level) {
  level_.store(level, std::memory_order_relaxed);
}

LogLevel Log::level() { return level_.load(std::memory_order_relaxed); }

namespace {
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel level, const std::string& component,
                const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(Log::level())) return;
  // Format outside the lock; emit the completed line under it so lines from
  // concurrent workers never interleave.
  std::ostringstream line;
  line << '[' << level_name(level) << "][" << component << "] " << message
       << '\n';
  std::lock_guard<std::mutex> lock(mutex_);
  if (capture_) {
    captured_ << line.str();
  } else {
    std::cerr << line.str();
  }
}

void Log::set_capture(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  capture_ = on;
}

std::string Log::drain_capture() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = captured_.str();
  captured_.str("");
  return out;
}

}  // namespace qs
