#include "common/logging.h"

#include <iostream>

namespace qs {

LogLevel Log::level_ = LogLevel::Warn;
bool Log::capture_ = false;
std::ostringstream Log::captured_;

void Log::set_level(LogLevel level) { level_ = level; }

LogLevel Log::level() { return level_; }

namespace {
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel level, const std::string& component,
                const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (capture_) {
    captured_ << '[' << level_name(level) << "][" << component << "] "
              << message << '\n';
  } else {
    std::cerr << '[' << level_name(level) << "][" << component << "] "
              << message << '\n';
  }
}

void Log::set_capture(bool on) { capture_ = on; }

std::string Log::drain_capture() {
  std::string out = captured_.str();
  captured_.str("");
  return out;
}

}  // namespace qs
