// Typed error propagation for the serving surface. A qs::Status is a
// (code, message) pair modelled on the gRPC/absl canonical codes; the
// service-facing API returns Status (or StatusOr<T>) instead of letting
// exceptions cross the boundary, so a host integrating the accelerator can
// switch on the code — retry on kUnavailable, shed load on
// kResourceExhausted, surface kInvalidArgument to the client — without
// string-matching exception text.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace qs {

/// Canonical status codes. Terminal job states map onto these: done -> kOk,
/// failed -> kInternal / kInvalidArgument, cancelled -> kCancelled,
/// timed-out -> kDeadlineExceeded, rejected -> kResourceExhausted (queue
/// full) or kInvalidArgument (malformed request).
enum class StatusCode {
  kOk = 0,
  kCancelled,            ///< cooperatively cancelled by the client
  kInvalidArgument,      ///< malformed request (caller bug, never retry)
  kDeadlineExceeded,     ///< deadline expired in queue or mid-run
  kNotFound,             ///< referenced entity does not exist
  kResourceExhausted,    ///< admission refused (queue full)
  kFailedPrecondition,   ///< system not in a state to serve this request
  kUnavailable,          ///< transient failure; retrying may succeed
  kInternal,             ///< invariant broken or unclassified failure
};

const char* to_string(StatusCode code);

/// Stable on-the-wire numbering for StatusCode, independent of the enum's
/// declaration order. The gateway protocol carries these values inside
/// error and result frames; they follow the gRPC canonical numbering so a
/// captured frame is readable with standard tooling. New codes must get
/// new numbers — never renumber existing ones.
std::uint16_t status_code_to_wire(StatusCode code);

/// Inverse of status_code_to_wire. Unknown wire values decode to
/// kInternal: a peer speaking a newer protocol revision must not make the
/// receiver misclassify a failure as something retryable.
StatusCode status_code_from_wire(std::uint16_t wire);

/// Value-type status: ok() by default, or a code plus human-readable
/// message. Cheap to copy and move; never throws.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "DEADLINE_EXCEEDED: deadline expired after 1200us in queue".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or a non-OK Status. Accessing value() on an error aborts via
/// std::logic_error — that is an internal misuse, not a serving-path error.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok())
      throw std::logic_error("StatusOr: constructed from OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    require();
    return *value_;
  }
  const T& value() const {
    require();
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void require() const {
    if (!value_)
      throw std::logic_error("StatusOr: value() on error status: " +
                             status_.to_string());
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace qs
