// Stable (process- and platform-independent) content hashing, used for
// cache keys: the compiled-program cache keys entries by a content hash of
// the cQASM text plus the platform/compile-option fingerprints, so equal
// submissions hit the cache across service instances and process runs.
// std::hash gives no such guarantee, hence this explicit FNV-1a.
#pragma once

#include <cstdint>
#include <string_view>

namespace qs {

/// 64-bit FNV-1a over a byte string. Stable across platforms and runs.
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Mixes a new 64-bit value into an existing hash (boost-style combine with
/// a 64-bit golden-ratio constant and an avalanche multiply).
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 12) + (h >> 4);
  h *= 0x2545F4914F6CDD1DULL;
  return h ^ (h >> 29);
}

}  // namespace qs
