// Small dense complex matrices for gate algebra. Gate matrices are at most
// 2^k x 2^k for k-qubit gates with small k, so a simple row-major dense
// representation is the right tool: no sparsity machinery, no expression
// templates, exact value semantics.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/types.h"

namespace qs {

/// Row-major dense complex matrix with value semantics.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds from a nested initializer list; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<cplx>> init);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator*(cplx scalar) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;

  /// Conjugate transpose.
  Matrix dagger() const;

  /// Kronecker (tensor) product: this (x) rhs.
  Matrix kron(const Matrix& rhs) const;

  /// True if U * U^dagger == I within tolerance.
  bool is_unitary(double tol = 1e-9) const;

  /// True if elementwise equal to other within tolerance.
  bool approx_equal(const Matrix& other, double tol = 1e-9) const;

  /// True if equal to other up to a global phase factor, within tolerance.
  bool equal_up_to_phase(const Matrix& other, double tol = 1e-9) const;

  /// Trace (square matrices only).
  cplx trace() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

}  // namespace qs
