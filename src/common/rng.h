// Deterministic, seedable random number generation for simulators and
// stochastic solvers. A thin wrapper over xoshiro256** so every experiment
// in the benchmark harness is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace qs {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// All stochastic components of the stack (error injection in the QX
/// simulator, annealing schedules, SPSA perturbations, artificial DNA
/// generation) take an Rng by reference so that a run is a pure function
/// of its seed.
class Rng {
 public:
  /// Seeds the state from a single 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n >= 1.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal sample (Box-Muller; caches the spare value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Samples an index from an (unnormalised) non-negative weight vector.
  std::size_t discrete(const std::vector<double>& weights);

  /// Shuffles the elements of a vector in place (Fisher-Yates).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Derives the seed of an independent RNG stream from a base seed and a
/// stream index (counter-based splitting, SplitMix64-style finalisation).
///
/// The execution service shards a job's shots into fixed-size shards and
/// seeds shard `i` with `derive_stream_seed(job_seed, i)`: because the
/// derivation depends only on (base seed, index) — never on which worker
/// thread runs the shard — the merged result of a sharded run is
/// bit-identical to a single-threaded run of the same shards.
std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::uint64_t stream_index);

}  // namespace qs
