#include "common/rng.h"

#include <cmath>
#include <stdexcept>

namespace qs {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n must be >= 1");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * 3.14159265358979323846 * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::uint64_t stream_index) {
  // Two rounds of splitmix64 over (base ^ phi*index): consecutive indices
  // land far apart in seed space, and Rng's own splitmix64 expansion then
  // decorrelates the xoshiro states.
  std::uint64_t x = base_seed ^ (0x9E3779B97F4A7C15ULL * (stream_index + 1));
  std::uint64_t a = splitmix64(x);
  std::uint64_t b = splitmix64(x);
  return a ^ rotl(b, 32);
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  if (weights.empty())
    throw std::invalid_argument("Rng::discrete: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("Rng::discrete: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("Rng::discrete: all weights zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace qs
