// Reusable fork-join thread pool for data-parallel kernels. Built for the
// state-vector engine's amplitude-array partitioning but generic: a caller
// describes work as `chunks` independent pieces and every pool thread
// (including the caller) pulls chunk indices until none remain.
//
// Determinism contract: the pool never decides *what* is computed, only
// *who* computes it. Kernels that need bit-identical results across pool
// sizes must make each chunk's result independent of scheduling (disjoint
// writes, or per-chunk partials combined in fixed chunk order).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qs {

class ThreadPool {
 public:
  /// A pool of `threads` execution lanes: the caller of run_chunks() is
  /// lane 0, so `threads - 1` helper threads are spawned. `threads <= 1`
  /// spawns nothing and run_chunks() degenerates to an inline loop.
  explicit ThreadPool(std::size_t threads);

  /// Wakes and joins all helper threads.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (helpers + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs body(c) once for every c in [0, chunks); the calling thread
  /// participates and the call returns only when every chunk finished.
  /// Concurrent run_chunks() calls from different threads are serialized.
  /// `body` must not throw (kernels are noexcept arithmetic).
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& body);

  /// Splits [begin, end) into `slices` near-equal contiguous ranges and
  /// runs body(lo, hi) for each. Slice boundaries depend only on the
  /// arguments, never on the pool size.
  static void slice(std::size_t begin, std::size_t end, std::size_t slices,
                    std::size_t index, std::size_t* lo, std::size_t* hi);

 private:
  void worker_loop();
  void drain_chunks(const std::function<void(std::size_t)>* body,
                    std::size_t chunks);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::uint64_t epoch_ = 0;      ///< bumped per job; workers wait for a change
  std::size_t chunks_ = 0;       ///< chunk count of the current job
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t unfinished_ = 0;   ///< chunks not yet completed (under mutex_)
  bool stopping_ = false;

  std::mutex job_mutex_;  ///< serializes concurrent run_chunks() callers
  std::vector<std::thread> workers_;
};

}  // namespace qs
